package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crashsim/internal/obs"
)

func newTest(t *testing.T, cfg Config) *Cache {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{MaxBytes: 0}); err == nil {
		t.Fatal("New accepted MaxBytes=0")
	}
	if _, err := New(Config{MaxBytes: -5}); err == nil {
		t.Fatal("New accepted negative MaxBytes")
	}
	c := newTest(t, Config{MaxBytes: 1 << 20, Shards: 5})
	if got := len(c.shards); got != 8 {
		t.Fatalf("Shards=5 should round up to 8, got %d", got)
	}
}

func TestGetPut(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 1 << 20})
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", "value", 10)
	v, ok := c.Get("k")
	if !ok || v.(string) != "value" {
		t.Fatalf("Get = %v, %v; want value, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss", st)
	}
	if st.Entries != 1 || st.Bytes != 10+int64(len("k")) {
		t.Fatalf("occupancy = %d entries / %d bytes; want 1 / %d", st.Entries, st.Bytes, 10+len("k"))
	}
}

func TestPutReplace(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 1 << 20})
	c.Put("k", 1, 100)
	c.Put("k", 2, 200)
	v, ok := c.Get("k")
	if !ok || v.(int) != 2 {
		t.Fatalf("Get after replace = %v, %v", v, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 200+int64(len("k")) {
		t.Fatalf("occupancy after replace = %+v", st)
	}
}

// TestLRUEviction pins the byte-accounted LRU on a single shard so the
// eviction order is fully deterministic.
func TestLRUEviction(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 300, Shards: 1})
	c.Put("a", "A", 99) // 100 with key
	c.Put("b", "B", 99)
	c.Put("c", "C", 99)
	// Touch "a" so "b" is the LRU tail.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("d", "D", 99) // over budget: evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %s wrongly evicted", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 64, Shards: 1})
	c.Put("huge", "x", 1000)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized value was cached")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("occupancy after oversized put = %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 1 << 20, TTL: time.Minute})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put("k", "v", 10)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Fatal("expired entry served")
	}
	st := c.Stats()
	if st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("expired entry not reclaimed: %+v", st)
	}
}

func TestNoTTLNeverExpires(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 1 << 20})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put("k", "v", 10)
	now = now.Add(1000 * time.Hour)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry without TTL expired")
	}
}

// TestDoCoalesces is the headline concurrency guarantee: N concurrent
// identical misses run the compute function exactly once. The leader
// blocks until every follower has joined the in-flight call, so the
// test cannot pass by accident of scheduling.
func TestDoCoalesces(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 1 << 20})
	const n = 16
	var calls atomic.Int64
	joined := make(chan struct{}) // closed when all followers are waiting

	var started sync.WaitGroup
	started.Add(n - 1)
	leaderIn := make(chan struct{})
	go func() {
		// Release the leader only after all followers are registered
		// in-flight (coalesced counter observed below).
		started.Wait()
		for {
			if c.coalesced.Load() >= n-1 {
				close(joined)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	results := make([]any, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i > 0 {
				<-leaderIn // ensure goroutine 0 is the leader
				started.Done()
			}
			v, _, err := c.Do(context.Background(), "key", func(context.Context) (any, int64, error) {
				calls.Add(1)
				if i == 0 {
					close(leaderIn)
				}
				<-joined
				return "computed", 8, nil
			})
			results[i], errs[i] = v, err
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times for %d concurrent identical queries, want 1", got, n)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i].(string) != "computed" {
			t.Fatalf("caller %d got %v", i, results[i])
		}
	}
	// The result must now be cached for later callers.
	if _, ok := c.Get("key"); !ok {
		t.Fatal("coalesced result not cached")
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 1 << 20})
	boom := errors.New("boom")
	_, _, err := c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
		return nil, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("error result was cached")
	}
	var calls int
	v, _, err := c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
		calls++
		return "ok", 2, nil
	})
	if err != nil || v.(string) != "ok" || calls != 1 {
		t.Fatalf("retry after error: v=%v err=%v calls=%d", v, err, calls)
	}
}

// TestDoWaiterSurvivesLeaderCancel: a leader canceled by its own
// context must not poison a waiter whose context is live — the waiter
// recomputes for itself.
func TestDoWaiterSurvivesLeaderCancel(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 1 << 20})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderRunning := make(chan struct{})
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, leaderErr = c.Do(leaderCtx, "k", func(ctx context.Context) (any, int64, error) {
			close(leaderRunning)
			<-ctx.Done()
			return nil, 0, ctx.Err()
		})
	}()
	<-leaderRunning

	waiterDone := make(chan struct{})
	var waiterVal any
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterVal, _, waiterErr = c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
			return "fresh", 5, nil
		})
	}()
	// Give the waiter a moment to join the in-flight call, then cancel
	// the leader.
	for c.coalesced.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancelLeader()
	wg.Wait()
	<-waiterDone

	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader err = %v, want canceled", leaderErr)
	}
	if waiterErr != nil || waiterVal.(string) != "fresh" {
		t.Fatalf("waiter got (%v, %v), want fresh recompute", waiterVal, waiterErr)
	}
}

func TestDoWaiterHonorsOwnContext(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 1 << 20})
	leaderRunning := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func(context.Context) (any, int64, error) {
			close(leaderRunning)
			<-release
			return "v", 1, nil
		})
	}()
	<-leaderRunning
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func(context.Context) (any, int64, error) {
		t.Error("canceled waiter must not compute")
		return nil, 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want canceled", err)
	}
	close(release)
}

func TestHitRatio(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 1 << 20})
	if r := c.HitRatio(); r != 0 {
		t.Fatalf("empty ratio = %v", r)
	}
	c.Put("k", "v", 1)
	c.Get("k")    // hit
	c.Get("nope") // miss
	if r := c.HitRatio(); r != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", r)
	}
}

// TestHitRatioAllocationFree backs the /health fast-path promise: the
// ratio is two atomic loads, no allocation.
func TestHitRatioAllocationFree(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 1 << 20})
	c.Put("k", "v", 1)
	c.Get("k")
	allocs := testing.AllocsPerRun(100, func() {
		_ = c.HitRatio()
	})
	if allocs != 0 {
		t.Fatalf("HitRatio allocates %v times per call, want 0", allocs)
	}
}

// TestConcurrentMixed hammers every operation under -race.
func TestConcurrentMixed(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 4 << 10, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%37)
				switch i % 3 {
				case 0:
					c.Put(key, i, int64(16+i%64))
				case 1:
					c.Get(key)
				default:
					_, _, _ = c.Do(context.Background(), key, func(context.Context) (any, int64, error) {
						return i, 16, nil
					})
				}
			}
		}(w)
	}
	wg.Wait()
	// Invariant: accounted bytes match a full rescan.
	var rescan int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, el := range s.items {
			rescan += el.Value.(*entry).size
		}
		s.mu.Unlock()
	}
	if got := c.Stats().Bytes; got != rescan {
		t.Fatalf("byte accounting drifted: gauge=%d rescan=%d", got, rescan)
	}
	if c.Len() != int(c.Stats().Entries) {
		t.Fatalf("entry accounting drifted: len=%d gauge=%d", c.Len(), c.Stats().Entries)
	}
}

func BenchmarkGetHit(b *testing.B) {
	reg := obs.NewRegistry()
	c, _ := New(Config{MaxBytes: 1 << 20, Metrics: reg})
	c.Put("bench-key", "value", 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("bench-key"); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkHitRatio(b *testing.B) {
	reg := obs.NewRegistry()
	c, _ := New(Config{MaxBytes: 1 << 20, Metrics: reg})
	c.Put("k", "v", 8)
	c.Get("k")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.HitRatio()
	}
}
