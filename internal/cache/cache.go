// Package cache is the serving layer's query-result cache: a sharded
// LRU keyed by opaque strings, with byte-accounted capacity, optional
// TTL expiry, and singleflight-style request coalescing so N
// concurrent identical misses trigger exactly one backend computation.
//
// CrashSim's Monte-Carlo estimates are deterministic for a fixed seed
// and fixed parameters, so a result computed once is correct for every
// later request against the same graph state — the only invalidation
// signal a key needs is the graph's version (see graph.Graph.Version
// and internal/engine's Cached wrapper, which folds backend name,
// effective parameters and graph version into the key). The cache
// itself is value-agnostic: it stores `any` and leaves cloning
// discipline to the caller, because only the caller knows whether a
// value is aliasable.
//
// Design constraints, in the spirit of internal/obs:
//
//   - Hot-path cost. A hit takes one shard mutex, a map lookup and an
//     LRU list splice; no allocation beyond what the caller's clone
//     policy requires. Shard count is a power of two so routing is a
//     hash-and-mask.
//   - Bounded memory. Capacity is accounted in bytes, not entries —
//     a single-source result on a dense hub node can be thousands of
//     times larger than a pair score. Each shard evicts its own LRU
//     tail; an entry larger than a whole shard is simply not cached.
//   - Coalescing. A miss registers an in-flight call; concurrent
//     requests for the same key wait for it instead of recomputing.
//     Waiters honor their own context, and a leader failure caused by
//     the leader's context does not poison waiters whose contexts are
//     still live — they recompute themselves.
//
// Metrics land in an obs.Registry under the "cache." prefix:
// cache.hits, cache.misses, cache.coalesced, cache.evictions,
// cache.expired counters plus cache.bytes and cache.entries gauges.
package cache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
	"time"

	"crashsim/internal/obs"
)

// DefaultShards is the shard count when Config.Shards is zero: enough
// to keep shard mutexes uncontended at typical serving parallelism
// without fragmenting the byte budget into uselessly small slices.
const DefaultShards = 16

// Config sizes a Cache.
type Config struct {
	// MaxBytes bounds the total accounted size of cached values plus
	// their keys, across all shards. Required (> 0).
	MaxBytes int64
	// TTL bounds every entry's lifetime. Zero or negative means entries
	// never expire by age — version-keyed invalidation (the engine
	// wrapper's job) is the primary staleness defense; TTL is for
	// deployments that also want a hard recency bound.
	TTL time.Duration
	// Shards is the shard count, rounded up to a power of two.
	// Zero means DefaultShards.
	Shards int
	// Metrics receives the cache's counters and gauges. Nil means
	// obs.Default.
	Metrics *obs.Registry
}

// Cache is a sharded, byte-bounded LRU with request coalescing.
// All methods are safe for concurrent use.
type Cache struct {
	shards []shard
	mask   uint64
	seed   maphash.Seed
	ttl    time.Duration
	max    int64 // total byte budget

	now func() time.Time // injected in tests

	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	evictions *obs.Counter
	expired   *obs.Counter
	bytes     *obs.Gauge
	entries   *obs.Gauge
}

type shard struct {
	mu     sync.Mutex
	items  map[string]*list.Element // key -> element holding *entry
	lru    *list.List               // front = most recently used
	bytes  int64
	max    int64 // this shard's byte budget
	flight map[string]*call
}

type entry struct {
	key     string
	val     any
	size    int64
	expires time.Time // zero = never
}

// call is one in-flight computation that concurrent requests join.
type call struct {
	done chan struct{} // closed when val/err are set
	val  any
	err  error
}

// New builds a cache. It returns an error (not a panic) for a
// non-positive byte budget so flag-driven callers surface
// misconfiguration cleanly.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxBytes <= 0 {
		return nil, fmt.Errorf("cache: MaxBytes must be positive, got %d", cfg.MaxBytes)
	}
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	// Round up to a power of two so routing is hash & mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	ttl := cfg.TTL
	if ttl < 0 {
		ttl = 0
	}
	c := &Cache{
		shards:    make([]shard, pow),
		mask:      uint64(pow - 1),
		seed:      maphash.MakeSeed(),
		ttl:       ttl,
		max:       cfg.MaxBytes,
		now:       time.Now,
		hits:      reg.Counter("cache.hits"),
		misses:    reg.Counter("cache.misses"),
		coalesced: reg.Counter("cache.coalesced"),
		evictions: reg.Counter("cache.evictions"),
		expired:   reg.Counter("cache.expired"),
		bytes:     reg.Gauge("cache.bytes"),
		entries:   reg.Gauge("cache.entries"),
	}
	per := cfg.MaxBytes / int64(pow)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = shard{
			items:  make(map[string]*list.Element),
			lru:    list.New(),
			max:    per,
			flight: make(map[string]*call),
		}
	}
	return c, nil
}

func (c *Cache) shardFor(key string) *shard {
	h := maphash.String(c.seed, key)
	return &c.shards[h&c.mask]
}

// Get returns the cached value for key, if present and fresh. The
// returned value is the canonical stored copy: callers that hand it to
// code which may mutate it must clone first.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e, ok := c.lookup(s, key)
	s.mu.Unlock()
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return e.val, true
}

// lookup finds a live entry and refreshes its LRU position, removing
// it instead when expired. Caller holds s.mu.
func (c *Cache) lookup(s *shard, key string) (*entry, bool) {
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(s, el, e)
		c.expired.Inc()
		return nil, false
	}
	s.lru.MoveToFront(el)
	return e, true
}

// Put stores val under key with the given accounted size (the key's
// length is added on top). Values larger than a shard's whole budget
// are not cached. An existing entry for key is replaced.
func (c *Cache) Put(key string, val any, size int64) {
	s := c.shardFor(key)
	total := size + int64(len(key))
	if total > s.max {
		return
	}
	exp := time.Time{}
	if c.ttl > 0 {
		exp = c.now().Add(c.ttl)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		c.removeLocked(s, el, el.Value.(*entry))
	}
	e := &entry{key: key, val: val, size: total, expires: exp}
	s.items[key] = s.lru.PushFront(e)
	s.bytes += total
	c.bytes.Add(total)
	c.entries.Inc()
	for s.bytes > s.max {
		tail := s.lru.Back()
		if tail == nil {
			break
		}
		c.removeLocked(s, tail, tail.Value.(*entry))
		c.evictions.Inc()
	}
}

// removeLocked unlinks an entry and returns its bytes. Caller holds s.mu.
func (c *Cache) removeLocked(s *shard, el *list.Element, e *entry) {
	s.lru.Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.size
	c.bytes.Add(-e.size)
	c.entries.Dec()
}

// Do returns the value for key, computing it at most once across
// concurrent callers: a hit returns immediately; the first miss runs
// compute and stores a successful result; concurrent misses for the
// same key wait for that leader instead of recomputing.
//
// compute must return the value to cache plus its accounted size in
// bytes. The value returned by Do is the canonical cached copy shared
// with other callers — clone before mutating.
//
// Context discipline: the leader computes under its own ctx. A waiter
// whose ctx expires returns its ctx.Err() without disturbing the
// leader. If the leader fails with a context error but a waiter's own
// ctx is still live, the waiter recomputes directly rather than
// inheriting a cancellation that was never its own.
//
// The second return reports whether the value came from the cache (a
// hit or a coalesced join) rather than this caller's own computation.
func (c *Cache) Do(ctx context.Context, key string, compute func(ctx context.Context) (val any, size int64, err error)) (any, bool, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := c.lookup(s, key); ok {
		s.mu.Unlock()
		c.hits.Inc()
		return e.val, true, nil
	}
	if cl, inflight := s.flight[key]; inflight {
		s.mu.Unlock()
		c.coalesced.Inc()
		select {
		case <-cl.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if cl.err == nil {
			return cl.val, true, nil
		}
		if isCtxErr(cl.err) && ctx.Err() == nil {
			// The leader was canceled, not us: compute for ourselves.
			val, size, err := compute(ctx)
			if err != nil {
				return nil, false, err
			}
			c.Put(key, val, size)
			return val, false, nil
		}
		return nil, false, cl.err
	}
	cl := &call{done: make(chan struct{})}
	s.flight[key] = cl
	s.mu.Unlock()
	c.misses.Inc()

	cl.val, _, cl.err = func() (any, int64, error) {
		val, size, err := compute(ctx)
		if err == nil {
			c.Put(key, val, size)
		}
		return val, size, err
	}()

	s.mu.Lock()
	delete(s.flight, key)
	s.mu.Unlock()
	close(cl.done)

	if cl.err != nil {
		return nil, false, cl.err
	}
	return cl.val, false, nil
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Stats is a point-in-time view of the cache's counters and occupancy.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	Expired   uint64 `json:"expired"`
	Entries   int64  `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	Shards    int    `json:"shards"`
	TTL       string `json:"ttl,omitempty"`
}

// Stats snapshots the cache. Counter reads are atomic loads; the
// snapshot may be off by in-flight operations, which is fine for
// monitoring.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Expired:   c.expired.Load(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
		MaxBytes:  c.max,
		Shards:    len(c.shards),
	}
	if c.ttl > 0 {
		st.TTL = c.ttl.String()
	}
	return st
}

// HitRatio returns hits / (hits + misses), or 0 before any lookup. It
// is two atomic loads and a division — allocation-free by design, so
// health endpoints can report it on their fast path (the server's
// benchmark enforces this).
func (c *Cache) HitRatio() float64 {
	h := c.hits.Load()
	m := c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of live entries (including any that have
// expired but not yet been touched).
func (c *Cache) Len() int {
	var n int
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}
