package core

import (
	"context"
	"math"
	"runtime"
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

func randomTestGraph(t testing.TB, n, m int, directed bool, seed uint64) *graph.Graph {
	t.Helper()
	edges, err := gen.ErdosRenyi(n, m, directed, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(n, directed, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFrozenProbMatchesMap: the compiled tree must return the exact
// float64 of the map tree for every (step, node) pair — in-support,
// out-of-support, and out-of-range on both axes — on randomized graphs
// of both orientations and with lmax pushed past one bitmask word.
func TestFrozenProbMatchesMap(t *testing.T) {
	cases := []struct {
		n, m     int
		directed bool
		lmax     int
	}{
		{30, 90, true, 8},
		{50, 120, false, 35},
		{40, 200, true, 70}, // > 64 levels: multi-word bitmask path
		{25, 25, true, 3},   // sparse: most nodes outside the support
	}
	for ci, tc := range cases {
		g := randomTestGraph(t, tc.n, tc.m, tc.directed, uint64(100+ci))
		for src := 0; src < tc.n; src += 7 {
			tree := RevReach(g, graph.NodeID(src), 0.6, tc.lmax, TransitionExact)
			ft := tree.Freeze(tc.n)
			for step := -2; step <= tc.lmax+2; step++ {
				for v := graph.NodeID(-1); int(v) <= tc.n; v++ {
					want := tree.Prob(step, v)
					if v < 0 || int(v) >= tc.n {
						want = 0 // map Prob tolerates any id; frozen must too
					}
					if got := ft.Prob(step, v); got != want {
						t.Fatalf("case %d src %d: Prob(%d, %d) = %v, want %v",
							ci, src, step, v, got, want)
					}
				}
			}
			if got, want := ft.Support(), tree.Support(); got != want {
				t.Errorf("case %d src %d: frozen support %d, map support %d", ci, src, got, want)
			}
		}
	}
}

// TestFrozenCompileReuse: recompiling a pooled FrozenTree for a
// different source and a smaller graph must leave no stale state.
func TestFrozenCompileReuse(t *testing.T) {
	g1 := randomTestGraph(t, 60, 240, true, 7)
	g2 := randomTestGraph(t, 20, 60, true, 8)
	ft := new(FrozenTree)
	t1 := RevReach(g1, 3, 0.6, 12, TransitionExact)
	ft.compile(t1, 60)
	t2 := RevReach(g2, 5, 0.6, 12, TransitionExact)
	ft.compile(t2, 20)
	for step := 0; step <= 12; step++ {
		for v := graph.NodeID(0); v < 20; v++ {
			if got, want := ft.Prob(step, v), t2.Prob(step, v); got != want {
				t.Fatalf("after reuse: Prob(%d, %d) = %v, want %v", step, v, got, want)
			}
		}
	}
}

// TestFrozenKernelScoresByteIdentical: for a fixed seed, single-source
// scores must be byte-identical between the legacy map kernel and the
// compiled kernel, across worker counts, for every meeting rule. This
// is the determinism contract that lets BENCH_crashsim compare the two
// kernels as pure performance variants.
func TestFrozenKernelScoresByteIdentical(t *testing.T) {
	g := randomTestGraph(t, 80, 400, true, 31)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, rule := range []MeetingRule{MeetingFirstMeet, MeetingAny, MeetingFirstCrash} {
		base := Params{Iterations: 300, Seed: 17, Meeting: rule}
		legacy := base
		legacy.DisableFrozenKernel = true
		want, err := SingleSource(g, 2, nil, legacy)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts {
			frozen := base
			frozen.Workers = w
			got, err := SingleSource(g, 2, nil, frozen)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("rule %v workers %d: %d scores, want %d", rule, w, len(got), len(want))
			}
			for v := range want {
				if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
					t.Fatalf("rule %v workers %d: score at node %d differs: %v (frozen) vs %v (legacy)",
						rule, w, v, got[v], want[v])
				}
			}
		}
	}
}

// TestForwardReachBitsMatchesMap: the bitset BFS must mark exactly the
// set the map BFS returns, for assorted depths and source sets.
func TestForwardReachBitsMatchesMap(t *testing.T) {
	g := randomTestGraph(t, 64, 200, true, 5)
	n := g.NumNodes()
	sourceSets := [][]graph.NodeID{
		nil,
		{0},
		{3, 3, 17},
		{1, 5, 9, 13, 63},
	}
	for _, sources := range sourceSets {
		for depth := 0; depth <= 6; depth++ {
			want := forwardReach(g, sources, depth)
			reach := newNodeBitset(nil, n)
			forwardReachBits(g, sources, depth, reach, nil, nil)
			for v := graph.NodeID(0); int(v) < n; v++ {
				_, inMap := want[v]
				if got := reach.Has(v); got != inMap {
					t.Fatalf("sources %v depth %d: node %d bitset=%v map=%v",
						sources, depth, v, got, inMap)
				}
			}
		}
	}
}

// TestFrozenKernelDisabledEstimateWithError: SingleSourceWithError's
// Score fields must keep matching SingleSource bit-for-bit even when
// the caller of SingleSource asked for the legacy kernel (the
// with-error path always runs compiled; equivalence makes that
// invisible).
func TestFrozenKernelDisabledEstimateWithError(t *testing.T) {
	g := randomTestGraph(t, 40, 160, true, 13)
	p := Params{Iterations: 150, Seed: 23, DisableFrozenKernel: true}
	scores, err := SingleSource(g, 1, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	withErr, err := SingleSourceWithError(g, 1, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range scores {
		if math.Float64bits(withErr[v].Score) != math.Float64bits(s) {
			t.Fatalf("node %d: with-error score %v, single-source %v", v, withErr[v].Score, s)
		}
	}
}

// ---- kernel micro-benchmarks ----

// kernelBenchSetup builds the shared benchmark fixture: a power-law
// graph, the source tree in both forms, and a stream of start nodes.
func kernelBenchSetup(b *testing.B) (*graph.Graph, *ReachTree, *FrozenTree, int) {
	b.Helper()
	g := benchGraph(b, 5000, 50000)
	lmax := DeriveLmax(0.6)
	tree := RevReach(g, 1, 0.6, lmax, TransitionExact)
	ft := tree.Freeze(g.NumNodes())
	ft.buildStep1(g)
	return g, tree, ft, lmax
}

func benchmarkWalkKernel(b *testing.B, rule MeetingRule) {
	g, _, ft, lmax := kernelBenchSetup(b)
	kernel := kernelFor(rule)
	sqrtC := math.Sqrt(0.6)
	r := rng.FastSplit(1, 42)
	b.ResetTimer()
	// One kernel call runs the whole budget, mirroring the estimator's
	// per-candidate shape; ns/op is the cost of one walk.
	sum, _, _, err := kernel(context.Background(), g, ft, 4321, sqrtC, lmax, b.N, &r)
	if err != nil {
		b.Fatal(err)
	}
	_ = sum
}

func BenchmarkWalkContributionAny(b *testing.B)        { benchmarkWalkKernel(b, MeetingAny) }
func BenchmarkWalkContributionFirstCrash(b *testing.B) { benchmarkWalkKernel(b, MeetingFirstCrash) }
func BenchmarkWalkContributionFirstMeet(b *testing.B)  { benchmarkWalkKernel(b, MeetingFirstMeet) }

// BenchmarkWalkContributionLegacy is the map-kernel baseline for the
// three fused kernels above: SampleWalk + walkContribution under the
// default first-meet rule.
func BenchmarkWalkContributionLegacy(b *testing.B) {
	g, tree, _, lmax := kernelBenchSetup(b)
	sqrtC := math.Sqrt(0.6)
	r := rng.Split(1, 42)
	var walk []graph.NodeID
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		walk = SampleWalk(g, 4321, sqrtC, lmax, r, walk)
		sink += walkContribution(g, walk, tree, MeetingFirstMeet, sqrtC)
	}
	_ = sink
}

// BenchmarkFrozenProb vs BenchmarkReachTreeProb: one crash check, flat
// vs map. The probed nodes cycle through the whole graph so both hit
// and miss paths are exercised.
func BenchmarkFrozenProb(b *testing.B) {
	_, _, ft, lmax := kernelBenchSetup(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ft.Prob(i%(lmax+1), graph.NodeID(i%5000))
	}
	_ = sink
}

func BenchmarkReachTreeProb(b *testing.B) {
	_, tree, _, lmax := kernelBenchSetup(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tree.Prob(i%(lmax+1), graph.NodeID(i%5000))
	}
	_ = sink
}

// BenchmarkFreeze prices the compile step itself (paid once per query).
func BenchmarkFreeze(b *testing.B) {
	g := benchGraph(b, 5000, 50000)
	tree := RevReach(g, 1, 0.6, DeriveLmax(0.6), TransitionExact)
	ft := new(FrozenTree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.compile(tree, g.NumNodes())
	}
}

// BenchmarkForwardReachBitset vs BenchmarkForwardReachMap: the
// zero-score prefilter BFS in both forms.
func BenchmarkForwardReachBitset(b *testing.B) {
	g, tree, _, lmax := kernelBenchSetup(b)
	sources := tree.Nodes()
	var reach nodeBitset
	var frontier, next []graph.NodeID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reach = newNodeBitset(reach, g.NumNodes())
		frontier, next = forwardReachBits(g, sources, lmax, reach, frontier, next)
	}
}

func BenchmarkForwardReachMap(b *testing.B) {
	g, tree, _, lmax := kernelBenchSetup(b)
	sources := tree.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forwardReach(g, sources, lmax)
	}
}

// BenchmarkSingleSourceKernels is the end-to-end before/after: one full
// single-source query per iteration, legacy map kernel vs compiled
// kernel, same seed and budget.
func BenchmarkSingleSourceKernels(b *testing.B) {
	g := benchGraph(b, 2000, 20000)
	for _, bc := range []struct {
		name   string
		params Params
	}{
		{"frozen", Params{Iterations: 200, Seed: 1}},
		{"legacy", Params{Iterations: 200, Seed: 1, DisableFrozenKernel: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SingleSource(g, graph.NodeID(i%2000), nil, bc.params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
