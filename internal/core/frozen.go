package core

import (
	"math/bits"

	"crashsim/internal/graph"
)

// FrozenTree is the compiled, immutable query-time form of a ReachTree.
//
// The build-time tree stores one map[NodeID]float64 per level, which is
// the right shape for the level-synchronized DP and for CrashSim-T's
// Equal/DiffNodes pruning — but it puts a hash lookup on every step of
// every sampled walk. Freezing compiles the tree into two flat arrays
// so Prob(step, v) is one paired load, one mask test and at most one
// indexed read:
//
//   - any: one bit per node, set iff the node has mass at some level.
//     At n/8 bytes this stays cache-resident at any graph size we run,
//     so the common miss — the walk is at a node the source tree never
//     touches — is answered without touching the 16·n-byte lv array.
//   - lv: per node, ⌈(lmax+1)/64⌉ interleaved (mask, rank) word pairs,
//     indexed directly by the global node id. mask bit t is set iff the
//     node has mass at step t; rank is the CSR index in probs of the
//     word's first entry. Global indexing spends 16·n bytes per mask
//     word but keeps the walk kernels' probe chain at a single
//     dependent load before the hit test — there is no node remap to
//     chase, and the common miss (a node the source tree never touches)
//     is an all-zero mask word. Interleaving puts a hit's rank on the
//     same cache line as the mask word that proved the hit.
//   - probs: the non-zero probabilities in (node, step) order. The
//     entry for (v, step) sits at the word's rank plus the popcount of
//     the mask bits below step, so a hit costs one popcount and one
//     float64 load, with no loop even past 64 levels.
//
// Values are the exact float64s of the source tree, so every estimate
// computed against the frozen form is bit-identical to the map form —
// the equivalence property test enforces it.
type FrozenTree struct {
	Source graph.NodeID
	Lmax   int

	n         int      // number of nodes the layout covers
	maskWords int      // ⌈(Lmax+1)/64⌉ word pairs per node
	any       []uint64 // n bits: node has mass at some level
	lv        []uint64 // len 2·n·maskWords: interleaved (mask, rank)
	nodes     []graph.NodeID
	probs     []float64
	ents      []frozenEntry // compile-time staging, reused across compiles
	s1        []step1       // per-node first-step table, see buildStep1
}

// step1 is one entry of the first-step acceleration table: for node w,
// the CSR in-edge bounds of w and the tree's step-1 mass at w — every
// value a walk kernel needs when its first hop lands on w, on one
// 16-byte entry instead of spread over inOff, any, lv and probs.
type step1 struct {
	lo, hi int32
	p      float64
}

// frozenEntry stages one (node, step, probability) triple between
// compile passes, so the probability fill iterates a flat slice instead
// of walking the level maps a second time.
type frozenEntry struct {
	v, step int32
	p       float64
}

// Freeze compiles t for queries on a graph with n nodes. The returned
// tree is immutable and safe for concurrent readers.
func (t *ReachTree) Freeze(n int) *FrozenTree {
	f := &FrozenTree{}
	f.compile(t, n)
	return f
}

// compile fills f from t, reusing f's slices when they are large enough
// (the frozen-tree pool in scratch.go depends on this).
func (f *FrozenTree) compile(t *ReachTree, n int) {
	f.Source = t.Source
	f.Lmax = t.Lmax
	f.n = n
	levels := len(t.levels)
	f.maskWords = (levels + 63) / 64
	if f.maskWords < 1 {
		f.maskWords = 1
	}
	mw := f.maskWords

	// Pass 1: level bitmasks. The layout is addressed by global id, so
	// there is no support discovery to do first — one sweep over the
	// level maps sets the bits and stages the (node, step, p) triples,
	// so this is the only pass that pays map iteration.
	f.lv = growUint64(f.lv, 2*n*mw)
	clear(f.lv)
	f.ents = f.ents[:0]
	for step, lvm := range t.levels {
		w, bit := step>>6, uint64(1)<<uint(step&63)
		for v, p := range lvm {
			f.lv[(int(v)*mw+w)*2] |= bit
			f.ents = append(f.ents, frozenEntry{v: int32(v), step: int32(step), p: p})
		}
	}
	entries := len(f.ents)

	// Pass 2: ranks and the support list. Scanning ids in order makes
	// the CSR (node, step)-ordered and the support list sorted, so the
	// layout is deterministic even though map iteration order is not.
	f.nodes = f.nodes[:0]
	f.any = growUint64(f.any, (n+63)/64)
	clear(f.any)
	r := int32(0)
	for v := 0; v < n; v++ {
		base := v * mw * 2
		seen := uint64(0)
		for w := 0; w < mw; w++ {
			word := f.lv[base+w*2]
			f.lv[base+w*2+1] = uint64(r)
			r += int32(bits.OnesCount64(word))
			seen |= word
		}
		if seen != 0 {
			f.any[v>>6] |= uint64(1) << uint(v&63)
			f.nodes = append(f.nodes, graph.NodeID(v))
		}
	}

	// Pass 3: fill probabilities from the staged triples. With the masks
	// complete, the CSR slot of every (node, step) entry is directly
	// computable, so the fill needs no per-node cursor and can visit the
	// entries in any order.
	f.probs = growFloat64(f.probs, entries)
	for _, e := range f.ents {
		w, bit := int(e.step)>>6, uint64(1)<<uint(e.step&63)
		wi := (int(e.v)*mw + w) * 2
		word := f.lv[wi]
		f.probs[int(f.lv[wi+1])+bits.OnesCount64(word&(bit-1))] = e.p
	}
	statFrozenCompiled.Inc()
}

// frozenCarry keeps one compiled FrozenTree alive across CrashSim-T's
// snapshots so tree-stable transitions skip the recompile. Reuse is
// keyed on the source tree's pointer identity: CrashSim-T only carries
// a tree pointer forward when the tree is bit-identical (an empty delta,
// or a Patch that detected no bit-level change), so a pointer match
// guarantees the compiled levels are still exact. The per-node
// first-step table additionally depends on the graph's in-CSR, so it is
// refreshed — alone, an O(n) sweep instead of the O(n + support)
// compile — whenever the snapshot version moved under an unchanged
// tree.
type frozenCarry struct {
	ft      *FrozenTree
	tree    *ReachTree // tree ft's levels were compiled from
	version uint64     // graph version ft's step-1 table was built against
	pooled  bool
}

// prepare returns the frozen form to run this snapshot's estimate
// against (nil routes estimateWith to the legacy map kernel) and
// whether a compile was skipped by reuse. disableKernel forces the
// legacy kernel, mirroring Params.DisableFrozenKernel; otherwise a
// fresh compile happens only when the sampling budget amortizes it,
// the same gate the static estimate applies.
func (fc *frozenCarry) prepare(g *graph.Graph, tree *ReachTree, cands, nr int, disableKernel bool) (*FrozenTree, bool) {
	if disableKernel {
		return nil, false
	}
	if fc.ft != nil && fc.tree == tree {
		if v := g.Version(); v != fc.version {
			fc.ft.buildStep1(g)
			fc.version = v
		}
		return fc.ft, true
	}
	if int64(cands)*int64(nr) < int64(tree.Support()) {
		return nil, false
	}
	if fc.ft == nil {
		fc.ft = acquireFrozen(fc.pooled)
	}
	fc.ft.compile(tree, g.NumNodes())
	fc.ft.buildStep1(g)
	fc.tree = tree
	fc.version = g.Version()
	return fc.ft, false
}

// release returns the carried compiled tree to the pool. The carry must
// not be used afterwards.
func (fc *frozenCarry) release() {
	if fc.ft == nil {
		return
	}
	releaseFrozen(fc.ft, fc.pooled)
	fc.ft, fc.tree = nil, nil
}

// buildStep1 fills the first-step table for walks on g. Every walk's
// first hop draws uniformly from the candidate's in-neighbors, so
// step 1 — the most common step of a geometrically truncated walk — can
// skip the probe chain entirely: the kernels peel it out of the step
// loop and read one s1 entry instead. Must be called after compile and
// before the walk kernels run; the estimators' compile sites do.
func (f *FrozenTree) buildStep1(g *graph.Graph) {
	inOff, _ := g.InCSR()
	n := f.n
	if cap(f.s1) < n {
		f.s1 = make([]step1, n)
	} else {
		f.s1 = f.s1[:n]
	}
	for v := 0; v < n; v++ {
		f.s1[v] = step1{lo: inOff[v], hi: inOff[v+1], p: f.probLive(1, graph.NodeID(v))}
	}
}

// Prob returns the probability that the source's truncated √c-walk is at
// v after step steps — the same value, bit for bit, as the map-backed
// ReachTree.Prob. Out-of-range steps and nodes return 0.
func (f *FrozenTree) Prob(step int, v graph.NodeID) float64 {
	if uint(step) >= uint(f.maskWords<<6) || uint(v) >= uint(f.n) {
		return 0
	}
	return f.probLive(step, v)
}

// probLive is Prob without the range guards, for the walk kernels: there
// the step is bounded by the tree's own l_max and v is a node of the
// graph the tree was built on, so both guards are statically satisfied.
// Small enough to inline, which lets the kernels keep the array base
// pointers in registers across steps.
func (f *FrozenTree) probLive(step int, v graph.NodeID) float64 {
	if f.any[int(v)>>6]&(uint64(1)<<uint(v&63)) == 0 {
		return 0
	}
	wi := (int(v)*f.maskWords + step>>6) * 2
	word := f.lv[wi]
	bit := uint64(1) << uint(step&63)
	if word&bit == 0 {
		return 0
	}
	return f.probs[int(f.lv[wi+1])+bits.OnesCount64(word&(bit-1))]
}

// SupportNodes returns the sorted nodes with positive mass at any level
// (the frozen counterpart of ReachTree.Nodes). The slice is shared with
// the tree and must not be modified.
func (f *FrozenTree) SupportNodes() []graph.NodeID { return f.nodes }

// Support returns the number of stored (step, node) entries.
func (f *FrozenTree) Support() int { return len(f.probs) }

// growUint64 and friends return s resized to n, reallocating only when
// the capacity is insufficient. Contents are unspecified.
func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growFloat64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
