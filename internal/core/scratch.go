package core

import (
	"sync"

	"crashsim/internal/graph"
)

// Query scratch pooling. A single-source query needs a dense score
// array of length n, a candidate list of up to n node ids, a walk
// buffer per worker, and the level maps of the reverse reachable tree.
// Under steady-state service traffic these dominate per-query
// allocations, so they are recycled through sync.Pools. Pooling is
// semantically invisible: every buffer is (re)initialized on acquire,
// and the determinism tests assert bit-identical Scores with pooling
// enabled, disabled, and across worker counts.

// scratch bundles the per-query buffers of estimate.
type scratch struct {
	dense []float64      // per-node accumulated scores, zeroed on acquire
	omega []graph.NodeID // identity candidate list when the caller passes nil
	live  []graph.NodeID // prefilter survivors
	walk  []graph.NodeID // walk buffer for the sequential path
}

// The pools have no New functions: Get returning nil distinguishes a
// pool hit from a miss, feeding the core.pool.* hit/miss counters.
var scratchPool sync.Pool

// acquireScratch returns a scratch whose dense array has length n and
// is zeroed. With pooling disabled it simply allocates fresh buffers.
func acquireScratch(n int, pooled bool) *scratch {
	var s *scratch
	if pooled {
		if v := scratchPool.Get(); v != nil {
			s = v.(*scratch)
			statScratchHits.Inc()
		} else {
			s = new(scratch)
			statScratchMisses.Inc()
		}
	} else {
		s = new(scratch)
	}
	if cap(s.dense) < n {
		s.dense = make([]float64, n)
	} else {
		s.dense = s.dense[:n]
		clear(s.dense)
	}
	return s
}

// release returns the scratch to the pool (no-op when pooling is off).
func (s *scratch) release(pooled bool) {
	if !pooled {
		return
	}
	scratchPool.Put(s)
}

// identity fills and returns the all-nodes candidate list [0, n).
func (s *scratch) identity(n int) []graph.NodeID {
	if cap(s.omega) < n {
		s.omega = make([]graph.NodeID, n)
	}
	s.omega = s.omega[:n]
	for v := range s.omega {
		s.omega[v] = graph.NodeID(v)
	}
	return s.omega
}

// walkPool recycles the per-worker walk buffers of the parallel
// estimate path (the sequential path uses scratch.walk).
var walkPool sync.Pool

func acquireWalk(pooled bool) *[]graph.NodeID {
	if pooled {
		if v := walkPool.Get(); v != nil {
			statWalkHits.Inc()
			return v.(*[]graph.NodeID)
		}
		statWalkMisses.Inc()
	}
	return new([]graph.NodeID)
}

func releaseWalk(w *[]graph.NodeID, pooled bool) {
	if pooled {
		walkPool.Put(w)
	}
}

// treePool recycles ReachTree level storage. Trees returned by the
// public BuildTree/RevReach API may be retained indefinitely by callers
// (CrashSim-T stores them across snapshots), so nothing is pooled
// automatically: only SingleSourceCtx, which fully owns the tree it
// builds, releases it after the estimate.
var treePool sync.Pool

// acquireTree returns a ReachTree with lmax+1 empty level maps, reusing
// pooled map storage (cleared maps keep their buckets, so warm queries
// skip most of the rehash-growth cost of the level DP).
func acquireTree(u graph.NodeID, lmax int) *ReachTree {
	var t *ReachTree
	if v := treePool.Get(); v != nil {
		t = v.(*ReachTree)
		statTreeHits.Inc()
	} else {
		t = new(ReachTree)
		statTreeMisses.Inc()
	}
	t.Source = u
	t.Lmax = lmax
	if cap(t.levels) < lmax+1 {
		old := t.levels[:cap(t.levels)]
		t.levels = make([]map[graph.NodeID]float64, lmax+1)
		copy(t.levels, old)
	} else {
		t.levels = t.levels[:lmax+1]
	}
	for i := range t.levels {
		if t.levels[i] == nil {
			t.levels[i] = make(map[graph.NodeID]float64)
		}
	}
	return t
}

// releaseTree clears t's level maps and returns the storage to the
// pool. The caller must not use t afterwards.
func releaseTree(t *ReachTree, pooled bool) {
	if !pooled || t == nil {
		return
	}
	for i := range t.levels {
		clear(t.levels[i])
	}
	treePool.Put(t)
}
