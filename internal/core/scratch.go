package core

import (
	"sync"

	"crashsim/internal/graph"
)

// Query scratch pooling. A single-source query needs a dense score
// array of length n, a candidate list of up to n node ids, a walk
// buffer per worker, and the level maps of the reverse reachable tree.
// Under steady-state service traffic these dominate per-query
// allocations, so they are recycled through sync.Pools. Pooling is
// semantically invisible: every buffer is (re)initialized on acquire,
// and the determinism tests assert bit-identical Scores with pooling
// enabled, disabled, and across worker counts.

// scratch bundles the per-query buffers of estimate.
type scratch struct {
	dense    []float64      // per-node accumulated scores, zeroed on acquire
	omega    []graph.NodeID // identity candidate list when the caller passes nil
	live     []graph.NodeID // prefilter survivors
	walk     []graph.NodeID // walk buffer for the sequential legacy path
	reach    nodeBitset     // prefilter visited set (zeroed lazily by newNodeBitset)
	frontier []graph.NodeID // prefilter BFS frontier
	next     []graph.NodeID // prefilter BFS next frontier
}

// The pools have no New functions: Get returning nil distinguishes a
// pool hit from a miss, feeding the core.pool.* hit/miss counters.
var scratchPool sync.Pool

// acquireScratch returns a scratch whose dense array has length n and
// is zeroed. With pooling disabled it simply allocates fresh buffers.
func acquireScratch(n int, pooled bool) *scratch {
	var s *scratch
	if pooled {
		if v := scratchPool.Get(); v != nil {
			s = v.(*scratch)
			statScratchHits.Inc()
		} else {
			s = new(scratch)
			statScratchMisses.Inc()
		}
	} else {
		s = new(scratch)
	}
	if cap(s.dense) < n {
		s.dense = make([]float64, n)
	} else {
		s.dense = s.dense[:n]
		clear(s.dense)
	}
	return s
}

// release returns the scratch to the pool (no-op when pooling is off).
func (s *scratch) release(pooled bool) {
	if !pooled {
		return
	}
	scratchPool.Put(s)
}

// identity fills and returns the all-nodes candidate list [0, n).
func (s *scratch) identity(n int) []graph.NodeID {
	if cap(s.omega) < n {
		s.omega = make([]graph.NodeID, n)
	}
	s.omega = s.omega[:n]
	for v := range s.omega {
		s.omega[v] = graph.NodeID(v)
	}
	return s.omega
}

// srcPrep is one unique source's prepared state within a batch: its
// reverse reachable tree, the compiled form when the freeze gate held,
// and this source's dense score window of the shared slab.
type srcPrep struct {
	u     graph.NodeID
	tree  *ReachTree
	ft    *FrozenTree
	dense []float64
}

// batchItem is one (source, candidate) unit of MultiSource's flattened
// work list; src indexes the batch's unique-source prep table.
type batchItem struct {
	src int32
	v   graph.NodeID
}

// batchScratch bundles the per-batch buffers of MultiSource: the shared
// dense score slab (k disjoint windows of length n, one per unique
// source), the flattened work list, the per-source prep records, and an
// embedded scratch providing the prefilter BFS state and the identity
// candidate list — one arena acquisition per batch instead of one
// scratch per source.
type batchScratch struct {
	slab  []float64
	work  []batchItem
	preps []srcPrep
	sc    scratch
}

var batchScratchPool sync.Pool

// acquireBatchScratch returns a batchScratch whose slab covers k
// sources of n nodes each, zeroed, with empty work and prep lists.
func acquireBatchScratch(k, n int, pooled bool) *batchScratch {
	var bs *batchScratch
	if pooled {
		if v := batchScratchPool.Get(); v != nil {
			bs = v.(*batchScratch)
			statBatchScratchHits.Inc()
		} else {
			bs = new(batchScratch)
			statBatchScratchMisses.Inc()
		}
	} else {
		bs = new(batchScratch)
	}
	need := k * n
	if cap(bs.slab) < need {
		bs.slab = make([]float64, need)
	} else {
		bs.slab = bs.slab[:need]
		clear(bs.slab)
	}
	bs.work = bs.work[:0]
	bs.preps = bs.preps[:0]
	return bs
}

// release returns the arena to the pool, dropping the per-source
// pointers first so pooled storage never pins trees that were already
// handed back to their own pools.
func (bs *batchScratch) release(pooled bool) {
	if !pooled {
		return
	}
	for i := range bs.preps {
		bs.preps[i] = srcPrep{}
	}
	bs.preps = bs.preps[:0]
	batchScratchPool.Put(bs)
}

// walkPool recycles the per-worker walk buffers of the parallel
// estimate path (the sequential path uses scratch.walk).
var walkPool sync.Pool

func acquireWalk(pooled bool) *[]graph.NodeID {
	if pooled {
		if v := walkPool.Get(); v != nil {
			statWalkHits.Inc()
			return v.(*[]graph.NodeID)
		}
		statWalkMisses.Inc()
	}
	return new([]graph.NodeID)
}

func releaseWalk(w *[]graph.NodeID, pooled bool) {
	if pooled {
		walkPool.Put(w)
	}
}

// treePool recycles ReachTree level storage. Trees returned by the
// public BuildTree/RevReach API may be retained indefinitely by callers
// (CrashSim-T stores them across snapshots), so nothing is pooled
// automatically: only SingleSourceCtx, which fully owns the tree it
// builds, releases it after the estimate.
var treePool sync.Pool

// acquireTree returns a ReachTree with lmax+1 empty level maps, reusing
// pooled map storage (cleared maps keep their buckets, so warm queries
// skip most of the rehash-growth cost of the level DP).
func acquireTree(u graph.NodeID, lmax int) *ReachTree {
	var t *ReachTree
	if v := treePool.Get(); v != nil {
		t = v.(*ReachTree)
		statTreeHits.Inc()
	} else {
		t = new(ReachTree)
		statTreeMisses.Inc()
	}
	t.Source = u
	t.Lmax = lmax
	if cap(t.levels) < lmax+1 {
		old := t.levels[:cap(t.levels)]
		t.levels = make([]map[graph.NodeID]float64, lmax+1)
		copy(t.levels, old)
	} else {
		t.levels = t.levels[:lmax+1]
	}
	for i := range t.levels {
		if t.levels[i] == nil {
			t.levels[i] = make(map[graph.NodeID]float64)
		}
	}
	return t
}

// releaseTree clears t's level maps and returns the storage to the
// pool. The caller must not use t afterwards.
func releaseTree(t *ReachTree, pooled bool) {
	if !pooled || t == nil {
		return
	}
	for i := range t.levels {
		clear(t.levels[i])
	}
	treePool.Put(t)
}

// patchScratch holds ReachTree.Patch's working state: the affected and
// pusher closures, the per-level receiver/membership/changed bitsets,
// the dense accumulator and the sorted (order, masses) work lists. One
// Patch call touches all of them, so they pool as a unit. Like revAcc,
// nothing is zeroed on acquire beyond first growth: the bitsets are
// re-zeroed through newNodeBitset and acc is only read at freshly
// written indices.
type patchScratch struct {
	affected  []uint64
	pushers   []uint64
	rseen     []uint64
	levelBits []uint64
	changed   []uint64
	acc       []float64
	frontier  []graph.NodeID
	next      []graph.NodeID
	order     []graph.NodeID
	masses    []float64
}

var patchScratchPool sync.Pool

func acquirePatchScratch(n int) *patchScratch {
	var ps *patchScratch
	if v := patchScratchPool.Get(); v != nil {
		ps = v.(*patchScratch)
		statPatchHits.Inc()
	} else {
		ps = new(patchScratch)
		statPatchMisses.Inc()
	}
	if cap(ps.acc) < n {
		ps.acc = make([]float64, n)
	} else {
		ps.acc = ps.acc[:n]
	}
	return ps
}

func releasePatchScratch(ps *patchScratch) { patchScratchPool.Put(ps) }

// temporalScratch holds CrashSim-T's per-run buffers: the incrementally
// maintained sorted candidate list, the per-snapshot pruning decision
// arrays, the Ω-membership bitset behind countOmegaEdges and the
// affected-area BFS state. One run reuses them across every snapshot;
// pooling then recycles them across runs.
type temporalScratch struct {
	candidates []graph.NodeID
	recompute  []graph.NodeID
	sources    []graph.NodeID
	dec        []uint8
	dd         []diffDecision
	omegaBits  []uint64
	reach      []uint64
	frontier   []graph.NodeID
	next       []graph.NodeID
}

var temporalScratchPool sync.Pool

func acquireTemporalScratch(n int, pooled bool) *temporalScratch {
	var ts *temporalScratch
	if pooled {
		if v := temporalScratchPool.Get(); v != nil {
			ts = v.(*temporalScratch)
			statTempHits.Inc()
		} else {
			ts = new(temporalScratch)
			statTempMisses.Inc()
		}
	} else {
		ts = new(temporalScratch)
	}
	if cap(ts.candidates) < n {
		ts.candidates = make([]graph.NodeID, 0, n)
	}
	return ts
}

func (ts *temporalScratch) release(pooled bool) {
	if !pooled {
		return
	}
	temporalScratchPool.Put(ts)
}

// revAcc holds RevReach's per-level accumulation state: a dense mass
// array indexed by node id, a bitset recording which entries of acc are
// live this level, and the current level's (sorted nodes, masses) work
// lists. acc is only read at indices whose seen bit is set and seen is
// returned all-zero (the extraction sweep clears each word it visits),
// so neither array needs zeroing on acquire beyond first growth.
type revAcc struct {
	acc    []float64
	seen   []uint64
	order  []graph.NodeID
	masses []float64
}

var revAccPool sync.Pool

func acquireRevAcc(n int) *revAcc {
	var ra *revAcc
	if v := revAccPool.Get(); v != nil {
		ra = v.(*revAcc)
		statRevAccHits.Inc()
	} else {
		ra = new(revAcc)
		statRevAccMisses.Inc()
	}
	if cap(ra.acc) < n {
		ra.acc = make([]float64, n)
	} else {
		ra.acc = ra.acc[:n]
	}
	words := (n + 63) / 64
	if cap(ra.seen) < words {
		ra.seen = make([]uint64, words)
	} else {
		ra.seen = ra.seen[:words]
	}
	return ra
}

func releaseRevAcc(ra *revAcc) { revAccPool.Put(ra) }

// frozenPool recycles the flat arrays of compiled trees. A FrozenTree's
// dominant buffer is the length-n dense remap; reusing it means a warm
// query's compile step only pays the remap reset and the support-sized
// fills, no allocation.
var frozenPool sync.Pool

func acquireFrozen(pooled bool) *FrozenTree {
	if pooled {
		if v := frozenPool.Get(); v != nil {
			statFrozenHits.Inc()
			return v.(*FrozenTree)
		}
		statFrozenMisses.Inc()
	}
	return new(FrozenTree)
}

// releaseFrozen returns f's storage to the pool. The caller must not
// use f afterwards.
func releaseFrozen(f *FrozenTree, pooled bool) {
	if !pooled || f == nil {
		return
	}
	frozenPool.Put(f)
}
