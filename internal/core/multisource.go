package core

import (
	"context"
	"fmt"
	"sync"

	"crashsim/internal/graph"
)

// MultiSource answers a batch of single-source queries, parallelizing
// across sources (p.Workers bounds the concurrency; each per-source run
// is sequential). Results are keyed by source and are identical to
// running SingleSource per source — including the per-candidate random
// streams, so batch and individual runs agree bit-for-bit.
func MultiSource(g *graph.Graph, sources []graph.NodeID, p Params) (map[graph.NodeID]Scores, error) {
	return MultiSourceCtx(context.Background(), g, sources, p)
}

// MultiSourceCtx is MultiSource with cancellation: no new source starts
// after ctx is done, and in-flight per-source estimates abort through
// SingleSourceCtx's own checks.
func MultiSourceCtx(ctx context.Context, g *graph.Graph, sources []graph.NodeID, p Params) (map[graph.NodeID]Scores, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q := p.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	for _, u := range sources {
		if err := checkSource(g, u); err != nil {
			return nil, err
		}
	}
	out := make(map[graph.NodeID]Scores, len(sources))
	if len(sources) == 0 {
		return out, nil
	}

	perSource := q
	perSource.Workers = 1

	workers := q.Workers
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers <= 1 {
		for _, u := range sources {
			s, err := SingleSourceCtx(ctx, g, u, nil, perSource)
			if err != nil {
				return nil, err
			}
			out[u] = s
		}
		return out, nil
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
		next     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= len(sources) {
					mu.Unlock()
					return
				}
				u := sources[next]
				next++
				mu.Unlock()

				s, err := SingleSourceCtx(ctx, g, u, nil, perSource)

				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("core: multi-source at %d: %w", u, err)
					}
				} else {
					out[u] = s
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
