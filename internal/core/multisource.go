package core

import (
	"context"
	"fmt"
	"maps"
	"math"

	"crashsim/internal/graph"
	"crashsim/internal/par"
)

// MultiSource answers a batch of single-source queries in one pipeline
// pass: every distinct source's reverse reachable tree is built (and,
// when the sampling budget amortizes it, frozen) exactly once, the
// per-source candidate sets are flattened into a single (source,
// candidate) work list, and that list runs through one par.ForEachCtx
// fan-out over a shared pooled scratch arena. Compared to dispatching
// the sources one by one this pays one scratch acquisition, one
// scheduling ramp-up and — because repeated sources are deduplicated —
// one tree build and one sampling pass per distinct source instead of
// per request.
//
// A nil omega means all nodes; a non-nil omega restricts every source's
// result to those candidates. The returned slice is parallel to
// sources: out[i] holds the scores for sources[i], and repeated sources
// get independent clones so callers may mutate any result freely.
//
// Results are bit-identical to calling SingleSourceCtx per source with
// the same Params: a candidate's random stream is derived from (Seed,
// candidate) alone, so neither the batching, the worker count, nor the
// composition of the batch changes any score — the equivalence tests
// enforce this across all three meeting rules.
//
// Cancellation is all-or-nothing: once ctx is done no new work items
// start, in-flight kernels abort through their own checks, and the call
// returns (nil, ctx.Err()).
func MultiSource(ctx context.Context, g *graph.Graph, sources, omega []graph.NodeID, p Params) ([]Scores, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	q := p.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	for _, u := range sources {
		if err := checkSource(g, u); err != nil {
			return nil, err
		}
	}
	for _, v := range omega {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("core: candidate %d out of range for n=%d", v, n)
		}
	}
	if len(sources) == 0 {
		return []Scores{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nr := q.iterations(n)
	if nr < 1 {
		return nil, fmt.Errorf("core: derived iteration count %d < 1", nr)
	}

	statBatches.Inc()
	statBatchSources.Add(uint64(len(sources)))

	// Deduplicate: repeated sources (hot keys under skewed serving
	// traffic) are prepared and sampled once; duplicates are satisfied
	// by cloning the unique result during assembly.
	slot := make(map[graph.NodeID]int, len(sources))
	uniq := make([]graph.NodeID, 0, len(sources))
	for _, u := range sources {
		if _, ok := slot[u]; !ok {
			slot[u] = len(uniq)
			uniq = append(uniq, u)
		}
	}
	statBatchDedup.Add(uint64(len(sources) - len(uniq)))

	pooled := !q.DisablePooling
	bs := acquireBatchScratch(len(uniq), n, pooled)
	defer bs.release(pooled)
	// Trees and frozen forms are owned by this batch alone; hand their
	// storage back once the estimates (or an abort) are done. Runs
	// before bs.release (LIFO), which then drops the dangling pointers.
	defer func() {
		for i := range bs.preps {
			releaseFrozen(bs.preps[i].ft, pooled)
			releaseTree(bs.preps[i].tree, pooled)
		}
	}()

	cand := omega
	if cand == nil {
		cand = bs.sc.identity(n)
	}
	sqrtC := math.Sqrt(q.C)

	// Prep phase, sequential per unique source: build the reverse
	// reachable tree, compile it when the freeze gate of estimate holds
	// (same gate, so the kernel choice matches a standalone query),
	// prefilter the candidates, and append one work item per surviving
	// candidate. Work items land source-major, keeping each source's
	// tree and dense window cache-warm within a worker's chunk.
	for i, u := range uniq {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var tree *ReachTree
		if q.NonBacktracking {
			tree = RevReachNonBacktracking(g, u, q.C, q.Lmax, q.Transition)
		} else {
			tree = RevReach(g, u, q.C, q.Lmax, q.Transition)
		}
		var ft *FrozenTree
		if !q.DisableFrozenKernel && int64(len(cand))*int64(nr) >= int64(tree.Support()) {
			ft = acquireFrozen(pooled)
			ft.compile(tree, n)
			ft.buildStep1(g)
		}
		dense := bs.slab[i*n : (i+1)*n]
		bs.preps = append(bs.preps, srcPrep{u: u, tree: tree, ft: ft, dense: dense})
		statCandidates.Add(uint64(len(cand)))
		for _, v := range bs.sc.liveCandidates(g, u, cand, q, tree, ft, dense) {
			bs.work = append(bs.work, batchItem{src: int32(i), v: v})
		}
	}
	statBatchItems.Add(uint64(len(bs.work)))

	// One fan-out over the whole flattened list: every item is an
	// independent (source, candidate) estimate writing a disjoint slab
	// entry, so the loop needs no locking and stays bit-identical for
	// any worker count.
	work, preps := bs.work, bs.preps
	if err := par.ForEachCtx(ctx, len(work), q.Workers, func(idx int) {
		it := work[idx]
		pr := &preps[it.src]
		var s float64
		var err error
		if pr.ft != nil {
			s, err = estimateCandidateFrozen(ctx, g, pr.u, it.v, q, pr.ft, nr, sqrtC)
		} else {
			wb := acquireWalk(pooled)
			var walk []graph.NodeID
			s, walk, err = estimateCandidate(ctx, g, pr.u, it.v, q, pr.tree, nr, sqrtC, *wb)
			*wb = walk
			releaseWalk(wb, pooled)
		}
		if err != nil {
			return // only ctx errors escape; ForEachCtx reports them
		}
		pr.dense[it.v] = s
	}); err != nil {
		return nil, err
	}

	// Assembly: one Scores map per unique source, distributed to every
	// position that asked for it (clones for duplicates, so results
	// never alias each other).
	uniqScores := make([]Scores, len(uniq))
	for i := range preps {
		s := make(Scores, len(cand))
		for _, v := range cand {
			s[v] = preps[i].dense[v]
		}
		uniqScores[i] = s
	}
	out := make([]Scores, len(sources))
	taken := make([]bool, len(uniq))
	for pos, u := range sources {
		i := slot[u]
		if !taken[i] {
			out[pos] = uniqScores[i]
			taken[i] = true
		} else {
			out[pos] = maps.Clone(uniqScores[i])
		}
	}
	return out, nil
}
