package core

import "crashsim/internal/graph"

// nodeBitset is a fixed-size bitset over dense node ids. The zero-score
// prefilter and CrashSim-T's affected-area computation use it in place
// of map[NodeID]struct{} visited sets: membership is one load + AND, and
// the backing []uint64 recycles through the query scratch pool instead
// of re-growing a hash table per query.
type nodeBitset []uint64

// newNodeBitset returns a zeroed bitset able to hold n bits, reusing
// buf's storage when it is large enough.
func newNodeBitset(buf []uint64, n int) nodeBitset {
	words := (n + 63) / 64
	b := growUint64(buf, words)
	clear(b)
	return nodeBitset(b)
}

// Has reports whether v is in the set.
func (b nodeBitset) Has(v graph.NodeID) bool {
	return b[uint(v)>>6]&(1<<(uint(v)&63)) != 0
}

// Add inserts v and reports whether it was newly added.
func (b nodeBitset) Add(v graph.NodeID) bool {
	w, bit := uint(v)>>6, uint64(1)<<(uint(v)&63)
	if b[w]&bit != 0 {
		return false
	}
	b[w] |= bit
	return true
}

// forwardReachBits marks in reach every node reachable from any source
// by following out-edges within depth hops, sources included — the
// bitset form of forwardReach (one multi-source BFS, O(n + m)), used on
// the query hot path. frontier and next are caller-provided buffers
// (possibly nil) whose grown storage is returned for reuse.
func forwardReachBits(g *graph.Graph, sources []graph.NodeID, depth int, reach nodeBitset, frontier, next []graph.NodeID) (f, nx []graph.NodeID) {
	frontier = frontier[:0]
	for _, s := range sources {
		if reach.Add(s) {
			frontier = append(frontier, s)
		}
	}
	next = next[:0]
	for d := 0; d < depth && len(frontier) > 0; d++ {
		next = next[:0]
		for _, v := range frontier {
			for _, w := range g.Out(v) {
				if reach.Add(w) {
					next = append(next, w)
				}
			}
		}
		frontier, next = next, frontier
	}
	return frontier, next
}
