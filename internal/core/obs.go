package core

import "crashsim/internal/obs"

// Work-done counters. They land in the process-wide obs.Default
// registry so every consumer — the HTTP /metrics endpoint, the bench
// harness's work-done footers — reads one source of truth without the
// estimator APIs growing a registry parameter.
//
// Update discipline: the Monte-Carlo inner loop never touches an
// atomic; walk counts accumulate locally and are added once per
// candidate, pool counters tick once per query or per worker, and the
// temporal counters tick once per CrashSim-T run. Counters never
// influence results — the determinism tests stay bit-exact.
var (
	// statWalks counts truncated √c-walks actually sampled (prefiltered
	// candidates sample none).
	statWalks = obs.Default.Counter("core.walks")
	// statCandidates counts candidates requested across all queries.
	statCandidates = obs.Default.Counter("core.candidates")
	// statPrefilterPruned counts candidates the zero-score prefilter
	// proved zero without sampling; pruned/candidates is the prune rate.
	statPrefilterPruned = obs.Default.Counter("core.prefilter_pruned")

	// Scratch-pool traffic: hits reuse pooled buffers, misses allocate.
	statScratchHits   = obs.Default.Counter("core.pool.scratch_hits")
	statScratchMisses = obs.Default.Counter("core.pool.scratch_misses")
	statWalkHits      = obs.Default.Counter("core.pool.walk_hits")
	statWalkMisses    = obs.Default.Counter("core.pool.walk_misses")
	statTreeHits      = obs.Default.Counter("core.pool.tree_hits")
	statTreeMisses    = obs.Default.Counter("core.pool.tree_misses")
	statPatchHits     = obs.Default.Counter("core.pool.patch_hits")
	statPatchMisses   = obs.Default.Counter("core.pool.patch_misses")
	statTempHits      = obs.Default.Counter("core.pool.temporal_hits")
	statTempMisses    = obs.Default.Counter("core.pool.temporal_misses")
	statFrozenHits    = obs.Default.Counter("core.pool.frozen_hits")
	statFrozenMisses  = obs.Default.Counter("core.pool.frozen_misses")
	statRevAccHits    = obs.Default.Counter("core.pool.revacc_hits")
	statRevAccMisses  = obs.Default.Counter("core.pool.revacc_misses")

	// Batched multi-source pipeline traffic: batches counts MultiSource
	// calls, sources the requested sources across them, dedup_hits the
	// repeated sources satisfied by cloning a batch-mate's result
	// instead of re-sampling, and items the flattened (source,
	// candidate) work units that reached the fan-out (post-dedup,
	// post-prefilter). sources/batches is the mean batch size;
	// dedup_hits/sources is the fraction of requests amortized away.
	statBatches      = obs.Default.Counter("core.batch.batches")
	statBatchSources = obs.Default.Counter("core.batch.sources")
	statBatchDedup   = obs.Default.Counter("core.batch.dedup_hits")
	statBatchItems   = obs.Default.Counter("core.batch.items")

	// Batch scratch-arena pool traffic, mirroring the core.pool.* pairs.
	statBatchScratchHits   = obs.Default.Counter("core.pool.batch_hits")
	statBatchScratchMisses = obs.Default.Counter("core.pool.batch_misses")

	// statFrozenCompiled counts reverse-reachable trees compiled into
	// the flat FrozenTree form (one per query on the default kernel;
	// zero when DisableFrozenKernel routes through the map kernel).
	statFrozenCompiled = obs.Default.Counter("core.frozen.compiled")

	// CrashSim-T pruning outcomes, mirroring TemporalStats cumulatively
	// across runs.
	statTemporalSnapshots   = obs.Default.Counter("core.temporal.snapshots")
	statTemporalEvaluated   = obs.Default.Counter("core.temporal.evaluated")
	statTemporalReusedDelta = obs.Default.Counter("core.temporal.reused_delta")
	statTemporalReusedDiff  = obs.Default.Counter("core.temporal.reused_diff")

	// Incremental-pipeline outcomes (PR 5): how each snapshot's source
	// tree was obtained, compiled-tree reuse, and the candidate-tree
	// cache's hit traffic during difference pruning.
	statTemporalTreePatched  = obs.Default.Counter("core.temporal.tree_patched")
	statTemporalTreeRebuilt  = obs.Default.Counter("core.temporal.tree_rebuilt")
	statTemporalFrozenReused = obs.Default.Counter("core.temporal.frozen_reused")
	statTemporalCandHits     = obs.Default.Counter("core.temporal.candtree_hits")
	statTemporalCandMisses   = obs.Default.Counter("core.temporal.candtree_misses")
)
