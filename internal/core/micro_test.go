package core

import (
	"math"
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func TestDiffNodes(t *testing.T) {
	g := graph.PaperExample()
	A := graph.PaperNode("A")
	a := RevReach(g, A, 0.6, 8, TransitionExact)
	b := RevReach(g, A, 0.6, 8, TransitionExact)
	if diff := a.DiffNodes(b, 0); len(diff) != 0 {
		t.Errorf("identical trees diff: %v", diff)
	}
	if diff := a.DiffNodes(nil, 0); len(diff) == 0 {
		t.Error("diff against nil should cover the whole support")
	}

	// Change an edge inside A's reverse reach and verify the diff set
	// contains the propagation frontier.
	d := graph.NewDiGraph(8, true)
	for _, e := range g.Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.RemoveEdge(graph.PaperNode("H"), graph.PaperNode("E")); err != nil {
		t.Fatal(err)
	}
	after := RevReach(d.Freeze(), A, 0.6, 8, TransitionExact)
	diff := a.DiffNodes(after, 1e-12)
	if len(diff) == 0 {
		t.Fatal("edge removal inside the tree produced no diff")
	}
	found := false
	for _, v := range diff {
		if v == graph.PaperNode("H") {
			found = true
		}
	}
	if !found {
		t.Errorf("diff %v does not contain H, whose mass vanished", diff)
	}
	for i := 1; i < len(diff); i++ {
		if diff[i-1] >= diff[i] {
			t.Errorf("DiffNodes not sorted: %v", diff)
		}
	}
}

func TestForwardReach(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, 4 isolated.
	g := graph.NewBuilder(5, true).AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 3).MustFreeze()
	r := forwardReach(g, []graph.NodeID{0}, 2)
	for _, v := range []graph.NodeID{0, 1, 2} {
		if _, ok := r[v]; !ok {
			t.Errorf("node %d missing from depth-2 reach", v)
		}
	}
	if _, ok := r[3]; ok {
		t.Error("node 3 reachable only at depth 3 included at depth 2")
	}
	// Multi-source union.
	r = forwardReach(g, []graph.NodeID{0, 3}, 1)
	if len(r) != 3 { // {0, 1, 3}
		t.Errorf("multi-source reach = %v", r)
	}
	if len(forwardReach(g, nil, 5)) != 0 {
		t.Error("empty sources should reach nothing")
	}
}

// TestPrefilterExactness: the zero-score prefilter must not change any
// score — candidates it drops are exactly those that would have scored
// zero anyway. Compare against a run on a graph where nothing can be
// filtered (every node reaches the source's neighborhood).
func TestPrefilterExactness(t *testing.T) {
	// Chain with a detached tail: 3 -> 2 -> 1 -> 0 plus unreachable 4, 5
	// (4 -> 5 only). Candidates 4 and 5 can never crash into 0's tree.
	g := graph.NewBuilder(6, true).
		AddEdge(3, 2).AddEdge(2, 1).AddEdge(1, 0).AddEdge(4, 5).
		MustFreeze()
	s, err := SingleSource(g, 0, nil, Params{Iterations: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s[4] != 0 || s[5] != 0 {
		t.Errorf("unreachable candidates scored: s(0,4)=%g s(0,5)=%g", s[4], s[5])
	}
	if s[0] != 1 {
		t.Errorf("self score = %g", s[0])
	}
	// Nodes on the chain share no in-neighbors with 0 (walks from 0 die
	// immediately: I(0) = {1}, I(1) = {2}, ... no co-location possible
	// except along the chain at shifted offsets, which never align).
	// What matters here is that the filter kept them (in-reach of the
	// tree) and the estimator ran.
	if len(s) != 6 {
		t.Errorf("result has %d entries, want 6", len(s))
	}
}

func TestSampleWalkGeometricLength(t *testing.T) {
	// On a graph where every node has in-neighbors, the walk length is
	// geometric with continue probability √c; check the empirical mean
	// number of steps against √c/(1−√c).
	g := graph.PaperExample()
	c := 0.25 // √c = 0.5, mean steps = 1
	r := newTestRand(8)
	const trials = 20000
	total := 0
	for i := 0; i < trials; i++ {
		w := SampleWalk(g, 0, math.Sqrt(c), 1000, r, nil)
		total += len(w) - 1
	}
	mean := float64(total) / trials
	if math.Abs(mean-1.0) > 0.05 {
		t.Errorf("mean walk steps = %.3f, want ~1.0 for √c=0.5", mean)
	}
}

func benchGraph(b *testing.B, n, m int) *graph.Graph {
	b.Helper()
	edges, err := gen.ChungLu(n, m, 2.0, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.BuildStatic(n, true, edges)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkRevReach(b *testing.B) {
	g := benchGraph(b, 5000, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RevReach(g, graph.NodeID(i%5000), 0.6, DeriveLmax(0.6), TransitionExact)
	}
}

func BenchmarkSampleWalk(b *testing.B) {
	g := benchGraph(b, 5000, 50000)
	r := newTestRand(1)
	var buf []graph.NodeID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = SampleWalk(g, graph.NodeID(i%5000), math.Sqrt(0.6), 35, r, buf)
	}
}

func BenchmarkSingleSource(b *testing.B) {
	g := benchGraph(b, 2000, 20000)
	p := Params{Iterations: 200, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SingleSource(g, graph.NodeID(i%2000), nil, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleSourceReuse contrasts steady-state allocations with the
// query-scratch pool on (the default) and off: run with -benchmem to see
// allocs/op drop in the pooled case.
func BenchmarkSingleSourceReuse(b *testing.B) {
	g := benchGraph(b, 2000, 20000)
	for _, bc := range []struct {
		name   string
		params Params
	}{
		{"pooled", Params{Iterations: 200, Seed: 1}},
		{"nopool", Params{Iterations: 200, Seed: 1, DisablePooling: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SingleSource(g, graph.NodeID(i%2000), nil, bc.params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSingleSourceParallel(b *testing.B) {
	g := benchGraph(b, 2000, 20000)
	p := Params{Iterations: 200, Seed: 1, Workers: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SingleSource(g, graph.NodeID(i%2000), nil, p); err != nil {
			b.Fatal(err)
		}
	}
}

// countOmegaEdgesMap is the pre-bitset form of countOmegaEdges (hash
// probe per in-edge); it survives only as the micro-benchmark baseline.
func countOmegaEdgesMap(g *graph.Graph, omega map[graph.NodeID]float64) int {
	count := 0
	for v := range omega {
		for _, x := range g.In(v) {
			if _, ok := omega[x]; ok {
				count++
			}
		}
	}
	if !g.Directed() {
		count /= 2
	}
	return count
}

// BenchmarkCountOmegaEdges measures the per-snapshot |E(Ω)| count both
// ways: the pooled-bitset membership test CrashSim-T now uses and the
// old map probe it replaced.
func BenchmarkCountOmegaEdges(b *testing.B) {
	const n, m = 5000, 25000
	edges, err := gen.ErdosRenyi(n, m, true, 71)
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.BuildStatic(n, true, edges)
	if err != nil {
		b.Fatal(err)
	}
	// Ω is half the node set — a mid-history candidate set.
	cands := make([]graph.NodeID, 0, n/2)
	omega := make(map[graph.NodeID]float64, n/2)
	for v := 0; v < n; v += 2 {
		cands = append(cands, graph.NodeID(v))
		omega[graph.NodeID(v)] = 1
	}
	b.Run("bitset", func(b *testing.B) {
		member := newNodeBitset(nil, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(member)
			if countOmegaEdges(g, cands, member) == 0 {
				b.Fatal("no edges counted")
			}
		}
	})
	b.Run("map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if countOmegaEdgesMap(g, omega) == 0 {
				b.Fatal("no edges counted")
			}
		}
	})
}
