package core

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"sync"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// Scores maps candidate nodes to their SimRank estimate with respect to
// the query source.
type Scores map[graph.NodeID]float64

// ctxCheckInterval is how many Monte-Carlo iterations run between
// cancellation checks inside a single candidate's sampling loop; a
// power of two so the check compiles to a mask test.
const ctxCheckInterval = 1024

// SampleWalk appends to buf a truncated √c-walk starting at v: at every
// step the walk stops with probability 1−√c, otherwise it moves to a
// uniformly chosen in-neighbor; it also stops at nodes without
// in-neighbors and after maxSteps steps. The returned slice holds the
// visited nodes (v first), so it has between 1 and maxSteps+1 elements.
//
// sqrtC is √c, hoisted to the caller: the estimator invokes SampleWalk
// n_r times per candidate and must not recompute the square root per
// walk.
func SampleWalk(g adjacency, v graph.NodeID, sqrtC float64, maxSteps int, r *rng.Source, buf []graph.NodeID) []graph.NodeID {
	buf = append(buf[:0], v)
	cur := v
	for step := 0; step < maxSteps; step++ {
		if r.Float64() >= sqrtC {
			break
		}
		in := g.In(cur)
		if len(in) == 0 {
			break
		}
		cur = in[r.IntN(len(in))]
		buf = append(buf, cur)
	}
	return buf
}

// SingleSource runs CrashSim (Algorithm 1): it estimates the SimRank
// between u and every node in the candidate set omega on graph g. A nil
// omega means all nodes, i.e. the usual single-source query. The result
// satisfies |s(u,v) − sim(u,v)| ≤ ε with probability ≥ 1−δ per node
// (Theorem 1).
func SingleSource(g *graph.Graph, u graph.NodeID, omega []graph.NodeID, p Params) (Scores, error) {
	return SingleSourceCtx(context.Background(), g, u, omega, p)
}

// SingleSourceCtx is SingleSource with cancellation: the Monte-Carlo
// loop checks ctx between candidates and every ctxCheckInterval
// iterations within a candidate, so a deadline or client disconnect
// stops CPU work promptly and returns ctx.Err(). Results for a given
// seed are identical to SingleSource.
func SingleSourceCtx(ctx context.Context, g *graph.Graph, u graph.NodeID, omega []graph.NodeID, p Params) (Scores, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tree, q, err := prepare(g, u, p)
	if err != nil {
		return nil, err
	}
	// The tree is owned by this query alone, so its level storage can go
	// back to the pool once the estimate is done.
	defer releaseTree(tree, !q.DisablePooling)
	return estimate(ctx, g, u, omega, q, tree)
}

// SingleSourceWithTree is SingleSource with a caller-provided reverse
// reachable tree for u, letting CrashSim-T reuse the tree it already
// computed for pruning. The tree must have been built on g with the same
// parameters.
func SingleSourceWithTree(g *graph.Graph, u graph.NodeID, omega []graph.NodeID, p Params, tree *ReachTree) (Scores, error) {
	q := p.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := checkSource(g, u); err != nil {
		return nil, err
	}
	if tree == nil || tree.Source != u || tree.Lmax != q.Lmax {
		return nil, fmt.Errorf("core: provided tree does not match source %d with lmax %d", u, q.Lmax)
	}
	return estimate(context.Background(), g, u, omega, q, tree)
}

// BuildTree builds the reverse reachable tree CrashSim would use for a
// query from u under p. It is exposed for CrashSim-T and for tools that
// inspect the tree (cmd/repro's Example 2 reproduction).
func BuildTree(g adjacency, u graph.NodeID, p Params) (*ReachTree, error) {
	q := p.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.NonBacktracking {
		return RevReachNonBacktracking(g, u, q.C, q.Lmax, q.Transition), nil
	}
	return RevReach(g, u, q.C, q.Lmax, q.Transition), nil
}

func prepare(g *graph.Graph, u graph.NodeID, p Params) (*ReachTree, Params, error) {
	q := p.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, q, err
	}
	if err := checkSource(g, u); err != nil {
		return nil, q, err
	}
	tree, err := BuildTree(g, u, q)
	if err != nil {
		return nil, q, err
	}
	return tree, q, nil
}

func checkSource(g *graph.Graph, u graph.NodeID) error {
	if u < 0 || int(u) >= g.NumNodes() {
		return fmt.Errorf("core: source %d out of range for n=%d", u, g.NumNodes())
	}
	return nil
}

// estimate runs the n_r Monte-Carlo iterations. The loop is organized
// per-candidate rather than per-iteration (the sums are identical), so
// candidates can be processed independently and in parallel; every
// candidate draws from its own random stream, which makes results
// invariant to the worker count and to the composition of omega.
//
// The sparse build-time tree is first compiled into its flat FrozenTree
// form (unless p.DisableFrozenKernel keeps the legacy map kernel for
// the ablation), so the per-step crash check inside the walk loop is an
// array load instead of a hash lookup. Scores accumulate in a pooled
// dense array indexed by node (workers write disjoint entries, so no
// locking is needed) and convert to the public Scores map only at the
// end.
func estimate(ctx context.Context, g *graph.Graph, u graph.NodeID, omega []graph.NodeID, p Params, tree *ReachTree) (Scores, error) {
	n := g.NumNodes()
	pooled := !p.DisablePooling

	// Compile the frozen form only when the sampling budget amortizes the
	// compile sweep: freezing costs one pass per tree entry, a fused walk
	// saves on the order of one entry's cost, so below ~one walk per
	// entry (tiny candidate sets from CrashSim-T's pruning, minuscule
	// iteration counts) the legacy kernel is the faster end-to-end choice.
	// Scores are bit-identical either way, so the switch is invisible.
	// (CrashSim-T skips this and calls estimateWith directly, managing
	// the compiled form through its cross-snapshot frozenCarry.)
	cands := len(omega)
	if omega == nil {
		cands = n
	}
	var ft *FrozenTree
	if !p.DisableFrozenKernel && int64(cands)*int64(p.iterations(n)) >= int64(tree.Support()) {
		ft = acquireFrozen(pooled)
		ft.compile(tree, n)
		ft.buildStep1(g)
		defer releaseFrozen(ft, pooled)
	}
	return estimateWith(ctx, g, u, omega, p, tree, ft)
}

// estimateWith is estimate against a caller-chosen kernel form: a
// non-nil ft runs the fused frozen-tree kernels against it (the caller
// keeps ownership — nothing here compiles or releases it), a nil ft
// runs the legacy map kernel against tree. Scores are bit-identical
// either way.
func estimateWith(ctx context.Context, g *graph.Graph, u graph.NodeID, omega []graph.NodeID, p Params, tree *ReachTree, ft *FrozenTree) (Scores, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumNodes()
	pooled := !p.DisablePooling
	sc := acquireScratch(n, pooled)
	defer sc.release(pooled)

	if omega == nil {
		omega = sc.identity(n)
	}
	for _, v := range omega {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("core: candidate %d out of range for n=%d", v, n)
		}
	}
	nr := p.iterations(n)
	if nr < 1 {
		return nil, fmt.Errorf("core: derived iteration count %d < 1", nr)
	}

	dense := sc.dense
	sqrtC := math.Sqrt(p.C)

	statCandidates.Add(uint64(len(omega)))

	live := sc.liveCandidates(g, u, omega, p, tree, ft, dense)

	workers := p.Workers
	if workers > len(live) {
		workers = len(live)
	}
	if workers <= 1 {
		walk := sc.walk
		for _, v := range live {
			if err := ctx.Err(); err != nil {
				sc.walk = walk
				return nil, err
			}
			var s float64
			var err error
			if ft != nil {
				s, err = estimateCandidateFrozen(ctx, g, u, v, p, ft, nr, sqrtC)
			} else {
				s, walk, err = estimateCandidate(ctx, g, u, v, p, tree, nr, sqrtC, walk)
			}
			if err != nil {
				sc.walk = walk
				return nil, err
			}
			dense[v] = s
		}
		sc.walk = walk
	} else {
		var wg sync.WaitGroup
		chunk := (len(live) + workers - 1) / workers
		for lo := 0; lo < len(live); lo += chunk {
			hi := lo + chunk
			if hi > len(live) {
				hi = len(live)
			}
			wg.Add(1)
			go func(part []graph.NodeID) {
				defer wg.Done()
				var walk []graph.NodeID
				var wb *[]graph.NodeID
				if ft == nil {
					wb = acquireWalk(pooled)
					defer releaseWalk(wb, pooled)
					walk = *wb
				}
				for _, v := range part {
					if ctx.Err() != nil {
						break
					}
					var s float64
					var err error
					if ft != nil {
						s, err = estimateCandidateFrozen(ctx, g, u, v, p, ft, nr, sqrtC)
					} else {
						s, walk, err = estimateCandidate(ctx, g, u, v, p, tree, nr, sqrtC, walk)
					}
					if err != nil {
						break // only ctx errors escape; reported below
					}
					dense[v] = s
				}
				if wb != nil {
					*wb = walk
				}
			}(live[lo:hi])
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	scores := make(Scores, len(omega))
	for _, v := range omega {
		scores[v] = dense[v]
	}
	return scores, nil
}

// liveCandidates applies the zero-score prefilter for one source query:
// a candidate's walk can only crash into the source tree if the
// candidate is forward-reachable (via out-edges) from some tree node
// within l_max hops. Everything else provably scores 0, so it is
// excluded before any sampling — on graphs with small reverse
// neighborhoods (e.g. citation graphs with many uncited papers) this
// removes most of the work. A non-nil ft runs the BFS over a pooled
// bitset; the legacy path keeps the map form so the ablation measures
// the old kernel end to end. A pruned source gets its defined
// self-score written into dense directly (sim(u,u) = 1). The returned
// slice aliases sc.live and is valid until the next call; with the
// prefilter disabled it is omega unchanged. Both the single-source and
// the batched multi-source paths run their candidate sets through this
// one helper, so the pruning decision is identical in either mode.
func (sc *scratch) liveCandidates(g *graph.Graph, u graph.NodeID, omega []graph.NodeID, p Params, tree *ReachTree, ft *FrozenTree, dense []float64) []graph.NodeID {
	if p.DisablePrefilter {
		return omega
	}
	n := g.NumNodes()
	live := sc.live[:0]
	if ft != nil {
		reach := newNodeBitset(sc.reach, n)
		sc.frontier, sc.next = forwardReachBits(g, ft.SupportNodes(), p.Lmax, reach, sc.frontier, sc.next)
		sc.reach = reach
		for _, v := range omega {
			if reach.Has(v) && g.InDegree(v) > 0 {
				live = append(live, v)
			} else if v == u {
				dense[v] = 1
			}
		}
	} else {
		reach := forwardReach(g, tree.Nodes(), p.Lmax)
		for _, v := range omega {
			if _, ok := reach[v]; ok && g.InDegree(v) > 0 {
				live = append(live, v)
			} else if v == u {
				dense[v] = 1
			}
		}
	}
	sc.live = live
	statPrefilterPruned.Add(uint64(len(omega) - len(live)))
	return live
}

// forwardReach returns the set of nodes reachable from any source node
// by following out-edges within depth hops, sources included — one
// multi-source BFS, O(n + m). It backs the legacy (pre-frozen) kernel;
// the hot path uses forwardReachBits.
func forwardReach(g *graph.Graph, sources []graph.NodeID, depth int) map[graph.NodeID]struct{} {
	reach := make(map[graph.NodeID]struct{}, len(sources)*2)
	frontier := make([]graph.NodeID, 0, len(sources))
	for _, s := range sources {
		if _, ok := reach[s]; !ok {
			reach[s] = struct{}{}
			frontier = append(frontier, s)
		}
	}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []graph.NodeID
		for _, v := range frontier {
			for _, w := range g.Out(v) {
				if _, ok := reach[w]; !ok {
					reach[w] = struct{}{}
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return reach
}

// estimateCandidate runs the n_r walks for one candidate against the
// sparse map tree and returns the averaged crash probability together
// with the (possibly grown) walk buffer. It is the legacy kernel, kept
// for the DisableFrozenKernel ablation and as the reference the frozen
// kernel is property-tested against. The only error it can return is
// ctx.Err().
func estimateCandidate(ctx context.Context, g *graph.Graph, u, v graph.NodeID, p Params, tree *ReachTree, nr int, sqrtC float64, walk []graph.NodeID) (float64, []graph.NodeID, error) {
	if v == u {
		return 1, walk, nil // sim(u,u) = 1 by definition
	}
	r := rng.Split(p.Seed, uint64(v))
	sum := 0.0
	for k := 0; k < nr; k++ {
		if k&(ctxCheckInterval-1) == ctxCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				statWalks.Add(uint64(k))
				return 0, walk, err
			}
		}
		walk = SampleWalk(g, v, sqrtC, p.Lmax, r, walk)
		sum += walkContribution(g, walk, tree, p.Meeting, sqrtC)
	}
	statWalks.Add(uint64(nr))
	return sum / float64(nr), walk, nil
}

// estimateCandidateFrozen is estimateCandidate against the compiled
// tree: sampling and scoring are fused into one loop per walk (the walk
// is never materialized), and the whole n_r budget runs inside one
// kernel call, so per-walk costs reduce to the walk itself — the
// meeting-rule dispatch, the CSR array setup and the start node's
// offsets are all paid once per candidate. Contributions are
// bit-identical to the legacy kernel — same random stream, same
// floating-point operation order.
func estimateCandidateFrozen(ctx context.Context, g *graph.Graph, u, v graph.NodeID, p Params, ft *FrozenTree, nr int, sqrtC float64) (float64, error) {
	if v == u {
		return 1, nil // sim(u,u) = 1 by definition
	}
	r := rng.FastSplit(p.Seed, uint64(v))
	sum, _, walks, err := kernelFor(p.Meeting)(ctx, g, ft, v, sqrtC, p.Lmax, nr, &r)
	statWalks.Add(uint64(walks))
	if err != nil {
		return 0, err
	}
	return sum / float64(nr), nil
}

// candidateKernel runs a candidate's full n_r-walk budget against the
// frozen tree and returns the summed contributions, their squares (for
// the with-error path's variance; one multiply-add per walk, noise for
// the callers that drop it), the number of walks completed, and the
// context error that cut the loop short, if any. Kernels draw from the
// devirtualized rng.Fast — the same stream rng.Split yields, minus the
// interface dispatch that would otherwise sit on every step.
type candidateKernel func(ctx context.Context, g *graph.Graph, ft *FrozenTree, v graph.NodeID, sqrtC float64, lmax, nr int, r *rng.Fast) (sum, sumSq float64, walks int, err error)

// kernelFor resolves the meeting rule to its fused sample-and-score
// kernel.
func kernelFor(rule MeetingRule) candidateKernel {
	switch rule {
	case MeetingAny:
		return candidateScoreAny
	case MeetingFirstCrash:
		return candidateScoreFirstCrash
	default:
		return candidateScoreFirstMeet
	}
}

// The three kernels below fuse SampleWalk with walkContribution. They
// consume the random stream in exactly SampleWalk's order (one Float64,
// then one IntN when the walk continues), and they accumulate in
// exactly walkContribution's order, so estimates are bit-identical to
// the legacy two-pass kernel; the determinism tests enforce this. The
// √c continue-test is done in integer space — Bits53 consumes the same
// word Float64 would, and Threshold53 makes the comparison exact — so
// the hot path never converts the draw to a float.
// The walk steps through the raw in-adjacency CSR — the offsets of the
// next position are fetched at arrival, so the first-meet rule's
// carried-mass update reuses the degree the step already loaded instead
// of re-deriving g.InDegree.
// The first step is peeled out of the step loop: every walk starts at
// v, so the hop draws from a fixed range (whose bounds, and a walk
// that cannot move at all, are rejected once per candidate), and the
// landing node's crash probability and onward bounds come from the
// 16-byte s1 table entry instead of the inOff/any/lv/probs probe
// chain. On a geometrically truncated walk the first step is the most
// common one, so the peel removes roughly a quarter of all probes.
// A candidate with no in-edges (or lmax < 1) never moves, so every
// walk contributes exactly 0 — the same sum the legacy kernel reaches
// after sampling, returned without drawing.

func candidateScoreAny(ctx context.Context, g *graph.Graph, ft *FrozenTree, v graph.NodeID, sqrtC float64, lmax, nr int, r *rng.Fast) (sum, sumSq float64, walks int, err error) {
	inOff, inAdj := g.InCSR()
	lo0, hi0 := inOff[v], inOff[v+1]
	u0 := uint64(hi0 - lo0)
	if lmax < 1 || u0 == 0 {
		return 0, 0, nr, nil
	}
	s1 := ft.s1
	// The probe arrays come off the struct once: every RNG draw stores
	// through r, which keeps the compiler from proving ft's fields
	// unchanged across steps — local slice headers pin the base pointers
	// in registers for the whole candidate. The probe itself (any-bit
	// test, lv pair, popcount into probs) is probLive written out against
	// these locals.
	anyB, lv, probs, mw := ft.any, ft.lv, ft.probs, ft.maskWords
	// Stage the candidate's own first-hop entries in a stack buffer:
	// after the first walk these few lines are L1-resident, so the
	// peeled first step reads one hot entry instead of gathering
	// through inAdj and the length-n s1 table on every walk. Candidates
	// with more in-edges than the buffer (rare) gather directly.
	var entBuf [64]step1
	var ent []step1
	if u0 <= uint64(len(entBuf)) {
		ent = entBuf[:u0]
		for j := range ent {
			ent[j] = s1[inAdj[lo0+int32(j)]]
		}
	}
	thresh := rng.Threshold53(sqrtC)
	for k := 0; k < nr; k++ {
		if k&(ctxCheckInterval-1) == ctxCheckInterval-1 {
			if e := ctx.Err(); e != nil {
				return 0, 0, k, e
			}
		}
		x := 0.0
		if r.Bits53() < thresh {
			// Uniform index in [0, u0): rng.IntN's algorithm (power-of-
			// two mask, else Lemire with rejection tail) written out so the
			// draw compiles into the loop with no call — a call here would
			// spill the kernel's live float registers every step. The
			// byte-identity tests pin this against the rng implementation.
			x64 := r.Uint64()
			var j uint64
			if u0&(u0-1) == 0 {
				j = x64 & (u0 - 1)
			} else {
				hi2, lo2 := bits.Mul64(x64, u0)
				if lo2 < u0 {
					t := -u0 % u0
					for lo2 < t {
						hi2, lo2 = bits.Mul64(r.Uint64(), u0)
					}
				}
				j = hi2
			}
			var e step1
			if ent != nil {
				e = ent[j]
			} else {
				e = s1[inAdj[lo0+int32(j)]]
			}
			lo, hi := e.lo, e.hi
			x = e.p
			for step := 2; step <= lmax; step++ {
				if r.Bits53() >= thresh {
					break
				}
				deg := int(hi - lo)
				if deg == 0 {
					break
				}
				x64 := r.Uint64()
				u := uint64(deg)
				var j uint64
				if u&(u-1) == 0 {
					j = x64 & (u - 1)
				} else {
					hi2, lo2 := bits.Mul64(x64, u)
					if lo2 < u {
						t := -u % u
						for lo2 < t {
							hi2, lo2 = bits.Mul64(r.Uint64(), u)
						}
					}
					j = hi2
				}
				cur := inAdj[lo+int32(j)]
				lo, hi = inOff[cur], inOff[cur+1]
				if anyB[int(cur)>>6]&(uint64(1)<<uint(cur&63)) != 0 {
					wi := (int(cur)*mw + step>>6) * 2
					word := lv[wi]
					bit := uint64(1) << uint(step&63)
					if word&bit != 0 {
						x += probs[int(lv[wi+1])+bits.OnesCount64(word&(bit-1))]
					}
				}
			}
		}
		sum += x
		sumSq += x * x
	}
	return sum, sumSq, nr, nil
}

func candidateScoreFirstCrash(ctx context.Context, g *graph.Graph, ft *FrozenTree, v graph.NodeID, sqrtC float64, lmax, nr int, r *rng.Fast) (sum, sumSq float64, walks int, err error) {
	// After the first positive crash probability a walk's contribution
	// is final, but the walk must still be sampled to its end so the
	// candidate's random stream stays aligned with the legacy kernel.
	inOff, inAdj := g.InCSR()
	lo0, hi0 := inOff[v], inOff[v+1]
	u0 := uint64(hi0 - lo0)
	if lmax < 1 || u0 == 0 {
		return 0, 0, nr, nil
	}
	s1 := ft.s1
	// See candidateScoreAny: local headers keep the probe bases in
	// registers across the RNG's stores.
	anyB, lv, probs, mw := ft.any, ft.lv, ft.probs, ft.maskWords
	// Stage the candidate's own first-hop entries in a stack buffer:
	// after the first walk these few lines are L1-resident, so the
	// peeled first step reads one hot entry instead of gathering
	// through inAdj and the length-n s1 table on every walk. Candidates
	// with more in-edges than the buffer (rare) gather directly.
	var entBuf [64]step1
	var ent []step1
	if u0 <= uint64(len(entBuf)) {
		ent = entBuf[:u0]
		for j := range ent {
			ent[j] = s1[inAdj[lo0+int32(j)]]
		}
	}
	thresh := rng.Threshold53(sqrtC)
	for k := 0; k < nr; k++ {
		if k&(ctxCheckInterval-1) == ctxCheckInterval-1 {
			if e := ctx.Err(); e != nil {
				return 0, 0, k, e
			}
		}
		x := 0.0
		if r.Bits53() < thresh {
			// See candidateScoreAny for the inlined uniform draw.
			x64 := r.Uint64()
			var j uint64
			if u0&(u0-1) == 0 {
				j = x64 & (u0 - 1)
			} else {
				hi2, lo2 := bits.Mul64(x64, u0)
				if lo2 < u0 {
					t := -u0 % u0
					for lo2 < t {
						hi2, lo2 = bits.Mul64(r.Uint64(), u0)
					}
				}
				j = hi2
			}
			var e step1
			if ent != nil {
				e = ent[j]
			} else {
				e = s1[inAdj[lo0+int32(j)]]
			}
			lo, hi := e.lo, e.hi
			x = e.p
			for step := 2; step <= lmax; step++ {
				if r.Bits53() >= thresh {
					break
				}
				deg := int(hi - lo)
				if deg == 0 {
					break
				}
				x64 := r.Uint64()
				u := uint64(deg)
				var j uint64
				if u&(u-1) == 0 {
					j = x64 & (u - 1)
				} else {
					hi2, lo2 := bits.Mul64(x64, u)
					if lo2 < u {
						t := -u % u
						for lo2 < t {
							hi2, lo2 = bits.Mul64(r.Uint64(), u)
						}
					}
					j = hi2
				}
				cur := inAdj[lo+int32(j)]
				lo, hi = inOff[cur], inOff[cur+1]
				if x == 0 && anyB[int(cur)>>6]&(uint64(1)<<uint(cur&63)) != 0 {
					wi := (int(cur)*mw + step>>6) * 2
					word := lv[wi]
					bit := uint64(1) << uint(step&63)
					if word&bit != 0 {
						x = probs[int(lv[wi+1])+bits.OnesCount64(word&(bit-1))]
					}
				}
			}
		}
		sum += x
		sumSq += x * x
	}
	return sum, sumSq, nr, nil
}

func candidateScoreFirstMeet(ctx context.Context, g *graph.Graph, ft *FrozenTree, v graph.NodeID, sqrtC float64, lmax, nr int, r *rng.Fast) (sum, sumSq float64, walks int, err error) {
	inOff, inAdj := g.InCSR()
	lo0, hi0 := inOff[v], inOff[v+1]
	u0 := uint64(hi0 - lo0)
	if lmax < 1 || u0 == 0 {
		return 0, 0, nr, nil
	}
	s1 := ft.s1
	// See candidateScoreAny: local headers keep the probe bases in
	// registers across the RNG's stores.
	anyB, lv, probs, mw := ft.any, ft.lv, ft.probs, ft.maskWords
	// Stage the candidate's own first-hop entries in a stack buffer:
	// after the first walk these few lines are L1-resident, so the
	// peeled first step reads one hot entry instead of gathering
	// through inAdj and the length-n s1 table on every walk. Candidates
	// with more in-edges than the buffer (rare) gather directly.
	var entBuf [64]step1
	var ent []step1
	if u0 <= uint64(len(entBuf)) {
		ent = entBuf[:u0]
		for j := range ent {
			ent[j] = s1[inAdj[lo0+int32(j)]]
		}
	}
	thresh := rng.Threshold53(sqrtC)
	for k := 0; k < nr; k++ {
		if k&(ctxCheckInterval-1) == ctxCheckInterval-1 {
			if e := ctx.Err(); e != nil {
				return 0, 0, k, e
			}
		}
		// carried is C_i: the probability mass of source walks that met
		// this walk at an earlier position and then followed the walk's
		// own path; it is excluded from later crashes. At the peeled
		// first step carried is 0, so the step's contribution is the s1
		// mass as-is and the carry seeds from it directly.
		x := 0.0
		if r.Bits53() < thresh {
			// See candidateScoreAny for the inlined uniform draw.
			x64 := r.Uint64()
			var j uint64
			if u0&(u0-1) == 0 {
				j = x64 & (u0 - 1)
			} else {
				hi2, lo2 := bits.Mul64(x64, u0)
				if lo2 < u0 {
					t := -u0 % u0
					for lo2 < t {
						hi2, lo2 = bits.Mul64(r.Uint64(), u0)
					}
				}
				j = hi2
			}
			var e step1
			if ent != nil {
				e = ent[j]
			} else {
				e = s1[inAdj[lo0+int32(j)]]
			}
			lo, hi := e.lo, e.hi
			x = e.p
			carried := 0.0
			if x != 0 {
				if deg := int(hi - lo); deg > 0 {
					carried = x * sqrtC / float64(deg)
				}
			}
			for step := 2; step <= lmax; step++ {
				if r.Bits53() >= thresh {
					break
				}
				deg := int(hi - lo)
				if deg == 0 {
					break
				}
				x64 := r.Uint64()
				u := uint64(deg)
				var j uint64
				if u&(u-1) == 0 {
					j = x64 & (u - 1)
				} else {
					hi2, lo2 := bits.Mul64(x64, u)
					if lo2 < u {
						t := -u % u
						for lo2 < t {
							hi2, lo2 = bits.Mul64(r.Uint64(), u)
						}
					}
					j = hi2
				}
				cur := inAdj[lo+int32(j)]
				lo, hi = inOff[cur], inOff[cur+1]
				p := 0.0
				if anyB[int(cur)>>6]&(uint64(1)<<uint(cur&63)) != 0 {
					wi := (int(cur)*mw + step>>6) * 2
					word := lv[wi]
					bit := uint64(1) << uint(step&63)
					if word&bit != 0 {
						p = probs[int(lv[wi+1])+bits.OnesCount64(word&(bit-1))]
					}
				}
				m := p - carried
				if m < 0 {
					m = 0
				}
				x += m
				// t == 0 forces carried to (+)0 on both branches below,
				// exactly what the legacy kernel's 0·√c/d computes —
				// skipping the divide keeps the bits and drops the most
				// expensive op from the common all-miss walk.
				if t := carried + m; t != 0 {
					if deg = int(hi - lo); deg > 0 {
						carried = t * sqrtC / float64(deg)
					} else {
						carried = 0
					}
				}
			}
		}
		sum += x
		sumSq += x * x
	}
	return sum, sumSq, nr, nil
}

// walkContribution scores one sampled candidate walk against the source
// tree under the configured meeting rule — the map-kernel counterpart
// of the fused walkScore* kernels. Position i of the walk (0-indexed)
// is the candidate walk's location after i steps; crashing requires the
// source walk to be at the same node after the same number of steps.
// Position 0 contributes only when the candidate is the source, which
// callers handle directly.
func walkContribution(g *graph.Graph, walk []graph.NodeID, tree *ReachTree, rule MeetingRule, sc float64) float64 {
	sum := 0.0
	switch rule {
	case MeetingAny:
		for i := 1; i < len(walk); i++ {
			sum += tree.Prob(i, walk[i])
		}
	case MeetingFirstCrash:
		for i := 1; i < len(walk); i++ {
			if pr := tree.Prob(i, walk[i]); pr > 0 {
				sum += pr
				break
			}
		}
	default: // MeetingFirstMeet
		// carried is C_i: the probability mass of source walks that met
		// this walk at an earlier position and then followed the walk's
		// own path; it is excluded from later crashes.
		carried := 0.0
		for i := 1; i < len(walk); i++ {
			m := tree.Prob(i, walk[i]) - carried
			if m < 0 {
				m = 0
			}
			sum += m
			if in := g.InDegree(walk[i]); in > 0 {
				carried = (carried + m) * sc / float64(in)
			} else {
				carried = 0
			}
		}
	}
	return sum
}
