package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// Scores maps candidate nodes to their SimRank estimate with respect to
// the query source.
type Scores map[graph.NodeID]float64

// ctxCheckInterval is how many Monte-Carlo iterations run between
// cancellation checks inside a single candidate's sampling loop; a
// power of two so the check compiles to a mask test.
const ctxCheckInterval = 1024

// SampleWalk appends to buf a truncated √c-walk starting at v: at every
// step the walk stops with probability 1−√c, otherwise it moves to a
// uniformly chosen in-neighbor; it also stops at nodes without
// in-neighbors and after maxSteps steps. The returned slice holds the
// visited nodes (v first), so it has between 1 and maxSteps+1 elements.
func SampleWalk(g adjacency, v graph.NodeID, c float64, maxSteps int, r *rng.Source, buf []graph.NodeID) []graph.NodeID {
	sc := math.Sqrt(c)
	buf = append(buf[:0], v)
	cur := v
	for step := 0; step < maxSteps; step++ {
		if r.Float64() >= sc {
			break
		}
		in := g.In(cur)
		if len(in) == 0 {
			break
		}
		cur = in[r.IntN(len(in))]
		buf = append(buf, cur)
	}
	return buf
}

// SingleSource runs CrashSim (Algorithm 1): it estimates the SimRank
// between u and every node in the candidate set omega on graph g. A nil
// omega means all nodes, i.e. the usual single-source query. The result
// satisfies |s(u,v) − sim(u,v)| ≤ ε with probability ≥ 1−δ per node
// (Theorem 1).
func SingleSource(g *graph.Graph, u graph.NodeID, omega []graph.NodeID, p Params) (Scores, error) {
	return SingleSourceCtx(context.Background(), g, u, omega, p)
}

// SingleSourceCtx is SingleSource with cancellation: the Monte-Carlo
// loop checks ctx between candidates and every ctxCheckInterval
// iterations within a candidate, so a deadline or client disconnect
// stops CPU work promptly and returns ctx.Err(). Results for a given
// seed are identical to SingleSource.
func SingleSourceCtx(ctx context.Context, g *graph.Graph, u graph.NodeID, omega []graph.NodeID, p Params) (Scores, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tree, q, err := prepare(g, u, p)
	if err != nil {
		return nil, err
	}
	// The tree is owned by this query alone, so its level storage can go
	// back to the pool once the estimate is done.
	defer releaseTree(tree, !q.DisablePooling)
	return estimate(ctx, g, u, omega, q, tree)
}

// SingleSourceWithTree is SingleSource with a caller-provided reverse
// reachable tree for u, letting CrashSim-T reuse the tree it already
// computed for pruning. The tree must have been built on g with the same
// parameters.
func SingleSourceWithTree(g *graph.Graph, u graph.NodeID, omega []graph.NodeID, p Params, tree *ReachTree) (Scores, error) {
	q := p.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if err := checkSource(g, u); err != nil {
		return nil, err
	}
	if tree == nil || tree.Source != u || tree.Lmax != q.Lmax {
		return nil, fmt.Errorf("core: provided tree does not match source %d with lmax %d", u, q.Lmax)
	}
	return estimate(context.Background(), g, u, omega, q, tree)
}

// BuildTree builds the reverse reachable tree CrashSim would use for a
// query from u under p. It is exposed for CrashSim-T and for tools that
// inspect the tree (cmd/repro's Example 2 reproduction).
func BuildTree(g adjacency, u graph.NodeID, p Params) (*ReachTree, error) {
	q := p.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.NonBacktracking {
		return RevReachNonBacktracking(g, u, q.C, q.Lmax, q.Transition), nil
	}
	return RevReach(g, u, q.C, q.Lmax, q.Transition), nil
}

func prepare(g *graph.Graph, u graph.NodeID, p Params) (*ReachTree, Params, error) {
	q := p.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, q, err
	}
	if err := checkSource(g, u); err != nil {
		return nil, q, err
	}
	tree, err := BuildTree(g, u, q)
	if err != nil {
		return nil, q, err
	}
	return tree, q, nil
}

func checkSource(g *graph.Graph, u graph.NodeID) error {
	if u < 0 || int(u) >= g.NumNodes() {
		return fmt.Errorf("core: source %d out of range for n=%d", u, g.NumNodes())
	}
	return nil
}

// estimate runs the n_r Monte-Carlo iterations. The loop is organized
// per-candidate rather than per-iteration (the sums are identical), so
// candidates can be processed independently and in parallel; every
// candidate draws from its own random stream, which makes results
// invariant to the worker count and to the composition of omega.
//
// Scores accumulate in a pooled dense array indexed by node (workers
// write disjoint entries, so no locking is needed) and convert to the
// public Scores map only at the end.
func estimate(ctx context.Context, g *graph.Graph, u graph.NodeID, omega []graph.NodeID, p Params, tree *ReachTree) (Scores, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumNodes()
	pooled := !p.DisablePooling
	sc := acquireScratch(n, pooled)
	defer sc.release(pooled)

	if omega == nil {
		omega = sc.identity(n)
	}
	for _, v := range omega {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("core: candidate %d out of range for n=%d", v, n)
		}
	}
	nr := p.iterations(n)
	if nr < 1 {
		return nil, fmt.Errorf("core: derived iteration count %d < 1", nr)
	}

	dense := sc.dense

	statCandidates.Add(uint64(len(omega)))

	// Zero-score prefilter: a candidate's walk can only crash into the
	// source tree if the candidate is forward-reachable (via out-edges)
	// from some tree node within l_max hops. Everything else provably
	// scores 0, so it is excluded before any sampling — on graphs with
	// small reverse neighborhoods (e.g. citation graphs with many
	// uncited papers) this removes most of the work.
	live := omega
	if !p.DisablePrefilter {
		reach := forwardReach(g, tree.Nodes(), p.Lmax)
		live = sc.live[:0]
		for _, v := range omega {
			if _, ok := reach[v]; ok && g.InDegree(v) > 0 {
				live = append(live, v)
			} else if v == u {
				dense[v] = 1
			}
		}
		sc.live = live
		statPrefilterPruned.Add(uint64(len(omega) - len(live)))
	}

	workers := p.Workers
	if workers > len(live) {
		workers = len(live)
	}
	if workers <= 1 {
		walk := sc.walk
		for _, v := range live {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var s float64
			var err error
			s, walk, err = estimateCandidate(ctx, g, u, v, p, tree, nr, walk)
			if err != nil {
				sc.walk = walk
				return nil, err
			}
			dense[v] = s
		}
		sc.walk = walk
	} else {
		var wg sync.WaitGroup
		chunk := (len(live) + workers - 1) / workers
		for lo := 0; lo < len(live); lo += chunk {
			hi := lo + chunk
			if hi > len(live) {
				hi = len(live)
			}
			wg.Add(1)
			go func(part []graph.NodeID) {
				defer wg.Done()
				wb := acquireWalk(pooled)
				defer releaseWalk(wb, pooled)
				walk := *wb
				for _, v := range part {
					if ctx.Err() != nil {
						break
					}
					var s float64
					var err error
					s, walk, err = estimateCandidate(ctx, g, u, v, p, tree, nr, walk)
					if err != nil {
						break // only ctx errors escape; reported below
					}
					dense[v] = s
				}
				*wb = walk
			}(live[lo:hi])
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	scores := make(Scores, len(omega))
	for _, v := range omega {
		scores[v] = dense[v]
	}
	return scores, nil
}

// forwardReach returns the set of nodes reachable from any source node
// by following out-edges within depth hops, sources included — one
// multi-source BFS, O(n + m).
func forwardReach(g *graph.Graph, sources []graph.NodeID, depth int) map[graph.NodeID]struct{} {
	reach := make(map[graph.NodeID]struct{}, len(sources)*2)
	frontier := make([]graph.NodeID, 0, len(sources))
	for _, s := range sources {
		if _, ok := reach[s]; !ok {
			reach[s] = struct{}{}
			frontier = append(frontier, s)
		}
	}
	for d := 0; d < depth && len(frontier) > 0; d++ {
		var next []graph.NodeID
		for _, v := range frontier {
			for _, w := range g.Out(v) {
				if _, ok := reach[w]; !ok {
					reach[w] = struct{}{}
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return reach
}

// estimateCandidate runs the n_r walks for one candidate and returns the
// averaged crash probability together with the (possibly grown) walk
// buffer. The only error it can return is ctx.Err().
func estimateCandidate(ctx context.Context, g *graph.Graph, u, v graph.NodeID, p Params, tree *ReachTree, nr int, walk []graph.NodeID) (float64, []graph.NodeID, error) {
	if v == u {
		return 1, walk, nil // sim(u,u) = 1 by definition
	}
	r := rng.Split(p.Seed, uint64(v))
	sc := math.Sqrt(p.C)
	sum := 0.0
	for k := 0; k < nr; k++ {
		if k&(ctxCheckInterval-1) == ctxCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				statWalks.Add(uint64(k))
				return 0, walk, err
			}
		}
		walk = SampleWalk(g, v, p.C, p.Lmax, r, walk)
		sum += walkContribution(g, walk, tree, p.Meeting, sc)
	}
	statWalks.Add(uint64(nr))
	return sum / float64(nr), walk, nil
}

// walkContribution scores one sampled candidate walk against the source
// tree under the configured meeting rule. Position i of the walk
// (0-indexed) is the candidate walk's location after i steps; crashing
// requires the source walk to be at the same node after the same number
// of steps. Position 0 contributes only when the candidate is the
// source, which callers handle directly.
func walkContribution(g *graph.Graph, walk []graph.NodeID, tree *ReachTree, rule MeetingRule, sc float64) float64 {
	sum := 0.0
	switch rule {
	case MeetingAny:
		for i := 1; i < len(walk); i++ {
			sum += tree.Prob(i, walk[i])
		}
	case MeetingFirstCrash:
		for i := 1; i < len(walk); i++ {
			if pr := tree.Prob(i, walk[i]); pr > 0 {
				sum += pr
				break
			}
		}
	default: // MeetingFirstMeet
		// carried is C_i: the probability mass of source walks that met
		// this walk at an earlier position and then followed the walk's
		// own path; it is excluded from later crashes.
		carried := 0.0
		for i := 1; i < len(walk); i++ {
			m := tree.Prob(i, walk[i]) - carried
			if m < 0 {
				m = 0
			}
			sum += m
			if in := g.InDegree(walk[i]); in > 0 {
				carried = (carried + m) * sc / float64(in)
			} else {
				carried = 0
			}
		}
	}
	return sum
}
