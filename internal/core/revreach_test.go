package core

import (
	"math"
	"testing"
	"testing/quick"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

// TestRevReachExample2 reproduces the reverse reachable tree of node A
// from the paper's Example 2 (c = 0.25, √c = 0.5) exactly. The paper's
// numbers arise from the non-backtracking expansion (Algorithm 2 line 9)
// combined with the literal √c/|I(v)| transition of Algorithm 2 line 12.
func TestRevReachExample2(t *testing.T) {
	g := graph.PaperExample()
	A := graph.PaperNode("A")
	tree := RevReachNonBacktracking(g, A, 0.25, 6, TransitionPaperLiteral)

	want := []struct {
		step  int
		node  string
		value float64
	}{
		{0, "A", 1},
		{1, "B", 0.25},
		{1, "C", 1.0 / 6},
		{2, "E", 0.0625},
		{2, "B", 1.0 / 24},
		{2, "D", 1.0 / 24},
		{3, "H", 0.015625},
		{3, "A", 1.0 / 96},
		{3, "E", 1.0 / 96},
		{3, "B", 1.0 / 96},
	}
	for _, w := range want {
		got := tree.Prob(w.step, graph.PaperNode(w.node))
		if math.Abs(got-w.value) > 1e-12 {
			t.Errorf("U(%d,%s) = %.6f, want %.6f", w.step, w.node, got, w.value)
		}
	}
	// The paper's level sizes: level 1 has {B, C}, level 2 has {E, B, D}
	// (A is excluded by the parent rule), level 3 has {H, A, E, B}.
	for step, wantLen := range map[int]int{1: 2, 2: 3, 3: 4} {
		if got := len(tree.Level(step)); got != wantLen {
			t.Errorf("level %d has %d entries, want %d (%v)", step, got, wantLen, tree.Level(step))
		}
	}
}

// TestExample2CrashProbability checks the walk-contribution arithmetic of
// Example 2: for walk W(C) = (C, D, B, A), the crash probability against
// A's tree is U(2,B) + U(3,A) = 1/24 + 1/96 ≈ 0.0521.
func TestExample2CrashProbability(t *testing.T) {
	g := graph.PaperExample()
	A := graph.PaperNode("A")
	tree := RevReachNonBacktracking(g, A, 0.25, 6, TransitionPaperLiteral)
	walk := []graph.NodeID{graph.PaperNode("C"), graph.PaperNode("D"), graph.PaperNode("B"), graph.PaperNode("A")}
	sum := 0.0
	for i := 1; i < len(walk); i++ {
		sum += tree.Prob(i, walk[i])
	}
	if want := 1.0/24 + 1.0/96; math.Abs(sum-want) > 1e-12 {
		t.Errorf("crash probability = %.6f, want %.6f", sum, want)
	}
}

// TestRevReachExactMassBound verifies the defining property of the exact
// transition rule: the level-t mass is exactly (√c)^t times the
// probability that a t-step prefix exists, hence at most (√c)^t.
func TestRevReachExactMassBound(t *testing.T) {
	g := graph.PaperExample()
	c := 0.6
	tree := RevReach(g, graph.PaperNode("A"), c, DeriveLmax(c), TransitionExact)
	for step := 0; step < tree.NumLevels(); step++ {
		mass := tree.LevelMass(step)
		bound := math.Pow(math.Sqrt(c), float64(step))
		if mass > bound+1e-12 {
			t.Errorf("level %d mass %.6f exceeds (√c)^t = %.6f", step, mass, bound)
		}
	}
	// On the example graph every node has an in-neighbor, so the walk
	// never dies structurally and the mass is exactly the bound.
	for step := 0; step < tree.NumLevels(); step++ {
		mass := tree.LevelMass(step)
		bound := math.Pow(math.Sqrt(c), float64(step))
		if math.Abs(mass-bound) > 1e-9 {
			t.Errorf("level %d mass %.9f != (√c)^t = %.9f on dangling-free graph", step, mass, bound)
		}
	}
}

// TestRevReachMassBoundQuick property-checks the sub-distribution bound
// on random graphs, which may contain dangling nodes that absorb mass.
func TestRevReachMassBoundQuick(t *testing.T) {
	c := 0.6
	lmax := 8
	f := func(seed uint64) bool {
		edges, err := gen.ErdosRenyi(30, 60, true, seed)
		if err != nil {
			return false
		}
		g, err := gen.BuildStatic(30, true, edges)
		if err != nil {
			return false
		}
		tree := RevReach(g, 0, c, lmax, TransitionExact)
		for step := 0; step <= lmax; step++ {
			if tree.LevelMass(step) > math.Pow(math.Sqrt(c), float64(step))+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReachTreeEqual(t *testing.T) {
	g := graph.PaperExample()
	A := graph.PaperNode("A")
	a := RevReach(g, A, 0.6, 10, TransitionExact)
	b := RevReach(g, A, 0.6, 10, TransitionExact)
	if !a.Equal(b, 0) {
		t.Error("identical computations not Equal at tol 0")
	}
	c := RevReach(g, graph.PaperNode("B"), 0.6, 10, TransitionExact)
	if a.Equal(c, 1e-9) {
		t.Error("trees of different sources reported Equal")
	}
	if a.Equal(nil, 0) {
		t.Error("Equal(nil) = true")
	}
	short := RevReach(g, A, 0.6, 5, TransitionExact)
	if a.Equal(short, 1e-9) {
		t.Error("trees with different lmax reported Equal")
	}
}

func TestReachTreeEqualDetectsEdgeChange(t *testing.T) {
	d := graph.NewDiGraph(8, true)
	for _, e := range graph.PaperExample().Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			t.Fatal(err)
		}
	}
	A := graph.PaperNode("A")
	before := RevReach(d.Freeze(), A, 0.6, 10, TransitionExact)
	// Removing an edge far from A (G -> F) still alters A's tree because
	// F and G are reverse-reachable from A via H and E.
	if err := d.RemoveEdge(graph.PaperNode("G"), graph.PaperNode("F")); err != nil {
		t.Fatal(err)
	}
	after := RevReach(d.Freeze(), A, 0.6, 10, TransitionExact)
	if before.Equal(after, 1e-12) {
		t.Error("tree unchanged after removing a reverse-reachable edge")
	}
}

func TestReachTreeNodes(t *testing.T) {
	g := graph.PaperExample()
	tree := RevReach(g, graph.PaperNode("A"), 0.6, 10, TransitionExact)
	nodes := tree.Nodes()
	// Every node of the example graph is reverse-reachable from A within
	// 10 steps.
	if len(nodes) != 8 {
		t.Errorf("tree covers %d nodes, want 8: %v", len(nodes), nodes)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Errorf("Nodes() not sorted: %v", nodes)
		}
	}
}

func TestReachTreeProbOutOfRange(t *testing.T) {
	tree := RevReach(graph.PaperExample(), 0, 0.6, 4, TransitionExact)
	if tree.Prob(-1, 0) != 0 || tree.Prob(99, 0) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
	if tree.Level(-1) != nil || tree.Level(99) != nil {
		t.Error("out-of-range Level should be nil")
	}
}

func TestTransitionRuleStrings(t *testing.T) {
	if TransitionExact.String() != "exact" || TransitionPaperLiteral.String() != "paper-literal" {
		t.Error("TransitionRule strings wrong")
	}
	if MeetingAny.String() != "any" || MeetingFirstCrash.String() != "first-crash" {
		t.Error("MeetingRule strings wrong")
	}
	if TransitionRule(9).String() == "" || MeetingRule(9).String() == "" {
		t.Error("unknown enum values should still stringify")
	}
}

// bitEqualTrees reports whether two trees are bit-for-bit identical:
// same levels, same supports, every probability equal under
// math.Float64bits. Stricter than Equal(o, 0), which admits -0 vs +0.
func bitEqualTrees(a, b *ReachTree) bool {
	if len(a.levels) != len(b.levels) {
		return false
	}
	for step := range a.levels {
		la, lb := a.levels[step], b.levels[step]
		if len(la) != len(lb) {
			return false
		}
		for v, pa := range la {
			pb, ok := lb[v]
			if !ok || math.Float64bits(pa) != math.Float64bits(pb) {
				return false
			}
		}
	}
	return true
}

// TestPatchEquivalence is the contract behind CrashSim-T's incremental
// source tree: walking a churn history and delta-patching the previous
// snapshot's tree must reproduce BuildTree on every snapshot bit for
// bit, and the diff byproduct must equal the DiffNodes sweep the
// rebuild path would have run.
func TestPatchEquivalence(t *testing.T) {
	cases := []struct {
		name     string
		directed bool
		rule     TransitionRule
		rate     float64
	}{
		{"directed-exact-tiny", true, TransitionExact, 0.005},
		{"directed-exact", true, TransitionExact, 0.03},
		{"directed-literal", true, TransitionPaperLiteral, 0.02},
		{"undirected-exact", false, TransitionExact, 0.02},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base, err := gen.ErdosRenyi(60, 180, tc.directed, 31)
			if err != nil {
				t.Fatal(err)
			}
			tg, err := gen.Churn(60, tc.directed, base, gen.ChurnOptions{
				Snapshots: 7, AddRate: tc.rate, DelRate: tc.rate, Seed: 33,
			})
			if err != nil {
				t.Fatal(err)
			}
			p := Params{Transition: tc.rule}.withDefaults()
			cur, err := tg.Cursor()
			if err != nil {
				t.Fatal(err)
			}
			cur.Freeze()
			prev, err := BuildTree(cur.Freeze(), 0, p)
			if err != nil {
				t.Fatal(err)
			}
			patched := 0
			for cur.Next() {
				d := tg.Delta(cur.T() - 1)
				gCur := cur.Freeze()
				want, err := BuildTree(gCur, 0, p)
				if err != nil {
					t.Fatal(err)
				}
				wantDiff := want.DiffNodes(prev, 0)
				got, diff, ok := prev.Patch(gCur, d.Add, d.Del, p, 0, 1e9)
				if !ok {
					t.Fatalf("t=%d: Patch bailed under an unbounded gate", cur.T())
				}
				patched++
				if !bitEqualTrees(got, want) {
					t.Fatalf("t=%d: patched tree differs from rebuild", cur.T())
				}
				if len(diff) != len(wantDiff) {
					t.Fatalf("t=%d: diff %v, want %v", cur.T(), diff, wantDiff)
				}
				for i := range diff {
					if diff[i] != wantDiff[i] {
						t.Fatalf("t=%d: diff %v, want %v", cur.T(), diff, wantDiff)
					}
				}
				if len(wantDiff) == 0 && got != prev {
					t.Errorf("t=%d: bit-identical patch did not return the previous tree pointer", cur.T())
				}
				prev = got
			}
			if patched == 0 {
				t.Fatal("history produced no transitions; test is vacuous")
			}
		})
	}
}

// TestPatchFallbacks: the cases where patching must refuse and hand the
// caller to a full rebuild.
func TestPatchFallbacks(t *testing.T) {
	base, err := gen.ErdosRenyi(40, 120, true, 41)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := gen.Churn(40, true, base, gen.ChurnOptions{
		Snapshots: 2, AddRate: 0.05, DelRate: 0.05, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := Params{}.withDefaults()
	cur, err := tg.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	prev, err := BuildTree(cur.Freeze(), 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatal("history too short")
	}
	d := tg.Delta(0)
	gCur := cur.Freeze()

	// A zero gate makes any non-empty affected closure exceed budget.
	if _, _, ok := prev.Patch(gCur, d.Add, d.Del, p, 0, 0); ok {
		t.Error("Patch accepted a zero gate with a non-empty delta")
	}
	// Non-backtracking trees never patch.
	nb := p
	nb.NonBacktracking = true
	if _, _, ok := prev.Patch(gCur, d.Add, d.Del, nb, 0, 1e9); ok {
		t.Error("Patch accepted non-backtracking params")
	}
	// An Lmax mismatch (tree built with a different truncation) refuses.
	short := p
	short.Lmax = p.Lmax + 1
	if _, _, ok := prev.Patch(gCur, d.Add, d.Del, short, 0, 1e9); ok {
		t.Error("Patch accepted an Lmax mismatch")
	}
}
