package core

import (
	"math"
	"testing"
	"testing/quick"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

// TestRevReachExample2 reproduces the reverse reachable tree of node A
// from the paper's Example 2 (c = 0.25, √c = 0.5) exactly. The paper's
// numbers arise from the non-backtracking expansion (Algorithm 2 line 9)
// combined with the literal √c/|I(v)| transition of Algorithm 2 line 12.
func TestRevReachExample2(t *testing.T) {
	g := graph.PaperExample()
	A := graph.PaperNode("A")
	tree := RevReachNonBacktracking(g, A, 0.25, 6, TransitionPaperLiteral)

	want := []struct {
		step  int
		node  string
		value float64
	}{
		{0, "A", 1},
		{1, "B", 0.25},
		{1, "C", 1.0 / 6},
		{2, "E", 0.0625},
		{2, "B", 1.0 / 24},
		{2, "D", 1.0 / 24},
		{3, "H", 0.015625},
		{3, "A", 1.0 / 96},
		{3, "E", 1.0 / 96},
		{3, "B", 1.0 / 96},
	}
	for _, w := range want {
		got := tree.Prob(w.step, graph.PaperNode(w.node))
		if math.Abs(got-w.value) > 1e-12 {
			t.Errorf("U(%d,%s) = %.6f, want %.6f", w.step, w.node, got, w.value)
		}
	}
	// The paper's level sizes: level 1 has {B, C}, level 2 has {E, B, D}
	// (A is excluded by the parent rule), level 3 has {H, A, E, B}.
	for step, wantLen := range map[int]int{1: 2, 2: 3, 3: 4} {
		if got := len(tree.Level(step)); got != wantLen {
			t.Errorf("level %d has %d entries, want %d (%v)", step, got, wantLen, tree.Level(step))
		}
	}
}

// TestExample2CrashProbability checks the walk-contribution arithmetic of
// Example 2: for walk W(C) = (C, D, B, A), the crash probability against
// A's tree is U(2,B) + U(3,A) = 1/24 + 1/96 ≈ 0.0521.
func TestExample2CrashProbability(t *testing.T) {
	g := graph.PaperExample()
	A := graph.PaperNode("A")
	tree := RevReachNonBacktracking(g, A, 0.25, 6, TransitionPaperLiteral)
	walk := []graph.NodeID{graph.PaperNode("C"), graph.PaperNode("D"), graph.PaperNode("B"), graph.PaperNode("A")}
	sum := 0.0
	for i := 1; i < len(walk); i++ {
		sum += tree.Prob(i, walk[i])
	}
	if want := 1.0/24 + 1.0/96; math.Abs(sum-want) > 1e-12 {
		t.Errorf("crash probability = %.6f, want %.6f", sum, want)
	}
}

// TestRevReachExactMassBound verifies the defining property of the exact
// transition rule: the level-t mass is exactly (√c)^t times the
// probability that a t-step prefix exists, hence at most (√c)^t.
func TestRevReachExactMassBound(t *testing.T) {
	g := graph.PaperExample()
	c := 0.6
	tree := RevReach(g, graph.PaperNode("A"), c, DeriveLmax(c), TransitionExact)
	for step := 0; step < tree.NumLevels(); step++ {
		mass := tree.LevelMass(step)
		bound := math.Pow(math.Sqrt(c), float64(step))
		if mass > bound+1e-12 {
			t.Errorf("level %d mass %.6f exceeds (√c)^t = %.6f", step, mass, bound)
		}
	}
	// On the example graph every node has an in-neighbor, so the walk
	// never dies structurally and the mass is exactly the bound.
	for step := 0; step < tree.NumLevels(); step++ {
		mass := tree.LevelMass(step)
		bound := math.Pow(math.Sqrt(c), float64(step))
		if math.Abs(mass-bound) > 1e-9 {
			t.Errorf("level %d mass %.9f != (√c)^t = %.9f on dangling-free graph", step, mass, bound)
		}
	}
}

// TestRevReachMassBoundQuick property-checks the sub-distribution bound
// on random graphs, which may contain dangling nodes that absorb mass.
func TestRevReachMassBoundQuick(t *testing.T) {
	c := 0.6
	lmax := 8
	f := func(seed uint64) bool {
		edges, err := gen.ErdosRenyi(30, 60, true, seed)
		if err != nil {
			return false
		}
		g, err := gen.BuildStatic(30, true, edges)
		if err != nil {
			return false
		}
		tree := RevReach(g, 0, c, lmax, TransitionExact)
		for step := 0; step <= lmax; step++ {
			if tree.LevelMass(step) > math.Pow(math.Sqrt(c), float64(step))+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReachTreeEqual(t *testing.T) {
	g := graph.PaperExample()
	A := graph.PaperNode("A")
	a := RevReach(g, A, 0.6, 10, TransitionExact)
	b := RevReach(g, A, 0.6, 10, TransitionExact)
	if !a.Equal(b, 0) {
		t.Error("identical computations not Equal at tol 0")
	}
	c := RevReach(g, graph.PaperNode("B"), 0.6, 10, TransitionExact)
	if a.Equal(c, 1e-9) {
		t.Error("trees of different sources reported Equal")
	}
	if a.Equal(nil, 0) {
		t.Error("Equal(nil) = true")
	}
	short := RevReach(g, A, 0.6, 5, TransitionExact)
	if a.Equal(short, 1e-9) {
		t.Error("trees with different lmax reported Equal")
	}
}

func TestReachTreeEqualDetectsEdgeChange(t *testing.T) {
	d := graph.NewDiGraph(8, true)
	for _, e := range graph.PaperExample().Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			t.Fatal(err)
		}
	}
	A := graph.PaperNode("A")
	before := RevReach(d.Freeze(), A, 0.6, 10, TransitionExact)
	// Removing an edge far from A (G -> F) still alters A's tree because
	// F and G are reverse-reachable from A via H and E.
	if err := d.RemoveEdge(graph.PaperNode("G"), graph.PaperNode("F")); err != nil {
		t.Fatal(err)
	}
	after := RevReach(d.Freeze(), A, 0.6, 10, TransitionExact)
	if before.Equal(after, 1e-12) {
		t.Error("tree unchanged after removing a reverse-reachable edge")
	}
}

func TestReachTreeNodes(t *testing.T) {
	g := graph.PaperExample()
	tree := RevReach(g, graph.PaperNode("A"), 0.6, 10, TransitionExact)
	nodes := tree.Nodes()
	// Every node of the example graph is reverse-reachable from A within
	// 10 steps.
	if len(nodes) != 8 {
		t.Errorf("tree covers %d nodes, want 8: %v", len(nodes), nodes)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Errorf("Nodes() not sorted: %v", nodes)
		}
	}
}

func TestReachTreeProbOutOfRange(t *testing.T) {
	tree := RevReach(graph.PaperExample(), 0, 0.6, 4, TransitionExact)
	if tree.Prob(-1, 0) != 0 || tree.Prob(99, 0) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
	if tree.Level(-1) != nil || tree.Level(99) != nil {
		t.Error("out-of-range Level should be nil")
	}
}

func TestTransitionRuleStrings(t *testing.T) {
	if TransitionExact.String() != "exact" || TransitionPaperLiteral.String() != "paper-literal" {
		t.Error("TransitionRule strings wrong")
	}
	if MeetingAny.String() != "any" || MeetingFirstCrash.String() != "first-crash" {
		t.Error("MeetingRule strings wrong")
	}
	if TransitionRule(9).String() == "" || MeetingRule(9).String() == "" {
		t.Error("unknown enum values should still stringify")
	}
}
