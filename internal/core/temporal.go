package core

import (
	"fmt"
	"math"
	"sort"

	"crashsim/internal/graph"
	"crashsim/internal/temporal"
)

// TemporalQuery is the per-snapshot filtering predicate of a temporal
// SimRank query (Definition 3). Concrete trend and threshold queries live
// in internal/tempq; CrashSim-T only needs the incremental Keep decision.
type TemporalQuery interface {
	// Name identifies the query in reports.
	Name() string
	// Keep reports whether a candidate with score cur at snapshot t and
	// score prev at snapshot t-1 remains in the candidate set. At t = 0,
	// prev is NaN.
	Keep(t int, prev, cur float64) bool
}

// TemporalOptions tunes CrashSim-T beyond the static Params.
type TemporalOptions struct {
	// DisableDeltaPruning turns off the affected-area rule (Property 1).
	DisableDeltaPruning bool
	// DisableDiffPruning turns off the reverse-tree comparison rule
	// (Property 2).
	DisableDiffPruning bool
	// TreeTolerance is the per-entry tolerance when comparing reverse
	// reachable trees between snapshots. Default 1e-12.
	TreeTolerance float64
	// Observer, when set, is invoked after every snapshot with the
	// snapshot index and the scores of the current candidate set
	// (before the query filter is applied). The map must not be
	// retained or modified. It powers aggregate queries such as
	// durable top-k that need the whole score trajectory.
	Observer func(t int, scores Scores)
}

func (o TemporalOptions) withDefaults() TemporalOptions {
	if o.TreeTolerance == 0 {
		o.TreeTolerance = 1e-12
	}
	return o
}

// TemporalStats counts the work CrashSim-T did and the work the pruning
// rules avoided; the Fig 7 harness reports them alongside timings.
type TemporalStats struct {
	Snapshots       int // snapshots processed
	Evaluated       int // candidate scores recomputed via CrashSim
	ReusedDelta     int // candidate scores reused thanks to delta pruning
	ReusedDiff      int // candidate scores reused thanks to difference pruning
	TreeStableSteps int // snapshot transitions with an unchanged source tree
}

// TemporalResult is the outcome of a temporal SimRank query.
type TemporalResult struct {
	// Omega is the final candidate set: every node whose score satisfied
	// the query at every snapshot of the interval, sorted by id.
	Omega []graph.NodeID
	// Final holds the last snapshot's scores for the surviving nodes.
	Final Scores
	// Stats describes the work performed.
	Stats TemporalStats
}

// CrashSimT answers a temporal SimRank query (Algorithm 3) over the
// whole history of tg: it starts from the full node set, recomputes per
// snapshot only the scores the pruning rules cannot prove unchanged, and
// filters the candidate set with the query predicate after every
// snapshot.
func CrashSimT(tg *temporal.Graph, u graph.NodeID, q TemporalQuery, p Params, topt TemporalOptions) (*TemporalResult, error) {
	pp := p.withDefaults()
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("core: temporal query must not be nil")
	}
	to := topt.withDefaults()
	n := tg.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("core: source %d out of range for n=%d", u, n)
	}
	cur, err := tg.Cursor()
	if err != nil {
		return nil, err
	}

	res := &TemporalResult{}
	nr := pp.iterations(n)

	// Snapshot 0: full single-source computation and initial filter.
	gPrev := cur.Freeze()
	treePrev, err := BuildTree(gPrev, u, pp)
	if err != nil {
		return nil, err
	}
	scoresPrev, err := SingleSourceWithTree(gPrev, u, nil, pp, treePrev)
	if err != nil {
		return nil, err
	}
	res.Stats.Snapshots++
	res.Stats.Evaluated += n
	if to.Observer != nil {
		to.Observer(0, scoresPrev)
	}
	omega := make(map[graph.NodeID]float64, n)
	for v, s := range scoresPrev {
		if q.Keep(0, math.NaN(), s) {
			omega[v] = s
		}
	}

	for cur.Next() {
		t := cur.T()
		delta := tg.Delta(t - 1)
		gCur := cur.Freeze()
		tree, err := BuildTree(gCur, u, pp)
		if err != nil {
			return nil, err
		}
		res.Stats.Snapshots++

		candidates := sortedKeys(omega)
		recompute := candidates
		reused := make(Scores, len(omega))

		treeDiff := tree.DiffNodes(treePrev, to.TreeTolerance)
		if len(treeDiff) == 0 {
			res.Stats.TreeStableSteps++
		}
		eOmega := countOmegaEdges(gCur, omega)

		// Delta pruning (Theorem 2 / Property 1): a candidate's score
		// can only change if (i) its walks can hit a changed source-tree
		// entry, or (ii) its own walk distribution changed — both only
		// possible inside the forward reach of the altered tree nodes
		// and of the changed edges' heads. Candidates outside that
		// affected area reuse the previous snapshot's score, which is
		// bit-exact because each candidate owns its random stream.
		if !to.DisableDeltaPruning &&
			float64(delta.Size())*float64(eOmega) < float64(len(omega))*float64(nr) {
			affected := affectedArea(gCur, tg.Directed(), delta, treeDiff, pp.Lmax)
			var remaining []graph.NodeID
			for _, v := range recompute {
				if affected.Has(v) {
					remaining = append(remaining, v)
				} else {
					reused[v] = omega[v]
					res.Stats.ReusedDelta++
				}
			}
			recompute = remaining
		}

		// Difference pruning (Property 2): when the source tree is
		// stable and the candidate subgraph is small, compare each
		// remaining candidate's own reverse reachable tree across the
		// two snapshots and skip the unchanged ones. (With a changed
		// source tree this rule is unsound — a candidate's crash
		// probabilities change even if its walk distribution does not —
		// hence the gate, which is also Algorithm 3 line 7.)
		if !to.DisableDiffPruning && len(treeDiff) == 0 && eOmega < nr {
			var remaining []graph.NodeID
			for _, v := range recompute {
				tv := RevReach(gCur, v, pp.C, pp.Lmax, pp.Transition)
				tvPrev := RevReach(gPrev, v, pp.C, pp.Lmax, pp.Transition)
				if tv.Equal(tvPrev, to.TreeTolerance) {
					reused[v] = omega[v]
					res.Stats.ReusedDiff++
				} else {
					remaining = append(remaining, v)
				}
			}
			recompute = remaining
		}

		var fresh Scores
		if len(recompute) > 0 {
			fresh, err = SingleSourceWithTree(gCur, u, recompute, pp, tree)
			if err != nil {
				return nil, err
			}
			res.Stats.Evaluated += len(recompute)
		}

		cur := make(Scores, len(omega))
		for _, v := range candidates {
			if s, ok := reused[v]; ok {
				cur[v] = s
			} else {
				cur[v] = fresh[v]
			}
		}
		if to.Observer != nil {
			to.Observer(t, cur)
		}
		next := make(map[graph.NodeID]float64, len(omega))
		for _, v := range candidates {
			if s := cur[v]; q.Keep(t, omega[v], s) {
				next[v] = s
			}
		}
		omega = next
		gPrev, treePrev = gCur, tree
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}

	res.Omega = sortedKeys(omega)
	res.Final = make(Scores, len(omega))
	for v, s := range omega {
		res.Final[v] = s
	}
	statTemporalSnapshots.Add(uint64(res.Stats.Snapshots))
	statTemporalEvaluated.Add(uint64(res.Stats.Evaluated))
	statTemporalReusedDelta.Add(uint64(res.Stats.ReusedDelta))
	statTemporalReusedDiff.Add(uint64(res.Stats.ReusedDiff))
	return res, nil
}

// affectedArea returns Theorem 2's affected area as one multi-source
// forward BFS of depth lmax over a dense bitset: the reach of (i) the
// altered nodes of the source's reverse reachable tree and (ii) the
// nodes whose in-neighbor lists changed (each changed edge's head for
// directed graphs, both endpoints for undirected ones). A candidate
// outside this set samples identical walks and consults identical crash
// probabilities, so its score is provably unchanged.
func affectedArea(g *graph.Graph, directed bool, d temporal.Delta, treeDiff []graph.NodeID, lmax int) nodeBitset {
	sources := append([]graph.NodeID(nil), treeDiff...)
	for _, set := range [][]graph.Edge{d.Add, d.Del} {
		for _, e := range set {
			sources = append(sources, e.Y)
			if !directed {
				sources = append(sources, e.X)
			}
		}
	}
	reach := newNodeBitset(nil, g.NumNodes())
	forwardReachBits(g, sources, lmax, reach, nil, nil)
	return reach
}

// countOmegaEdges returns |E(Ω)|: the number of edges of g with both
// endpoints in the candidate set.
func countOmegaEdges(g *graph.Graph, omega map[graph.NodeID]float64) int {
	count := 0
	for v := range omega {
		for _, x := range g.In(v) {
			if _, ok := omega[x]; ok {
				count++
			}
		}
	}
	if !g.Directed() {
		count /= 2
	}
	return count
}

func sortedKeys(m map[graph.NodeID]float64) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
