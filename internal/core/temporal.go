package core

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"crashsim/internal/cache"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
	"crashsim/internal/par"
	"crashsim/internal/temporal"
)

// TemporalQuery is the per-snapshot filtering predicate of a temporal
// SimRank query (Definition 3). Concrete trend and threshold queries live
// in internal/tempq; CrashSim-T only needs the incremental Keep decision.
type TemporalQuery interface {
	// Name identifies the query in reports.
	Name() string
	// Keep reports whether a candidate with score cur at snapshot t and
	// score prev at snapshot t-1 remains in the candidate set. At t = 0,
	// prev is NaN.
	Keep(t int, prev, cur float64) bool
}

// TemporalOptions tunes CrashSim-T beyond the static Params.
type TemporalOptions struct {
	// DisableDeltaPruning turns off the affected-area rule (Property 1).
	DisableDeltaPruning bool
	// DisableDiffPruning turns off the reverse-tree comparison rule
	// (Property 2).
	DisableDiffPruning bool
	// DisableTreePatch rebuilds the source tree from scratch on every
	// snapshot instead of delta-patching the previous one. Results are
	// bit-identical either way (Patch is bit-exact); this exists to
	// measure the patch's speedup and to localize patching bugs.
	DisableTreePatch bool
	// DisableCandidateCache turns off the candidate-tree carry between
	// snapshots, so difference pruning recomputes each candidate's
	// previous-snapshot tree instead of reading it from the cache.
	// Pruning decisions are identical either way (a cached tree is
	// bit-identical to a recomputed one).
	DisableCandidateCache bool
	// DisableFrozenReuse recompiles the source tree's frozen form on
	// every estimated snapshot instead of carrying the compiled form
	// across tree-stable transitions. Scores are bit-identical either
	// way.
	DisableFrozenReuse bool
	// TreeTolerance is the per-entry tolerance when comparing reverse
	// reachable trees between snapshots. Default 1e-12.
	TreeTolerance float64
	// PatchGate bounds the affected closure of a tree patch as a
	// fraction of the previous tree's support; past it the source tree
	// is rebuilt from scratch (a patch re-expanding most of the tree
	// costs more than the rebuild it replaces). Default 0.25.
	PatchGate float64
	// CandidateCacheBytes bounds the candidate-tree cache's accounted
	// memory, so Ω-sized histories cannot grow without bound. Default
	// 32 MiB. Non-positive values after defaulting disable the cache.
	CandidateCacheBytes int64
	// Observer, when set, is invoked after every snapshot with the
	// snapshot index and the scores of the current candidate set
	// (before the query filter is applied). The map must not be
	// retained or modified. It powers aggregate queries such as
	// durable top-k that need the whole score trajectory.
	Observer func(t int, scores Scores)
}

func (o TemporalOptions) withDefaults() TemporalOptions {
	if o.TreeTolerance == 0 {
		o.TreeTolerance = 1e-12
	}
	if o.PatchGate == 0 {
		o.PatchGate = 0.25
	}
	if o.CandidateCacheBytes == 0 {
		o.CandidateCacheBytes = 32 << 20
	}
	return o
}

// TemporalStats counts the work CrashSim-T did and the work the pruning
// rules avoided; the Fig 7 harness reports them alongside timings.
// Every field except CandTreeHits/CandTreeMisses is deterministic for a
// fixed seed and any worker count; the cache-traffic pair may shift
// with scheduling because byte-accounted eviction depends on insertion
// order (the determinism test masks exactly those two fields).
type TemporalStats struct {
	Snapshots       int // snapshots processed
	Evaluated       int // candidate scores recomputed via CrashSim
	ReusedDelta     int // candidate scores reused thanks to delta pruning
	ReusedDiff      int // candidate scores reused thanks to difference pruning
	TreeStableSteps int // snapshot transitions with an unchanged source tree
	TreePatched     int // transitions whose source tree was delta-patched
	TreeRebuilt     int // transitions whose source tree was rebuilt from scratch
	FrozenReused    int // estimates that reused the carried compiled tree
	CandTreeHits    int // diff-pruning trees served from the candidate cache
	CandTreeMisses  int // diff-pruning trees recomputed for the previous snapshot
}

// TemporalResult is the outcome of a temporal SimRank query.
type TemporalResult struct {
	// Omega is the final candidate set: every node whose score satisfied
	// the query at every snapshot of the interval, sorted by id.
	Omega []graph.NodeID
	// Final holds the last snapshot's scores for the surviving nodes.
	Final Scores
	// Stats describes the work performed.
	Stats TemporalStats
}

// diffDecision records one candidate's difference-pruning outcome so
// the parallel comparison loop writes disjoint slots and the stats
// merge afterwards runs serially in candidate order.
type diffDecision struct {
	equal bool // candidate tree unchanged within tolerance
	hit   bool // previous-snapshot tree came from the candidate cache
}

// Per-candidate pruning decisions. decRecompute must be the zero value:
// the decision array is cleared to it at every snapshot.
const (
	decRecompute uint8 = iota
	decReuseDelta
	decReuseDiff
)

// minMembershipParallel is the candidate count below which the
// affected-area membership partition stays inline: the test is one load
// and AND per candidate, so fan-out only pays off on large sets.
const minMembershipParallel = 64

// candTreeEntry is one cached candidate tree, tagged with the version
// of the snapshot it was built on. A lookup only counts when the tag
// matches the previous snapshot's version — equal versions mean an
// identical edge set (temporal.Cursor stamps versions from the working
// graph's mutation count), so a tagged tree is bit-identical to what
// RevReach would recompute.
type candTreeEntry struct {
	tree    *ReachTree
	version uint64
}

// CrashSimT answers a temporal SimRank query (Algorithm 3) over the
// whole history of tg: it starts from the full node set, recomputes per
// snapshot only the scores the pruning rules cannot prove unchanged, and
// filters the candidate set with the query predicate after every
// snapshot.
func CrashSimT(tg *temporal.Graph, u graph.NodeID, q TemporalQuery, p Params, topt TemporalOptions) (*TemporalResult, error) {
	return CrashSimTCtx(context.Background(), tg, u, q, p, topt)
}

// CrashSimTCtx is CrashSimT with cancellation, checked between
// snapshots, inside the pruning fan-outs and inside the per-candidate
// sampling loops. The per-snapshot pipeline is incremental: the source
// tree is delta-patched from the previous snapshot's (full rebuild only
// past the patch gate), surviving candidates carry their reverse trees
// forward through a byte-bounded cache so difference pruning does one
// RevReach per candidate instead of two, the pruning loops fan out
// through par.ForEachCtx (scores stay bit-identical for any worker
// count: every candidate owns its random stream and decisions merge in
// candidate order), and tree-stable transitions reuse the previously
// compiled frozen form instead of recompiling it.
func CrashSimTCtx(ctx context.Context, tg *temporal.Graph, u graph.NodeID, q TemporalQuery, p Params, topt TemporalOptions) (*TemporalResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pp := p.withDefaults()
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	if q == nil {
		return nil, fmt.Errorf("core: temporal query must not be nil")
	}
	to := topt.withDefaults()
	n := tg.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("core: source %d out of range for n=%d", u, n)
	}
	cur, err := tg.Cursor()
	if err != nil {
		return nil, err
	}

	res := &TemporalResult{}
	nr := pp.iterations(n)
	pooled := !pp.DisablePooling

	var carry *frozenCarry
	if !to.DisableFrozenReuse {
		carry = &frozenCarry{pooled: pooled}
		defer carry.release()
	}
	var candTrees *cache.Cache
	if !to.DisableCandidateCache && to.CandidateCacheBytes > 0 {
		// The cache is run-scoped, so its metrics go to a private
		// registry instead of polluting the process-wide cache.* series
		// the serving layer exports; CandTreeHits/Misses carry the same
		// information per run.
		candTrees, err = cache.New(cache.Config{MaxBytes: to.CandidateCacheBytes, Metrics: obs.NewRegistry()})
		if err != nil {
			return nil, err
		}
	}
	ts := acquireTemporalScratch(n, pooled)
	defer ts.release(pooled)

	// Snapshot 0: full single-source computation and initial filter. The
	// candidate list is built in node order once and maintained sorted
	// in place from here on — later snapshots only delete from it.
	gPrev := cur.Freeze()
	treePrev, err := BuildTree(gPrev, u, pp)
	if err != nil {
		return nil, err
	}
	scoresPrev, err := runEstimate(ctx, carry, gPrev, u, nil, pp, treePrev, n, nr, res)
	if err != nil {
		return nil, err
	}
	res.Stats.Snapshots++
	res.Stats.Evaluated += n
	if to.Observer != nil {
		to.Observer(0, scoresPrev)
	}
	omega := make(map[graph.NodeID]float64, n)
	candidates := ts.candidates[:0]
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if s := scoresPrev[id]; q.Keep(0, math.NaN(), s) {
			omega[id] = s
			candidates = append(candidates, id)
		}
	}
	ts.candidates = candidates

	for cur.Next() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t := cur.T()
		delta := tg.Delta(t - 1)
		gCur := cur.Freeze()
		res.Stats.Snapshots++

		// Source tree: an empty delta leaves the graph — and therefore
		// the tree, bit for bit — untouched, so the previous tree (and
		// its compiled form) is reused outright. Otherwise the tree is
		// delta-patched from the previous one, which yields the diff as
		// a byproduct; a full rebuild plus DiffNodes sweep remains the
		// fallback when the patch gate trips or patching does not apply.
		// The empty-delta shortcut sits behind the same ablation flag as
		// the patch so DisableTreePatch reproduces the original
		// rebuild-every-snapshot behavior exactly, as its doc promises.
		var tree *ReachTree
		var treeDiff []graph.NodeID
		switch {
		case delta.Size() == 0 && !to.DisableTreePatch:
			tree = treePrev
		case !to.DisableTreePatch && !pp.NonBacktracking:
			if nt, diff, ok := treePrev.Patch(gCur, delta.Add, delta.Del, pp, to.TreeTolerance, to.PatchGate); ok {
				tree, treeDiff = nt, diff
				res.Stats.TreePatched++
			}
		}
		if tree == nil {
			tree, err = BuildTree(gCur, u, pp)
			if err != nil {
				return nil, err
			}
			treeDiff = tree.DiffNodes(treePrev, to.TreeTolerance)
			res.Stats.TreeRebuilt++
		}
		if len(treeDiff) == 0 {
			res.Stats.TreeStableSteps++
		}

		nc := len(candidates)
		omegaBits := newNodeBitset(ts.omegaBits, n)
		ts.omegaBits = omegaBits
		eOmega := countOmegaEdges(gCur, candidates, omegaBits)
		dec := growUint8(ts.dec, nc)
		clear(dec)
		ts.dec = dec

		// Delta pruning (Theorem 2 / Property 1): a candidate's score
		// can only change if (i) its walks can hit a changed source-tree
		// entry, or (ii) its own walk distribution changed — both only
		// possible inside the forward reach of the altered tree nodes
		// and of the changed edges' heads. Candidates outside that
		// affected area reuse the previous snapshot's score, which is
		// bit-exact because each candidate owns its random stream.
		if !to.DisableDeltaPruning &&
			float64(delta.Size())*float64(eOmega) < float64(nc)*float64(nr) {
			affected := affectedArea(gCur, tg.Directed(), delta, treeDiff, pp.Lmax, ts)
			workers := pp.Workers
			if nc < minMembershipParallel {
				workers = 1
			}
			if err := par.ForEachCtx(ctx, nc, workers, func(i int) {
				if !affected.Has(candidates[i]) {
					dec[i] = decReuseDelta
				}
			}); err != nil {
				return nil, err
			}
		}

		// Difference pruning (Property 2): when the source tree is
		// stable and the candidate subgraph is small, compare each
		// remaining candidate's own reverse reachable tree across the
		// two snapshots and skip the unchanged ones. (With a changed
		// source tree this rule is unsound — a candidate's crash
		// probabilities change even if its walk distribution does not —
		// hence the gate, which is also Algorithm 3 line 7.) The current
		// tree always needs computing; the previous one is served from
		// the candidate cache when a version-matching entry survives,
		// halving the RevReach work per carried candidate. Comparisons
		// fan out across workers; decisions land in per-candidate slots
		// and merge serially in candidate order, so everything except
		// the cache-traffic tallies is independent of the worker count.
		if !to.DisableDiffPruning && len(treeDiff) == 0 && eOmega < nr {
			dd := growDiffDecisions(ts.dd, nc)
			ts.dd = dd
			prevVersion, curVersion := gPrev.Version(), gCur.Version()
			if err := par.ForEachCtx(ctx, nc, pp.Workers, func(i int) {
				if dec[i] != decRecompute {
					return
				}
				v := candidates[i]
				tv := RevReach(gCur, v, pp.C, pp.Lmax, pp.Transition)
				var tvPrev *ReachTree
				hit := false
				if candTrees != nil {
					if e, ok := candTrees.Get(candKey(v)); ok {
						if ent := e.(candTreeEntry); ent.version == prevVersion {
							tvPrev, hit = ent.tree, true
						}
					}
				}
				if tvPrev == nil {
					tvPrev = RevReach(gPrev, v, pp.C, pp.Lmax, pp.Transition)
				}
				dd[i] = diffDecision{equal: tv.Equal(tvPrev, to.TreeTolerance), hit: hit}
				if candTrees != nil {
					candTrees.Put(candKey(v), candTreeEntry{tree: tv, version: curVersion}, tv.ApproxBytes())
				}
			}); err != nil {
				return nil, err
			}
			for i := 0; i < nc; i++ {
				if dec[i] != decRecompute {
					continue
				}
				if dd[i].hit {
					res.Stats.CandTreeHits++
				} else {
					res.Stats.CandTreeMisses++
				}
				if dd[i].equal {
					dec[i] = decReuseDiff
				}
			}
		}

		recompute := ts.recompute[:0]
		for i := 0; i < nc; i++ {
			switch dec[i] {
			case decReuseDelta:
				res.Stats.ReusedDelta++
			case decReuseDiff:
				res.Stats.ReusedDiff++
			default:
				recompute = append(recompute, candidates[i])
			}
		}
		ts.recompute = recompute

		var fresh Scores
		if len(recompute) > 0 {
			fresh, err = runEstimate(ctx, carry, gCur, u, recompute, pp, tree, len(recompute), nr, res)
			if err != nil {
				return nil, err
			}
			res.Stats.Evaluated += len(recompute)
		}

		// Merge scores, observe, and filter the sorted candidate list in
		// place (writes trail reads, so the delete-in-place is safe and
		// the list needs no re-sort).
		var observed Scores
		if to.Observer != nil {
			observed = make(Scores, nc)
		}
		kept := candidates[:0]
		for i := 0; i < nc; i++ {
			v := candidates[i]
			prev := omega[v]
			s := prev
			if dec[i] == decRecompute {
				s = fresh[v]
			}
			if observed != nil {
				observed[v] = s
			}
			if q.Keep(t, prev, s) {
				omega[v] = s
				kept = append(kept, v)
			} else {
				delete(omega, v)
			}
		}
		if to.Observer != nil {
			to.Observer(t, observed)
		}
		candidates = kept
		gPrev, treePrev = gCur, tree
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}

	res.Omega = make([]graph.NodeID, len(candidates))
	copy(res.Omega, candidates)
	res.Final = make(Scores, len(candidates))
	for _, v := range candidates {
		res.Final[v] = omega[v]
	}
	statTemporalSnapshots.Add(uint64(res.Stats.Snapshots))
	statTemporalEvaluated.Add(uint64(res.Stats.Evaluated))
	statTemporalReusedDelta.Add(uint64(res.Stats.ReusedDelta))
	statTemporalReusedDiff.Add(uint64(res.Stats.ReusedDiff))
	statTemporalTreePatched.Add(uint64(res.Stats.TreePatched))
	statTemporalTreeRebuilt.Add(uint64(res.Stats.TreeRebuilt))
	statTemporalFrozenReused.Add(uint64(res.Stats.FrozenReused))
	statTemporalCandHits.Add(uint64(res.Stats.CandTreeHits))
	statTemporalCandMisses.Add(uint64(res.Stats.CandTreeMisses))
	return res, nil
}

// runEstimate dispatches one snapshot's estimate: through the frozen
// carry when enabled (reusing the compiled source tree across
// tree-stable transitions), or through the self-contained static path —
// which compiles and releases per call — when the reuse ablation is on.
func runEstimate(ctx context.Context, carry *frozenCarry, g *graph.Graph, u graph.NodeID, omega []graph.NodeID, pp Params, tree *ReachTree, cands, nr int, res *TemporalResult) (Scores, error) {
	if carry == nil {
		return estimate(ctx, g, u, omega, pp, tree)
	}
	ft, reused := carry.prepare(g, tree, cands, nr, pp.DisableFrozenKernel)
	if reused {
		res.Stats.FrozenReused++
	}
	return estimateWith(ctx, g, u, omega, pp, tree, ft)
}

// candKey renders a candidate id as its cache key.
func candKey(v graph.NodeID) string { return strconv.Itoa(int(v)) }

// affectedArea returns Theorem 2's affected area as one multi-source
// forward BFS of depth lmax over a dense bitset: the reach of (i) the
// altered nodes of the source's reverse reachable tree and (ii) the
// nodes whose in-neighbor lists changed (each changed edge's head for
// directed graphs, both endpoints for undirected ones). A candidate
// outside this set samples identical walks and consults identical crash
// probabilities, so its score is provably unchanged.
func affectedArea(g *graph.Graph, directed bool, d temporal.Delta, treeDiff []graph.NodeID, lmax int, ts *temporalScratch) nodeBitset {
	sources := append(ts.sources[:0], treeDiff...)
	for _, set := range [][]graph.Edge{d.Add, d.Del} {
		for _, e := range set {
			sources = append(sources, e.Y)
			if !directed {
				sources = append(sources, e.X)
			}
		}
	}
	reach := newNodeBitset(ts.reach, g.NumNodes())
	ts.frontier, ts.next = forwardReachBits(g, sources, lmax, reach, ts.frontier, ts.next)
	ts.reach, ts.sources = reach, sources
	return reach
}

// countOmegaEdges returns |E(Ω)|: the number of edges of g with both
// endpoints in the candidate set. member must be a zeroed bitset sized
// to the graph; the membership test is then one load and AND per
// in-edge instead of a hash probe (the micro-benchmark measures the
// difference against the old map form).
func countOmegaEdges(g *graph.Graph, cands []graph.NodeID, member nodeBitset) int {
	for _, v := range cands {
		member.Add(v)
	}
	count := 0
	for _, v := range cands {
		for _, x := range g.In(v) {
			if member.Has(x) {
				count++
			}
		}
	}
	if !g.Directed() {
		count /= 2
	}
	return count
}

// growUint8 and growDiffDecisions are growUint64's siblings for the
// pruning decision arrays.
func growUint8(s []uint8, n int) []uint8 {
	if cap(s) < n {
		return make([]uint8, n)
	}
	return s[:n]
}

func growDiffDecisions(s []diffDecision, n int) []diffDecision {
	if cap(s) < n {
		return make([]diffDecision, n)
	}
	return s[:n]
}
