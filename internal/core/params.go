// Package core implements the paper's contribution: the CrashSim
// single-source SimRank estimator for static snapshots (Section III) and
// the CrashSim-T algorithm for temporal SimRank queries (Section IV).
//
// CrashSim computes, once per query, the reverse reachable tree of the
// source u — the probability U[t][x] that a truncated √c-walk from u is
// at x after t steps — and then, for n_r iterations, samples one
// truncated √c-walk from every candidate v and accumulates the
// probability of that walk "crashing" into u's tree at the matching step.
// The truncation length l_max and the iteration count n_r are derived
// from the decay factor c, the error bound ε, and the failure probability
// δ exactly as in Theorem 1.
package core

import (
	"fmt"
	"math"
)

// TransitionRule selects how revReach propagates probability mass from a
// node x to its in-neighbor v.
type TransitionRule int

const (
	// TransitionExact divides by |I(x)|: the true √c-walk at x moves to
	// a uniformly chosen in-neighbor of x, so each in-neighbor receives
	// √c/|I(x)| of x's mass. This is the default; with it the estimator
	// is unbiased for the meeting probability (verified against the
	// Power Method in tests).
	TransitionExact TransitionRule = iota
	// TransitionPaperLiteral divides by |I(v)| (the in-degree of the
	// in-neighbor), as written in Algorithm 2 line 12 and Example 2 of
	// the paper. The per-level masses then do not form a
	// sub-distribution; it is provided for the fidelity ablation only.
	TransitionPaperLiteral
)

func (t TransitionRule) String() string {
	switch t {
	case TransitionExact:
		return "exact"
	case TransitionPaperLiteral:
		return "paper-literal"
	default:
		return fmt.Sprintf("transition(%d)", int(t))
	}
}

// MeetingRule selects how a sampled candidate walk accumulates crash
// probability against the source tree.
type MeetingRule int

const (
	// MeetingFirstMeet (the default) applies a first-meeting correction:
	// at each position it subtracts the probability mass of source walks
	// that already met the candidate walk at an earlier position and
	// then followed the candidate's sampled path — the dominant way two
	// walks meet repeatedly. The per-position residual
	//
	//	M_i = max(0, U[i][w_i] − C_i),  C_{i+1} = (C_i + M_i)·√c/|I(w_i)|
	//
	// costs O(1) per step and brings the estimator in line with
	// SimRank's first-meeting semantics (Definition 7), which the
	// paper's accuracy claims require.
	MeetingFirstMeet MeetingRule = iota
	// MeetingAny sums U[t][walk_t] over every position of the walk, as
	// Algorithm 1 is literally written. It estimates the expected number
	// of co-locations, which overcounts SimRank's first-meeting
	// probability when walks can meet more than once; kept for the
	// fidelity ablation.
	MeetingAny
	// MeetingFirstCrash stops accumulating after the first position with
	// positive crash probability — a cruder truncation heuristic, kept
	// for the ablation.
	MeetingFirstCrash
)

func (m MeetingRule) String() string {
	switch m {
	case MeetingFirstMeet:
		return "first-meet"
	case MeetingAny:
		return "any"
	case MeetingFirstCrash:
		return "first-crash"
	default:
		return fmt.Sprintf("meeting(%d)", int(m))
	}
}

// Params configures CrashSim. The zero value gives the paper's defaults
// (c = 0.6, ε = 0.025, δ = 0.01) with theory-derived l_max and n_r.
type Params struct {
	// C is the SimRank decay factor in (0,1). Default 0.6.
	C float64
	// Eps is the maximum tolerable absolute error ε. Default 0.025.
	Eps float64
	// Delta is the per-query failure probability δ. Default 0.01.
	Delta float64
	// Lmax overrides the truncation length of √c-walks. 0 derives
	// ⌈(1+√c)/(1−√c)²⌉ per Theorem 1.
	Lmax int
	// Iterations overrides the number of Monte-Carlo iterations n_r.
	// 0 derives ⌈3c/(ε−p·ε_t)² · ln(n/δ)⌉ per Lemma 3.
	Iterations int
	// Transition selects the revReach propagation rule.
	Transition TransitionRule
	// Meeting selects the crash accumulation rule.
	Meeting MeetingRule
	// NonBacktracking, when true, builds the reverse reachable tree over
	// a non-backtracking walk (Algorithm 2 line 9 excludes the parent
	// node). Ablation only; the default is the plain √c-walk.
	NonBacktracking bool
	// DisablePrefilter turns off the zero-score prefilter (the
	// multi-source BFS that skips candidates whose walks provably cannot
	// crash). Scores are identical either way; ablation only.
	DisablePrefilter bool
	// DisableFrozenKernel routes the Monte-Carlo loop through the
	// legacy kernel: map-backed ReachTree.Prob per walk step and the
	// map-based forward-reach prefilter, instead of the compiled
	// FrozenTree with its bitset prefilter. Scores are bit-identical
	// either way — the equivalence tests enforce it — so this exists
	// only to measure the compiled kernel's speedup (BENCH_crashsim)
	// and to localize compilation bugs.
	DisableFrozenKernel bool
	// DisablePooling turns off the sync.Pool reuse of query scratch
	// (dense score arrays, walk buffers, reverse-tree level storage).
	// Scores are bit-identical either way — the determinism tests
	// enforce it — so this exists only to measure the allocation win
	// and to localize pooling bugs.
	DisablePooling bool
	// Workers bounds the number of goroutines used to process the
	// candidate set. 0 or 1 is sequential. Results are identical for
	// any worker count: every candidate has its own random stream.
	Workers int
	// Seed makes the estimator deterministic.
	Seed uint64
}

// withDefaults returns a copy with zero fields replaced by defaults.
func (p Params) withDefaults() Params {
	if p.C == 0 {
		p.C = 0.6
	}
	if p.Eps == 0 {
		p.Eps = 0.025
	}
	if p.Delta == 0 {
		p.Delta = 0.01
	}
	if p.Lmax == 0 {
		p.Lmax = DeriveLmax(p.C)
	}
	if p.Workers == 0 {
		p.Workers = 1
	}
	return p
}

// Validate checks parameter ranges after defaulting.
func (p Params) Validate() error {
	q := p.withDefaults()
	if q.C <= 0 || q.C >= 1 {
		return fmt.Errorf("core: decay factor c=%g outside (0,1)", q.C)
	}
	if q.Eps <= 0 || q.Eps >= 1 {
		return fmt.Errorf("core: error bound eps=%g outside (0,1)", q.Eps)
	}
	if q.Delta <= 0 || q.Delta >= 1 {
		return fmt.Errorf("core: failure probability delta=%g outside (0,1)", q.Delta)
	}
	if q.Lmax < 1 {
		return fmt.Errorf("core: lmax must be >= 1, got %d", q.Lmax)
	}
	if q.Iterations < 0 {
		return fmt.Errorf("core: iterations must be >= 0, got %d", q.Iterations)
	}
	// The truncation-error sanity check runs on the defaulted q, not
	// the caller's raw p: guarding on p.Eps != 0 would silently skip
	// the check for every caller relying on the default ε = 0.025 —
	// exactly the callers who combine it with a hand-set small Lmax and
	// need the warning most.
	if et := TruncationError(q.C, q.Lmax); q.Eps <= TruncationMass(q.C, q.Lmax)*et {
		return fmt.Errorf("core: eps=%g not above the truncation error p·ε_t=%g; increase eps or lmax",
			q.Eps, TruncationMass(q.C, q.Lmax)*et)
	}
	return nil
}

// DeriveLmax returns the truncation length l_max = ⌈(1+√c)/(1−√c)²⌉ of
// Theorem 1 (expectation plus two variances of the geometric walk-length
// distribution).
func DeriveLmax(c float64) int {
	sc := math.Sqrt(c)
	return int(math.Ceil((1 + sc) / ((1 - sc) * (1 - sc))))
}

// TruncationMass returns p = Σ_{k=1}^{lmax} (√c)^{k−1}(1−√c), the
// probability that an untruncated √c-walk has length at most l_max
// (Lemma 1). It equals 1 − (√c)^{lmax}.
func TruncationMass(c float64, lmax int) float64 {
	return 1 - math.Pow(math.Sqrt(c), float64(lmax))
}

// TruncationError returns ε_t = (√c)^{lmax}, the per-sample estimator
// error introduced by truncation (Lemma 2).
func TruncationError(c float64, lmax int) float64 {
	return math.Pow(math.Sqrt(c), float64(lmax))
}

// DeriveIterations returns n_r = ⌈3c/(ε−p·ε_t)² · ln(n/δ)⌉ (Lemma 3).
func DeriveIterations(c, eps, delta float64, lmax, n int) int {
	p := TruncationMass(c, lmax)
	et := TruncationError(c, lmax)
	margin := eps - p*et
	nr := 3 * c / (margin * margin) * math.Log(float64(n)/delta)
	return int(math.Ceil(nr))
}

// iterations resolves the effective n_r for a graph with n nodes.
func (p Params) iterations(n int) int {
	if p.Iterations > 0 {
		return p.Iterations
	}
	return DeriveIterations(p.C, p.Eps, p.Delta, p.Lmax, n)
}
