package core

import (
	"math"
	"testing"

	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func TestTopKAgainstExact(t *testing.T) {
	edges, err := gen.ErdosRenyi(80, 240, true, 31)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(80, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	got, err := TopK(g, 0, k, Params{C: 0.6, Eps: 0.05, Delta: 0.01, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != k {
		t.Fatalf("TopK returned %d results, want %d", len(got), k)
	}
	// Scores must be descending and near the truth.
	for i, r := range got {
		if i > 0 && r.Score > got[i-1].Score {
			t.Errorf("results not sorted at %d", i)
		}
		if d := math.Abs(r.Score - gt.Sim(0, r.Node)); d > 0.08 {
			t.Errorf("node %d score %.4f vs exact %.4f", r.Node, r.Score, gt.Sim(0, r.Node))
		}
	}
	// The returned set must overlap the exact top-k heavily: every
	// returned node must have exact score >= exact k-th score - 2·eps.
	truth := gt.SingleSource(0)
	exactSorted := append([]float64(nil), truth...)
	exactSorted[0] = -1 // exclude the source's self-score
	kth := kthLargest(exactSorted, k)
	for _, r := range got {
		if truth[r.Node] < kth-0.1 {
			t.Errorf("node %d (exact %.4f) far below exact k-th score %.4f", r.Node, truth[r.Node], kth)
		}
	}
}

func kthLargest(xs []float64, k int) float64 {
	s := append([]float64(nil), xs...)
	for i := 0; i < k; i++ {
		max := i
		for j := i + 1; j < len(s); j++ {
			if s[j] > s[max] {
				max = j
			}
		}
		s[i], s[max] = s[max], s[i]
	}
	return s[k-1]
}

func TestTopKSmallGraph(t *testing.T) {
	g := graph.PaperExample()
	got, err := TopK(g, graph.PaperNode("A"), 3, Params{Iterations: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	for _, r := range got {
		if r.Node == graph.PaperNode("A") {
			t.Error("source included in top-k")
		}
	}
	// k larger than the graph truncates gracefully.
	all, err := TopK(g, 0, 100, Params{Iterations: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Errorf("oversized k returned %d results, want 7", len(all))
	}
}

func TestTopKErrors(t *testing.T) {
	g := graph.PaperExample()
	if _, err := TopK(g, 0, 0, Params{Iterations: 10}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopK(g, 99, 1, Params{Iterations: 10}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := TopK(g, 0, 1, Params{C: 5}); err == nil {
		t.Error("bad params accepted")
	}
}

func TestSinglePair(t *testing.T) {
	g := graph.PaperExample()
	gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	u, v := graph.PaperNode("A"), graph.PaperNode("D")
	got, err := SinglePair(g, u, v, Params{C: 0.6, Iterations: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(got - gt.Sim(u, v)); d > 0.05 {
		t.Errorf("SinglePair = %.4f, exact %.4f", got, gt.Sim(u, v))
	}
	if self, err := SinglePair(g, u, u, Params{Iterations: 10}); err != nil || self != 1 {
		t.Errorf("SinglePair(u,u) = %g, %v", self, err)
	}
}
