package core

import (
	"context"
	"fmt"
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func multiTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	edges, err := gen.ErdosRenyi(40, 120, true, 51)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(40, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMultiSourceMatchesSingleSource is the batch/sequential
// equivalence contract: for every meeting rule, for both kernels and
// for worker counts 1 vs N, the batched pipeline must reproduce
// sequential SingleSourceCtx scores bit-for-bit. Run with -race this
// also exercises the shared-arena fan-out for data races.
func TestMultiSourceMatchesSingleSource(t *testing.T) {
	g := multiTestGraph(t)
	sources := []graph.NodeID{0, 7, 13, 39}
	for _, rule := range []MeetingRule{MeetingFirstMeet, MeetingAny, MeetingFirstCrash} {
		for _, legacy := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%v/legacy=%v/workers=%d", rule, legacy, workers)
				t.Run(name, func(t *testing.T) {
					p := Params{
						Iterations: 150, Seed: 3, Workers: workers,
						Meeting: rule, DisableFrozenKernel: legacy,
					}
					batch, err := MultiSource(context.Background(), g, sources, nil, p)
					if err != nil {
						t.Fatal(err)
					}
					if len(batch) != len(sources) {
						t.Fatalf("batch has %d entries, want %d", len(batch), len(sources))
					}
					single := p
					single.Workers = 1
					for i, u := range sources {
						want, err := SingleSourceCtx(context.Background(), g, u, nil, single)
						if err != nil {
							t.Fatal(err)
						}
						got := batch[i]
						if len(got) != len(want) {
							t.Fatalf("source %d: %d vs %d entries", u, len(got), len(want))
						}
						for v := range want {
							if got[v] != want[v] {
								t.Errorf("source %d node %d: batch %g != single %g", u, v, got[v], want[v])
							}
						}
					}
				})
			}
		}
	}
}

// TestMultiSourceOmega: a restricted candidate set must apply to every
// source of the batch and match the per-source partial queries.
func TestMultiSourceOmega(t *testing.T) {
	g := multiTestGraph(t)
	sources := []graph.NodeID{2, 11}
	omega := []graph.NodeID{0, 2, 5, 11, 17, 30}
	p := Params{Iterations: 120, Seed: 9, Workers: 2}
	batch, err := MultiSource(context.Background(), g, sources, omega, p)
	if err != nil {
		t.Fatal(err)
	}
	single := p
	single.Workers = 1
	for i, u := range sources {
		want, err := SingleSourceCtx(context.Background(), g, u, omega, single)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(omega) {
			t.Fatalf("source %d: %d entries, want %d", u, len(batch[i]), len(omega))
		}
		for v := range want {
			if batch[i][v] != want[v] {
				t.Errorf("source %d node %d: batch %g != partial %g", u, v, batch[i][v], want[v])
			}
		}
	}
}

// TestMultiSourceDuplicates: repeated sources must be deduplicated into
// one sampling pass yet come back as independent result maps.
func TestMultiSourceDuplicates(t *testing.T) {
	g := multiTestGraph(t)
	sources := []graph.NodeID{5, 9, 5, 5, 9}
	before := statBatchDedup.Load()
	batch, err := MultiSource(context.Background(), g, sources, nil, Params{Iterations: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := statBatchDedup.Load() - before; got != 3 {
		t.Errorf("dedup_hits advanced by %d, want 3", got)
	}
	for _, pair := range [][2]int{{0, 2}, {0, 3}, {1, 4}} {
		a, b := batch[pair[0]], batch[pair[1]]
		if len(a) != len(b) {
			t.Fatalf("positions %v: %d vs %d entries", pair, len(a), len(b))
		}
		for v := range a {
			if a[v] != b[v] {
				t.Errorf("positions %v node %d: %g != %g", pair, v, a[v], b[v])
			}
		}
	}
	// Results must not alias: mutating one duplicate's map leaves the
	// others untouched.
	batch[0][5] = -1
	if batch[2][5] == -1 || batch[3][5] == -1 {
		t.Error("duplicate results alias the same map")
	}
}

// TestMultiSourceCanceled: a canceled context aborts the batch with
// ctx.Err() and no partial result.
func TestMultiSourceCanceled(t *testing.T) {
	g := multiTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MultiSource(ctx, g, []graph.NodeID{0, 1}, nil, Params{Iterations: 100})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Errorf("canceled batch returned results: %v", res)
	}
}

func TestMultiSourceErrors(t *testing.T) {
	g := graph.PaperExample()
	ctx := context.Background()
	if _, err := MultiSource(ctx, g, []graph.NodeID{0, 99}, nil, Params{Iterations: 10}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := MultiSource(ctx, g, []graph.NodeID{0}, []graph.NodeID{42}, Params{Iterations: 10}); err == nil {
		t.Error("out-of-range candidate accepted")
	}
	if _, err := MultiSource(ctx, g, []graph.NodeID{0}, nil, Params{C: 9}); err == nil {
		t.Error("bad params accepted")
	}
	empty, err := MultiSource(ctx, g, nil, nil, Params{Iterations: 10})
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch: %v, %v", empty, err)
	}
}
