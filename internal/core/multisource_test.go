package core

import (
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func TestMultiSourceMatchesSingleSource(t *testing.T) {
	edges, err := gen.ErdosRenyi(40, 120, true, 51)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(40, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	sources := []graph.NodeID{0, 7, 13, 39}
	p := Params{Iterations: 150, Seed: 3, Workers: 3}
	batch, err := MultiSource(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(sources) {
		t.Fatalf("batch has %d entries, want %d", len(batch), len(sources))
	}
	single := p
	single.Workers = 1
	for _, u := range sources {
		want, err := SingleSource(g, u, nil, single)
		if err != nil {
			t.Fatal(err)
		}
		got := batch[u]
		if len(got) != len(want) {
			t.Fatalf("source %d: %d vs %d entries", u, len(got), len(want))
		}
		for v := range want {
			if got[v] != want[v] {
				t.Errorf("source %d node %d: batch %g != single %g", u, v, got[v], want[v])
			}
		}
	}
}

func TestMultiSourceErrors(t *testing.T) {
	g := graph.PaperExample()
	if _, err := MultiSource(g, []graph.NodeID{0, 99}, Params{Iterations: 10}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := MultiSource(g, []graph.NodeID{0}, Params{C: 9}); err == nil {
		t.Error("bad params accepted")
	}
	empty, err := MultiSource(g, nil, Params{Iterations: 10})
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch: %v, %v", empty, err)
	}
}
