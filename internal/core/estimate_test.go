package core

import (
	"math"
	"testing"

	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

// TestWithErrorScoresMatchSingleSource: the Score fields must equal the
// plain estimator bit-for-bit (shared random streams).
func TestWithErrorScoresMatchSingleSource(t *testing.T) {
	g := graph.PaperExample()
	p := Params{Iterations: 300, Seed: 21}
	plain, err := SingleSource(g, 0, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	withErr, err := SingleSourceWithError(g, 0, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(withErr) != len(plain) {
		t.Fatalf("sizes differ: %d vs %d", len(withErr), len(plain))
	}
	for v, e := range withErr {
		if e.Score != plain[v] {
			t.Errorf("node %d: with-error score %g != plain %g", v, e.Score, plain[v])
		}
		if e.StdErr < 0 {
			t.Errorf("node %d: negative stderr %g", v, e.StdErr)
		}
	}
}

// TestConfidenceIntervalsCoverTruth: on a deterministic run, the 3-sigma
// interval around each estimate must contain the exact value for every
// node (a single 3σ miss over 60 nodes would indicate a broken variance
// computation, not bad luck, given the fixed seed).
func TestConfidenceIntervalsCoverTruth(t *testing.T) {
	edges, err := gen.ErdosRenyi(60, 180, true, 101)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(60, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	ests, err := SingleSourceWithError(g, 0, nil, Params{C: 0.6, Iterations: 3000, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for v, e := range ests {
		truth := gt.Sim(0, v)
		// Allow the tiny first-meeting bias on top of 3σ.
		if math.Abs(e.Score-truth) > 3*e.StdErr+0.01 {
			misses++
			t.Logf("node %d: score %.4f ± %.4f vs truth %.4f", v, e.Score, e.StdErr, truth)
		}
	}
	if misses > 1 {
		t.Errorf("%d nodes outside 3σ+bias window", misses)
	}
}

func TestWithErrorZeroCandidates(t *testing.T) {
	// Unreachable candidates carry exactly zero score and zero stderr.
	g := graph.NewBuilder(4, true).AddEdge(1, 0).AddEdge(2, 3).MustFreeze()
	ests, err := SingleSourceWithError(g, 0, nil, Params{Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e := ests[3]; e.Score != 0 || e.StdErr != 0 {
		t.Errorf("unreachable candidate has %+v", e)
	}
	if e := ests[0]; e.Score != 1 || e.StdErr != 0 {
		t.Errorf("source has %+v", e)
	}
}

func TestWithErrorValidation(t *testing.T) {
	g := graph.PaperExample()
	if _, err := SingleSourceWithError(g, 99, nil, Params{Iterations: 5}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := SingleSourceWithError(g, 0, []graph.NodeID{42}, Params{Iterations: 5}); err == nil {
		t.Error("bad candidate accepted")
	}
}
