package core

import (
	"math"
	"strings"
	"testing"

	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func TestDeriveLmax(t *testing.T) {
	// c = 0.25: (1 + 0.5) / 0.25 = 6.
	if got := DeriveLmax(0.25); got != 6 {
		t.Errorf("DeriveLmax(0.25) = %d, want 6", got)
	}
	// c = 0.6: (1+√0.6)/(1−√0.6)² ≈ 34.93 → 35.
	if got := DeriveLmax(0.6); got != 35 {
		t.Errorf("DeriveLmax(0.6) = %d, want 35", got)
	}
}

func TestTruncationQuantities(t *testing.T) {
	c := 0.6
	lmax := DeriveLmax(c)
	p := TruncationMass(c, lmax)
	et := TruncationError(c, lmax)
	if math.Abs(p+et-1) > 1e-12 {
		t.Errorf("p + ε_t = %g, want 1 (p is the geometric CDF at lmax)", p+et)
	}
	// Explicit geometric sum must agree with the closed form.
	sc := math.Sqrt(c)
	sum := 0.0
	for k := 1; k <= lmax; k++ {
		sum += math.Pow(sc, float64(k-1)) * (1 - sc)
	}
	if math.Abs(sum-p) > 1e-12 {
		t.Errorf("geometric sum %g != closed form %g", sum, p)
	}
}

func TestDeriveIterationsMonotone(t *testing.T) {
	n := 1000
	base := DeriveIterations(0.6, 0.025, 0.01, DeriveLmax(0.6), n)
	if base < 1 {
		t.Fatalf("derived iterations %d < 1", base)
	}
	looser := DeriveIterations(0.6, 0.05, 0.01, DeriveLmax(0.6), n)
	if looser >= base {
		t.Errorf("looser eps should need fewer iterations: %d vs %d", looser, base)
	}
	bigger := DeriveIterations(0.6, 0.025, 0.01, DeriveLmax(0.6), 10*n)
	if bigger <= base {
		t.Errorf("larger n should need more iterations: %d vs %d", bigger, base)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		want string
	}{
		{"bad c", Params{C: 1.5}, "decay factor"},
		{"negative c", Params{C: -0.1}, "decay factor"},
		{"bad eps", Params{Eps: 2}, "error bound"},
		{"bad delta", Params{Delta: 1}, "failure probability"},
		{"negative lmax", Params{Lmax: -1}, "lmax"},
		{"negative iterations", Params{Iterations: -5}, "iterations"},
		{"eps below truncation", Params{Eps: 1e-9, Lmax: 2}, "truncation error"},
		// Regression: the truncation check must also fire for callers
		// relying on the default ε = 0.025 — with lmax forced to 1 the
		// truncation error p·ε_t ≈ 0.17 dwarfs the default ε, and the old
		// `p.Eps != 0` guard skipped the check entirely.
		{"default eps below truncation", Params{Lmax: 1}, "truncation error"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
	if err := (Params{}).Validate(); err != nil {
		t.Errorf("zero params should validate with defaults: %v", err)
	}
}

func TestSingleSourceErrors(t *testing.T) {
	g := graph.PaperExample()
	if _, err := SingleSource(g, 99, nil, Params{Iterations: 10}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := SingleSource(g, 0, []graph.NodeID{42}, Params{Iterations: 10}); err == nil {
		t.Error("out-of-range candidate accepted")
	}
	if _, err := SingleSource(g, 0, nil, Params{C: 7}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestSingleSourceSelfScore(t *testing.T) {
	g := graph.PaperExample()
	s, err := SingleSource(g, 0, nil, Params{Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 {
		t.Errorf("s(u,u) = %g, want 1", s[0])
	}
	if len(s) != 8 {
		t.Errorf("nil omega should cover all %d nodes, got %d", 8, len(s))
	}
	for v, score := range s {
		if score < 0 || score > 1+1e-9 {
			t.Errorf("score s(0,%d) = %g outside [0,1]", v, score)
		}
	}
}

// TestSingleSourceAccuracy compares CrashSim against the Power Method on
// the paper's example graph at the paper's experimental setting c = 0.6.
// The run is deterministic (fixed seed), so the tolerance can be close to
// the configured ε.
func TestSingleSourceAccuracy(t *testing.T) {
	g := graph.PaperExample()
	gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	u := graph.PaperNode("A")
	p := Params{C: 0.6, Eps: 0.05, Delta: 0.01, Seed: 7}
	s, err := SingleSource(g, u, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for v, got := range s {
		want := gt.Sim(u, v)
		// MeetingAny slightly overcounts repeated co-locations, so allow
		// the configured ε plus a small bias margin.
		if diff := math.Abs(got - want); diff > 0.08 {
			t.Errorf("s(A,%s) = %.4f, power method %.4f, |diff| = %.4f", graph.PaperLabel(v), got, want, diff)
		}
	}
}

// TestSingleSourceAccuracyRandom repeats the accuracy comparison on a
// random directed graph with dangling nodes.
func TestSingleSourceAccuracyRandom(t *testing.T) {
	edges, err := gen.ErdosRenyi(60, 180, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(60, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	s, err := SingleSource(g, 0, nil, Params{C: 0.6, Eps: 0.05, Delta: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for v, got := range s {
		if d := math.Abs(got - gt.Sim(0, v)); d > worst {
			worst = d
		}
	}
	if worst > 0.08 {
		t.Errorf("max error %.4f above tolerance 0.08", worst)
	}
}

// TestFirstCrashReducesOvercount checks the relationship between the two
// meeting rules: first-crash accumulation never exceeds any-meeting
// accumulation for the same seed (it truncates each walk's contribution).
func TestFirstCrashReducesOvercount(t *testing.T) {
	g := graph.PaperExample()
	u := graph.PaperNode("A")
	base := Params{C: 0.6, Iterations: 500, Seed: 5, Meeting: MeetingAny}
	anyRule, err := SingleSource(g, u, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	fc := base
	fc.Meeting = MeetingFirstCrash
	firstCrash, err := SingleSource(g, u, nil, fc)
	if err != nil {
		t.Fatal(err)
	}
	for v := range anyRule {
		if firstCrash[v] > anyRule[v]+1e-12 {
			t.Errorf("first-crash score %.4f exceeds any-meeting %.4f at node %d", firstCrash[v], anyRule[v], v)
		}
	}
}

// TestPrefilterDisabledSameScores: the prefilter only skips provably
// zero candidates, so disabling it must not change a single score.
func TestPrefilterDisabledSameScores(t *testing.T) {
	edges, err := gen.PreferentialAttachment(80, 3, true, 41)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(80, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	on := Params{Iterations: 150, Seed: 7}
	off := on
	off.DisablePrefilter = true
	a, err := SingleSource(g, 0, nil, on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SingleSource(g, 0, nil, off)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("prefilter changed score at node %d: %g vs %g", v, a[v], b[v])
		}
	}
}

// TestWorkersDeterminism verifies that results are identical regardless
// of the worker count, because every candidate owns its random stream.
func TestWorkersDeterminism(t *testing.T) {
	edges, err := gen.ErdosRenyi(50, 150, true, 21)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(50, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	p1 := Params{Iterations: 200, Seed: 9, Workers: 1}
	p4 := Params{Iterations: 200, Seed: 9, Workers: 4}
	s1, err := SingleSource(g, 0, nil, p1)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := SingleSource(g, 0, nil, p4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range s1 {
		if s1[v] != s4[v] {
			t.Fatalf("worker-count changed result at node %d: %g vs %g", v, s1[v], s4[v])
		}
	}
}

// TestOmegaSubsetConsistency verifies partial computation: restricting Ω
// returns exactly the same per-node scores as the full single-source run,
// the property CrashSim-T's shrinking candidate set relies on.
func TestOmegaSubsetConsistency(t *testing.T) {
	g := graph.PaperExample()
	u := graph.PaperNode("A")
	p := Params{Iterations: 300, Seed: 13}
	full, err := SingleSource(g, u, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	subset := []graph.NodeID{graph.PaperNode("C"), graph.PaperNode("F")}
	part, err := SingleSource(g, u, subset, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(part) != 2 {
		t.Fatalf("partial result has %d entries, want 2", len(part))
	}
	for _, v := range subset {
		if part[v] != full[v] {
			t.Errorf("partial score s(A,%s)=%g differs from full %g", graph.PaperLabel(v), part[v], full[v])
		}
	}
}

func TestSingleSourceWithTreeValidation(t *testing.T) {
	g := graph.PaperExample()
	u := graph.PaperNode("A")
	p := Params{Iterations: 10, Seed: 1}
	tree, err := BuildTree(g, u, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SingleSourceWithTree(g, graph.PaperNode("B"), nil, p, tree); err == nil {
		t.Error("tree for wrong source accepted")
	}
	if _, err := SingleSourceWithTree(g, u, nil, p, nil); err == nil {
		t.Error("nil tree accepted")
	}
	got, err := SingleSourceWithTree(g, u, nil, p, tree)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SingleSource(g, u, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("with-tree score differs at %d: %g vs %g", v, got[v], want[v])
		}
	}
}

func TestSampleWalkProperties(t *testing.T) {
	g := graph.PaperExample()
	r := newTestRand(3)
	for trial := 0; trial < 200; trial++ {
		w := SampleWalk(g, 2, math.Sqrt(0.6), 10, r, nil)
		if len(w) < 1 || len(w) > 11 {
			t.Fatalf("walk length %d outside [1, 11]", len(w))
		}
		if w[0] != 2 {
			t.Fatalf("walk does not start at source: %v", w)
		}
		for i := 1; i < len(w); i++ {
			found := false
			for _, x := range g.In(w[i-1]) {
				if x == w[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("walk step %d -> %d not an in-neighbor move", w[i-1], w[i])
			}
		}
	}
}

func TestSampleWalkDeadEnd(t *testing.T) {
	// Node 0 has no in-neighbors: every walk from it has length 1.
	g := graph.NewBuilder(2, true).AddEdge(0, 1).MustFreeze()
	r := newTestRand(1)
	for trial := 0; trial < 50; trial++ {
		if w := SampleWalk(g, 0, math.Sqrt(0.6), 10, r, nil); len(w) != 1 {
			t.Fatalf("walk from dangling node has length %d, want 1", len(w))
		}
	}
}
