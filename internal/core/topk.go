package core

import (
	"context"
	"fmt"
	"sort"

	"crashsim/internal/graph"
)

// TopKResult is one ranked answer of a top-k query.
type TopKResult struct {
	Node  graph.NodeID
	Score float64
}

// TopK answers the top-k single-source SimRank query: the k nodes most
// similar to u (excluding u itself), with their estimated scores.
func TopK(g *graph.Graph, u graph.NodeID, k int, p Params) ([]TopKResult, error) {
	return TopKCtx(context.Background(), g, u, k, p)
}

// TopKCtx is TopK with cancellation, forwarded to both estimator
// passes.
//
// It exploits CrashSim's partial-computation mode in two phases: a
// coarse pass over all nodes with a reduced iteration budget shortlists
// candidates whose coarse score could plausibly reach the top k, and a
// full-budget pass refines only the shortlist. The shortlist keeps every
// node within 2ε of the coarse k-th score, so a node is excluded only if
// both its coarse and refined scores would have to err by more than ε —
// the same per-node confidence Theorem 1 gives the plain estimator.
func TopKCtx(ctx context.Context, g *graph.Graph, u graph.NodeID, k int, p Params) ([]TopKResult, error) {
	q := p.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("core: top-k needs k >= 1, got %d", k)
	}
	n := g.NumNodes()
	nr := q.iterations(n)

	// Phase 1: coarse scores with a fraction of the budget.
	coarse := q
	coarse.Iterations = nr / 8
	if coarse.Iterations < 50 {
		coarse.Iterations = minInt(50, nr)
	}
	scores, err := SingleSourceCtx(ctx, g, u, nil, coarse)
	if err != nil {
		return nil, err
	}
	ranked := rankScores(scores, u)
	if len(ranked) == 0 {
		return nil, nil
	}
	if k > len(ranked) {
		k = len(ranked)
	}

	// Phase 2: refine every candidate within 2ε of the coarse cut.
	cut := ranked[k-1].Score - 2*q.Eps
	var omega []graph.NodeID
	for _, r := range ranked {
		if r.Score >= cut {
			omega = append(omega, r.Node)
		}
	}
	refined := q
	refined.Iterations = nr
	rescored, err := SingleSourceCtx(ctx, g, u, omega, refined)
	if err != nil {
		return nil, err
	}
	final := rankScores(rescored, u)
	if k > len(final) {
		k = len(final)
	}
	return final[:k], nil
}

// SinglePair estimates sim(u, v) with CrashSim's partial mode.
func SinglePair(g *graph.Graph, u, v graph.NodeID, p Params) (float64, error) {
	return SinglePairCtx(context.Background(), g, u, v, p)
}

// SinglePairCtx is SinglePair with cancellation.
func SinglePairCtx(ctx context.Context, g *graph.Graph, u, v graph.NodeID, p Params) (float64, error) {
	s, err := SingleSourceCtx(ctx, g, u, []graph.NodeID{v}, p)
	if err != nil {
		return 0, err
	}
	return s[v], nil
}

func rankScores(s Scores, u graph.NodeID) []TopKResult {
	out := make([]TopKResult, 0, len(s))
	for v, score := range s {
		if v == u {
			continue
		}
		out = append(out, TopKResult{Node: v, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
