package core

import (
	"math"
	"reflect"
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/temporal"
)

// thresholdQuery is a minimal TemporalQuery for core-level tests (the
// full query types live in internal/tempq).
type thresholdQuery struct{ theta float64 }

func (q thresholdQuery) Name() string                    { return "test-threshold" }
func (q thresholdQuery) Keep(_ int, _, cur float64) bool { return cur >= q.theta }

// trendQuery keeps non-decreasing score sequences within slack.
type trendQuery struct{ slack float64 }

func (q trendQuery) Name() string { return "test-trend" }
func (q trendQuery) Keep(_ int, prev, cur float64) bool {
	return math.IsNaN(prev) || cur >= prev-q.slack
}

func churnGraph(t *testing.T, n, m, snapshots int, rate float64, seed uint64) *temporal.Graph {
	t.Helper()
	base, err := gen.ErdosRenyi(n, m, true, seed)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := gen.Churn(n, true, base, gen.ChurnOptions{
		Snapshots: snapshots, AddRate: rate, DelRate: rate, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestCrashSimTValidation(t *testing.T) {
	tg := churnGraph(t, 20, 40, 3, 0.05, 1)
	p := Params{Iterations: 20, Seed: 1}
	if _, err := CrashSimT(tg, 99, thresholdQuery{0.1}, p, TemporalOptions{}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := CrashSimT(tg, 0, nil, p, TemporalOptions{}); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := CrashSimT(tg, 0, thresholdQuery{0.1}, Params{C: 3}, TemporalOptions{}); err == nil {
		t.Error("bad params accepted")
	}
}

func TestCrashSimTThresholdBasic(t *testing.T) {
	tg := churnGraph(t, 30, 90, 5, 0.02, 2)
	p := Params{Iterations: 150, Seed: 3}
	res, err := CrashSimT(tg, 0, thresholdQuery{0.0}, p, TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 0 keeps everything, including the source.
	if len(res.Omega) != 30 {
		t.Errorf("threshold 0 kept %d nodes, want all 30", len(res.Omega))
	}
	if res.Stats.Snapshots != 5 {
		t.Errorf("processed %d snapshots, want 5", res.Stats.Snapshots)
	}
	// Impossible threshold keeps only the source (score 1).
	res, err = CrashSimT(tg, 0, thresholdQuery{0.99}, p, TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Omega) != 1 || res.Omega[0] != 0 {
		t.Errorf("threshold 0.99 kept %v, want [0]", res.Omega)
	}
	if res.Final[0] != 1 {
		t.Errorf("final score of source = %g, want 1", res.Final[0])
	}
}

// TestCrashSimTPruningEquivalence is the central correctness property of
// Section IV: with per-candidate random streams, delta pruning reuses a
// score exactly when recomputation would reproduce it, so the pruned and
// unpruned runs return identical result sets and scores.
func TestCrashSimTPruningEquivalence(t *testing.T) {
	tg := churnGraph(t, 50, 120, 8, 0.01, 5)
	p := Params{Iterations: 80, Seed: 9}
	q := thresholdQuery{0.02}

	pruned, err := CrashSimT(tg, 0, q, p, TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := CrashSimT(tg, 0, q, p, TemporalOptions{
		DisableDeltaPruning: true, DisableDiffPruning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pruned.Omega, unpruned.Omega) {
		t.Errorf("result sets differ:\npruned   %v\nunpruned %v", pruned.Omega, unpruned.Omega)
	}
	for v, s := range unpruned.Final {
		if pruned.Final[v] != s {
			t.Errorf("final score differs at %d: pruned %g, unpruned %g", v, pruned.Final[v], s)
		}
	}
	if pruned.Stats.ReusedDelta+pruned.Stats.ReusedDiff == 0 {
		t.Error("pruning never engaged on a low-churn workload; test is vacuous")
	}
	if pruned.Stats.Evaluated >= unpruned.Stats.Evaluated {
		t.Errorf("pruned run evaluated %d >= unpruned %d", pruned.Stats.Evaluated, unpruned.Stats.Evaluated)
	}
}

// TestCrashSimTDeltaOnlyEquivalence isolates the delta rule.
func TestCrashSimTDeltaOnlyEquivalence(t *testing.T) {
	tg := churnGraph(t, 40, 100, 6, 0.01, 7)
	p := Params{Iterations: 60, Seed: 11}
	q := trendQuery{slack: 0.05}
	deltaOnly, err := CrashSimT(tg, 1, q, p, TemporalOptions{DisableDiffPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	none, err := CrashSimT(tg, 1, q, p, TemporalOptions{DisableDeltaPruning: true, DisableDiffPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(deltaOnly.Omega, none.Omega) {
		t.Errorf("delta-only result differs from unpruned:\n%v\n%v", deltaOnly.Omega, none.Omega)
	}
}

// TestCrashSimTOmegaShrinks: the candidate set can only shrink over
// time, the monotonicity CrashSim-T's partial computation exploits.
func TestCrashSimTOmegaShrinks(t *testing.T) {
	tg := churnGraph(t, 40, 120, 6, 0.05, 13)
	p := Params{Iterations: 100, Seed: 15}
	resAll, err := CrashSimT(tg, 2, thresholdQuery{0.0}, p, TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resTight, err := CrashSimT(tg, 2, thresholdQuery{0.05}, p, TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resTight.Omega) > len(resAll.Omega) {
		t.Errorf("tighter threshold yields bigger set: %d > %d", len(resTight.Omega), len(resAll.Omega))
	}
	for _, v := range resTight.Omega {
		found := false
		for _, w := range resAll.Omega {
			if v == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("node %d in tight result but not in loose result", v)
		}
	}
}

// TestCrashSimTStaticHistory: with zero churn every transition has an
// unchanged source tree and empty delta, so after the first snapshot
// everything is reused and nothing is recomputed.
func TestCrashSimTStaticHistory(t *testing.T) {
	base, err := gen.ErdosRenyi(25, 60, true, 17)
	if err != nil {
		t.Fatal(err)
	}
	deltas := make([]temporal.Delta, 4) // five identical snapshots
	tg, err := temporal.New(25, true, base, deltas)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Iterations: 50, Seed: 19}
	res, err := CrashSimT(tg, 0, thresholdQuery{0.0}, p, TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TreeStableSteps != 4 {
		t.Errorf("TreeStableSteps = %d, want 4", res.Stats.TreeStableSteps)
	}
	if res.Stats.Evaluated != 25 {
		t.Errorf("Evaluated = %d, want 25 (only the first snapshot)", res.Stats.Evaluated)
	}
	if res.Stats.ReusedDelta != 4*25 {
		t.Errorf("ReusedDelta = %d, want 100", res.Stats.ReusedDelta)
	}
}

func TestCrashSimTTrendFiltering(t *testing.T) {
	// Construct a graph whose similarity to the source strictly drops
	// for one node: start with v sharing an in-neighbor with u, then
	// remove that shared structure.
	//   snapshot 0: w -> u, w -> v  (u and v similar)
	//   snapshot 1: w -> u, x -> v  (similarity destroyed)
	tg, err := temporal.New(4, true,
		[]graph.Edge{{X: 2, Y: 0}, {X: 2, Y: 1}},
		[]temporal.Delta{{
			Del: []graph.Edge{{X: 2, Y: 1}},
			Add: []graph.Edge{{X: 3, Y: 1}},
		}})
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Iterations: 400, Seed: 21}
	// Increasing trend with tiny slack: node 1's similarity collapses
	// from ~c to 0, so it must be filtered out.
	res, err := CrashSimT(tg, 0, trendQuery{slack: 0.01}, p, TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Omega {
		if v == 1 {
			t.Errorf("node 1 survived an increasing-trend query despite dropping similarity; omega=%v", res.Omega)
		}
	}
	// The source always survives (score pinned at 1).
	if len(res.Omega) == 0 || res.Omega[0] != 0 {
		t.Errorf("source missing from omega: %v", res.Omega)
	}
}

// maskCacheTraffic zeroes the two stats fields that legitimately vary
// with scheduling (byte-accounted eviction depends on insertion order),
// leaving everything the determinism contract covers.
func maskCacheTraffic(s TemporalStats) TemporalStats {
	s.CandTreeHits, s.CandTreeMisses = 0, 0
	return s
}

// TestCrashSimTWorkersDeterminism: for a fixed seed, the parallel
// pruning pipeline must return bit-identical results for any worker
// count — candidates own their random streams, decisions land in
// per-candidate slots, and the merges run serially in candidate order.
// Run under -race this also exercises the fan-outs for data races.
func TestCrashSimTWorkersDeterminism(t *testing.T) {
	edges, err := gen.ErdosRenyi(90, 270, true, 23)
	if err != nil {
		t.Fatal(err)
	}
	// Bursty history: quiet transitions make the source tree stable, so
	// both pruning fan-outs (delta membership and per-candidate diff
	// comparison) get exercised across worker counts.
	tg, err := gen.Churn(90, true, edges, gen.ChurnOptions{
		Snapshots: 8, AddRate: 0.01, DelRate: 0.01, ActiveFraction: 0.5, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Iterations: 120, Seed: 29}
	q := thresholdQuery{0.005}
	base, err := CrashSimT(tg, 0, q, p, TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.ReusedDelta+base.Stats.ReusedDiff == 0 {
		t.Fatal("pruning never engaged; the parallel loops were not exercised")
	}
	for _, w := range []int{2, 4} {
		pw := p
		pw.Workers = w
		got, err := CrashSimT(tg, 0, q, pw, TemporalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Omega, base.Omega) {
			t.Errorf("workers=%d: omega differs:\n%v\n%v", w, got.Omega, base.Omega)
		}
		for v, s := range base.Final {
			if math.Float64bits(got.Final[v]) != math.Float64bits(s) {
				t.Errorf("workers=%d: score at %d = %v, want %v", w, v, got.Final[v], s)
			}
		}
		if ga, ba := maskCacheTraffic(got.Stats), maskCacheTraffic(base.Stats); ga != ba {
			t.Errorf("workers=%d: stats differ:\n%+v\n%+v", w, ga, ba)
		}
	}
}

// TestCrashSimTIncrementalEquivalence: every incremental mechanism of
// the pipeline (tree patching, the candidate-tree cache, frozen-form
// reuse) is a pure optimization — disabling all of them must reproduce
// the same result bit for bit, while the default run actually engages
// them.
func TestCrashSimTIncrementalEquivalence(t *testing.T) {
	tg := churnGraph(t, 60, 150, 8, 0.01, 37)
	p := Params{Iterations: 100, Seed: 41}
	q := thresholdQuery{0.01}
	inc, err := CrashSimT(tg, 0, q, p, TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CrashSimT(tg, 0, q, p, TemporalOptions{
		DisableTreePatch: true, DisableCandidateCache: true, DisableFrozenReuse: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inc.Omega, plain.Omega) {
		t.Errorf("omega differs:\nincremental %v\nplain       %v", inc.Omega, plain.Omega)
	}
	for v, s := range plain.Final {
		if math.Float64bits(inc.Final[v]) != math.Float64bits(s) {
			t.Errorf("score at %d = %v, want %v", v, inc.Final[v], s)
		}
	}
	if inc.Stats.TreePatched == 0 {
		t.Error("default run never patched a tree on a low-churn history")
	}
	if plain.Stats.TreePatched != 0 || plain.Stats.FrozenReused != 0 || plain.Stats.CandTreeHits != 0 {
		t.Errorf("ablated run used incremental machinery: %+v", plain.Stats)
	}
}

// TestTemporalStatsAccounting: every candidate-snapshot is either
// evaluated or reused by exactly one pruning rule, so
// Evaluated + ReusedDelta + ReusedDiff must equal the initial full
// sweep plus the candidate count entering each later snapshot —
// whatever mix of empty, tiny and gate-exceeding deltas the history
// throws at the pipeline.
func TestTemporalStatsAccounting(t *testing.T) {
	const n = 50
	cases := []struct {
		name string
		rate float64
		opts TemporalOptions
	}{
		{"empty-deltas", 0, TemporalOptions{}},
		{"tiny-deltas", 0.01, TemporalOptions{}},
		{"gate-exceeding", 0.05, TemporalOptions{PatchGate: 1e-300}},
		{"tiny-no-cache", 0.01, TemporalOptions{DisableCandidateCache: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var tg *temporal.Graph
			if tc.rate == 0 {
				base, err := gen.ErdosRenyi(n, 130, true, 47)
				if err != nil {
					t.Fatal(err)
				}
				tg, err = temporal.New(n, true, base, make([]temporal.Delta, 5))
				if err != nil {
					t.Fatal(err)
				}
			} else {
				tg = churnGraph(t, n, 130, 6, tc.rate, 47)
			}
			processed := 0
			opts := tc.opts
			opts.Observer = func(t int, scores Scores) {
				if t > 0 {
					processed += len(scores)
				}
			}
			res, err := CrashSimT(tg, 0, thresholdQuery{0.002}, Params{Iterations: 90, Seed: 53}, opts)
			if err != nil {
				t.Fatal(err)
			}
			s := res.Stats
			if got, want := s.Evaluated+s.ReusedDelta+s.ReusedDiff, n+processed; got != want {
				t.Errorf("Evaluated(%d)+ReusedDelta(%d)+ReusedDiff(%d) = %d, want %d candidate-snapshots",
					s.Evaluated, s.ReusedDelta, s.ReusedDiff, got, want)
			}
			// Every transition obtained its source tree exactly one way:
			// carried over an empty delta, patched, or rebuilt.
			empty := 0
			for i := 0; i < tg.NumSnapshots()-1; i++ {
				if tg.Delta(i).Size() == 0 {
					empty++
				}
			}
			if got, want := empty+s.TreePatched+s.TreeRebuilt, s.Snapshots-1; got != want {
				t.Errorf("empty(%d)+TreePatched(%d)+TreeRebuilt(%d) = %d transitions, want %d",
					empty, s.TreePatched, s.TreeRebuilt, got, want)
			}
			if tc.name == "gate-exceeding" && s.TreePatched != 0 {
				t.Errorf("TreePatched = %d under a zero-budget gate", s.TreePatched)
			}
			if tc.name == "empty-deltas" && s.TreeRebuilt+s.TreePatched != 0 {
				t.Errorf("static history rebuilt %d and patched %d trees", s.TreeRebuilt, s.TreePatched)
			}
		})
	}
}
