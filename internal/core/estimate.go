package core

import (
	"context"
	"fmt"
	"math"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// Estimate is a SimRank score with its Monte-Carlo uncertainty.
type Estimate struct {
	// Score is the mean crash probability over the n_r iterations.
	Score float64
	// StdErr is the sample standard error of Score: the standard
	// deviation of per-iteration contributions divided by √n_r. An
	// approximate 95% confidence interval is Score ± 2·StdErr (the
	// theory bound of Theorem 1 is looser but holds with certainty
	// 1−δ; StdErr reflects the realized variance).
	StdErr float64
}

// SingleSourceWithError is SingleSource with per-node uncertainty: it
// returns, for each candidate, both the estimate and its standard
// error, using exactly the same random streams as SingleSource (the
// Score fields match SingleSource bit-for-bit). Like SingleSource it
// runs against the compiled frozen tree; the per-walk contributions it
// needs for the variance come straight out of the fused kernels.
func SingleSourceWithError(g *graph.Graph, u graph.NodeID, omega []graph.NodeID, p Params) (map[graph.NodeID]Estimate, error) {
	tree, q, err := prepare(g, u, p)
	if err != nil {
		return nil, err
	}
	pooled := !q.DisablePooling
	defer releaseTree(tree, pooled)
	n := g.NumNodes()
	if omega == nil {
		omega = make([]graph.NodeID, n)
		for v := range omega {
			omega[v] = graph.NodeID(v)
		}
	}
	for _, v := range omega {
		if v < 0 || int(v) >= n {
			return nil, outOfRangeCandidate(v, n)
		}
	}
	nr := q.iterations(n)
	out := make(map[graph.NodeID]Estimate, len(omega))

	ft := acquireFrozen(pooled)
	ft.compile(tree, n)
	ft.buildStep1(g)
	defer releaseFrozen(ft, pooled)

	reach := newNodeBitset(nil, n)
	forwardReachBits(g, ft.SupportNodes(), q.Lmax, reach, nil, nil)

	sqrtC := math.Sqrt(q.C)
	kernel := kernelFor(q.Meeting)
	for _, v := range omega {
		if v == u {
			out[v] = Estimate{Score: 1}
			continue
		}
		if !reach.Has(v) || g.InDegree(v) == 0 {
			out[v] = Estimate{} // provably zero, no sampling noise
			continue
		}
		r := rng.FastSplit(q.Seed, uint64(v))
		sum, sumSq, _, err := kernel(context.Background(), g, ft, v, sqrtC, q.Lmax, nr, &r)
		if err != nil {
			return nil, err
		}
		mean := sum / float64(nr)
		est := Estimate{Score: mean}
		if nr > 1 {
			variance := (sumSq - float64(nr)*mean*mean) / float64(nr-1)
			if variance > 0 {
				est.StdErr = math.Sqrt(variance / float64(nr))
			}
		}
		out[v] = est
	}
	return out, nil
}

func outOfRangeCandidate(v graph.NodeID, n int) error {
	return fmt.Errorf("core: candidate %d out of range for n=%d", v, n)
}
