package core

import "crashsim/internal/rng"

// newTestRand returns a deterministic generator for walk-level tests.
func newTestRand(seed uint64) *rng.Source {
	return rng.New(seed)
}
