package core

import (
	"math"
	"math/bits"
	"sort"

	"crashsim/internal/graph"
)

// ReachTree is the output of revReach (Algorithm 2): for every step
// t ∈ [0, lmax] and node x, Prob(t, x) is the probability that the
// truncated √c-walk starting from the source is at x after t steps.
//
// Levels are sparse maps because a √c-walk's mass concentrates on the
// reverse neighborhood of the source. All construction is performed in
// sorted node order so probabilities are bit-for-bit deterministic for a
// given graph, which CrashSim-T's tree-equality pruning relies on.
type ReachTree struct {
	Source graph.NodeID
	Lmax   int
	levels []map[graph.NodeID]float64
}

// Prob returns U[step][v], or 0 when the walk cannot be at v at step.
func (t *ReachTree) Prob(step int, v graph.NodeID) float64 {
	if step < 0 || step >= len(t.levels) {
		return 0
	}
	return t.levels[step][v]
}

// Level returns the non-zero entries of level step; the map is shared and
// must not be modified.
func (t *ReachTree) Level(step int) map[graph.NodeID]float64 {
	if step < 0 || step >= len(t.levels) {
		return nil
	}
	return t.levels[step]
}

// NumLevels returns the number of stored levels (lmax + 1).
func (t *ReachTree) NumLevels() int { return len(t.levels) }

// LevelMass returns Σ_x U[step][x]. For the exact transition rule it is
// bounded by (√c)^step, a property the tests verify.
func (t *ReachTree) LevelMass(step int) float64 {
	sum := 0.0
	for _, p := range t.Level(step) {
		sum += p
	}
	return sum
}

// Support returns the number of (step, node) entries with positive mass.
func (t *ReachTree) Support() int {
	total := 0
	for _, lv := range t.levels {
		total += len(lv)
	}
	return total
}

// Equal reports whether two trees have the same support and probabilities
// within tol (use tol = 0 for exact equality; CrashSim-T uses a small
// tolerance because adjacency enumeration order may differ between
// otherwise identical snapshots).
func (t *ReachTree) Equal(o *ReachTree, tol float64) bool {
	if o == nil || len(t.levels) != len(o.levels) {
		return false
	}
	for step := range t.levels {
		a, b := t.levels[step], o.levels[step]
		if len(a) != len(b) {
			return false
		}
		for v, pa := range a {
			pb, ok := b[v]
			if !ok || math.Abs(pa-pb) > tol {
				return false
			}
		}
	}
	return true
}

// DiffNodes returns the sorted set of nodes whose probability differs
// from o's by more than tol at any level (including nodes present in
// only one tree). CrashSim-T's delta pruning treats the forward reach of
// these nodes as affected: a candidate whose walks cannot hit a changed
// tree entry sees identical crash probabilities.
func (t *ReachTree) DiffNodes(o *ReachTree, tol float64) []graph.NodeID {
	seen := make(map[graph.NodeID]struct{})
	levels := len(t.levels)
	if o != nil && len(o.levels) > levels {
		levels = len(o.levels)
	}
	for step := 0; step < levels; step++ {
		a := t.Level(step)
		var b map[graph.NodeID]float64
		if o != nil {
			b = o.Level(step)
		}
		for v, pa := range a {
			if pb, ok := b[v]; !ok || math.Abs(pa-pb) > tol {
				seen[v] = struct{}{}
			}
		}
		for v := range b {
			if _, ok := a[v]; !ok {
				seen[v] = struct{}{}
			}
		}
	}
	out := make([]graph.NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ApproxBytes estimates t's heap footprint for byte-accounted caching:
// the level-map headers plus a per-entry cost covering the map bucket
// share of a (NodeID, float64) pair. It intentionally overestimates a
// little — cache budgets should err toward evicting early.
func (t *ReachTree) ApproxBytes() int64 {
	total := int64(64)
	for _, lv := range t.levels {
		total += 48 + int64(len(lv))*32
	}
	return total
}

// Patch derives the reverse reachable tree of t.Source on g from t, the
// tree of the previous snapshot, where g differs from that snapshot by
// exactly the given edge delta. Only the affected region is re-expanded:
// the delta's endpoints seed a reverse (in-edge) BFS of depth Lmax, and
// every level's masses are recomputed for affected nodes only while
// unaffected entries are copied from t.
//
// The patched tree is bit-identical to a full RevReach on g. The level
// DP sums a receiver's in-flowing mass in ascending pusher order, and a
// node outside the affected closure has the same contributing pushers,
// the same pusher masses and the same per-edge weights on both
// snapshots — so restricting the re-push to affected receivers (while
// still visiting pushers in full sorted level order) reproduces the
// exact floating-point summation of the rebuild. The equivalence test
// enforces this with tolerance zero.
//
// The second result is the sorted set of nodes whose probability moved
// by more than tol at any level (including appear/vanish) — the same
// contract as DiffNodes against a fresh rebuild, computed as a
// byproduct instead of a second full-tree sweep. When no entry changed
// at the bit level, Patch returns t itself (pointer-stable, so callers
// can key compiled-form reuse on tree identity) and recycles the
// staging tree.
//
// ok is false when patching does not apply and the caller must fall
// back to a full rebuild: non-backtracking trees, an Lmax mismatch, or
// an affected closure larger than gate × t.Support() — past that point
// a rebuild is cheaper than a patch that re-expands most of the tree.
// p must already have defaults applied (CrashSim-T passes its resolved
// Params).
func (t *ReachTree) Patch(g *graph.Graph, add, del []graph.Edge, p Params, tol, gate float64) (*ReachTree, []graph.NodeID, bool) {
	if p.NonBacktracking || t.Lmax != p.Lmax || len(t.levels) != p.Lmax+1 {
		return nil, nil, false
	}
	n := g.NumNodes()
	ps := acquirePatchScratch(n)
	defer releasePatchScratch(ps)

	// Affected closure: a node's level value can change only if it is
	// the tail of a changed edge (its out-list changed), pushes through a
	// changed in-list (a head), or reaches such a node against the edge
	// direction within Lmax hops — mass flows from a node to its
	// in-neighbors, so being affected propagates the same way. Seeding
	// every endpoint of every changed edge covers all three cases for
	// directed and undirected graphs alike.
	affected := newNodeBitset(ps.affected, n)
	frontier, next := ps.frontier[:0], ps.next[:0]
	for _, set := range [][]graph.Edge{add, del} {
		for _, e := range set {
			if affected.Add(e.X) {
				frontier = append(frontier, e.X)
			}
			if affected.Add(e.Y) {
				frontier = append(frontier, e.Y)
			}
		}
	}
	budget := int(gate * float64(t.Support()))
	count := len(frontier)
	bail := func() bool { return count > budget }
	for d := 0; d < p.Lmax && len(frontier) > 0 && !bail(); d++ {
		next = next[:0]
		for _, x := range frontier {
			for _, v := range g.In(x) {
				if affected.Add(v) {
					next = append(next, v)
					count++
				}
			}
		}
		frontier, next = next, frontier
	}
	ps.affected, ps.frontier, ps.next = affected, frontier, next
	if bail() {
		return nil, nil, false
	}

	// Pushers: the nodes whose level mass must be re-pushed because some
	// in-neighbor is an affected receiver — exactly Out(affected). Every
	// other node's pushes land only on unaffected receivers, whose
	// entries are copied, so those pushes are skipped wholesale.
	pushers := newNodeBitset(ps.pushers, n)
	for wi, w := range affected {
		base := graph.NodeID(wi << 6)
		for w != 0 {
			v := base + graph.NodeID(bits.TrailingZeros64(w))
			w &= w - 1
			for _, x := range g.Out(v) {
				pushers.Add(x)
			}
		}
	}
	ps.pushers = pushers

	sc := math.Sqrt(p.C)
	nt := acquireTree(t.Source, t.Lmax)
	nt.levels[0][t.Source] = 1
	acc := ps.acc
	rseen := newNodeBitset(ps.rseen, n)
	levelBits := nodeBitset(growUint64(ps.levelBits, len(rseen)))
	changed := newNodeBitset(ps.changed, n)
	order, masses := ps.order[:0], ps.masses[:0]
	order = append(order, t.Source)
	masses = append(masses, 1)
	bitSame := true
	for step := 0; step < p.Lmax; step++ {
		// Restricted push: walk the new level's full sorted support (so
		// affected receivers accumulate in rebuild order), but only
		// pushers do per-edge work and only affected receivers are
		// written.
		for i, x := range order {
			if !pushers.Has(x) {
				continue
			}
			in := g.In(x)
			if len(in) == 0 {
				continue
			}
			mass := masses[i]
			switch p.Transition {
			case TransitionExact:
				w := mass * sc / float64(len(in))
				for _, v := range in {
					if !affected.Has(v) {
						continue
					}
					if rseen.Add(v) {
						acc[v] = w
					} else {
						acc[v] += w
					}
				}
			case TransitionPaperLiteral:
				for _, v := range in {
					if !affected.Has(v) {
						continue
					}
					deg := g.InDegree(v)
					if deg == 0 {
						continue
					}
					w := mass * sc / float64(deg)
					if rseen.Add(v) {
						acc[v] = w
					} else {
						acc[v] += w
					}
				}
			}
		}

		// Assemble the new level: affected receivers from the push above
		// (their bits are already in rseen), unaffected entries copied
		// from the old level. Vanished and value-changed affected
		// entries feed the diff; appearances are caught in the sweep.
		old := t.levels[step+1]
		copy(levelBits, rseen)
		for v, pOld := range old {
			if !affected.Has(v) {
				levelBits.Add(v)
				acc[v] = pOld
				continue
			}
			if !rseen.Has(v) {
				changed.Add(v)
				bitSame = false
			} else if math.Float64bits(acc[v]) != math.Float64bits(pOld) {
				bitSame = false
				if math.Abs(acc[v]-pOld) > tol {
					changed.Add(v)
				}
			}
		}
		next := nt.levels[step+1]
		order, masses = order[:0], masses[:0]
		for wi, w := range levelBits {
			if w == 0 {
				continue
			}
			levelBits[wi] = 0
			base := graph.NodeID(wi << 6)
			for w != 0 {
				v := base + graph.NodeID(bits.TrailingZeros64(w))
				w &= w - 1
				pv := acc[v]
				next[v] = pv
				order = append(order, v)
				masses = append(masses, pv)
				if rseen.Has(v) {
					if _, ok := old[v]; !ok {
						changed.Add(v)
						bitSame = false
					}
				}
			}
		}
		clear(rseen)
	}
	ps.acc, ps.rseen, ps.levelBits, ps.changed = acc, rseen, levelBits, changed
	ps.order, ps.masses = order, masses

	if bitSame {
		// The snapshot change never reached the tree: hand the caller the
		// old tree back so downstream reuse keyed on pointer identity
		// (the frozen-form carry) stays engaged, and recycle the staging
		// tree we just filled.
		releaseTree(nt, !p.DisablePooling)
		return t, nil, true
	}
	var diff []graph.NodeID
	for wi, w := range changed {
		base := graph.NodeID(wi << 6)
		for w != 0 {
			v := base + graph.NodeID(bits.TrailingZeros64(w))
			w &= w - 1
			diff = append(diff, v)
		}
	}
	return nt, diff, true
}

// Nodes returns the sorted set of nodes with positive mass at any level.
// CrashSim-T's delta pruning treats these as part (i) of the affected
// area of the source.
func (t *ReachTree) Nodes() []graph.NodeID {
	seen := make(map[graph.NodeID]struct{})
	for _, lv := range t.levels {
		for v := range lv {
			seen[v] = struct{}{}
		}
	}
	out := make([]graph.NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// adjacency abstracts the two graph representations revReach runs on:
// immutable CSR snapshots and the mutable working graph of a temporal
// cursor.
type adjacency interface {
	NumNodes() int
	In(v graph.NodeID) []graph.NodeID
	InDegree(v graph.NodeID) int
}

// RevReach builds the reverse reachable tree of u (Algorithm 2) with the
// given decay factor, truncation length and transition rule, using a
// level-synchronized dynamic program: level t+1 is derived from level t
// by pushing each node's mass to its in-neighbors. The cost is
// O(l_max · m) in the worst case and proportional to the touched
// neighborhood in practice.
func RevReach(g adjacency, u graph.NodeID, c float64, lmax int, rule TransitionRule) *ReachTree {
	sc := math.Sqrt(c)
	// Level maps come from the scratch pool: SingleSourceCtx releases
	// the tree after its estimate, so repeated queries reuse the maps'
	// bucket storage instead of regrowing it level by level.
	t := acquireTree(u, lmax)
	t.levels[0][u] = 1
	// Mass for the next level accumulates in a pooled dense array rather
	// than through per-in-edge map updates: the additions happen in
	// exactly the order the map updates did (sorted sources, in-edge
	// order within a source), so each level's values are bit-identical,
	// but the level map is written once per touched node instead of
	// being probed once per in-edge. The sorted source order comes for
	// free: sweeping the seen bitset in word order yields the touched
	// nodes ascending, so no level is ever sorted, and carrying each
	// node's mass next to it in a parallel slice means the DP never
	// reads a level map either — maps are written purely for consumers.
	ra := acquireRevAcc(g.NumNodes())
	acc, seen := ra.acc, ra.seen
	order, masses := ra.order[:0], ra.masses[:0]
	order = append(order, u)
	masses = append(masses, 1)
	for step := 0; step < lmax; step++ {
		for i, x := range order {
			in := g.In(x)
			if len(in) == 0 {
				continue
			}
			mass := masses[i]
			switch rule {
			case TransitionExact:
				w := mass * sc / float64(len(in))
				for _, v := range in {
					if bit := uint64(1) << uint(v&63); seen[v>>6]&bit == 0 {
						seen[v>>6] |= bit
						acc[v] = w
					} else {
						acc[v] += w
					}
				}
			case TransitionPaperLiteral:
				for _, v := range in {
					deg := g.InDegree(v)
					if deg == 0 {
						continue
					}
					w := mass * sc / float64(deg)
					if bit := uint64(1) << uint(v&63); seen[v>>6]&bit == 0 {
						seen[v>>6] |= bit
						acc[v] = w
					} else {
						acc[v] += w
					}
				}
			}
		}
		next := t.levels[step+1]
		order, masses = order[:0], masses[:0]
		for wi, w := range seen {
			if w == 0 {
				continue
			}
			seen[wi] = 0
			base := graph.NodeID(wi << 6)
			for w != 0 {
				v := base + graph.NodeID(bits.TrailingZeros64(w))
				w &= w - 1
				p := acc[v]
				next[v] = p
				order = append(order, v)
				masses = append(masses, p)
			}
		}
	}
	ra.acc, ra.seen, ra.order, ra.masses = acc, seen, order, masses
	releaseRevAcc(ra)
	return t
}

// RevReachNonBacktracking builds the tree over the non-backtracking
// variant of the √c-walk that Algorithm 2 line 9 describes: the walk
// never immediately returns to the node it just came from. States are
// (node, parent) pairs, so the cost grows with the number of touched
// edges rather than nodes. Node-level marginals are returned in the same
// ReachTree shape. Combined with TransitionPaperLiteral this reproduces
// the paper's Example 2 numbers exactly; it is otherwise an ablation.
func RevReachNonBacktracking(g adjacency, u graph.NodeID, c float64, lmax int, rule TransitionRule) *ReachTree {
	type state struct{ node, parent graph.NodeID }
	sc := math.Sqrt(c)
	t := &ReachTree{
		Source: u,
		Lmax:   lmax,
		levels: make([]map[graph.NodeID]float64, lmax+1),
	}
	t.levels[0] = map[graph.NodeID]float64{u: 1}
	cur := map[state]float64{{node: u, parent: -1}: 1}
	var order []state
	for step := 0; step < lmax; step++ {
		next := make(map[state]float64, len(cur)*2)
		order = order[:0]
		for s := range cur {
			order = append(order, s)
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].node != order[j].node {
				return order[i].node < order[j].node
			}
			return order[i].parent < order[j].parent
		})
		for _, s := range order {
			in := g.In(s.node)
			// Candidate next hops exclude the parent.
			avail := 0
			for _, v := range in {
				if v != s.parent {
					avail++
				}
			}
			if avail == 0 {
				continue
			}
			mass := cur[s]
			for _, v := range in {
				if v == s.parent {
					continue
				}
				var w float64
				switch rule {
				case TransitionPaperLiteral:
					deg := g.InDegree(v)
					if deg == 0 {
						continue
					}
					w = mass * sc / float64(deg)
				default:
					w = mass * sc / float64(avail)
				}
				next[state{node: v, parent: s.node}] += w
			}
		}
		level := make(map[graph.NodeID]float64, len(next))
		for s, p := range next {
			level[s.node] += p
		}
		t.levels[step+1] = level
		cur = next
	}
	return t
}
