package core

import (
	"math"
	"math/bits"
	"sort"

	"crashsim/internal/graph"
)

// ReachTree is the output of revReach (Algorithm 2): for every step
// t ∈ [0, lmax] and node x, Prob(t, x) is the probability that the
// truncated √c-walk starting from the source is at x after t steps.
//
// Levels are sparse maps because a √c-walk's mass concentrates on the
// reverse neighborhood of the source. All construction is performed in
// sorted node order so probabilities are bit-for-bit deterministic for a
// given graph, which CrashSim-T's tree-equality pruning relies on.
type ReachTree struct {
	Source graph.NodeID
	Lmax   int
	levels []map[graph.NodeID]float64
}

// Prob returns U[step][v], or 0 when the walk cannot be at v at step.
func (t *ReachTree) Prob(step int, v graph.NodeID) float64 {
	if step < 0 || step >= len(t.levels) {
		return 0
	}
	return t.levels[step][v]
}

// Level returns the non-zero entries of level step; the map is shared and
// must not be modified.
func (t *ReachTree) Level(step int) map[graph.NodeID]float64 {
	if step < 0 || step >= len(t.levels) {
		return nil
	}
	return t.levels[step]
}

// NumLevels returns the number of stored levels (lmax + 1).
func (t *ReachTree) NumLevels() int { return len(t.levels) }

// LevelMass returns Σ_x U[step][x]. For the exact transition rule it is
// bounded by (√c)^step, a property the tests verify.
func (t *ReachTree) LevelMass(step int) float64 {
	sum := 0.0
	for _, p := range t.Level(step) {
		sum += p
	}
	return sum
}

// Support returns the number of (step, node) entries with positive mass.
func (t *ReachTree) Support() int {
	total := 0
	for _, lv := range t.levels {
		total += len(lv)
	}
	return total
}

// Equal reports whether two trees have the same support and probabilities
// within tol (use tol = 0 for exact equality; CrashSim-T uses a small
// tolerance because adjacency enumeration order may differ between
// otherwise identical snapshots).
func (t *ReachTree) Equal(o *ReachTree, tol float64) bool {
	if o == nil || len(t.levels) != len(o.levels) {
		return false
	}
	for step := range t.levels {
		a, b := t.levels[step], o.levels[step]
		if len(a) != len(b) {
			return false
		}
		for v, pa := range a {
			pb, ok := b[v]
			if !ok || math.Abs(pa-pb) > tol {
				return false
			}
		}
	}
	return true
}

// DiffNodes returns the sorted set of nodes whose probability differs
// from o's by more than tol at any level (including nodes present in
// only one tree). CrashSim-T's delta pruning treats the forward reach of
// these nodes as affected: a candidate whose walks cannot hit a changed
// tree entry sees identical crash probabilities.
func (t *ReachTree) DiffNodes(o *ReachTree, tol float64) []graph.NodeID {
	seen := make(map[graph.NodeID]struct{})
	levels := len(t.levels)
	if o != nil && len(o.levels) > levels {
		levels = len(o.levels)
	}
	for step := 0; step < levels; step++ {
		a := t.Level(step)
		var b map[graph.NodeID]float64
		if o != nil {
			b = o.Level(step)
		}
		for v, pa := range a {
			if pb, ok := b[v]; !ok || math.Abs(pa-pb) > tol {
				seen[v] = struct{}{}
			}
		}
		for v := range b {
			if _, ok := a[v]; !ok {
				seen[v] = struct{}{}
			}
		}
	}
	out := make([]graph.NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Nodes returns the sorted set of nodes with positive mass at any level.
// CrashSim-T's delta pruning treats these as part (i) of the affected
// area of the source.
func (t *ReachTree) Nodes() []graph.NodeID {
	seen := make(map[graph.NodeID]struct{})
	for _, lv := range t.levels {
		for v := range lv {
			seen[v] = struct{}{}
		}
	}
	out := make([]graph.NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// adjacency abstracts the two graph representations revReach runs on:
// immutable CSR snapshots and the mutable working graph of a temporal
// cursor.
type adjacency interface {
	NumNodes() int
	In(v graph.NodeID) []graph.NodeID
	InDegree(v graph.NodeID) int
}

// RevReach builds the reverse reachable tree of u (Algorithm 2) with the
// given decay factor, truncation length and transition rule, using a
// level-synchronized dynamic program: level t+1 is derived from level t
// by pushing each node's mass to its in-neighbors. The cost is
// O(l_max · m) in the worst case and proportional to the touched
// neighborhood in practice.
func RevReach(g adjacency, u graph.NodeID, c float64, lmax int, rule TransitionRule) *ReachTree {
	sc := math.Sqrt(c)
	// Level maps come from the scratch pool: SingleSourceCtx releases
	// the tree after its estimate, so repeated queries reuse the maps'
	// bucket storage instead of regrowing it level by level.
	t := acquireTree(u, lmax)
	t.levels[0][u] = 1
	// Mass for the next level accumulates in a pooled dense array rather
	// than through per-in-edge map updates: the additions happen in
	// exactly the order the map updates did (sorted sources, in-edge
	// order within a source), so each level's values are bit-identical,
	// but the level map is written once per touched node instead of
	// being probed once per in-edge. The sorted source order comes for
	// free: sweeping the seen bitset in word order yields the touched
	// nodes ascending, so no level is ever sorted, and carrying each
	// node's mass next to it in a parallel slice means the DP never
	// reads a level map either — maps are written purely for consumers.
	ra := acquireRevAcc(g.NumNodes())
	acc, seen := ra.acc, ra.seen
	order, masses := ra.order[:0], ra.masses[:0]
	order = append(order, u)
	masses = append(masses, 1)
	for step := 0; step < lmax; step++ {
		for i, x := range order {
			in := g.In(x)
			if len(in) == 0 {
				continue
			}
			mass := masses[i]
			switch rule {
			case TransitionExact:
				w := mass * sc / float64(len(in))
				for _, v := range in {
					if bit := uint64(1) << uint(v&63); seen[v>>6]&bit == 0 {
						seen[v>>6] |= bit
						acc[v] = w
					} else {
						acc[v] += w
					}
				}
			case TransitionPaperLiteral:
				for _, v := range in {
					deg := g.InDegree(v)
					if deg == 0 {
						continue
					}
					w := mass * sc / float64(deg)
					if bit := uint64(1) << uint(v&63); seen[v>>6]&bit == 0 {
						seen[v>>6] |= bit
						acc[v] = w
					} else {
						acc[v] += w
					}
				}
			}
		}
		next := t.levels[step+1]
		order, masses = order[:0], masses[:0]
		for wi, w := range seen {
			if w == 0 {
				continue
			}
			seen[wi] = 0
			base := graph.NodeID(wi << 6)
			for w != 0 {
				v := base + graph.NodeID(bits.TrailingZeros64(w))
				w &= w - 1
				p := acc[v]
				next[v] = p
				order = append(order, v)
				masses = append(masses, p)
			}
		}
	}
	ra.acc, ra.seen, ra.order, ra.masses = acc, seen, order, masses
	releaseRevAcc(ra)
	return t
}

// RevReachNonBacktracking builds the tree over the non-backtracking
// variant of the √c-walk that Algorithm 2 line 9 describes: the walk
// never immediately returns to the node it just came from. States are
// (node, parent) pairs, so the cost grows with the number of touched
// edges rather than nodes. Node-level marginals are returned in the same
// ReachTree shape. Combined with TransitionPaperLiteral this reproduces
// the paper's Example 2 numbers exactly; it is otherwise an ablation.
func RevReachNonBacktracking(g adjacency, u graph.NodeID, c float64, lmax int, rule TransitionRule) *ReachTree {
	type state struct{ node, parent graph.NodeID }
	sc := math.Sqrt(c)
	t := &ReachTree{
		Source: u,
		Lmax:   lmax,
		levels: make([]map[graph.NodeID]float64, lmax+1),
	}
	t.levels[0] = map[graph.NodeID]float64{u: 1}
	cur := map[state]float64{{node: u, parent: -1}: 1}
	var order []state
	for step := 0; step < lmax; step++ {
		next := make(map[state]float64, len(cur)*2)
		order = order[:0]
		for s := range cur {
			order = append(order, s)
		}
		sort.Slice(order, func(i, j int) bool {
			if order[i].node != order[j].node {
				return order[i].node < order[j].node
			}
			return order[i].parent < order[j].parent
		})
		for _, s := range order {
			in := g.In(s.node)
			// Candidate next hops exclude the parent.
			avail := 0
			for _, v := range in {
				if v != s.parent {
					avail++
				}
			}
			if avail == 0 {
				continue
			}
			mass := cur[s]
			for _, v := range in {
				if v == s.parent {
					continue
				}
				var w float64
				switch rule {
				case TransitionPaperLiteral:
					deg := g.InDegree(v)
					if deg == 0 {
						continue
					}
					w = mass * sc / float64(deg)
				default:
					w = mass * sc / float64(avail)
				}
				next[state{node: v, parent: s.node}] += w
			}
		}
		level := make(map[graph.NodeID]float64, len(next))
		for s, p := range next {
			level[s.node] += p
		}
		t.levels[step+1] = level
		cur = next
	}
	return t
}
