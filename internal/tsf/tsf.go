// Package tsf implements a TSF-style baseline (Shao et al., PVLDB 2015:
// "An Efficient Similarity Search Framework for SimRank over Large
// Dynamic Graphs"), the other index-based dynamic SimRank method the
// paper's related-work section discusses.
//
// The index stores Rg "one-way graphs": independent samples of one
// uniformly chosen in-neighbor parent per node. Within one one-way
// graph every node has a unique reverse path (follow parents), and two
// synchronized paths that meet coalesce — exactly SimRank's coupled-walk
// semantics — so sim(u, v) is estimated as the average of c^τ over the
// samples, where τ is the first step at which the paths of u and v
// coincide. A single sample prices all candidates at once, which makes
// single-source queries cheap.
//
// On an edge update only the parent slots of the edge's head need
// revisiting (an insertion steals the slot with probability 1/|I(y)|,
// preserving uniformity; a deletion resamples slots that pointed at the
// removed neighbor), giving incremental maintenance like READS.
//
// Simplification vs the original system: a walk revisiting a node reuses
// the same stored parent instead of resampling, which biases estimates
// on short cycles; the original's query-time resampling stage is folded
// into Rg. See DESIGN.md.
package tsf

import (
	"fmt"
	"math"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// Options configures the index.
type Options struct {
	// C is the SimRank decay factor in (0,1). Default 0.6.
	C float64
	// Rg is the number of one-way graphs. Default 100.
	Rg int
	// MaxLen caps the coupled-path length; the truncated tail carries
	// at most c^MaxLen estimate mass. Default 10.
	MaxLen int
	// Seed makes index construction and maintenance deterministic.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Rg == 0 {
		o.Rg = 100
	}
	if o.MaxLen == 0 {
		o.MaxLen = 10
	}
	return o
}

// Validate checks option ranges after defaulting.
func (o Options) Validate() error {
	q := o.withDefaults()
	if q.C <= 0 || q.C >= 1 {
		return fmt.Errorf("tsf: decay factor c=%g outside (0,1)", q.C)
	}
	if q.Rg < 1 {
		return fmt.Errorf("tsf: one-way graph count must be >= 1, got %d", q.Rg)
	}
	if q.MaxLen < 1 {
		return fmt.Errorf("tsf: max path length must be >= 1, got %d", q.MaxLen)
	}
	return nil
}

// noParent marks nodes without in-neighbors in a one-way graph.
const noParent = graph.NodeID(-1)

// Index holds the Rg one-way graphs over a private copy of the graph.
type Index struct {
	opt    Options
	g      *graph.DiGraph
	parent [][]graph.NodeID // parent[k][v] = sampled in-neighbor of v
	// version counts resamplings per (k, v) so updates draw fresh
	// deterministic randomness.
	version [][]uint32
}

// Build samples the one-way graphs from g's current state.
func Build(g *graph.DiGraph, opt Options) (*Index, error) {
	o := opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	ix := &Index{
		opt:     o,
		g:       g.Clone(),
		parent:  make([][]graph.NodeID, o.Rg),
		version: make([][]uint32, o.Rg),
	}
	for k := 0; k < o.Rg; k++ {
		ix.parent[k] = make([]graph.NodeID, n)
		ix.version[k] = make([]uint32, n)
		for v := 0; v < n; v++ {
			ix.parent[k][v] = ix.sampleParent(k, graph.NodeID(v))
		}
	}
	return ix, nil
}

// sampleParent draws a fresh uniform parent for (k, v) and bumps the
// version so the next draw differs.
func (ix *Index) sampleParent(k int, v graph.NodeID) graph.NodeID {
	in := ix.g.In(v)
	if len(in) == 0 {
		return noParent
	}
	ver := ix.version[k][v]
	ix.version[k][v]++
	r := rng.Split(ix.opt.Seed^uint64(k)<<40^uint64(ver)<<8, uint64(v))
	return in[r.IntN(len(in))]
}

// SingleSource estimates sim(u, ·) for all nodes: per one-way graph,
// u's unique path is materialized and every node's path is stepped in
// lockstep against it, contributing c^τ at the first coincidence.
func (ix *Index) SingleSource(u graph.NodeID) (map[graph.NodeID]float64, error) {
	n := ix.g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("tsf: source %d out of range for n=%d", u, n)
	}
	scores := make(map[graph.NodeID]float64, 64)
	inv := 1 / float64(ix.opt.Rg)
	pathU := make([]graph.NodeID, ix.opt.MaxLen+1)
	for k := 0; k < ix.opt.Rg; k++ {
		parent := ix.parent[k]
		// Materialize u's path; stop at dead ends.
		lenU := 0
		pathU[0] = u
		for t := 1; t <= ix.opt.MaxLen; t++ {
			p := parent[pathU[t-1]]
			if p == noParent {
				break
			}
			pathU[t] = p
			lenU = t
		}
		if lenU == 0 {
			continue
		}
		for v := graph.NodeID(0); int(v) < n; v++ {
			if v == u {
				continue
			}
			cur := v
			weight := 1.0
			for t := 1; t <= lenU; t++ {
				cur = parent[cur]
				if cur == noParent {
					break
				}
				weight *= ix.opt.C
				if cur == pathU[t] {
					scores[v] += weight * inv
					break
				}
			}
		}
	}
	scores[u] = 1
	return scores, nil
}

// ApplyEdge updates the graph copy and repairs the affected parent
// slots: only the head's slots can change (both endpoints when
// undirected).
func (ix *Index) ApplyEdge(e graph.Edge, add bool) error {
	var err error
	if add {
		err = ix.g.AddEdge(e.X, e.Y)
	} else {
		err = ix.g.RemoveEdge(e.X, e.Y)
	}
	if err != nil {
		return fmt.Errorf("tsf: applying edge update: %w", err)
	}
	heads := [][2]graph.NodeID{{e.Y, e.X}}
	if !ix.g.Directed() {
		heads = append(heads, [2]graph.NodeID{e.X, e.Y})
	}
	for _, h := range heads {
		node, other := h[0], h[1]
		deg := ix.g.InDegree(node)
		for k := 0; k < ix.opt.Rg; k++ {
			switch {
			case add:
				// The new neighbor steals the slot with probability
				// 1/deg, which keeps the slot uniform over the new
				// in-neighbor list.
				if deg == 1 {
					ix.parent[k][node] = other
					continue
				}
				ver := ix.version[k][node]
				ix.version[k][node]++
				r := rng.Split(ix.opt.Seed^0xabcd^uint64(k)<<40^uint64(ver)<<8, uint64(node))
				if r.IntN(deg) == 0 {
					ix.parent[k][node] = other
				}
			default:
				// Deletion invalidates slots pointing at the removed
				// neighbor; also repair dead ends when edges return.
				if ix.parent[k][node] == other || ix.parent[k][node] == noParent {
					ix.parent[k][node] = ix.sampleParent(k, node)
				}
			}
		}
	}
	return nil
}

// ApplyDelta applies deletions then insertions.
func (ix *Index) ApplyDelta(add, del []graph.Edge) error {
	for _, e := range del {
		if err := ix.ApplyEdge(e, false); err != nil {
			return err
		}
	}
	for _, e := range add {
		if err := ix.ApplyEdge(e, true); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks the index invariant: every parent slot is either
// noParent (for dangling nodes) or a current in-neighbor.
func (ix *Index) Validate() error {
	for k := range ix.parent {
		for v, p := range ix.parent[k] {
			in := ix.g.In(graph.NodeID(v))
			if p == noParent {
				if len(in) != 0 {
					return fmt.Errorf("tsf: slot (%d,%d) empty but node has %d in-neighbors", k, v, len(in))
				}
				continue
			}
			found := false
			for _, x := range in {
				if x == p {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("tsf: slot (%d,%d) points at %d, not an in-neighbor", k, v, p)
			}
		}
	}
	return nil
}

// TruncationBias returns the worst-case estimate mass lost to the path
// length cap, c^MaxLen.
func (ix *Index) TruncationBias() float64 {
	return math.Pow(ix.opt.C, float64(ix.opt.MaxLen))
}

// Slots returns the number of stored parent slots (Rg · n), the
// index-memory proxy the benchmark reports use.
func (ix *Index) Slots() int {
	return len(ix.parent) * ix.g.NumNodes()
}

// Graph exposes the index's private graph copy for tests.
func (ix *Index) Graph() *graph.DiGraph { return ix.g }
