package tsf

import (
	"math"
	"testing"

	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func diGraphOf(t *testing.T, g *graph.Graph) *graph.DiGraph {
	t.Helper()
	d := graph.NewDiGraph(g.NumNodes(), g.Directed())
	for _, e := range g.Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestOptionsValidate(t *testing.T) {
	for _, o := range []Options{{C: 2}, {Rg: -1}, {MaxLen: -1}} {
		if err := o.Validate(); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

func TestBuildInvariant(t *testing.T) {
	ix, err := Build(diGraphOf(t, graph.PaperExample()), Options{Rg: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(diGraphOf(t, graph.PaperExample()), Options{C: 7}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestSingleSourceBasics(t *testing.T) {
	ix, err := Build(diGraphOf(t, graph.PaperExample()), Options{Rg: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ix.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 {
		t.Errorf("s(u,u) = %g", s[0])
	}
	for v, score := range s {
		if score < 0 || score > 1 {
			t.Errorf("score of %d = %g outside [0,1]", v, score)
		}
	}
	if _, err := ix.SingleSource(-1); err == nil {
		t.Error("bad source accepted")
	}
}

// TestAccuracy: the one-way-graph estimator approximates SimRank; the
// node-reuse coupling bias means a looser tolerance than the MC
// baselines (the original system corrects this with query-time
// resampling, see package doc).
func TestAccuracy(t *testing.T) {
	edges, err := gen.ErdosRenyi(50, 150, true, 81)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(50, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(diGraphOf(t, g), Options{C: 0.6, Rg: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ix.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for v := 0; v < g.NumNodes(); v++ {
		if d := math.Abs(s[graph.NodeID(v)] - gt.Sim(0, graph.NodeID(v))); d > worst {
			worst = d
		}
	}
	if worst > 0.15 {
		t.Errorf("max error %.4f above tolerance 0.15", worst)
	}
}

func TestApplyEdgeKeepsInvariant(t *testing.T) {
	edges, err := gen.ErdosRenyi(30, 90, true, 83)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(30, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(diGraphOf(t, g), Options{Rg: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Delete a few existing edges and add fresh ones, validating the
	// parent invariant after every step.
	updates := []struct {
		e   graph.Edge
		add bool
	}{
		{edges[0], false},
		{edges[1], false},
		{graph.Edge{X: 0, Y: 29}, true},
		{edges[0], true}, // reinstate
	}
	for _, up := range updates {
		if up.add && ix.Graph().HasEdge(up.e.X, up.e.Y) {
			continue
		}
		if !up.add && !ix.Graph().HasEdge(up.e.X, up.e.Y) {
			continue
		}
		if err := ix.ApplyEdge(up.e, up.add); err != nil {
			t.Fatalf("ApplyEdge(%v, %t): %v", up.e, up.add, err)
		}
		if err := ix.Validate(); err != nil {
			t.Fatalf("after ApplyEdge(%v, %t): %v", up.e, up.add, err)
		}
	}
	if _, err := ix.SingleSource(0); err != nil {
		t.Fatal(err)
	}
	if err := ix.ApplyDelta(nil, []graph.Edge{{X: 0, Y: 1}}); err == nil {
		// edge (0,1) may or may not exist; ensure errors propagate when
		// it does not.
		if !ix.Graph().HasEdge(0, 1) {
			t.Error("deleting a missing edge did not error")
		}
	}
}

// TestDeletionRepairsDanglingSlots: removing a node's last in-edge must
// set the slot to noParent; restoring an edge must repair it.
func TestDeletionRepairsDanglingSlots(t *testing.T) {
	d := graph.NewDiGraph(3, true)
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	ix, err := Build(d, Options{Rg: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.ApplyEdge(graph.Edge{X: 0, Y: 1}, false); err != nil {
		t.Fatal(err)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ix.ApplyEdge(graph.Edge{X: 2, Y: 1}, true); err != nil {
		t.Fatal(err)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if ix.parent[k][1] != 2 {
			t.Fatalf("slot (%d,1) = %d, want 2 (only in-neighbor)", k, ix.parent[k][1])
		}
	}
}

func TestTruncationBias(t *testing.T) {
	ix, err := Build(diGraphOf(t, graph.PaperExample()), Options{C: 0.5, MaxLen: 4, Rg: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.TruncationBias(); math.Abs(got-0.0625) > 1e-12 {
		t.Errorf("TruncationBias = %g, want 0.0625", got)
	}
}
