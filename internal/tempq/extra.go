package tempq

import (
	"context"
	"fmt"
	"sort"

	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/temporal"
)

// Band keeps nodes whose similarity to the source stays inside
// [Low, High] at every snapshot — a stability query: the relationship
// neither decays below Low nor spikes above High. It generalizes
// Threshold (Band{Low: θ, High: 1}).
type Band struct {
	Low, High float64
}

// Name implements Query.
func (b Band) Name() string { return fmt.Sprintf("band-%.3f-%.3f", b.Low, b.High) }

// Keep implements Query.
func (b Band) Keep(_ int, _ /* prev */, cur float64) bool {
	return cur >= b.Low && cur <= b.High
}

// keepAll never filters; it powers aggregate scans like DurableTopK.
type keepAll struct{}

func (keepAll) Name() string                    { return "keep-all" }
func (keepAll) Keep(int, float64, float64) bool { return true }

// DurableResult is one answer of a durable top-k query.
type DurableResult struct {
	Node graph.NodeID
	// MinScore is the node's minimum similarity to the source across
	// the whole interval — the durability value being ranked.
	MinScore float64
}

// DurableTopK answers the durable top-k similarity query inspired by
// the durable-pattern queries the paper cites ([15], Semertzidis &
// Pitoura): the k nodes whose *minimum* similarity to the source across
// the entire interval is highest — the most persistently similar nodes,
// not merely the most similar right now. It reuses CrashSim-T's
// snapshot machinery (including delta pruning) via the observer hook,
// tracking each node's running minimum.
func DurableTopK(tg *temporal.Graph, u graph.NodeID, k int, p core.Params, topt core.TemporalOptions) ([]DurableResult, error) {
	return DurableTopKCtx(context.Background(), tg, u, k, p, topt)
}

// DurableTopKCtx is DurableTopK with cancellation, forwarded into the
// underlying CrashSim-T run.
func DurableTopKCtx(ctx context.Context, tg *temporal.Graph, u graph.NodeID, k int, p core.Params, topt core.TemporalOptions) ([]DurableResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("tempq: durable top-k needs k >= 1, got %d", k)
	}
	min := make(map[graph.NodeID]float64)
	topt.Observer = func(t int, scores core.Scores) {
		observeMin(min, t, scores)
	}
	if _, err := core.CrashSimTCtx(ctx, tg, u, keepAll{}, p, topt); err != nil {
		return nil, err
	}
	out := make([]DurableResult, 0, len(min))
	for v, s := range min {
		if v == u {
			continue
		}
		out = append(out, DurableResult{Node: v, MinScore: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MinScore != out[j].MinScore {
			return out[i].MinScore > out[j].MinScore
		}
		return out[i].Node < out[j].Node
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k], nil
}

// observeMin folds one snapshot's scores into the per-node running
// minima. A node tracked since t=0 but missing from a later snapshot's
// score map has similarity 0 there — a disconnected node is maximally
// non-durable — so absence lowers the minimum to 0 rather than quietly
// preserving the stale t=0 value. (Iterating the tracked set, not the
// snapshot's map, is what makes absence count.)
func observeMin(min map[graph.NodeID]float64, t int, scores core.Scores) {
	if t == 0 {
		for v, s := range scores {
			min[v] = s
		}
		return
	}
	for v := range min {
		if s := scores[v]; s < min[v] {
			min[v] = s
		}
	}
}
