package tempq

import (
	"math"
	"testing"

	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/temporal"
)

func TestBandKeep(t *testing.T) {
	b := Band{Low: 0.1, High: 0.5}
	cases := []struct {
		cur  float64
		want bool
	}{
		{0.1, true}, {0.3, true}, {0.5, true},
		{0.09, false}, {0.51, false}, {0, false},
	}
	for _, tc := range cases {
		if got := b.Keep(1, math.NaN(), tc.cur); got != tc.want {
			t.Errorf("Keep(cur=%g) = %t, want %t", tc.cur, got, tc.want)
		}
	}
	if b.Name() != "band-0.100-0.500" {
		t.Errorf("name = %q", b.Name())
	}
}

func TestDurableTopK(t *testing.T) {
	// Node 1 stays similar to node 0 in both snapshots (shared
	// in-neighbor 2 throughout); node 3 is similar only in snapshot 0.
	tg, err := temporal.New(5, true,
		[]graph.Edge{{X: 2, Y: 0}, {X: 2, Y: 1}, {X: 2, Y: 3}, {X: 4, Y: 2}},
		[]temporal.Delta{{
			Del: []graph.Edge{{X: 2, Y: 3}},
			Add: []graph.Edge{{X: 4, Y: 3}},
		}})
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{Iterations: 600, Seed: 9}
	res, err := DurableTopK(tg, 0, 2, p, core.TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Node != 1 {
		t.Errorf("most durable node = %d (min %.3f), want 1", res[0].Node, res[0].MinScore)
	}
	// Node 3's minimum collapses in snapshot 1, so its durability must
	// rank below node 1's.
	for _, r := range res {
		if r.Node == 3 && r.MinScore >= res[0].MinScore {
			t.Errorf("node 3 durability %.3f should trail node 1's %.3f", r.MinScore, res[0].MinScore)
		}
	}
	// Ordering is by descending minimum.
	if len(res) == 2 && res[0].MinScore < res[1].MinScore {
		t.Error("results not sorted by durability")
	}
}

// TestObserveMinAbsentNode is the regression test for the durable
// top-k stale-minimum bug: a node scored at t=0 but absent from a
// later snapshot's score map (disconnected — similarity 0) must have
// its minimum dropped to 0, not keep the stale t=0 value and outrank
// genuinely durable nodes.
func TestObserveMinAbsentNode(t *testing.T) {
	min := make(map[graph.NodeID]float64)
	observeMin(min, 0, core.Scores{1: 0.9, 2: 0.4})
	observeMin(min, 1, core.Scores{2: 0.3}) // node 1 absent: disconnected at t=1
	if min[1] != 0 {
		t.Errorf("absent node kept stale minimum %g, want 0", min[1])
	}
	if min[2] != 0.3 {
		t.Errorf("present node minimum = %g, want 0.3", min[2])
	}
	// A node appearing only after t=0 was never in the tracked set and
	// must not be invented retroactively.
	observeMin(min, 2, core.Scores{1: 0.1, 2: 0.5, 3: 0.8})
	if _, ok := min[3]; ok {
		t.Error("node absent at t=0 acquired a minimum")
	}
	if min[1] != 0 {
		t.Errorf("minimum rose from 0 to %g", min[1])
	}
}

// TestDurableTopKDisconnectedNode drives the same scenario end to end:
// node 3 is strongly similar to the source at t=0 and fully
// disconnected afterwards, so its durability (minimum score) must be 0
// and it must rank below a modestly-but-persistently similar node.
func TestDurableTopKDisconnectedNode(t *testing.T) {
	// t=0: nodes 1 and 3 share in-neighbor 2 with node 0; t=1: node 3
	// loses its only in-edge and is disconnected.
	tg, err := temporal.New(5, true,
		[]graph.Edge{{X: 2, Y: 0}, {X: 2, Y: 1}, {X: 2, Y: 3}, {X: 4, Y: 2}},
		[]temporal.Delta{{Del: []graph.Edge{{X: 2, Y: 3}}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DurableTopK(tg, 0, 4, core.Params{Iterations: 400, Seed: 5}, core.TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	byNode := make(map[graph.NodeID]float64, len(res))
	for _, r := range res {
		byNode[r.Node] = r.MinScore
	}
	if byNode[3] != 0 {
		t.Errorf("disconnected node durability = %g, want 0", byNode[3])
	}
	if byNode[1] <= byNode[3] {
		t.Errorf("persistent node (%g) should outrank disconnected node (%g)", byNode[1], byNode[3])
	}
}

func TestDurableTopKErrors(t *testing.T) {
	tg := smallTemporal(t, 10, 20, 2, 61)
	if _, err := DurableTopK(tg, 0, 0, core.Params{Iterations: 10}, core.TemporalOptions{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := DurableTopK(tg, 99, 1, core.Params{Iterations: 10}, core.TemporalOptions{}); err == nil {
		t.Error("bad source accepted")
	}
}

// TestDurableThresholdEquivalence: a node survives the threshold query
// iff its minimum score across the interval clears θ — so the
// CrashSim-T threshold result set must exactly equal the durable-top-k
// nodes whose MinScore >= θ (same params, same seed, same machinery).
func TestDurableThresholdEquivalence(t *testing.T) {
	tg := smallTemporal(t, 30, 90, 5, 71)
	p := core.Params{Iterations: 150, Seed: 73}
	theta := 0.03

	res, err := core.CrashSimT(tg, 0, Threshold{Theta: theta}, p, core.TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	durable, err := DurableTopK(tg, 0, tg.NumNodes(), p, core.TemporalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fromDurable := map[graph.NodeID]bool{0: true} // source always survives
	for _, d := range durable {
		if d.MinScore >= theta {
			fromDurable[d.Node] = true
		}
	}
	if len(fromDurable) != len(res.Omega) {
		t.Fatalf("durable-derived set has %d nodes, threshold query %d", len(fromDurable), len(res.Omega))
	}
	for _, v := range res.Omega {
		if !fromDurable[v] {
			t.Errorf("node %d in threshold result but min score below theta", v)
		}
	}
}

// TestRunInterval: querying a sub-interval must equal running the
// engine on the sliced history directly, and differ (in general) from
// the whole-history result.
func TestRunInterval(t *testing.T) {
	tg := smallTemporal(t, 25, 70, 6, 81)
	e := &CrashSimT{Params: core.Params{Iterations: 120, Seed: 83}}
	q := Threshold{Theta: 0.02}

	got, err := RunInterval(e, tg, 0, q, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tg.Slice(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&CrashSimT{Params: core.Params{Iterations: 120, Seed: 83}}).Run(sub, 0, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("interval result %v != sliced result %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("interval result %v != sliced result %v", got, want)
		}
	}
	if _, err := RunInterval(e, tg, 0, q, 5, 2); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := RunInterval(e, tg, 0, q, 0, 99); err == nil {
		t.Error("out-of-range interval accepted")
	}
}

func TestObserverSeesEverySnapshot(t *testing.T) {
	tg := smallTemporal(t, 15, 40, 4, 63)
	var visits []int
	topt := core.TemporalOptions{Observer: func(t int, scores core.Scores) {
		visits = append(visits, t)
		if len(scores) == 0 {
			panic("empty score map in observer")
		}
	}}
	_, err := core.CrashSimT(tg, 0, keepAll{}, core.Params{Iterations: 30, Seed: 1}, topt)
	if err != nil {
		t.Fatal(err)
	}
	if len(visits) != 4 {
		t.Fatalf("observer saw %d snapshots, want 4: %v", len(visits), visits)
	}
	for i, v := range visits {
		if v != i {
			t.Errorf("visit order %v", visits)
			break
		}
	}
}
