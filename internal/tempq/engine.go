package tempq

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"crashsim/internal/core"
	"crashsim/internal/exact"
	"crashsim/internal/graph"
	"crashsim/internal/linsim"
	"crashsim/internal/probesim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
	"crashsim/internal/temporal"
	"crashsim/internal/tsf"
)

// Engine answers a temporal SimRank query over a whole temporal graph,
// returning the final candidate set sorted by node id.
type Engine interface {
	Name() string
	Run(tg *temporal.Graph, u graph.NodeID, q Query) ([]graph.NodeID, error)
}

// RunInterval answers a query over the sub-interval [from, to) of tg's
// snapshots (Definition 3's query interval [T_1, T_t]), with any
// engine: the history is sliced so snapshot `from` becomes the
// interval's first instant.
func RunInterval(e Engine, tg *temporal.Graph, u graph.NodeID, q Query, from, to int) ([]graph.NodeID, error) {
	sub, err := tg.Slice(from, to)
	if err != nil {
		return nil, fmt.Errorf("tempq: interval: %w", err)
	}
	return e.Run(sub, u, q)
}

// snapshotScorer computes a full single-source score map on one
// snapshot; the per-snapshot adapters below differ only in this step.
type snapshotScorer func(t int, cur *temporal.Cursor) (map[graph.NodeID]float64, error)

// runPerSnapshot implements the paper's straightforward baseline
// extension (Section II-D): compute the full single-source SimRank at
// every snapshot, then filter the shrinking candidate set afterwards —
// without exploiting the shrinkage or the snapshot similarity.
func runPerSnapshot(tg *temporal.Graph, u graph.NodeID, q Query, score snapshotScorer) ([]graph.NodeID, error) {
	n := tg.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("tempq: source %d out of range for n=%d", u, n)
	}
	if q == nil {
		return nil, fmt.Errorf("tempq: query must not be nil")
	}
	cur, err := tg.Cursor()
	if err != nil {
		return nil, err
	}
	omega := make(map[graph.NodeID]float64, n)
	for t := 0; ; t++ {
		scores, err := score(t, cur)
		if err != nil {
			return nil, err
		}
		if t == 0 {
			for v := 0; v < n; v++ {
				id := graph.NodeID(v)
				if s := scores[id]; q.Keep(0, math.NaN(), s) {
					omega[id] = s
				}
			}
		} else {
			for v, prev := range omega {
				s := scores[v]
				if q.Keep(t, prev, s) {
					omega[v] = s
				} else {
					delete(omega, v)
				}
			}
		}
		if !cur.Next() {
			break
		}
	}
	if err := cur.Err(); err != nil {
		return nil, err
	}
	result := make([]graph.NodeID, 0, len(omega))
	for v := range omega {
		result = append(result, v)
	}
	sort.Slice(result, func(i, j int) bool { return result[i] < result[j] })
	return result, nil
}

// CrashSimT answers temporal queries with the paper's contribution:
// partial recomputation plus delta and difference pruning. One engine
// value is safe for concurrent Run calls: the pruning statistics of
// the most recent Run are kept behind a mutex and read via Stats.
type CrashSimT struct {
	Params  core.Params
	Options core.TemporalOptions

	mu        sync.Mutex
	lastStats core.TemporalStats
}

// Name implements Engine.
func (e *CrashSimT) Name() string { return "crashsim-t" }

// Run implements Engine.
func (e *CrashSimT) Run(tg *temporal.Graph, u graph.NodeID, q Query) ([]graph.NodeID, error) {
	return e.RunCtx(context.Background(), tg, u, q)
}

// RunCtx is Run with cancellation, forwarded into the incremental
// per-snapshot pipeline (checked between snapshots, inside the pruning
// fan-outs and inside the sampling loops).
func (e *CrashSimT) RunCtx(ctx context.Context, tg *temporal.Graph, u graph.NodeID, q Query) ([]graph.NodeID, error) {
	res, err := core.CrashSimTCtx(ctx, tg, u, q, e.Params, e.Options)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.lastStats = res.Stats
	e.mu.Unlock()
	return res.Omega, nil
}

// Stats returns the pruning statistics of the most recent successful
// Run (the zero value before any). With concurrent Runs it reports
// whichever finished last; callers needing per-query stats should use
// core.CrashSimT directly, which returns them with the result.
func (e *CrashSimT) Stats() core.TemporalStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastStats
}

// ProbeSimT re-runs ProbeSim from scratch on every snapshot.
type ProbeSimT struct {
	Options probesim.Options
}

// Name implements Engine.
func (e *ProbeSimT) Name() string { return "probesim" }

// Run implements Engine.
func (e *ProbeSimT) Run(tg *temporal.Graph, u graph.NodeID, q Query) ([]graph.NodeID, error) {
	return runPerSnapshot(tg, u, q, func(_ int, cur *temporal.Cursor) (map[graph.NodeID]float64, error) {
		return probesim.SingleSource(cur.Freeze(), u, e.Options)
	})
}

// SLINGT rebuilds the SLING index on every snapshot (its index has no
// incremental maintenance) and queries it; index time is part of the
// response time, as in the paper's experiments.
type SLINGT struct {
	Options sling.Options
}

// Name implements Engine.
func (e *SLINGT) Name() string { return "sling" }

// Run implements Engine.
func (e *SLINGT) Run(tg *temporal.Graph, u graph.NodeID, q Query) ([]graph.NodeID, error) {
	return runPerSnapshot(tg, u, q, func(_ int, cur *temporal.Cursor) (map[graph.NodeID]float64, error) {
		ix, err := sling.Build(cur.Freeze(), e.Options)
		if err != nil {
			return nil, err
		}
		return ix.SingleSource(u)
	})
}

// READST builds the READS index once on the first snapshot, applies the
// edge deltas incrementally, and queries the full single-source scores
// at every snapshot.
type READST struct {
	Options reads.Options
}

// Name implements Engine.
func (e *READST) Name() string { return "reads" }

// Run implements Engine.
func (e *READST) Run(tg *temporal.Graph, u graph.NodeID, q Query) ([]graph.NodeID, error) {
	var ix *reads.Index
	return runPerSnapshot(tg, u, q, func(t int, cur *temporal.Cursor) (map[graph.NodeID]float64, error) {
		var err error
		if t == 0 {
			ix, err = reads.Build(cur.Working(), e.Options)
		} else {
			d := tg.Delta(t - 1)
			err = ix.ApplyDelta(d.Add, d.Del)
		}
		if err != nil {
			return nil, err
		}
		return ix.SingleSource(u)
	})
}

// TSFT builds the TSF one-way-graph index once, applies edge deltas
// incrementally, and queries full single-source scores per snapshot. It
// extends the comparison beyond the paper's engines (DESIGN.md).
type TSFT struct {
	Options tsf.Options
}

// Name implements Engine.
func (e *TSFT) Name() string { return "tsf" }

// Run implements Engine.
func (e *TSFT) Run(tg *temporal.Graph, u graph.NodeID, q Query) ([]graph.NodeID, error) {
	var ix *tsf.Index
	return runPerSnapshot(tg, u, q, func(t int, cur *temporal.Cursor) (map[graph.NodeID]float64, error) {
		var err error
		if t == 0 {
			ix, err = tsf.Build(cur.Working(), e.Options)
		} else {
			d := tg.Delta(t - 1)
			err = ix.ApplyDelta(d.Add, d.Del)
		}
		if err != nil {
			return nil, err
		}
		return ix.SingleSource(u)
	})
}

// LinSimT rebuilds the linearized solver on every snapshot (its
// diagonal estimate has no incremental maintenance) and queries it —
// the linearization-family analogue of SLINGT. Beyond the paper's
// engines (DESIGN.md).
type LinSimT struct {
	Options linsim.Options
}

// Name implements Engine.
func (e *LinSimT) Name() string { return "linsim" }

// Run implements Engine.
func (e *LinSimT) Run(tg *temporal.Graph, u graph.NodeID, q Query) ([]graph.NodeID, error) {
	return runPerSnapshot(tg, u, q, func(_ int, cur *temporal.Cursor) (map[graph.NodeID]float64, error) {
		s, err := linsim.New(cur.Freeze(), e.Options)
		if err != nil {
			return nil, err
		}
		col, err := s.SingleSource(u)
		if err != nil {
			return nil, err
		}
		scores := make(map[graph.NodeID]float64, len(col))
		for v, sc := range col {
			if sc != 0 {
				scores[graph.NodeID(v)] = sc
			}
		}
		return scores, nil
	})
}

// PowerT computes exact per-snapshot SimRank with the Power Method; it
// provides the ground-truth result sets for the precision experiments
// (Fig 6) and is only feasible on small graphs.
type PowerT struct {
	Options exact.PowerOptions
}

// Name implements Engine.
func (e *PowerT) Name() string { return "power-method" }

// Run implements Engine.
func (e *PowerT) Run(tg *temporal.Graph, u graph.NodeID, q Query) ([]graph.NodeID, error) {
	return runPerSnapshot(tg, u, q, func(_ int, cur *temporal.Cursor) (map[graph.NodeID]float64, error) {
		res, err := exact.PowerMethod(cur.Freeze(), e.Options)
		if err != nil {
			return nil, err
		}
		row := res.SingleSource(u)
		scores := make(map[graph.NodeID]float64, len(row))
		for v, s := range row {
			scores[graph.NodeID(v)] = s
		}
		return scores, nil
	})
}
