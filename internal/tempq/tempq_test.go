package tempq

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"crashsim/internal/core"
	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/linsim"
	"crashsim/internal/metrics"
	"crashsim/internal/probesim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
	"crashsim/internal/temporal"
	"crashsim/internal/tsf"
)

func TestTrendKeep(t *testing.T) {
	inc := Trend{Direction: Increasing, Slack: 0.01}
	if !inc.Keep(0, math.NaN(), 0.5) {
		t.Error("first snapshot must always keep")
	}
	if !inc.Keep(1, 0.5, 0.6) || !inc.Keep(1, 0.5, 0.495) {
		t.Error("increasing within slack rejected")
	}
	if inc.Keep(1, 0.5, 0.4) {
		t.Error("clear decrease kept by increasing trend")
	}
	dec := Trend{Direction: Decreasing, Slack: 0.01}
	if !dec.Keep(1, 0.5, 0.4) || dec.Keep(1, 0.5, 0.6) {
		t.Error("decreasing trend logic wrong")
	}
	if inc.Name() != "trend-increasing" || dec.Name() != "trend-decreasing" {
		t.Errorf("names: %q, %q", inc.Name(), dec.Name())
	}
}

func TestThresholdKeep(t *testing.T) {
	q := Threshold{Theta: 0.3}
	if !q.Keep(0, math.NaN(), 0.3) || q.Keep(1, 1, 0.29) {
		t.Error("threshold logic wrong")
	}
	if q.Name() != "threshold-0.300" {
		t.Errorf("name = %q", q.Name())
	}
}

func smallTemporal(t *testing.T, n, m, snaps int, seed uint64) *temporal.Graph {
	t.Helper()
	base, err := gen.ErdosRenyi(n, m, true, seed)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := gen.Churn(n, true, base, gen.ChurnOptions{
		Snapshots: snaps, AddRate: 0.02, DelRate: 0.02, Seed: seed + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func engines() []Engine {
	return []Engine{
		&CrashSimT{Params: core.Params{C: 0.6, Iterations: 600, Seed: 31}},
		&ProbeSimT{Options: probesim.Options{C: 0.6, Iterations: 600, Seed: 32}},
		&SLINGT{Options: sling.Options{C: 0.6, DSamples: 200, Seed: 33}},
		&READST{Options: reads.Options{C: 0.6, R: 600, RQ: 60, Seed: 34}},
		&TSFT{Options: tsf.Options{C: 0.6, Rg: 2000, Seed: 35}},
		&LinSimT{Options: linsim.Options{C: 0.6, DSamples: 300, Seed: 36}},
	}
}

// TestEnginesAgreeWithGroundTruth runs every engine on the same small
// temporal workload and measures result-set precision against the
// per-snapshot Power Method (the paper's Fig 6 protocol). All engines
// must achieve reasonable precision; CrashSim-T must not be the worst by
// a wide margin.
func TestEnginesAgreeWithGroundTruth(t *testing.T) {
	tg := smallTemporal(t, 30, 90, 4, 41)
	u := graph.NodeID(0)
	q := Threshold{Theta: 0.05}

	truthEngine := &PowerT{Options: exact.PowerOptions{C: 0.6}}
	truth, err := truthEngine.Run(tg, u, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range engines() {
		got, err := e.Run(tg, u, q)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		p := metrics.Precision(truth, got)
		if p < 0.6 {
			t.Errorf("%s: precision %.2f below 0.6 (truth %v, got %v)", e.Name(), p, truth, got)
		}
	}
}

func TestTrendQueryAcrossEngines(t *testing.T) {
	tg := smallTemporal(t, 25, 70, 3, 43)
	u := graph.NodeID(1)
	q := Trend{Direction: Increasing, Slack: 0.05}
	truth, err := (&PowerT{Options: exact.PowerOptions{C: 0.6}}).Run(tg, u, q)
	if err != nil {
		t.Fatal(err)
	}
	cs := &CrashSimT{Params: core.Params{C: 0.6, Iterations: 800, Seed: 44}}
	got, err := cs.Run(tg, u, q)
	if err != nil {
		t.Fatal(err)
	}
	if p := metrics.Precision(truth, got); p < 0.6 {
		t.Errorf("crashsim-t trend precision %.2f below 0.6", p)
	}
	if got := cs.Stats().Snapshots; got != 3 {
		t.Errorf("Stats().Snapshots = %d, want 3", got)
	}
}

// TestConcurrentTemporalQueries runs many temporal queries through one
// shared CrashSimT engine; under -race this is the regression test for
// the data race on the engine's last-run statistics (formerly a bare
// public field written by every Run).
func TestConcurrentTemporalQueries(t *testing.T) {
	tg := smallTemporal(t, 20, 50, 3, 91)
	e := &CrashSimT{Params: core.Params{Iterations: 60, Seed: 92}}
	q := Threshold{Theta: 0.02}

	want, err := e.Run(tg, 0, q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := e.Run(tg, 0, q)
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) != len(want) {
				t.Errorf("concurrent result %v != sequential %v", got, want)
				return
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("concurrent result %v != sequential %v", got, want)
					return
				}
			}
			_ = e.Stats() // concurrent reads must be race-free too
		}()
	}
	wg.Wait()
	if got := e.Stats().Snapshots; got != 3 {
		t.Errorf("Stats().Snapshots = %d, want 3", got)
	}
}

func TestRunPerSnapshotValidation(t *testing.T) {
	tg := smallTemporal(t, 10, 20, 2, 45)
	e := &ProbeSimT{Options: probesim.Options{Iterations: 10}}
	if _, err := e.Run(tg, 99, Threshold{Theta: 0.1}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := e.Run(tg, 0, nil); err == nil {
		t.Error("nil query accepted")
	}
}

func TestEngineNames(t *testing.T) {
	want := map[string]Engine{
		"crashsim-t":   &CrashSimT{},
		"probesim":     &ProbeSimT{},
		"sling":        &SLINGT{},
		"reads":        &READST{},
		"tsf":          &TSFT{},
		"linsim":       &LinSimT{},
		"power-method": &PowerT{},
	}
	for name, e := range want {
		if e.Name() != name {
			t.Errorf("Name() = %q, want %q", e.Name(), name)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if Increasing.String() != "increasing" || Decreasing.String() != "decreasing" {
		t.Error("direction strings wrong")
	}
}

// TestRunCtxCancellation: a pre-cancelled context must abort the
// CrashSim-T pipeline (and DurableTopKCtx, which rides on it) instead
// of running the full snapshot sequence.
func TestRunCtxCancellation(t *testing.T) {
	tg := smallTemporal(t, 40, 120, 4, 77)
	e := &CrashSimT{Params: core.Params{C: 0.6, Iterations: 200, Seed: 41}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunCtx(ctx, tg, 0, Threshold{Theta: 0.1}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunCtx with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := DurableTopKCtx(ctx, tg, 0, 3, e.Params, core.TemporalOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("DurableTopKCtx with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// The background-context paths still work after a cancelled attempt.
	if _, err := e.Run(tg, 0, Threshold{Theta: 0.1}); err != nil {
		t.Errorf("Run after cancelled RunCtx: %v", err)
	}
}
