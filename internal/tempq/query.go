// Package tempq implements the temporal SimRank query framework of
// Sections II-C/II-D: the trend and threshold query predicates, an
// Engine interface answering a query over a whole temporal graph, the
// CrashSim-T engine, and the per-snapshot adapters that extend the
// static baselines (ProbeSim, SLING, READS, Power Method) to temporal
// queries the way the paper's experiments do.
package tempq

import (
	"fmt"
	"math"

	"crashsim/internal/core"
)

// Query is the per-snapshot filtering predicate; it is exactly
// core.TemporalQuery so every engine (including CrashSim-T) shares one
// query vocabulary.
type Query = core.TemporalQuery

// Direction selects the monotonicity of a trend query.
type Direction int

const (
	// Increasing keeps nodes whose similarity never decreases.
	Increasing Direction = iota
	// Decreasing keeps nodes whose similarity never increases.
	Decreasing
)

func (d Direction) String() string {
	if d == Decreasing {
		return "decreasing"
	}
	return "increasing"
}

// Trend is the Temporal SimRank Trend Query (Definition 4): keep nodes
// whose SimRank with the source is continuously increasing (or
// decreasing) over the query interval. Slack is an additive tolerance
// absorbing Monte-Carlo noise in the per-snapshot estimates; 0 is the
// strict paper definition.
type Trend struct {
	Direction Direction
	Slack     float64
}

// Name implements Query.
func (t Trend) Name() string { return fmt.Sprintf("trend-%s", t.Direction) }

// Keep implements Query.
func (t Trend) Keep(_ int, prev, cur float64) bool {
	if math.IsNaN(prev) {
		return true // first snapshot: no trend constraint yet
	}
	if t.Direction == Decreasing {
		return cur <= prev+t.Slack
	}
	return cur >= prev-t.Slack
}

// Threshold is the Temporal SimRank Thresholds Query (Definition 5):
// keep nodes whose SimRank with the source stays at or above Theta at
// every snapshot of the interval.
type Threshold struct {
	Theta float64
}

// Name implements Query.
func (t Threshold) Name() string { return fmt.Sprintf("threshold-%.3f", t.Theta) }

// Keep implements Query.
func (t Threshold) Keep(_ int, _ /* prev */, cur float64) bool {
	return cur >= t.Theta
}
