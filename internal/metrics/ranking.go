package metrics

import (
	"math"

	"crashsim/internal/graph"
)

// PrecisionAtK returns |top-k(est) ∩ top-k(truth)| / k, the standard
// top-k quality metric of the SimRank literature.
func PrecisionAtK(truth, est []graph.NodeID, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(truth) {
		k = len(truth)
	}
	if k == 0 {
		return 1
	}
	in := make(map[graph.NodeID]struct{}, k)
	for _, v := range truth[:k] {
		in[v] = struct{}{}
	}
	limit := k
	if limit > len(est) {
		limit = len(est)
	}
	hits := 0
	for _, v := range est[:limit] {
		if _, ok := in[v]; ok {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// KendallTau returns the Kendall rank-correlation coefficient between
// two orderings of the same item set, in [-1, 1]: 1 for identical
// orders, -1 for reversed. Items missing from either ranking are
// ignored. Returns 1 when fewer than two common items exist.
func KendallTau(a, b []graph.NodeID) float64 {
	posB := make(map[graph.NodeID]int, len(b))
	for i, v := range b {
		posB[v] = i
	}
	var common []int // b-positions of a's items, in a-order
	for _, v := range a {
		if p, ok := posB[v]; ok {
			common = append(common, p)
		}
	}
	n := len(common)
	if n < 2 {
		return 1
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if common[i] < common[j] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	return float64(concordant-discordant) / float64(concordant+discordant)
}

// NDCGAtK returns the normalized discounted cumulative gain of the
// estimated ranking against graded relevance given by the true scores:
// a ranking that puts high-truth items first scores 1. Returns 1 for an
// empty or all-zero truth.
func NDCGAtK(truthScores map[graph.NodeID]float64, est []graph.NodeID, k int) float64 {
	if k <= 0 || len(truthScores) == 0 {
		return 1
	}
	dcg := 0.0
	limit := k
	if limit > len(est) {
		limit = len(est)
	}
	for i := 0; i < limit; i++ {
		dcg += truthScores[est[i]] / math.Log2(float64(i)+2)
	}
	// Ideal ordering: truth scores descending.
	ideal := make([]float64, 0, len(truthScores))
	for _, s := range truthScores {
		ideal = append(ideal, s)
	}
	// Partial selection of the k largest.
	for i := 0; i < k && i < len(ideal); i++ {
		max := i
		for j := i + 1; j < len(ideal); j++ {
			if ideal[j] > ideal[max] {
				max = j
			}
		}
		ideal[i], ideal[max] = ideal[max], ideal[i]
	}
	idcg := 0.0
	for i := 0; i < k && i < len(ideal); i++ {
		idcg += ideal[i] / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 1
	}
	return dcg / idcg
}
