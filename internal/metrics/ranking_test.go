package metrics

import (
	"math"
	"testing"

	"crashsim/internal/graph"
)

func ids(vs ...graph.NodeID) []graph.NodeID { return vs }

func TestPrecisionAtK(t *testing.T) {
	truth := ids(1, 2, 3, 4, 5)
	cases := []struct {
		est  []graph.NodeID
		k    int
		want float64
	}{
		{ids(1, 2, 3), 3, 1},
		{ids(3, 2, 1), 3, 1}, // order within top-k irrelevant
		{ids(1, 9, 8), 3, 1.0 / 3},
		{ids(9, 8, 7), 3, 0},
		{ids(1, 2), 3, 2.0 / 3},     // short estimate
		{ids(1, 2, 3, 4, 5), 10, 1}, // k clamped to len(truth)
	}
	for i, tc := range cases {
		if got := PrecisionAtK(truth, tc.est, tc.k); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("case %d: PrecisionAtK = %g, want %g", i, got, tc.want)
		}
	}
	if PrecisionAtK(truth, ids(1), 0) != 0 {
		t.Error("k=0 should be 0")
	}
}

func TestKendallTau(t *testing.T) {
	if got := KendallTau(ids(1, 2, 3, 4), ids(1, 2, 3, 4)); got != 1 {
		t.Errorf("identical order: %g", got)
	}
	if got := KendallTau(ids(1, 2, 3, 4), ids(4, 3, 2, 1)); got != -1 {
		t.Errorf("reversed order: %g", got)
	}
	// One swap among 4 items: 5 concordant, 1 discordant -> 4/6.
	if got := KendallTau(ids(1, 2, 3, 4), ids(2, 1, 3, 4)); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("one swap: %g", got)
	}
	// Items missing from b are ignored.
	if got := KendallTau(ids(1, 9, 2), ids(1, 2)); got != 1 {
		t.Errorf("missing items: %g", got)
	}
	if got := KendallTau(ids(1), ids(1)); got != 1 {
		t.Errorf("single item: %g", got)
	}
}

func TestNDCGAtK(t *testing.T) {
	scores := map[graph.NodeID]float64{1: 1.0, 2: 0.5, 3: 0.25}
	if got := NDCGAtK(scores, ids(1, 2, 3), 3); math.Abs(got-1) > 1e-12 {
		t.Errorf("ideal order NDCG = %g", got)
	}
	worst := NDCGAtK(scores, ids(3, 2, 1), 3)
	if worst >= 1 || worst <= 0 {
		t.Errorf("worst order NDCG = %g, want in (0,1)", worst)
	}
	// Irrelevant items contribute nothing.
	if got := NDCGAtK(scores, ids(9, 8, 7), 3); got != 0 {
		t.Errorf("irrelevant NDCG = %g", got)
	}
	if got := NDCGAtK(nil, ids(1), 3); got != 1 {
		t.Errorf("empty truth NDCG = %g", got)
	}
	if got := NDCGAtK(scores, ids(1), 0); got != 1 {
		t.Errorf("k=0 NDCG = %g", got)
	}
}
