// Package metrics implements the evaluation metrics of Section V:
// the per-query maximum error ME against ground truth, the result-set
// precision used for temporal queries, and small timing-summary helpers
// shared by the benchmark harness.
package metrics

import (
	"math"
	"sort"
	"time"

	"crashsim/internal/graph"
)

// MaxError returns ME = max_v |est(v) − truth[v]| over all nodes. est is
// sparse: nodes absent from it are treated as estimate 0, matching the
// Monte-Carlo methods that only report nodes with positive mass.
func MaxError(truth []float64, est map[graph.NodeID]float64) float64 {
	me := 0.0
	for v, want := range truth {
		got := est[graph.NodeID(v)]
		if d := math.Abs(got - want); d > me {
			me = d
		}
	}
	return me
}

// Precision implements the paper's result-set metric
// |v(k1) ∩ v(k2)| / max(k1, k2), where truthSet is the ground-truth
// result set and gotSet the algorithm's. Two empty sets agree perfectly
// (precision 1).
func Precision(truthSet, gotSet []graph.NodeID) float64 {
	if len(truthSet) == 0 && len(gotSet) == 0 {
		return 1
	}
	in := make(map[graph.NodeID]struct{}, len(truthSet))
	for _, v := range truthSet {
		in[v] = struct{}{}
	}
	inter := 0
	for _, v := range gotSet {
		if _, ok := in[v]; ok {
			inter++
		}
	}
	denom := len(truthSet)
	if len(gotSet) > denom {
		denom = len(gotSet)
	}
	return float64(inter) / float64(denom)
}

// TopK returns the k nodes with the highest scores, ties broken by node
// id, excluding the source itself.
func TopK(scores map[graph.NodeID]float64, source graph.NodeID, k int) []graph.NodeID {
	type pair struct {
		v graph.NodeID
		s float64
	}
	all := make([]pair, 0, len(scores))
	for v, s := range scores {
		if v == source {
			continue
		}
		all = append(all, pair{v, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].v
	}
	return out
}

// Timing summarizes a series of durations.
type Timing struct {
	Count int
	Total time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	Max   time.Duration
}

// SummarizeTimes computes a Timing from raw samples. An empty input
// yields a zero Timing.
func SummarizeTimes(samples []time.Duration) Timing {
	t := Timing{Count: len(samples)}
	if len(samples) == 0 {
		return t
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, d := range sorted {
		t.Total += d
	}
	t.Mean = t.Total / time.Duration(len(sorted))
	t.P50 = quantile(sorted, 0.50)
	t.P95 = quantile(sorted, 0.95)
	t.Max = sorted[len(sorted)-1]
	return t
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// MeanFloat returns the arithmetic mean, or 0 for an empty slice.
func MeanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
