package metrics

import (
	"math"
	"reflect"
	"testing"
	"time"

	"crashsim/internal/graph"
)

func TestMaxError(t *testing.T) {
	truth := []float64{1, 0.5, 0.2, 0}
	est := map[graph.NodeID]float64{0: 1, 1: 0.4, 2: 0.25}
	// node 3 absent from est: |0 - 0| = 0; worst is node 1 at 0.1.
	if got := MaxError(truth, est); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MaxError = %g, want 0.1", got)
	}
	if got := MaxError(nil, est); got != 0 {
		t.Errorf("empty truth gives %g, want 0", got)
	}
	// Sparse estimate missing a node with positive truth.
	if got := MaxError([]float64{0.3}, map[graph.NodeID]float64{}); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("missing node treated wrong: %g", got)
	}
}

func TestPrecision(t *testing.T) {
	cases := []struct {
		truth, got []graph.NodeID
		want       float64
	}{
		{[]graph.NodeID{1, 2, 3}, []graph.NodeID{1, 2, 3}, 1},
		{[]graph.NodeID{1, 2, 3}, []graph.NodeID{1, 2}, 2.0 / 3},
		{[]graph.NodeID{1, 2}, []graph.NodeID{1, 2, 3, 4}, 2.0 / 4},
		{[]graph.NodeID{1}, []graph.NodeID{2}, 0},
		{nil, nil, 1},
		{nil, []graph.NodeID{5}, 0},
	}
	for i, tc := range cases {
		if got := Precision(tc.truth, tc.got); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("case %d: Precision = %g, want %g", i, got, tc.want)
		}
	}
}

func TestTopK(t *testing.T) {
	scores := map[graph.NodeID]float64{0: 1, 1: 0.9, 2: 0.5, 3: 0.9, 4: 0.1}
	got := TopK(scores, 0, 3)
	// Source excluded; ties (1 and 3 at 0.9) broken by id.
	want := []graph.NodeID{1, 3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopK = %v, want %v", got, want)
	}
	if got := TopK(scores, 0, 100); len(got) != 4 {
		t.Errorf("oversized k returned %d entries, want 4", len(got))
	}
	if got := TopK(nil, 0, 5); len(got) != 0 {
		t.Errorf("empty scores returned %v", got)
	}
}

func TestSummarizeTimes(t *testing.T) {
	samples := []time.Duration{4 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	s := SummarizeTimes(samples)
	if s.Count != 4 || s.Total != 10*time.Millisecond || s.Mean != 2500*time.Microsecond {
		t.Errorf("summary wrong: %+v", s)
	}
	if s.Max != 4*time.Millisecond {
		t.Errorf("Max = %v", s.Max)
	}
	if s.P50 != 2*time.Millisecond {
		t.Errorf("P50 = %v", s.P50)
	}
	if z := SummarizeTimes(nil); z.Count != 0 || z.Mean != 0 {
		t.Errorf("empty summary: %+v", z)
	}
}

func TestMeanFloat(t *testing.T) {
	if got := MeanFloat([]float64{1, 2, 3}); got != 2 {
		t.Errorf("MeanFloat = %g", got)
	}
	if got := MeanFloat(nil); got != 0 {
		t.Errorf("MeanFloat(nil) = %g", got)
	}
}
