package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// ThroughputResult is one (dataset, batch size) row of the batched
// multi-source pipeline comparison: the same Zipf-skewed source list
// answered by core.MultiSource in one call versus a sequential loop of
// SingleSourceCtx queries with identical parameters. Both sides produce
// bit-identical scores (verified before timing), so the columns differ
// only in dispatch: the batch compiles each unique source once and
// shares one scratch arena and one fan-out, while the sequential loop
// pays per query — duplicates included, which is what an unbatched
// server does with a skewed query log. UniqueSources makes the dedup
// contribution transparent.
type ThroughputResult struct {
	Dataset       string  `json:"dataset"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	Iterations    int     `json:"iterations"`
	Batch         int     `json:"batch"`
	UniqueSources int     `json:"unique_sources"`
	Workers       int     `json:"workers"`
	SequentialQPS float64 `json:"sequential_qps"`
	BatchQPS      float64 `json:"batch_qps"`
	Speedup       float64 `json:"speedup"`
}

// ThroughputComparison is the `batch` section of BENCH_crashsim.json.
type ThroughputComparison struct {
	Config         string             `json:"config"`
	Results        []ThroughputResult `json:"results"`
	GeoMeanSpeedup float64            `json:"geomean_speedup"`
}

// WriteJSON renders the comparison as indented JSON.
func (t *ThroughputComparison) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Throughput measures batch-vs-sequential query throughput on every
// default synthetic profile at each configured batch size. Sources are
// drawn rank-Zipf (Config.ZipfS) from the giant component, repeats
// kept; timing is paired best-of-throughputTimingReps with alternating
// order, exactly like the kernel comparison, and QPS counts answered
// queries (the full batch length) per wall second.
func Throughput(cfg Config) (*ThroughputComparison, *Report, error) {
	cfg = cfg.WithDefaults()
	work := StartWork()
	cmp := &ThroughputComparison{
		Config: fmt.Sprintf("scale=%.3g batches=%v zipf-s=%g eps=%g iter-scale=%.3g c=%.2g seed=%d",
			cfg.Scale, cfg.BatchSizes, cfg.ZipfS, cfg.Eps, cfg.IterScale, cfg.C, cfg.Seed),
	}
	for _, prof := range gen.Profiles() {
		p := prof.Scaled(cfg.Scale)
		seed := rng.SeedString(fmt.Sprintf("throughput/%s/%d", p.Name, cfg.Seed))
		g, err := p.Static(seed)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: generating %s: %w", p.Name, err)
		}
		n := g.NumNodes()
		iters := cfg.crashIters(n, cfg.Eps)
		params := core.Params{C: cfg.C, Iterations: iters, Seed: seed}
		pool := graph.GiantComponent(g)
		if len(pool) == 0 {
			pool = make([]graph.NodeID, n)
			for v := range pool {
				pool[v] = graph.NodeID(v)
			}
		}
		for _, batch := range cfg.BatchSizes {
			sources, err := gen.ZipfSources(pool, batch, cfg.ZipfS,
				rng.SeedString(fmt.Sprintf("throughput/%s/batch=%d/%d", p.Name, batch, cfg.Seed)))
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s: %w", p.Name, err)
			}
			// The warm-up run doubles as the equivalence check: the batch
			// must reproduce sequential scores bit for bit before its
			// timings are trusted.
			unique, err := verifyBatch(g, sources, params)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s batch=%d: %w", p.Name, batch, err)
			}
			seqSec, batchSec, err := timeBatchPaired(g, sources, params)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s batch=%d: %w", p.Name, batch, err)
			}
			cmp.Results = append(cmp.Results, ThroughputResult{
				Dataset:       p.Name,
				Nodes:         n,
				Edges:         g.NumEdges(),
				Iterations:    iters,
				Batch:         batch,
				UniqueSources: unique,
				Workers:       max(params.Workers, 1),
				SequentialQPS: float64(batch) / seqSec,
				BatchQPS:      float64(batch) / batchSec,
				Speedup:       seqSec / batchSec,
			})
		}
	}

	logSum := 0.0
	for _, r := range cmp.Results {
		logSum += math.Log(r.Speedup)
	}
	cmp.GeoMeanSpeedup = math.Exp(logSum / float64(len(cmp.Results)))

	rep := &Report{
		Title: "Multi-source batch pipeline: one batched call vs a sequential query loop",
		Notes: []string{cmp.Config,
			"Zipf-skewed sources, repeats kept; scores verified bit-identical before timing"},
		Columns: []string{"dataset", "n", "batch", "unique", "seq-qps", "batch-qps", "speedup"},
	}
	for _, r := range cmp.Results {
		rep.AddRow(r.Dataset, fmt.Sprint(r.Nodes), fmt.Sprint(r.Batch), fmt.Sprint(r.UniqueSources),
			fmt.Sprintf("%.2f", r.SequentialQPS), fmt.Sprintf("%.2f", r.BatchQPS),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	rep.Footer = append(rep.Footer, fmt.Sprintf("geomean speedup: %.2fx", cmp.GeoMeanSpeedup))
	rep.Footer = append(rep.Footer, work.Lines()...)
	return cmp, rep, nil
}

// verifyBatch runs the batch once (doubling as the warm-up for both
// code paths' scratch pools), checks it against sequential queries bit
// for bit, and returns the number of unique sources in the batch.
func verifyBatch(g *graph.Graph, sources []graph.NodeID, p core.Params) (int, error) {
	got, err := core.MultiSource(context.Background(), g, sources, nil, p)
	if err != nil {
		return 0, err
	}
	seen := make(map[graph.NodeID]struct{}, len(sources))
	for i, u := range sources {
		seen[u] = struct{}{}
		want, err := core.SingleSourceCtx(context.Background(), g, u, nil, p)
		if err != nil {
			return 0, err
		}
		if len(got[i]) != len(want) {
			return 0, fmt.Errorf("batch mismatch at source %d: %d vs %d entries", u, len(got[i]), len(want))
		}
		for v, s := range want {
			if math.Float64bits(got[i][v]) != math.Float64bits(s) {
				return 0, fmt.Errorf("batch mismatch at source %d node %d: batch %v vs sequential %v", u, v, got[i][v], s)
			}
		}
	}
	return len(seen), nil
}

const throughputTimingReps = 3

// timeBatchPaired times one batched MultiSource call against a
// sequential SingleSourceCtx loop over the same sources, paired and
// order-alternated per repetition like timeQueriesPaired, keeping each
// side's best repetition.
func timeBatchPaired(g *graph.Graph, sources []graph.NodeID, p core.Params) (seqSec, batchSec float64, err error) {
	ctx := context.Background()
	sequential := func() (float64, error) {
		start := time.Now()
		for _, u := range sources {
			if _, err := core.SingleSourceCtx(ctx, g, u, nil, p); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}
	batched := func() (float64, error) {
		start := time.Now()
		_, err := core.MultiSource(ctx, g, sources, nil, p)
		return time.Since(start).Seconds(), err
	}
	bestS, bestB := math.Inf(1), math.Inf(1)
	for rep := 0; rep < throughputTimingReps; rep++ {
		a, b := sequential, batched
		if rep&1 == 1 {
			a, b = b, a
		}
		ta, err := a()
		if err != nil {
			return 0, 0, err
		}
		tb, err := b()
		if err != nil {
			return 0, 0, err
		}
		if rep&1 == 1 {
			ta, tb = tb, ta
		}
		bestS = math.Min(bestS, ta)
		bestB = math.Min(bestB, tb)
	}
	return bestS, bestB, nil
}
