package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Report is a rendered experiment: a header, column names, and rows of
// already-formatted cells. Runners return Reports so cmd/repro, the
// benchmarks and the tests all consume the same structure.
type Report struct {
	Title   string
	Notes   []string
	Columns []string
	Rows    [][]string
	// Footer holds preformatted lines (e.g. an ASCII chart) printed
	// after the table by Fprint; FprintCSV emits them as comments.
	Footer []string
}

// AddRow appends one formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// FprintCSV renders the report as CSV (RFC-4180 quoting via
// encoding/csv), with the title and notes as leading comment lines.
func (r *Report) FprintCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", r.Title); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# %s\n", n); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, line := range r.Footer {
		if _, err := fmt.Fprintf(w, "# %s\n", line); err != nil {
			return err
		}
	}
	return nil
}

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", r.Title); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "   %s\n", n); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(r.Columns, "\t"))
	underline := make([]string, len(r.Columns))
	for i, c := range r.Columns {
		underline[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(tw, strings.Join(underline, "\t"))
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, line := range r.Footer {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
