package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// quickConfig keeps harness tests fast: tiny graphs, few sources.
func quickConfig() Config {
	return Config{
		Scale:            0.01,
		TemporalScale:    0.008,
		Fig7Scale:        0.01,
		Sources:          2,
		Snapshots:        3,
		Fig7Snapshots:    []int{3, 5},
		Epsilons:         []float64{0.1, 0.025},
		GroundTruthIters: 30,
		SlingDSamples:    40,
		ReadsR:           50,
		IterScale:        0.02,
		Seed:             7,
	}
}

func TestTable2MatchesDefinition(t *testing.T) {
	scores, rep, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if scores["A"] != 1 {
		t.Errorf("sim(A,A) = %g, want 1", scores["A"])
	}
	for label, s := range scores {
		if s < 0 || s > 1 {
			t.Errorf("sim(A,%s) = %g outside [0,1]", label, s)
		}
	}
	if len(rep.Rows) != 8 {
		t.Errorf("Table II has %d rows, want 8", len(rep.Rows))
	}
	var buf bytes.Buffer
	if err := rep.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Error("rendered report missing title")
	}
}

func TestTable3ListsAllDatasets(t *testing.T) {
	rep, err := Table3(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("Table III has %d rows, want 5", len(rep.Rows))
	}
	var buf bytes.Buffer
	if err := rep.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"as-733", "as-caida", "wiki-vote", "hepth", "hepph"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("Table III missing dataset %s", name)
		}
	}
}

func TestExample2Report(t *testing.T) {
	rep, err := Example2()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The paper's tree probabilities must appear in the rendering.
	for _, want := range []string{"0.2500", "0.1667", "0.0625", "0.0417", "0.0156", "0.0104", "0.0521"} {
		if !strings.Contains(out, want) {
			t.Errorf("Example 2 report missing probability %s:\n%s", want, out)
		}
	}
}

func TestFig5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	results, rep, err := Fig5(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 5 datasets × (2 crashsim ε + probesim + sling + reads) rows.
	if want := 5 * 5; len(results) != want {
		t.Fatalf("Fig5 produced %d cells, want %d", len(results), want)
	}
	for _, r := range results {
		if r.MeanTime <= 0 {
			t.Errorf("%s/%s: non-positive time", r.Dataset, r.Algorithm)
		}
		if math.IsNaN(r.MeanME) || r.MeanME < 0 || r.MeanME > 1 {
			t.Errorf("%s/%s: ME %g out of range", r.Dataset, r.Algorithm, r.MeanME)
		}
	}
	if len(rep.Rows) != len(results) {
		t.Errorf("report rows %d != results %d", len(rep.Rows), len(results))
	}
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	results, rep, err := Fig6(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 5 datasets × 2 queries × 4 engines.
	if want := 5 * 2 * 4; len(results) != want {
		t.Fatalf("Fig6 produced %d cells, want %d", len(results), want)
	}
	for _, r := range results {
		if r.Precision < 0 || r.Precision > 1 {
			t.Errorf("%s/%s/%s: precision %g out of range", r.Dataset, r.Query, r.Engine, r.Precision)
		}
	}
	if len(rep.Rows) != len(results) {
		t.Error("report row count mismatch")
	}
}

func TestFig7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	results, rep, err := Fig7(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2 interval lengths × 4 engines.
	if want := 2 * 4; len(results) != want {
		t.Fatalf("Fig7 produced %d cells, want %d", len(results), want)
	}
	// Per engine, time must grow with the interval length.
	totals := map[string][]int64{}
	for _, r := range results {
		totals[r.Engine] = append(totals[r.Engine], int64(r.TotalTime))
	}
	for engine, ts := range totals {
		if len(ts) != 2 {
			t.Errorf("%s measured %d points", engine, len(ts))
		}
	}
	if len(rep.Rows) != len(results) {
		t.Error("report row count mismatch")
	}
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	est, err := AblationEstimator(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Rows) != 6 {
		t.Errorf("estimator ablation has %d rows, want 6", len(est.Rows))
	}
	pr, err := AblationPruning(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.Rows) != 4 {
		t.Errorf("pruning ablation has %d rows, want 4", len(pr.Rows))
	}
}

func TestExtraQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	rep, err := Extra(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Errorf("extra comparison has %d rows, want 8", len(rep.Rows))
	}
	var buf bytes.Buffer
	if err := rep.FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, algo := range []string{"crashsim", "probesim", "sling", "reads", "tsf", "fogaras-mc", "prsim", "linsim"} {
		if !strings.Contains(out, algo) {
			t.Errorf("CSV missing algorithm %s", algo)
		}
	}
	if !strings.HasPrefix(out, "# Extra") {
		t.Error("CSV missing title comment")
	}
}

func TestScalingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	cfg := quickConfig()
	results, rep, err := Scaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 { // 4 scales × 2 algorithms
		t.Fatalf("scaling produced %d points, want 8", len(results))
	}
	for _, r := range results {
		if r.MeanTime <= 0 || r.Nodes <= 0 {
			t.Errorf("bad point %+v", r)
		}
	}
	if len(rep.Footer) == 0 {
		t.Error("scaling report missing chart footer")
	}
}

func TestFig7ThresholdVariant(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	cfg := quickConfig()
	cfg.Fig7Query = "threshold"
	results, rep, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	var buf bytes.Buffer
	if err := rep.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "threshold") {
		t.Error("report does not mention the threshold query")
	}
	cfg.Fig7Query = "bogus"
	if _, _, err := Fig7(cfg); err == nil {
		t.Error("unknown fig7 query accepted")
	}
}

func TestMemoryQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	rep, err := Memory(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 5 {
		t.Fatalf("memory report has %d rows, want 5", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if len(row) != 7 {
			t.Errorf("row %v has %d cells", row, len(row))
		}
	}
}

func TestThroughputQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	cfg := quickConfig()
	cfg.BatchSizes = []int{4}
	cmp, rep, err := Throughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 5; len(cmp.Results) != want { // 5 datasets × 1 batch size
		t.Fatalf("throughput produced %d rows, want %d", len(cmp.Results), want)
	}
	for _, r := range cmp.Results {
		if r.Batch != 4 || r.UniqueSources < 1 || r.UniqueSources > r.Batch {
			t.Errorf("%s: bad batch accounting %+v", r.Dataset, r)
		}
		if r.SequentialQPS <= 0 || r.BatchQPS <= 0 || r.Speedup <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.Dataset, r)
		}
	}
	if cmp.GeoMeanSpeedup <= 0 || math.IsNaN(cmp.GeoMeanSpeedup) {
		t.Errorf("geomean speedup = %g", cmp.GeoMeanSpeedup)
	}
	if len(rep.Rows) != len(cmp.Results) {
		t.Error("report row count mismatch")
	}
	var buf bytes.Buffer
	if err := cmp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"batch_qps"`, `"unique_sources"`, `"geomean_speedup"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON missing %s", key)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Scale != 0.05 || c.Sources != 5 || c.C != 0.6 || c.Seed == 0 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if len(c.Fig7Snapshots) != 4 || c.Fig7Snapshots[3] != 700 {
		t.Errorf("fig7 snapshot defaults wrong: %v", c.Fig7Snapshots)
	}
	if got := c.crashIters(1000, 0.025); got < 20 {
		t.Errorf("crashIters = %d", got)
	}
	if got := c.probeIters(1000, 0.025); got < 20 {
		t.Errorf("probeIters = %d", got)
	}
	// Floor applies for absurdly loose eps.
	if got := c.crashIters(10, 0.9); got != 20 {
		t.Errorf("crashIters floor = %d, want 20", got)
	}
}

func TestStoreQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	cmp, rep, err := Store(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := 6 * 2; len(cmp.Results) != want { // 5 Table III datasets + web-1m, × {sling, reads}
		t.Fatalf("store produced %d rows, want %d", len(cmp.Results), want)
	}
	for _, r := range cmp.Results {
		if r.Algo != "sling" && r.Algo != "reads" {
			t.Errorf("%s: unexpected algo %q", r.Dataset, r.Algo)
		}
		if r.BuildMS <= 0 || r.SaveMS <= 0 || r.LoadMS <= 0 || r.Bytes <= 0 {
			t.Errorf("%s/%s: non-positive measurement %+v", r.Dataset, r.Algo, r)
		}
		if r.MappedLoadMS <= 0 || r.CopyFirstQueryMS <= 0 || r.MappedFirstQueryMS <= 0 {
			t.Errorf("%s/%s: non-positive mapped measurement %+v", r.Dataset, r.Algo, r)
		}
		if r.MappedSpeedup <= 0 || math.IsNaN(r.MappedSpeedup) {
			t.Errorf("%s/%s: mapped speedup = %g", r.Dataset, r.Algo, r.MappedSpeedup)
		}
	}
	if cmp.GeoMeanSpeedup <= 0 || math.IsNaN(cmp.GeoMeanSpeedup) {
		t.Errorf("geomean speedup = %g", cmp.GeoMeanSpeedup)
	}
	if cmp.GeoMeanMappedSpeedup <= 0 || math.IsNaN(cmp.GeoMeanMappedSpeedup) {
		t.Errorf("geomean mapped speedup = %g", cmp.GeoMeanMappedSpeedup)
	}
	if len(rep.Rows) != len(cmp.Results) {
		t.Error("report row count mismatch")
	}
	// The store section rides inside KernelComparison as "store".
	var buf bytes.Buffer
	if err := (&KernelComparison{Store: cmp}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"store"`, `"build_ms"`, `"load_ms"`, `"geomean_speedup"`,
		`"mapped_load_ms"`, `"copy_first_query_ms"`, `"mapped_first_query_ms"`, `"mapped_speedup"`,
		`"geomean_mapped_speedup"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON missing %s", key)
		}
	}
}

func TestPRSimQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run skipped in -short mode")
	}
	cmp, rep, err := PRSim(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(prsimProfiles); len(cmp.Results) != want {
		t.Fatalf("prsim produced %d rows, want %d", len(cmp.Results), want)
	}
	for _, r := range cmp.Results {
		if r.SkeletonMS <= 0 || r.CompiledMS <= 0 || r.Speedup <= 0 {
			t.Errorf("%s: non-positive measurement %+v", r.Dataset, r)
		}
		if r.Hubs <= 0 || r.Entries <= 0 {
			t.Errorf("%s: empty index (hubs=%d entries=%d)", r.Dataset, r.Hubs, r.Entries)
		}
		if r.HubHitRate < 0 || r.HubHitRate > 1 {
			t.Errorf("%s: hub-hit rate %g outside [0,1]", r.Dataset, r.HubHitRate)
		}
	}
	if cmp.GeoMeanSpeedup <= 0 || math.IsNaN(cmp.GeoMeanSpeedup) {
		t.Errorf("geomean speedup = %g", cmp.GeoMeanSpeedup)
	}
	if len(rep.Rows) != len(cmp.Results) {
		t.Error("report row count mismatch")
	}
	// The prsim section rides inside KernelComparison as "prsim".
	var buf bytes.Buffer
	if err := (&KernelComparison{PRSim: cmp}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"prsim"`, `"skeleton_ms_per_query"`, `"hub_hit_rate"`, `"geomean_speedup"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON missing %s", key)
		}
	}
}
