package bench

import (
	"fmt"

	"crashsim/internal/core"
	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/metrics"
	"crashsim/internal/probesim"
	"crashsim/internal/reads"
	"crashsim/internal/rng"
	"crashsim/internal/sling"
	"crashsim/internal/temporal"
	"crashsim/internal/tempq"
)

// Fig6Result is one measured cell of Fig 6: an engine's result-set
// precision for one query type on one temporal dataset.
type Fig6Result struct {
	Dataset   string
	Query     string
	Engine    string
	Precision float64
}

// Fig6 reproduces the paper's Fig 6: precision of the temporal trend and
// threshold queries for CrashSim-T versus the per-snapshot baseline
// adapters, against Power-Method ground truth on every snapshot.
func Fig6(cfg Config) ([]Fig6Result, *Report, error) {
	cfg = cfg.WithDefaults()
	var results []Fig6Result
	for _, prof := range gen.Profiles() {
		p := prof.Scaled(cfg.TemporalScale).WithSnapshots(cfg.Snapshots)
		seed := rng.SeedString(fmt.Sprintf("fig6/%s/%d", p.Name, cfg.Seed))
		tg, err := p.Temporal(seed)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: generating %s: %w", p.Name, err)
		}
		n := tg.NumNodes()
		g0, err := tg.Snapshot(0)
		if err != nil {
			return nil, nil, err
		}
		u := graph.NodeID(cfg.sources("fig6/"+p.Name, g0, 1)[0])

		queries := []tempq.Query{
			tempq.Trend{Direction: tempq.Increasing, Slack: cfg.Eps},
			tempq.Threshold{Theta: 2 * cfg.Eps},
		}
		for _, q := range queries {
			truth, err := (&tempq.PowerT{Options: exact.PowerOptions{
				C: cfg.C, Iterations: cfg.GroundTruthIters, MaxNodes: -1, Workers: cfg.GTWorkers,
			}}).Run(tg, u, q)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: ground truth on %s: %w", p.Name, err)
			}
			for _, e := range fig6Engines(cfg, n, seed) {
				got, err := e.Run(tg, u, q)
				if err != nil {
					return nil, nil, fmt.Errorf("bench: %s on %s: %w", e.Name(), p.Name, err)
				}
				results = append(results, Fig6Result{
					Dataset:   p.Name,
					Query:     q.Name(),
					Engine:    e.Name(),
					Precision: metrics.Precision(truth, got),
				})
			}
		}
	}

	rep := &Report{
		Title: "Fig 6: precision of temporal trend and threshold queries",
		Notes: []string{
			fmt.Sprintf("scale=%.3g snapshots=%d eps=%g c=%.2g (ground truth: per-snapshot power method)",
				cfg.TemporalScale, cfg.Snapshots, cfg.Eps, cfg.C),
		},
		Columns: []string{"dataset", "query", "engine", "precision"},
	}
	for _, r := range results {
		rep.AddRow(r.Dataset, r.Query, r.Engine, fmt.Sprintf("%.3f", r.Precision))
	}
	return results, rep, nil
}

// fig6Engines builds the four compared engines with budgets matched to
// the Fig 5 configuration.
func fig6Engines(cfg Config, n int, seed uint64) []tempq.Engine {
	return []tempq.Engine{
		&tempq.CrashSimT{Params: core.Params{
			C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta,
			Iterations: cfg.crashIters(n, cfg.Eps), Seed: seed + 10,
		}},
		&tempq.ProbeSimT{Options: probesim.Options{
			C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta,
			Iterations: cfg.probeIters(n, cfg.Eps), Seed: seed + 11,
		}},
		&tempq.SLINGT{Options: sling.Options{
			C: cfg.C, Eps: cfg.Eps, DSamples: cfg.SlingDSamples, Seed: seed + 12,
		}},
		&tempq.READST{Options: reads.Options{
			C: cfg.C, R: cfg.ReadsR, RQ: cfg.ReadsRQ, Seed: seed + 13,
		}},
	}
}

// temporalOf generates a temporal graph for the Fig 7 experiment.
func temporalOf(p gen.Profile, seed uint64) (*temporal.Graph, error) {
	return p.Temporal(seed)
}
