// Package bench implements the experiment harness: one runner per table
// and figure of the paper's evaluation section (Table II, Table III,
// Fig 5, Fig 6, Fig 7) plus the fidelity ablations DESIGN.md calls out.
// cmd/repro and the root-level testing.B benchmarks are thin wrappers
// around these runners.
//
// The paper's experiments run on the full SNAP datasets; the harness
// generates the synthetic profile stand-ins at a configurable scale so
// the whole suite finishes in minutes on a laptop. Monte-Carlo iteration
// counts are the theory-derived n_r values multiplied by IterScale: the
// theoretical constants are loose by orders of magnitude (as in the
// original papers' own experiments), and one shared multiplier keeps the
// CrashSim/ProbeSim comparison fair. EXPERIMENTS.md records the exact
// configuration used for the committed results.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/load"
	"crashsim/internal/rng"
)

// Config controls every experiment runner.
type Config struct {
	// Scale multiplies the dataset profile sizes (nodes, edges) for the
	// static experiments. Default 0.05.
	Scale float64
	// TemporalScale is the profile scale for the temporal experiments,
	// which also pay a per-snapshot Power-Method ground truth (Fig 6).
	// Default 0.02.
	TemporalScale float64
	// Sources is the number of random query sources per dataset
	// (the paper uses 100 repetitions). Default 5.
	Sources int
	// Snapshots caps the history length of the Fig 6 temporal runs.
	// Default 8.
	Snapshots int
	// Fig7Snapshots are the query-interval lengths of Fig 7.
	// Default {100, 200, 500, 700}, the paper's values.
	Fig7Snapshots []int
	// Fig7Scale is the AS-733 profile scale for Fig 7 (time-only, no
	// ground truth). Default 0.03.
	Fig7Scale float64
	// Fig7Query selects the Fig 7 query type: "trend" (the paper's
	// figure) or "threshold" (the paper ran it too and reports the
	// results as omitted-but-consistent within 5%). Default "trend".
	Fig7Query string
	// Epsilons are the CrashSim error bounds swept in Fig 5.
	// Default {0.1, 0.05, 0.025, 0.0125}, the paper's values.
	Epsilons []float64
	// Eps is the error bound for the non-swept algorithms and the
	// temporal experiments. Default 0.025.
	Eps float64
	// Delta is the failure probability. Default 0.01.
	Delta float64
	// C is the decay factor. Default 0.6 (the paper's setting).
	C float64
	// IterScale multiplies the theory-derived iteration counts of
	// CrashSim and ProbeSim. Default 0.02.
	IterScale float64
	// ReadsR is the READS walks-per-node parameter r. Default 100, the
	// paper's setting.
	ReadsR int
	// ReadsRQ is READS' query-time refinement walk count r_q.
	// Default 10, the paper's setting.
	ReadsRQ int
	// SlingDSamples is SLING's per-node d(x) sample count. Default 120.
	SlingDSamples int
	// GroundTruthIters is the Power-Method iteration count. Default 55,
	// the paper's setting.
	GroundTruthIters int
	// GTWorkers parallelizes the ground-truth Power Method (results are
	// bit-identical for any value; only the measured algorithms stay
	// single-threaded). Default min(GOMAXPROCS, 8).
	GTWorkers int
	// BatchSizes are the multi-source batch sizes of the throughput
	// experiment. Default {8, 32}.
	BatchSizes []int
	// ZipfS is the rank-Zipf exponent skewing the throughput
	// experiment's source draw — hot sources repeat within a batch the
	// way they do in real query logs, which is precisely what the
	// batched pipeline's dedup exploits. Default 1.3.
	ZipfS float64
	// ServingProfile names the profile the open-loop serving ladder
	// (Serving) runs against. Default "web-1m", the 10⁶-edge serving
	// profile from gen.ServingProfiles.
	ServingProfile string
	// ServingScale multiplies the serving profile size; CI smoke
	// passes a small value. Default 1 (full size).
	ServingScale float64
	// ServingRates is the target-QPS ladder, lowest rung first.
	// Default {4, 12, 40}, calibrated so full-scale web-1m is healthy
	// at the bottom rung and saturates at the top one on a single
	// core (warm single-source reads cost ~130 ms of clone+top-k
	// extraction there; top-k hits are microseconds).
	ServingRates []float64
	// ServingDuration is each rung's measurement window. Default 15s.
	ServingDuration time.Duration
	// ServingMaxInFlight is the server's admission budget for the
	// ladder (see server.Config.MaxInFlight). Default 8 — fixed
	// rather than the server's core-scaled default so committed
	// ladders are comparable across machines; a low value forces
	// visible shedding sooner. Negative disables admission control.
	ServingMaxInFlight int
	// ServingMix weighs the ladder's request kinds. The default is
	// top-k-heavy (Single 0.25, TopK 0.70, Batch 0.05): top-k is the
	// interactive SLO-shaped query, full single-source results are
	// bulk reads, and large batches are a throughput tool already
	// measured by the throughput experiment — at web scale one
	// admitted batch monopolizes the in-flight budget for seconds and
	// drowns the latency signal the ladder exists to measure.
	ServingMix load.Mix
	// ServingBatchSize is sources per KindBatch request. Default 4.
	ServingBatchSize int
	// ServingCacheBytes sizes the server's query-result cache for the
	// ladder. A full single-source result on the 10⁶-edge profile is
	// ~14 MB, so the default is 1 GiB — enough for the hot working
	// set, far from enough for uniform traffic. Negative disables.
	ServingCacheBytes int64
	// ServingZipfS skews the ladder's source popularity (rank-Zipf,
	// like real query logs — and what makes the cache matter).
	// Default 1.1.
	ServingZipfS float64
	// ServingEps is the serving-path error bound, separate from Eps
	// because serving trades accuracy for latency: at the repro
	// experiments' ε=0.025 one cold single-source query on web-1m
	// costs over a minute of CPU, which is not a servable operating
	// point on any SLO. Default 0.25 (the iteration floor).
	ServingEps float64
	// ServingHotSet caps the popularity-ordered source pool: sources
	// are the top-ServingHotSet giant-component hubs, the working set
	// a production cache would hold. Zero means 32; negative means the
	// whole giant component (uniform-scale stress, cold caches).
	ServingHotSet int
	// Seed anchors all randomness.
	Seed uint64
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.TemporalScale == 0 {
		c.TemporalScale = 0.02
	}
	if c.Sources == 0 {
		c.Sources = 5
	}
	if c.Snapshots == 0 {
		c.Snapshots = 8
	}
	if len(c.Fig7Snapshots) == 0 {
		c.Fig7Snapshots = []int{100, 200, 500, 700}
	}
	if c.Fig7Scale == 0 {
		c.Fig7Scale = 0.03
	}
	if c.Fig7Query == "" {
		c.Fig7Query = "trend"
	}
	if len(c.Epsilons) == 0 {
		c.Epsilons = []float64{0.1, 0.05, 0.025, 0.0125}
	}
	if c.Eps == 0 {
		c.Eps = 0.025
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.C == 0 {
		c.C = 0.6
	}
	if c.IterScale == 0 {
		c.IterScale = 0.02
	}
	if c.ReadsR == 0 {
		c.ReadsR = 100
	}
	if c.ReadsRQ == 0 {
		c.ReadsRQ = 10
	}
	if c.SlingDSamples == 0 {
		c.SlingDSamples = 120
	}
	if c.GroundTruthIters == 0 {
		c.GroundTruthIters = 55
	}
	if c.GTWorkers == 0 {
		c.GTWorkers = runtime.GOMAXPROCS(0)
		if c.GTWorkers > 8 {
			c.GTWorkers = 8
		}
	}
	if len(c.BatchSizes) == 0 {
		c.BatchSizes = []int{8, 32}
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.3
	}
	if c.ServingProfile == "" {
		c.ServingProfile = "web-1m"
	}
	if c.ServingScale == 0 {
		c.ServingScale = 1
	}
	if len(c.ServingRates) == 0 {
		c.ServingRates = []float64{4, 12, 40}
	}
	if c.ServingDuration == 0 {
		c.ServingDuration = 15 * time.Second
	}
	if c.ServingMaxInFlight == 0 {
		c.ServingMaxInFlight = 8
	}
	if c.ServingMix == (load.Mix{}) {
		c.ServingMix = load.Mix{Single: 0.25, TopK: 0.70, Batch: 0.05}
	}
	if c.ServingBatchSize == 0 {
		c.ServingBatchSize = 4
	}
	if c.ServingCacheBytes == 0 {
		c.ServingCacheBytes = 1 << 30
	}
	if c.ServingZipfS == 0 {
		c.ServingZipfS = 1.1
	}
	if c.ServingEps == 0 {
		c.ServingEps = 0.25
	}
	if c.ServingHotSet == 0 {
		c.ServingHotSet = 32
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// crashIters returns the scaled CrashSim iteration count for a graph
// with n nodes at error bound eps (at least 20).
func (c Config) crashIters(n int, eps float64) int {
	lmax := core.DeriveLmax(c.C)
	nr := float64(core.DeriveIterations(c.C, eps, c.Delta, lmax, n)) * c.IterScale
	if nr < 20 {
		return 20
	}
	return int(nr)
}

// probeIters returns the scaled ProbeSim iteration count.
func (c Config) probeIters(n int, eps float64) int {
	theory := 3 * c.C / (eps * eps) * math.Log(float64(n)/c.Delta)
	nr := theory * c.IterScale
	if nr < 20 {
		return 20
	}
	return int(nr)
}

// sources picks k deterministic distinct query sources from g's giant
// weakly connected component — isolated or dangling sources have
// trivially zero similarity to everything and would make the timing
// comparison meaningless (the paper's random sources implicitly come
// from the giant component of the real datasets).
func (c Config) sources(label string, g *graph.Graph, k int) []int32 {
	pool := graph.GiantComponent(g)
	if len(pool) == 0 {
		pool = make([]graph.NodeID, g.NumNodes())
		for v := range pool {
			pool[v] = graph.NodeID(v)
		}
	}
	r := rng.New(rng.SeedString(fmt.Sprintf("%s/sources/%d", label, c.Seed)))
	seen := make(map[int32]struct{}, k)
	out := make([]int32, 0, k)
	for len(out) < k && len(out) < len(pool) {
		v := int32(pool[r.IntN(len(pool))])
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
