package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/load"
	"crashsim/internal/obs"
	"crashsim/internal/rng"
	"crashsim/internal/server"
)

// ServingRung is one rung of the open-loop rate ladder: the server is
// offered TargetQPS for the rung's window and the rung records what
// came back. Latency percentiles are charged from each request's
// scheduled send time (see internal/load), so a saturated rung shows
// its queueing delay instead of hiding it.
type ServingRung struct {
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Offered     int     `json:"offered"`
	OK          int     `json:"ok"`
	// Shed counts 429s — the admission gate rejecting load it cannot
	// serve within the in-flight budget. A healthy saturated server
	// sheds; it does not error.
	Shed     int     `json:"shed"`
	Errors   int     `json:"errors"`
	ShedRate float64 `json:"shed_rate"`
	// Latency is scheduled-send to completion (queueing included);
	// Service is actual-send to completion. Seconds, like all obs
	// snapshots.
	Latency obs.QuantileSnapshot `json:"latency"`
	Service obs.QuantileSnapshot `json:"service"`
}

// ServingComparison is the whole ladder: BENCH_serving.json.
type ServingComparison struct {
	Config      string        `json:"config"`
	Profile     string        `json:"profile"`
	Nodes       int           `json:"nodes"`
	Edges       int           `json:"edges"`
	Iterations  int           `json:"iterations"`
	MaxInFlight int           `json:"max_inflight"`
	Rungs       []ServingRung `json:"rungs"`
}

// WriteJSON renders the ladder as indented JSON.
func (s *ServingComparison) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Serving runs the open-loop SLO ladder: an in-process server.Server
// on the serving profile, offered each Config.ServingRates rung for
// ServingDuration by the internal/load generator (Poisson arrivals,
// Zipf sources, the default read mix). Rungs run lowest rate first so
// earlier rungs double as warm-up for the connection pool and the
// query cache, the same order a real capacity probe uses.
//
// Any response that is neither 2xx nor 429 fails the run: on a
// read-only workload the server has no excuse for a 4xx/5xx, so CI
// treats one as a bug, not as load. The ladder is still returned so
// the caller can persist the evidence.
func Serving(cfg Config) (*ServingComparison, *Report, error) {
	cfg = cfg.WithDefaults()
	prof, err := gen.ProfileByName(cfg.ServingProfile)
	if err != nil {
		return nil, nil, err
	}
	prof = prof.Scaled(cfg.ServingScale)
	seed := rng.SeedString(fmt.Sprintf("serving/%s/%d", prof.Name, cfg.Seed))
	g, err := prof.Static(seed)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: generating %s: %w", prof.Name, err)
	}
	n := g.NumNodes()
	iters := cfg.crashIters(n, cfg.ServingEps)
	srv, err := server.New(server.Config{
		Graph:       g,
		Params:      core.Params{C: cfg.C, Iterations: iters, Seed: seed},
		MaxInFlight: cfg.ServingMaxInFlight,
		CacheBytes:  cfg.ServingCacheBytes,
		Metrics:     obs.NewRegistry(),
	})
	if err != nil {
		return nil, nil, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Popularity order for the Zipf draw: giant-component hubs first
	// (highest total degree), capped to the hot working set. Hot
	// sources are then the *expensive* nodes — the ones whose fan-outs
	// and result sets are largest — so cache pressure is real, not an
	// artifact of hammering cheap leaves.
	pool := hotPool(g, cfg.ServingHotSet)

	// Warm-up: touch every hot source once through both read endpoints
	// before the first rung, untimed. First-touch misses cost seconds
	// of Monte-Carlo work each; paying them inside rung 1 would make
	// the rungs incomparable (each rung would measure a different
	// cache state instead of a different rate).
	if err := warmup(ts.URL, pool); err != nil {
		return nil, nil, fmt.Errorf("bench: serving warmup: %w", err)
	}

	cmp := &ServingComparison{
		Config: fmt.Sprintf("profile=%s scale=%g rates=%v duration=%v max-inflight=%d cache=%dMiB hot-set=%d zipf-s=%g mix=single:%g/topk:%g/batch:%g/write:%g batch-size=%d serving-eps=%g iter-scale=%.3g c=%.2g seed=%d",
			cfg.ServingProfile, cfg.ServingScale, cfg.ServingRates, cfg.ServingDuration,
			cfg.ServingMaxInFlight, cfg.ServingCacheBytes>>20, len(pool), cfg.ServingZipfS,
			cfg.ServingMix.Single, cfg.ServingMix.TopK, cfg.ServingMix.Batch, cfg.ServingMix.Write,
			cfg.ServingBatchSize, cfg.ServingEps, cfg.IterScale, cfg.C, cfg.Seed),
		Profile:     prof.Name,
		Nodes:       n,
		Edges:       g.NumEdges(),
		Iterations:  iters,
		MaxInFlight: cfg.ServingMaxInFlight,
	}
	var failures []string
	for _, rate := range cfg.ServingRates {
		res, err := load.Run(context.Background(), load.Config{
			BaseURL:   ts.URL,
			QPS:       rate,
			Duration:  cfg.ServingDuration,
			Poisson:   true,
			Mix:       cfg.ServingMix,
			BatchSize: cfg.ServingBatchSize,
			Pool:      pool,
			ZipfS:     cfg.ServingZipfS,
			Seed:      rng.SeedString(fmt.Sprintf("serving/%s/rate=%g/%d", prof.Name, rate, cfg.Seed)),
		})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: serving rung %g qps: %w", rate, err)
		}
		cmp.Rungs = append(cmp.Rungs, ServingRung{
			TargetQPS:   res.TargetQPS,
			AchievedQPS: res.AchievedQPS,
			Offered:     res.Offered,
			OK:          res.OK,
			Shed:        res.Shed,
			Errors:      res.Errors,
			ShedRate:    res.ShedRate,
			Latency:     res.Latency,
			Service:     res.Service,
		})
		if res.Errors > 0 {
			failures = append(failures, fmt.Sprintf("rung %g qps: %d non-2xx/non-429 responses (%s)",
				rate, res.Errors, strings.Join(res.ErrorSamples, "; ")))
		}
	}

	rep := &Report{
		Title: "Open-loop serving ladder: SLO percentiles vs offered rate",
		Notes: []string{cmp.Config,
			"latency charged from scheduled send time (coordinated-omission-free); shed = 429s from admission control"},
		Columns: []string{"target-qps", "achieved", "ok", "shed%", "p50", "p90", "p99", "p999", "max"},
	}
	ms := func(s float64) string { return fmt.Sprintf("%.1fms", s*1e3) }
	for _, r := range cmp.Rungs {
		rep.AddRow(fmt.Sprintf("%g", r.TargetQPS), fmt.Sprintf("%.1f", r.AchievedQPS),
			fmt.Sprint(r.OK), fmt.Sprintf("%.1f", r.ShedRate*100),
			ms(r.Latency.P50), ms(r.Latency.P90), ms(r.Latency.P99), ms(r.Latency.P999), ms(r.Latency.Max))
	}
	rep.Footer = append(rep.Footer,
		fmt.Sprintf("graph: %s n=%d m=%d iterations=%d", prof.Name, n, cmp.Edges, iters))
	if len(failures) > 0 {
		return cmp, rep, fmt.Errorf("bench: serving ladder saw unexpected errors:\n  %s",
			strings.Join(failures, "\n  "))
	}
	return cmp, rep, nil
}

// hotPool returns the giant component ordered hubs-first (descending
// total degree, node id as tie-break for determinism), capped to the
// hot working-set size. cap <= 0 keeps the whole component.
func hotPool(g *graph.Graph, capSize int) []graph.NodeID {
	pool := graph.GiantComponent(g)
	if len(pool) == 0 {
		pool = make([]graph.NodeID, g.NumNodes())
		for v := range pool {
			pool[v] = graph.NodeID(v)
		}
	}
	sort.SliceStable(pool, func(i, j int) bool {
		di := g.InDegree(pool[i]) + g.OutDegree(pool[i])
		dj := g.InDegree(pool[j]) + g.OutDegree(pool[j])
		if di != dj {
			return di > dj
		}
		return pool[i] < pool[j]
	})
	if capSize > 0 && len(pool) > capSize {
		pool = pool[:capSize]
	}
	return pool
}

// warmup primes the server's query cache: one single-source and one
// top-k query per hot source, sequentially (the admission gate always
// admits an idle server). Any non-200 is fatal — a server that cannot
// answer unloaded sequential reads has no business being load-tested.
func warmup(baseURL string, pool []graph.NodeID) error {
	client := &http.Client{Timeout: 5 * time.Minute}
	for _, u := range pool {
		for _, path := range []string{
			fmt.Sprintf("/singlesource?u=%d&k=10", u),
			fmt.Sprintf("/topk?u=%d&k=10", u),
		} {
			resp, err := client.Get(baseURL + path)
			if err != nil {
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("%s: status %d", path, resp.StatusCode)
			}
		}
	}
	return nil
}
