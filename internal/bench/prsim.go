package bench

import (
	"fmt"
	"math"
	"time"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/prsim"
	"crashsim/internal/rng"
)

// PRSimResult is one dataset row of the PRSim skeleton-vs-compiled
// comparison: the same single-source queries (same seeds, same walk
// budgets) timed against the map-based skeleton the backend grew out of
// and the compiled flat-table index that replaced it. Scores are
// verified bit-identical before the rows are trusted — the variants
// differ only in memory layout and concurrency machinery, never in
// estimates.
type PRSimResult struct {
	Dataset    string `json:"dataset"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Iterations int    `json:"iterations"`
	// Hubs is the eagerly indexed hub count; Entries the total (step,
	// origin, prob) entries the compiled index holds after the run
	// (hubs plus lazily cached tails).
	Hubs    int `json:"hubs"`
	Entries int `json:"entries"`
	Sources int `json:"sources"`
	// HubHitRate is the fraction of walk visits served by an eager hub
	// table — the quantity PRSim's power-law argument is about.
	HubHitRate float64 `json:"hub_hit_rate"`
	SkeletonMS float64 `json:"skeleton_ms_per_query"`
	CompiledMS float64 `json:"compiled_ms_per_query"`
	Speedup    float64 `json:"speedup"`
}

// PRSimComparison is the machine-readable "prsim" section of
// BENCH_crashsim.json (see KernelComparison.PRSim).
type PRSimComparison struct {
	Config         string        `json:"config"`
	Results        []PRSimResult `json:"results"`
	GeoMeanSpeedup float64       `json:"geomean_speedup"`
}

// prsimProfiles are the power-law datasets the hub-index argument is
// about: heavy in-degree skew so source walks concentrate on few hubs.
// web-1m comes from the serving set, giving the comparison one
// million-edge row.
var prsimProfiles = []string{"wiki-vote", "hepph", "web-1m"}

// PRSim measures the PRSim backend before/after compiling the hub
// index: the map-based skeleton (full-sort hub selection, per-level
// map accumulation, map-based query scoring) against the production
// flat-table index, on identical queries over the power-law profiles.
// Queries run single-threaded, like every measured algorithm in the
// harness; both variants are warmed by the verification pass, so the
// timed queries measure steady state (hub tables built, tail caches
// filled) on both sides.
func PRSim(cfg Config) (*PRSimComparison, *Report, error) {
	cfg = cfg.WithDefaults()
	work := StartWork()
	cmp := &PRSimComparison{
		Config: fmt.Sprintf("scale=%.3g sources=%d eps=%g iter-scale=%.3g c=%.2g hub-fraction=0.05 seed=%d",
			cfg.Scale, cfg.Sources, cfg.Eps, cfg.IterScale, cfg.C, cfg.Seed),
	}
	for _, name := range prsimProfiles {
		prof, err := gen.ProfileByName(name)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %w", err)
		}
		p := prof.Scaled(cfg.Scale)
		seed := rng.SeedString(fmt.Sprintf("prsim/%s/%d", p.Name, cfg.Seed))
		g, err := p.Static(seed)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: generating %s: %w", p.Name, err)
		}
		n := g.NumNodes()
		iters := cfg.probeIters(n, cfg.Eps)
		opt := prsim.Options{
			C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta,
			Iterations: iters, Seed: seed,
		}
		sk, err := prsim.NewSkeleton(g, opt)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: skeleton: %w", p.Name, err)
		}
		ix, err := prsim.Build(g, opt)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", p.Name, err)
		}
		sources := cfg.sources("prsim/"+p.Name, g, cfg.Sources)

		// Verify every timed source bit-identical across the variants.
		// This pass doubles as the warm-up: it builds both sides' lazy
		// tail tables, so the timed queries below measure steady state.
		for _, u := range sources {
			if err := verifyPRSim(sk, ix, graph.NodeID(u)); err != nil {
				return nil, nil, fmt.Errorf("bench: %s: %w", p.Name, err)
			}
		}
		skelSec, compSec, err := timePRSimPaired(sk, ix, sources)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", p.Name, err)
		}
		stats := ix.Stats()
		rate := 0.0
		if stats.Visits > 0 {
			rate = float64(stats.HubHits) / float64(stats.Visits)
		}
		cmp.Results = append(cmp.Results, PRSimResult{
			Dataset:    p.Name,
			Nodes:      n,
			Edges:      g.NumEdges(),
			Iterations: iters,
			Hubs:       ix.HubCount(),
			Entries:    ix.IndexEntries(),
			Sources:    len(sources),
			HubHitRate: rate,
			SkeletonMS: skelSec / float64(len(sources)) * 1e3,
			CompiledMS: compSec / float64(len(sources)) * 1e3,
			Speedup:    skelSec / compSec,
		})
	}

	logSum := 0.0
	for _, r := range cmp.Results {
		logSum += math.Log(r.Speedup)
	}
	cmp.GeoMeanSpeedup = math.Exp(logSum / float64(len(cmp.Results)))

	rep := &Report{
		Title:   "PRSim hub index before/after: map-based skeleton vs compiled flat tables",
		Notes:   []string{cmp.Config, "identical queries and seeds; scores verified bit-identical; both variants warm"},
		Columns: []string{"dataset", "n", "m", "n_q", "hubs", "hub-hit%", "skeleton-ms/q", "compiled-ms/q", "speedup"},
	}
	for _, r := range cmp.Results {
		rep.AddRow(r.Dataset, fmt.Sprint(r.Nodes), fmt.Sprint(r.Edges), fmt.Sprint(r.Iterations),
			fmt.Sprint(r.Hubs), fmt.Sprintf("%.1f", r.HubHitRate*100),
			fmt.Sprintf("%.2f", r.SkeletonMS), fmt.Sprintf("%.2f", r.CompiledMS),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	rep.Footer = append(rep.Footer, fmt.Sprintf("geomean speedup: %.2fx", cmp.GeoMeanSpeedup))
	rep.Footer = append(rep.Footer, work.Lines()...)
	return cmp, rep, nil
}

// verifyPRSim runs one query through both variants and fails unless
// every score matches bit for bit.
func verifyPRSim(sk *prsim.Skeleton, ix *prsim.Index, u graph.NodeID) error {
	want, err := sk.SingleSource(u)
	if err != nil {
		return err
	}
	got, err := ix.SingleSource(u)
	if err != nil {
		return err
	}
	if len(want) != len(got) {
		return fmt.Errorf("prsim mismatch at source %d: %d scores skeleton vs %d compiled", u, len(want), len(got))
	}
	for v, s := range want {
		if math.Float64bits(got[v]) != math.Float64bits(s) {
			return fmt.Errorf("prsim mismatch at source %d node %d: compiled %v vs skeleton %v", u, v, got[v], s)
		}
	}
	return nil
}

// timePRSimPaired times the two variants back to back for each source,
// best of kernelTimingReps repetitions with alternating order, exactly
// like the crash-kernel comparison (see timeQueriesPaired).
func timePRSimPaired(sk *prsim.Skeleton, ix *prsim.Index, sources []int32) (skelSec, compSec float64, err error) {
	oneSkel := func(u int32) (float64, error) {
		start := time.Now()
		_, err := sk.SingleSource(graph.NodeID(u))
		return time.Since(start).Seconds(), err
	}
	oneComp := func(u int32) (float64, error) {
		start := time.Now()
		_, err := ix.SingleSource(graph.NodeID(u))
		return time.Since(start).Seconds(), err
	}
	for _, u := range sources {
		bestS, bestC := math.Inf(1), math.Inf(1)
		for rep := 0; rep < kernelTimingReps; rep++ {
			var ts, tc float64
			var err error
			if rep&1 == 0 {
				if ts, err = oneSkel(u); err != nil {
					return 0, 0, err
				}
				if tc, err = oneComp(u); err != nil {
					return 0, 0, err
				}
			} else {
				if tc, err = oneComp(u); err != nil {
					return 0, 0, err
				}
				if ts, err = oneSkel(u); err != nil {
					return 0, 0, err
				}
			}
			bestS = math.Min(bestS, ts)
			bestC = math.Min(bestC, tc)
		}
		skelSec += bestS
		compSec += bestC
	}
	return skelSec, compSec, nil
}
