package bench

import (
	"fmt"

	"crashsim/internal/core"
	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// Table2 reproduces Table II: SimRank scores with respect to node A on
// the running-example graph, computed by the Power Method within 1e-5
// error at c = 0.25 (the example's decay factor).
func Table2() (map[string]float64, *Report, error) {
	g := graph.PaperExample()
	// c^k <= 1e-5 at k = 9 for c = 0.25; use a margin.
	res, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.25, Iterations: 20})
	if err != nil {
		return nil, nil, err
	}
	A := graph.PaperNode("A")
	scores := make(map[string]float64, 8)
	rep := &Report{
		Title:   "Table II: SimRank scores with respect to node A (power method, c=0.25)",
		Notes:   []string{"example graph reconstructed from Example 2's constraints; see DESIGN.md"},
		Columns: []string{"node", "sim(A,·)"},
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		label := graph.PaperLabel(v)
		scores[label] = res.Sim(A, v)
		rep.AddRow(label, fmt.Sprintf("%.5f", scores[label]))
	}
	return scores, rep, nil
}

// Table3 reproduces Table III: the dataset inventory. It lists the
// paper's published statistics next to the generated stand-in measured
// at the configured scale.
func Table3(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	rep := &Report{
		Title:   "Table III: datasets (paper statistics vs generated stand-ins)",
		Notes:   []string{fmt.Sprintf("generator scale=%.3g", cfg.Scale)},
		Columns: []string{"dataset", "type", "paper-n", "paper-m", "paper-t", "gen-n", "gen-m", "model"},
	}
	for _, prof := range gen.Profiles() {
		p := prof.Scaled(cfg.Scale)
		seed := rng.SeedString(fmt.Sprintf("table3/%s/%d", p.Name, cfg.Seed))
		g, err := p.Static(seed)
		if err != nil {
			return nil, fmt.Errorf("bench: generating %s: %w", p.Name, err)
		}
		typ := "Directed"
		if !prof.Directed {
			typ = "Undirected"
		}
		rep.AddRow(prof.Name, typ,
			fmt.Sprintf("%d", prof.Nodes), fmt.Sprintf("%d", prof.Edges), fmt.Sprintf("%d", prof.Snapshots),
			fmt.Sprintf("%d", g.NumNodes()), fmt.Sprintf("%d", g.NumEdges()), prof.Model.String())
	}
	return rep, nil
}

// Example2 reproduces the paper's running example (Fig 3): the reverse
// reachable tree of node A at c = 0.25 under the paper's literal
// expansion (non-backtracking, √c/|I(v)| transition), printing each
// level's stop probabilities exactly as in the text.
func Example2() (*Report, error) {
	g := graph.PaperExample()
	tree := core.RevReachNonBacktracking(g, graph.PaperNode("A"), 0.25, 3, core.TransitionPaperLiteral)
	rep := &Report{
		Title:   "Example 2 / Fig 3: reverse reachable tree of A (c=0.25, paper-literal expansion)",
		Columns: []string{"step", "node", "probability"},
	}
	for step := 0; step < tree.NumLevels(); step++ {
		for _, v := range sortedNodes(tree.Level(step)) {
			rep.AddRow(fmt.Sprintf("%d", step), graph.PaperLabel(v),
				fmt.Sprintf("%.4f", tree.Prob(step, v)))
		}
	}
	walk := []string{"C", "D", "B", "A"}
	sum := 0.0
	for i := 1; i < len(walk); i++ {
		sum += tree.Prob(i, graph.PaperNode(walk[i]))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("crash probability of walk W(C)=(C,D,B,A) against the tree: %.4f (paper: 0.0521)", sum))
	return rep, nil
}

func sortedNodes(level map[graph.NodeID]float64) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(level))
	for v := range level {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
