package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/rng"
	"crashsim/internal/temporal"
	"crashsim/internal/tempq"
)

// TemporalKernelResult is one dataset row of the CrashSim-T incremental
// pipeline before/after comparison: the same temporal threshold queries
// (same seeds, same iteration budgets, same snapshot histories) timed
// against the pre-incremental pipeline — source tree rebuilt from
// scratch every snapshot, two reverse-reachable trees per candidate in
// difference pruning, serial pruning loops — and the incremental
// pipeline that is now the default (delta-patched source trees, cached
// candidate trees, frozen-form reuse, parallel pruning). Results are
// verified identical before the rows are trusted.
type TemporalKernelResult struct {
	Dataset       string  `json:"dataset"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	Snapshots     int     `json:"snapshots"`
	Iterations    int     `json:"iterations"`
	Sources       int     `json:"sources"`
	BaselineMS    float64 `json:"baseline_ms_per_query"`
	IncrementalMS float64 `json:"incremental_ms_per_query"`
	Speedup       float64 `json:"speedup"`
	// TreePatched / TreeRebuilt record how the incremental pipeline
	// obtained each non-initial snapshot's source tree in one query
	// (deterministic, so one run characterizes all of them).
	TreePatched int `json:"tree_patched"`
	TreeRebuilt int `json:"tree_rebuilt"`
	// FrozenReused counts snapshots whose compiled walk tables carried
	// over unchanged.
	FrozenReused int `json:"frozen_reused"`
}

// TemporalComparison is the temporal section of BENCH_crashsim.json:
// one row per default dataset profile plus the geometric-mean
// end-to-end speedup of the incremental pipeline.
type TemporalComparison struct {
	Config         string                 `json:"config"`
	Results        []TemporalKernelResult `json:"results"`
	GeoMeanSpeedup float64                `json:"geomean_speedup"`
}

// temporalKernelWorkers is the worker budget of the incremental
// variant. Parallel pruning is part of the pipeline being measured —
// the baseline column reproduces the previous serial behavior, so the
// speedup is the end-to-end win a caller on this machine observes.
func temporalKernelWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	return w
}

// TemporalKernel measures the end-to-end CrashSim-T run before/after
// the incremental temporal pipeline on every default dataset profile at
// cfg.TemporalScale with cfg.Snapshots-long histories (the profiles'
// small-delta churn: 0.5–1% edge churn with quiet transitions). The
// baseline disables tree patching, the candidate-tree cache and
// frozen-form reuse and runs the pruning loops serially — exactly the
// pre-incremental behavior; the incremental variant runs the defaults
// with temporalKernelWorkers workers. Both answer the identical query
// and the results are verified equal before timing.
func TemporalKernel(cfg Config) (*TemporalComparison, *Report, error) {
	cfg = cfg.WithDefaults()
	work := StartWork()
	workers := temporalKernelWorkers()
	cmp := &TemporalComparison{
		Config: fmt.Sprintf("temporal-scale=%.3g snapshots=%d churn=min(profile/4,8edges) active=profile/4 sources=%d eps=%g iter-scale=%.3g c=%.2g workers=%d seed=%d",
			cfg.TemporalScale, temporalKernelSnapshots, cfg.Sources, cfg.Eps, cfg.IterScale, cfg.C, workers, cfg.Seed),
	}
	q := tempq.Threshold{Theta: 2 * cfg.Eps}
	for _, prof := range gen.Profiles() {
		p := smallDelta(prof.Scaled(cfg.TemporalScale))
		seed := rng.SeedString(fmt.Sprintf("temporal-kernel/%s/%d", p.Name, cfg.Seed))
		tg, err := p.Temporal(seed)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: generating temporal %s: %w", p.Name, err)
		}
		first, err := firstSnapshot(tg)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", p.Name, err)
		}
		n := tg.NumNodes()
		iters := cfg.crashIters(n, cfg.Eps)
		baseline := core.Params{C: cfg.C, Iterations: iters, Seed: seed, Workers: 1}
		incremental := baseline
		incremental.Workers = workers
		baseOpt := core.TemporalOptions{
			DisableTreePatch:      true,
			DisableCandidateCache: true,
			DisableFrozenReuse:    true,
		}
		incOpt := core.TemporalOptions{}
		sources := cfg.sources("temporal-kernel/"+p.Name, first, cfg.Sources)

		// One untimed paired query verifies the variants agree and primes
		// the scratch pools, so the timed runs measure steady state.
		stats, err := verifyTemporalVariants(tg, graph.NodeID(sources[0]), q, baseline, incremental, baseOpt, incOpt)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", p.Name, err)
		}
		baseSec, incSec, err := timeTemporalPaired(tg, sources, q, baseline, incremental, baseOpt, incOpt)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", p.Name, err)
		}
		cmp.Results = append(cmp.Results, TemporalKernelResult{
			Dataset:       p.Name,
			Nodes:         n,
			Edges:         first.NumEdges(),
			Snapshots:     tg.NumSnapshots(),
			Iterations:    iters,
			Sources:       len(sources),
			BaselineMS:    baseSec / float64(len(sources)) * 1e3,
			IncrementalMS: incSec / float64(len(sources)) * 1e3,
			Speedup:       baseSec / incSec,
			TreePatched:   stats.TreePatched,
			TreeRebuilt:   stats.TreeRebuilt,
			FrozenReused:  stats.FrozenReused,
		})
	}

	logSum := 0.0
	for _, r := range cmp.Results {
		logSum += math.Log(r.Speedup)
	}
	cmp.GeoMeanSpeedup = math.Exp(logSum / float64(len(cmp.Results)))

	rep := &Report{
		Title:   "CrashSim-T before/after: per-snapshot rebuild vs incremental pipeline",
		Notes:   []string{cmp.Config, "identical queries and seeds; results verified identical"},
		Columns: []string{"dataset", "n", "m", "T", "n_r", "baseline-ms/q", "incremental-ms/q", "speedup", "patched/rebuilt", "frozen-reused"},
	}
	for _, r := range cmp.Results {
		rep.AddRow(r.Dataset, fmt.Sprint(r.Nodes), fmt.Sprint(r.Edges), fmt.Sprint(r.Snapshots),
			fmt.Sprint(r.Iterations),
			fmt.Sprintf("%.2f", r.BaselineMS), fmt.Sprintf("%.2f", r.IncrementalMS),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d/%d", r.TreePatched, r.TreeRebuilt), fmt.Sprint(r.FrozenReused))
	}
	rep.Footer = append(rep.Footer, fmt.Sprintf("geomean speedup: %.2fx", cmp.GeoMeanSpeedup))
	rep.Footer = append(rep.Footer, work.Lines()...)
	return cmp, rep, nil
}

// temporalKernelSnapshots is the history length of the small-delta
// profiles. Longer than the Fig 6 default because the incremental
// machinery's value is per transition: the baseline pays a tree rebuild,
// diff sweep and recompile on every snapshot, so the gap between the
// pipelines widens with history length while the shared snapshot-0 full
// evaluation amortizes away.
const temporalKernelSnapshots = 64

// smallDeltaMaxEdges caps the expected edge churn of one active
// transition in the small-delta profiles.
const smallDeltaMaxEdges = 8

// smallDelta reshapes a dataset profile into its small-delta variant:
// the regime the incremental pipeline targets (and the one real
// snapshot histories such as the daily AS-733 dumps live in), where
// most consecutive snapshots are identical or nearly so. Churn per
// active transition is halved and active transitions are half as
// frequent; the history is lengthened to temporalKernelSnapshots.
func smallDelta(p gen.Profile) gen.Profile {
	q := p.WithSnapshots(temporalKernelSnapshots)
	q.ChurnRate /= 4
	// Dense profiles would otherwise churn ~100 edges per active
	// transition (ChurnRate is a fraction of m); a small-delta history
	// means a bounded number of edge updates per transition, as in the
	// dynamic-SimRank literature's unit-update experiments.
	if maxRate := smallDeltaMaxEdges / float64(q.Edges); q.ChurnRate > maxRate {
		q.ChurnRate = maxRate
	}
	q.ActiveFraction /= 4
	return q
}

// firstSnapshot freezes snapshot 0 so the source picker can see the
// giant component of the history's starting state.
func firstSnapshot(tg *temporal.Graph) (*graph.Graph, error) {
	cur, err := tg.Cursor()
	if err != nil {
		return nil, err
	}
	return cur.Freeze(), nil
}

// verifyTemporalVariants runs one query through both pipeline variants
// (doubling as the pool warm-up), fails unless the surviving candidate
// sets and their final scores match bit for bit, and returns the
// incremental run's stats for the report.
func verifyTemporalVariants(tg *temporal.Graph, u graph.NodeID, q core.TemporalQuery,
	basePar, incPar core.Params, baseOpt, incOpt core.TemporalOptions) (core.TemporalStats, error) {
	want, err := core.CrashSimT(tg, u, q, basePar, baseOpt)
	if err != nil {
		return core.TemporalStats{}, err
	}
	got, err := core.CrashSimT(tg, u, q, incPar, incOpt)
	if err != nil {
		return core.TemporalStats{}, err
	}
	if len(got.Omega) != len(want.Omega) {
		return core.TemporalStats{}, fmt.Errorf("temporal mismatch at source %d: %d survivors incremental vs %d baseline",
			u, len(got.Omega), len(want.Omega))
	}
	for i, v := range want.Omega {
		if got.Omega[i] != v {
			return core.TemporalStats{}, fmt.Errorf("temporal mismatch at source %d: survivor[%d] = %d incremental vs %d baseline",
				u, i, got.Omega[i], v)
		}
		if math.Float64bits(got.Final[v]) != math.Float64bits(want.Final[v]) {
			return core.TemporalStats{}, fmt.Errorf("temporal mismatch at source %d node %d: incremental %v vs baseline %v",
				u, v, got.Final[v], want.Final[v])
		}
	}
	return got.Stats, nil
}

// timeTemporalPaired times the two pipeline variants back to back for
// each source, best of kernelTimingReps repetitions per query with the
// variant order alternating — the same drift-spreading protocol as
// timeQueriesPaired.
func timeTemporalPaired(tg *temporal.Graph, sources []int32, q core.TemporalQuery,
	basePar, incPar core.Params, baseOpt, incOpt core.TemporalOptions) (baseSec, incSec float64, err error) {
	one := func(u int32, p core.Params, topt core.TemporalOptions) (float64, error) {
		start := time.Now()
		_, err := core.CrashSimT(tg, graph.NodeID(u), q, p, topt)
		return time.Since(start).Seconds(), err
	}
	for _, u := range sources {
		bestB, bestI := math.Inf(1), math.Inf(1)
		for rep := 0; rep < kernelTimingReps; rep++ {
			baseFirst := rep&1 == 0
			var tb, ti float64
			if baseFirst {
				if tb, err = one(u, basePar, baseOpt); err != nil {
					return 0, 0, err
				}
				if ti, err = one(u, incPar, incOpt); err != nil {
					return 0, 0, err
				}
			} else {
				if ti, err = one(u, incPar, incOpt); err != nil {
					return 0, 0, err
				}
				if tb, err = one(u, basePar, baseOpt); err != nil {
					return 0, 0, err
				}
			}
			bestB = math.Min(bestB, tb)
			bestI = math.Min(bestI, ti)
		}
		baseSec += bestB
		incSec += bestI
	}
	return baseSec, incSec, nil
}
