package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"crashsim/internal/engine"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/rng"
	"crashsim/internal/textplot"
)

// ScalingResult is one measured point: an algorithm's mean single-source
// time at one graph size.
type ScalingResult struct {
	Algorithm string
	Nodes     int
	Edges     int
	MeanTime  time.Duration
}

// Scaling measures how the two index-free methods' single-source
// response time grows with graph size at fixed average degree, the
// empirical check of Section III-C's complexity claims: CrashSim is
// O(m + n_r·|Ω|) per query (with n_r growing only logarithmically in
// n), so its curve should stay near-linear in n.
func Scaling(cfg Config) ([]ScalingResult, *Report, error) {
	cfg = cfg.WithDefaults()
	ctx := context.Background()
	prof, err := gen.ProfileByName("wiki-vote")
	if err != nil {
		return nil, nil, err
	}
	scales := []float64{0.01, 0.02, 0.04, 0.08}
	var results []ScalingResult
	var xs []int
	for _, scale := range scales {
		p := prof.Scaled(scale)
		seed := rng.SeedString(fmt.Sprintf("scaling/%g/%d", scale, cfg.Seed))
		g, err := p.Static(seed)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: generating scale %g: %w", scale, err)
		}
		n := g.NumNodes()
		xs = append(xs, n)
		sources := cfg.sources(fmt.Sprintf("scaling/%g", scale), g, cfg.Sources)

		for _, family := range []string{"crashsim", "probesim"} {
			est, err := engine.New(ctx, family, g, cfg.familyConfig(family, n, cfg.Eps, seed))
			if err != nil {
				return nil, nil, fmt.Errorf("bench: building %s at scale %g: %w", family, scale, err)
			}
			mean, err := timeOnly(sources, func(u graph.NodeID) error {
				_, err := est.SingleSource(ctx, u, nil)
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			results = append(results, ScalingResult{family, n, g.NumEdges(), mean})
		}
	}

	rep := &Report{
		Title: "Scaling: single-source time vs graph size (wiki-vote model, fixed avg degree)",
		Notes: []string{
			fmt.Sprintf("sources=%d eps=%g iter-scale=%g", cfg.Sources, cfg.Eps, cfg.IterScale),
		},
		Columns: []string{"nodes", "edges", "algorithm", "mean-time"},
	}
	for _, r := range results {
		rep.AddRow(fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.Edges),
			r.Algorithm, r.MeanTime.Round(10*time.Microsecond).String())
	}
	series := []textplot.Series{{Name: "crashsim"}, {Name: "probesim"}}
	for _, r := range results {
		idx := 0
		if r.Algorithm == "probesim" {
			idx = 1
		}
		series[idx].Ys = append(series[idx].Ys, r.MeanTime.Seconds()*1000)
	}
	chart := textplot.Chart(xs, series, 56, 12)
	rep.Footer = append([]string{"", "mean time (ms) vs nodes:"},
		strings.Split(strings.TrimRight(chart, "\n"), "\n")...)
	return results, rep, nil
}

// timeOnly times fn over all sources without accuracy bookkeeping.
func timeOnly(sources []int32, fn func(u graph.NodeID) error) (time.Duration, error) {
	var total time.Duration
	for _, u := range sources {
		start := time.Now()
		if err := fn(graph.NodeID(u)); err != nil {
			return 0, err
		}
		total += time.Since(start)
	}
	return total / time.Duration(len(sources)), nil
}
