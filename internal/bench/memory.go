package bench

import (
	"fmt"
	"time"

	"crashsim/internal/gen"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/rng"
	"crashsim/internal/sling"
	"crashsim/internal/tsf"
)

// Memory compares the index footprints of the indexed methods across
// the datasets — the dimension behind the paper's observation that
// SLING's index must be rebuilt on update and READS' update footprint
// grows with the graph (Sections I and IV-A). Entries are the natural
// unit of each index: stored (step, node, prob) triples for SLING,
// stored walk positions for READS, parent slots for TSF, and built
// table entries for PRSim (hubs only — tail tables fill lazily at query
// time). CrashSim and ProbeSim are index-free by construction: zero.
func Memory(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	rep := &Report{
		Title: "Index footprint: stored entries per method (index-free methods store nothing)",
		Notes: []string{
			fmt.Sprintf("scale=%.3g r=%d d-samples=%d (entries; build time in parentheses)",
				cfg.TemporalScale, cfg.ReadsR, cfg.SlingDSamples),
		},
		Columns: []string{"dataset", "n", "m", "sling", "reads", "tsf", "prsim(5% hubs)"},
	}
	for _, prof := range gen.Profiles() {
		p := prof.Scaled(cfg.TemporalScale)
		seed := rng.SeedString(fmt.Sprintf("memory/%s/%d", p.Name, cfg.Seed))
		g, err := p.Static(seed)
		if err != nil {
			return nil, fmt.Errorf("bench: generating %s: %w", p.Name, err)
		}
		dg := diGraphOf(g)

		start := time.Now()
		sl, err := sling.Build(g, sling.Options{C: cfg.C, Eps: cfg.Eps, DSamples: cfg.SlingDSamples, Seed: seed})
		if err != nil {
			return nil, err
		}
		slCell := fmt.Sprintf("%d (%v)", sl.DistSize(), time.Since(start).Round(time.Millisecond))

		start = time.Now()
		rd, err := reads.Build(dg, reads.Options{C: cfg.C, R: cfg.ReadsR, Seed: seed + 1})
		if err != nil {
			return nil, err
		}
		rdCell := fmt.Sprintf("%d (%v)", rd.Positions(), time.Since(start).Round(time.Millisecond))

		start = time.Now()
		tf, err := tsf.Build(dg, tsf.Options{C: cfg.C, Rg: cfg.ReadsR, Seed: seed + 2})
		if err != nil {
			return nil, err
		}
		tfCell := fmt.Sprintf("%d (%v)", tf.Slots(), time.Since(start).Round(time.Millisecond))

		start = time.Now()
		pr, err := prsim.Build(g, prsim.Options{
			C: cfg.C, Eps: cfg.Eps, HubFraction: 0.05,
			Iterations: 100, DSamples: cfg.SlingDSamples, Seed: seed + 3,
		})
		if err != nil {
			return nil, err
		}
		prCell := fmt.Sprintf("%d (%v)", pr.IndexEntries(), time.Since(start).Round(time.Millisecond))

		rep.AddRow(p.Name, fmt.Sprintf("%d", g.NumNodes()), fmt.Sprintf("%d", g.NumEdges()),
			slCell, rdCell, tfCell, prCell)
	}
	return rep, nil
}
