package bench

import (
	"fmt"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/metrics"
	"crashsim/internal/rng"
	"crashsim/internal/tempq"
)

// AblationEstimator compares CrashSim's design choices on one static
// dataset: the revReach transition rule (exact vs the paper's literal
// formula), the meeting rule (first-meet correction vs Algorithm 1's
// any-meeting sum vs the first-crash heuristic) and the non-backtracking
// tree variant — reporting each configuration's mean ME.
func AblationEstimator(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	prof, err := gen.ProfileByName("wiki-vote")
	if err != nil {
		return nil, err
	}
	p := prof.Scaled(cfg.TemporalScale)
	seed := rng.SeedString(fmt.Sprintf("ablation/%d", cfg.Seed))
	g, err := p.Static(seed)
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	gt, err := exact.PowerMethod(g, exact.PowerOptions{
		C: cfg.C, Iterations: cfg.GroundTruthIters, MaxNodes: -1, Workers: cfg.GTWorkers,
	})
	if err != nil {
		return nil, err
	}
	sources := cfg.sources("ablation", g, cfg.Sources)

	variants := []struct {
		name string
		mut  func(*core.Params)
	}{
		{"default (exact, first-meet)", func(*core.Params) {}},
		{"meeting=any (Algorithm 1 literal)", func(p *core.Params) { p.Meeting = core.MeetingAny }},
		{"meeting=first-crash", func(p *core.Params) { p.Meeting = core.MeetingFirstCrash }},
		{"transition=paper-literal", func(p *core.Params) { p.Transition = core.TransitionPaperLiteral }},
		{"non-backtracking tree", func(p *core.Params) { p.NonBacktracking = true }},
		{"prefilter=off", func(p *core.Params) { p.DisablePrefilter = true }},
	}

	rep := &Report{
		Title:   "Ablation: CrashSim estimator design choices (wiki-vote stand-in)",
		Notes:   []string{fmt.Sprintf("n=%d sources=%d eps=%g", n, len(sources), cfg.Eps)},
		Columns: []string{"variant", "mean-ME", "mean-time"},
	}
	for _, variant := range variants {
		params := core.Params{
			C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta,
			Iterations: cfg.crashIters(n, cfg.Eps), Seed: seed,
		}
		variant.mut(&params)
		var mes []float64
		var total time.Duration
		for _, u := range sources {
			start := time.Now()
			scores, err := core.SingleSource(g, graph.NodeID(u), nil, params)
			total += time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench: ablation %q: %w", variant.name, err)
			}
			mes = append(mes, metrics.MaxError(gt.SingleSource(graph.NodeID(u)), scores))
		}
		rep.AddRow(variant.name, fmt.Sprintf("%.4f", metrics.MeanFloat(mes)),
			(total / time.Duration(len(sources))).Round(10*time.Microsecond).String())
	}
	return rep, nil
}

// AblationPruning measures what each CrashSim-T pruning rule contributes:
// total time and number of candidate evaluations for the trend query on
// an AS-733-shaped history, with both rules, each alone, and neither.
func AblationPruning(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	prof, err := gen.ProfileByName("as-733")
	if err != nil {
		return nil, err
	}
	p := prof.Scaled(cfg.Fig7Scale).WithSnapshots(cfg.Snapshots * 4)
	seed := rng.SeedString(fmt.Sprintf("ablation-pruning/%d", cfg.Seed))
	tg, err := p.Temporal(seed)
	if err != nil {
		return nil, err
	}
	n := tg.NumNodes()
	g0, err := tg.Snapshot(0)
	if err != nil {
		return nil, err
	}
	u := graph.NodeID(cfg.sources("ablation-pruning", g0, 1)[0])
	q := tempq.Trend{Direction: tempq.Increasing, Slack: cfg.Eps}
	params := core.Params{
		C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta,
		Iterations: cfg.crashIters(n, cfg.Eps), Seed: seed,
	}

	variants := []struct {
		name string
		opts core.TemporalOptions
	}{
		{"both prunings", core.TemporalOptions{}},
		{"delta only", core.TemporalOptions{DisableDiffPruning: true}},
		{"diff only", core.TemporalOptions{DisableDeltaPruning: true}},
		{"no pruning", core.TemporalOptions{DisableDeltaPruning: true, DisableDiffPruning: true}},
	}
	rep := &Report{
		Title:   "Ablation: CrashSim-T pruning rules (as-733 stand-in, trend query)",
		Notes:   []string{fmt.Sprintf("n=%d snapshots=%d", n, tg.NumSnapshots())},
		Columns: []string{"variant", "total-time", "evaluated", "reused-delta", "reused-diff", "|omega|"},
	}
	for _, variant := range variants {
		start := time.Now()
		res, err := core.CrashSimT(tg, u, q, params, variant.opts)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: pruning ablation %q: %w", variant.name, err)
		}
		rep.AddRow(variant.name, elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Stats.Evaluated),
			fmt.Sprintf("%d", res.Stats.ReusedDelta),
			fmt.Sprintf("%d", res.Stats.ReusedDiff),
			fmt.Sprintf("%d", len(res.Omega)))
	}
	return rep, nil
}
