package bench

import (
	"strings"
	"testing"
)

func comparison(static, temporal, batch, store float64) *KernelComparison {
	c := &KernelComparison{}
	if static > 0 {
		c.Results = []KernelResult{{Dataset: "x"}}
		c.GeoMeanSpeedup = static
	}
	if temporal > 0 {
		c.Temporal = &TemporalComparison{GeoMeanSpeedup: temporal}
	}
	if batch > 0 {
		c.Batch = &ThroughputComparison{GeoMeanSpeedup: batch}
	}
	if store > 0 {
		c.Store = &StoreComparison{GeoMeanSpeedup: store}
	}
	return c
}

func TestCheckPassesWithinTolerance(t *testing.T) {
	base := comparison(2.0, 2.2, 1.6, 2.6)
	fresh := comparison(1.8, 2.4, 1.5, 2.3)
	rows, rep, err := Check(base, fresh, 0.15)
	if err != nil {
		t.Fatalf("within-tolerance run failed: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("section %s flagged at ratio %.3f under tolerance 0.15", r.Section, r.Ratio)
		}
	}
	if rep == nil || len(rep.Rows) != 4 {
		t.Fatalf("report missing rows: %+v", rep)
	}
}

func TestCheckFailsOnRegression(t *testing.T) {
	base := comparison(2.0, 2.2, 1.6, 2.6)
	fresh := comparison(2.0, 1.5, 1.6, 2.6) // temporal dropped 32%
	rows, _, err := Check(base, fresh, 0.15)
	if err == nil {
		t.Fatal("32% temporal regression passed the gate")
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Fatalf("error does not name the regression: %v", err)
	}
	var bad int
	for _, r := range rows {
		if !r.OK {
			bad++
			if r.Section != "temporal" {
				t.Errorf("wrong section flagged: %s", r.Section)
			}
		}
	}
	if bad != 1 {
		t.Fatalf("%d sections flagged, want 1", bad)
	}
}

// TestCheckSkipsMissingSections mirrors the CI smoke flow: the fresh
// run only regenerates the kernel sections, the committed baseline has
// all four; only the overlap is compared.
func TestCheckSkipsMissingSections(t *testing.T) {
	base := comparison(2.0, 2.2, 1.6, 2.6)
	fresh := comparison(1.9, 2.1, 0, 0) // no batch/store in the smoke run
	rows, _, err := Check(base, fresh, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (static, temporal): %+v", len(rows), rows)
	}
	// A store regression in the baseline side alone must not trip it.
	for _, r := range rows {
		if r.Section == "batch" || r.Section == "store" {
			t.Errorf("compared section %q absent from fresh run", r.Section)
		}
	}
}

func TestCheckRejectsDegenerateInputs(t *testing.T) {
	base := comparison(2.0, 0, 0, 0)
	fresh := comparison(2.0, 0, 0, 0)
	if _, _, err := Check(base, fresh, 0); err == nil {
		t.Error("tolerance 0 accepted")
	}
	if _, _, err := Check(base, fresh, 1); err == nil {
		t.Error("tolerance 1 accepted")
	}
	// No overlapping sections: empty gates must fail loudly.
	if _, _, err := Check(comparison(2.0, 0, 0, 0), comparison(0, 2.2, 0, 0), 0.15); err == nil {
		t.Error("disjoint comparisons produced a green gate")
	}
	if _, _, err := Check(&KernelComparison{}, &KernelComparison{}, 0.15); err == nil {
		t.Error("two empty comparisons produced a green gate")
	}
}
