package bench

import (
	"fmt"
	"math"
)

// CheckRow compares one geomean-speedup section of a fresh kernel run
// against the committed baseline. Ratio is fresh/baseline: below
// 1-tolerance the section regressed (CrashSim's advantage shrank) and
// the gate fails; above 1 it merely improved, which is noted, never
// failed — a slowdown in a *comparison* algorithm inflates the ratio
// and must not mask a real regression elsewhere.
type CheckRow struct {
	Section  string
	Baseline float64
	Fresh    float64
	Ratio    float64
	OK       bool
}

// Check gates CrashSim's relative performance: every geomean-speedup
// section present in BOTH comparisons (static kernel, temporal, batch,
// store, prsim) must hold within tolerance of the baseline. Sections missing
// from either side are skipped — the CI smoke run regenerates only the
// sections it can afford, and the gate must not fail on what was not
// measured. Comparing speedup *ratios* rather than absolute times is
// what makes the gate portable across machines and scales: both
// columns of each ratio ran on the same hardware in the same process.
//
// A baseline with no comparable sections is an error, not a pass — an
// empty gate green-lighting everything is the worst failure mode a
// perf gate can have.
func Check(baseline, fresh *KernelComparison, tolerance float64) ([]CheckRow, *Report, error) {
	if !(tolerance > 0 && tolerance < 1) {
		return nil, nil, fmt.Errorf("bench: check tolerance must be in (0,1), got %g", tolerance)
	}
	type section struct {
		name         string
		base, now    float64
		haveB, haveN bool
	}
	sections := []section{
		{"static", baseline.GeoMeanSpeedup, fresh.GeoMeanSpeedup,
			len(baseline.Results) > 0, len(fresh.Results) > 0},
		{"temporal", geo(baseline.Temporal != nil, func() float64 { return baseline.Temporal.GeoMeanSpeedup }),
			geo(fresh.Temporal != nil, func() float64 { return fresh.Temporal.GeoMeanSpeedup }),
			baseline.Temporal != nil, fresh.Temporal != nil},
		{"batch", geo(baseline.Batch != nil, func() float64 { return baseline.Batch.GeoMeanSpeedup }),
			geo(fresh.Batch != nil, func() float64 { return fresh.Batch.GeoMeanSpeedup }),
			baseline.Batch != nil, fresh.Batch != nil},
		{"store", geo(baseline.Store != nil, func() float64 { return baseline.Store.GeoMeanSpeedup }),
			geo(fresh.Store != nil, func() float64 { return fresh.Store.GeoMeanSpeedup }),
			baseline.Store != nil, fresh.Store != nil},
		// store-mapped gates the mmap rung (copy vs mapped time to first
		// query). Presence requires a positive value: baselines recorded
		// before the rung existed carry 0 and are skipped, not failed.
		{"store-mapped", geo(baseline.Store != nil, func() float64 { return baseline.Store.GeoMeanMappedSpeedup }),
			geo(fresh.Store != nil, func() float64 { return fresh.Store.GeoMeanMappedSpeedup }),
			baseline.Store != nil && baseline.Store.GeoMeanMappedSpeedup > 0,
			fresh.Store != nil && fresh.Store.GeoMeanMappedSpeedup > 0},
		{"prsim", geo(baseline.PRSim != nil, func() float64 { return baseline.PRSim.GeoMeanSpeedup }),
			geo(fresh.PRSim != nil, func() float64 { return fresh.PRSim.GeoMeanSpeedup }),
			baseline.PRSim != nil, fresh.PRSim != nil},
	}
	var rows []CheckRow
	for _, s := range sections {
		if !s.haveB || !s.haveN {
			continue
		}
		if !(s.base > 0) || math.IsNaN(s.now) || s.now <= 0 {
			return nil, nil, fmt.Errorf("bench: check section %q has non-positive geomean (baseline %g, fresh %g)",
				s.name, s.base, s.now)
		}
		ratio := s.now / s.base
		rows = append(rows, CheckRow{
			Section:  s.name,
			Baseline: s.base,
			Fresh:    s.now,
			Ratio:    ratio,
			OK:       ratio >= 1-tolerance,
		})
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("bench: check found no section present in both baseline and fresh run")
	}

	rep := &Report{
		Title:   "Perf-regression gate: fresh geomean speedups vs committed baseline",
		Notes:   []string{fmt.Sprintf("tolerance: a section fails below %.0f%% of its baseline ratio", (1-tolerance)*100)},
		Columns: []string{"section", "baseline", "fresh", "ratio", "verdict"},
	}
	failed := 0
	for _, r := range rows {
		verdict := "ok"
		if !r.OK {
			verdict = "REGRESSED"
			failed++
		} else if r.Ratio > 1+tolerance {
			verdict = "improved"
		}
		rep.AddRow(r.Section, fmt.Sprintf("%.3fx", r.Baseline), fmt.Sprintf("%.3fx", r.Fresh),
			fmt.Sprintf("%.3f", r.Ratio), verdict)
	}
	if failed > 0 {
		rep.Footer = append(rep.Footer, fmt.Sprintf("%d of %d sections regressed", failed, len(rows)))
		return rows, rep, fmt.Errorf("bench: perf regression: %d of %d sections below %.0f%% of baseline",
			failed, len(rows), (1-tolerance)*100)
	}
	rep.Footer = append(rep.Footer, fmt.Sprintf("all %d sections within tolerance", len(rows)))
	return rows, rep, nil
}

// geo evaluates f only when present, avoiding nil dereference in the
// composite-literal table above.
func geo(present bool, f func() float64) float64 {
	if !present {
		return 0
	}
	return f()
}
