package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// KernelResult is one dataset row of the crash-kernel before/after
// comparison: the same single-source CrashSim queries (same seeds, same
// iteration budgets) timed against the legacy map kernel
// (Params.DisableFrozenKernel) and the compiled frozen-tree kernel that
// is now the default. Scores are verified bit-identical before the rows
// are trusted, so the two columns differ only in implementation.
type KernelResult struct {
	Dataset    string  `json:"dataset"`
	Nodes      int     `json:"nodes"`
	Edges      int     `json:"edges"`
	Iterations int     `json:"iterations"`
	Sources    int     `json:"sources"`
	LegacyMS   float64 `json:"legacy_ms_per_query"`
	FrozenMS   float64 `json:"frozen_ms_per_query"`
	Speedup    float64 `json:"speedup"`
}

// KernelComparison is the machine-readable payload behind
// BENCH_crashsim.json: one row per default synthetic profile plus the
// geometric-mean speedup, so the repo's perf trajectory across PRs can
// be diffed by tooling instead of eyeballed from prose.
type KernelComparison struct {
	Config         string         `json:"config"`
	Results        []KernelResult `json:"results"`
	GeoMeanSpeedup float64        `json:"geomean_speedup"`
	// Temporal is the CrashSim-T incremental-pipeline section
	// (TemporalKernel); nil when only the static kernel ran.
	Temporal *TemporalComparison `json:"temporal,omitempty"`
	// Batch is the multi-source throughput section (Throughput); nil
	// when the throughput experiment did not run.
	Batch *ThroughputComparison `json:"batch,omitempty"`
	// Store is the index-snapshot cold-build vs warm-load section
	// (Store); nil when the store experiment did not run.
	Store *StoreComparison `json:"store,omitempty"`
	// PRSim is the hub-index skeleton-vs-compiled section (PRSim); nil
	// when that experiment did not run.
	PRSim *PRSimComparison `json:"prsim,omitempty"`
}

// WriteJSON renders the comparison as indented JSON.
func (k *KernelComparison) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(k)
}

// Kernel measures the single-source crash kernel before/after compiling
// the reverse-reachable tree: every default synthetic profile, the
// theory-derived iteration budget (scaled by IterScale, as everywhere in
// the harness), legacy and frozen kernels on identical queries. Queries
// run single-threaded, like every measured algorithm in the harness.
func Kernel(cfg Config) (*KernelComparison, *Report, error) {
	cfg = cfg.WithDefaults()
	work := StartWork()
	cmp := &KernelComparison{
		Config: fmt.Sprintf("scale=%.3g sources=%d eps=%g iter-scale=%.3g c=%.2g seed=%d",
			cfg.Scale, cfg.Sources, cfg.Eps, cfg.IterScale, cfg.C, cfg.Seed),
	}
	for _, prof := range gen.Profiles() {
		p := prof.Scaled(cfg.Scale)
		seed := rng.SeedString(fmt.Sprintf("kernel/%s/%d", p.Name, cfg.Seed))
		g, err := p.Static(seed)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: generating %s: %w", p.Name, err)
		}
		n := g.NumNodes()
		iters := cfg.crashIters(n, cfg.Eps)
		frozen := core.Params{C: cfg.C, Iterations: iters, Seed: seed}
		legacy := frozen
		legacy.DisableFrozenKernel = true
		sources := cfg.sources("kernel/"+p.Name, g, cfg.Sources)

		// One untimed query per variant primes the scratch pools, so the
		// timed queries measure steady state on both sides.
		if err := verifyKernels(g, graph.NodeID(sources[0]), legacy, frozen); err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", p.Name, err)
		}
		legacySec, frozenSec, err := timeQueriesPaired(g, sources, legacy, frozen)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: %s: %w", p.Name, err)
		}
		cmp.Results = append(cmp.Results, KernelResult{
			Dataset:    p.Name,
			Nodes:      n,
			Edges:      g.NumEdges(),
			Iterations: iters,
			Sources:    len(sources),
			LegacyMS:   legacySec / float64(len(sources)) * 1e3,
			FrozenMS:   frozenSec / float64(len(sources)) * 1e3,
			Speedup:    legacySec / frozenSec,
		})
	}

	logSum := 0.0
	for _, r := range cmp.Results {
		logSum += math.Log(r.Speedup)
	}
	cmp.GeoMeanSpeedup = math.Exp(logSum / float64(len(cmp.Results)))

	rep := &Report{
		Title:   "Crash kernel before/after: legacy map kernel vs compiled frozen tree",
		Notes:   []string{cmp.Config, "identical queries and seeds; scores verified bit-identical"},
		Columns: []string{"dataset", "n", "m", "n_r", "legacy-ms/q", "frozen-ms/q", "speedup"},
	}
	for _, r := range cmp.Results {
		rep.AddRow(r.Dataset, fmt.Sprint(r.Nodes), fmt.Sprint(r.Edges), fmt.Sprint(r.Iterations),
			fmt.Sprintf("%.2f", r.LegacyMS), fmt.Sprintf("%.2f", r.FrozenMS),
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	rep.Footer = append(rep.Footer, fmt.Sprintf("geomean speedup: %.2fx", cmp.GeoMeanSpeedup))
	rep.Footer = append(rep.Footer, work.Lines()...)
	return cmp, rep, nil
}

// verifyKernels runs one query through both kernels (doubling as the
// pool warm-up) and fails unless every score matches bit for bit.
func verifyKernels(g *graph.Graph, u graph.NodeID, legacy, frozen core.Params) error {
	want, err := core.SingleSource(g, u, nil, legacy)
	if err != nil {
		return err
	}
	got, err := core.SingleSource(g, u, nil, frozen)
	if err != nil {
		return err
	}
	for v, s := range want {
		if math.Float64bits(got[v]) != math.Float64bits(s) {
			return fmt.Errorf("kernel mismatch at source %d node %d: frozen %v vs legacy %v", u, v, got[v], s)
		}
	}
	return nil
}

// kernelTimingReps is how many times each (source, variant) query is
// repeated; the fastest repetition is kept. Queries are deterministic,
// so repetitions differ only by scheduler and frequency noise — the
// minimum is the cleanest estimate of the query's true cost.
const kernelTimingReps = 3

// timeQueriesPaired times the two kernel variants back to back for each
// source and returns each variant's total wall time, taking the best of
// kernelTimingReps repetitions per query. Pairing the runs — and
// alternating which variant goes first each repetition — spreads slow
// machine drift (frequency scaling, noisy neighbors) evenly over both
// columns, where timing one full variant block after the other would
// charge the drift to whichever side ran later.
func timeQueriesPaired(g *graph.Graph, sources []int32, legacy, frozen core.Params) (legacySec, frozenSec float64, err error) {
	one := func(u int32, p core.Params) (float64, error) {
		start := time.Now()
		_, err := core.SingleSource(g, graph.NodeID(u), nil, p)
		return time.Since(start).Seconds(), err
	}
	for _, u := range sources {
		bestL, bestF := math.Inf(1), math.Inf(1)
		for rep := 0; rep < kernelTimingReps; rep++ {
			a, b := legacy, frozen
			if rep&1 == 1 {
				a, b = frozen, legacy
			}
			ta, err := one(u, a)
			if err != nil {
				return 0, 0, err
			}
			tb, err := one(u, b)
			if err != nil {
				return 0, 0, err
			}
			if rep&1 == 1 {
				ta, tb = tb, ta
			}
			bestL = math.Min(bestL, ta)
			bestF = math.Min(bestF, tb)
		}
		legacySec += bestL
		frozenSec += bestF
	}
	return legacySec, frozenSec, nil
}
