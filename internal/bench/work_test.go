package bench

import (
	"strings"
	"testing"

	"crashsim/internal/core"
	"crashsim/internal/graph"
)

// TestWorkMeter: Monte-Carlo work done between StartWork and Lines
// shows up as counter deltas in the rendered footer.
func TestWorkMeter(t *testing.T) {
	w := StartWork()
	if _, err := core.SingleSource(graph.PaperExample(), 0, nil, core.Params{Iterations: 200, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	lines := w.Lines()
	if len(lines) == 0 {
		t.Fatal("no work lines after a single-source query")
	}
	if !strings.Contains(lines[0], "core.walks=") {
		t.Errorf("work line missing walk count: %q", lines[0])
	}
	if !strings.Contains(lines[0], "core.candidates=") {
		t.Errorf("work line missing candidate count: %q", lines[0])
	}

	// A fresh meter with no work in between renders nothing.
	if lines := StartWork().Lines(); len(lines) != 0 {
		t.Errorf("idle meter produced %v", lines)
	}
}
