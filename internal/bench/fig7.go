package bench

import (
	"fmt"
	"strings"
	"time"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/rng"
	"crashsim/internal/tempq"
	"crashsim/internal/textplot"
)

// Fig7Result is one measured point of Fig 7: an engine's total response
// time for the temporal trend query over a given interval length.
type Fig7Result struct {
	Engine    string
	Snapshots int
	TotalTime time.Duration
	OmegaSize int
}

// Fig7 reproduces the paper's Fig 7: the impact of the query-interval
// length on the total response time of the temporal trend query, on
// AS-733-shaped workloads of 100/200/500/700 snapshots. CrashSim-T's
// advantage grows with the interval because pruning plus the shrinking
// candidate set amortize, while the baselines recompute per snapshot.
func Fig7(cfg Config) ([]Fig7Result, *Report, error) {
	cfg = cfg.WithDefaults()
	maxT := 0
	for _, t := range cfg.Fig7Snapshots {
		if t > maxT {
			maxT = t
		}
	}
	prof, err := gen.ProfileByName("as-733")
	if err != nil {
		return nil, nil, err
	}
	p := prof.Scaled(cfg.Fig7Scale).WithSnapshots(maxT)
	seed := rng.SeedString(fmt.Sprintf("fig7/%d", cfg.Seed))
	full, err := temporalOf(p, seed)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: generating as-733 history: %w", err)
	}
	n := full.NumNodes()
	g0, err := full.Snapshot(0)
	if err != nil {
		return nil, nil, err
	}
	u := graph.NodeID(cfg.sources("fig7", g0, 1)[0])
	var q tempq.Query
	switch cfg.Fig7Query {
	case "trend":
		q = tempq.Trend{Direction: tempq.Increasing, Slack: cfg.Eps}
	case "threshold":
		q = tempq.Threshold{Theta: 2 * cfg.Eps}
	default:
		return nil, nil, fmt.Errorf("bench: unknown fig7 query %q (want trend or threshold)", cfg.Fig7Query)
	}

	work := StartWork()
	var results []Fig7Result
	for _, t := range cfg.Fig7Snapshots {
		tg, err := full.Slice(0, t)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: slicing %d snapshots: %w", t, err)
		}
		for _, e := range fig6Engines(cfg, n, seed) {
			start := time.Now()
			omega, err := e.Run(tg, u, q)
			elapsed := time.Since(start)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s over %d snapshots: %w", e.Name(), t, err)
			}
			results = append(results, Fig7Result{
				Engine:    e.Name(),
				Snapshots: t,
				TotalTime: elapsed,
				OmegaSize: len(omega),
			})
		}
	}

	rep := &Report{
		Title: fmt.Sprintf("Fig 7: total response time of the temporal %s query vs interval length (as-733)", cfg.Fig7Query),
		Notes: []string{
			fmt.Sprintf("scale=%.3g n=%d eps=%g c=%.2g query=%s", cfg.Fig7Scale, n, cfg.Eps, cfg.C, q.Name()),
		},
		Columns: []string{"snapshots", "engine", "total-time", "|omega|"},
	}
	for _, r := range results {
		rep.AddRow(fmt.Sprintf("%d", r.Snapshots), r.Engine,
			r.TotalTime.Round(time.Millisecond).String(), fmt.Sprintf("%d", r.OmegaSize))
	}
	rep.Footer = fig7Chart(cfg.Fig7Snapshots, results)
	rep.Footer = append(rep.Footer, work.Lines()...)
	return results, rep, nil
}

// fig7Chart renders the response-time-vs-interval curves as an ASCII
// figure (seconds on the y-axis).
func fig7Chart(snapshots []int, results []Fig7Result) []string {
	byEngine := map[string][]float64{}
	var order []string
	for _, r := range results {
		if _, ok := byEngine[r.Engine]; !ok {
			order = append(order, r.Engine)
		}
		byEngine[r.Engine] = append(byEngine[r.Engine], r.TotalTime.Seconds())
	}
	series := make([]textplot.Series, 0, len(order))
	for _, name := range order {
		if len(byEngine[name]) != len(snapshots) {
			return nil // shape mismatch; skip the cosmetic chart
		}
		series = append(series, textplot.Series{Name: name, Ys: byEngine[name]})
	}
	chart := textplot.Chart(snapshots, series, 56, 14)
	return append([]string{"", "total time (s) vs snapshots:"}, strings.Split(strings.TrimRight(chart, "\n"), "\n")...)
}
