package bench

import (
	"context"
	"fmt"
	"math"
	"os"
	"reflect"
	"time"

	"crashsim/internal/engine"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/rng"
	"crashsim/internal/store"
)

// StoreResult is one (dataset, index family) row of the snapshot
// cold-vs-warm comparison: the time to build the index from scratch
// (what every restart used to pay) against the time to load it back
// from an internal/store snapshot (what a warm restart pays now), plus
// the one-time save cost and the snapshot size. The loaded index is
// verified bit-identical to the built one before the row is trusted,
// so the two columns answer the same queries.
type StoreResult struct {
	Dataset string `json:"dataset"`
	Algo    string `json:"algo"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	// BuildMS is the cold path: index construction over the graph
	// (best of buildTimingReps repetitions).
	BuildMS float64 `json:"build_ms"`
	// SaveMS is the write-through: encode + checksum + atomic write
	// (best of storeTimingReps repetitions).
	SaveMS float64 `json:"save_ms"`
	// LoadMS is the warm path: read + verify checksums + decode +
	// import (best of storeTimingReps repetitions).
	LoadMS float64 `json:"load_ms"`
	// Bytes is the snapshot file size (graph + meta + index sections).
	Bytes int64 `json:"bytes"`
	// Speedup is BuildMS / LoadMS: how much faster a warm restart
	// brings this index online.
	Speedup float64 `json:"speedup"`
}

// StoreComparison is the machine-readable "store" section of
// BENCH_crashsim.json (see KernelComparison.Store).
type StoreComparison struct {
	Config         string        `json:"config"`
	Results        []StoreResult `json:"results"`
	GeoMeanSpeedup float64       `json:"geomean_speedup"`
}

// storeTimingReps is how many times each save and load is repeated;
// buildTimingReps how many times each index build is. The fastest
// repetition is kept, as in the kernel comparison: all phases are
// deterministic, so repetitions differ only by machine noise and the
// minimum is the cleanest estimate. Builds dominate the runtime, so
// they get fewer repetitions.
const (
	storeTimingReps = 3
	buildTimingReps = 2
)

// Store measures index persistence (internal/store) on every default
// synthetic profile for both index families: build the index the way a
// cold start does, write the snapshot through, load it back the way a
// warm restart does, and verify the loaded index is bit-identical to
// the built one (exported payloads and single-source scores) before
// reporting the row. Builds run single-threaded, like every measured
// algorithm in the harness.
func Store(cfg Config) (*StoreComparison, *Report, error) {
	cfg = cfg.WithDefaults()
	dir, err := os.MkdirTemp("", "crashsim-store-bench-")
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(dir)

	cmp := &StoreComparison{
		Config: fmt.Sprintf("scale=%.3g sources=%d eps=%g c=%.2g dsamples=%d r=%d rq=%d seed=%d",
			cfg.Scale, cfg.Sources, cfg.Eps, cfg.C, cfg.SlingDSamples, cfg.ReadsR, cfg.ReadsRQ, cfg.Seed),
	}
	for _, prof := range gen.Profiles() {
		p := prof.Scaled(cfg.Scale)
		seed := rng.SeedString(fmt.Sprintf("store/%s/%d", p.Name, cfg.Seed))
		g, err := p.Static(seed)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: generating %s: %w", p.Name, err)
		}
		ecfg := engine.Config{
			C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta, Workers: 1, Seed: seed,
			SlingDSamples: cfg.SlingDSamples, ReadsR: cfg.ReadsR, ReadsRQ: cfg.ReadsRQ,
		}
		sources := cfg.sources("store/"+p.Name, g, cfg.Sources)
		for _, algo := range []string{"sling", "reads"} {
			r, err := storeRound(g, p.Name, algo, dir, ecfg, sources)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s/%s: %w", p.Name, algo, err)
			}
			cmp.Results = append(cmp.Results, r)
		}
	}

	logSum := 0.0
	for _, r := range cmp.Results {
		logSum += math.Log(r.Speedup)
	}
	cmp.GeoMeanSpeedup = math.Exp(logSum / float64(len(cmp.Results)))

	rep := &Report{
		Title:   "Index snapshot store: cold build vs warm load (internal/store)",
		Notes:   []string{cmp.Config, "loaded indexes verified bit-identical to built ones before timing is trusted"},
		Columns: []string{"dataset", "algo", "n", "m", "build-ms", "save-ms", "load-ms", "KiB", "speedup"},
	}
	for _, r := range cmp.Results {
		rep.AddRow(r.Dataset, r.Algo, fmt.Sprint(r.Nodes), fmt.Sprint(r.Edges),
			fmt.Sprintf("%.1f", r.BuildMS), fmt.Sprintf("%.1f", r.SaveMS),
			fmt.Sprintf("%.1f", r.LoadMS), fmt.Sprintf("%.0f", float64(r.Bytes)/1024),
			fmt.Sprintf("%.1fx", r.Speedup))
	}
	rep.Footer = append(rep.Footer, fmt.Sprintf("geomean warm-restart speedup: %.1fx", cmp.GeoMeanSpeedup))
	return cmp, rep, nil
}

// storeRound runs one (graph, algo) build → save → load → verify cycle
// and returns its timings.
func storeRound(g *graph.Graph, dataset, algo, dir string, ecfg engine.Config, sources []int32) (StoreResult, error) {
	ctx := context.Background()
	snap := &store.Snapshot{
		Graph: g,
		Meta:  store.Meta{Dataset: dataset, Tool: "bench", CreatedUnix: time.Now().Unix()},
	}

	// Builds are deterministic, so every repetition produces the same
	// index; the last one doubles as the verification reference (via
	// the engine's preload path).
	builtCfg := ecfg
	buildSec := math.Inf(1)
	for rep := 0; rep < buildTimingReps; rep++ {
		start := time.Now()
		switch algo {
		case "sling":
			ix, err := engine.BuildSlingIndex(ctx, g, ecfg)
			if err != nil {
				return StoreResult{}, err
			}
			p := ix.Export()
			snap.Sling = &p
			builtCfg.SlingIndex = ix
		case "reads":
			ix, err := engine.BuildReadsIndex(ctx, g, ecfg)
			if err != nil {
				return StoreResult{}, err
			}
			p := ix.Export()
			snap.Reads = &p
			builtCfg.ReadsIndex = ix
		default:
			return StoreResult{}, fmt.Errorf("unknown index algo %q", algo)
		}
		buildSec = math.Min(buildSec, time.Since(start).Seconds())
	}

	path := store.SnapshotPath(dir, dataset, algo)
	saveSec := math.Inf(1)
	for rep := 0; rep < storeTimingReps; rep++ {
		start := time.Now()
		if err := store.Write(path, snap); err != nil {
			return StoreResult{}, err
		}
		saveSec = math.Min(saveSec, time.Since(start).Seconds())
	}
	fi, err := os.Stat(path)
	if err != nil {
		return StoreResult{}, err
	}

	loadSec := math.Inf(1)
	var loaded *store.Snapshot
	for rep := 0; rep < storeTimingReps; rep++ {
		start := time.Now()
		loaded, err = store.Load(path)
		if err != nil {
			return StoreResult{}, err
		}
		lcfg := ecfg
		switch algo {
		case "sling":
			lcfg.SlingIndex, err = loaded.ImportSling(loaded.Graph)
		case "reads":
			lcfg.ReadsIndex, err = loaded.ImportReads(loaded.Graph)
		}
		if err != nil {
			return StoreResult{}, err
		}
		loadSec = math.Min(loadSec, time.Since(start).Seconds())
		if rep == storeTimingReps-1 {
			if err := verifyLoadedIndex(g, algo, builtCfg, lcfg, loaded.Graph, sources); err != nil {
				return StoreResult{}, err
			}
		}
	}

	return StoreResult{
		Dataset: dataset, Algo: algo,
		Nodes: g.NumNodes(), Edges: g.NumEdges(),
		BuildMS: buildSec * 1e3,
		SaveMS:  saveSec * 1e3,
		LoadMS:  loadSec * 1e3,
		Bytes:   fi.Size(),
		Speedup: buildSec / loadSec,
	}, nil
}

// verifyLoadedIndex fails unless the snapshot round trip preserved the
// index exactly: the estimator over the loaded index must answer every
// benchmark source bit-for-bit like the one over the index it was
// saved from.
func verifyLoadedIndex(g *graph.Graph, algo string, built, preload engine.Config, loadedG *graph.Graph, sources []int32) error {
	ctx := context.Background()
	if loadedG.Version() != g.Version() {
		return fmt.Errorf("snapshot graph version %#x != generated %#x", loadedG.Version(), g.Version())
	}
	want, err := engine.New(ctx, algo, g, built)
	if err != nil {
		return err
	}
	got, err := engine.New(ctx, algo, loadedG, preload)
	if err != nil {
		return fmt.Errorf("loaded index rejected: %w", err)
	}
	for _, u := range sources {
		ws, err := want.SingleSource(ctx, graph.NodeID(u), nil)
		if err != nil {
			return err
		}
		gs, err := got.SingleSource(ctx, graph.NodeID(u), nil)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(ws, gs) {
			return fmt.Errorf("loaded %s index diverges from rebuild at source %d", algo, u)
		}
	}
	return nil
}
