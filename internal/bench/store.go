package bench

import (
	"context"
	"fmt"
	"math"
	"os"
	"reflect"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"crashsim/internal/engine"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/rng"
	"crashsim/internal/store"
)

// StoreResult is one (dataset, index family) row of the snapshot
// cold-vs-warm comparison: the time to build the index from scratch
// (what every restart used to pay) against the time to load it back
// from an internal/store snapshot (what a warm restart pays now), plus
// the one-time save cost and the snapshot size. The loaded index is
// verified bit-identical to the built one before the row is trusted,
// so the two columns answer the same queries.
type StoreResult struct {
	Dataset string `json:"dataset"`
	Algo    string `json:"algo"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	// BuildMS is the cold path: index construction over the graph
	// (best of buildTimingReps repetitions).
	BuildMS float64 `json:"build_ms"`
	// SaveMS is the write-through: encode + checksum + atomic write
	// (best of storeTimingReps repetitions).
	SaveMS float64 `json:"save_ms"`
	// LoadMS is the warm path: read + verify checksums + decode +
	// import (best of storeTimingReps repetitions).
	LoadMS float64 `json:"load_ms"`
	// MappedLoadMS is the zero-copy warm path: mmap the snapshot and
	// import typed views aliasing the mapping (store.OpenMapped, default
	// section-CRC policy; best of storeTimingReps repetitions).
	MappedLoadMS float64 `json:"mapped_load_ms"`
	// CopyFirstQueryMS / MappedFirstQueryMS time the full restart to
	// first answer: load (copying vs mapped), construct the estimator,
	// answer one single-source query. This is the latency a restarting
	// replica's first caller actually sees.
	CopyFirstQueryMS   float64 `json:"copy_first_query_ms"`
	MappedFirstQueryMS float64 `json:"mapped_first_query_ms"`
	// CopyRSSKB / MappedRSSKB are the private-memory cost (RssAnon from
	// /proc/self/status, KiB, after debug.FreeOSMemory on both sides)
	// of holding one loaded index copied onto the heap vs aliased into
	// the mapping. Anonymous RSS is the honest comparison: a mapped
	// index's resident pages are file-backed — shared across processes
	// and evictable under pressure — so they do not show up here, while
	// a copied index's bytes are private and unevictable. Zero on
	// platforms without /proc. Small graphs measure mostly allocator
	// noise; the column is meaningful at full bench scale.
	CopyRSSKB   int64 `json:"copy_rss_kb"`
	MappedRSSKB int64 `json:"mapped_rss_kb"`
	// Bytes is the snapshot file size (graph + meta + index sections).
	Bytes int64 `json:"bytes"`
	// Speedup is BuildMS / LoadMS: how much faster a warm restart
	// brings this index online.
	Speedup float64 `json:"speedup"`
	// MappedSpeedup is CopyFirstQueryMS / MappedFirstQueryMS: how much
	// faster the mmap path reaches its first answer than the copying
	// loader.
	MappedSpeedup float64 `json:"mapped_speedup"`
}

// StoreComparison is the machine-readable "store" section of
// BENCH_crashsim.json (see KernelComparison.Store).
type StoreComparison struct {
	Config         string        `json:"config"`
	Results        []StoreResult `json:"results"`
	GeoMeanSpeedup float64       `json:"geomean_speedup"`
	// GeoMeanMappedSpeedup aggregates MappedSpeedup (copying vs mapped
	// time-to-first-query) across all rows.
	GeoMeanMappedSpeedup float64 `json:"geomean_mapped_speedup"`
}

// storeTimingReps is how many times each save and load is repeated;
// buildTimingReps how many times each index build is. The fastest
// repetition is kept, as in the kernel comparison: all phases are
// deterministic, so repetitions differ only by machine noise and the
// minimum is the cleanest estimate. Builds dominate the runtime, so
// they get fewer repetitions.
const (
	storeTimingReps = 3
	buildTimingReps = 2
)

// Store measures index persistence (internal/store) on every default
// synthetic profile for both index families: build the index the way a
// cold start does, write the snapshot through, load it back the way a
// warm restart does, and verify the loaded index is bit-identical to
// the built one (exported payloads and single-source scores) before
// reporting the row. Builds run single-threaded, like every measured
// algorithm in the harness.
func Store(cfg Config) (*StoreComparison, *Report, error) {
	cfg = cfg.WithDefaults()
	dir, err := os.MkdirTemp("", "crashsim-store-bench-")
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %w", err)
	}
	defer os.RemoveAll(dir)

	cmp := &StoreComparison{
		Config: fmt.Sprintf("scale=%.3g sources=%d eps=%g c=%.2g dsamples=%d r=%d rq=%d seed=%d",
			cfg.Scale, cfg.Sources, cfg.Eps, cfg.C, cfg.SlingDSamples, cfg.ReadsR, cfg.ReadsRQ, cfg.Seed),
	}
	// The paper's Table III set plus the workload-scale web-1m serving
	// profile: restart latency matters most on the graphs a replica
	// actually serves, and web-1m is where the mapped-vs-copy gap is
	// measured for the acceptance numbers.
	profs := gen.Profiles()
	if web, err := gen.ProfileByName("web-1m"); err == nil {
		profs = append(profs, web)
	}
	for _, prof := range profs {
		p := prof.Scaled(cfg.Scale)
		seed := rng.SeedString(fmt.Sprintf("store/%s/%d", p.Name, cfg.Seed))
		g, err := p.Static(seed)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: generating %s: %w", p.Name, err)
		}
		ecfg := engine.Config{
			C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta, Workers: 1, Seed: seed,
			SlingDSamples: cfg.SlingDSamples, ReadsR: cfg.ReadsR, ReadsRQ: cfg.ReadsRQ,
		}
		sources := cfg.sources("store/"+p.Name, g, cfg.Sources)
		for _, algo := range []string{"sling", "reads"} {
			r, err := storeRound(g, p.Name, algo, dir, ecfg, sources)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s/%s: %w", p.Name, algo, err)
			}
			cmp.Results = append(cmp.Results, r)
		}
	}

	logSum, logMapped := 0.0, 0.0
	for _, r := range cmp.Results {
		logSum += math.Log(r.Speedup)
		logMapped += math.Log(r.MappedSpeedup)
	}
	cmp.GeoMeanSpeedup = math.Exp(logSum / float64(len(cmp.Results)))
	cmp.GeoMeanMappedSpeedup = math.Exp(logMapped / float64(len(cmp.Results)))

	rep := &Report{
		Title: "Index snapshot store: cold build vs warm load vs mmap (internal/store)",
		Notes: []string{cmp.Config,
			"loaded and mapped indexes verified bit-identical to built ones before timing is trusted",
			"first-query columns time load + estimator construction + one single-source answer"},
		Columns: []string{"dataset", "algo", "n", "m", "build-ms", "save-ms", "load-ms", "mmap-ms",
			"copy-fq-ms", "mmap-fq-ms", "KiB", "speedup", "mmap-speedup"},
	}
	for _, r := range cmp.Results {
		rep.AddRow(r.Dataset, r.Algo, fmt.Sprint(r.Nodes), fmt.Sprint(r.Edges),
			fmt.Sprintf("%.1f", r.BuildMS), fmt.Sprintf("%.1f", r.SaveMS),
			fmt.Sprintf("%.1f", r.LoadMS), fmt.Sprintf("%.2f", r.MappedLoadMS),
			fmt.Sprintf("%.1f", r.CopyFirstQueryMS), fmt.Sprintf("%.2f", r.MappedFirstQueryMS),
			fmt.Sprintf("%.0f", float64(r.Bytes)/1024),
			fmt.Sprintf("%.1fx", r.Speedup), fmt.Sprintf("%.1fx", r.MappedSpeedup))
	}
	rep.Footer = append(rep.Footer,
		fmt.Sprintf("geomean warm-restart speedup: %.1fx", cmp.GeoMeanSpeedup),
		fmt.Sprintf("geomean mapped-vs-copy first-query speedup: %.1fx", cmp.GeoMeanMappedSpeedup))
	return cmp, rep, nil
}

// storeRound runs one (graph, algo) build → save → load → verify cycle
// and returns its timings.
func storeRound(g *graph.Graph, dataset, algo, dir string, ecfg engine.Config, sources []int32) (StoreResult, error) {
	ctx := context.Background()
	snap := &store.Snapshot{
		Graph: g,
		Meta:  store.Meta{Dataset: dataset, Tool: "bench", CreatedUnix: time.Now().Unix()},
	}

	// Builds are deterministic, so every repetition produces the same
	// index; the last one doubles as the verification reference (via
	// the engine's preload path).
	builtCfg := ecfg
	buildSec := math.Inf(1)
	for rep := 0; rep < buildTimingReps; rep++ {
		start := time.Now()
		switch algo {
		case "sling":
			ix, err := engine.BuildSlingIndex(ctx, g, ecfg)
			if err != nil {
				return StoreResult{}, err
			}
			p := ix.Export()
			snap.Sling = &p
			builtCfg.SlingIndex = ix
		case "reads":
			ix, err := engine.BuildReadsIndex(ctx, g, ecfg)
			if err != nil {
				return StoreResult{}, err
			}
			p := ix.Export()
			snap.Reads = &p
			builtCfg.ReadsIndex = ix
		default:
			return StoreResult{}, fmt.Errorf("unknown index algo %q", algo)
		}
		buildSec = math.Min(buildSec, time.Since(start).Seconds())
	}

	path := store.SnapshotPath(dir, dataset, algo)
	saveSec := math.Inf(1)
	for rep := 0; rep < storeTimingReps; rep++ {
		start := time.Now()
		if err := store.Write(path, snap); err != nil {
			return StoreResult{}, err
		}
		saveSec = math.Min(saveSec, time.Since(start).Seconds())
	}
	fi, err := os.Stat(path)
	if err != nil {
		return StoreResult{}, err
	}

	loadSec := math.Inf(1)
	var loaded *store.Snapshot
	for rep := 0; rep < storeTimingReps; rep++ {
		start := time.Now()
		loaded, err = store.Load(path)
		if err != nil {
			return StoreResult{}, err
		}
		lcfg := ecfg
		switch algo {
		case "sling":
			lcfg.SlingIndex, err = loaded.ImportSling(loaded.Graph)
		case "reads":
			lcfg.ReadsIndex, err = loaded.ImportReads(loaded.Graph)
		}
		if err != nil {
			return StoreResult{}, err
		}
		loadSec = math.Min(loadSec, time.Since(start).Seconds())
		if rep == storeTimingReps-1 {
			if err := verifyLoadedIndex(g, algo, builtCfg, lcfg, loaded.Graph, sources); err != nil {
				return StoreResult{}, err
			}
		}
	}

	// Zero-copy rung: mmap the snapshot and import views aliasing the
	// mapping (default section-CRC policy — what a production restart
	// uses). The last repetition's index is verified bit-identical to
	// the rebuild, like the copying rung above.
	mappedSec := math.Inf(1)
	for rep := 0; rep < storeTimingReps; rep++ {
		start := time.Now()
		mcfg, mg, release, err := mappedImport(path, algo, ecfg)
		if err != nil {
			return StoreResult{}, err
		}
		mappedSec = math.Min(mappedSec, time.Since(start).Seconds())
		if rep == storeTimingReps-1 {
			if err := verifyLoadedIndex(g, algo, builtCfg, mcfg, mg, sources); err != nil {
				release()
				return StoreResult{}, err
			}
		}
		release()
	}

	// Time-to-first-answer for both restart paths: load, construct the
	// estimator, answer one query.
	firstSource := graph.NodeID(sources[0])
	fqCopySec := math.Inf(1)
	for rep := 0; rep < storeTimingReps; rep++ {
		start := time.Now()
		s, err := store.Load(path)
		if err != nil {
			return StoreResult{}, err
		}
		lcfg := ecfg
		switch algo {
		case "sling":
			lcfg.SlingIndex, err = s.ImportSling(s.Graph)
		case "reads":
			lcfg.ReadsIndex, err = s.ImportReads(s.Graph)
		}
		if err != nil {
			return StoreResult{}, err
		}
		if err := answerOne(ctx, algo, s.Graph, lcfg, firstSource); err != nil {
			return StoreResult{}, err
		}
		fqCopySec = math.Min(fqCopySec, time.Since(start).Seconds())
	}
	fqMappedSec := math.Inf(1)
	for rep := 0; rep < storeTimingReps; rep++ {
		start := time.Now()
		mcfg, mg, release, err := mappedImport(path, algo, ecfg)
		if err != nil {
			return StoreResult{}, err
		}
		if err := answerOne(ctx, algo, mg, mcfg, firstSource); err != nil {
			release()
			return StoreResult{}, err
		}
		fqMappedSec = math.Min(fqMappedSec, time.Since(start).Seconds())
		release()
	}

	copyRSS, err := rssDeltaKB(func() (func(), error) {
		s, err := store.Load(path)
		if err != nil {
			return nil, err
		}
		switch algo {
		case "sling":
			_, err = s.ImportSling(s.Graph)
		case "reads":
			_, err = s.ImportReads(s.Graph)
		}
		keep := s
		return func() { _ = keep }, err
	})
	if err != nil {
		return StoreResult{}, err
	}
	mappedRSS, err := rssDeltaKB(func() (func(), error) {
		_, _, release, err := mappedImport(path, algo, ecfg)
		return release, err
	})
	if err != nil {
		return StoreResult{}, err
	}

	return StoreResult{
		Dataset: dataset, Algo: algo,
		Nodes: g.NumNodes(), Edges: g.NumEdges(),
		BuildMS:            buildSec * 1e3,
		SaveMS:             saveSec * 1e3,
		LoadMS:             loadSec * 1e3,
		MappedLoadMS:       mappedSec * 1e3,
		CopyFirstQueryMS:   fqCopySec * 1e3,
		MappedFirstQueryMS: fqMappedSec * 1e3,
		CopyRSSKB:          copyRSS,
		MappedRSSKB:        mappedRSS,
		Bytes:              fi.Size(),
		Speedup:            buildSec / loadSec,
		MappedSpeedup:      fqCopySec / fqMappedSec,
	}, nil
}

// mappedImport opens the snapshot zero-copy and imports the requested
// index aliasing the mapping. The returned release closes the index
// (and with it the last mapping reference; the Mapped handle itself is
// closed before returning).
func mappedImport(path, algo string, ecfg engine.Config) (engine.Config, *graph.Graph, func(), error) {
	mp, err := store.OpenMapped(path, store.MapOptions{})
	if err != nil {
		return ecfg, nil, nil, err
	}
	defer mp.Close()
	g := mp.Graph()
	switch algo {
	case "sling":
		ix, err := mp.ImportSling(g)
		if err != nil {
			return ecfg, nil, nil, err
		}
		ecfg.SlingIndex = ix
		return ecfg, g, func() { ix.Close() }, nil
	case "reads":
		ix, err := mp.ImportReads(g)
		if err != nil {
			return ecfg, nil, nil, err
		}
		ecfg.ReadsIndex = ix
		return ecfg, g, func() { ix.Close() }, nil
	}
	return ecfg, nil, nil, fmt.Errorf("unknown index algo %q", algo)
}

// answerOne constructs the estimator over a loaded index and answers a
// single query — the tail of the time-to-first-answer measurement.
func answerOne(ctx context.Context, algo string, g *graph.Graph, ecfg engine.Config, u graph.NodeID) error {
	est, err := engine.New(ctx, algo, g, ecfg)
	if err != nil {
		return err
	}
	_, err = est.SingleSource(ctx, u, nil)
	return err
}

// rssDeltaKB measures the private-memory cost of holding one loaded
// index: anonymous RSS before the load and after it, in KiB, with
// debug.FreeOSMemory around both readings so freed spans are returned
// to the OS and only live bytes are counted — plain runtime.GC keeps
// freed spans resident and made loads that fit in recycled heap read
// as zero (or negative, from earlier phases' scavenging). Anonymous
// RSS rather than VmRSS because a mapped index's resident pages are
// file-backed: shared and evictable, not a per-process cost. Returns 0
// where /proc/self/status is unavailable.
func rssDeltaKB(load func() (func(), error)) (int64, error) {
	debug.FreeOSMemory()
	before := readAnonRSSKB()
	release, err := load()
	if err != nil {
		return 0, err
	}
	debug.FreeOSMemory()
	after := readAnonRSSKB()
	if release != nil {
		release()
	}
	if before == 0 || after == 0 {
		return 0, nil
	}
	return after - before, nil
}

// readAnonRSSKB parses RssAnon out of /proc/self/status (VmRSS as a
// fallback on kernels without the split); 0 if unreadable.
func readAnonRSSKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	var vmRSS int64
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "RssAnon:"); ok {
			return parseStatusKB(rest)
		}
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			vmRSS = parseStatusKB(rest)
		}
	}
	return vmRSS
}

func parseStatusKB(rest string) int64 {
	kb, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
	if err != nil {
		return 0
	}
	return kb
}

// verifyLoadedIndex fails unless the snapshot round trip preserved the
// index exactly: the estimator over the loaded index must answer every
// benchmark source bit-for-bit like the one over the index it was
// saved from.
func verifyLoadedIndex(g *graph.Graph, algo string, built, preload engine.Config, loadedG *graph.Graph, sources []int32) error {
	ctx := context.Background()
	if loadedG.Version() != g.Version() {
		return fmt.Errorf("snapshot graph version %#x != generated %#x", loadedG.Version(), g.Version())
	}
	want, err := engine.New(ctx, algo, g, built)
	if err != nil {
		return err
	}
	got, err := engine.New(ctx, algo, loadedG, preload)
	if err != nil {
		return fmt.Errorf("loaded index rejected: %w", err)
	}
	for _, u := range sources {
		ws, err := want.SingleSource(ctx, graph.NodeID(u), nil)
		if err != nil {
			return err
		}
		gs, err := got.SingleSource(ctx, graph.NodeID(u), nil)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(ws, gs) {
			return fmt.Errorf("loaded %s index diverges from rebuild at source %d", algo, u)
		}
	}
	return nil
}
