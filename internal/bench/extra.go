package bench

import (
	"context"
	"fmt"
	"time"

	"crashsim/internal/engine"
	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/linsim"
	"crashsim/internal/prsim"
	"crashsim/internal/rng"
	"crashsim/internal/tsf"
)

// Extra runs the extended single-source comparison beyond the paper's
// Fig 5 lineup: the four engine-dispatched paper families plus the TSF
// one-way-graph index (related work [16]), the classic Fogaras pairwise
// Monte-Carlo method, PRSim and the linearized solver — on one dataset,
// reporting mean response time (index build included for the indexed
// methods) and mean ME.
func Extra(cfg Config) (*Report, error) {
	cfg = cfg.WithDefaults()
	ctx := context.Background()
	prof, err := gen.ProfileByName("wiki-vote")
	if err != nil {
		return nil, err
	}
	p := prof.Scaled(cfg.TemporalScale)
	seed := rng.SeedString(fmt.Sprintf("extra/%d", cfg.Seed))
	g, err := p.Static(seed)
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	gt, err := exact.PowerMethod(g, exact.PowerOptions{
		C: cfg.C, Iterations: cfg.GroundTruthIters, MaxNodes: -1, Workers: cfg.GTWorkers,
	})
	if err != nil {
		return nil, err
	}
	sources := cfg.sources("extra", g, cfg.Sources)

	type algo struct {
		name  string
		build func() (func(u graph.NodeID) (map[graph.NodeID]float64, error), error)
	}
	// The paper families go through the engine registry; the extras keep
	// their direct constructors (they are not part of the unified lineup).
	engineAlgo := func(family string) algo {
		return algo{family, func() (func(graph.NodeID) (map[graph.NodeID]float64, error), error) {
			est, err := engine.New(ctx, family, g, cfg.familyConfig(family, n, cfg.Eps, seed))
			if err != nil {
				return nil, err
			}
			return func(u graph.NodeID) (map[graph.NodeID]float64, error) {
				s, err := est.SingleSource(ctx, u, nil)
				return map[graph.NodeID]float64(s), err
			}, nil
		}}
	}
	dg := diGraphOf(g)
	algos := []algo{
		engineAlgo("crashsim"),
		engineAlgo("probesim"),
		engineAlgo("sling"),
		engineAlgo("reads"),
		{"tsf", func() (func(graph.NodeID) (map[graph.NodeID]float64, error), error) {
			ix, err := tsf.Build(dg, tsf.Options{C: cfg.C, Rg: cfg.ReadsR, Seed: seed + 4})
			if err != nil {
				return nil, err
			}
			return ix.SingleSource, nil
		}},
		{"fogaras-mc", func() (func(graph.NodeID) (map[graph.NodeID]float64, error), error) {
			o := exact.PairMCOptions{C: cfg.C, Trials: cfg.crashIters(n, cfg.Eps), Seed: seed + 5}
			return func(u graph.NodeID) (map[graph.NodeID]float64, error) {
				return exact.MCSingleSource(g, u, o)
			}, nil
		}},
		{"prsim", func() (func(graph.NodeID) (map[graph.NodeID]float64, error), error) {
			ix, err := prsim.Build(g, prsim.Options{
				C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta, HubFraction: 0.05,
				Iterations: cfg.crashIters(n, cfg.Eps), DSamples: cfg.SlingDSamples, Seed: seed + 7,
			})
			if err != nil {
				return nil, err
			}
			return ix.SingleSource, nil
		}},
		{"linsim", func() (func(graph.NodeID) (map[graph.NodeID]float64, error), error) {
			s, err := linsim.New(g, linsim.Options{C: cfg.C, Eps: cfg.Eps, DSamples: cfg.SlingDSamples, Seed: seed + 6})
			if err != nil {
				return nil, err
			}
			return func(u graph.NodeID) (map[graph.NodeID]float64, error) {
				col, err := s.SingleSource(u)
				if err != nil {
					return nil, err
				}
				out := make(map[graph.NodeID]float64, len(col))
				for v, sc := range col {
					if sc != 0 {
						out[graph.NodeID(v)] = sc
					}
				}
				return out, nil
			}, nil
		}},
	}

	rep := &Report{
		Title: "Extra: extended single-source comparison (wiki-vote stand-in)",
		Notes: []string{
			fmt.Sprintf("n=%d sources=%d eps=%g (index build included where applicable)", n, len(sources), cfg.Eps),
			"tsf, fogaras-mc, prsim and linsim are beyond the paper's Fig 5 lineup; see DESIGN.md",
		},
		Columns: []string{"algorithm", "mean-time", "mean-ME"},
	}
	for _, a := range algos {
		buildStart := time.Now()
		run, err := a.build()
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", a.name, err)
		}
		buildTime := time.Since(buildStart)
		res, err := measure("wiki-vote", a.name, sources, gt, run)
		if err != nil {
			return nil, err
		}
		res.MeanTime += buildTime
		rep.AddRow(a.name, res.MeanTime.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.4f", res.MeanME))
	}
	return rep, nil
}
