package bench

import (
	"fmt"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/metrics"
	"crashsim/internal/probesim"
	"crashsim/internal/reads"
	"crashsim/internal/rng"
	"crashsim/internal/sling"
)

// Fig5Result is one measured cell of Fig 5: an algorithm's mean response
// time and mean max-error on one dataset.
type Fig5Result struct {
	Dataset   string
	Algorithm string
	MeanTime  time.Duration
	MeanME    float64
}

// Fig5 reproduces the paper's Fig 5: single-source response time and
// maximum error ME on each static dataset for CrashSim at each ε, versus
// ProbeSim, SLING and READS (index time included in response time, as in
// the paper). Ground truth is the Power Method.
func Fig5(cfg Config) ([]Fig5Result, *Report, error) {
	cfg = cfg.WithDefaults()
	var results []Fig5Result
	for _, prof := range gen.Profiles() {
		p := prof.Scaled(cfg.Scale)
		seed := rng.SeedString(fmt.Sprintf("fig5/%s/%d", p.Name, cfg.Seed))
		g, err := p.Static(seed)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: generating %s: %w", p.Name, err)
		}
		n := g.NumNodes()
		gt, err := exact.PowerMethod(g, exact.PowerOptions{
			C: cfg.C, Iterations: cfg.GroundTruthIters, MaxNodes: -1, Workers: cfg.GTWorkers,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: ground truth for %s: %w", p.Name, err)
		}
		sources := cfg.sources("fig5/"+p.Name, g, cfg.Sources)

		// CrashSim at each ε.
		for _, eps := range cfg.Epsilons {
			params := core.Params{
				C: cfg.C, Eps: eps, Delta: cfg.Delta,
				Iterations: cfg.crashIters(n, eps), Seed: seed,
			}
			res, err := measure(p.Name, fmt.Sprintf("crashsim(eps=%g)", eps), sources, gt,
				func(u graph.NodeID) (map[graph.NodeID]float64, error) {
					return core.SingleSource(g, u, nil, params)
				})
			if err != nil {
				return nil, nil, err
			}
			results = append(results, res)
		}

		// ProbeSim.
		po := probesim.Options{
			C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta,
			Iterations: cfg.probeIters(n, cfg.Eps), Seed: seed + 1,
		}
		res, err := measure(p.Name, "probesim", sources, gt,
			func(u graph.NodeID) (map[graph.NodeID]float64, error) {
				return probesim.SingleSource(g, u, po)
			})
		if err != nil {
			return nil, nil, err
		}
		results = append(results, res)

		// SLING: index built once; the build time is charged to every
		// query's response time, matching the paper's accounting.
		buildStart := time.Now()
		slingIx, err := sling.Build(g, sling.Options{
			C: cfg.C, Eps: cfg.Eps, DSamples: cfg.SlingDSamples, Seed: seed + 2,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: sling build on %s: %w", p.Name, err)
		}
		slingBuild := time.Since(buildStart)
		res, err = measure(p.Name, "sling", sources, gt,
			func(u graph.NodeID) (map[graph.NodeID]float64, error) {
				return slingIx.SingleSource(u)
			})
		if err != nil {
			return nil, nil, err
		}
		res.MeanTime += slingBuild
		results = append(results, res)

		// READS: same accounting.
		dg := diGraphOf(g)
		buildStart = time.Now()
		readsIx, err := reads.Build(dg, reads.Options{C: cfg.C, R: cfg.ReadsR, RQ: cfg.ReadsRQ, Seed: seed + 3})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: reads build on %s: %w", p.Name, err)
		}
		readsBuild := time.Since(buildStart)
		res, err = measure(p.Name, "reads", sources, gt,
			func(u graph.NodeID) (map[graph.NodeID]float64, error) {
				return readsIx.SingleSource(u)
			})
		if err != nil {
			return nil, nil, err
		}
		res.MeanTime += readsBuild
		results = append(results, res)
	}

	rep := &Report{
		Title: "Fig 5: single-source response time and max error (static datasets)",
		Notes: []string{
			fmt.Sprintf("scale=%.3g sources=%d iter-scale=%.3g c=%.2g (index build included for sling/reads)",
				cfg.Scale, cfg.Sources, cfg.IterScale, cfg.C),
		},
		Columns: []string{"dataset", "algorithm", "mean-time", "mean-ME"},
	}
	for _, r := range results {
		rep.AddRow(r.Dataset, r.Algorithm, r.MeanTime.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.4f", r.MeanME))
	}
	return results, rep, nil
}

// measure runs one algorithm over all sources, timing each query and
// computing its ME against ground truth.
func measure(dataset, algo string, sources []int32, gt *exact.Result,
	run func(u graph.NodeID) (map[graph.NodeID]float64, error)) (Fig5Result, error) {
	var total time.Duration
	var mes []float64
	for _, u := range sources {
		start := time.Now()
		scores, err := run(graph.NodeID(u))
		total += time.Since(start)
		if err != nil {
			return Fig5Result{}, fmt.Errorf("bench: %s on %s (source %d): %w", algo, dataset, u, err)
		}
		mes = append(mes, metrics.MaxError(gt.SingleSource(graph.NodeID(u)), scores))
	}
	return Fig5Result{
		Dataset:   dataset,
		Algorithm: algo,
		MeanTime:  total / time.Duration(len(sources)),
		MeanME:    metrics.MeanFloat(mes),
	}, nil
}

func diGraphOf(g *graph.Graph) *graph.DiGraph {
	d := graph.NewDiGraph(g.NumNodes(), g.Directed())
	for _, e := range g.Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			panic(fmt.Sprintf("bench: converting frozen graph: %v", err))
		}
	}
	return d
}
