package bench

import (
	"context"
	"fmt"
	"time"

	"crashsim/internal/engine"
	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/metrics"
	"crashsim/internal/rng"
)

// Fig5Result is one measured cell of Fig 5: an algorithm's mean response
// time and mean max-error on one dataset.
type Fig5Result struct {
	Dataset   string
	Algorithm string
	MeanTime  time.Duration
	MeanME    float64
}

// Fig5 reproduces the paper's Fig 5: single-source response time and
// maximum error ME on each static dataset for CrashSim at each ε, versus
// ProbeSim, SLING and READS — all dispatched through the engine registry
// (index time included in response time, as in the paper). Ground truth
// is the Power Method.
func Fig5(cfg Config) ([]Fig5Result, *Report, error) {
	cfg = cfg.WithDefaults()
	ctx := context.Background()
	work := StartWork()
	var results []Fig5Result
	for _, prof := range gen.Profiles() {
		p := prof.Scaled(cfg.Scale)
		seed := rng.SeedString(fmt.Sprintf("fig5/%s/%d", p.Name, cfg.Seed))
		g, err := p.Static(seed)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: generating %s: %w", p.Name, err)
		}
		n := g.NumNodes()
		gt, err := exact.PowerMethod(g, exact.PowerOptions{
			C: cfg.C, Iterations: cfg.GroundTruthIters, MaxNodes: -1, Workers: cfg.GTWorkers,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: ground truth for %s: %w", p.Name, err)
		}
		sources := cfg.sources("fig5/"+p.Name, g, cfg.Sources)

		// CrashSim at each ε.
		for _, eps := range cfg.Epsilons {
			res, err := measureEngine(ctx, p.Name, fmt.Sprintf("crashsim(eps=%g)", eps),
				"crashsim", g, cfg.familyConfig("crashsim", n, eps, seed), sources, gt)
			if err != nil {
				return nil, nil, err
			}
			results = append(results, res)
		}

		// The three baseline families at the default ε.
		for _, family := range []string{"probesim", "sling", "reads"} {
			res, err := measureEngine(ctx, p.Name, family,
				family, g, cfg.familyConfig(family, n, cfg.Eps, seed), sources, gt)
			if err != nil {
				return nil, nil, err
			}
			results = append(results, res)
		}
	}

	rep := &Report{
		Title: "Fig 5: single-source response time and max error (static datasets)",
		Notes: []string{
			fmt.Sprintf("scale=%.3g sources=%d iter-scale=%.3g c=%.2g (index build included for sling/reads)",
				cfg.Scale, cfg.Sources, cfg.IterScale, cfg.C),
		},
		Columns: []string{"dataset", "algorithm", "mean-time", "mean-ME"},
	}
	for _, r := range results {
		rep.AddRow(r.Dataset, r.Algorithm, r.MeanTime.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.4f", r.MeanME))
	}
	rep.Footer = append(rep.Footer, work.Lines()...)
	return results, rep, nil
}

// familyConfig maps one paper family to its engine.Config on a graph of
// n nodes, reproducing the per-family seeds (seed, +1, +2, +3) and
// iteration counts the reports have always used.
func (c Config) familyConfig(family string, n int, eps float64, seed uint64) engine.Config {
	ec := engine.Config{C: c.C, Eps: eps, Delta: c.Delta}
	switch family {
	case "crashsim":
		ec.Iterations = c.crashIters(n, eps)
		ec.Seed = seed
	case "probesim":
		ec.Iterations = c.probeIters(n, eps)
		ec.Seed = seed + 1
	case "sling":
		ec.SlingDSamples = c.SlingDSamples
		ec.Seed = seed + 2
	case "reads":
		ec.ReadsR = c.ReadsR
		ec.ReadsRQ = c.ReadsRQ
		ec.Seed = seed + 3
	default:
		panic(fmt.Sprintf("bench: no familyConfig for %q", family))
	}
	return ec
}

// measureEngine builds one backend through the registry and measures it
// over all sources, charging the build (the index, for indexed families)
// into the mean response time — the paper's accounting.
func measureEngine(ctx context.Context, dataset, label, family string, g *graph.Graph,
	ec engine.Config, sources []int32, gt *exact.Result) (Fig5Result, error) {
	buildStart := time.Now()
	est, err := engine.New(ctx, family, g, ec)
	if err != nil {
		return Fig5Result{}, fmt.Errorf("bench: building %s on %s: %w", family, dataset, err)
	}
	build := time.Since(buildStart)
	res, err := measure(dataset, label, sources, gt,
		func(u graph.NodeID) (map[graph.NodeID]float64, error) {
			s, err := est.SingleSource(ctx, u, nil)
			return map[graph.NodeID]float64(s), err
		})
	if err != nil {
		return Fig5Result{}, err
	}
	res.MeanTime += build
	return res, nil
}

// measure runs one algorithm over all sources, timing each query and
// computing its ME against ground truth.
func measure(dataset, algo string, sources []int32, gt *exact.Result,
	run func(u graph.NodeID) (map[graph.NodeID]float64, error)) (Fig5Result, error) {
	var total time.Duration
	var mes []float64
	for _, u := range sources {
		start := time.Now()
		scores, err := run(graph.NodeID(u))
		total += time.Since(start)
		if err != nil {
			return Fig5Result{}, fmt.Errorf("bench: %s on %s (source %d): %w", algo, dataset, u, err)
		}
		mes = append(mes, metrics.MaxError(gt.SingleSource(graph.NodeID(u)), scores))
	}
	return Fig5Result{
		Dataset:   dataset,
		Algorithm: algo,
		MeanTime:  total / time.Duration(len(sources)),
		MeanME:    metrics.MeanFloat(mes),
	}, nil
}

func diGraphOf(g *graph.Graph) *graph.DiGraph {
	d := graph.NewDiGraph(g.NumNodes(), g.Directed())
	for _, e := range g.Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			panic(fmt.Sprintf("bench: converting frozen graph: %v", err))
		}
	}
	return d
}
