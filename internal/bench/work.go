package bench

import (
	"fmt"
	"sort"
	"strings"

	"crashsim/internal/obs"
)

// WorkMeter attributes obs.Default counter traffic to one experiment
// run, so paper-repro reports carry the Monte-Carlo work actually done
// (walks sampled, candidates pruned, scores reused by the temporal
// pruning rules, scratch-pool behavior) next to the timings — the same
// counters the serving path exports through /metrics.
type WorkMeter struct {
	before obs.Snapshot
}

// StartWork snapshots the process-wide counters; call before a run.
func StartWork() *WorkMeter {
	return &WorkMeter{before: obs.Default.Snapshot()}
}

// Lines renders the counter deltas since StartWork as report footer
// lines (prefixed "work:"), skipping zero counters. The output is
// sorted, so reports stay diffable across runs of equal work.
func (w *WorkMeter) Lines() []string {
	d := obs.Default.Snapshot().Delta(w.before)
	names := make([]string, 0, len(d.Counters))
	for name, v := range d.Counters {
		if v != 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, d.Counters[name]))
	}
	lines := []string{"work: " + strings.Join(parts, " ")}
	if h, ok := d.Histograms["engine.crashsim.latency"]; ok && h.Count > 0 {
		lines = append(lines, fmt.Sprintf(
			"work: crashsim query latency p50=%.4gs p99=%.4gs mean=%.4gs over %d queries",
			h.Quantile(0.5), h.Quantile(0.99), h.SumSeconds/float64(h.Count), h.Count))
	}
	return lines
}
