// Package gen provides synthetic graph and temporal-workload generators.
//
// The paper evaluates on five SNAP datasets (Table III) that are not
// available offline, so gen supplies the closest synthetic equivalents:
// random-graph models matching each dataset's type, size and degree skew,
// plus a temporal churn process that evolves a base graph through the
// small per-snapshot edge changes CrashSim-T's pruning exploits. All
// generators are deterministic for a given seed.
package gen

import (
	"fmt"
	"math"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// ErdosRenyi samples a uniform random simple graph with exactly m edges
// (directed arcs, or undirected edges) over n nodes.
func ErdosRenyi(n, m int, directed bool, seed uint64) ([]graph.Edge, error) {
	maxEdges := n * (n - 1)
	if !directed {
		maxEdges /= 2
	}
	if m > maxEdges {
		return nil, fmt.Errorf("gen: %d edges exceed maximum %d for n=%d", m, maxEdges, n)
	}
	r := rng.New(seed)
	set := newEdgeSet(directed, m)
	for set.Len() < m {
		x := graph.NodeID(r.IntN(n))
		y := graph.NodeID(r.IntN(n))
		if x == y {
			continue
		}
		set.Add(graph.Edge{X: x, Y: y})
	}
	return set.Slice(), nil
}

// PreferentialAttachment grows a Barabási–Albert style graph: nodes
// arrive one at a time and attach k edges to existing nodes chosen
// proportionally to degree (plus one, so isolated nodes remain
// reachable). For directed graphs the new node points at the chosen
// targets, giving the in-degree power law seen in citation networks.
func PreferentialAttachment(n, k int, directed bool, seed uint64) ([]graph.Edge, error) {
	if k < 1 || n < k+1 {
		return nil, fmt.Errorf("gen: preferential attachment needs n > k >= 1 (n=%d, k=%d)", n, k)
	}
	r := rng.New(seed)
	set := newEdgeSet(directed, n*k)
	// repeated holds one entry per degree unit; sampling from it is
	// sampling proportional to degree.
	repeated := make([]graph.NodeID, 0, 2*n*k+n)
	for v := 0; v <= k; v++ {
		repeated = append(repeated, graph.NodeID(v))
	}
	// Seed clique over the first k+1 nodes.
	for x := 0; x <= k; x++ {
		for y := x + 1; y <= k; y++ {
			set.Add(graph.Edge{X: graph.NodeID(x), Y: graph.NodeID(y)})
		}
	}
	for v := k + 1; v < n; v++ {
		src := graph.NodeID(v)
		added := 0
		for attempts := 0; added < k && attempts < 50*k; attempts++ {
			tgt := repeated[r.IntN(len(repeated))]
			if tgt == src {
				continue
			}
			if set.Add(graph.Edge{X: src, Y: tgt}) {
				repeated = append(repeated, tgt)
				added++
			}
		}
		repeated = append(repeated, src)
	}
	return set.Slice(), nil
}

// ChungLu samples a simple graph whose expected degree sequence follows a
// power law with the given exponent, scaled so the expected edge count is
// approximately m. It captures the heavy-tailed in-degree distributions
// of the voting and AS topologies.
func ChungLu(n, m int, exponent float64, directed bool, seed uint64) ([]graph.Edge, error) {
	if exponent <= 1 {
		return nil, fmt.Errorf("gen: power-law exponent must exceed 1, got %g", exponent)
	}
	r := rng.New(seed)
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		// w_i ∝ (i+1)^(-1/(exponent-1)) is the standard rank-based
		// power-law weight assignment.
		weights[i] = math.Pow(float64(i+1), -1/(exponent-1))
		total += weights[i]
	}
	// Cumulative table for O(log n) weighted sampling.
	cum := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc
	}
	sample := func() graph.NodeID {
		x := r.Float64() * total
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return graph.NodeID(lo)
	}
	set := newEdgeSet(directed, m)
	for attempts := 0; set.Len() < m && attempts < 100*m; attempts++ {
		x, y := sample(), sample()
		if x == y {
			continue
		}
		set.Add(graph.Edge{X: x, Y: y})
	}
	if set.Len() < m {
		return nil, fmt.Errorf("gen: Chung-Lu sampler could not place %d edges (placed %d)", m, set.Len())
	}
	return set.Slice(), nil
}

// SmallWorld builds a Watts–Strogatz ring lattice over n nodes with k
// neighbors per side and rewiring probability beta. Always undirected.
func SmallWorld(n, k int, beta float64, seed uint64) ([]graph.Edge, error) {
	if k < 1 || 2*k >= n {
		return nil, fmt.Errorf("gen: small world needs 1 <= k < n/2 (n=%d, k=%d)", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: rewiring probability %g outside [0,1]", beta)
	}
	r := rng.New(seed)
	set := newEdgeSet(false, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			set.Add(graph.Edge{X: graph.NodeID(v), Y: graph.NodeID((v + j) % n)})
		}
	}
	edges := set.Slice()
	for i, e := range edges {
		if r.Float64() >= beta {
			continue
		}
		for attempts := 0; attempts < 50; attempts++ {
			y := graph.NodeID(r.IntN(n))
			if y == e.X || set.Has(graph.Edge{X: e.X, Y: y}) {
				continue
			}
			set.Remove(e)
			set.Add(graph.Edge{X: e.X, Y: y})
			edges[i] = graph.Edge{X: e.X, Y: y}
			break
		}
	}
	return set.Slice(), nil
}

// BuildStatic freezes an edge list into an immutable graph.
func BuildStatic(n int, directed bool, edges []graph.Edge) (*graph.Graph, error) {
	return graph.NewBuilder(n, directed).AddEdges(edges).Freeze()
}

// edgeSet is a deduplicating edge container with O(1) add, remove,
// membership, and uniform sampling — the core of the churn process.
type edgeSet struct {
	directed bool
	idx      map[graph.Edge]int
	list     []graph.Edge
}

func newEdgeSet(directed bool, capacity int) *edgeSet {
	return &edgeSet{directed: directed, idx: make(map[graph.Edge]int, capacity)}
}

func (s *edgeSet) canon(e graph.Edge) graph.Edge {
	if !s.directed && e.X > e.Y {
		e.X, e.Y = e.Y, e.X
	}
	return e
}

func (s *edgeSet) Len() int { return len(s.list) }

func (s *edgeSet) Has(e graph.Edge) bool {
	_, ok := s.idx[s.canon(e)]
	return ok
}

func (s *edgeSet) Add(e graph.Edge) bool {
	ce := s.canon(e)
	if _, ok := s.idx[ce]; ok {
		return false
	}
	s.idx[ce] = len(s.list)
	s.list = append(s.list, ce)
	return true
}

func (s *edgeSet) Remove(e graph.Edge) bool {
	ce := s.canon(e)
	i, ok := s.idx[ce]
	if !ok {
		return false
	}
	last := s.list[len(s.list)-1]
	s.list[i] = last
	s.idx[last] = i
	s.list = s.list[:len(s.list)-1]
	delete(s.idx, ce)
	return true
}

func (s *edgeSet) SampleIndex(r *rng.Source) graph.Edge {
	return s.list[r.IntN(len(s.list))]
}

func (s *edgeSet) Slice() []graph.Edge {
	return append([]graph.Edge(nil), s.list...)
}
