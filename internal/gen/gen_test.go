package gen

import (
	"testing"
	"testing/quick"

	"crashsim/internal/graph"
)

func TestErdosRenyiExactEdgeCount(t *testing.T) {
	for _, directed := range []bool{true, false} {
		edges, err := ErdosRenyi(50, 120, directed, 1)
		if err != nil {
			t.Fatalf("ErdosRenyi(directed=%t): %v", directed, err)
		}
		g, err := BuildStatic(50, directed, edges)
		if err != nil {
			t.Fatalf("BuildStatic: %v", err)
		}
		if g.NumEdges() != 120 {
			t.Errorf("directed=%t: edges = %d, want 120", directed, g.NumEdges())
		}
	}
}

func TestErdosRenyiTooDense(t *testing.T) {
	if _, err := ErdosRenyi(4, 100, true, 1); err == nil {
		t.Error("over-dense request accepted")
	}
}

func TestErdosRenyiDeterminism(t *testing.T) {
	a, err := ErdosRenyi(30, 60, true, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ErdosRenyi(30, 60, true, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPreferentialAttachment(t *testing.T) {
	edges, err := PreferentialAttachment(200, 3, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildStatic(200, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	// Each of the n-k-1 arriving nodes adds ~k edges plus the seed clique.
	if s.Edges < 500 || s.Edges > 200*3+10 {
		t.Errorf("edge count %d outside plausible range", s.Edges)
	}
	// Power-law graphs must have a hub far above the mean degree.
	if s.MaxInDeg < 3*int(s.MeanInDeg) {
		t.Errorf("max in-degree %d too small for preferential attachment (mean %.1f)", s.MaxInDeg, s.MeanInDeg)
	}
	if _, err := PreferentialAttachment(3, 3, true, 1); err == nil {
		t.Error("n <= k accepted")
	}
}

func TestChungLu(t *testing.T) {
	edges, err := ChungLu(300, 900, 2.2, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildStatic(300, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 900 {
		t.Errorf("edges = %d, want 900", g.NumEdges())
	}
	s := graph.ComputeStats(g)
	if s.MaxInDeg < 2*int(s.MeanInDeg) {
		t.Errorf("degree distribution not skewed: max %d, mean %.1f", s.MaxInDeg, s.MeanInDeg)
	}
	if _, err := ChungLu(10, 5, 0.5, true, 1); err == nil {
		t.Error("exponent <= 1 accepted")
	}
}

func TestSmallWorld(t *testing.T) {
	edges, err := SmallWorld(100, 3, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildStatic(100, false, edges)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 300 {
		t.Errorf("edges = %d, want 300 (rewiring preserves count)", g.NumEdges())
	}
	if _, err := SmallWorld(5, 3, 0.1, 1); err == nil {
		t.Error("k >= n/2 accepted")
	}
	if _, err := SmallWorld(100, 3, 1.5, 1); err == nil {
		t.Error("beta > 1 accepted")
	}
}

func TestChurnKeepsHistoryConsistent(t *testing.T) {
	base, err := ErdosRenyi(60, 150, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := Churn(60, true, base, ChurnOptions{Snapshots: 20, AddRate: 0.05, DelRate: 0.05, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumSnapshots() != 20 {
		t.Fatalf("snapshots = %d, want 20", tg.NumSnapshots())
	}
	// Edge count should stay near the base size under balanced churn.
	cur, err := tg.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	for {
		m := cur.Working().NumEdges()
		if m < 100 || m > 200 {
			t.Errorf("snapshot %d edge count %d drifted outside [100,200]", cur.T(), m)
		}
		if !cur.Next() {
			break
		}
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
}

func TestChurnValidation(t *testing.T) {
	if _, err := Churn(10, true, nil, ChurnOptions{Snapshots: 0}); err == nil {
		t.Error("zero snapshots accepted")
	}
	if _, err := Churn(10, true, nil, ChurnOptions{Snapshots: 2, AddRate: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	dup := []graph.Edge{{X: 0, Y: 1}, {X: 0, Y: 1}}
	if _, err := Churn(10, true, dup, ChurnOptions{Snapshots: 2}); err == nil {
		t.Error("duplicate base edge accepted")
	}
}

// TestChurnDeltasAreSmall property-checks that each transition changes at
// most the requested fraction of edges — the pruning opportunity
// CrashSim-T exploits.
func TestChurnDeltasAreSmall(t *testing.T) {
	f := func(seed uint64) bool {
		base, err := ErdosRenyi(40, 100, true, seed)
		if err != nil {
			return false
		}
		tg, err := Churn(40, true, base, ChurnOptions{Snapshots: 10, AddRate: 0.02, DelRate: 0.02, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < tg.NumSnapshots()-1; i++ {
			if tg.Delta(i).Size() > 8 { // 2 + 2 edges of 100, with slack
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestChurnActiveFraction(t *testing.T) {
	base, err := ErdosRenyi(50, 120, true, 23)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := Churn(50, true, base, ChurnOptions{
		Snapshots: 40, AddRate: 0.05, DelRate: 0.05, ActiveFraction: 0.3, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	quiet, active := 0, 0
	for i := 0; i < tg.NumSnapshots()-1; i++ {
		if tg.Delta(i).Size() == 0 {
			quiet++
		} else {
			active++
		}
	}
	// With ActiveFraction 0.3 over 39 transitions, expect far more quiet
	// than active steps (deterministic for the fixed seed).
	if quiet <= active {
		t.Errorf("quiet=%d active=%d; expected mostly quiet transitions", quiet, active)
	}
	if active == 0 {
		t.Error("no active transitions at all")
	}
	if _, err := Churn(50, true, base, ChurnOptions{Snapshots: 2, ActiveFraction: 2}); err == nil {
		t.Error("active fraction > 1 accepted")
	}
}

func TestProfiles(t *testing.T) {
	ps := Profiles()
	if len(ps) != 5 {
		t.Fatalf("have %d profiles, want 5 (Table III)", len(ps))
	}
	want := map[string]struct {
		directed bool
		n, m, t  int
	}{
		"as-733":    {false, 6474, 13233, 733},
		"as-caida":  {true, 26475, 106762, 122},
		"wiki-vote": {true, 7115, 103689, 100},
		"hepth":     {false, 9877, 25998, 100},
		"hepph":     {true, 34546, 421578, 100},
	}
	for _, p := range ps {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %q", p.Name)
			continue
		}
		if p.Directed != w.directed || p.Nodes != w.n || p.Edges != w.m || p.Snapshots != w.t {
			t.Errorf("profile %q = %+v, want %+v", p.Name, p, w)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
	p, err := ProfileByName("as-733")
	if err != nil || p.Name != "as-733" {
		t.Errorf("ProfileByName: %v, %v", p, err)
	}
}

func TestProfileScaled(t *testing.T) {
	p, err := ProfileByName("hepph")
	if err != nil {
		t.Fatal(err)
	}
	q := p.Scaled(0.1)
	if q.Nodes < 3000 || q.Nodes > 4000 {
		t.Errorf("scaled nodes = %d, want ~3455", q.Nodes)
	}
	if q.Edges < 40000 || q.Edges > 45000 {
		t.Errorf("scaled edges = %d, want ~42158", q.Edges)
	}
	if same := p.Scaled(1.0); same != p {
		t.Error("scale 1.0 should be identity")
	}
	if same := p.Scaled(-1); same != p {
		t.Error("invalid scale should be identity")
	}
	if got := p.WithSnapshots(17); got.Snapshots != 17 {
		t.Errorf("WithSnapshots = %d", got.Snapshots)
	}
}

func TestProfileStaticGeneratesRequestedShape(t *testing.T) {
	for _, name := range []string{"as-733", "wiki-vote", "hepth"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p = p.Scaled(0.05)
		g, err := p.Static(3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumNodes() != p.Nodes {
			t.Errorf("%s: nodes = %d, want %d", name, g.NumNodes(), p.Nodes)
		}
		if g.Directed() != p.Directed {
			t.Errorf("%s: directed = %t, want %t", name, g.Directed(), p.Directed)
		}
		// Edge counts are approximate for preferential attachment.
		m := g.NumEdges()
		if m < p.Edges/2 || m > 2*p.Edges {
			t.Errorf("%s: edges = %d, want within 2x of %d", name, m, p.Edges)
		}
	}
}

func TestProfileTemporal(t *testing.T) {
	p, err := ProfileByName("as-733")
	if err != nil {
		t.Fatal(err)
	}
	p = p.Scaled(0.03).WithSnapshots(12)
	tg, err := p.Temporal(5)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumSnapshots() != 12 {
		t.Errorf("snapshots = %d, want 12", tg.NumSnapshots())
	}
	if tg.NumNodes() != p.Nodes {
		t.Errorf("nodes = %d, want %d", tg.NumNodes(), p.Nodes)
	}
	// At least one transition must carry changes; otherwise CrashSim-T's
	// pruning experiments are vacuous.
	changed := 0
	for i := 0; i < tg.NumSnapshots()-1; i++ {
		changed += tg.Delta(i).Size()
	}
	if changed == 0 {
		t.Error("no churn in temporal profile")
	}
}

func TestBipartiteValidation(t *testing.T) {
	cases := []BipartiteOptions{
		{Users: 1, Items: 10},                                      // too few users
		{Users: 10, Items: 1},                                      // too few items
		{Users: 10, Items: 10, Groups: 20},                         // groups > items
		{Users: 10, Items: 10, Groups: 2, PurchasesPerUser: 9},     // pool too small
		{Users: 10, Items: 10, DriftRate: 2},                       // bad rate
		{Users: 10, Items: 10, SwitchRate: -1},                     // bad rate
		{Users: 10, Items: 10, Snapshots: -1, PurchasesPerUser: 1}, // bad snapshots
	}
	for i, o := range cases {
		if _, _, err := Bipartite(o); err == nil {
			t.Errorf("case %d (%+v) accepted", i, o)
		}
	}
}

func TestBipartiteGroupsAndDrift(t *testing.T) {
	o := BipartiteOptions{
		Users: 16, Items: 32, Groups: 4, PurchasesPerUser: 4,
		Snapshots: 6, DriftRate: 1, SwitchRate: 0, Seed: 9,
	}
	tg, groups, err := Bipartite(o)
	if err != nil {
		t.Fatal(err)
	}
	// SwitchRate 0: groups never change across snapshots.
	for t2 := 1; t2 < len(groups); t2++ {
		for u := range groups[t2] {
			if groups[t2][u] != groups[0][u] {
				t.Fatalf("user %d changed group at t=%d despite SwitchRate=0", u, t2)
			}
		}
	}
	// DriftRate 1: every non-initial transition must carry some change.
	for i := 0; i < tg.NumSnapshots()-1; i++ {
		if tg.Delta(i).Size() == 0 {
			t.Errorf("transition %d has no drift despite DriftRate=1", i)
		}
	}
	// ItemNode maps into the item id range.
	if got := o.ItemNode(0); int(got) != o.Users {
		t.Errorf("ItemNode(0) = %d, want %d", got, o.Users)
	}
	// Users only ever purchase from their group's pool: user u in group
	// g buys items in [g*pool, (g+1)*pool).
	pool := o.Items / o.Groups
	for ti := 0; ti < tg.NumSnapshots(); ti++ {
		g, err := tg.Snapshot(ti)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < o.Users; u++ {
			grp := groups[ti][u]
			for _, it := range g.In(graph.NodeID(u)) {
				idx := int(it) - o.Users
				if idx < grp*pool || idx >= (grp+1)*pool {
					t.Fatalf("snapshot %d: user %d (group %d) owns out-of-pool item %d", ti, u, grp, idx)
				}
			}
		}
	}
}

func TestBipartiteSwitchChangesGroups(t *testing.T) {
	o := BipartiteOptions{
		Users: 20, Items: 40, Groups: 4, PurchasesPerUser: 4,
		Snapshots: 8, DriftRate: 0, SwitchRate: 0.5, Seed: 3,
	}
	_, groups, err := Bipartite(o)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	last := len(groups) - 1
	for u := range groups[0] {
		if groups[last][u] != groups[0][u] {
			changed = true
		}
	}
	if !changed {
		t.Error("no user switched groups despite SwitchRate=0.5 over 8 snapshots")
	}
}

func TestModelString(t *testing.T) {
	if ModelPrefAttach.String() != "pref-attach" ||
		ModelChungLu.String() != "chung-lu" ||
		ModelErdosRenyi.String() != "erdos-renyi" {
		t.Error("model strings wrong")
	}
	if Model(42).String() == "" {
		t.Error("unknown model should stringify")
	}
}

func TestServingProfileWeb1m(t *testing.T) {
	p, err := ProfileByName("web-1m")
	if err != nil {
		t.Fatal(err)
	}
	if p.Edges < 1_000_000 {
		t.Fatalf("web-1m declares %d edges, serving benchmarks need >= 10^6", p.Edges)
	}
	// Serving profiles stay out of the paper set: the committed
	// BENCH_crashsim.json baseline iterates Profiles(), and growing it
	// would silently change every recorded comparison.
	for _, q := range Profiles() {
		if q.Name == p.Name {
			t.Fatalf("serving profile %q leaked into Profiles()", p.Name)
		}
	}
	found := false
	for _, q := range ServingProfiles() {
		found = found || q.Name == p.Name
	}
	if !found {
		t.Fatal("web-1m missing from ServingProfiles()")
	}
	// Generating the full 10^6-edge graph in a unit test would cost
	// seconds; a scaled instance exercises the same generator path.
	small := p.Scaled(0.005)
	g, err := small.Static(42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != small.Nodes || g.NumEdges() == 0 {
		t.Fatalf("scaled web-1m generated n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}
