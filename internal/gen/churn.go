package gen

import (
	"fmt"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
	"crashsim/internal/temporal"
)

// ChurnOptions controls the temporal evolution process. Starting from a
// base edge set, each snapshot transition deletes DelRate·m random edges
// and inserts AddRate·m fresh ones (m = current edge count), so the graph
// size stays roughly stable while the edge identity drifts — the change
// pattern of the AS topologies the paper uses.
type ChurnOptions struct {
	Snapshots int     // total number of snapshots T (>= 1)
	AddRate   float64 // fraction of edges inserted per transition
	DelRate   float64 // fraction of edges deleted per transition
	// ActiveFraction is the probability that a transition carries any
	// change at all; the rest are quiet (empty deltas), matching the
	// bursty evolution of real snapshot datasets like AS-733, where many
	// consecutive daily snapshots are identical. 0 defaults to 1 (every
	// transition churns).
	ActiveFraction float64
	Seed           uint64
}

// Validate checks the options.
func (o ChurnOptions) Validate() error {
	if o.Snapshots < 1 {
		return fmt.Errorf("gen: churn needs at least 1 snapshot, got %d", o.Snapshots)
	}
	if o.AddRate < 0 || o.DelRate < 0 || o.AddRate > 1 || o.DelRate > 1 {
		return fmt.Errorf("gen: churn rates must be in [0,1] (add=%g, del=%g)", o.AddRate, o.DelRate)
	}
	if o.ActiveFraction < 0 || o.ActiveFraction > 1 {
		return fmt.Errorf("gen: active fraction %g outside [0,1]", o.ActiveFraction)
	}
	return nil
}

// Churn evolves the base edge set over o.Snapshots instants and returns
// the resulting temporal graph.
func Churn(n int, directed bool, base []graph.Edge, o ChurnOptions) (*temporal.Graph, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(o.Seed)
	set := newEdgeSet(directed, len(base))
	for _, e := range base {
		if !set.Add(e) {
			return nil, fmt.Errorf("gen: duplicate base edge (%d,%d)", e.X, e.Y)
		}
	}
	active := o.ActiveFraction
	if active == 0 {
		active = 1
	}
	deltas := make([]temporal.Delta, 0, o.Snapshots-1)
	for t := 1; t < o.Snapshots; t++ {
		var d temporal.Delta
		if r.Float64() >= active {
			deltas = append(deltas, d) // quiet transition
			continue
		}
		m := set.Len()
		nDel := int(o.DelRate * float64(m))
		nAdd := int(o.AddRate * float64(m))
		for i := 0; i < nDel && set.Len() > 0; i++ {
			e := set.SampleIndex(r)
			set.Remove(e)
			d.Del = append(d.Del, e)
		}
		for i := 0; i < nAdd; i++ {
			e, ok := sampleMissing(n, set, r)
			if !ok {
				break
			}
			set.Add(e)
			d.Add = append(d.Add, e)
		}
		deltas = append(deltas, d)
	}
	return temporal.New(n, directed, base, deltas)
}

// sampleMissing draws a uniform non-existing, non-loop edge by rejection.
func sampleMissing(n int, set *edgeSet, r *rng.Source) (graph.Edge, bool) {
	for attempts := 0; attempts < 1000; attempts++ {
		x := graph.NodeID(r.IntN(n))
		y := graph.NodeID(r.IntN(n))
		if x == y {
			continue
		}
		e := graph.Edge{X: x, Y: y}
		if !set.Has(e) {
			return set.canon(e), true
		}
	}
	return graph.Edge{}, false
}
