package gen

import (
	"fmt"
	"math"
	"sort"

	"crashsim/internal/graph"
	"crashsim/internal/temporal"
)

// Model selects the random-graph family a profile is generated from.
type Model int

const (
	// ModelPrefAttach is Barabási–Albert preferential attachment:
	// citation-style graphs with power-law in-degree (HepTh, HepPh).
	ModelPrefAttach Model = iota
	// ModelChungLu is a power-law expected-degree model: voting and
	// AS-router topologies (Wiki-Vote, AS-733, AS-Caida).
	ModelChungLu
	// ModelErdosRenyi is the uniform random graph, used for controlled
	// ablation workloads rather than any paper dataset.
	ModelErdosRenyi
)

func (m Model) String() string {
	switch m {
	case ModelPrefAttach:
		return "pref-attach"
	case ModelChungLu:
		return "chung-lu"
	case ModelErdosRenyi:
		return "erdos-renyi"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Profile describes a synthetic stand-in for one of the paper's datasets
// (Table III): same type, node count, edge count and snapshot count, with
// a generator matched to the dataset family. ChurnRate sets the fraction
// of edges inserted and deleted per snapshot transition.
type Profile struct {
	Name      string
	Directed  bool
	Nodes     int
	Edges     int
	Snapshots int
	Model     Model
	Exponent  float64 // power-law exponent for ModelChungLu
	ChurnRate float64
	// ActiveFraction is the fraction of snapshot transitions carrying
	// any change; real snapshot histories (e.g. daily AS dumps) have
	// many quiet days, the pruning opportunity CrashSim-T exploits.
	ActiveFraction float64
}

// Table III of the paper.
var profiles = []Profile{
	{Name: "as-733", Directed: false, Nodes: 6474, Edges: 13233, Snapshots: 733, Model: ModelChungLu, Exponent: 2.2, ChurnRate: 0.005, ActiveFraction: 0.4},
	{Name: "as-caida", Directed: true, Nodes: 26475, Edges: 106762, Snapshots: 122, Model: ModelChungLu, Exponent: 2.1, ChurnRate: 0.005, ActiveFraction: 0.6},
	{Name: "wiki-vote", Directed: true, Nodes: 7115, Edges: 103689, Snapshots: 100, Model: ModelChungLu, Exponent: 1.9, ChurnRate: 0.01, ActiveFraction: 0.7},
	{Name: "hepth", Directed: false, Nodes: 9877, Edges: 25998, Snapshots: 100, Model: ModelPrefAttach, ChurnRate: 0.01, ActiveFraction: 0.5},
	{Name: "hepph", Directed: true, Nodes: 34546, Edges: 421578, Snapshots: 100, Model: ModelPrefAttach, ChurnRate: 0.01, ActiveFraction: 0.5},
}

// servingProfiles are workload-scale profiles beyond the paper's Table
// III, sized so the serving stack (result cache, admission control,
// batch pipeline) is measured under real memory and cache pressure.
// They are reachable by name (ProfileByName) but deliberately excluded
// from Profiles(): the paper-reproduction experiments and the
// BENCH_crashsim.json baseline iterate Profiles(), and growing that
// set would silently change every committed comparison.
var servingProfiles = []Profile{
	// web-1m: a directed power-law graph at 10⁶+ edges, the scale the
	// open-loop serving benchmark (bench.Serving) runs its rate ladder
	// against. Exponent and mean degree sit between wiki-vote and
	// as-caida, giving the hub-heavy in-degree skew that makes hot
	// Zipf sources expensive and the query cache worth measuring.
	{Name: "web-1m", Directed: true, Nodes: 300000, Edges: 1200000, Snapshots: 10, Model: ModelChungLu, Exponent: 2.0, ChurnRate: 0.002, ActiveFraction: 0.5},
}

// Profiles returns the five dataset profiles in the paper's order.
func Profiles() []Profile {
	return append([]Profile(nil), profiles...)
}

// ServingProfiles returns the workload-scale profiles (not part of the
// paper's Table III set).
func ServingProfiles() []Profile {
	return append([]Profile(nil), servingProfiles...)
}

// ProfileByName looks a profile up by its dataset name, covering both
// the paper's Table III set and the workload-scale serving profiles.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range servingProfiles {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, len(profiles)+len(servingProfiles))
	for _, p := range profiles {
		names = append(names, p.Name)
	}
	for _, p := range servingProfiles {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return Profile{}, fmt.Errorf("gen: unknown profile %q (have %v)", name, names)
}

// Scaled returns a copy of p with node and edge counts multiplied by
// scale (>= some small floor so the graph stays meaningful) while keeping
// average degree, direction and model. Snapshot count is unchanged; use
// WithSnapshots to shrink histories.
func (p Profile) Scaled(scale float64) Profile {
	if scale <= 0 || scale >= 1 {
		return p
	}
	q := p
	q.Nodes = maxInt(64, int(math.Round(float64(p.Nodes)*scale)))
	q.Edges = maxInt(q.Nodes, int(math.Round(float64(p.Edges)*scale)))
	maxE := q.Nodes * (q.Nodes - 1)
	if !q.Directed {
		maxE /= 2
	}
	if q.Edges > maxE {
		q.Edges = maxE
	}
	return q
}

// WithSnapshots returns a copy of p with the snapshot count replaced.
func (p Profile) WithSnapshots(t int) Profile {
	q := p
	if t >= 1 {
		q.Snapshots = t
	}
	return q
}

// StaticEdges generates the base (snapshot 0) edge set of the profile.
func (p Profile) StaticEdges(seed uint64) ([]graph.Edge, error) {
	switch p.Model {
	case ModelPrefAttach:
		k := maxInt(1, int(math.Round(float64(p.Edges)/float64(p.Nodes))))
		return PreferentialAttachment(p.Nodes, k, p.Directed, seed)
	case ModelChungLu:
		return ChungLu(p.Nodes, p.Edges, p.Exponent, p.Directed, seed)
	case ModelErdosRenyi:
		return ErdosRenyi(p.Nodes, p.Edges, p.Directed, seed)
	default:
		return nil, fmt.Errorf("gen: profile %q has unknown model %v", p.Name, p.Model)
	}
}

// Static generates the profile's base snapshot as an immutable graph.
func (p Profile) Static(seed uint64) (*graph.Graph, error) {
	edges, err := p.StaticEdges(seed)
	if err != nil {
		return nil, err
	}
	return BuildStatic(p.Nodes, p.Directed, edges)
}

// Temporal generates the full temporal graph: the base snapshot evolved
// through p.Snapshots instants of churn.
func (p Profile) Temporal(seed uint64) (*temporal.Graph, error) {
	edges, err := p.StaticEdges(seed)
	if err != nil {
		return nil, err
	}
	return Churn(p.Nodes, p.Directed, edges, ChurnOptions{
		Snapshots:      p.Snapshots,
		AddRate:        p.ChurnRate,
		DelRate:        p.ChurnRate,
		ActiveFraction: p.ActiveFraction,
		Seed:           seed + 1,
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
