package gen

import (
	"fmt"
	"math"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// ZipfSources draws k query sources from pool with a rank-based Zipf
// skew: pool[i] is chosen with probability proportional to (i+1)^(-s),
// so early pool entries dominate the sample the way a few hot nodes
// dominate real query logs. Repeats are expected — they are the point:
// the batched query pipeline and the query cache both exploit repeated
// sources, and a uniform sampler would hide that. s = 0 degrades to
// uniform sampling; s around 1–1.5 matches commonly reported query-log
// skews. The draw is deterministic for a given (pool, k, s, seed).
func ZipfSources(pool []graph.NodeID, k int, s float64, seed uint64) ([]graph.NodeID, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("gen: zipf sources need a non-empty pool")
	}
	if k < 0 {
		return nil, fmt.Errorf("gen: zipf sources need k >= 0, got %d", k)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("gen: zipf exponent must be finite and >= 0, got %g", s)
	}
	// Cumulative rank weights for O(log n) inverse-CDF sampling, same
	// technique as ChungLu's degree-weight table.
	cum := make([]float64, len(pool))
	acc := 0.0
	for i := range pool {
		acc += math.Pow(float64(i+1), -s)
		cum[i] = acc
	}
	r := rng.New(seed)
	out := make([]graph.NodeID, k)
	for j := range out {
		x := r.Float64() * acc
		lo, hi := 0, len(pool)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[j] = pool[lo]
	}
	return out, nil
}
