package gen

import (
	"fmt"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
	"crashsim/internal/temporal"
)

// BipartiteOptions configures the user–item purchase-graph generator
// behind the paper's Example 1 (product recommendation): users belong
// to taste groups that buy from group-specific item pools, interests
// drift over time, and a fraction of users change groups mid-history —
// the "momentarily similar" users a temporal query must filter out.
type BipartiteOptions struct {
	// Users and Items size the two sides; users occupy ids [0, Users)
	// and items [Users, Users+Items).
	Users, Items int
	// Groups is the number of taste groups. Default 4.
	Groups int
	// PurchasesPerUser is the number of live purchases per user per
	// snapshot. Default 5.
	PurchasesPerUser int
	// Snapshots is the history length. Default 8.
	Snapshots int
	// DriftRate is the per-snapshot probability that a user replaces
	// one purchase. 0 means purchases never drift (0 is meaningful, so
	// no default is applied).
	DriftRate float64
	// SwitchRate is the per-snapshot probability that a user changes
	// taste groups entirely. 0 means groups are permanent.
	SwitchRate float64
	Seed       uint64
}

func (o BipartiteOptions) withDefaults() BipartiteOptions {
	if o.Groups == 0 {
		o.Groups = 4
	}
	if o.PurchasesPerUser == 0 {
		o.PurchasesPerUser = 5
	}
	if o.Snapshots == 0 {
		o.Snapshots = 8
	}
	return o
}

// Validate checks option ranges after defaulting.
func (o BipartiteOptions) Validate() error {
	q := o.withDefaults()
	if q.Users < 2 || q.Items < 2 {
		return fmt.Errorf("gen: bipartite needs >= 2 users and items (got %d, %d)", q.Users, q.Items)
	}
	if q.Groups < 1 || q.Groups > q.Items {
		return fmt.Errorf("gen: groups %d outside [1, items]", q.Groups)
	}
	if q.PurchasesPerUser < 1 || q.PurchasesPerUser > q.Items/q.Groups {
		return fmt.Errorf("gen: purchases per user %d outside [1, items/groups=%d]", q.PurchasesPerUser, q.Items/q.Groups)
	}
	if q.Snapshots < 1 {
		return fmt.Errorf("gen: need >= 1 snapshot")
	}
	if q.DriftRate < 0 || q.DriftRate > 1 || q.SwitchRate < 0 || q.SwitchRate > 1 {
		return fmt.Errorf("gen: rates outside [0,1]")
	}
	return nil
}

// ItemNode maps item index i to its node id under these options.
func (o BipartiteOptions) ItemNode(i int) graph.NodeID {
	return graph.NodeID(o.Users + i)
}

// Bipartite generates the temporal purchase graph (undirected user–item
// edges) plus each user's taste group per snapshot, which tests and
// demos use as ground truth for "who is genuinely similar".
func Bipartite(o BipartiteOptions) (*temporal.Graph, [][]int, error) {
	q := o.withDefaults()
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	r := rng.New(q.Seed)
	poolSize := q.Items / q.Groups
	groupItem := func(group, j int) graph.NodeID {
		return q.ItemNode(group*poolSize + j%poolSize)
	}

	groups := make([]int, q.Users)
	for u := range groups {
		groups[u] = u % q.Groups
	}
	// Current purchases per user, as item node ids.
	purchases := make([][]graph.NodeID, q.Users)
	for u := range purchases {
		seen := map[graph.NodeID]bool{}
		for len(purchases[u]) < q.PurchasesPerUser {
			it := groupItem(groups[u], r.IntN(poolSize))
			if !seen[it] {
				seen[it] = true
				purchases[u] = append(purchases[u], it)
			}
		}
	}

	snaps := make([][]graph.Edge, q.Snapshots)
	groupHistory := make([][]int, q.Snapshots)
	for t := 0; t < q.Snapshots; t++ {
		if t > 0 {
			for u := range purchases {
				if r.Float64() < q.SwitchRate {
					groups[u] = (groups[u] + 1 + r.IntN(q.Groups-1)) % q.Groups
					purchases[u] = resample(q, groups[u], groupItem, r)
				} else if r.Float64() < q.DriftRate {
					// Replace one purchase within the group pool.
					idx := r.IntN(len(purchases[u]))
					for tries := 0; tries < 20; tries++ {
						it := groupItem(groups[u], r.IntN(poolSize))
						if !contains(purchases[u], it) {
							purchases[u][idx] = it
							break
						}
					}
				}
			}
		}
		groupHistory[t] = append([]int(nil), groups...)
		for u, items := range purchases {
			for _, it := range items {
				snaps[t] = append(snaps[t], graph.Edge{X: graph.NodeID(u), Y: it})
			}
		}
	}
	tg, err := temporal.FromSnapshots(q.Users+q.Items, false, snaps)
	if err != nil {
		return nil, nil, err
	}
	return tg, groupHistory, nil
}

func resample(q BipartiteOptions, group int, groupItem func(int, int) graph.NodeID, r *rng.Source) []graph.NodeID {
	poolSize := q.Items / q.Groups
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for len(out) < q.PurchasesPerUser {
		it := groupItem(group, r.IntN(poolSize))
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
		}
	}
	return out
}

func contains(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
