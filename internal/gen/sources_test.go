package gen

import (
	"testing"

	"crashsim/internal/graph"
)

func TestZipfSources(t *testing.T) {
	pool := make([]graph.NodeID, 100)
	for i := range pool {
		pool[i] = graph.NodeID(i * 3) // sparse ids: results must come from the pool, not [0,n)
	}

	a, err := ZipfSources(pool, 500, 1.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ZipfSources(pool, 500, 1.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 500 {
		t.Fatalf("got %d sources, want 500", len(a))
	}
	counts := map[graph.NodeID]int{}
	for i, v := range a {
		if v != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, v, b[i])
		}
		if v%3 != 0 || int(v) >= 300 {
			t.Fatalf("sample %d not from the pool", v)
		}
		counts[v]++
	}
	// Rank-based skew: the head of the pool must dominate the tail.
	head := counts[pool[0]] + counts[pool[1]] + counts[pool[2]]
	tail := counts[pool[97]] + counts[pool[98]] + counts[pool[99]]
	if head <= 5*tail {
		t.Errorf("zipf skew too flat: head 3 ranks drew %d, tail 3 drew %d", head, tail)
	}
	if head < 100 {
		t.Errorf("head 3 ranks drew only %d of 500 at s=1.3", head)
	}

	// A different seed gives a different draw.
	c, err := ZipfSources(pool, 500, 1.3, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced an identical draw")
	}

	// s = 0 degrades to uniform: no rank should hog the sample.
	u, err := ZipfSources(pool, 2000, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	uc := map[graph.NodeID]int{}
	for _, v := range u {
		uc[v]++
	}
	for v, n := range uc {
		if n > 60 { // E = 20 per rank; 3x is far outside uniform noise
			t.Errorf("uniform draw gave node %d %d of 2000 samples", v, n)
		}
	}

	if got, err := ZipfSources(pool, 0, 1, 1); err != nil || len(got) != 0 {
		t.Errorf("k=0: %v, %v", got, err)
	}
	if _, err := ZipfSources(nil, 5, 1, 1); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := ZipfSources(pool, -1, 1, 1); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := ZipfSources(pool, 5, -0.5, 1); err == nil {
		t.Error("negative exponent accepted")
	}
}
