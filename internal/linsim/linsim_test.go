package linsim

import (
	"math"
	"testing"

	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func TestOptionsValidate(t *testing.T) {
	for _, o := range []Options{{C: 2}, {Eps: 7}, {K: -1}, {DSamples: -1}} {
		if err := o.Validate(); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(graph.PaperExample(), Options{C: 5}); err == nil {
		t.Error("bad options accepted")
	}
	s, err := New(graph.PaperExample(), Options{DSamples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SingleSource(-1); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := s.Sim(0, 99); err == nil {
		t.Error("bad pair accepted")
	}
}

// TestAccuracyAgainstPowerMethod: the deterministic series with the MC
// diagonal must track the exact fixed point on multiple graph shapes.
func TestAccuracyAgainstPowerMethod(t *testing.T) {
	graphs := map[string]*graph.Graph{"paper-example": graph.PaperExample()}
	edges, err := gen.ErdosRenyi(60, 180, true, 91)
	if err != nil {
		t.Fatal(err)
	}
	if graphs["random-er"], err = gen.BuildStatic(60, true, edges); err != nil {
		t.Fatal(err)
	}
	baEdges, err := gen.PreferentialAttachment(80, 3, true, 92)
	if err != nil {
		t.Fatal(err)
	}
	if graphs["random-ba"], err = gen.BuildStatic(80, true, baEdges); err != nil {
		t.Fatal(err)
	}
	for name, g := range graphs {
		gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(g, Options{C: 0.6, DSamples: 600, Seed: 93})
		if err != nil {
			t.Fatal(err)
		}
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u += 11 {
			col, err := s.SingleSource(u)
			if err != nil {
				t.Fatal(err)
			}
			worst := 0.0
			for v := 0; v < g.NumNodes(); v++ {
				if d := math.Abs(col[v] - gt.Sim(u, graph.NodeID(v))); d > worst {
					worst = d
				}
			}
			if worst > 0.06 {
				t.Errorf("%s source %d: max error %.4f above 0.06", name, u, worst)
			}
		}
	}
}

// TestDeterministicQueries: unlike the Monte-Carlo methods, repeated
// queries must be bit-identical (all noise lives in the shared d).
func TestDeterministicQueries(t *testing.T) {
	g := graph.PaperExample()
	s, err := New(g, Options{DSamples: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("repeated query differs at %d", v)
		}
	}
}

func TestDiagonalRange(t *testing.T) {
	g := graph.PaperExample()
	s, err := New(g, Options{C: 0.6, DSamples: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if d := s.D(v); d < 1-0.6-0.1 || d > 1 {
			t.Errorf("d(%d) = %g outside plausible range", v, d)
		}
	}
}

func TestDanglingSource(t *testing.T) {
	g := graph.NewBuilder(3, true).AddEdge(0, 2).AddEdge(1, 2).MustFreeze()
	s, err := New(g, Options{DSamples: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	col, err := s.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	if col[0] != 1 || col[1] != 0 || col[2] != 0 {
		t.Errorf("dangling-source column = %v, want [1 0 0]", col)
	}
}
