// Package linsim implements a linearized single-source SimRank solver,
// the third algorithm family the paper's related-work section surveys
// (Fujiwara et al. [5], Kusumoto et al. [8], Yu & McCann [26]).
//
// It is built on the linearization of the SimRank fixed point
// S = c·W S Wᵀ + D, namely
//
//	S = Σ_{k≥0} c^k W^k D (Wᵀ)^k
//
// where W is the in-neighbor averaging operator ((Wx)(v) is the mean of
// x over I(v)) and D = diag(d) is the diagonal correction that makes
// diag(S) = 1 — the same per-node never-meet-again probability SLING
// stores (see internal/sling). A single-source query is then K+1 sparse
// matrix-vector products forward (x_k = Wᵀx_{k-1} started from e_u, the
// reverse uniform-walk distributions) and one backward accumulation
// (r ← D x_k + c W r), giving a fully deterministic O(K·m) query once d
// is estimated. Unlike the Monte-Carlo methods, repeated queries return
// identical values with no sampling noise beyond the shared d estimate.
package linsim

import (
	"fmt"
	"math"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// Options configures the solver.
type Options struct {
	// C is the SimRank decay factor in (0,1). Default 0.6.
	C float64
	// Eps is the target truncation error; the series is cut at K with
	// c^(K+1) ≤ Eps/4. Default 0.025.
	Eps float64
	// K overrides the series truncation depth (0 derives it from Eps).
	K int
	// DSamples is the number of coupled walk pairs per node used to
	// estimate the diagonal correction. Default 120.
	DSamples int
	// Seed makes the d estimation deterministic.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Eps == 0 {
		o.Eps = 0.025
	}
	if o.K == 0 {
		o.K = int(math.Ceil(math.Log(o.Eps/4)/math.Log(o.C))) + 1
	}
	if o.DSamples == 0 {
		o.DSamples = 120
	}
	return o
}

// Validate checks option ranges after defaulting.
func (o Options) Validate() error {
	q := o.withDefaults()
	if q.C <= 0 || q.C >= 1 {
		return fmt.Errorf("linsim: decay factor c=%g outside (0,1)", q.C)
	}
	if q.Eps <= 0 || q.Eps >= 1 {
		return fmt.Errorf("linsim: error target eps=%g outside (0,1)", q.Eps)
	}
	if q.K < 1 {
		return fmt.Errorf("linsim: series depth must be >= 1, got %d", q.K)
	}
	if q.DSamples < 1 {
		return fmt.Errorf("linsim: d samples must be >= 1, got %d", q.DSamples)
	}
	return nil
}

// Solver holds the graph and the estimated diagonal correction; build
// once, query many times.
type Solver struct {
	g   *graph.Graph
	opt Options
	d   []float64
}

// New estimates the diagonal correction and returns a query-ready
// solver. Cost is O(n · DSamples · E[walk]).
func New(g *graph.Graph, opt Options) (*Solver, error) {
	o := opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	s := &Solver{g: g, opt: o, d: make([]float64, g.NumNodes())}
	sc := math.Sqrt(o.C)
	maxLen := o.K + 4
	for x := range s.d {
		r := rng.Split(o.Seed, uint64(x))
		never := 0
		for trial := 0; trial < o.DSamples; trial++ {
			a, b := graph.NodeID(x), graph.NodeID(x)
			met := false
			for t := 1; t <= maxLen; t++ {
				if r.Float64() >= sc || r.Float64() >= sc {
					break
				}
				ia, ib := s.g.In(a), s.g.In(b)
				if len(ia) == 0 || len(ib) == 0 {
					break
				}
				a = ia[r.IntN(len(ia))]
				b = ib[r.IntN(len(ib))]
				if a == b {
					met = true
					break
				}
			}
			if !met {
				never++
			}
		}
		s.d[x] = float64(never) / float64(o.DSamples)
	}
	return s, nil
}

// D exposes the diagonal correction for tests and cross-checks.
func (s *Solver) D(v graph.NodeID) float64 { return s.d[v] }

// SingleSource returns sim(u, ·) for all nodes as a dense slice.
func (s *Solver) SingleSource(u graph.NodeID) ([]float64, error) {
	n := s.g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("linsim: source %d out of range for n=%d", u, n)
	}
	// Forward pass: x_k = (Wᵀ)^k e_u for k = 0..K — the k-step reverse
	// uniform-walk distribution of the source (mass spreads from each
	// node evenly over its in-neighbors).
	xs := make([][]float64, s.opt.K+1)
	xs[0] = make([]float64, n)
	xs[0][u] = 1
	for k := 1; k <= s.opt.K; k++ {
		xs[k] = s.spread(xs[k-1], 1)
	}
	// Backward accumulation of S e_u = Σ_k c^k W^k D (Wᵀ)^k e_u:
	// r = D x_K; r ← D x_k + c W r.
	r := s.scaleD(xs[s.opt.K])
	for k := s.opt.K - 1; k >= 0; k-- {
		r = s.average(r, s.opt.C)
		dx := s.scaleD(xs[k])
		for v := range r {
			r[v] += dx[v]
		}
	}
	r[u] = 1 // exact by definition; the series value carries d noise
	return r, nil
}

// Sim returns a single pair value via SingleSource (provided for
// interface parity; the whole column costs the same as one entry).
func (s *Solver) Sim(u, v graph.NodeID) (float64, error) {
	if v < 0 || int(v) >= s.g.NumNodes() {
		return 0, fmt.Errorf("linsim: node %d out of range for n=%d", v, s.g.NumNodes())
	}
	col, err := s.SingleSource(u)
	if err != nil {
		return 0, err
	}
	return col[v], nil
}

// average computes y = scale · Wx: y(v) is the mean of x over v's
// in-neighbors (the SimRank averaging operator).
func (s *Solver) average(x []float64, scale float64) []float64 {
	n := s.g.NumNodes()
	y := make([]float64, n)
	for v := 0; v < n; v++ {
		in := s.g.In(graph.NodeID(v))
		if len(in) == 0 {
			continue
		}
		sum := 0.0
		for _, w := range in {
			sum += x[w]
		}
		y[v] = scale * sum / float64(len(in))
	}
	return y
}

// spread computes y = scale · Wᵀx: each node v scatters x(v)/|I(v)| to
// its in-neighbors (one step of the reverse uniform walk).
func (s *Solver) spread(x []float64, scale float64) []float64 {
	n := s.g.NumNodes()
	y := make([]float64, n)
	for v := 0; v < n; v++ {
		in := s.g.In(graph.NodeID(v))
		if len(in) == 0 || x[v] == 0 {
			continue
		}
		w := scale * x[v] / float64(len(in))
		for _, z := range in {
			y[z] += w
		}
	}
	return y
}

// scaleD returns D·x.
func (s *Solver) scaleD(x []float64) []float64 {
	y := make([]float64, len(x))
	for v := range x {
		y[v] = s.d[v] * x[v]
	}
	return y
}
