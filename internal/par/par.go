// Package par provides the one concurrency primitive the algorithms
// share: a deterministic parallel for-loop over an index range, used to
// fan out independent per-node work (index pushes, matrix rows,
// candidate estimates). Work items must not depend on each other; the
// results are bit-identical for any worker count.
package par

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across up to workers
// goroutines; workers <= 1 runs inline. It returns when all calls have
// finished.
func ForEach(n, workers int, fn func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
