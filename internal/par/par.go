// Package par provides the one concurrency primitive the algorithms
// share: a deterministic parallel for-loop over an index range, used to
// fan out independent per-node work (index pushes, matrix rows,
// candidate estimates). Work items must not depend on each other; the
// results are bit-identical for any worker count.
package par

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across up to workers
// goroutines; workers <= 1 runs inline. It returns when all calls have
// finished.
func ForEach(n, workers int, fn func(int)) {
	_ = ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cancellation: it checks ctx between work
// items and stops handing out new indices once ctx is done, returning
// ctx.Err(). Work items already started run to completion, so fn never
// observes a torn loop; callers must treat a non-nil error as "results
// incomplete". A nil ctx means context.Background().
func ForEachCtx(ctx context.Context, n, workers int, fn func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
