// Package par provides the one concurrency primitive the algorithms
// share: a deterministic parallel for-loop over an index range, used to
// fan out independent per-node work (index pushes, matrix rows,
// candidate estimates). Work items must not depend on each other; the
// results are bit-identical for any worker count.
package par

import (
	"context"
	"sync"
	"sync/atomic"
)

// chunksPerWorker sets the handout granularity of the parallel loop:
// each worker claims ~1/chunksPerWorker of its fair share per atomic
// operation. Larger values balance skewed workloads better; smaller
// values touch the shared counter (and poll ctx) less. 8 keeps the
// tail-latency loss under one eighth of a worker's share while cutting
// the per-item shared-cacheline traffic to one access per chunk.
const chunksPerWorker = 8

// ForEach runs fn(i) for every i in [0, n) across up to workers
// goroutines; workers <= 1 runs inline. It returns when all calls have
// finished.
func ForEach(n, workers int, fn func(int)) {
	_ = ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cancellation: workers claim contiguous
// index chunks from a shared counter (one atomic operation and one ctx
// poll per chunk, not per item — ctx.Err on a cancelable context takes
// a mutex, which at per-item frequency serializes the workers) and stop
// claiming once ctx is done, returning ctx.Err(). Work items already
// started — at most one chunk per worker — run to completion, so fn
// never observes a torn loop; callers must treat a non-nil error as
// "results incomplete". Chunking only changes how indices are handed
// out, never which indices run, so results stay bit-identical for any
// worker count. A nil ctx means context.Background().
func ForEachCtx(ctx context.Context, n, workers int, fn func(int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	chunk := chunkSize(n, workers)
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// chunkSize returns the handout granularity for a loop of n items on
// the given worker count: a worker's fair share divided by
// chunksPerWorker, at least 1.
func chunkSize(n, workers int) int {
	c := n / (workers * chunksPerWorker)
	if c < 1 {
		return 1
	}
	return c
}
