package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 57
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		ForEach(n, workers, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("workers=%d: index %d visited twice", workers, i)
			}
			hits.Add(1)
		})
		if got := hits.Load(); got != int64(n) {
			t.Errorf("workers=%d: %d calls, want %d", workers, got, n)
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	calls := 0
	ForEach(0, 4, func(int) { calls++ })
	if calls != 0 {
		t.Errorf("empty range made %d calls", calls)
	}
	ForEach(1, 4, func(i int) { calls += i + 1 })
	if calls != 1 {
		t.Errorf("single range wrong: %d", calls)
	}
}
