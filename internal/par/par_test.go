package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversRange(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 57
		var hits atomic.Int64
		seen := make([]atomic.Bool, n)
		ForEach(n, workers, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("workers=%d: index %d visited twice", workers, i)
			}
			hits.Add(1)
		})
		if got := hits.Load(); got != int64(n) {
			t.Errorf("workers=%d: %d calls, want %d", workers, got, n)
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	calls := 0
	ForEach(0, 4, func(int) { calls++ })
	if calls != 0 {
		t.Errorf("empty range made %d calls", calls)
	}
	ForEach(1, 4, func(i int) { calls += i + 1 })
	if calls != 1 {
		t.Errorf("single range wrong: %d", calls)
	}
}

func TestChunkSize(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{8, 4, 1},                  // fewer items than workers*chunksPerWorker
		{64, 4, 2},                 // 64/(4*8)
		{10000, 4, 312},            // large loop
		{3, 3, 1},                  // minimum clamps at one item
		{1 << 20, 1 << 4, 1 << 13}, // exact division
	}
	for _, c := range cases {
		if got := chunkSize(c.n, c.workers); got != c.want {
			t.Errorf("chunkSize(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

// TestForEachCtxCancelStopsWithinChunk: once ctx is canceled, no worker
// may claim a new chunk — the only items still executing are the ones
// in chunks already started, so the overrun is bounded by workers×chunk
// items. Run under -race this also exercises the handout for data races
// between the canceling item and the still-draining workers.
func TestForEachCtxCancelStopsWithinChunk(t *testing.T) {
	const (
		n       = 10000
		workers = 4
		trigger = 50
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, n, workers, func(int) {
		if ran.Add(1) == trigger {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx returned %v, want context.Canceled", err)
	}
	// The canceling item's own chunk plus one in-flight chunk per other
	// worker may still drain; nothing beyond that may start.
	limit := int64(trigger + workers*chunkSize(n, workers))
	if got := ran.Load(); got > limit {
		t.Errorf("%d items ran after cancellation, want <= %d (workers=%d chunk=%d)",
			got, limit, workers, chunkSize(n, workers))
	}
}

// TestForEachCtxPreCanceled: a context canceled before the call must do
// no work at all.
func TestForEachCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 100, 4, func(int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachCtx returned %v, want context.Canceled", err)
	}
	if got := ran.Load(); got > int64(4*chunkSize(100, 4)) {
		t.Errorf("%d items ran on a pre-canceled context", got)
	}
}
