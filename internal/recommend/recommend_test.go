package recommend

import (
	"testing"

	"crashsim/internal/core"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func TestForUserFindsTasteGroup(t *testing.T) {
	opt := gen.BipartiteOptions{
		Users: 24, Items: 40, Groups: 4, PurchasesPerUser: 5,
		Snapshots: 6, DriftRate: 0.2, SwitchRate: 0, Seed: 5,
	}
	tg, groups, err := gen.Bipartite(opt)
	if err != nil {
		t.Fatal(err)
	}
	const target = graph.NodeID(0)
	targetGroup := groups[0][target]

	res, err := ForUser(tg, target, Options{
		NumUsers: opt.Users,
		Theta:    0.03,
		K:        8,
		Params:   core.Params{Iterations: 1200, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StableUsers) == 0 {
		t.Fatal("no stable users found")
	}
	// With SwitchRate 0 groups never change; every stable user must be
	// in the target's taste group (cross-group similarity is near zero
	// because item pools are disjoint).
	last := groups[len(groups)-1]
	for _, u := range res.StableUsers {
		if last[u] != targetGroup {
			t.Errorf("stable user %d is in group %d, target in %d", u, last[u], targetGroup)
		}
	}
	// Recommendations must be items (not users), not owned by the
	// target, with positive weights, sorted descending.
	for i, rec := range res.Items {
		if int(rec.Item) < opt.Users {
			t.Errorf("recommended node %d is a user", rec.Item)
		}
		if rec.Weight <= 0 {
			t.Errorf("non-positive weight %g", rec.Weight)
		}
		if i > 0 && rec.Weight > res.Items[i-1].Weight {
			t.Error("recommendations not sorted")
		}
	}
}

func TestForUserFiltersGroupSwitchers(t *testing.T) {
	// High switch rate: users that hop groups must not be stable.
	opt := gen.BipartiteOptions{
		Users: 20, Items: 40, Groups: 2, PurchasesPerUser: 5,
		Snapshots: 6, DriftRate: 0.1, SwitchRate: 0.5, Seed: 11,
	}
	tg, groups, err := gen.Bipartite(opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ForUser(tg, 0, Options{
		NumUsers: opt.Users,
		Theta:    0.05,
		Params:   core.Params{Iterations: 800, Seed: 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Any user that was ever in a different group than the target while
	// the target stayed put is unlikely to survive; verify at least
	// that survivors shared the target's group at the final snapshot.
	// (The target itself may have switched; then survivors follow it.)
	last := groups[len(groups)-1]
	for _, u := range res.StableUsers {
		if last[u] != last[0] {
			t.Logf("note: stable user %d ended in group %d vs target %d", u, last[u], last[0])
		}
	}
	// Mostly a smoke assertion: the stable set must be a strict subset
	// of all users under heavy churn.
	if len(res.StableUsers) >= opt.Users-1 {
		t.Errorf("stable set has %d of %d users despite heavy group churn", len(res.StableUsers), opt.Users-1)
	}
}

func TestForUserValidation(t *testing.T) {
	opt := gen.BipartiteOptions{Users: 10, Items: 20, Snapshots: 2, Seed: 1}
	tg, _, err := gen.Bipartite(opt)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Iterations: 10}
	if _, err := ForUser(tg, 15, Options{NumUsers: 10, Params: params}); err == nil {
		t.Error("item as target accepted")
	}
	if _, err := ForUser(tg, 0, Options{NumUsers: 0, Params: params}); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := ForUser(tg, 0, Options{NumUsers: 10, Theta: 2, Params: params}); err == nil {
		t.Error("bad theta accepted")
	}
}

func TestBipartiteGeneratorInvariants(t *testing.T) {
	opt := gen.BipartiteOptions{Users: 12, Items: 24, Groups: 3, PurchasesPerUser: 4, Snapshots: 5, Seed: 3}
	tg, groups, err := gen.Bipartite(opt)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumSnapshots() != 5 || len(groups) != 5 {
		t.Fatalf("history length wrong: %d snapshots, %d group rows", tg.NumSnapshots(), len(groups))
	}
	// Every snapshot: each user has exactly PurchasesPerUser items, and
	// edges never connect two users or two items.
	for ti := 0; ti < tg.NumSnapshots(); ti++ {
		g, err := tg.Snapshot(ti)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < opt.Users; u++ {
			if deg := g.InDegree(graph.NodeID(u)); deg != opt.PurchasesPerUser {
				t.Errorf("snapshot %d: user %d has %d purchases, want %d", ti, u, deg, opt.PurchasesPerUser)
			}
		}
		for _, e := range g.Edges() {
			uSide := int(e.X) < opt.Users
			vSide := int(e.Y) < opt.Users
			if uSide == vSide {
				t.Fatalf("snapshot %d: edge %v not bipartite", ti, e)
			}
		}
	}
	if _, _, err := gen.Bipartite(gen.BipartiteOptions{Users: 1, Items: 5}); err == nil {
		t.Error("degenerate options accepted")
	}
}
