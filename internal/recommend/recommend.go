// Package recommend operationalizes the paper's Example 1: product
// recommendation over a temporal user–item purchase graph. A temporal
// threshold query (CrashSim-T) finds the users whose SimRank with the
// target stays above θ across the whole interval — the *stable* similar
// group — and the group's purchases, weighted by similarity, become the
// recommendations. Users whose similarity is only momentarily high are
// filtered out, exactly the motivation the paper gives for temporal
// (rather than per-snapshot) SimRank.
package recommend

import (
	"fmt"
	"sort"

	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/temporal"
)

// Options configures a recommendation query.
type Options struct {
	// NumUsers says how many leading node ids are users; nodes at and
	// above NumUsers are items.
	NumUsers int
	// Theta is the similarity threshold for the stable group.
	// Default 0.05.
	Theta float64
	// K caps the number of recommended items. Default 10.
	K int
	// Params configures the underlying CrashSim-T run.
	Params core.Params
}

func (o Options) withDefaults() Options {
	if o.Theta == 0 {
		o.Theta = 0.05
	}
	if o.K == 0 {
		o.K = 10
	}
	return o
}

// Recommendation is one recommended item.
type Recommendation struct {
	Item graph.NodeID
	// Weight is the summed similarity of stable-group members who own
	// the item at the final snapshot.
	Weight float64
}

// Result is the outcome of ForUser.
type Result struct {
	// StableUsers are the users whose similarity to the target stayed
	// >= Theta at every snapshot, sorted by id (target excluded).
	StableUsers []graph.NodeID
	// Items are the ranked recommendations.
	Items []Recommendation
}

// thresholdQuery adapts Theta to core.TemporalQuery.
type thresholdQuery struct{ theta float64 }

func (q thresholdQuery) Name() string                    { return "recommend-threshold" }
func (q thresholdQuery) Keep(_ int, _, cur float64) bool { return cur >= q.theta }

// ForUser answers Example 1 for one target user: find the stable
// similar group over the whole history, then rank the items the group
// owns (at the final snapshot) that the target does not.
func ForUser(tg *temporal.Graph, target graph.NodeID, opt Options) (*Result, error) {
	o := opt.withDefaults()
	if o.NumUsers < 1 || o.NumUsers > tg.NumNodes() {
		return nil, fmt.Errorf("recommend: user count %d outside [1, n=%d]", o.NumUsers, tg.NumNodes())
	}
	if target < 0 || int(target) >= o.NumUsers {
		return nil, fmt.Errorf("recommend: target %d is not a user (users are [0,%d))", target, o.NumUsers)
	}
	if o.Theta <= 0 || o.Theta >= 1 {
		return nil, fmt.Errorf("recommend: theta=%g outside (0,1)", o.Theta)
	}

	res, err := core.CrashSimT(tg, target, thresholdQuery{o.Theta}, o.Params, core.TemporalOptions{})
	if err != nil {
		return nil, err
	}
	out := &Result{}
	weights := map[graph.NodeID]float64{}
	for _, v := range res.Omega {
		if v != target && int(v) < o.NumUsers {
			out.StableUsers = append(out.StableUsers, v)
			weights[v] = res.Final[v]
		}
	}

	last, err := tg.Snapshot(tg.NumSnapshots() - 1)
	if err != nil {
		return nil, err
	}
	owned := map[graph.NodeID]bool{}
	for _, it := range neighbors(last, target) {
		owned[it] = true
	}
	scores := map[graph.NodeID]float64{}
	for _, u := range out.StableUsers {
		for _, it := range neighbors(last, u) {
			if int(it) >= o.NumUsers && !owned[it] {
				scores[it] += weights[u]
			}
		}
	}
	for it, w := range scores {
		out.Items = append(out.Items, Recommendation{Item: it, Weight: w})
	}
	sort.Slice(out.Items, func(i, j int) bool {
		if out.Items[i].Weight != out.Items[j].Weight {
			return out.Items[i].Weight > out.Items[j].Weight
		}
		return out.Items[i].Item < out.Items[j].Item
	})
	if len(out.Items) > o.K {
		out.Items = out.Items[:o.K]
	}
	return out, nil
}

// neighbors returns a user's current items (undirected purchase graph:
// a user's neighbors are exactly its items).
func neighbors(g *graph.Graph, u graph.NodeID) []graph.NodeID {
	return g.In(u)
}
