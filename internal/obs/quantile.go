package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Quantile-histogram geometry: log-linear (HDR-style) buckets over
// nanosecond durations. Values below 2^qhSubBits nanoseconds land in
// their own exact bucket; above that, each power-of-two octave is
// divided into 2^qhSubBits linear sub-buckets, so every bucket's width
// is at most 1/2^qhSubBits of the values it holds. Reported quantiles
// are bucket upper bounds, which bounds the relative overestimate at
// 2^-qhSubBits (~3.1%) — tight enough for SLO percentiles, while the
// whole histogram stays a flat fixed-size array of atomics that can be
// recorded into lock-free and merged bucket-wise. This is the
// stats-array technique tile38 uses for its serving percentiles,
// with log-linear instead of uniform buckets so one layout spans
// nanoseconds to minutes.
const (
	qhSubBits = 5
	qhSubs    = 1 << qhSubBits
	// qhBuckets covers every uint64 nanosecond value: octaves
	// qhSubBits..63 each contribute qhSubs buckets on top of the qhSubs
	// exact low buckets.
	qhBuckets = qhSubs * (64 - qhSubBits + 1)
)

// qhIndex maps a nanosecond value to its bucket.
func qhIndex(v uint64) int {
	if v < qhSubs {
		return int(v)
	}
	exp := bits.Len64(v) - 1 - qhSubBits      // sub-bucket width is 2^exp
	return exp<<qhSubBits + int(v>>uint(exp)) // mantissa in [qhSubs, 2*qhSubs)
}

// qhUpper returns the largest nanosecond value mapping to bucket i:
// the inverse of qhIndex, evaluated at the bucket's upper edge.
func qhUpper(i int) uint64 {
	if i < qhSubs {
		return uint64(i)
	}
	exp := uint(i>>qhSubBits - 1)
	mant := uint64(i&(qhSubs-1)) + qhSubs
	return (mant+1)<<exp - 1
}

// QuantileHistogram records durations into log-linear buckets and
// reports percentiles with bounded relative error (see the geometry
// constants above). Observe is two atomic adds plus an atomic max
// loop; there is no lock anywhere, so one histogram can be shared by
// every goroutine of a load generator or server. Alternatively each
// worker can record into its own histogram and Merge them afterwards —
// merging is bucket-wise addition, so it is associative, commutative,
// and yields exactly the histogram a shared instance would have held.
//
// The zero value is ready to use.
type QuantileHistogram struct {
	counts [qhBuckets]atomic.Uint64
	count  atomic.Uint64
	sumNs  atomic.Uint64
	maxNs  atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
func (h *QuantileHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	v := uint64(d)
	h.counts[qhIndex(v)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(v)
	for {
		old := h.maxNs.Load()
		if v <= old || h.maxNs.CompareAndSwap(old, v) {
			return
		}
	}
}

// Since is shorthand for Observe(time.Since(start)).
func (h *QuantileHistogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// Count returns the number of recorded observations.
func (h *QuantileHistogram) Count() uint64 { return h.count.Load() }

// Merge adds other's observations into h bucket-wise. Concurrent
// Observe calls on either histogram are safe; observations landing
// mid-merge end up in exactly one of the two, as with any snapshot of
// a live histogram.
func (h *QuantileHistogram) Merge(other *QuantileHistogram) {
	if other == nil {
		return
	}
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sumNs.Add(other.sumNs.Load())
	v := other.maxNs.Load()
	for {
		old := h.maxNs.Load()
		if v <= old || h.maxNs.CompareAndSwap(old, v) {
			return
		}
	}
}

// Quantile estimates the q-quantile (q in [0,1]) as a duration. The
// rank rule matches HistogramSnapshot.Quantile: each bucket's mass is
// attributed to its upper bound, so the estimate never undershoots the
// true order statistic and overshoots by at most 2^-qhSubBits
// relative (plus one nanosecond of integer truncation). Returns 0 for
// an empty histogram.
func (h *QuantileHistogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > target {
			return time.Duration(qhUpper(i))
		}
	}
	// Unreachable when count is consistent with the buckets; fall back
	// to the recorded maximum.
	return time.Duration(h.maxNs.Load())
}

// Max returns the exact largest observed duration (not bucketed).
func (h *QuantileHistogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// QuantileSnapshot is a point-in-time percentile summary, in seconds,
// ready for JSON. Max is exact; the percentiles carry the bucketing
// error bound documented on QuantileHistogram.
type QuantileSnapshot struct {
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	P50        float64 `json:"p50"`
	P90        float64 `json:"p90"`
	P99        float64 `json:"p99"`
	P999       float64 `json:"p999"`
	Max        float64 `json:"max"`
}

// Mean returns the average observed latency in seconds (0 when empty).
func (s QuantileSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumSeconds / float64(s.Count)
}

// Snapshot summarizes the histogram's current state. Like every
// snapshot in this package it tolerates concurrent Observe calls; the
// percentiles then reflect some recent consistent-enough state.
func (h *QuantileHistogram) Snapshot() QuantileSnapshot {
	return QuantileSnapshot{
		Count:      h.count.Load(),
		SumSeconds: time.Duration(h.sumNs.Load()).Seconds(),
		P50:        h.Quantile(0.50).Seconds(),
		P90:        h.Quantile(0.90).Seconds(),
		P99:        h.Quantile(0.99).Seconds(),
		P999:       h.Quantile(0.999).Seconds(),
		Max:        h.Max().Seconds(),
	}
}
