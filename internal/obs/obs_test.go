package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	if r.Counter("a.b") != c {
		t.Error("counter lookup not idempotent")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Load() != 5 {
		t.Errorf("gauge = %d, want 5", g.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (le is inclusive)
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(50 * time.Millisecond)  // bucket 2
	h.Observe(time.Second)            // overflow
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantCounts := []uint64{2, 1, 1}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d (le %g): count %d, want %d", i, b.UpperBound, b.Count, wantCounts[i])
		}
	}
	if s.Overflow != 1 {
		t.Errorf("overflow = %d, want 1", s.Overflow)
	}
	wantSum := (0.5 + 1 + 5 + 50 + 1000) / 1000.0
	if diff := s.SumSeconds - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sum = %g, want %g", s.SumSeconds, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 0.001 {
		t.Errorf("p50 = %g, want 0.001", q)
	}
	if q := s.Quantile(0.99); q != 0.1 {
		t.Errorf("p99 = %g, want 0.1", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

func TestHistogramUnsortedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds accepted")
		}
	}()
	NewHistogram(0.1, 0.01)
}

func TestSnapshotJSONAndDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries").Add(10)
	r.Gauge("inflight").Set(3)
	r.Histogram("lat", 0.01, 0.1).Observe(5 * time.Millisecond)
	before := r.Snapshot()

	r.Counter("queries").Add(7)
	r.Histogram("lat").Observe(50 * time.Millisecond)
	after := r.Snapshot()

	d := after.Delta(before)
	if d.Counters["queries"] != 7 {
		t.Errorf("delta counter = %d, want 7", d.Counters["queries"])
	}
	if d.Histograms["lat"].Count != 1 || d.Histograms["lat"].Buckets[1].Count != 1 {
		t.Errorf("delta histogram = %+v", d.Histograms["lat"])
	}
	if d.Gauges["inflight"] != 3 {
		t.Errorf("delta gauge = %d, want current value 3", d.Gauges["inflight"])
	}

	// The snapshot must marshal cleanly (no +Inf anywhere).
	if _, err := json.Marshal(after); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}

func TestMerge(t *testing.T) {
	a := Snapshot{Counters: map[string]uint64{"x": 1, "shared": 5}}
	b := Snapshot{Counters: map[string]uint64{"y": 2, "shared": 9}}
	m := a.Merge(b)
	if m.Counters["x"] != 1 || m.Counters["y"] != 2 || m.Counters["shared"] != 5 {
		t.Errorf("merge = %v", m.Counters)
	}
}

// TestConcurrentUse hammers one registry from many goroutines; run
// under -race this is the data-race regression test for the whole
// package.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(time.Millisecond)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}
