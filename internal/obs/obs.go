// Package obs is the observability substrate of the serving path: a
// stdlib-only metrics layer with atomic counters, gauges and
// fixed-bucket latency histograms, grouped in registries with a
// consistent snapshot API.
//
// Design constraints, in order:
//
//   - Hot-path cost. Counter.Add and Histogram.Observe are single
//     atomic adds (the histogram does one branchless-ish bucket scan
//     over a small fixed array first); nothing on the query path takes
//     a lock or allocates.
//   - No dependencies. The repo's rule is stdlib only, so this is a
//     deliberately small subset of the Prometheus data model: uint64
//     counters, int64 gauges, cumulative-count histograms with fixed
//     upper bounds.
//   - Snapshots, not scraping. Snapshot() returns plain maps/structs
//     that marshal to JSON as-is; consumers (the HTTP /metrics
//     endpoint, the bench harness) diff two snapshots with Delta to
//     attribute work to a time window.
//
// Metric names are flat dotted strings ("engine.crashsim.queries");
// registries create metrics on first use, so instrumentation sites can
// hold *Counter fields without registration ceremony.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value (e.g. in-flight requests).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the histogram upper bounds (in seconds)
// used when none are given: roughly exponential from 100µs to 60s,
// matching the spread between an in-memory cache hit and a worst-case
// Monte-Carlo query on a large graph.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram. Observations land in
// the first bucket whose upper bound is >= the value; larger values
// count in an overflow bucket. Counts and the running sum are atomics,
// so concurrent Observe calls never lock; a Snapshot taken mid-update
// may be off by in-flight observations, which is fine for monitoring.
type Histogram struct {
	bounds []float64 // sorted upper bounds, seconds
	counts []atomic.Uint64
	over   atomic.Uint64 // observations above the last bound
	count  atomic.Uint64
	sumNs  atomic.Int64 // total observed time in nanoseconds
}

// NewHistogram builds a histogram with the given upper bounds in
// seconds (DefaultLatencyBuckets when empty). Bounds must be sorted
// ascending; NewHistogram panics otherwise, since bucket layouts are
// static configuration, not data.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram bounds not sorted: %v", bounds))
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Since is shorthand for Observe(time.Since(start)).
func (h *Histogram) Since(start time.Time) { h.Observe(time.Since(start)) }

// Bucket is one histogram bucket in a snapshot: the count of
// observations at most UpperBound seconds (non-cumulative).
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	// SumSeconds is the total observed time; SumSeconds/Count is the
	// mean latency.
	SumSeconds float64  `json:"sum_seconds"`
	Buckets    []Bucket `json:"buckets,omitempty"`
	// Overflow counts observations above the last bucket bound (kept
	// out of Buckets because +Inf does not survive JSON encoding).
	Overflow uint64 `json:"overflow,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:      h.count.Load(),
		SumSeconds: time.Duration(h.sumNs.Load()).Seconds(),
		Buckets:    make([]Bucket, len(h.bounds)),
		Overflow:   h.over.Load(),
	}
	for i := range h.bounds {
		s.Buckets[i] = Bucket{UpperBound: h.bounds[i], Count: h.counts[i].Load()}
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// counts, attributing each bucket's mass to its upper bound — the
// standard pessimistic fixed-bucket estimate. Observations in the
// overflow bucket report the last bound. Returns 0 for an empty
// histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := uint64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum > target {
			return b.UpperBound
		}
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// Registry is a namespace of metrics. Metrics are created on first
// use and live forever; lookups take a read lock, but instrumentation
// sites are expected to look up once and keep the pointer.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	quants   map[string]*QuantileHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		quants:   make(map[string]*QuantileHistogram),
	}
}

// Default is the process-wide registry. Package-level instrumentation
// (internal/core's work counters) lands here; servers may use private
// registries for per-instance metrics and merge in Default when
// reporting.
var Default = NewRegistry()

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds (DefaultLatencyBuckets when empty) if needed. Bounds are
// fixed at creation; later calls with different bounds return the
// existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Quantile returns the named quantile histogram, creating it if
// needed. Unlike the fixed-bucket Histogram it needs no bounds
// configuration: the log-linear layout spans every duration with
// bounded relative error.
func (r *Registry) Quantile(name string) *QuantileHistogram {
	r.mu.RLock()
	q, ok := r.quants[name]
	r.mu.RUnlock()
	if ok {
		return q
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if q, ok = r.quants[name]; !ok {
		q = new(QuantileHistogram)
		r.quants[name] = q
	}
	return q
}

// Snapshot is a point-in-time copy of a registry, JSON-marshalable
// as-is.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Quantiles summarizes the registry's quantile histograms as
	// cumulative (process-lifetime) percentiles. Windowed percentiles
	// cannot be derived by subtracting two summaries — percentiles do
	// not subtract — so Delta passes the later summary through
	// unchanged; consumers that need per-window percentiles (the load
	// harness) merge per-worker QuantileHistograms instead.
	Quantiles map[string]QuantileSnapshot `json:"quantiles,omitempty"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
		Quantiles:  make(map[string]QuantileSnapshot, len(r.quants)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, q := range r.quants {
		s.Quantiles[name] = q.Snapshot()
	}
	return s
}

// Merge returns the union of two snapshots; on a name collision the
// receiver's entry wins (used to overlay a server's private registry
// on the process-wide Default).
func (s Snapshot) Merge(other Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)+len(other.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)+len(other.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)+len(other.Histograms)),
		Quantiles:  make(map[string]QuantileSnapshot, len(s.Quantiles)+len(other.Quantiles)),
	}
	for k, v := range other.Quantiles {
		out.Quantiles[k] = v
	}
	for k, v := range s.Quantiles {
		out.Quantiles[k] = v
	}
	for k, v := range other.Counters {
		out.Counters[k] = v
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range other.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range other.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	return out
}

// Delta returns the counter-wise difference s − prev, attributing
// work to the window between the two snapshots. Gauges keep their
// current (s) value — a gauge delta is meaningless. Histograms keep
// the later snapshot's buckets minus the earlier's. Counters absent
// from prev are treated as starting at zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
		Quantiles:  make(map[string]QuantileSnapshot, len(s.Quantiles)),
	}
	// Percentile summaries do not subtract; keep the later snapshot's
	// cumulative view (see the Quantiles field doc).
	for k, v := range s.Quantiles {
		out.Quantiles[k] = v
	}
	for k, v := range s.Counters {
		out.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		p, ok := prev.Histograms[k]
		if !ok || len(p.Buckets) != len(v.Buckets) {
			out.Histograms[k] = v
			continue
		}
		d := HistogramSnapshot{
			Count:      v.Count - p.Count,
			SumSeconds: v.SumSeconds - p.SumSeconds,
			Buckets:    make([]Bucket, len(v.Buckets)),
			Overflow:   v.Overflow - p.Overflow,
		}
		for i := range v.Buckets {
			d.Buckets[i] = Bucket{
				UpperBound: v.Buckets[i].UpperBound,
				Count:      v.Buckets[i].Count - p.Buckets[i].Count,
			}
		}
		out.Histograms[k] = d
	}
	return out
}
