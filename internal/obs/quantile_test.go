package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"crashsim/internal/rng"
)

// qhOracle applies the histogram's documented rank rule to the exact
// sorted sample: the estimate must equal the upper bound of the bucket
// containing the order statistic at rank floor(q*n) (clamped), and
// overshoot that order statistic by at most the relative error bound.
func qhOracle(sorted []time.Duration, q float64) time.Duration {
	target := int(q * float64(len(sorted)))
	if target >= len(sorted) {
		target = len(sorted) - 1
	}
	return time.Duration(qhUpper(qhIndex(uint64(sorted[target]))))
}

// adversarialSamples builds distributions chosen to stress the
// log-linear bucketing: exact small values, values hugging bucket
// edges from both sides, point masses, heavy tails spanning nine
// orders of magnitude, and a bimodal mix with a lone extreme outlier.
func adversarialSamples() map[string][]time.Duration {
	out := map[string][]time.Duration{}

	// Every representable small value, where buckets are exact.
	small := make([]time.Duration, 0, 200)
	for v := 0; v < 200; v++ {
		small = append(small, time.Duration(v))
	}
	out["small-exact"] = small

	// Values one off each side of power-of-two and sub-bucket edges.
	var edges []time.Duration
	for exp := uint(6); exp < 40; exp++ {
		base := uint64(1) << exp
		for _, v := range []uint64{base - 1, base, base + 1} {
			edges = append(edges, time.Duration(v))
		}
		width := base >> qhSubBits
		for sub := uint64(1); sub < qhSubs; sub += 7 {
			e := base + sub*width
			edges = append(edges, time.Duration(e-1), time.Duration(e))
		}
	}
	out["bucket-edges"] = edges

	// A point mass: every quantile is the same value.
	mass := make([]time.Duration, 1000)
	for i := range mass {
		mass[i] = 1234567 * time.Nanosecond
	}
	out["point-mass"] = mass

	// Log-uniform heavy tail: 10ns to 10s.
	r := rng.New(7)
	tail := make([]time.Duration, 5000)
	for i := range tail {
		tail[i] = time.Duration(math.Pow(10, 1+8*r.Float64()))
	}
	out["log-uniform"] = tail

	// Bimodal with one extreme outlier: the p999/max split the bench
	// harness must get right when one request stalls.
	bi := make([]time.Duration, 0, 2001)
	for i := 0; i < 1500; i++ {
		bi = append(bi, time.Duration(900+r.IntN(200))*time.Microsecond)
	}
	for i := 0; i < 500; i++ {
		bi = append(bi, time.Duration(90+r.IntN(20))*time.Millisecond)
	}
	bi = append(bi, 45*time.Second)
	out["bimodal-outlier"] = bi

	return out
}

func TestQuantileHistogramMatchesOracle(t *testing.T) {
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, sample := range adversarialSamples() {
		h := new(QuantileHistogram)
		for _, d := range sample {
			h.Observe(d)
		}
		sorted := append([]time.Duration(nil), sample...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if got, want := h.Count(), uint64(len(sample)); got != want {
			t.Fatalf("%s: count %d, want %d", name, got, want)
		}
		if got, want := h.Max(), sorted[len(sorted)-1]; got != want {
			t.Errorf("%s: max %v, want exact %v", name, got, want)
		}
		for _, q := range quantiles {
			got := h.Quantile(q)
			want := qhOracle(sorted, q)
			if got != want {
				t.Errorf("%s: q=%g got %v, oracle says %v", name, q, got, want)
			}
			// The documented error contract, checked against the true
			// order statistic rather than the bucketed oracle.
			target := int(q * float64(len(sorted)))
			if target >= len(sorted) {
				target = len(sorted) - 1
			}
			exact := sorted[target]
			if got < exact {
				t.Errorf("%s: q=%g estimate %v undershoots exact %v", name, q, got, exact)
			}
			bound := float64(exact)*(1+1.0/qhSubs) + 1
			if float64(got) > bound {
				t.Errorf("%s: q=%g estimate %v exceeds error bound %v (exact %v)", name, q, got, time.Duration(bound), exact)
			}
		}
	}
}

func TestQuantileBucketGeometry(t *testing.T) {
	// qhUpper must be the exact inverse upper edge of qhIndex: every
	// bucket's upper bound maps back into the bucket, and the next
	// nanosecond maps out of it.
	for i := 0; i < qhBuckets; i++ {
		u := qhUpper(i)
		if got := qhIndex(u); got != i {
			t.Fatalf("qhIndex(qhUpper(%d)=%d) = %d", i, u, got)
		}
		if u != math.MaxUint64 {
			if got := qhIndex(u + 1); got != i+1 {
				t.Fatalf("qhIndex(%d+1) = %d, want %d", u, got, i+1)
			}
		}
	}
	if got := qhIndex(math.MaxUint64); got != qhBuckets-1 {
		t.Fatalf("max value lands in bucket %d, want %d", got, qhBuckets-1)
	}
}

func TestQuantileHistogramConcurrentObserve(t *testing.T) {
	// Race coverage: concurrent Observe, Merge and Snapshot on shared
	// histograms. Correctness check: total count and sum survive.
	const workers = 8
	const perWorker = 2000
	shared := new(QuantileHistogram)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w))
			local := new(QuantileHistogram)
			for i := 0; i < perWorker; i++ {
				d := time.Duration(r.IntN(1 << 30))
				shared.Observe(d)
				local.Observe(d)
				if i%512 == 0 {
					_ = shared.Snapshot()
				}
			}
			shared.Merge(local)
		}(w)
	}
	wg.Wait()
	if got, want := shared.Count(), uint64(2*workers*perWorker); got != want {
		t.Fatalf("count %d, want %d", got, want)
	}
	var bucketSum uint64
	for i := range shared.counts {
		bucketSum += shared.counts[i].Load()
	}
	if bucketSum != shared.Count() {
		t.Fatalf("bucket counts sum to %d, count says %d", bucketSum, shared.Count())
	}
}

func TestQuantileHistogramMergeAssociative(t *testing.T) {
	r := rng.New(99)
	mk := func() *QuantileHistogram {
		h := new(QuantileHistogram)
		for i, n := 0, 100+r.IntN(400); i < n; i++ {
			h.Observe(time.Duration(r.IntN(1 << 34)))
		}
		return h
	}
	a, b, c := mk(), mk(), mk()

	// (a+b)+c
	left := new(QuantileHistogram)
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)
	// a+(b+c)
	bc := new(QuantileHistogram)
	bc.Merge(b)
	bc.Merge(c)
	right := new(QuantileHistogram)
	right.Merge(a)
	right.Merge(bc)
	// c+b+a: commutativity too.
	rev := new(QuantileHistogram)
	rev.Merge(c)
	rev.Merge(b)
	rev.Merge(a)

	want := left.Snapshot()
	for name, h := range map[string]*QuantileHistogram{"a+(b+c)": right, "c+b+a": rev} {
		if got := h.Snapshot(); got != want {
			t.Errorf("%s snapshot %+v, want %+v", name, got, want)
		}
	}
	// And the merged result equals observing everything into one
	// histogram directly.
	direct := new(QuantileHistogram)
	direct.Merge(a)
	for i := range b.counts {
		for n := b.counts[i].Load(); n > 0; n-- {
			direct.counts[i].Add(1)
		}
	}
	direct.count.Add(b.count.Load())
	direct.sumNs.Add(b.sumNs.Load())
	if m := b.maxNs.Load(); m > direct.maxNs.Load() {
		direct.maxNs.Store(m)
	}
	direct.Merge(c)
	if got := direct.Snapshot(); got != want {
		t.Errorf("bucket-replayed merge %+v, want %+v", got, want)
	}
}

func TestQuantileHistogramEmpty(t *testing.T) {
	h := new(QuantileHistogram)
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty p99 = %v, want 0", got)
	}
	snap := h.Snapshot()
	if snap != (QuantileSnapshot{}) {
		t.Fatalf("empty snapshot %+v, want zero", snap)
	}
	if snap.Mean() != 0 {
		t.Fatalf("empty mean %v", snap.Mean())
	}
}

func TestRegistryQuantile(t *testing.T) {
	r := NewRegistry()
	q := r.Quantile("server.latency")
	if r.Quantile("server.latency") != q {
		t.Fatal("second lookup returned a different histogram")
	}
	q.Observe(3 * time.Millisecond)
	snap := r.Snapshot()
	qs, ok := snap.Quantiles["server.latency"]
	if !ok {
		t.Fatal("snapshot missing quantile histogram")
	}
	if qs.Count != 1 || qs.Max == 0 {
		t.Fatalf("quantile snapshot %+v", qs)
	}
	// Merge keeps the receiver's entry; Delta passes the cumulative
	// summary through.
	other := NewRegistry()
	other.Quantile("server.latency").Observe(time.Second)
	merged := snap.Merge(other.Snapshot())
	if merged.Quantiles["server.latency"].Count != 1 {
		t.Fatalf("merge did not prefer receiver: %+v", merged.Quantiles["server.latency"])
	}
	d := snap.Delta(Snapshot{})
	if d.Quantiles["server.latency"] != qs {
		t.Fatalf("delta altered quantile summary: %+v", d.Quantiles["server.latency"])
	}
}
