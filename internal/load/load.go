// Package load is an open-loop HTTP load generator for the SimRank
// server: it fires requests at a configured arrival rate regardless of
// how fast the server answers, which is the property that makes its
// latency percentiles honest under overload.
//
// Closed-loop clients (a fixed worker pool issuing the next request
// when the previous one returns — every `-benchtime` loop, wrk without
// rate limiting, ab) self-throttle: when the server slows down, the
// client offers less load, queueing delay never appears in the sample,
// and the measured "p99" of a saturated server looks almost flat. The
// literature calls this coordinated omission. This generator avoids it
// twice over:
//
//   - Arrivals are scheduled from a precomputed timetable (Poisson or
//     fixed-rate) derived only from the seed and the target QPS; a slow
//     response never delays the next arrival (each request runs in its
//     own goroutine).
//   - Every request's latency is measured from its *scheduled* send
//     time, not the moment the client actually managed to send it, so
//     any backlog the client itself accumulates is charged to the
//     requests that waited in it.
//
// The request stream mirrors a skewed production query log: sources
// are drawn rank-Zipf from a popularity-ordered pool (gen.ZipfSources)
// and the single/topk/batch/write request mix is configurable. The
// write kind issues edge-mutation POSTs so the same harness can drive
// a live-ingest server; against today's read-only server writes are
// rejected and counted as errors, so mixes default to reads only.
//
// Latencies are recorded into sharded obs.QuantileHistograms (one
// shard per worker stripe, merged at the end), yielding
// p50/p90/p99/p999 and the exact max with bounded relative error.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
	"crashsim/internal/rng"
)

// Kind is one request type in the workload mix.
type Kind uint8

const (
	KindSingle Kind = iota // GET /singlesource
	KindTopK               // GET /topk
	KindBatch              // POST /batch/singlesource
	KindWrite              // POST /edges (edge mutation)
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindSingle:
		return "single"
	case KindTopK:
		return "topk"
	case KindBatch:
		return "batch"
	case KindWrite:
		return "write"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Mix weighs the request kinds; weights are relative (they need not
// sum to 1) and non-negative, with at least one positive.
type Mix struct {
	Single float64
	TopK   float64
	Batch  float64
	Write  float64
}

// DefaultMix is a read-mostly serving workload: scalar single-source
// queries with some top-k and an occasional batch.
func DefaultMix() Mix { return Mix{Single: 0.70, TopK: 0.15, Batch: 0.15} }

func (m Mix) weights() [numKinds]float64 {
	return [numKinds]float64{m.Single, m.TopK, m.Batch, m.Write}
}

func (m Mix) validate() error {
	total := 0.0
	for _, w := range m.weights() {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("load: mix weights must be finite and >= 0, got %+v", m)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("load: mix needs at least one positive weight")
	}
	return nil
}

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server under test, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// QPS is the open-loop target arrival rate (> 0).
	QPS float64
	// Duration is how long arrivals are scheduled for (> 0). The run
	// waits for in-flight requests after the last arrival.
	Duration time.Duration
	// Poisson selects exponentially distributed inter-arrival gaps
	// (a memoryless arrival process, the standard open-loop model);
	// false means a fixed 1/QPS gap.
	Poisson bool
	// Mix weighs the request kinds. Zero value means DefaultMix.
	Mix Mix
	// K is the result length requested per query. Default 10.
	K int
	// BatchSize is the sources-per-request of KindBatch. Default 16.
	BatchSize int
	// Pool is the popularity-ordered source pool; Zipf rank 1 is
	// Pool[0]. Required.
	Pool []graph.NodeID
	// ZipfS is the rank-Zipf skew of source popularity (0 = uniform).
	// Default 1.1.
	ZipfS float64
	// Seed fixes the schedule: arrival times, kinds and sources are
	// all derived from it, so two runs against the same server offer
	// byte-identical request streams.
	Seed uint64
	// MaxInFlight caps client-side concurrent requests as a memory
	// backstop. When the cap is hit the dispatcher blocks — arrivals
	// are sent late but stay charged from their scheduled time, so the
	// backlog shows up in the latency percentiles instead of being
	// silently dropped. Default 4096.
	MaxInFlight int
	// Client overrides the HTTP client (default: a transport tuned
	// for many concurrent loopback connections, 60s timeout).
	Client *http.Client
}

func (c Config) withDefaults() (Config, error) {
	if c.BaseURL == "" {
		return c, fmt.Errorf("load: BaseURL required")
	}
	if !(c.QPS > 0) {
		return c, fmt.Errorf("load: QPS must be > 0, got %g", c.QPS)
	}
	if c.Duration <= 0 {
		return c, fmt.Errorf("load: Duration must be > 0, got %v", c.Duration)
	}
	if len(c.Pool) == 0 {
		return c, fmt.Errorf("load: source Pool required")
	}
	if c.Mix == (Mix{}) {
		c.Mix = DefaultMix()
	}
	if err := c.Mix.validate(); err != nil {
		return c, err
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.BatchSize < 1 || c.K < 1 {
		return c, fmt.Errorf("load: K and BatchSize must be >= 1")
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4096
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return c, nil
}

// Result summarizes one run.
type Result struct {
	TargetQPS float64 `json:"target_qps"`
	// AchievedQPS counts completed responses (any status) per second
	// of wall time from the first scheduled arrival to the last
	// completion.
	AchievedQPS float64 `json:"achieved_qps"`
	// Offered is the number of scheduled arrivals; Completed the
	// number that got an HTTP response (or a transport error).
	Offered   int `json:"offered"`
	Completed int `json:"completed"`
	// OK counts 2xx responses, Shed 429s (admission control doing its
	// job), Errors everything else including transport failures.
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Errors   int     `json:"errors"`
	ShedRate float64 `json:"shed_rate"`
	// Latency is measured from each request's scheduled arrival time
	// to its completion — queueing delay included, the
	// coordinated-omission-free number. Service is measured from the
	// moment the request was actually sent; the gap between the two
	// is the backlog delay a closed-loop client would have hidden.
	Latency obs.QuantileSnapshot `json:"latency"`
	Service obs.QuantileSnapshot `json:"service"`
	// ByKind counts offered requests per kind name.
	ByKind map[string]int `json:"by_kind"`
	// ErrorSamples holds the first few non-2xx/non-429 observations.
	ErrorSamples []string      `json:"error_samples,omitempty"`
	Elapsed      time.Duration `json:"elapsed_ns"`
}

// schedule is the precomputed open-loop request timetable.
type schedule struct {
	offsets []time.Duration // arrival time of request i, relative to start
	kinds   []Kind
	srcAt   []int             // request i draws sources[srcAt[i]:srcAt[i+1]]
	sources []graph.NodeID    // rank-Zipf stream, shared by all kinds
	writes  [][2]graph.NodeID // pre-drawn write edges, indexed per write request
	writeAt []int             // request i (if KindWrite) uses writes[writeAt[i]]
}

// buildSchedule derives the full deterministic timetable from the
// seed: arrival offsets (Poisson or fixed), kinds (mix-weighted), and
// the Zipf source stream, sliced per request.
func buildSchedule(cfg Config) (*schedule, error) {
	total := int(cfg.QPS * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	s := &schedule{
		offsets: make([]time.Duration, total),
		kinds:   make([]Kind, total),
		srcAt:   make([]int, total+1),
		writeAt: make([]int, total),
	}
	r := rng.New(rng.SeedString(fmt.Sprintf("load/schedule/%d", cfg.Seed)))
	gap := 1 / cfg.QPS
	elapsed := 0.0
	for i := range s.offsets {
		if cfg.Poisson {
			// Inverse-CDF exponential gap; 1-U keeps the argument
			// strictly positive.
			elapsed += -math.Log(1-r.Float64()) * gap
		} else {
			elapsed = float64(i) * gap
		}
		s.offsets[i] = time.Duration(elapsed * float64(time.Second))
	}
	w := cfg.Mix.weights()
	var cum [numKinds]float64
	acc := 0.0
	for i, wi := range w {
		acc += wi
		cum[i] = acc
	}
	nSources, nWrites := 0, 0
	for i := range s.kinds {
		x := r.Float64() * acc
		k := Kind(0)
		for x > cum[k] && int(k) < int(numKinds)-1 {
			k++
		}
		s.kinds[i] = k
		s.srcAt[i] = nSources
		switch k {
		case KindSingle, KindTopK:
			nSources++
		case KindBatch:
			nSources += cfg.BatchSize
		case KindWrite:
			s.writeAt[i] = nWrites
			nWrites++
		}
	}
	s.srcAt[total] = nSources
	if nSources > 0 {
		var err error
		s.sources, err = gen.ZipfSources(cfg.Pool, nSources, cfg.ZipfS,
			rng.SeedString(fmt.Sprintf("load/sources/%d", cfg.Seed)))
		if err != nil {
			return nil, err
		}
	}
	if nWrites > 0 {
		wr := rng.New(rng.SeedString(fmt.Sprintf("load/writes/%d", cfg.Seed)))
		s.writes = make([][2]graph.NodeID, nWrites)
		for i := range s.writes {
			s.writes[i] = [2]graph.NodeID{
				cfg.Pool[wr.IntN(len(cfg.Pool))],
				cfg.Pool[wr.IntN(len(cfg.Pool))],
			}
		}
	}
	return s, nil
}

// latShards stripes latency recording across histograms to spread
// atomic contention; Merge folds them afterwards (and doubles as a
// live exercise of the histogram's merge contract).
const latShards = 8

// Run executes the configured open-loop run. It returns when every
// scheduled arrival has completed, or with
// ctx's error if canceled mid-run (in-flight requests are abandoned
// to the HTTP client's timeout).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sched, err := buildSchedule(cfg)
	if err != nil {
		return nil, err
	}

	var (
		latHists                  [latShards]obs.QuantileHistogram
		svcHists                  [latShards]obs.QuantileHistogram
		ok, shed, errs, completed atomic.Uint64
		mu                        sync.Mutex
		samples                   []string
	)
	recordError := func(desc string) {
		errs.Add(1)
		mu.Lock()
		if len(samples) < 5 {
			samples = append(samples, desc)
		}
		mu.Unlock()
	}

	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	byKind := make(map[string]int, int(numKinds))
	for _, k := range sched.kinds {
		byKind[k.String()]++
	}

	start := time.Now()
	for i := range sched.offsets {
		if err := ctx.Err(); err != nil {
			wg.Wait()
			return nil, err
		}
		scheduled := start.Add(sched.offsets[i])
		if d := time.Until(scheduled); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				wg.Wait()
				return nil, ctx.Err()
			}
		}
		// Block when MaxInFlight is reached: the arrival fires late but
		// keeps its scheduled stamp, so the wait is charged to it.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			return nil, ctx.Err()
		}
		wg.Add(1)
		go func(i int, scheduled time.Time) {
			defer wg.Done()
			defer func() { <-sem }()
			status, sent, desc := fire(ctx, cfg, sched, i)
			done := time.Now()
			completed.Add(1)
			// Open-loop accounting: latency is charged from the
			// scheduled arrival, so client-side backlog shows up in the
			// percentiles; service time (actual send → completion)
			// isolates the server's own share.
			latHists[i%latShards].Observe(done.Sub(scheduled))
			svcHists[i%latShards].Observe(done.Sub(sent))
			switch {
			case status >= 200 && status < 300:
				ok.Add(1)
			case status == http.StatusTooManyRequests:
				shed.Add(1)
			default:
				recordError(desc)
			}
		}(i, scheduled)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lat, svc obs.QuantileHistogram
	for i := range latHists {
		lat.Merge(&latHists[i])
		svc.Merge(&svcHists[i])
	}
	res := &Result{
		TargetQPS:    cfg.QPS,
		AchievedQPS:  float64(completed.Load()) / elapsed.Seconds(),
		Offered:      len(sched.offsets),
		Completed:    int(completed.Load()),
		OK:           int(ok.Load()),
		Shed:         int(shed.Load()),
		Errors:       int(errs.Load()),
		Latency:      lat.Snapshot(),
		Service:      svc.Snapshot(),
		ByKind:       byKind,
		ErrorSamples: samples,
		Elapsed:      elapsed,
	}
	if res.Completed > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Completed)
	}
	return res, nil
}

// fire builds and sends request i, returning the HTTP status (0 on
// transport failure), the instant the request was handed to the HTTP
// client, and a short description for error sampling.
func fire(ctx context.Context, cfg Config, s *schedule, i int) (int, time.Time, string) {
	var (
		req *http.Request
		err error
	)
	switch s.kinds[i] {
	case KindSingle:
		u := s.sources[s.srcAt[i]]
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("%s/singlesource?u=%d&k=%d", cfg.BaseURL, u, cfg.K), nil)
	case KindTopK:
		u := s.sources[s.srcAt[i]]
		req, err = http.NewRequestWithContext(ctx, http.MethodGet,
			fmt.Sprintf("%s/topk?u=%d&k=%d", cfg.BaseURL, u, cfg.K), nil)
	case KindBatch:
		body := struct {
			Sources []graph.NodeID `json:"sources"`
			K       int            `json:"k"`
		}{Sources: s.sources[s.srcAt[i]:s.srcAt[i+1]], K: cfg.K}
		buf, merr := json.Marshal(body)
		if merr != nil {
			return 0, time.Now(), fmt.Sprintf("marshal batch: %v", merr)
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			cfg.BaseURL+"/batch/singlesource", bytes.NewReader(buf))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	case KindWrite:
		e := s.writes[s.writeAt[i]]
		buf, merr := json.Marshal(struct {
			Add [][2]graph.NodeID `json:"add"`
		}{Add: [][2]graph.NodeID{e}})
		if merr != nil {
			return 0, time.Now(), fmt.Sprintf("marshal write: %v", merr)
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			cfg.BaseURL+"/edges", bytes.NewReader(buf))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	default:
		return 0, time.Now(), fmt.Sprintf("unknown kind %v", s.kinds[i])
	}
	if err != nil {
		return 0, time.Now(), fmt.Sprintf("build request: %v", err)
	}
	sent := time.Now()
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, sent, fmt.Sprintf("%s %s: %v", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	// Drain so the connection is reusable; the payload itself is not
	// the harness's concern.
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 200 && resp.StatusCode < 300 || resp.StatusCode == http.StatusTooManyRequests {
		return resp.StatusCode, sent, ""
	}
	return resp.StatusCode, sent, fmt.Sprintf("%s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
}
