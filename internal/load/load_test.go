package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"crashsim/internal/graph"
)

func pool(n int) []graph.NodeID {
	p := make([]graph.NodeID, n)
	for i := range p {
		p[i] = graph.NodeID(i)
	}
	return p
}

// countingHandler answers 200 to every request and records paths.
type countingHandler struct {
	gets, posts, writes atomic.Uint64
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		h.posts.Add(1)
		if r.URL.Path == "/edges" {
			h.writes.Add(1)
		}
	} else {
		h.gets.Add(1)
	}
	w.WriteHeader(http.StatusOK)
}

func TestRunCountsAndAccounting(t *testing.T) {
	h := &countingHandler{}
	srv := httptest.NewServer(h)
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		QPS:      400,
		Duration: 250 * time.Millisecond,
		Pool:     pool(50),
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 100 {
		t.Fatalf("offered %d, want 400qps*0.25s = 100", res.Offered)
	}
	if res.Completed != res.Offered || res.OK != res.Offered {
		t.Fatalf("completed %d ok %d, want all %d", res.Completed, res.OK, res.Offered)
	}
	if res.Shed != 0 || res.Errors != 0 || res.ShedRate != 0 {
		t.Fatalf("unexpected shed/errors: %+v", res)
	}
	if got := res.Latency.Count; got != uint64(res.Completed) {
		t.Fatalf("latency histogram holds %d samples, want %d", got, res.Completed)
	}
	if got := res.Service.Count; got != uint64(res.Completed) {
		t.Fatalf("service histogram holds %d samples, want %d", got, res.Completed)
	}
	total := 0
	for _, n := range res.ByKind {
		total += n
	}
	if total != res.Offered {
		t.Fatalf("ByKind sums to %d, want %d (%v)", total, res.Offered, res.ByKind)
	}
	if res.ByKind["write"] != 0 {
		t.Fatalf("default mix issued writes: %v", res.ByKind)
	}
	if res.AchievedQPS <= 0 {
		t.Fatalf("achieved qps %v", res.AchievedQPS)
	}
	if int(h.gets.Load())+int(h.posts.Load()) != res.Offered {
		t.Fatalf("server saw %d+%d requests, want %d", h.gets.Load(), h.posts.Load(), res.Offered)
	}
}

func TestScheduleDeterministicAndMonotone(t *testing.T) {
	cfg := Config{
		BaseURL:  "http://unused",
		QPS:      1000,
		Duration: time.Second,
		Poisson:  true,
		Mix:      Mix{Single: 0.5, TopK: 0.2, Batch: 0.2, Write: 0.1},
		Pool:     pool(100),
		Seed:     42,
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	a, err := buildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	last := time.Duration(-1)
	for _, off := range a.offsets {
		if off < last {
			t.Fatalf("arrival offsets not monotone: %v after %v", off, last)
		}
		last = off
	}
	// All four kinds must appear with these weights over 1000 draws,
	// and every kind's source slice must be sized for it.
	seen := map[Kind]int{}
	for i, k := range a.kinds {
		seen[k]++
		width := a.srcAt[i+1] - a.srcAt[i]
		switch k {
		case KindSingle, KindTopK:
			if width != 1 {
				t.Fatalf("request %d (%v) draws %d sources", i, k, width)
			}
		case KindBatch:
			if width != cfg.BatchSize {
				t.Fatalf("batch request %d draws %d sources, want %d", i, width, cfg.BatchSize)
			}
		case KindWrite:
			if width != 0 {
				t.Fatalf("write request %d draws %d sources", i, width)
			}
		}
	}
	for k := Kind(0); k < numKinds; k++ {
		if seen[k] == 0 {
			t.Fatalf("kind %v never drawn in 1000 requests: %v", k, seen)
		}
	}
	// Different seed, different schedule.
	cfg2 := cfg
	cfg2.Seed = 43
	c, err := buildSchedule(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.offsets, c.offsets) {
		t.Fatal("different seeds produced identical Poisson arrivals")
	}
}

// TestScheduledSendCharging is the coordinated-omission regression: a
// slow server behind a 2-request client window must show queueing
// delay in the scheduled-send latency while per-request service time
// stays near the handler's sleep.
func TestScheduledSendCharging(t *testing.T) {
	const handlerDelay = 20 * time.Millisecond
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(handlerDelay)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	// 200 QPS offered, but MaxInFlight 2 and 20ms service caps
	// throughput at ~100 QPS: the backlog grows for the whole run.
	res, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		QPS:         200,
		Duration:    300 * time.Millisecond,
		Pool:        pool(10),
		Mix:         Mix{Single: 1},
		Seed:        3,
		MaxInFlight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != res.Offered {
		t.Fatalf("ok %d of %d", res.OK, res.Offered)
	}
	svcP50 := time.Duration(res.Service.P50 * float64(time.Second))
	latP90 := time.Duration(res.Latency.P90 * float64(time.Second))
	if svcP50 < handlerDelay {
		t.Fatalf("service p50 %v below handler delay %v", svcP50, handlerDelay)
	}
	if svcP50 > 5*handlerDelay {
		t.Fatalf("service p50 %v implausibly high for a %v handler", svcP50, handlerDelay)
	}
	// Half the offered load can't be served: by the end of the 300ms
	// window the backlog is ~30 requests deep, so the p90
	// scheduled-send latency must dwarf the service time. A closed-loop
	// client would report ~20ms here and hide the overload entirely.
	if latP90 < 4*svcP50 {
		t.Fatalf("scheduled-send p90 %v does not show queueing over service p50 %v", latP90, svcP50)
	}
}

func TestShedAndErrorClassification(t *testing.T) {
	var n atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n.Add(1) % 4 {
		case 0:
			w.WriteHeader(http.StatusTooManyRequests)
		case 1:
			w.WriteHeader(http.StatusNotFound)
		default:
			w.WriteHeader(http.StatusOK)
		}
	}))
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		QPS:      400,
		Duration: 200 * time.Millisecond,
		Pool:     pool(10),
		Mix:      Mix{Single: 0.9, Write: 0.1},
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 || res.Errors == 0 || res.OK == 0 {
		t.Fatalf("expected all classes populated: %+v", res)
	}
	if res.OK+res.Shed+res.Errors != res.Completed {
		t.Fatalf("classes don't sum: %+v", res)
	}
	if res.ShedRate <= 0 || res.ShedRate >= 1 {
		t.Fatalf("shed rate %v", res.ShedRate)
	}
	if len(res.ErrorSamples) == 0 {
		t.Fatal("no error samples despite 404s")
	}
	if res.ByKind["write"] == 0 {
		t.Fatalf("write fraction drew no writes: %v", res.ByKind)
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{},
		{BaseURL: "x", QPS: 0, Duration: time.Second, Pool: pool(1)},
		{BaseURL: "x", QPS: 10, Duration: 0, Pool: pool(1)},
		{BaseURL: "x", QPS: 10, Duration: time.Second},
		{BaseURL: "x", QPS: 10, Duration: time.Second, Pool: pool(1), Mix: Mix{Single: -1}},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunCanceled(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{
		BaseURL: srv.URL, QPS: 10, Duration: 10 * time.Second, Pool: pool(4), Seed: 1,
	}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
