// Package sling implements the SLING baseline (Tian & Xiao, SIGMOD
// 2016): an index-based single-source SimRank method with an additive
// error guarantee.
//
// SLING is built on the decomposition
//
//	sim(u, v) = Σ_t Σ_x h_t(u, x) · h_t(v, x) · d(x)
//
// where h_t(y, x) is the probability that a √c-walk from y is at x after
// t steps, and d(x) is the probability that two independent √c-walks
// starting together at x never co-locate again at a later step — the
// correction that turns co-location mass into first-meeting mass.
//
// The index stores, for every node, its truncated hitting-probability
// distribution (computed by a deterministic level-by-level push with a
// pruning threshold) plus the Monte-Carlo estimated d values; queries
// combine the source's distribution with an inverted occurrence index.
// Index construction is deliberately the expensive phase — the paper
// notes SLING's index takes hours on million-node graphs and must be
// rebuilt on every update, which is why its Fig 5/7 response times
// include indexing time.
package sling

import (
	"context"
	"fmt"
	"math"
	"sort"

	"crashsim/internal/graph"
	"crashsim/internal/par"
	"crashsim/internal/rng"
)

// Options configures index construction.
type Options struct {
	// C is the SimRank decay factor in (0,1). Default 0.6.
	C float64
	// Eps is the additive error target ε. Default 0.025.
	Eps float64
	// Lmax truncates the stored distributions. 0 derives the length at
	// which the remaining walk mass (√c)^L drops below ε/4.
	Lmax int
	// Prune drops per-entry probabilities below this threshold during
	// the push. 0 derives ε·(1−√c)/8.
	Prune float64
	// DSamples is the number of coupled walk pairs used to estimate each
	// d(x). Default 120.
	DSamples int
	// Workers bounds index-construction parallelism (the per-node pushes
	// and d estimations are independent). Results are identical for any
	// value. 0 or 1 is sequential.
	Workers int
	// Seed makes the d estimation deterministic.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Eps == 0 {
		o.Eps = 0.025
	}
	sc := math.Sqrt(o.C)
	if o.Lmax == 0 {
		o.Lmax = int(math.Ceil(math.Log(o.Eps/4) / math.Log(sc)))
	}
	if o.Prune == 0 {
		o.Prune = o.Eps * (1 - sc) / 8
	}
	if o.DSamples == 0 {
		o.DSamples = 120
	}
	return o
}

// Validate checks option ranges after defaulting.
func (o Options) Validate() error {
	q := o.withDefaults()
	if q.C <= 0 || q.C >= 1 {
		return fmt.Errorf("sling: decay factor c=%g outside (0,1)", q.C)
	}
	if q.Eps <= 0 || q.Eps >= 1 {
		return fmt.Errorf("sling: error bound eps=%g outside (0,1)", q.Eps)
	}
	if q.Lmax < 1 {
		return fmt.Errorf("sling: lmax must be >= 1, got %d", q.Lmax)
	}
	if q.DSamples < 1 {
		return fmt.Errorf("sling: d samples must be >= 1, got %d", q.DSamples)
	}
	return nil
}

// entry is one stored (step, node, probability) triple of a node's
// hitting distribution.
type entry struct {
	step int32
	node graph.NodeID
	prob float64
}

// occurrence links an index position back to the node whose distribution
// contains it, for the inverted index.
type occurrence struct {
	origin graph.NodeID
	prob   float64
}

// Index is a built SLING index over one static graph.
type Index struct {
	g    *graph.Graph
	opt  Options
	dist [][]entry                       // per node: truncated hitting distribution
	inv  []map[graph.NodeID][]occurrence // per step: node -> walks passing through
	d    []float64                       // per node: never-meet-again correction

	// flat, when non-nil, replaces dist/inv with the compiled CSR form
	// (see flat.go); its arrays may alias a read-only snapshot mapping.
	flat *Flat
	// release gives borrowed memory back to its owner (drops the
	// mapping reference an imported-from-mmap index holds).
	release func() error
}

// Close releases any borrowed memory backing the index (a no-op for
// built or copied indexes). Idempotent; the index must not be queried
// afterwards.
func (ix *Index) Close() error {
	r := ix.release
	ix.release = nil
	if r == nil {
		return nil
	}
	return r()
}

// SetRelease attaches the borrowed-memory release hook; the store
// layer calls it when an index is imported aliasing a mapping.
func (ix *Index) SetRelease(f func() error) { ix.release = f }

// Build constructs the index: one bounded push per node, the inverted
// occurrence index, and the Monte-Carlo d estimation. Cost is
// O(n · push + n · DSamples · E[walk]) and dominates query time by
// design.
func Build(g *graph.Graph, opt Options) (*Index, error) {
	return BuildCtx(context.Background(), g, opt)
}

// BuildCtx is Build with cancellation: the per-node push and d-estimate
// fan-outs stop handing out work once ctx is done and BuildCtx returns
// ctx.Err(), so a canceled construction does not burn the remaining
// index-build CPU.
func BuildCtx(ctx context.Context, g *graph.Graph, opt Options) (*Index, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	ix := &Index{
		g:    g,
		opt:  o,
		dist: make([][]entry, n),
		inv:  make([]map[graph.NodeID][]occurrence, o.Lmax+1),
		d:    make([]float64, n),
	}
	for t := range ix.inv {
		ix.inv[t] = make(map[graph.NodeID][]occurrence)
	}
	// The per-node pushes and d estimations are independent; fan them
	// out, then build the inverted index sequentially in node order so
	// occurrence lists (and therefore query-time summation order) stay
	// deterministic.
	if err := par.ForEachCtx(ctx, n, o.Workers, func(v int) {
		ix.dist[v] = push(g, graph.NodeID(v), o)
	}); err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		for _, e := range ix.dist[v] {
			ix.inv[e.step][e.node] = append(ix.inv[e.step][e.node],
				occurrence{origin: graph.NodeID(v), prob: e.prob})
		}
	}
	if err := par.ForEachCtx(ctx, n, o.Workers, func(x int) {
		ix.d[x] = estimateD(g, o, graph.NodeID(x))
	}); err != nil {
		return nil, err
	}
	return ix, nil
}

// push computes the truncated hitting distribution of v: the probability
// of a √c-walk from v being at each node after each step, dropping
// entries below the pruning threshold. Step 0 (the node itself) is not
// stored; meetings at step 0 only concern u = v, which queries handle
// directly.
func push(g *graph.Graph, v graph.NodeID, o Options) []entry {
	sc := math.Sqrt(o.C)
	cur := map[graph.NodeID]float64{v: 1}
	var out []entry
	var order []graph.NodeID
	for t := 1; t <= o.Lmax; t++ {
		next := make(map[graph.NodeID]float64, len(cur)*2)
		order = order[:0]
		for x := range cur {
			order = append(order, x)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, x := range order {
			in := g.In(x)
			if len(in) == 0 {
				continue
			}
			w := cur[x] * sc / float64(len(in))
			if w < o.Prune {
				continue
			}
			for _, y := range in {
				next[y] += w
			}
		}
		if len(next) == 0 {
			break
		}
		// Emit in sorted node order so the index layout (and therefore
		// floating-point summation order at query time) is deterministic.
		order = order[:0]
		for x := range next {
			order = append(order, x)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, x := range order {
			if p := next[x]; p >= o.Prune {
				out = append(out, entry{step: int32(t), node: x, prob: p})
			}
		}
		cur = next
	}
	return out
}

// estimateD returns d(x) = Pr[two √c-walks from x never co-locate at
// the same step >= 1], estimated by coupled sampling with a stream
// derived from x so the result is independent of evaluation order.
func estimateD(g *graph.Graph, o Options, x graph.NodeID) float64 {
	sc := math.Sqrt(o.C)
	r := rng.Split(o.Seed, uint64(x))
	never := 0
	for s := 0; s < o.DSamples; s++ {
		a, b := x, x
		met := false
		for t := 1; t <= o.Lmax; t++ {
			if r.Float64() >= sc || r.Float64() >= sc {
				break // one of the walks stopped
			}
			ia, ib := g.In(a), g.In(b)
			if len(ia) == 0 || len(ib) == 0 {
				break
			}
			a = ia[r.IntN(len(ia))]
			b = ib[r.IntN(len(ib))]
			if a == b {
				met = true
				break
			}
		}
		if !met {
			never++
		}
	}
	return float64(never) / float64(o.DSamples)
}

// SingleSource returns sim(u, ·) estimates for all nodes using the
// prebuilt index. Query cost is proportional to the overlap between u's
// distribution and the inverted occurrence lists.
func (ix *Index) SingleSource(u graph.NodeID) (map[graph.NodeID]float64, error) {
	return ix.SingleSourceCtx(context.Background(), u)
}

// SingleSourceCtx is SingleSource with cancellation, checked every few
// hundred index entries (queries are fast by design, but a hub node's
// occurrence lists can still be large).
func (ix *Index) SingleSourceCtx(ctx context.Context, u graph.NodeID) (map[graph.NodeID]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := ix.g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("sling: source %d out of range for n=%d", u, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scores := make(map[graph.NodeID]float64, 64)
	if ix.flat != nil {
		if err := ix.singleSourceFlat(ctx, u, scores); err != nil {
			return nil, err
		}
		scores[u] = 1
		return scores, nil
	}
	for i, e := range ix.dist[u] {
		if i&255 == 255 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for _, occ := range ix.inv[e.step][e.node] {
			scores[occ.origin] += e.prob * occ.prob * ix.d[e.node]
		}
	}
	scores[u] = 1
	return scores, nil
}

// D exposes the correction value d(x), used by tests.
func (ix *Index) D(x graph.NodeID) float64 { return ix.d[x] }

// DistSize returns the total number of stored index entries, a proxy for
// index memory in the benchmark reports.
func (ix *Index) DistSize() int {
	if ix.flat != nil {
		return len(ix.flat.Steps)
	}
	total := 0
	for _, d := range ix.dist {
		total += len(d)
	}
	return total
}
