package sling

import (
	"fmt"
	"math"

	"crashsim/internal/graph"
)

// Serialization support for the persistent index store (internal/store).
//
// The index's query-time state is three structures: the per-node
// truncated hitting distributions, the inverted occurrence index, and
// the d(x) corrections. Only the distributions and d values are
// persisted — the inverted index is a deterministic function of the
// distributions (BuildCtx assembles it in node order), so Import
// rebuilds it with the same code path and a loaded index answers
// queries bit-identically to the index it was exported from: identical
// dist float64s, identical occurrence-list order, identical d values.

// Payload is the flat, serialization-shaped view of an Index: the
// distributions flattened into parallel (step, node, prob) columns with
// per-node counts, plus the d values and the build options. The store
// layer owns the byte encoding; this type only fixes what must be
// persisted.
type Payload struct {
	// Opt is the defaulted build configuration. Workers is a runtime
	// knob with no effect on the built index and is not preserved.
	Opt Options
	// DistCounts[v] is the number of stored entries of node v's
	// distribution; the columns below concatenate the entries in node
	// order, each node's entries in their stored (query-summation)
	// order.
	DistCounts []int32
	Steps      []int32
	Nodes      []graph.NodeID
	Probs      []float64
	// D[v] is the never-meet-again correction d(v).
	D []float64
}

// Export returns the index's persistable state. The returned slices are
// freshly allocated and do not alias the index.
func (ix *Index) Export() Payload {
	n := ix.g.NumNodes()
	total := ix.DistSize()
	p := Payload{
		Opt:        ix.opt,
		DistCounts: make([]int32, n),
		Steps:      make([]int32, 0, total),
		Nodes:      make([]graph.NodeID, 0, total),
		Probs:      make([]float64, 0, total),
		D:          append([]float64(nil), ix.d...),
	}
	p.Opt.Workers = 0
	if f := ix.flat; f != nil {
		for v := 0; v < n; v++ {
			p.DistCounts[v] = f.DistOff[v+1] - f.DistOff[v]
		}
		p.Steps = append(p.Steps, f.Steps...)
		p.Nodes = append(p.Nodes, f.Nodes...)
		p.Probs = append(p.Probs, f.Probs...)
		return p
	}
	for v := 0; v < n; v++ {
		p.DistCounts[v] = int32(len(ix.dist[v]))
		for _, e := range ix.dist[v] {
			p.Steps = append(p.Steps, e.step)
			p.Nodes = append(p.Nodes, e.node)
			p.Probs = append(p.Probs, e.prob)
		}
	}
	return p
}

// Import reconstructs an Index over g from an exported payload. The
// payload is treated as untrusted: counts, steps, node ids and
// probabilities are range-checked before the inverted occurrence index
// is rebuilt (in the same deterministic node order as BuildCtx, so
// queries against the imported index are bit-identical to the exported
// one). g must be the graph the index was built on; the store layer
// enforces that identity by graph version before calling Import.
//
// The payload's D column is adopted, not copied — callers hand over
// ownership (the store decodes payloads into fresh buffers, so the
// loader performs exactly one copy of the snapshot bytes).
func Import(g *graph.Graph, p Payload) (*Index, error) {
	o := p.Opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("sling: import: %w", err)
	}
	n := g.NumNodes()
	if len(p.DistCounts) != n || len(p.D) != n {
		return nil, fmt.Errorf("sling: import: payload sized for %d nodes, graph has %d", len(p.DistCounts), n)
	}
	total := 0
	for v, c := range p.DistCounts {
		if c < 0 {
			return nil, fmt.Errorf("sling: import: negative entry count %d at node %d", c, v)
		}
		total += int(c)
	}
	if len(p.Steps) != total || len(p.Nodes) != total || len(p.Probs) != total {
		return nil, fmt.Errorf("sling: import: entry columns have %d/%d/%d values, counts sum to %d",
			len(p.Steps), len(p.Nodes), len(p.Probs), total)
	}
	ix := &Index{
		g:    g,
		opt:  o,
		dist: make([][]entry, n),
		inv:  make([]map[graph.NodeID][]occurrence, o.Lmax+1),
		d:    p.D,
	}
	for x, d := range ix.d {
		if d < 0 || d > 1 || math.IsNaN(d) {
			return nil, fmt.Errorf("sling: import: d(%d) = %v outside [0,1]", x, d)
		}
	}
	for t := range ix.inv {
		ix.inv[t] = make(map[graph.NodeID][]occurrence)
	}
	off := 0
	for v := 0; v < n; v++ {
		c := int(p.DistCounts[v])
		ents := make([]entry, c)
		for i := 0; i < c; i++ {
			step, node, prob := p.Steps[off], p.Nodes[off], p.Probs[off]
			off++
			if step < 1 || int(step) > o.Lmax {
				return nil, fmt.Errorf("sling: import: node %d entry %d has step %d outside [1,%d]", v, i, step, o.Lmax)
			}
			if node < 0 || int(node) >= n {
				return nil, fmt.Errorf("sling: import: node %d entry %d references out-of-range node %d", v, i, node)
			}
			if prob <= 0 || prob > 1 || math.IsNaN(prob) {
				return nil, fmt.Errorf("sling: import: node %d entry %d has probability %v outside (0,1]", v, i, prob)
			}
			ents[i] = entry{step: step, node: node, prob: prob}
		}
		ix.dist[v] = ents
	}
	// Rebuild the inverted index exactly as BuildCtx does: node order,
	// entry order — the occurrence lists (and therefore query-time
	// floating-point summation order) come out identical.
	for v := 0; v < n; v++ {
		for _, e := range ix.dist[v] {
			ix.inv[e.step][e.node] = append(ix.inv[e.step][e.node],
				occurrence{origin: graph.NodeID(v), prob: e.prob})
		}
	}
	return ix, nil
}

// Options returns the defaulted build configuration of the index, so a
// consumer holding a preloaded index can verify it matches the
// parameters it was about to build with.
func (ix *Index) Options() Options { return ix.opt }

// WithDefaults returns o with every zero field replaced by its
// documented default — the form Build actually uses and Options
// reports, so two configurations can be compared for build equivalence.
func (o Options) WithDefaults() Options { return o.withDefaults() }

// Graph returns the graph the index was built on (or bound to by
// Import).
func (ix *Index) Graph() *graph.Graph { return ix.g }
