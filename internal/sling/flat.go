package sling

import (
	"context"
	"fmt"
	"math"

	"crashsim/internal/graph"
)

// Flat is the borrow-shaped view of an index: the Payload columns plus
// the inverted occurrence index compiled into a dense per-(step, node)
// CSR, so a query can run without rebuilding any map. Snapshot format
// v2 persists these arrays verbatim; the mapped loader hands them to
// ImportFlat aliasing the mapping, which is why a flat index serves
// its first query without touching most of the file.
//
// Layout: node v's distribution entries live at columns
// [DistOff[v], DistOff[v+1]). The inverted index is row-addressed by
// r = (step-1)·n + node: the origins whose step-`step` distributions
// contain `node` are InvOrigins[InvOff[r]:InvOff[r+1]] with matching
// InvProbs — listed in ascending origin order, exactly the order
// BuildCtx appends map entries, so flat queries sum in the same
// floating-point order as map queries and score bit-identically.
type Flat struct {
	Opt        Options
	DistOff    []int32 // n+1 prefix over per-node entry counts
	Steps      []int32
	Nodes      []graph.NodeID
	Probs      []float64
	D          []float64
	InvOff     []int32 // Lmax·n+1 row offsets
	InvOrigins []graph.NodeID
	InvProbs   []float64
}

// Flatten compiles the payload's inverted occurrence index into the
// dense CSR form. Two counting passes, no maps — O(n·Lmax + entries).
func (p Payload) Flatten() Flat {
	o := p.Opt.withDefaults()
	n := len(p.DistCounts)
	f := Flat{
		Opt:   o,
		Steps: p.Steps,
		Nodes: p.Nodes,
		Probs: p.Probs,
		D:     p.D,
	}
	f.DistOff = make([]int32, n+1)
	for v, c := range p.DistCounts {
		f.DistOff[v+1] = f.DistOff[v] + c
	}
	rows := o.Lmax * n
	f.InvOff = make([]int32, rows+1)
	for i := range p.Steps {
		r := (int(p.Steps[i])-1)*n + int(p.Nodes[i])
		f.InvOff[r+1]++
	}
	for r := 0; r < rows; r++ {
		f.InvOff[r+1] += f.InvOff[r]
	}
	f.InvOrigins = make([]graph.NodeID, len(p.Steps))
	f.InvProbs = make([]float64, len(p.Steps))
	next := make([]int32, rows)
	// Origin order within each row must match the map path's append
	// order: BuildCtx/Import iterate nodes ascending, each node's
	// entries in stored order — which is exactly column order here.
	for v := 0; v < n; v++ {
		for i := f.DistOff[v]; i < f.DistOff[v+1]; i++ {
			r := (int(p.Steps[i])-1)*n + int(p.Nodes[i])
			at := f.InvOff[r] + next[r]
			next[r]++
			f.InvOrigins[at] = graph.NodeID(v)
			f.InvProbs[at] = p.Probs[i]
		}
	}
	return f
}

// ImportFlat binds a flat payload to g as a servable Index whose
// arrays are adopted, not copied — for a mapped snapshot they alias
// the read-only mapping. Structural shape checks (lengths, offset
// monotonicity) always run; with validate set the per-entry semantic
// checks Import performs run too (the store's VerifyEager policy).
// Without it the caller is vouching for the bytes — in practice via
// the snapshot section's CRC.
func ImportFlat(g *graph.Graph, f Flat, validate bool) (*Index, error) {
	o := f.Opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("sling: import flat: %w", err)
	}
	n := g.NumNodes()
	if len(f.DistOff) != n+1 || len(f.D) != n {
		return nil, fmt.Errorf("sling: import flat: payload sized for %d nodes, graph has %d", len(f.DistOff)-1, n)
	}
	if f.DistOff[0] != 0 {
		return nil, fmt.Errorf("sling: import flat: distribution offsets start at %d", f.DistOff[0])
	}
	for v := 0; v < n; v++ {
		if f.DistOff[v] > f.DistOff[v+1] {
			return nil, fmt.Errorf("sling: import flat: distribution offsets not monotone at node %d", v)
		}
	}
	total := int(f.DistOff[n])
	if len(f.Steps) != total || len(f.Nodes) != total || len(f.Probs) != total {
		return nil, fmt.Errorf("sling: import flat: entry columns have %d/%d/%d values, offsets span %d",
			len(f.Steps), len(f.Nodes), len(f.Probs), total)
	}
	rows := o.Lmax * n
	if len(f.InvOff) != rows+1 || f.InvOff[0] != 0 || int(f.InvOff[rows]) != total {
		return nil, fmt.Errorf("sling: import flat: inverted offsets have %d rows spanning %d entries, want %d spanning %d",
			len(f.InvOff)-1, sliceLast(f.InvOff), rows, total)
	}
	for r := 0; r < rows; r++ {
		if f.InvOff[r] > f.InvOff[r+1] {
			return nil, fmt.Errorf("sling: import flat: inverted offsets not monotone at row %d", r)
		}
	}
	if len(f.InvOrigins) != total || len(f.InvProbs) != total {
		return nil, fmt.Errorf("sling: import flat: inverted columns have %d/%d values, want %d",
			len(f.InvOrigins), len(f.InvProbs), total)
	}
	if validate {
		for i := 0; i < total; i++ {
			if s := f.Steps[i]; s < 1 || int(s) > o.Lmax {
				return nil, fmt.Errorf("sling: import flat: entry %d has step %d outside [1,%d]", i, s, o.Lmax)
			}
			if v := f.Nodes[i]; v < 0 || int(v) >= n {
				return nil, fmt.Errorf("sling: import flat: entry %d references out-of-range node %d", i, v)
			}
			if p := f.Probs[i]; p <= 0 || p > 1 || math.IsNaN(p) {
				return nil, fmt.Errorf("sling: import flat: entry %d has probability %v outside (0,1]", i, p)
			}
			if v := f.InvOrigins[i]; v < 0 || int(v) >= n {
				return nil, fmt.Errorf("sling: import flat: inverted entry %d references out-of-range origin %d", i, v)
			}
			if p := f.InvProbs[i]; p <= 0 || p > 1 || math.IsNaN(p) {
				return nil, fmt.Errorf("sling: import flat: inverted entry %d has probability %v outside (0,1]", i, p)
			}
		}
		for x, d := range f.D {
			if d < 0 || d > 1 || math.IsNaN(d) {
				return nil, fmt.Errorf("sling: import flat: d(%d) = %v outside [0,1]", x, d)
			}
		}
	}
	return &Index{g: g, opt: o, d: f.D, flat: &f}, nil
}

func sliceLast(s []int32) int32 {
	if len(s) == 0 {
		return -1
	}
	return s[len(s)-1]
}

// singleSourceFlat is the query kernel over the flat arrays: same
// traversal, same summation order, same arithmetic expression as the
// map path in SingleSourceCtx — bit-identical scores by construction.
func (ix *Index) singleSourceFlat(ctx context.Context, u graph.NodeID, scores map[graph.NodeID]float64) error {
	f := ix.flat
	n := ix.g.NumNodes()
	for i := f.DistOff[u]; i < f.DistOff[u+1]; i++ {
		if i&255 == 255 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		node := f.Nodes[i]
		prob := f.Probs[i]
		d := ix.d[node]
		r := (int(f.Steps[i])-1)*n + int(node)
		for j := f.InvOff[r]; j < f.InvOff[r+1]; j++ {
			scores[f.InvOrigins[j]] += prob * f.InvProbs[j] * d
		}
	}
	return nil
}
