package sling

import (
	"reflect"
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func flatTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	edges, err := gen.ErdosRenyi(48, 160, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(48, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFlatBitIdentical is the flat-path oracle: an index imported
// through Flatten/ImportFlat must answer every source bit-for-bit like
// the map-based index it came from, and export the same payload.
func TestFlatBitIdentical(t *testing.T) {
	g := flatTestGraph(t)
	built, err := Build(g, Options{DSamples: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := built.Export()
	flat, err := ImportFlat(g, p.Flatten(), true)
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		want, err := built.SingleSource(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := flat.SingleSource(u)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("flat scores differ from map scores at source %d", u)
		}
	}
	if flat.DistSize() != built.DistSize() {
		t.Fatalf("DistSize %d != %d", flat.DistSize(), built.DistSize())
	}
	if !reflect.DeepEqual(flat.Export(), p) {
		t.Fatal("flat re-export differs from original payload")
	}
}

func TestImportFlatRejectsCorruptShape(t *testing.T) {
	g := flatTestGraph(t)
	built, err := Build(g, Options{DSamples: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	base := built.Export().Flatten()

	mutate := map[string]func(f *Flat){
		"truncated dist offsets": func(f *Flat) { f.DistOff = f.DistOff[:len(f.DistOff)-1] },
		"non-monotone inv":       func(f *Flat) { f.InvOff = append([]int32(nil), f.InvOff...); f.InvOff[1] = -1 },
		"short origins":          func(f *Flat) { f.InvOrigins = f.InvOrigins[:len(f.InvOrigins)-1] },
		"short probs":            func(f *Flat) { f.InvProbs = f.InvProbs[:len(f.InvProbs)-1] },
	}
	for name, fn := range mutate {
		f := base
		fn(&f)
		if _, err := ImportFlat(g, f, false); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Semantic corruption passes the shape checks but not validate mode.
	f := base
	f.Probs = append([]float64(nil), f.Probs...)
	f.Probs[0] = 2
	if _, err := ImportFlat(g, f, true); err == nil {
		t.Error("out-of-range probability accepted under validate")
	}
	if _, err := ImportFlat(g, f, false); err != nil {
		t.Errorf("trusted import rejected shape-valid payload: %v", err)
	}
}

func TestFlatClose(t *testing.T) {
	g := flatTestGraph(t)
	built, err := Build(g, Options{DSamples: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ImportFlat(g, built.Export().Flatten(), false)
	if err != nil {
		t.Fatal(err)
	}
	released := 0
	ix.SetRelease(func() error { released++; return nil })
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if released != 1 {
		t.Fatalf("release ran %d times, want exactly once", released)
	}
}

// TestImportAdoptsPayload pins the one-copy loader contract: Import
// adopts the payload's d column instead of copying it, so a snapshot
// load materializes exactly one copy of the bytes (the decode).
func TestImportAdoptsPayload(t *testing.T) {
	g := flatTestGraph(t)
	built, err := Build(g, Options{DSamples: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := built.Export()
	ix, err := Import(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.D) == 0 || &ix.d[0] != &p.D[0] {
		t.Fatal("Import copied the d column instead of adopting it")
	}
}
