package sling

import (
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func benchGraph(b *testing.B, n, m int) *graph.Graph {
	b.Helper()
	edges, err := gen.ChungLu(n, m, 2.0, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.BuildStatic(n, true, edges)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkBuild measures index construction — SLING's dominant cost.
func BenchmarkBuild(b *testing.B) {
	g := benchGraph(b, 2000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, Options{DSamples: 60, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery measures the post-build single-source query.
func BenchmarkQuery(b *testing.B) {
	g := benchGraph(b, 2000, 20000)
	ix, err := Build(g, Options{DSamples: 60, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.SingleSource(graph.NodeID(i % 2000)); err != nil {
			b.Fatal(err)
		}
	}
}
