package sling

import (
	"math"
	"testing"

	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func TestOptionsValidate(t *testing.T) {
	for _, o := range []Options{{C: 2}, {Eps: 7}, {Lmax: -1}, {DSamples: -1}} {
		if err := o.Validate(); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

func TestBuildRejectsBadOptions(t *testing.T) {
	if _, err := Build(graph.PaperExample(), Options{C: 5}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestQueryErrors(t *testing.T) {
	ix, err := Build(graph.PaperExample(), Options{DSamples: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SingleSource(-1); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := ix.SingleSource(99); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestDValuesInRange(t *testing.T) {
	g := graph.PaperExample()
	ix, err := Build(g, Options{C: 0.6, DSamples: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		d := ix.D(v)
		// d(x) >= Pr[one walk stops immediately twice...] >= 1 - c.
		if d < 1-0.6-0.1 || d > 1 {
			t.Errorf("d(%d) = %g outside plausible range", v, d)
		}
	}
	if ix.DistSize() == 0 {
		t.Error("index stored no distribution entries")
	}
}

// TestAccuracyAgainstPowerMethod checks the index + d-correction query
// against ground truth on the example graph and a random graph.
func TestAccuracyAgainstPowerMethod(t *testing.T) {
	graphs := map[string]*graph.Graph{"paper-example": graph.PaperExample()}
	edges, err := gen.ErdosRenyi(60, 180, true, 6)
	if err != nil {
		t.Fatal(err)
	}
	if graphs["random"], err = gen.BuildStatic(60, true, edges); err != nil {
		t.Fatal(err)
	}
	for name, g := range graphs {
		gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(g, Options{C: 0.6, Eps: 0.025, DSamples: 400, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u += 7 {
			s, err := ix.SingleSource(u)
			if err != nil {
				t.Fatal(err)
			}
			worst := 0.0
			for v := 0; v < g.NumNodes(); v++ {
				if d := math.Abs(s[graph.NodeID(v)] - gt.Sim(u, graph.NodeID(v))); d > worst {
					worst = d
				}
			}
			if worst > 0.08 {
				t.Errorf("%s: source %d max error %.4f above tolerance", name, u, worst)
			}
		}
	}
}

func TestSelfScore(t *testing.T) {
	ix, err := Build(graph.PaperExample(), Options{DSamples: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ix.SingleSource(2)
	if err != nil {
		t.Fatal(err)
	}
	if s[2] != 1 {
		t.Errorf("s(u,u) = %g, want 1", s[2])
	}
}

func TestDeterministicBuild(t *testing.T) {
	g := graph.PaperExample()
	a, err := Build(g, Options{DSamples: 50, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// A parallel build must produce bit-identical results.
	b, err := Build(g, Options{DSamples: 50, Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != len(sb) {
		t.Fatal("result sizes differ")
	}
	for v := range sa {
		if sa[v] != sb[v] {
			t.Fatalf("same seed, different score at %d", v)
		}
	}
}
