package prsim

import (
	"math"
	"testing"

	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func TestOptionsValidate(t *testing.T) {
	for _, o := range []Options{{C: 2}, {Eps: 7}, {HubFraction: 2}, {Iterations: -1}, {MaxDepth: -1}} {
		if err := o.Validate(); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

func TestBuildHubSelection(t *testing.T) {
	edges, err := gen.ChungLu(200, 1200, 2.0, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(200, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{HubFraction: 0.1, Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.HubCount() != 20 {
		t.Errorf("HubCount = %d, want 20", ix.HubCount())
	}
	// Hubs must be the highest in-degree nodes: every built table's node
	// must have in-degree >= the 20th largest.
	degs := make([]int, 0, 200)
	for v := graph.NodeID(0); v < 200; v++ {
		degs = append(degs, g.InDegree(v))
	}
	// Selection sort the top 20 to find the cutoff.
	for i := 0; i < 20; i++ {
		max := i
		for j := i + 1; j < len(degs); j++ {
			if degs[j] > degs[max] {
				max = j
			}
		}
		degs[i], degs[max] = degs[max], degs[i]
	}
	cutoff := degs[19]
	built := 0
	for v := graph.NodeID(0); v < 200; v++ {
		if ix.tables[v].Load() != nil {
			built++
			if g.InDegree(v) < cutoff {
				t.Errorf("node %d (deg %d) indexed but below hub cutoff %d", v, g.InDegree(v), cutoff)
			}
		}
	}
	if built != 20 {
		t.Errorf("%d tables built eagerly, want 20", built)
	}
	if _, err := Build(g, Options{C: 9}); err == nil {
		t.Error("bad options accepted")
	}
}

// TestAccuracyAgainstPowerMethod across hub fractions: accuracy must
// not depend on how much is indexed (only speed does).
func TestAccuracyAgainstPowerMethod(t *testing.T) {
	edges, err := gen.ChungLu(60, 240, 2.0, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(60, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	for _, hf := range []float64{0.001, 0.2, 1.0} {
		ix, err := Build(g, Options{C: 0.6, Eps: 0.05, HubFraction: hf, DSamples: 400, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		s, err := ix.SingleSource(0)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for v := 0; v < g.NumNodes(); v++ {
			if d := math.Abs(s[graph.NodeID(v)] - gt.Sim(0, graph.NodeID(v))); d > worst {
				worst = d
			}
		}
		if worst > 0.08 {
			t.Errorf("hub fraction %g: max error %.4f above 0.08", hf, worst)
		}
	}
}

// TestHubFractionInvariance: the estimate must be identical whatever is
// pre-indexed — hubs only change when tables are built, not what they
// contain.
func TestHubFractionInvariance(t *testing.T) {
	g := graph.PaperExample()
	var prev map[graph.NodeID]float64
	for _, hf := range []float64{0.001, 0.5, 1.0} {
		ix, err := Build(g, Options{Iterations: 300, HubFraction: hf, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		s, err := ix.SingleSource(0)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			for v := range prev {
				if s[v] != prev[v] {
					t.Fatalf("hub fraction changed result at node %d", v)
				}
			}
			if len(s) != len(prev) {
				t.Fatal("hub fraction changed result size")
			}
		}
		prev = s
	}
}

func TestQueryCaching(t *testing.T) {
	g := graph.PaperExample()
	ix, err := Build(g, Options{Iterations: 100, HubFraction: 0.001, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Repeated queries must agree (lazy caches are append-only).
	a, err := ix.SingleSource(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.SingleSource(1)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("repeated query differs at %d", v)
		}
	}
	if _, err := ix.SingleSource(99); err == nil {
		t.Error("bad source accepted")
	}
}

func TestSelfScore(t *testing.T) {
	ix, err := Build(graph.PaperExample(), Options{Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ix.SingleSource(3)
	if err != nil {
		t.Fatal(err)
	}
	if s[3] != 1 {
		t.Errorf("s(u,u) = %g", s[3])
	}
	for v, score := range s {
		if score < 0 || score > 1+1e-9 {
			t.Errorf("score of %d = %g outside [0,1]", v, score)
		}
	}
}
