package prsim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"crashsim/internal/graph"
)

// TestPayloadRoundTrip: an index warmed with lazy tail entries must
// export, import, and then answer every query bit-identically to the
// original — including hub attribution, which Import recomputes from
// the graph rather than trusting from the payload.
func TestPayloadRoundTrip(t *testing.T) {
	g := testGraph(t, 140, 800, 21)
	ix, err := Build(g, Options{HubFraction: 0.1, Iterations: 60, DSamples: 25, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ { // warm: payload must carry tail tables too
		if _, err := ix.SingleSource(graph.NodeID(u)); err != nil {
			t.Fatal(err)
		}
	}
	p := ix.Export()
	if p.Opt.Workers != 0 {
		t.Errorf("exported Workers = %d, want 0 (runtime knob)", p.Opt.Workers)
	}
	loaded, err := Import(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.HubCount() != ix.HubCount() {
		t.Errorf("HubCount = %d after import, want %d", loaded.HubCount(), ix.HubCount())
	}
	if loaded.IndexEntries() != ix.IndexEntries() {
		t.Errorf("IndexEntries = %d after import, want %d", loaded.IndexEntries(), ix.IndexEntries())
	}
	for u := 0; u < g.NumNodes(); u += 7 {
		want, err := ix.SingleSource(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.SingleSource(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("SingleSource(%d) differs between original and imported index", u)
		}
	}
	// A second export must reproduce the payload exactly (same tables,
	// plus whatever tails the verification queries above added — rebuilt
	// identically because tables are pure functions of (g, opt, w)).
	if !reflect.DeepEqual(loaded.Export(), ix.Export()) {
		t.Fatal("re-export after round trip differs from original export")
	}
}

// TestImportRejectsCorruptPayloads: every structural invariant the
// loader checks, violated one at a time on an otherwise valid payload.
func TestImportRejectsCorruptPayloads(t *testing.T) {
	g := testGraph(t, 100, 600, 31)
	ix, err := Build(g, Options{HubFraction: 0.1, Iterations: 40, DSamples: 20, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SingleSource(0); err != nil {
		t.Fatal(err)
	}
	base := ix.Export()
	clone := func() Payload {
		p := base
		p.TableLevels = append([]int32(nil), base.TableLevels...)
		p.LevelCounts = append([]int32(nil), base.LevelCounts...)
		p.Origins = append([]graph.NodeID(nil), base.Origins...)
		p.Probs = append([]float64(nil), base.Probs...)
		p.D = append([]float64(nil), base.D...)
		return p
	}
	firstBuilt := -1
	for v, lv := range base.TableLevels {
		if lv != -1 {
			firstBuilt = v
			break
		}
	}
	if firstBuilt < 0 || len(base.LevelCounts) == 0 || len(base.Origins) < 2 {
		t.Fatal("exported payload too small to corrupt meaningfully")
	}

	cases := []struct {
		name    string
		corrupt func(*Payload)
		wantErr string
	}{
		{"bad options", func(p *Payload) { p.Opt.C = 9 }, "decay factor"},
		{"wrong node count", func(p *Payload) { p.TableLevels = p.TableLevels[:10] }, "sized for"},
		{"levels above max depth", func(p *Payload) { p.TableLevels[firstBuilt] = int32(base.Opt.MaxDepth) + 1 }, "levels outside"},
		{"levels below -1", func(p *Payload) { p.TableLevels[firstBuilt] = -2 }, "levels outside"},
		{"level count mismatch", func(p *Payload) { p.LevelCounts = p.LevelCounts[:len(p.LevelCounts)-1] }, "tables declare"},
		{"non-positive level count", func(p *Payload) { p.LevelCounts[0] = 0 }, "entry count"},
		{"entry column mismatch", func(p *Payload) { p.Origins = p.Origins[:len(p.Origins)-1] }, "entry columns"},
		{"d count mismatch", func(p *Payload) { p.D = p.D[:len(p.D)-1] }, "d values"},
		{"origin out of range", func(p *Payload) { p.Origins[0] = graph.NodeID(g.NumNodes()) }, "out-of-range origin"},
		{"origins not ascending", func(p *Payload) { p.Origins[0], p.Origins[1] = p.Origins[1], p.Origins[0] }, "strictly ascending"},
		{"probability at 1", func(p *Payload) { p.Probs[0] = 1 }, "outside (0,1)"},
		{"probability NaN", func(p *Payload) { p.Probs[0] = math.NaN() }, "outside (0,1)"},
		{"d above 1", func(p *Payload) { p.D[0] = 1.5 }, "outside [0,1]"},
	}
	for _, tc := range cases {
		p := clone()
		tc.corrupt(&p)
		if _, err := Import(g, p); err == nil {
			t.Errorf("%s: corrupt payload accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}

	// The ascending-origins check is per level: swapping the last entry
	// of one level with the first of the next keeps each column sorted
	// only if the loader wrongly checked globally. Covered above via
	// index 0/1 when they share a level; also confirm the pristine clone
	// still imports, proving the corruptions (not the harness) fail.
	if _, err := Import(g, clone()); err != nil {
		t.Fatalf("pristine clone rejected: %v", err)
	}
}
