package prsim

import "crashsim/internal/obs"

// Package-wide counters on the default registry, served by /metrics.
// They only observe — no estimate depends on them. Per-query values are
// accumulated locally and flushed once per query.
var (
	// statVisits counts walk steps that landed on some node; statHubHits
	// is the subset served by an eagerly indexed hub table, so
	// hub_hits/visits is the live hub-hit rate.
	statVisits  = obs.Default.Counter("prsim.visits")
	statHubHits = obs.Default.Counter("prsim.hub_hits")
	// statTailBuilds counts tables compiled lazily at query time;
	// statEntries counts (step, origin, prob) entries published, eager
	// and lazy alike.
	statTailBuilds = obs.Default.Counter("prsim.tail_builds")
	statEntries    = obs.Default.Counter("prsim.entries")
	// Scratch-pool behavior of the per-query dense accumulator.
	statScratchHits   = obs.Default.Counter("prsim.pool.scratch_hits")
	statScratchMisses = obs.Default.Counter("prsim.pool.scratch_misses")
)
