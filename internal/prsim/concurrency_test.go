package prsim

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func testGraph(t *testing.T, n, m int, seed uint64) *graph.Graph {
	t.Helper()
	edges, err := gen.ChungLu(n, m, 2.0, true, seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(n, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCompiledMatchesSkeleton is the differential oracle pinning the
// compiled flat-table Index to the map-based Skeleton it replaced:
// every source on a skewed graph must score bit-identically through
// both paths, at a hub fraction that exercises eager tables, lazy tail
// fill, and the empty-index (pure online) extreme.
func TestCompiledMatchesSkeleton(t *testing.T) {
	g := testGraph(t, 150, 900, 11)
	for _, hf := range []float64{0.001, 0.1, 1.0} {
		opt := Options{HubFraction: hf, Iterations: 80, DSamples: 40, Seed: 4}
		sk, err := NewSkeleton(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if sk.HubCount() != ix.HubCount() {
			t.Fatalf("hf=%g: hub counts differ: skeleton %d, compiled %d", hf, sk.HubCount(), ix.HubCount())
		}
		for u := 0; u < g.NumNodes(); u++ {
			want, err := sk.SingleSource(graph.NodeID(u))
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.SingleSource(graph.NodeID(u))
			if err != nil {
				t.Fatal(err)
			}
			if len(want) != len(got) {
				t.Fatalf("hf=%g source %d: %d scores skeleton vs %d compiled", hf, u, len(want), len(got))
			}
			for v, s := range want {
				if math.Float64bits(got[v]) != math.Float64bits(s) {
					t.Fatalf("hf=%g source %d node %d: compiled %v vs skeleton %v", hf, u, v, got[v], s)
				}
			}
		}
	}
}

// TestConcurrentColdQueries hammers a cold index (almost no eager
// hubs, so nearly every table goes through the lazy singleflight fill)
// with concurrent SingleSourceCtx queries and checks each result
// bit-identical to a sequential reference. Run under -race this is the
// concurrency guarantee the compiled index exists to provide.
func TestConcurrentColdQueries(t *testing.T) {
	g := testGraph(t, 200, 1400, 3)
	opt := Options{HubFraction: 0.001, Iterations: 60, DSamples: 30, Seed: 8}

	ref, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 12
	want := make([]map[graph.NodeID]float64, goroutines)
	sources := make([]graph.NodeID, goroutines)
	for i := range sources {
		// Overlapping sources so goroutines race on the same tail
		// tables, not just distinct ones.
		sources[i] = graph.NodeID((i * 7) % 20)
		if want[i], err = ref.SingleSource(sources[i]); err != nil {
			t.Fatal(err)
		}
	}

	ix, err := Build(g, opt) // cold: no tail tables yet
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := ix.SingleSourceCtx(context.Background(), sources[i])
			if err != nil {
				errs[i] = err
				return
			}
			if !reflect.DeepEqual(got, want[i]) {
				errs[i] = fmt.Errorf("goroutine %d: concurrent result differs from sequential reference", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestIndexEntriesAgreesWithScan: the running counter behind
// IndexEntries must match a full scan over published tables, after the
// eager build and again after queries have filled tail tables.
func TestIndexEntriesAgreesWithScan(t *testing.T) {
	g := testGraph(t, 120, 700, 5)
	ix, err := Build(g, Options{HubFraction: 0.1, Iterations: 50, DSamples: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	scan := func() int {
		total := 0
		for v := range ix.tables {
			if tb := ix.tables[v].Load(); tb != nil {
				total += tb.entries()
			}
		}
		return total
	}
	if got, want := ix.IndexEntries(), scan(); got != want {
		t.Fatalf("after build: IndexEntries = %d, scan = %d", got, want)
	}
	if ix.IndexEntries() == 0 {
		t.Fatal("eager build published no entries")
	}
	for u := 0; u < 30; u++ {
		if _, err := ix.SingleSource(graph.NodeID(u)); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := ix.IndexEntries(), scan(); got != want {
		t.Fatalf("after queries: IndexEntries = %d, scan = %d", got, want)
	}
	if ix.Stats().TailBuilds == 0 {
		t.Fatal("queries built no tail tables; test exercises nothing")
	}
}

// TestMultiSourceMatchesSequential: a parallel batch with duplicates
// must be bit-identical, entry for entry, to issuing the queries one
// at a time against a fresh index.
func TestMultiSourceMatchesSequential(t *testing.T) {
	g := testGraph(t, 150, 900, 9)
	opt := Options{HubFraction: 0.05, Iterations: 70, DSamples: 25, Seed: 12}
	seq, err := Build(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	batchOpt := opt
	batchOpt.Workers = 8
	bat, err := Build(g, batchOpt)
	if err != nil {
		t.Fatal(err)
	}
	sources := []graph.NodeID{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	got, err := bat.MultiSource(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sources) {
		t.Fatalf("MultiSource returned %d results for %d sources", len(got), len(sources))
	}
	for i, u := range sources {
		want, err := seq.SingleSource(u)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("batch result %d (source %d) differs from sequential query", i, u)
		}
	}
	if _, err := bat.MultiSource(context.Background(), []graph.NodeID{0, 999}); err == nil {
		t.Error("out-of-range batch source accepted")
	}
}

// TestBuildWorkersDeterminism: the built index must be byte-identical
// whatever the worker count — Export payloads are deep-equal.
func TestBuildWorkersDeterminism(t *testing.T) {
	g := testGraph(t, 180, 1100, 2)
	base := Options{HubFraction: 0.2, Iterations: 40, DSamples: 30, Seed: 7}
	one, err := Build(g, base)
	if err != nil {
		t.Fatal(err)
	}
	wide := base
	wide.Workers = 8
	many, err := Build(g, wide)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one.Export(), many.Export()) {
		t.Fatal("Build output differs between 1 and 8 workers")
	}
}

// TestCancellation: a cancelled context must abort both the parallel
// hub build and an in-flight query.
func TestCancellation(t *testing.T) {
	g := testGraph(t, 150, 900, 13)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildCtx(ctx, g, Options{HubFraction: 0.5, Seed: 1}); err == nil {
		t.Error("BuildCtx succeeded with cancelled context")
	}
	ix, err := Build(g, Options{HubFraction: 0.01, Iterations: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SingleSourceCtx(ctx, 0); err == nil {
		t.Error("SingleSourceCtx succeeded with cancelled context")
	}
	if _, err := ix.MultiSource(ctx, []graph.NodeID{0, 1}); err == nil {
		t.Error("MultiSource succeeded with cancelled context")
	}
}
