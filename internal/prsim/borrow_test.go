package prsim

import (
	"reflect"
	"testing"

	"crashsim/internal/graph"
)

// TestImportBorrowedBitIdentical: the validation-skipping borrow
// import must behave exactly like Import — same hub attribution, same
// scores, working lazy tail fill layered over the adopted columns —
// and release its hook exactly once on Close.
func TestImportBorrowedBitIdentical(t *testing.T) {
	g := testGraph(t, 120, 700, 33)
	ix, err := Build(g, Options{HubFraction: 0.1, Iterations: 50, DSamples: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ { // warm a few tail tables into the payload
		if _, err := ix.SingleSource(graph.NodeID(u)); err != nil {
			t.Fatal(err)
		}
	}
	p := ix.Export()
	copied, err := Import(g, p)
	if err != nil {
		t.Fatal(err)
	}
	borrowed, err := ImportBorrowed(g, p)
	if err != nil {
		t.Fatal(err)
	}
	released := 0
	borrowed.SetRelease(func() error { released++; return nil })
	if borrowed.HubCount() != copied.HubCount() {
		t.Fatalf("HubCount = %d, want %d", borrowed.HubCount(), copied.HubCount())
	}
	// Query past the warmed prefix so the borrowed index exercises lazy
	// tail fill (heap-side tables next to the adopted payload columns).
	for u := 0; u < g.NumNodes(); u += 5 {
		want, err := copied.SingleSource(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		got, err := borrowed.SingleSource(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("borrowed scores differ at source %d", u)
		}
	}
	if !reflect.DeepEqual(borrowed.Export(), copied.Export()) {
		t.Fatal("borrowed re-export differs from copied re-export")
	}
	if err := borrowed.Close(); err != nil {
		t.Fatal(err)
	}
	if err := borrowed.Close(); err != nil {
		t.Fatal(err)
	}
	if released != 1 {
		t.Fatalf("release ran %d times, want exactly once", released)
	}
}

// TestImportBorrowedStillChecksShape: skipping semantic validation
// must not skip the structural checks that keep indexing in bounds.
func TestImportBorrowedStillChecksShape(t *testing.T) {
	g := testGraph(t, 60, 300, 4)
	ix, err := Build(g, Options{HubFraction: 0.1, Iterations: 40, DSamples: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := ix.Export()
	p.LevelCounts = p.LevelCounts[:len(p.LevelCounts)-1]
	if _, err := ImportBorrowed(g, p); err == nil {
		t.Fatal("truncated level counts accepted")
	}
}
