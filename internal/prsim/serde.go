package prsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"crashsim/internal/graph"
)

// Serialization support for the persistent index store (internal/store).
//
// A PRSim index's persistable state is the set of published tables —
// the eager hub tables plus whatever tail tables earlier queries have
// cached — and each table's d value. The hub set itself is NOT
// persisted: it is a deterministic function of (graph, HubFraction)
// and Import recomputes it with the same selectHubs call Build uses,
// so a loaded index attributes hub hits exactly as the exported one
// did. Because every table is a pure function of (g, opt, w), a loaded
// index answers every query bit-identically to the index it was
// exported from, and any table missing from the payload is simply
// rebuilt lazily on first visit.

// Payload is the flat, serialization-shaped view of an Index. The
// store layer owns the byte encoding; this type only fixes what must
// be persisted.
type Payload struct {
	// Opt is the defaulted build configuration. Workers is a runtime
	// knob with no effect on the built index and is not preserved.
	Opt Options
	// TableLevels[v] is the number of stored levels of node v's table,
	// or -1 if v's table was never built. LevelCounts concatenates the
	// per-level entry counts of built tables in node order; Origins and
	// Probs concatenate the level entries in the same order, each level
	// sorted by origin ascending. D holds one d(w) per built table, in
	// node order.
	TableLevels []int32
	LevelCounts []int32
	Origins     []graph.NodeID
	Probs       []float64
	D           []float64
}

// Export returns the index's persistable state: every table published
// so far (eager hubs and lazily cached tails alike). The returned
// slices are freshly allocated and do not alias the index; concurrent
// queries may keep publishing tables during the export — each table is
// snapshotted atomically, so the payload is a consistent prefix.
func (ix *Index) Export() Payload {
	n := ix.g.NumNodes()
	p := Payload{
		Opt:         ix.opt,
		TableLevels: make([]int32, n),
	}
	p.Opt.Workers = 0
	for v := 0; v < n; v++ {
		t := ix.tables[v].Load()
		if t == nil {
			p.TableLevels[v] = -1
			continue
		}
		p.TableLevels[v] = int32(t.levels())
		for l := 0; l < t.levels(); l++ {
			p.LevelCounts = append(p.LevelCounts, t.off[l+1]-t.off[l])
		}
		p.Origins = append(p.Origins, t.origins...)
		p.Probs = append(p.Probs, t.probs...)
		p.D = append(p.D, t.d)
	}
	return p
}

// Import reconstructs an Index over g from an exported payload. The
// payload is treated as untrusted: level structure, origins and
// probabilities are range-checked before any table is published. The
// hub set is recomputed from (g, HubFraction) rather than trusted from
// the payload. g must be the graph the index was built on; the store
// layer enforces that identity by graph version before calling Import.
//
// The published tables alias the payload's Origins/Probs columns (the
// columns are already the flat serving layout); callers hand over
// ownership. Lazily built tail tables are published heap-side next to
// them, so a payload backed by a read-only mapping keeps working as
// the tail cache grows.
func Import(g *graph.Graph, p Payload) (*Index, error) {
	return importPayload(g, p, true)
}

// ImportBorrowed is Import minus the per-entry semantic validation:
// structural checks (level counts, column lengths) still run, but the
// O(entries) origin/probability range scan is skipped — the mapped
// loader uses this when the section's checksum already vouches for
// the bytes, so binding a multi-gigabyte hub arena touches none of
// its pages.
func ImportBorrowed(g *graph.Graph, p Payload) (*Index, error) {
	return importPayload(g, p, false)
}

func importPayload(g *graph.Graph, p Payload, validate bool) (*Index, error) {
	o := p.Opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("prsim: import: %w", err)
	}
	n := g.NumNodes()
	if len(p.TableLevels) != n {
		return nil, fmt.Errorf("prsim: import: payload sized for %d nodes, graph has %d", len(p.TableLevels), n)
	}
	built, levelTotal := 0, 0
	for v, lv := range p.TableLevels {
		switch {
		case lv == -1:
			continue
		case lv < 0 || int(lv) > o.MaxDepth:
			return nil, fmt.Errorf("prsim: import: node %d has %d levels outside [-1,%d]", v, lv, o.MaxDepth)
		}
		built++
		levelTotal += int(lv)
	}
	if len(p.LevelCounts) != levelTotal {
		return nil, fmt.Errorf("prsim: import: %d level counts, tables declare %d levels", len(p.LevelCounts), levelTotal)
	}
	if len(p.D) != built {
		return nil, fmt.Errorf("prsim: import: %d d values for %d built tables", len(p.D), built)
	}
	entryTotal := 0
	for i, c := range p.LevelCounts {
		if c < 1 {
			return nil, fmt.Errorf("prsim: import: level %d has non-positive entry count %d", i, c)
		}
		entryTotal += int(c)
	}
	if len(p.Origins) != entryTotal || len(p.Probs) != entryTotal {
		return nil, fmt.Errorf("prsim: import: entry columns have %d/%d values, level counts sum to %d",
			len(p.Origins), len(p.Probs), entryTotal)
	}

	ix := &Index{
		g:      g,
		opt:    o,
		sc:     math.Sqrt(o.C),
		tables: make([]atomic.Pointer[table], n),
		eager:  make([]bool, n),
		calls:  make(map[graph.NodeID]*sync.WaitGroup),
	}
	if o.Iterations > 0 {
		ix.nq = o.Iterations
	} else {
		ix.nq = int(math.Ceil(3 * o.C / (o.Eps * o.Eps) * math.Log(float64(n)/o.Delta)))
	}
	hubs := selectHubs(g, int(o.HubFraction*float64(n)))
	ix.hubs = len(hubs)
	for _, w := range hubs {
		ix.eager[w] = true
	}

	level, entry, di := 0, 0, 0
	for v := 0; v < n; v++ {
		lv := int(p.TableLevels[v])
		if lv == -1 {
			continue
		}
		t := &table{off: make([]int32, 1, lv+1)}
		count := 0
		for l := 0; l < lv; l++ {
			count += int(p.LevelCounts[level])
			level++
			t.off = append(t.off, int32(count))
		}
		t.origins = p.Origins[entry : entry+count : entry+count]
		t.probs = p.Probs[entry : entry+count : entry+count]
		entry += count
		if validate {
			for l := 0; l < lv; l++ {
				prev := graph.NodeID(-1)
				for i := t.off[l]; i < t.off[l+1]; i++ {
					org, prob := t.origins[i], t.probs[i]
					if org < 0 || int(org) >= n {
						return nil, fmt.Errorf("prsim: import: node %d level %d references out-of-range origin %d", v, l+1, org)
					}
					if org <= prev {
						return nil, fmt.Errorf("prsim: import: node %d level %d origins not strictly ascending at %d", v, l+1, org)
					}
					prev = org
					if prob <= 0 || prob >= 1 || math.IsNaN(prob) {
						return nil, fmt.Errorf("prsim: import: node %d level %d origin %d has probability %v outside (0,1)", v, l+1, org, prob)
					}
				}
			}
		}
		t.d = p.D[di]
		di++
		if validate && (t.d < 0 || t.d > 1 || math.IsNaN(t.d)) {
			return nil, fmt.Errorf("prsim: import: d(%d) = %v outside [0,1]", v, t.d)
		}
		ix.publish(graph.NodeID(v), t)
	}
	return ix, nil
}
