// Package prsim implements a PRSim-style estimator (Wei et al., SIGMOD
// 2019, the paper's reference [20]): single-source SimRank tuned for
// power-law graphs by splitting work between an index over hub nodes
// and on-the-fly computation for the long tail.
//
// Like SLING it evaluates the last-meeting decomposition
//
//	sim(u, v) = Σ_ℓ Σ_w Pr[W(u) at w at step ℓ] · h_ℓ(v, w) · d(w)
//
// but instead of indexing h for every node, it (i) samples the source
// side: n_q truncated √c-walks from u realize Pr[W(u) at w at ℓ], and
// (ii) precomputes the reverse-push tables h_ℓ(·, w) only for the
// highest in-degree hubs — the nodes walks actually hit on a power-law
// graph — while tail nodes are pushed lazily at query time and cached.
// The correction d(w) is the same never-meet-again probability SLING
// estimates, computed per node alongside its table.
//
// The index is compiled flat: each published table packs its (origin,
// prob) pairs into contiguous arrays addressed by a per-step offset
// table, the eager hub tables share one packed arena (mirroring the
// CSR layout of internal/core/frozen.go), and hub tables are built in
// parallel with byte-identical output across worker counts. Published
// tables are immutable; lazy tail fill is guarded by per-node
// singleflight so concurrent queries are safe without a lock on the
// hot read path. The map-based pre-compile implementation is retained
// in skeleton.go as the benchmark baseline and differential oracle.
//
// Compared to the original system this drops the variance-adaptive
// sample allocation and selects hubs by in-degree rather than by
// PageRank; the architecture (hub index + source sampling + tail
// fallback) is preserved. See DESIGN.md §15.
package prsim

import (
	"context"
	"fmt"
	"maps"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"crashsim/internal/graph"
	"crashsim/internal/par"
	"crashsim/internal/rng"
)

// Options configures the index and queries.
type Options struct {
	// C is the SimRank decay factor in (0,1). Default 0.6.
	C float64
	// Eps is the accuracy target steering the derived budgets.
	// Default 0.025.
	Eps float64
	// Delta is the failure probability for the derived sample count.
	// Default 0.01.
	Delta float64
	// HubFraction is the fraction of nodes (by in-degree rank) indexed
	// eagerly. Default 0.05. 0 keeps the index empty (pure online);
	// 1 indexes everything (SLING-like).
	HubFraction float64
	// Iterations overrides the number of source walks n_q per query
	// (0 derives ⌈3c/ε²·ln(n/δ)⌉, as for the other MC methods).
	Iterations int
	// MaxDepth caps walk length and push depth. 0 derives the depth at
	// which the remaining walk mass drops below Eps/4.
	MaxDepth int
	// Prune drops push entries below this threshold. 0 derives
	// ε·(1−√c)/8.
	Prune float64
	// DSamples is the per-node sample count for d(w). Default 120.
	DSamples int
	// Workers bounds hub-build and batch-query parallelism (default 1).
	// It never affects results — builds are byte-identical across
	// worker counts — and is not part of the index identity.
	Workers int
	// Seed makes all estimation deterministic.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Eps == 0 {
		o.Eps = 0.025
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.HubFraction == 0 {
		o.HubFraction = 0.05
	}
	sc := math.Sqrt(o.C)
	if o.MaxDepth == 0 {
		o.MaxDepth = int(math.Ceil(math.Log(o.Eps/4) / math.Log(sc)))
	}
	if o.Prune == 0 {
		o.Prune = o.Eps * (1 - sc) / 8
	}
	if o.DSamples == 0 {
		o.DSamples = 120
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

// WithDefaults returns the options with every zero field replaced by
// its default, the form recorded in the index and its snapshots.
func (o Options) WithDefaults() Options { return o.withDefaults() }

// Validate checks option ranges after defaulting.
func (o Options) Validate() error {
	q := o.withDefaults()
	if q.C <= 0 || q.C >= 1 {
		return fmt.Errorf("prsim: decay factor c=%g outside (0,1)", q.C)
	}
	if q.Eps <= 0 || q.Eps >= 1 {
		return fmt.Errorf("prsim: accuracy target eps=%g outside (0,1)", q.Eps)
	}
	if q.Delta <= 0 || q.Delta >= 1 {
		return fmt.Errorf("prsim: failure probability delta=%g outside (0,1)", q.Delta)
	}
	if q.HubFraction < 0 || q.HubFraction > 1 {
		return fmt.Errorf("prsim: hub fraction %g outside [0,1]", q.HubFraction)
	}
	if q.Iterations < 0 {
		return fmt.Errorf("prsim: iterations must be >= 0, got %d", q.Iterations)
	}
	if q.MaxDepth < 1 {
		return fmt.Errorf("prsim: max depth must be >= 1, got %d", q.MaxDepth)
	}
	if q.Prune < 0 {
		return fmt.Errorf("prsim: prune threshold must be >= 0, got %g", q.Prune)
	}
	if q.DSamples < 1 {
		return fmt.Errorf("prsim: d samples must be >= 1, got %d", q.DSamples)
	}
	if q.Workers < 1 {
		return fmt.Errorf("prsim: workers must be >= 1, got %d", q.Workers)
	}
	return nil
}

// table is one node's compiled reverse-push result plus its d value:
// step ℓ's (origin, prob) pairs live at [off[ℓ-1], off[ℓ]) in the
// packed origins/probs arrays, sorted by origin ascending. A table is
// immutable once published.
type table struct {
	off     []int32
	origins []graph.NodeID
	probs   []float64
	d       float64
}

func (t *table) levels() int  { return len(t.off) - 1 }
func (t *table) entries() int { return len(t.origins) }

// Index holds the compiled hub tables plus lazily filled tail caches.
// All methods are safe for concurrent use.
type Index struct {
	g   *graph.Graph
	opt Options
	nq  int
	sc  float64

	// tables[w] is the published (immutable) table of node w, nil until
	// built. Hub tables are built eagerly and alias one packed arena;
	// tail tables are published on first visit.
	tables []atomic.Pointer[table]
	// eager[w] marks the hub set chosen at build time; the walk loop
	// reads it to attribute hub hits.
	eager []bool
	hubs  int

	// entriesTotal/visits/hubHits/tailBuilds back Stats() and the
	// prsim.* obs counters; entriesTotal is the running counter behind
	// IndexEntries, updated at table publish.
	entriesTotal atomic.Int64
	visits       atomic.Int64
	hubHits      atomic.Int64
	tailBuilds   atomic.Int64

	// Per-node singleflight for the lazy tail fill: mu guards only the
	// in-flight map, never the published tables, so the hot read path
	// (an atomic pointer load) takes no lock.
	mu    sync.Mutex
	calls map[graph.NodeID]*sync.WaitGroup

	pool sync.Pool // *queryScratch

	// release gives borrowed memory back to its owner (drops the
	// mapping reference an imported-from-mmap index holds).
	release func() error
}

// Close releases any borrowed memory backing the index (a no-op for
// built or copied indexes). Idempotent; the index must not be queried
// afterwards.
func (ix *Index) Close() error {
	r := ix.release
	ix.release = nil
	if r == nil {
		return nil
	}
	return r()
}

// SetRelease attaches the borrowed-memory release hook; the store
// layer calls it when an index is imported aliasing a mapping.
func (ix *Index) SetRelease(f func() error) { ix.release = f }

// Stats is a point-in-time snapshot of the index's work counters.
type Stats struct {
	Visits     int64 // walk steps that landed on some node
	HubHits    int64 // visits served by an eagerly indexed hub table
	TailBuilds int64 // tables built lazily at query time
	Entries    int64 // total (step, origin, prob) entries published
}

// Stats reports cumulative per-index counters (the process-wide
// equivalents are the prsim.* obs counters on /metrics).
func (ix *Index) Stats() Stats {
	return Stats{
		Visits:     ix.visits.Load(),
		HubHits:    ix.hubHits.Load(),
		TailBuilds: ix.tailBuilds.Load(),
		Entries:    ix.entriesTotal.Load(),
	}
}

// Build selects hubs by in-degree and compiles their tables and d
// values in parallel (byte-identical across worker counts); everything
// else is computed on demand at query time.
func Build(g *graph.Graph, opt Options) (*Index, error) {
	return BuildCtx(context.Background(), g, opt)
}

// BuildCtx is Build with cancellation; on error the index is unusable.
func BuildCtx(ctx context.Context, g *graph.Graph, opt Options) (*Index, error) {
	o := opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	ix := &Index{
		g:      g,
		opt:    o,
		sc:     math.Sqrt(o.C),
		tables: make([]atomic.Pointer[table], n),
		eager:  make([]bool, n),
		calls:  make(map[graph.NodeID]*sync.WaitGroup),
	}
	if o.Iterations > 0 {
		ix.nq = o.Iterations
	} else {
		ix.nq = int(math.Ceil(3 * o.C / (o.Eps * o.Eps) * math.Log(float64(n)/o.Delta)))
	}

	hubs := selectHubs(g, int(o.HubFraction*float64(n)))
	ix.hubs = len(hubs)
	for _, w := range hubs {
		ix.eager[w] = true
	}
	if len(hubs) > 0 {
		// Compile every hub table independently (each is a pure function
		// of (g, opt, w)), then assemble serially in hub order into one
		// packed arena — deterministic regardless of worker count.
		parts := make([]*table, len(hubs))
		if err := par.ForEachCtx(ctx, len(hubs), o.Workers, func(i int) {
			parts[i] = ix.compile(hubs[i])
		}); err != nil {
			return nil, err
		}
		total := 0
		for _, p := range parts {
			total += p.entries()
		}
		origins := make([]graph.NodeID, 0, total)
		probs := make([]float64, 0, total)
		for _, p := range parts {
			origins = append(origins, p.origins...)
			probs = append(probs, p.probs...)
		}
		base := 0
		for i, p := range parts {
			end := base + p.entries()
			ix.publish(hubs[i], &table{
				off:     p.off,
				origins: origins[base:end:end],
				probs:   probs[base:end:end],
				d:       p.d,
			})
			base = end
		}
	}
	return ix, nil
}

// selectHubs returns the h highest in-degree nodes (ties by ascending
// id) via a degree histogram — O(n + max degree), no sort over n.
func selectHubs(g *graph.Graph, h int) []graph.NodeID {
	n := g.NumNodes()
	if h <= 0 {
		return nil
	}
	if h > n {
		h = n
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.InDegree(graph.NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for v := 0; v < n; v++ {
		counts[g.InDegree(graph.NodeID(v))]++
	}
	// cutoff = the h-th largest in-degree: every node above it is a
	// hub, and nodes exactly at it fill the remainder in id order.
	cutoff, above := maxDeg, 0
	for above+counts[cutoff] < h {
		above += counts[cutoff]
		cutoff--
	}
	hubs := make([]graph.NodeID, 0, h)
	atCutoff := h - above
	for v := 0; v < n && len(hubs) < h; v++ {
		d := g.InDegree(graph.NodeID(v))
		if d > cutoff {
			hubs = append(hubs, graph.NodeID(v))
		} else if d == cutoff && atCutoff > 0 {
			hubs = append(hubs, graph.NodeID(v))
			atCutoff--
		}
	}
	return hubs
}

// HubCount reports how many nodes were indexed eagerly.
func (ix *Index) HubCount() int { return ix.hubs }

// IndexEntries returns the total number of stored (step, origin, prob)
// entries across all published tables (eager hubs plus lazily cached
// tail nodes) — the index-memory proxy the benchmark reports use. It
// reads a running counter maintained at table publish, not a rescan.
func (ix *Index) IndexEntries() int { return int(ix.entriesTotal.Load()) }

// Options returns the fully defaulted options the index was built with.
func (ix *Index) Options() Options { return ix.opt }

// Graph returns the graph the index was built on.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// publish stores w's immutable table and advances the entry counters.
// Callers must hold the singleflight slot for w (or be the builder).
func (ix *Index) publish(w graph.NodeID, t *table) {
	ix.tables[w].Store(t)
	ix.entriesTotal.Add(int64(t.entries()))
	statEntries.Add(uint64(t.entries()))
}

// ensure returns w's table, building and publishing it on first visit.
// The fast path is a single atomic load; builds of distinct nodes
// proceed in parallel, and concurrent requests for the same node
// coalesce behind one build (per-node singleflight).
func (ix *Index) ensure(w graph.NodeID) *table {
	if t := ix.tables[w].Load(); t != nil {
		return t
	}
	for {
		ix.mu.Lock()
		if t := ix.tables[w].Load(); t != nil {
			ix.mu.Unlock()
			return t
		}
		if wg, ok := ix.calls[w]; ok {
			ix.mu.Unlock()
			wg.Wait() // publish happens-before Done
			continue
		}
		wg := new(sync.WaitGroup)
		wg.Add(1)
		ix.calls[w] = wg
		ix.mu.Unlock()

		t := ix.compile(w)
		ix.publish(w, t)
		ix.tailBuilds.Add(1)
		statTailBuilds.Inc()

		ix.mu.Lock()
		delete(ix.calls, w)
		ix.mu.Unlock()
		wg.Done()
		return t
	}
}

// compile builds the reverse-push table of w — h_ℓ(v, w) for ℓ up to
// MaxDepth via a forward level expansion along out-edges with the
// √c/|I(child)| multiplier, pruning small entries — plus d(w). It is a
// pure function of (g, opt, w): levels expand in ascending node order,
// so the packed floats are bit-identical however the build is
// scheduled (and identical to the map-based skeleton's).
func (ix *Index) compile(w graph.NodeID) *table {
	t := &table{off: make([]int32, 1, ix.opt.MaxDepth+1)}
	cur := map[graph.NodeID]float64{w: 1}
	var order []graph.NodeID
	for step := 1; step <= ix.opt.MaxDepth; step++ {
		next := make(map[graph.NodeID]float64, len(cur)*2)
		order = order[:0]
		for x := range cur {
			order = append(order, x)
		}
		slices.Sort(order)
		for _, x := range order {
			px := cur[x]
			for _, y := range ix.g.Out(x) {
				p := px * ix.sc / float64(ix.g.InDegree(y))
				if p < ix.opt.Prune {
					continue
				}
				next[y] += p
			}
		}
		if len(next) == 0 {
			break
		}
		order = order[:0]
		for x := range next {
			order = append(order, x)
		}
		slices.Sort(order)
		for _, v := range order {
			t.origins = append(t.origins, v)
			t.probs = append(t.probs, next[v])
		}
		t.off = append(t.off, int32(len(t.origins)))
		cur = next
	}
	t.d = ix.estimateD(w)
	return t
}

// estimateD estimates d(w), the probability that two coupled √c-walks
// from w never meet again, by paired sampling on an independent
// per-node RNG stream.
func (ix *Index) estimateD(w graph.NodeID) float64 {
	r := rng.Split(ix.opt.Seed^0x5157, uint64(w))
	never := 0
	for s := 0; s < ix.opt.DSamples; s++ {
		a, b := w, w
		met := false
		for t := 1; t <= ix.opt.MaxDepth; t++ {
			if r.Float64() >= ix.sc || r.Float64() >= ix.sc {
				break
			}
			ia, ib := ix.g.In(a), ix.g.In(b)
			if len(ia) == 0 || len(ib) == 0 {
				break
			}
			a = ia[r.IntN(len(ia))]
			b = ib[r.IntN(len(ib))]
			if a == b {
				met = true
				break
			}
		}
		if !met {
			never++
		}
	}
	return float64(never) / float64(ix.opt.DSamples)
}

// queryScratch is the pooled per-query accumulator: a dense score slab
// plus an epoch-stamped touch set, so neither needs an O(n) clear
// between queries.
type queryScratch struct {
	acc     []float64
	mark    []uint64
	epoch   uint64
	touched []graph.NodeID
}

func (s *queryScratch) add(v graph.NodeID, x float64) {
	if s.mark[v] != s.epoch {
		s.mark[v] = s.epoch
		s.acc[v] = 0
		s.touched = append(s.touched, v)
	}
	s.acc[v] += x
}

func (ix *Index) acquireScratch(n int) *queryScratch {
	var s *queryScratch
	if v := ix.pool.Get(); v != nil {
		s = v.(*queryScratch)
		statScratchHits.Inc()
	} else {
		s = new(queryScratch)
		statScratchMisses.Inc()
	}
	if cap(s.acc) < n {
		s.acc = make([]float64, n)
		s.mark = make([]uint64, n)
	} else {
		s.acc = s.acc[:n]
		s.mark = s.mark[:n]
	}
	s.epoch++
	if s.epoch == 0 { // wrapped: stale marks could alias, clear once
		clear(s.mark)
		s.epoch = 1
	}
	s.touched = s.touched[:0]
	return s
}

func (ix *Index) releaseScratch(s *queryScratch) { ix.pool.Put(s) }

// SingleSource estimates sim(u, ·) without cancellation.
func (ix *Index) SingleSource(u graph.NodeID) (map[graph.NodeID]float64, error) {
	return ix.SingleSourceCtx(context.Background(), u)
}

// SingleSourceCtx estimates sim(u, ·): n_q source walks realize the
// source-side distribution; each visited (step, node) adds the node's
// table column at that step, weighted by d(node). Tail nodes' tables
// are compiled on first visit and cached for later queries. Safe for
// concurrent use; honors ctx between walk batches.
func (ix *Index) SingleSourceCtx(ctx context.Context, u graph.NodeID) (map[graph.NodeID]float64, error) {
	n := ix.g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("prsim: source %d out of range for n=%d", u, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := ix.acquireScratch(n)
	defer ix.releaseScratch(s)
	var visits, hubHits int64
	r := rng.Split(ix.opt.Seed, uint64(u))
	for k := 0; k < ix.nq; k++ {
		if k&63 == 63 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		cur := u
		for step := 1; step <= ix.opt.MaxDepth; step++ {
			if r.Float64() >= ix.sc {
				break
			}
			in := ix.g.In(cur)
			if len(in) == 0 {
				break
			}
			cur = in[r.IntN(len(in))]
			visits++
			if ix.eager[cur] {
				hubHits++
			}
			t := ix.ensure(cur)
			if step > t.levels() {
				continue
			}
			lo, hi := t.off[step-1], t.off[step]
			dw := t.d
			for i := lo; i < hi; i++ {
				s.add(t.origins[i], t.probs[i]*dw)
			}
		}
	}
	ix.visits.Add(visits)
	ix.hubHits.Add(hubHits)
	statVisits.Add(uint64(visits))
	statHubHits.Add(uint64(hubHits))
	inv := 1 / float64(ix.nq)
	out := make(map[graph.NodeID]float64, len(s.touched)+1)
	for _, v := range s.touched {
		out[v] = s.acc[v] * inv
	}
	out[u] = 1
	return out, nil
}

// MultiSource answers a batch of sources, bit-identical to issuing
// SingleSourceCtx per source in order. Duplicate sources are computed
// once and cloned; unique sources fan out across opt.Workers, sharing
// one lazy table build per unique visited node through the per-node
// singleflight and one pooled scratch arena per worker.
func (ix *Index) MultiSource(ctx context.Context, sources []graph.NodeID) ([]map[graph.NodeID]float64, error) {
	n := ix.g.NumNodes()
	for _, u := range sources {
		if u < 0 || int(u) >= n {
			return nil, fmt.Errorf("prsim: source %d out of range for n=%d", u, n)
		}
	}
	uniq := make([]graph.NodeID, 0, len(sources))
	pos := make(map[graph.NodeID]int, len(sources))
	for _, u := range sources {
		if _, ok := pos[u]; !ok {
			pos[u] = len(uniq)
			uniq = append(uniq, u)
		}
	}
	res := make([]map[graph.NodeID]float64, len(uniq))
	errs := make([]error, len(uniq))
	if err := par.ForEachCtx(ctx, len(uniq), ix.opt.Workers, func(i int) {
		res[i], errs[i] = ix.SingleSourceCtx(ctx, uniq[i])
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]map[graph.NodeID]float64, len(sources))
	used := make([]bool, len(uniq))
	for i, u := range sources {
		j := pos[u]
		if used[j] {
			out[i] = maps.Clone(res[j])
		} else {
			out[i] = res[j]
			used[j] = true
		}
	}
	return out, nil
}
