// Package prsim implements a PRSim-style baseline (Wei et al., SIGMOD
// 2019, the paper's reference [20]): single-source SimRank tuned for
// power-law graphs by splitting work between an index over hub nodes
// and on-the-fly computation for the long tail.
//
// Like SLING it evaluates the last-meeting decomposition
//
//	sim(u, v) = Σ_ℓ Σ_w Pr[W(u) at w at step ℓ] · h_ℓ(v, w) · d(w)
//
// but instead of indexing h for every node, it (i) samples the source
// side: n_q truncated √c-walks from u realize Pr[W(u) at w at ℓ], and
// (ii) precomputes the reverse-push tables h_ℓ(·, w) only for the
// highest in-degree hubs — the nodes walks actually hit on a power-law
// graph — while tail nodes are pushed lazily at query time and cached.
// The correction d(w) is the same never-meet-again probability SLING
// estimates, computed lazily per visited node.
//
// Compared to the original system this drops the variance-adaptive
// sample allocation and selects hubs by in-degree rather than by
// PageRank; the architecture (hub index + source sampling + tail
// fallback) is preserved. See DESIGN.md.
package prsim

import (
	"fmt"
	"math"
	"sort"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// Options configures the index and queries.
type Options struct {
	// C is the SimRank decay factor in (0,1). Default 0.6.
	C float64
	// Eps is the accuracy target steering the derived budgets.
	// Default 0.025.
	Eps float64
	// Delta is the failure probability for the derived sample count.
	// Default 0.01.
	Delta float64
	// HubFraction is the fraction of nodes (by in-degree rank) indexed
	// eagerly. Default 0.05. 0 keeps the index empty (pure online);
	// 1 indexes everything (SLING-like).
	HubFraction float64
	// Iterations overrides the number of source walks n_q per query
	// (0 derives ⌈3c/ε²·ln(n/δ)⌉, as for the other MC methods).
	Iterations int
	// MaxDepth caps walk length and push depth. 0 derives the depth at
	// which the remaining walk mass drops below Eps/4.
	MaxDepth int
	// Prune drops push entries below this threshold. 0 derives
	// ε·(1−√c)/8.
	Prune float64
	// DSamples is the per-node sample count for d(w). Default 120.
	DSamples int
	// Seed makes all estimation deterministic.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Eps == 0 {
		o.Eps = 0.025
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.HubFraction == 0 {
		o.HubFraction = 0.05
	}
	sc := math.Sqrt(o.C)
	if o.MaxDepth == 0 {
		o.MaxDepth = int(math.Ceil(math.Log(o.Eps/4) / math.Log(sc)))
	}
	if o.Prune == 0 {
		o.Prune = o.Eps * (1 - sc) / 8
	}
	if o.DSamples == 0 {
		o.DSamples = 120
	}
	return o
}

// Validate checks option ranges after defaulting.
func (o Options) Validate() error {
	q := o.withDefaults()
	if q.C <= 0 || q.C >= 1 {
		return fmt.Errorf("prsim: decay factor c=%g outside (0,1)", q.C)
	}
	if q.Eps <= 0 || q.Eps >= 1 {
		return fmt.Errorf("prsim: accuracy target eps=%g outside (0,1)", q.Eps)
	}
	if q.Delta <= 0 || q.Delta >= 1 {
		return fmt.Errorf("prsim: failure probability delta=%g outside (0,1)", q.Delta)
	}
	if q.HubFraction < 0 || q.HubFraction > 1 {
		return fmt.Errorf("prsim: hub fraction %g outside [0,1]", q.HubFraction)
	}
	if q.Iterations < 0 {
		return fmt.Errorf("prsim: iterations must be >= 0, got %d", q.Iterations)
	}
	if q.MaxDepth < 1 {
		return fmt.Errorf("prsim: max depth must be >= 1, got %d", q.MaxDepth)
	}
	return nil
}

// entry is one stored (origin, probability) pair within a step level.
type entry struct {
	origin graph.NodeID
	prob   float64
}

// table is one node's reverse-push result: for each step level ℓ, the
// origins v with h_ℓ(v, node) above the prune threshold.
type table struct {
	levels [][]entry // levels[ℓ-1] holds step ℓ
}

// Index holds the hub tables plus lazily filled tail caches.
type Index struct {
	g   *graph.Graph
	opt Options
	nq  int
	// tables[w] is the reverse-push table of node w (hub tables are
	// built eagerly; tail tables on first visit).
	tables []table
	built  []bool
	d      []float64
	dKnown []bool
	hubs   int
}

// Build selects hubs by in-degree and precomputes their tables and d
// values; everything else is computed on demand at query time.
func Build(g *graph.Graph, opt Options) (*Index, error) {
	o := opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	ix := &Index{
		g:      g,
		opt:    o,
		tables: make([]table, n),
		built:  make([]bool, n),
		d:      make([]float64, n),
		dKnown: make([]bool, n),
	}
	if o.Iterations > 0 {
		ix.nq = o.Iterations
	} else {
		ix.nq = int(math.Ceil(3 * o.C / (o.Eps * o.Eps) * math.Log(float64(n)/o.Delta)))
	}

	ix.hubs = int(o.HubFraction * float64(n))
	if ix.hubs > 0 {
		order := make([]graph.NodeID, n)
		for v := range order {
			order[v] = graph.NodeID(v)
		}
		sort.Slice(order, func(i, j int) bool {
			di, dj := g.InDegree(order[i]), g.InDegree(order[j])
			if di != dj {
				return di > dj
			}
			return order[i] < order[j]
		})
		for _, w := range order[:ix.hubs] {
			ix.ensureTable(w)
			ix.ensureD(w)
		}
	}
	return ix, nil
}

// HubCount reports how many nodes were indexed eagerly.
func (ix *Index) HubCount() int { return ix.hubs }

// IndexEntries returns the total number of stored (step, origin, prob)
// entries across all built tables (eager hubs plus lazily cached tail
// nodes) — the index-memory proxy the benchmark reports use.
func (ix *Index) IndexEntries() int {
	total := 0
	for w := range ix.tables {
		if !ix.built[w] {
			continue
		}
		for _, level := range ix.tables[w].levels {
			total += len(level)
		}
	}
	return total
}

// ensureTable builds (once) the reverse-push table of w: h_ℓ(v, w) for
// ℓ up to MaxDepth, via a forward level expansion along out-edges with
// the √c/|I(child)| multiplier, pruning small entries.
func (ix *Index) ensureTable(w graph.NodeID) table {
	if ix.built[w] {
		return ix.tables[w]
	}
	sc := math.Sqrt(ix.opt.C)
	cur := map[graph.NodeID]float64{w: 1}
	var tb table
	var order []graph.NodeID
	for step := 1; step <= ix.opt.MaxDepth; step++ {
		next := make(map[graph.NodeID]float64, len(cur)*2)
		order = order[:0]
		for x := range cur {
			order = append(order, x)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, x := range order {
			px := cur[x]
			for _, y := range ix.g.Out(x) {
				p := px * sc / float64(ix.g.InDegree(y))
				if p < ix.opt.Prune {
					continue
				}
				next[y] += p
			}
		}
		if len(next) == 0 {
			break
		}
		order = order[:0]
		for x := range next {
			order = append(order, x)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		level := make([]entry, 0, len(order))
		for _, v := range order {
			level = append(level, entry{origin: v, prob: next[v]})
		}
		tb.levels = append(tb.levels, level)
		cur = next
	}
	ix.tables[w] = tb
	ix.built[w] = true
	return tb
}

// ensureD estimates (once) d(w) by coupled sampling.
func (ix *Index) ensureD(w graph.NodeID) float64 {
	if ix.dKnown[w] {
		return ix.d[w]
	}
	sc := math.Sqrt(ix.opt.C)
	r := rng.Split(ix.opt.Seed^0x5157, uint64(w))
	never := 0
	for s := 0; s < ix.opt.DSamples; s++ {
		a, b := w, w
		met := false
		for t := 1; t <= ix.opt.MaxDepth; t++ {
			if r.Float64() >= sc || r.Float64() >= sc {
				break
			}
			ia, ib := ix.g.In(a), ix.g.In(b)
			if len(ia) == 0 || len(ib) == 0 {
				break
			}
			a = ia[r.IntN(len(ia))]
			b = ib[r.IntN(len(ib))]
			if a == b {
				met = true
				break
			}
		}
		if !met {
			never++
		}
	}
	ix.d[w] = float64(never) / float64(ix.opt.DSamples)
	ix.dKnown[w] = true
	return ix.d[w]
}

// SingleSource estimates sim(u, ·): n_q source walks realize the
// source-side distribution; each visited (step, node) adds the node's
// table column at that step, weighted by d(node). Tail nodes' tables
// and d values are built on first visit and cached for later queries.
func (ix *Index) SingleSource(u graph.NodeID) (map[graph.NodeID]float64, error) {
	n := ix.g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("prsim: source %d out of range for n=%d", u, n)
	}
	sc := math.Sqrt(ix.opt.C)
	r := rng.Split(ix.opt.Seed, uint64(u))
	scores := make(map[graph.NodeID]float64, 64)
	for k := 0; k < ix.nq; k++ {
		cur := u
		for step := 1; step <= ix.opt.MaxDepth; step++ {
			if r.Float64() >= sc {
				break
			}
			in := ix.g.In(cur)
			if len(in) == 0 {
				break
			}
			cur = in[r.IntN(len(in))]
			tb := ix.ensureTable(cur)
			if step > len(tb.levels) || len(tb.levels[step-1]) == 0 {
				continue
			}
			dw := ix.ensureD(cur)
			for _, e := range tb.levels[step-1] {
				scores[e.origin] += e.prob * dw
			}
		}
	}
	inv := 1 / float64(ix.nq)
	for v := range scores {
		scores[v] *= inv
	}
	scores[u] = 1
	return scores, nil
}
