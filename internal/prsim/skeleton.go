package prsim

import (
	"fmt"
	"math"
	"slices"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// Skeleton is the pre-compile, map-based PRSim implementation, kept as
// the benchmark baseline and differential oracle for the flat Index:
// per-node tables are [][]skelEntry levels built through maps, hub
// selection sorts all n nodes, and the per-query accumulator is a Go
// map. It is NOT safe for concurrent use — exactly the limitation the
// compiled Index exists to remove — and produces scores bit-identical
// to Index.SingleSourceCtx by construction (pinned by
// TestCompiledMatchesSkeleton and verified again before every timed
// benchmark run).
type Skeleton struct {
	g      *graph.Graph
	opt    Options
	nq     int
	tables []skelTable
	built  []bool
	d      []float64
	dKnown []bool
	hubs   int
}

// skelEntry is one stored (origin, probability) pair within a level.
type skelEntry struct {
	origin graph.NodeID
	prob   float64
}

// skelTable is one node's reverse-push result, one slice per step.
type skelTable struct {
	levels [][]skelEntry
}

// NewSkeleton builds the map-based reference index: hubs chosen by a
// full sort over all n nodes, tables built serially.
func NewSkeleton(g *graph.Graph, opt Options) (*Skeleton, error) {
	o := opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	s := &Skeleton{
		g:      g,
		opt:    o,
		tables: make([]skelTable, n),
		built:  make([]bool, n),
		d:      make([]float64, n),
		dKnown: make([]bool, n),
	}
	if o.Iterations > 0 {
		s.nq = o.Iterations
	} else {
		s.nq = int(math.Ceil(3 * o.C / (o.Eps * o.Eps) * math.Log(float64(n)/o.Delta)))
	}
	s.hubs = int(o.HubFraction * float64(n))
	if s.hubs > 0 {
		order := make([]graph.NodeID, n)
		for v := range order {
			order[v] = graph.NodeID(v)
		}
		slices.SortFunc(order, func(a, b graph.NodeID) int {
			da, db := g.InDegree(a), g.InDegree(b)
			if da != db {
				return db - da // in-degree descending
			}
			return int(a - b) // ties by id ascending
		})
		for _, w := range order[:s.hubs] {
			s.ensureTable(w)
			s.ensureD(w)
		}
	}
	return s, nil
}

// HubCount reports how many nodes were indexed eagerly.
func (s *Skeleton) HubCount() int { return s.hubs }

func (s *Skeleton) ensureTable(w graph.NodeID) skelTable {
	if s.built[w] {
		return s.tables[w]
	}
	sc := math.Sqrt(s.opt.C)
	cur := map[graph.NodeID]float64{w: 1}
	var tb skelTable
	var order []graph.NodeID
	for step := 1; step <= s.opt.MaxDepth; step++ {
		next := make(map[graph.NodeID]float64, len(cur)*2)
		order = order[:0]
		for x := range cur {
			order = append(order, x)
		}
		slices.Sort(order)
		for _, x := range order {
			px := cur[x]
			for _, y := range s.g.Out(x) {
				p := px * sc / float64(s.g.InDegree(y))
				if p < s.opt.Prune {
					continue
				}
				next[y] += p
			}
		}
		if len(next) == 0 {
			break
		}
		order = order[:0]
		for x := range next {
			order = append(order, x)
		}
		slices.Sort(order)
		level := make([]skelEntry, 0, len(order))
		for _, v := range order {
			level = append(level, skelEntry{origin: v, prob: next[v]})
		}
		tb.levels = append(tb.levels, level)
		cur = next
	}
	s.tables[w] = tb
	s.built[w] = true
	return tb
}

func (s *Skeleton) ensureD(w graph.NodeID) float64 {
	if s.dKnown[w] {
		return s.d[w]
	}
	sc := math.Sqrt(s.opt.C)
	r := rng.Split(s.opt.Seed^0x5157, uint64(w))
	never := 0
	for k := 0; k < s.opt.DSamples; k++ {
		a, b := w, w
		met := false
		for t := 1; t <= s.opt.MaxDepth; t++ {
			if r.Float64() >= sc || r.Float64() >= sc {
				break
			}
			ia, ib := s.g.In(a), s.g.In(b)
			if len(ia) == 0 || len(ib) == 0 {
				break
			}
			a = ia[r.IntN(len(ia))]
			b = ib[r.IntN(len(ib))]
			if a == b {
				met = true
				break
			}
		}
		if !met {
			never++
		}
	}
	s.d[w] = float64(never) / float64(s.opt.DSamples)
	s.dKnown[w] = true
	return s.d[w]
}

// SingleSource estimates sim(u, ·) through the map-based path.
func (s *Skeleton) SingleSource(u graph.NodeID) (map[graph.NodeID]float64, error) {
	n := s.g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("prsim: source %d out of range for n=%d", u, n)
	}
	sc := math.Sqrt(s.opt.C)
	r := rng.Split(s.opt.Seed, uint64(u))
	scores := make(map[graph.NodeID]float64, 64)
	for k := 0; k < s.nq; k++ {
		cur := u
		for step := 1; step <= s.opt.MaxDepth; step++ {
			if r.Float64() >= sc {
				break
			}
			in := s.g.In(cur)
			if len(in) == 0 {
				break
			}
			cur = in[r.IntN(len(in))]
			tb := s.ensureTable(cur)
			if step > len(tb.levels) || len(tb.levels[step-1]) == 0 {
				continue
			}
			dw := s.ensureD(cur)
			for _, e := range tb.levels[step-1] {
				scores[e.origin] += e.prob * dw
			}
		}
	}
	inv := 1 / float64(s.nq)
	for v := range scores {
		scores[v] *= inv
	}
	scores[u] = 1
	return scores, nil
}
