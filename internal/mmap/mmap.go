// Package mmap wraps a read-only memory mapping of a file behind an
// explicit reference count, so higher layers can hand out borrowed
// views of the mapped bytes (typed slices that alias the mapping)
// without tying the mapping's lifetime to any single owner.
//
// The mapping is created PROT_READ + MAP_SHARED: the pages are backed
// by the kernel page cache, never dirtied, and therefore shared — N
// processes mapping the same snapshot file consume one physical copy,
// and a warm restart touches no page until a query first reads it.
// Writes through any view fault at the hardware level; the exported
// API never hands out a path to mutate the mapping on purpose (view
// types keep their slices in non-exported fields), so the page
// protection is a backstop, not the first line of defense.
//
// Lifecycle: Open returns a Mapping holding one reference. Every
// borrowed view that must outlive the opener calls Retain and pairs it
// with exactly one Close. The underlying munmap happens when the last
// reference drops, so closing the opener while borrowed views are
// still querying is safe — the pages stay mapped until those views
// release them.
package mmap

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Mapping is a refcounted read-only view of one file's bytes.
type Mapping struct {
	data []byte
	refs atomic.Int64
	// onUnmap, if set, runs exactly once right before the bytes are
	// released (obs accounting hooks).
	onUnmap func()
	// heap is true when the bytes were read into memory instead of
	// mapped (non-unix fallback); Close then just drops the slice.
	heap bool
}

// Open maps the file at path read-only. The returned Mapping holds one
// reference; Close releases it.
func Open(path string) (*Mapping, error) {
	m, err := openPlatform(path)
	if err != nil {
		return nil, err
	}
	m.refs.Store(1)
	return m, nil
}

// Bytes returns the mapped bytes. The slice aliases the mapping and is
// valid until the last reference is closed; callers must treat it as
// read-only (writing faults — the pages are PROT_READ).
func (m *Mapping) Bytes() []byte { return m.data }

// Len returns the mapped length in bytes.
func (m *Mapping) Len() int { return len(m.data) }

// SetOnUnmap registers a hook run once, just before the bytes are
// released. Call it before any Retain/Close races can fire.
func (m *Mapping) SetOnUnmap(f func()) { m.onUnmap = f }

// Retain adds a reference. Every Retain must be paired with exactly
// one Close. Retaining an already-released mapping panics — that is a
// use-after-close bug in the caller, not a recoverable condition.
func (m *Mapping) Retain() *Mapping {
	if m.refs.Add(1) <= 1 {
		panic("mmap: Retain on a released mapping")
	}
	return m
}

// Close drops one reference; the last drop unmaps the pages. Borrowed
// views that retained the mapping keep it valid past the opener's
// Close — this is what makes "close the store while queries are in
// flight" safe.
func (m *Mapping) Close() error {
	n := m.refs.Add(-1)
	if n > 0 {
		return nil
	}
	if n < 0 {
		return fmt.Errorf("mmap: Close without matching Open/Retain")
	}
	if m.onUnmap != nil {
		m.onUnmap()
	}
	data := m.data
	m.data = nil
	if m.heap {
		return nil
	}
	return unmapPlatform(data)
}

// nativeLittleEndian reports whether this machine stores integers
// little-endian — the snapshot byte order. The typed casts below alias
// raw file bytes as integer/float slices, which is only correct when
// the two orders agree; on a big-endian machine callers must fall back
// to the copying decoder.
var nativeLittleEndian = func() bool {
	var buf [2]byte
	*(*uint16)(unsafe.Pointer(&buf[0])) = 0x0102
	return binary.LittleEndian.Uint16(buf[:]) == 0x0102
}()

// CastsSupported reports whether zero-copy typed casts work on this
// machine (little-endian byte order).
func CastsSupported() bool { return nativeLittleEndian }

// castErr explains a failed cast precisely: misalignment and length
// mismatches are format bugs worth naming.
func castErr(what string, width int, b []byte) error {
	if !nativeLittleEndian {
		return fmt.Errorf("mmap: %s cast unsupported on big-endian hardware", what)
	}
	if len(b)%width != 0 {
		return fmt.Errorf("mmap: %s cast of %d bytes (not a multiple of %d)", what, len(b), width)
	}
	return fmt.Errorf("mmap: %s cast of %d-byte-misaligned slice", what, width)
}

func aligned(b []byte, width int) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%uintptr(width) == 0
}

// Int32s aliases b as a []int32. b must be 4-byte aligned and a
// multiple of 4 long; the result shares b's storage and inherits its
// read-only page protection.
func Int32s(b []byte) ([]int32, error) {
	if !nativeLittleEndian || len(b)%4 != 0 || !aligned(b, 4) {
		return nil, castErr("int32", 4, b)
	}
	if len(b) == 0 {
		return []int32{}, nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4), nil
}

// Uint64s aliases b as a []uint64 (8-byte alignment required).
func Uint64s(b []byte) ([]uint64, error) {
	if !nativeLittleEndian || len(b)%8 != 0 || !aligned(b, 8) {
		return nil, castErr("uint64", 8, b)
	}
	if len(b) == 0 {
		return []uint64{}, nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8), nil
}

// Float64s aliases b as a []float64 (8-byte alignment required).
func Float64s(b []byte) ([]float64, error) {
	if !nativeLittleEndian || len(b)%8 != 0 || !aligned(b, 8) {
		return nil, castErr("float64", 8, b)
	}
	if len(b) == 0 {
		return []float64{}, nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8), nil
}
