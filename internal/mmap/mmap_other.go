//go:build !unix

package mmap

import "os"

// Platforms without syscall.Mmap get a heap-backed read of the file:
// the refcount lifecycle and typed casts behave identically, only the
// page-cache sharing and hardware write protection are lost.
func openPlatform(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data, heap: true}, nil
}

func unmapPlatform([]byte) error { return nil }
