package mmap

import (
	"encoding/binary"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

func writeFile(t *testing.T, b []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenReadsBytes(t *testing.T) {
	want := []byte("hello, mapping")
	m, err := Open(writeFile(t, want))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if string(m.Bytes()) != string(want) {
		t.Fatalf("Bytes() = %q, want %q", m.Bytes(), want)
	}
	if m.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", m.Len(), len(want))
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	m, err := Open(writeFile(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", m.Len())
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRefcountLifecycle exercises the core contract: retained views
// keep the bytes valid past the opener's Close, and the final Close
// releases. Run under -race this also checks the atomics publish
// correctly across goroutines.
func TestRefcountLifecycle(t *testing.T) {
	m, err := Open(writeFile(t, []byte{1, 2, 3, 4, 5, 6, 7, 8}))
	if err != nil {
		t.Fatal(err)
	}
	unmapped := false
	m.SetOnUnmap(func() { unmapped = true })

	const views = 8
	var wg sync.WaitGroup
	for i := 0; i < views; i++ {
		v := m.Retain()
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := v.Bytes()
			for j := range b {
				if b[j] != byte(j+1) {
					t.Errorf("byte %d = %d", j, b[j])
					break
				}
			}
			if err := v.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	// Opener drops its reference while view goroutines are reading:
	// the mapping must survive until the last view closes.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !unmapped {
		t.Fatal("onUnmap did not run after the last Close")
	}
	if m.Bytes() != nil {
		t.Fatal("Bytes() non-nil after final Close")
	}
}

func TestOverClose(t *testing.T) {
	m, err := Open(writeFile(t, []byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err == nil {
		t.Fatal("double Close succeeded")
	}
}

func TestRetainAfterReleasePanics(t *testing.T) {
	m, err := Open(writeFile(t, []byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Retain after release did not panic")
		}
	}()
	m.Retain()
}

func TestTypedCasts(t *testing.T) {
	if !CastsSupported() {
		t.Skip("big-endian hardware")
	}
	buf := make([]byte, 0, 64)
	for _, v := range []int32{-1, 0, 7, 1 << 20} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, v := range []float64{0.25, -3.5, 1e-9} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	m, err := Open(writeFile(t, buf))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ints, err := Int32s(m.Bytes()[:16])
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{-1, 0, 7, 1 << 20}; len(ints) != 4 || ints[0] != want[0] || ints[3] != want[3] {
		t.Fatalf("Int32s = %v, want %v", ints, want)
	}
	floats, err := Float64s(m.Bytes()[16:40])
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0.25, -3.5, 1e-9}; len(floats) != 3 || floats[1] != want[1] || floats[2] != want[2] {
		t.Fatalf("Float64s = %v, want %v", floats, want)
	}
	u, err := Uint64s(m.Bytes()[16:24])
	if err != nil {
		t.Fatal(err)
	}
	if u[0] != math.Float64bits(0.25) {
		t.Fatalf("Uint64s[0] = %#x", u[0])
	}
}

func TestCastRejectsBadLength(t *testing.T) {
	if _, err := Int32s(make([]byte, 7)); err == nil {
		t.Fatal("Int32s accepted length 7")
	}
	if _, err := Float64s(make([]byte, 12)); err == nil {
		t.Fatal("Float64s accepted length 12")
	}
	if _, err := Uint64s(make([]byte, 4)); err == nil {
		t.Fatal("Uint64s accepted length 4")
	}
}

func TestCastRejectsMisaligned(t *testing.T) {
	if !CastsSupported() {
		t.Skip("big-endian hardware")
	}
	buf := make([]byte, 64)
	// A page-aligned mapping offset by an odd byte count cannot satisfy
	// the element alignment; the cast must refuse, not fabricate.
	if _, err := Float64s(buf[1:57]); err == nil {
		t.Fatal("Float64s accepted misaligned slice")
	}
	if _, err := Int32s(buf[2:10]); err == nil {
		t.Fatal("Int32s accepted misaligned slice")
	}
}

func TestCastEmpty(t *testing.T) {
	if !CastsSupported() {
		t.Skip("big-endian hardware")
	}
	ints, err := Int32s(nil)
	if err != nil || len(ints) != 0 {
		t.Fatalf("Int32s(nil) = %v, %v", ints, err)
	}
}

// TestWriteFaults proves the pages really are PROT_READ: a subprocess
// that writes through the mapping must die on SIGSEGV/SIGBUS. Runs the
// test binary re-exec'd so the fault doesn't take down the suite.
func TestWriteFaults(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("page-protection fault test is linux-only")
	}
	if os.Getenv("MMAP_WRITE_CHILD") == "1" {
		m, err := Open(os.Getenv("MMAP_WRITE_PATH"))
		if err != nil {
			os.Exit(3)
		}
		m.Bytes()[0] = 0xFF // must fault
		os.Exit(0)          // unreachable on a real mapping
	}
	path := writeFile(t, []byte("readonly"))
	cmd := exec.Command(os.Args[0], "-test.run", "^TestWriteFaults$", "-test.v")
	cmd.Env = append(os.Environ(), "MMAP_WRITE_CHILD=1", "MMAP_WRITE_PATH="+path)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child wrote through a PROT_READ mapping without faulting:\n%s", out)
	}
	b, readErr := os.ReadFile(path)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if string(b) != "readonly" {
		t.Fatalf("file mutated to %q", b)
	}
}
