//go:build unix

package mmap

import (
	"fmt"
	"os"
	"syscall"
)

func openPlatform(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		// mmap of length 0 is EINVAL; an empty file is an empty mapping.
		return &Mapping{data: []byte{}, heap: true}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmap: %s is %d bytes, too large for this address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: map %s: %w", path, err)
	}
	return &Mapping{data: data}, nil
}

func unmapPlatform(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
