package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	out := Chart([]int{100, 200, 500, 700}, []Series{
		{Name: "crashsim-t", Ys: []float64{0.7, 1.2, 3.1, 4.3}},
		{Name: "probesim", Ys: []float64{2.8, 5.4, 12.6, 19.1}},
	}, 40, 10)
	if !strings.Contains(out, "crashsim-t") || !strings.Contains(out, "probesim") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// height rows + axis + x labels + 2 legend lines.
	if len(lines) != 10+2+2 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
	// The larger series' final point must render above (smaller row
	// index than) the smaller series' final point.
	rowOf := func(mark byte) int {
		for r, line := range lines[:10] {
			if strings.IndexByte(line, mark) >= 0 && strings.LastIndexByte(line, mark) == len(line)-1 {
				return r
			}
		}
		return -1
	}
	rStar, rO := rowOf('*'), rowOf('o')
	if rStar < 0 || rO < 0 || rO >= rStar {
		t.Errorf("series vertical order wrong (star row %d, o row %d):\n%s", rStar, rO, out)
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	cases := []struct {
		name   string
		xs     []int
		series []Series
	}{
		{"one point", []int{1}, []Series{{Name: "a", Ys: []float64{1}}}},
		{"no series", []int{1, 2}, nil},
		{"length mismatch", []int{1, 2}, []Series{{Name: "a", Ys: []float64{1}}}},
		{"nan", []int{1, 2}, []Series{{Name: "a", Ys: []float64{1, math.NaN()}}}},
		{"negative", []int{1, 2}, []Series{{Name: "a", Ys: []float64{1, -1}}}},
	}
	for _, tc := range cases {
		out := Chart(tc.xs, tc.series, 40, 10)
		if !strings.Contains(out, "chart unavailable") {
			t.Errorf("%s: expected graceful message, got:\n%s", tc.name, out)
		}
	}
	// Tiny dimensions also degrade gracefully.
	if out := Chart([]int{1, 2}, []Series{{Name: "a", Ys: []float64{0, 1}}}, 2, 1); !strings.Contains(out, "chart unavailable") {
		t.Errorf("tiny dimensions accepted:\n%s", out)
	}
}

func TestChartAllZeroSeries(t *testing.T) {
	out := Chart([]int{1, 2, 3}, []Series{{Name: "flat", Ys: []float64{0, 0, 0}}}, 30, 5)
	if strings.Contains(out, "unavailable") {
		t.Errorf("all-zero series should still render:\n%s", out)
	}
}
