// Package textplot renders small multi-series line charts as text, so
// the repro harness can show the *shape* of a figure (who grows how
// fast, where lines cross) directly in terminal output next to the raw
// numbers.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	Ys   []float64
}

// markers distinguishes series; more series than markers wrap around.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart renders the series over the shared x values into a
// width×height character grid with a y-axis scale and a legend. All
// series must have len(xs) points; invalid input yields an error
// string rather than a panic, since charts are cosmetic.
func Chart(xs []int, series []Series, width, height int) string {
	if len(xs) < 2 || len(series) == 0 || width < 8 || height < 3 {
		return "(chart unavailable: need >=2 points, >=1 series, sane dimensions)\n"
	}
	maxY := 0.0
	for _, s := range series {
		if len(s.Ys) != len(xs) {
			return fmt.Sprintf("(chart unavailable: series %q has %d points, want %d)\n", s.Name, len(s.Ys), len(xs))
		}
		for _, y := range s.Ys {
			if math.IsNaN(y) || math.IsInf(y, 0) || y < 0 {
				return fmt.Sprintf("(chart unavailable: series %q has invalid value)\n", s.Name)
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	minX, maxX := xs[0], xs[0]
	for _, x := range xs {
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	col := func(x int) int {
		return int(math.Round(float64(x-minX) / float64(maxX-minX) * float64(width-1)))
	}
	row := func(y float64) int {
		r := height - 1 - int(math.Round(y/maxY*float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i, y := range s.Ys {
			grid[row(y)][col(xs[i])] = mark
		}
	}

	var b strings.Builder
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3g ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.3g ", 0.0)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.Write(line)
		b.WriteString("\n")
	}
	b.WriteString("        +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n")
	b.WriteString(fmt.Sprintf("        %-d%s%d\n", minX, strings.Repeat(" ", max(1, width-lenInt(minX)-lenInt(maxX))), maxX))
	for si, s := range series {
		b.WriteString(fmt.Sprintf("        %c %s\n", markers[si%len(markers)], s.Name))
	}
	return b.String()
}

func lenInt(x int) int { return len(fmt.Sprintf("%d", x)) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
