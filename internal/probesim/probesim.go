// Package probesim implements the ProbeSim algorithm (Liu et al., PVLDB
// 2017), the index-free single-source SimRank baseline the paper compares
// CrashSim against (Section II-D).
//
// Per iteration, ProbeSim samples one √c-walk W(u) from the source and
// then, for every position i of the walk, probes forward from w_i along
// out-edges to find every node v whose own √c-walk would first meet W(u)
// at position i (Definition 7's first-meeting probability): a reverse
// level-by-level dynamic program that excludes paths passing through an
// earlier walk position. Scores are averaged over n_r iterations.
package probesim

import (
	"context"
	"fmt"
	"math"
	"slices"

	"crashsim/internal/graph"
	"crashsim/internal/rng"
)

// Options configures ProbeSim. The zero value reproduces the paper's
// experimental setting (c = 0.6, ε = 0.025, δ = 0.01).
type Options struct {
	// C is the SimRank decay factor in (0,1). Default 0.6.
	C float64
	// Eps is the additive error bound ε. Default 0.025.
	Eps float64
	// Delta is the failure probability δ. Default 0.01.
	Delta float64
	// Iterations overrides n_r; 0 derives ⌈3c/ε² · ln(n/δ)⌉, the count
	// Lemma 3 cites for the untruncated estimator.
	Iterations int
	// MaxDepth caps the sampled walk length (ProbeSim's walks are
	// unbounded in principle; the geometric tail beyond the cap carries
	// less than (√c)^MaxDepth mass). Default 64.
	MaxDepth int
	// PruneThreshold drops probe entries whose probability falls below
	// it, bounding the probe frontier exactly as the original
	// implementation does. 0 derives ε·(1−√c)/8. Set negative to
	// disable pruning.
	PruneThreshold float64
	// Seed makes the run deterministic.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Eps == 0 {
		o.Eps = 0.025
	}
	if o.Delta == 0 {
		o.Delta = 0.01
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 64
	}
	if o.PruneThreshold == 0 {
		o.PruneThreshold = o.Eps * (1 - math.Sqrt(o.C)) / 8
	}
	return o
}

// Validate checks option ranges after defaulting.
func (o Options) Validate() error {
	q := o.withDefaults()
	if q.C <= 0 || q.C >= 1 {
		return fmt.Errorf("probesim: decay factor c=%g outside (0,1)", q.C)
	}
	if q.Eps <= 0 || q.Eps >= 1 {
		return fmt.Errorf("probesim: error bound eps=%g outside (0,1)", q.Eps)
	}
	if q.Delta <= 0 || q.Delta >= 1 {
		return fmt.Errorf("probesim: failure probability delta=%g outside (0,1)", q.Delta)
	}
	if q.Iterations < 0 {
		return fmt.Errorf("probesim: iterations must be >= 0, got %d", q.Iterations)
	}
	if q.MaxDepth < 1 {
		return fmt.Errorf("probesim: max depth must be >= 1, got %d", q.MaxDepth)
	}
	return nil
}

// iterations resolves the effective n_r for n nodes.
func (o Options) iterations(n int) int {
	if o.Iterations > 0 {
		return o.Iterations
	}
	nr := 3 * o.C / (o.Eps * o.Eps) * math.Log(float64(n)/o.Delta)
	return int(math.Ceil(nr))
}

// SingleSource estimates sim(u, v) for every node v. The score of u
// itself is 1 by definition.
func SingleSource(g *graph.Graph, u graph.NodeID, opt Options) (map[graph.NodeID]float64, error) {
	return SingleSourceCtx(context.Background(), g, u, opt)
}

// SingleSourceCtx is SingleSource with cancellation: the Monte-Carlo
// loop checks ctx between iterations (each iteration is one sampled
// source walk plus its probes), so a deadline or client disconnect
// stops CPU work promptly and returns ctx.Err().
func SingleSourceCtx(ctx context.Context, g *graph.Graph, u graph.NodeID, opt Options) (map[graph.NodeID]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("probesim: source %d out of range for n=%d", u, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nr := o.iterations(n)
	r := rng.New(o.Seed)
	sc := math.Sqrt(o.C)

	scores := make(map[graph.NodeID]float64, n)
	var walk []graph.NodeID
	var order []graph.NodeID
	cur := make(map[graph.NodeID]float64)
	next := make(map[graph.NodeID]float64)
	for k := 0; k < nr; k++ {
		if k&63 == 63 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		walk = sampleWalk(g, u, sc, o.MaxDepth, r, walk)
		for i := 1; i < len(walk); i++ {
			order = probe(g, walk, i, sc, o.PruneThreshold, cur, next, order, scores)
		}
	}
	inv := 1 / float64(nr)
	for v := range scores {
		scores[v] *= inv
	}
	scores[u] = 1
	return scores, nil
}

// probe accumulates, for every node v, the probability that a √c-walk
// from v is at walk[i] after i steps without having been at walk[j]
// after j steps for any 1 <= j < i (the first-meeting exclusion). cur,
// next and order are scratch reused across calls; the frontier is
// expanded in sorted node order so the floating-point sums in next are
// bit-identical run to run (Go's map iteration order is randomized).
func probe(g *graph.Graph, walk []graph.NodeID, i int, sc, prune float64,
	cur, next map[graph.NodeID]float64, order []graph.NodeID,
	scores map[graph.NodeID]float64) []graph.NodeID {
	clear(cur)
	cur[walk[i]] = 1
	for t := i; t >= 1; t-- {
		clear(next)
		order = order[:0]
		for x := range cur {
			order = append(order, x)
		}
		slices.Sort(order)
		for _, x := range order {
			px := cur[x]
			for _, y := range g.Out(x) {
				// A reverse walk from y moves to x (an in-neighbor of
				// y) with probability √c/|I(y)|.
				p := px * sc / float64(g.InDegree(y))
				if p < prune {
					continue
				}
				next[y] += p
			}
		}
		// Exclude candidate walks that would already have met the source
		// walk at the earlier position t-1.
		if t-1 >= 1 {
			delete(next, walk[t-1])
		}
		cur, next = next, cur
	}
	for v, p := range cur {
		scores[v] += p
	}
	// Leave scratch maps in a defined state for the caller's reuse: cur
	// and next were swapped an odd or even number of times, so clear both.
	clear(cur)
	clear(next)
	return order
}

func sampleWalk(g *graph.Graph, v graph.NodeID, sc float64, maxSteps int, r *rng.Source, buf []graph.NodeID) []graph.NodeID {
	buf = append(buf[:0], v)
	cur := v
	for step := 0; step < maxSteps; step++ {
		if r.Float64() >= sc {
			break
		}
		in := g.In(cur)
		if len(in) == 0 {
			break
		}
		cur = in[r.IntN(len(in))]
		buf = append(buf, cur)
	}
	return buf
}
