package probesim

import (
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

// BenchmarkSingleSource measures one index-free single-source query at a
// fixed iteration budget.
func BenchmarkSingleSource(b *testing.B) {
	edges, err := gen.ChungLu(2000, 20000, 2.0, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.BuildStatic(2000, true, edges)
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{Iterations: 200, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SingleSource(g, graph.NodeID(i%2000), opt); err != nil {
			b.Fatal(err)
		}
	}
}
