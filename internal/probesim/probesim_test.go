package probesim

import (
	"math"
	"testing"

	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		o    Options
	}{
		{"bad c", Options{C: 2}},
		{"bad eps", Options{Eps: -1}},
		{"bad delta", Options{Delta: 3}},
		{"bad iterations", Options{Iterations: -1}},
		{"bad depth", Options{MaxDepth: -2}},
	}
	for _, tc := range cases {
		if err := tc.o.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

func TestSingleSourceErrors(t *testing.T) {
	g := graph.PaperExample()
	if _, err := SingleSource(g, -1, Options{Iterations: 5}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := SingleSource(g, 99, Options{Iterations: 5}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := SingleSource(g, 0, Options{C: 9}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestSelfScoreAndRange(t *testing.T) {
	g := graph.PaperExample()
	s, err := SingleSource(g, 0, Options{Iterations: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 {
		t.Errorf("s(u,u) = %g, want 1", s[0])
	}
	for v, score := range s {
		if score < 0 || score > 1+1e-9 {
			t.Errorf("score of %d = %g outside [0,1]", v, score)
		}
	}
}

// TestAccuracyAgainstPowerMethod is the core correctness check: ProbeSim
// with a modest ε must track the Power Method on the example graph and a
// random graph. Runs are seeded, so tolerances are stable.
func TestAccuracyAgainstPowerMethod(t *testing.T) {
	graphs := map[string]*graph.Graph{"paper-example": graph.PaperExample()}
	edges, err := gen.ErdosRenyi(60, 180, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if graphs["random"], err = gen.BuildStatic(60, true, edges); err != nil {
		t.Fatal(err)
	}
	for name, g := range graphs {
		gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		s, err := SingleSource(g, 0, Options{C: 0.6, Eps: 0.05, Delta: 0.01, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for v := 0; v < g.NumNodes(); v++ {
			if d := math.Abs(s[graph.NodeID(v)] - gt.Sim(0, graph.NodeID(v))); d > worst {
				worst = d
			}
		}
		if worst > 0.08 {
			t.Errorf("%s: max error %.4f above tolerance", name, worst)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.PaperExample()
	a, err := SingleSource(g, 1, Options{Iterations: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SingleSource(g, 1, Options{Iterations: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("same seed, different score at %d", v)
		}
	}
}

func TestPruningDisabled(t *testing.T) {
	// A negative threshold disables pruning entirely; results should be
	// at least as accurate as the default pruned run.
	g := graph.PaperExample()
	gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	s, err := SingleSource(g, 0, Options{Iterations: 2000, PruneThreshold: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v, score := range s {
		if d := math.Abs(score - gt.Sim(0, v)); d > 0.08 {
			t.Errorf("unpruned score of %d off by %.4f", v, d)
		}
	}
}

func TestDanglingSource(t *testing.T) {
	// A source with no in-neighbors has sim(u,v) = 0 for all v != u.
	g := graph.NewBuilder(3, true).AddEdge(0, 2).AddEdge(1, 2).MustFreeze()
	s, err := SingleSource(g, 0, Options{Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 {
		t.Errorf("s(u,u) = %g", s[0])
	}
	for v, score := range s {
		if v != 0 && score != 0 {
			t.Errorf("dangling source has nonzero score %g at %d", score, v)
		}
	}
}
