package store

import "crashsim/internal/obs"

// Mapped-loading counters on the default registry, served by /metrics.
// mapped_bytes is a gauge: it rises at OpenMapped and falls when the
// last reference to a mapping drops and the pages are actually
// unmapped, so it tracks live mappings, not opens.
var (
	statMmapOpens   = obs.Default.Counter("store.mmap_opens")
	statMappedBytes = obs.Default.Gauge("store.mapped_bytes")
	// crc_deferred counts sections whose hash was postponed past open
	// (lazy and none policies); crc_verified counts sections actually
	// hashed, eager and lazy alike. deferred − verified is the live
	// count of sections being trusted without a hash.
	statCrcDeferred = obs.Default.Counter("store.crc_deferred")
	statCrcVerified = obs.Default.Counter("store.crc_verified")
)
