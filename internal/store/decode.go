package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"crashsim/internal/graph"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

// dec is a bounds-checked little-endian reader over one section's
// verified payload. Array reads check the remaining byte count before
// allocating, so a hostile length field cannot force a huge allocation.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: reading %s at offset %d", ErrTruncated, what, d.off)
	}
}

func (d *dec) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail(what)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) u8(what string) uint8 {
	s := d.take(1, what)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *dec) u32(what string) uint32 {
	s := d.take(4, what)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *dec) u64(what string) uint64 {
	s := d.take(8, what)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *dec) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

func (d *dec) arrayLen(width int, what string) int {
	n := d.u64(what)
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off)/uint64(width) {
		d.fail(what)
		return 0
	}
	return int(n)
}

func (d *dec) i32s(what string) []int32 {
	n := d.arrayLen(4, what)
	if d.err != nil {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(binary.LittleEndian.Uint32(d.b[d.off:]))
		d.off += 4
	}
	return vs
}

func (d *dec) nodes(what string) []graph.NodeID {
	n := d.arrayLen(4, what)
	if d.err != nil {
		return nil
	}
	vs := make([]graph.NodeID, n)
	for i := range vs {
		vs[i] = graph.NodeID(binary.LittleEndian.Uint32(d.b[d.off:]))
		d.off += 4
	}
	return vs
}

func (d *dec) f64s(what string) []float64 {
	n := d.arrayLen(8, what)
	if d.err != nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		d.off += 8
	}
	return vs
}

func (d *dec) done(sec string) error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("store: section %q has %d trailing bytes", sec, len(d.b)-d.off)
	}
	return nil
}

func decodeGraph(payload []byte, version uint64) (*graph.Graph, error) {
	d := &dec{b: payload}
	n := d.u64("graph node count")
	directed := d.u8("graph directedness") != 0
	inOff := d.i32s("graph in-offsets")
	inAdj := d.nodes("graph in-adjacency")
	outOff := d.i32s("graph out-offsets")
	outAdj := d.nodes("graph out-adjacency")
	if err := d.done(SecGraph); err != nil {
		return nil, err
	}
	if n > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("store: graph section claims %d nodes", n)
	}
	// FromCSR validates CSR well-formedness and, for content-derived
	// versions, recomputes the hash — a snapshot cannot claim a graph
	// identity its bytes do not hash to.
	g, err := graph.FromCSR(int(n), directed, version, inOff, inAdj, outOff, outAdj)
	if err != nil {
		return nil, fmt.Errorf("store: graph section: %w", err)
	}
	return g, nil
}

func decodeSling(payload []byte, graphVersion uint64) (*sling.Payload, error) {
	d := &dec{b: payload}
	gv := d.u64("sling graph version")
	var p sling.Payload
	p.Opt.C = d.f64("sling C")
	p.Opt.Eps = d.f64("sling Eps")
	p.Opt.Lmax = int(d.u32("sling Lmax"))
	p.Opt.Prune = d.f64("sling Prune")
	p.Opt.DSamples = int(d.u32("sling DSamples"))
	p.Opt.Seed = d.u64("sling Seed")
	p.DistCounts = d.i32s("sling dist counts")
	p.Steps = d.i32s("sling steps")
	p.Nodes = d.nodes("sling nodes")
	p.Probs = d.f64s("sling probs")
	p.D = d.f64s("sling d values")
	if err := d.done(SecSling); err != nil {
		return nil, err
	}
	if gv != graphVersion {
		return nil, fmt.Errorf("%w: sling section built for graph %#x, snapshot graph is %#x",
			ErrVersionMismatch, gv, graphVersion)
	}
	return &p, nil
}

func decodeReads(payload []byte, graphVersion uint64) (*reads.Payload, error) {
	d := &dec{b: payload}
	gv := d.u64("reads graph version")
	var p reads.Payload
	p.Opt.C = d.f64("reads C")
	p.Opt.R = int(d.u32("reads R"))
	p.Opt.MaxLen = int(d.u32("reads MaxLen"))
	p.Opt.RQ = int(d.u32("reads RQ"))
	p.Opt.Seed = d.u64("reads Seed")
	p.WalkLens = d.i32s("reads walk lengths")
	p.Nodes = d.nodes("reads walk nodes")
	if err := d.done(SecReads); err != nil {
		return nil, err
	}
	if gv != graphVersion {
		return nil, fmt.Errorf("%w: reads section built for graph %#x, snapshot graph is %#x",
			ErrVersionMismatch, gv, graphVersion)
	}
	return &p, nil
}

func decodePRSim(payload []byte, graphVersion uint64) (*prsim.Payload, error) {
	d := &dec{b: payload}
	gv := d.u64("prsim graph version")
	var p prsim.Payload
	p.Opt.C = d.f64("prsim C")
	p.Opt.Eps = d.f64("prsim Eps")
	p.Opt.Delta = d.f64("prsim Delta")
	p.Opt.HubFraction = d.f64("prsim HubFraction")
	p.Opt.Iterations = int(d.u32("prsim Iterations"))
	p.Opt.MaxDepth = int(d.u32("prsim MaxDepth"))
	p.Opt.Prune = d.f64("prsim Prune")
	p.Opt.DSamples = int(d.u32("prsim DSamples"))
	p.Opt.Seed = d.u64("prsim Seed")
	p.TableLevels = d.i32s("prsim table levels")
	p.LevelCounts = d.i32s("prsim level counts")
	p.Origins = d.nodes("prsim origins")
	p.Probs = d.f64s("prsim probs")
	p.D = d.f64s("prsim d values")
	if err := d.done(SecPRSim); err != nil {
		return nil, err
	}
	if gv != graphVersion {
		return nil, fmt.Errorf("%w: prsim section built for graph %#x, snapshot graph is %#x",
			ErrVersionMismatch, gv, graphVersion)
	}
	return &p, nil
}

// Decode parses and fully verifies a snapshot image: magic, format
// version, section-table bounds, and every section's CRC are checked
// before any payload is decoded, and each decoded section is validated
// semantically. On any failure the snapshot is unusable and the typed
// error says why; Decode never returns a partially trusted snapshot.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte file is smaller than the header", ErrTruncated, len(data))
	}
	if string(data[:8]) != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, string(data[:8]))
	}
	format := binary.LittleEndian.Uint32(data[8:12])
	if format != FormatVersion {
		return nil, fmt.Errorf("%w: file is v%d, this build reads v%d", ErrFormatVersion, format, FormatVersion)
	}
	graphVersion := binary.LittleEndian.Uint64(data[12:20])
	count := binary.LittleEndian.Uint32(data[20:24])
	tableEnd := headerSize + int(count)*sectionHeaderSize
	if int(count) > (len(data)-headerSize)/sectionHeaderSize {
		return nil, fmt.Errorf("%w: section table (%d entries) exceeds file", ErrTruncated, count)
	}

	payloads := make(map[string][]byte, count)
	for i := 0; i < int(count); i++ {
		entry := data[headerSize+i*sectionHeaderSize:]
		name := string(bytes.TrimRight(entry[:8], "\x00"))
		off := binary.LittleEndian.Uint64(entry[8:16])
		length := binary.LittleEndian.Uint64(entry[16:24])
		sum := binary.LittleEndian.Uint32(entry[24:28])
		if off < uint64(tableEnd) || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %q spans [%d, %d) in a %d-byte file",
				ErrTruncated, name, off, off+length, len(data))
		}
		payload := data[off : off+length]
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, fmt.Errorf("%w: section %q crc %08x, recorded %08x", ErrChecksum, name, got, sum)
		}
		payloads[name] = payload
	}

	gp, ok := payloads[SecGraph]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrMissingSection, SecGraph)
	}
	g, err := decodeGraph(gp, graphVersion)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Graph: g}
	if mp, ok := payloads[SecMeta]; ok {
		if err := json.Unmarshal(mp, &s.Meta); err != nil {
			return nil, fmt.Errorf("store: meta section: %w", err)
		}
	}
	if sp, ok := payloads[SecSling]; ok {
		if s.Sling, err = decodeSling(sp, graphVersion); err != nil {
			return nil, err
		}
	}
	if rp, ok := payloads[SecReads]; ok {
		if s.Reads, err = decodeReads(rp, graphVersion); err != nil {
			return nil, err
		}
	}
	if pp, ok := payloads[SecPRSim]; ok {
		if s.PRSim, err = decodePRSim(pp, graphVersion); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Load reads and verifies the snapshot at path.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
