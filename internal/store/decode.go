package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"crashsim/internal/graph"
	"crashsim/internal/mmap"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

// dec is a bounds-checked little-endian reader over one section's
// verified payload. Array reads check the remaining byte count before
// allocating, so a hostile length field cannot force a huge allocation.
//
// Two flags select the decoding discipline:
//
//   - aligned (format v2): skip the zero pad bytes emitted before each
//     array so its length prefix sits 8-aligned;
//   - borrow (mapped load): alias array bytes in place via typed casts
//     instead of copying them out, valid only over an aligned payload
//     whose backing memory is 8-aligned (a v2 section in a mapping).
type dec struct {
	b       []byte
	off     int
	err     error
	aligned bool
	borrow  bool
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: reading %s at offset %d", ErrTruncated, what, d.off)
	}
}

func (d *dec) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail(what)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) u8(what string) uint8 {
	s := d.take(1, what)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *dec) u32(what string) uint32 {
	s := d.take(4, what)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *dec) u64(what string) uint64 {
	s := d.take(8, what)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *dec) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

// align8 consumes the pad bytes before an array in an aligned section.
// The pads are CRC-covered with everything else, so their content is
// not re-checked here.
func (d *dec) align8(what string) {
	if !d.aligned {
		return
	}
	if pad := alignUp(d.off, 8) - d.off; pad > 0 {
		d.take(pad, what)
	}
}

func (d *dec) arrayLen(width int, what string) int {
	d.align8(what)
	n := d.u64(what)
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off)/uint64(width) {
		d.fail(what)
		return 0
	}
	return int(n)
}

func (d *dec) i32s(what string) []int32 {
	n := d.arrayLen(4, what)
	if d.err != nil {
		return nil
	}
	if d.borrow {
		vs, err := mmap.Int32s(d.take(n*4, what))
		if err != nil && d.err == nil {
			d.err = fmt.Errorf("store: %s: %w", what, err)
		}
		return vs
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(binary.LittleEndian.Uint32(d.b[d.off:]))
		d.off += 4
	}
	return vs
}

// nodes is i32s under graph.NodeID's name: NodeID is an int32 alias,
// so the borrow cast hands back the same slice type either way.
func (d *dec) nodes(what string) []graph.NodeID { return d.i32s(what) }

func (d *dec) f64s(what string) []float64 {
	n := d.arrayLen(8, what)
	if d.err != nil {
		return nil
	}
	if d.borrow {
		vs, err := mmap.Float64s(d.take(n*8, what))
		if err != nil && d.err == nil {
			d.err = fmt.Errorf("store: %s: %w", what, err)
		}
		return vs
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
		d.off += 8
	}
	return vs
}

// blob returns the bytes of a length-prefixed nested byte string
// (always borrowed — it is a window to sub-decode or skip, not data).
func (d *dec) blob(what string) []byte {
	d.align8(what)
	n := d.u64(what)
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail(what)
		return nil
	}
	return d.take(int(n), what)
}

func (d *dec) done(sec string) error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("store: section %q has %d trailing bytes", sec, len(d.b)-d.off)
	}
	return nil
}

// decodeGraph reads the CSR section. With adopt set (mapped trusted
// load) the arrays alias the payload and only shape checks run —
// AdoptCSR — because the section CRC already vouched for the bytes;
// otherwise FromCSR performs full CSR validation plus content-version
// recomputation.
func decodeGraph(payload []byte, version uint64, aligned, borrow, adopt bool) (*graph.Graph, error) {
	d := &dec{b: payload, aligned: aligned, borrow: borrow}
	n := d.u64("graph node count")
	directed := d.u8("graph directedness") != 0
	inOff := d.i32s("graph in-offsets")
	inAdj := d.nodes("graph in-adjacency")
	outOff := d.i32s("graph out-offsets")
	outAdj := d.nodes("graph out-adjacency")
	if err := d.done(SecGraph); err != nil {
		return nil, err
	}
	if n > uint64(math.MaxInt32) {
		return nil, fmt.Errorf("store: graph section claims %d nodes", n)
	}
	var g *graph.Graph
	var err error
	if adopt {
		g, err = graph.AdoptCSR(int(n), directed, version, inOff, inAdj, outOff, outAdj)
	} else {
		g, err = graph.FromCSR(int(n), directed, version, inOff, inAdj, outOff, outAdj)
	}
	if err != nil {
		return nil, fmt.Errorf("store: graph section: %w", err)
	}
	return g, nil
}

// slingScalars reads the fixed-width prefix of a sling section.
func slingScalars(d *dec) (gv uint64, o sling.Options) {
	gv = d.u64("sling graph version")
	o.C = d.f64("sling C")
	o.Eps = d.f64("sling Eps")
	o.Lmax = int(d.u32("sling Lmax"))
	o.Prune = d.f64("sling Prune")
	o.DSamples = int(d.u32("sling DSamples"))
	o.Seed = d.u64("sling Seed")
	return gv, o
}

func decodeSling(payload []byte, graphVersion uint64, aligned bool) (*sling.Payload, error) {
	d := &dec{b: payload, aligned: aligned}
	var p sling.Payload
	gv, o := slingScalars(d)
	p.Opt = o
	p.DistCounts = d.i32s("sling dist counts")
	p.Steps = d.i32s("sling steps")
	p.Nodes = d.nodes("sling nodes")
	p.Probs = d.f64s("sling probs")
	p.D = d.f64s("sling d values")
	if aligned {
		// The copying path rebuilds its own maps; the precompiled
		// inverted index is dead weight here, skipped by byte count.
		d.blob("sling accel")
	}
	if err := d.done(SecSling); err != nil {
		return nil, err
	}
	if gv != graphVersion {
		return nil, fmt.Errorf("%w: sling section built for graph %#x, snapshot graph is %#x",
			ErrVersionMismatch, gv, graphVersion)
	}
	return &p, nil
}

// decodeSlingFlat is the mapped decoder: every array aliases the
// mapping, and the accel blob supplies the precompiled inverted index
// so the returned Flat serves queries without building anything.
func decodeSlingFlat(payload []byte, graphVersion uint64) (*sling.Flat, error) {
	d := &dec{b: payload, aligned: true, borrow: true}
	var f sling.Flat
	gv, o := slingScalars(d)
	f.Opt = o
	d.i32s("sling dist counts") // derivable from DistOff; present for the copying decoder
	f.Steps = d.i32s("sling steps")
	f.Nodes = d.nodes("sling nodes")
	f.Probs = d.f64s("sling probs")
	f.D = d.f64s("sling d values")
	ab := d.blob("sling accel")
	if err := d.done(SecSling); err != nil {
		return nil, err
	}
	ad := &dec{b: ab, aligned: true, borrow: true}
	f.DistOff = ad.i32s("sling accel dist offsets")
	f.InvOff = ad.i32s("sling accel inv offsets")
	f.InvOrigins = ad.nodes("sling accel inv origins")
	f.InvProbs = ad.f64s("sling accel inv probs")
	if err := ad.done(SecSling + " accel"); err != nil {
		return nil, err
	}
	if gv != graphVersion {
		return nil, fmt.Errorf("%w: sling section built for graph %#x, snapshot graph is %#x",
			ErrVersionMismatch, gv, graphVersion)
	}
	return &f, nil
}

func readsScalars(d *dec) (gv uint64, o reads.Options) {
	gv = d.u64("reads graph version")
	o.C = d.f64("reads C")
	o.R = int(d.u32("reads R"))
	o.MaxLen = int(d.u32("reads MaxLen"))
	o.RQ = int(d.u32("reads RQ"))
	o.Seed = d.u64("reads Seed")
	return gv, o
}

func decodeReads(payload []byte, graphVersion uint64, aligned bool) (*reads.Payload, error) {
	d := &dec{b: payload, aligned: aligned}
	var p reads.Payload
	gv, o := readsScalars(d)
	p.Opt = o
	p.WalkLens = d.i32s("reads walk lengths")
	p.Nodes = d.nodes("reads walk nodes")
	if aligned {
		d.blob("reads accel")
	}
	if err := d.done(SecReads); err != nil {
		return nil, err
	}
	if gv != graphVersion {
		return nil, fmt.Errorf("%w: reads section built for graph %#x, snapshot graph is %#x",
			ErrVersionMismatch, gv, graphVersion)
	}
	return &p, nil
}

// decodeReadsFlat is the mapped decoder for the reads section: walks
// and the sorted inverted runs alias the mapping.
func decodeReadsFlat(payload []byte, graphVersion uint64) (*reads.Flat, error) {
	d := &dec{b: payload, aligned: true, borrow: true}
	var f reads.Flat
	gv, o := readsScalars(d)
	f.Opt = o
	d.i32s("reads walk lengths") // WalkOff in the accel is their prefix sum
	f.Nodes = d.nodes("reads walk nodes")
	ab := d.blob("reads accel")
	if err := d.done(SecReads); err != nil {
		return nil, err
	}
	ad := &dec{b: ab, aligned: true, borrow: true}
	f.WalkOff = ad.i32s("reads accel walk offsets")
	f.RunOff = ad.i32s("reads accel run offsets")
	f.InvNodes = ad.nodes("reads accel inv nodes")
	f.ListOff = ad.i32s("reads accel list offsets")
	f.InvOrigins = ad.nodes("reads accel inv origins")
	if err := ad.done(SecReads + " accel"); err != nil {
		return nil, err
	}
	if gv != graphVersion {
		return nil, fmt.Errorf("%w: reads section built for graph %#x, snapshot graph is %#x",
			ErrVersionMismatch, gv, graphVersion)
	}
	return &f, nil
}

// decodePRSim reads a prsim section. The section has no accel blob —
// its payload columns are already the serving layout — so the mapped
// path is the same decode with borrow set.
func decodePRSim(payload []byte, graphVersion uint64, aligned, borrow bool) (*prsim.Payload, error) {
	d := &dec{b: payload, aligned: aligned, borrow: borrow}
	gv := d.u64("prsim graph version")
	var p prsim.Payload
	p.Opt.C = d.f64("prsim C")
	p.Opt.Eps = d.f64("prsim Eps")
	p.Opt.Delta = d.f64("prsim Delta")
	p.Opt.HubFraction = d.f64("prsim HubFraction")
	p.Opt.Iterations = int(d.u32("prsim Iterations"))
	p.Opt.MaxDepth = int(d.u32("prsim MaxDepth"))
	p.Opt.Prune = d.f64("prsim Prune")
	p.Opt.DSamples = int(d.u32("prsim DSamples"))
	p.Opt.Seed = d.u64("prsim Seed")
	p.TableLevels = d.i32s("prsim table levels")
	p.LevelCounts = d.i32s("prsim level counts")
	p.Origins = d.nodes("prsim origins")
	p.Probs = d.f64s("prsim probs")
	p.D = d.f64s("prsim d values")
	if err := d.done(SecPRSim); err != nil {
		return nil, err
	}
	if gv != graphVersion {
		return nil, fmt.Errorf("%w: prsim section built for graph %#x, snapshot graph is %#x",
			ErrVersionMismatch, gv, graphVersion)
	}
	return &p, nil
}

// sectionInfo is one parsed section-table entry; the payload bounds
// have been checked against the file.
type sectionInfo struct {
	name        string
	off, length int
	crc         uint32
}

// fileInfo is the structurally validated frame of a snapshot image:
// header fields plus the section table. CRCs are recorded, not yet
// checked — Decode checks them all, the mapped loader per its policy.
type fileInfo struct {
	format       uint32
	graphVersion uint64
	sections     []sectionInfo
}

func (f *fileInfo) section(name string) *sectionInfo {
	for i := range f.sections {
		if f.sections[i].name == name {
			return &f.sections[i]
		}
	}
	return nil
}

// parseHeader validates everything about a snapshot image that can be
// checked without hashing payloads: magic, format version, section
// table bounds, and — for v2 — section alignment and the exact padded
// file length. Each failure maps to its sentinel.
func parseHeader(data []byte) (*fileInfo, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte file is smaller than the header", ErrTruncated, len(data))
	}
	if string(data[:8]) != Magic {
		return nil, fmt.Errorf("%w: got %q", ErrBadMagic, string(data[:8]))
	}
	fi := &fileInfo{
		format:       binary.LittleEndian.Uint32(data[8:12]),
		graphVersion: binary.LittleEndian.Uint64(data[12:20]),
	}
	if fi.format != formatV1 && fi.format != FormatVersion {
		return nil, fmt.Errorf("%w: file is v%d, this build reads v%d and v%d",
			ErrFormatVersion, fi.format, formatV1, FormatVersion)
	}
	aligned := fi.format >= 2
	count := binary.LittleEndian.Uint32(data[20:24])
	tableEnd := headerSize + int(count)*sectionHeaderSize
	if int(count) > (len(data)-headerSize)/sectionHeaderSize {
		return nil, fmt.Errorf("%w: section table (%d entries) exceeds file", ErrTruncated, count)
	}
	end := tableEnd
	fi.sections = make([]sectionInfo, 0, count)
	for i := 0; i < int(count); i++ {
		entry := data[headerSize+i*sectionHeaderSize:]
		name := string(bytes.TrimRight(entry[:8], "\x00"))
		off := binary.LittleEndian.Uint64(entry[8:16])
		length := binary.LittleEndian.Uint64(entry[16:24])
		sum := binary.LittleEndian.Uint32(entry[24:28])
		if off < uint64(tableEnd) || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %q spans [%d, %d) in a %d-byte file",
				ErrTruncated, name, off, off+length, len(data))
		}
		if aligned && off%sectionAlign != 0 {
			return nil, fmt.Errorf("%w: section %q starts at offset %d (not %d-aligned)",
				ErrMisaligned, name, off, sectionAlign)
		}
		if e := int(off + length); e > end {
			end = e
		}
		fi.sections = append(fi.sections, sectionInfo{name: name, off: int(off), length: int(length), crc: sum})
	}
	if aligned && len(data) != alignUp(end, sectionAlign) {
		return nil, fmt.Errorf("%w: %d-byte file, sections end at %d so a v%d file must be %d bytes",
			ErrTruncated, len(data), end, FormatVersion, alignUp(end, sectionAlign))
	}
	return fi, nil
}

// verifySectionCRC hashes a section payload against its table entry.
func verifySectionCRC(info sectionInfo, payload []byte) error {
	if got := crc32.ChecksumIEEE(payload); got != info.crc {
		return fmt.Errorf("%w: section %q crc %08x, recorded %08x", ErrChecksum, info.name, got, info.crc)
	}
	return nil
}

func decodeMeta(payload []byte, m *Meta) error {
	if err := json.Unmarshal(payload, m); err != nil {
		return fmt.Errorf("store: meta section: %w", err)
	}
	return nil
}

// Decode parses and fully verifies a snapshot image: magic, format
// version, section-table bounds, (v2) alignment and padded length, and
// every section's CRC are checked before any payload is decoded, and
// each decoded section is validated semantically. On any failure the
// snapshot is unusable and the typed error says why; Decode never
// returns a partially trusted snapshot. Both format revisions decode
// here — v2's mapping accelerators are skipped, not required.
func Decode(data []byte) (*Snapshot, error) {
	fi, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	aligned := fi.format >= 2
	payloads := make(map[string][]byte, len(fi.sections))
	for _, sec := range fi.sections {
		payload := data[sec.off : sec.off+sec.length]
		if err := verifySectionCRC(sec, payload); err != nil {
			return nil, err
		}
		payloads[sec.name] = payload
	}

	gp, ok := payloads[SecGraph]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrMissingSection, SecGraph)
	}
	g, err := decodeGraph(gp, fi.graphVersion, aligned, false, false)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Graph: g}
	if mp, ok := payloads[SecMeta]; ok {
		if err := decodeMeta(mp, &s.Meta); err != nil {
			return nil, err
		}
	}
	if sp, ok := payloads[SecSling]; ok {
		if s.Sling, err = decodeSling(sp, fi.graphVersion, aligned); err != nil {
			return nil, err
		}
	}
	if rp, ok := payloads[SecReads]; ok {
		if s.Reads, err = decodeReads(rp, fi.graphVersion, aligned); err != nil {
			return nil, err
		}
	}
	if pp, ok := payloads[SecPRSim]; ok {
		if s.PRSim, err = decodePRSim(pp, fi.graphVersion, aligned, false); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Load reads and verifies the snapshot at path.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
