package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"crashsim/internal/graph"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

// sectionHeaderSize is the on-disk size of one section-table entry:
// name [8]byte + offset u64 + length u64 + crc u32.
const sectionHeaderSize = 8 + 8 + 8 + 4

// headerSize is the fixed prefix before the section table: magic +
// format version + graph version + section count.
const headerSize = 8 + 4 + 8 + 4

type enc struct{ buf bytes.Buffer }

func (e *enc) u8(v uint8) { e.buf.WriteByte(v) }

func (e *enc) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}

func (e *enc) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}

func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *enc) i32s(vs []int32) {
	e.u64(uint64(len(vs)))
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		e.buf.Write(b[:])
	}
}

func (e *enc) nodes(vs []graph.NodeID) {
	e.u64(uint64(len(vs)))
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		e.buf.Write(b[:])
	}
}

func (e *enc) f64s(vs []float64) {
	e.u64(uint64(len(vs)))
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		e.buf.Write(b[:])
	}
}

func encodeGraph(g *graph.Graph) []byte {
	inOff, inAdj := g.InCSR()
	outOff, outAdj := g.OutCSR()
	var e enc
	e.u64(uint64(g.NumNodes()))
	if g.Directed() {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.i32s(inOff)
	e.nodes(inAdj)
	e.i32s(outOff)
	e.nodes(outAdj)
	return e.buf.Bytes()
}

func encodeSling(graphVersion uint64, p *sling.Payload) []byte {
	var e enc
	e.u64(graphVersion)
	e.f64(p.Opt.C)
	e.f64(p.Opt.Eps)
	e.u32(uint32(p.Opt.Lmax))
	e.f64(p.Opt.Prune)
	e.u32(uint32(p.Opt.DSamples))
	e.u64(p.Opt.Seed)
	e.i32s(p.DistCounts)
	e.i32s(p.Steps)
	e.nodes(p.Nodes)
	e.f64s(p.Probs)
	e.f64s(p.D)
	return e.buf.Bytes()
}

func encodeReads(graphVersion uint64, p *reads.Payload) []byte {
	var e enc
	e.u64(graphVersion)
	e.f64(p.Opt.C)
	e.u32(uint32(p.Opt.R))
	e.u32(uint32(p.Opt.MaxLen))
	e.u32(uint32(p.Opt.RQ))
	e.u64(p.Opt.Seed)
	e.i32s(p.WalkLens)
	e.nodes(p.Nodes)
	return e.buf.Bytes()
}

func encodePRSim(graphVersion uint64, p *prsim.Payload) []byte {
	var e enc
	e.u64(graphVersion)
	e.f64(p.Opt.C)
	e.f64(p.Opt.Eps)
	e.f64(p.Opt.Delta)
	e.f64(p.Opt.HubFraction)
	e.u32(uint32(p.Opt.Iterations))
	e.u32(uint32(p.Opt.MaxDepth))
	e.f64(p.Opt.Prune)
	e.u32(uint32(p.Opt.DSamples))
	e.u64(p.Opt.Seed)
	e.i32s(p.TableLevels)
	e.i32s(p.LevelCounts)
	e.nodes(p.Origins)
	e.f64s(p.Probs)
	e.f64s(p.D)
	return e.buf.Bytes()
}

// Encode serializes a snapshot to the on-disk format. The graph is
// required; index sections are written only if their payloads are set.
func Encode(s *Snapshot) ([]byte, error) {
	if s == nil || s.Graph == nil {
		return nil, fmt.Errorf("store: encode: snapshot has no graph")
	}
	type section struct {
		name    string
		payload []byte
	}
	metaJSON, err := json.Marshal(s.Meta)
	if err != nil {
		return nil, fmt.Errorf("store: encode: meta: %w", err)
	}
	gv := s.Graph.Version()
	sections := []section{
		{SecGraph, encodeGraph(s.Graph)},
		{SecMeta, metaJSON},
	}
	if s.Sling != nil {
		sections = append(sections, section{SecSling, encodeSling(gv, s.Sling)})
	}
	if s.Reads != nil {
		sections = append(sections, section{SecReads, encodeReads(gv, s.Reads)})
	}
	if s.PRSim != nil {
		sections = append(sections, section{SecPRSim, encodePRSim(gv, s.PRSim)})
	}

	var e enc
	e.buf.WriteString(Magic)
	e.u32(FormatVersion)
	e.u64(gv)
	e.u32(uint32(len(sections)))
	off := uint64(headerSize + len(sections)*sectionHeaderSize)
	for _, sec := range sections {
		var name [8]byte
		copy(name[:], sec.name)
		e.buf.Write(name[:])
		e.u64(off)
		e.u64(uint64(len(sec.payload)))
		e.u32(crc32.ChecksumIEEE(sec.payload))
		off += uint64(len(sec.payload))
	}
	for _, sec := range sections {
		e.buf.Write(sec.payload)
	}
	return e.buf.Bytes(), nil
}

// Write encodes the snapshot and writes it to path atomically (temp
// file + rename), so a crash mid-write never leaves a half-snapshot
// that a later strict load would have to reject.
func Write(path string, s *Snapshot) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write: %w", err)
	}
	return nil
}
