package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"crashsim/internal/graph"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

// sectionHeaderSize is the on-disk size of one section-table entry:
// name [8]byte + offset u64 + length u64 + crc u32.
const sectionHeaderSize = 8 + 8 + 8 + 4

// headerSize is the fixed prefix before the section table: magic +
// format version + graph version + section count.
const headerSize = 8 + 4 + 8 + 4

// alignUp rounds n up to the next multiple of a (a power of two).
func alignUp(n, a int) int { return (n + a - 1) &^ (a - 1) }

// enc is the little-endian section writer. With aligned set (format
// v2) every array emits zero pad bytes before its u64 length prefix so
// the prefix — and therefore the element bytes after it — land on an
// 8-aligned section offset. Section starts are 64-aligned in the file,
// so section-relative alignment is file alignment is (for a mapped
// load) memory alignment.
type enc struct {
	buf     bytes.Buffer
	aligned bool
}

func (e *enc) u8(v uint8) { e.buf.WriteByte(v) }

func (e *enc) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}

func (e *enc) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}

func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

// align8 pads to the next 8-aligned offset (v2 only; v1 writes no
// padding anywhere, byte-for-byte the original format).
func (e *enc) align8() {
	if !e.aligned {
		return
	}
	var zero [8]byte
	if pad := alignUp(e.buf.Len(), 8) - e.buf.Len(); pad > 0 {
		e.buf.Write(zero[:pad])
	}
}

func (e *enc) i32s(vs []int32) {
	e.align8()
	e.u64(uint64(len(vs)))
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		e.buf.Write(b[:])
	}
}

func (e *enc) nodes(vs []graph.NodeID) { e.i32s(vs) }

func (e *enc) f64s(vs []float64) {
	e.align8()
	e.u64(uint64(len(vs)))
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		e.buf.Write(b[:])
	}
}

// blob appends a length-prefixed nested byte string at an 8-aligned
// offset. The payload must itself have been encoded with align8-before-
// arrays relative to its own start: the u64 prefix ends 8-aligned, so
// blob-relative alignment is section-relative alignment.
func (e *enc) blob(b []byte) {
	e.align8()
	e.u64(uint64(len(b)))
	e.buf.Write(b)
}

func encodeGraph(g *graph.Graph, aligned bool) []byte {
	inOff, inAdj := g.InCSR()
	outOff, outAdj := g.OutCSR()
	e := enc{aligned: aligned}
	e.u64(uint64(g.NumNodes()))
	if g.Directed() {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.i32s(inOff)
	e.nodes(inAdj)
	e.i32s(outOff)
	e.nodes(outAdj)
	return e.buf.Bytes()
}

// encodeSlingAccel serializes the precompiled inverted index of a
// sling.Flat — the arrays not derivable cheaply from the payload
// columns. Steps/Nodes/Probs/D are already in the section body; the
// mapped decoder reassembles the full Flat from both.
func encodeSlingAccel(f *sling.Flat) []byte {
	e := enc{aligned: true}
	e.i32s(f.DistOff)
	e.i32s(f.InvOff)
	e.nodes(f.InvOrigins)
	e.f64s(f.InvProbs)
	return e.buf.Bytes()
}

func encodeSling(graphVersion uint64, p *sling.Payload, aligned bool) []byte {
	e := enc{aligned: aligned}
	e.u64(graphVersion)
	e.f64(p.Opt.C)
	e.f64(p.Opt.Eps)
	e.u32(uint32(p.Opt.Lmax))
	e.f64(p.Opt.Prune)
	e.u32(uint32(p.Opt.DSamples))
	e.u64(p.Opt.Seed)
	e.i32s(p.DistCounts)
	e.i32s(p.Steps)
	e.nodes(p.Nodes)
	e.f64s(p.Probs)
	e.f64s(p.D)
	if aligned {
		f := p.Flatten()
		e.blob(encodeSlingAccel(&f))
	}
	return e.buf.Bytes()
}

// encodeReadsAccel serializes the walk offsets and sorted inverted
// runs of a reads.Flat (the node column itself is in the section
// body).
func encodeReadsAccel(f *reads.Flat) []byte {
	e := enc{aligned: true}
	e.i32s(f.WalkOff)
	e.i32s(f.RunOff)
	e.nodes(f.InvNodes)
	e.i32s(f.ListOff)
	e.nodes(f.InvOrigins)
	return e.buf.Bytes()
}

func encodeReads(graphVersion uint64, p *reads.Payload, aligned bool) []byte {
	e := enc{aligned: aligned}
	e.u64(graphVersion)
	e.f64(p.Opt.C)
	e.u32(uint32(p.Opt.R))
	e.u32(uint32(p.Opt.MaxLen))
	e.u32(uint32(p.Opt.RQ))
	e.u64(p.Opt.Seed)
	e.i32s(p.WalkLens)
	e.nodes(p.Nodes)
	if aligned {
		f := p.Flatten()
		e.blob(encodeReadsAccel(&f))
	}
	return e.buf.Bytes()
}

func encodePRSim(graphVersion uint64, p *prsim.Payload, aligned bool) []byte {
	e := enc{aligned: aligned}
	e.u64(graphVersion)
	e.f64(p.Opt.C)
	e.f64(p.Opt.Eps)
	e.f64(p.Opt.Delta)
	e.f64(p.Opt.HubFraction)
	e.u32(uint32(p.Opt.Iterations))
	e.u32(uint32(p.Opt.MaxDepth))
	e.f64(p.Opt.Prune)
	e.u32(uint32(p.Opt.DSamples))
	e.u64(p.Opt.Seed)
	e.i32s(p.TableLevels)
	e.i32s(p.LevelCounts)
	e.nodes(p.Origins)
	e.f64s(p.Probs)
	e.f64s(p.D)
	return e.buf.Bytes()
}

// Encode serializes a snapshot to the current on-disk format (v2). The
// graph is required; index sections are written only if their payloads
// are set.
func Encode(s *Snapshot) ([]byte, error) {
	return encodeSnapshot(s, FormatVersion)
}

// encodeSnapshot writes the given format revision: v2 (aligned,
// accelerated) for production, v1 for the compatibility fixture and
// the corruption matrix.
func encodeSnapshot(s *Snapshot, format uint32) ([]byte, error) {
	if s == nil || s.Graph == nil {
		return nil, fmt.Errorf("store: encode: snapshot has no graph")
	}
	if format != formatV1 && format != FormatVersion {
		return nil, fmt.Errorf("store: encode: unknown format v%d", format)
	}
	aligned := format >= 2
	type section struct {
		name    string
		payload []byte
	}
	metaJSON, err := json.Marshal(s.Meta)
	if err != nil {
		return nil, fmt.Errorf("store: encode: meta: %w", err)
	}
	gv := s.Graph.Version()
	sections := []section{
		{SecGraph, encodeGraph(s.Graph, aligned)},
		{SecMeta, metaJSON},
	}
	if s.Sling != nil {
		sections = append(sections, section{SecSling, encodeSling(gv, s.Sling, aligned)})
	}
	if s.Reads != nil {
		sections = append(sections, section{SecReads, encodeReads(gv, s.Reads, aligned)})
	}
	if s.PRSim != nil {
		sections = append(sections, section{SecPRSim, encodePRSim(gv, s.PRSim, aligned)})
	}

	var e enc
	e.buf.WriteString(Magic)
	e.u32(format)
	e.u64(gv)
	e.u32(uint32(len(sections)))
	off := headerSize + len(sections)*sectionHeaderSize
	if aligned {
		off = alignUp(off, sectionAlign)
	}
	for _, sec := range sections {
		var name [8]byte
		copy(name[:], sec.name)
		e.buf.Write(name[:])
		e.u64(uint64(off))
		e.u64(uint64(len(sec.payload)))
		e.u32(crc32.ChecksumIEEE(sec.payload))
		off += len(sec.payload)
		if aligned {
			off = alignUp(off, sectionAlign)
		}
	}
	pad := make([]byte, sectionAlign)
	if aligned {
		e.buf.Write(pad[:alignUp(e.buf.Len(), sectionAlign)-e.buf.Len()])
	}
	for _, sec := range sections {
		e.buf.Write(sec.payload)
		if aligned {
			e.buf.Write(pad[:alignUp(e.buf.Len(), sectionAlign)-e.buf.Len()])
		}
	}
	return e.buf.Bytes(), nil
}

// Write encodes the snapshot and writes it to path atomically (temp
// file + rename), so a crash mid-write never leaves a half-snapshot
// that a later strict load would have to reject.
func Write(path string, s *Snapshot) error {
	data, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: write: %w", err)
	}
	return nil
}
