package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"

	"crashsim/internal/graph"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	const n = 24
	b := graph.NewBuilder(n, true)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
		if j := (i*7 + 3) % n; j != i {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testSnapshot builds a graph plus SLING, READS and PRSim indexes over
// it and wraps their exported payloads in a snapshot.
func testSnapshot(t testing.TB) (*Snapshot, *sling.Index, *reads.Index, *prsim.Index) {
	t.Helper()
	g := testGraph(t)
	slIx, err := sling.Build(g, sling.Options{Seed: 1, DSamples: 16})
	if err != nil {
		t.Fatal(err)
	}
	d := graph.NewDiGraph(g.NumNodes(), g.Directed())
	for _, e := range g.Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			t.Fatal(err)
		}
	}
	rdIx, err := reads.Build(d, reads.Options{R: 8, MaxLen: 5, RQ: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	prIx, err := prsim.Build(g, prsim.Options{HubFraction: 0.25, Iterations: 60, DSamples: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Touch one source so the payload carries lazily cached tail tables
	// alongside the eager hubs.
	if _, err := prIx.SingleSource(0); err != nil {
		t.Fatal(err)
	}
	slP := slIx.Export()
	rdP := rdIx.Export()
	prP := prIx.Export()
	return &Snapshot{
		Graph: g,
		Meta:  Meta{Dataset: "unit-test", Tool: "store_test", CreatedUnix: 1754600000},
		Sling: &slP,
		Reads: &rdP,
		PRSim: &prP,
	}, slIx, rdIx, prIx
}

func encodeOK(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	data, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// sectionEntry locates a section in an encoded snapshot and returns the
// file offset of its table entry and of its payload.
func sectionEntry(t *testing.T, data []byte, name string) (entryOff, payloadOff, payloadLen int) {
	t.Helper()
	count := int(binary.LittleEndian.Uint32(data[20:24]))
	for i := 0; i < count; i++ {
		e := headerSize + i*sectionHeaderSize
		got := string(data[e : e+8])
		for len(got) > 0 && got[len(got)-1] == 0 {
			got = got[:len(got)-1]
		}
		if got == name {
			off := int(binary.LittleEndian.Uint64(data[e+8 : e+16]))
			length := int(binary.LittleEndian.Uint64(data[e+16 : e+24]))
			return e, off, length
		}
	}
	t.Fatalf("section %q not found", name)
	return 0, 0, 0
}

func TestRoundTripBitIdentical(t *testing.T) {
	snap, slIx, rdIx, prIx := testSnapshot(t)
	got, err := Decode(encodeOK(t, snap))
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.Version() != snap.Graph.Version() {
		t.Fatalf("graph version %#x, want %#x", got.Graph.Version(), snap.Graph.Version())
	}
	if got.Graph.NumEdges() != snap.Graph.NumEdges() || got.Graph.NumNodes() != snap.Graph.NumNodes() {
		t.Fatalf("graph shape %d/%d, want %d/%d",
			got.Graph.NumNodes(), got.Graph.NumEdges(), snap.Graph.NumNodes(), snap.Graph.NumEdges())
	}
	if got.Meta != snap.Meta {
		t.Fatalf("meta %+v, want %+v", got.Meta, snap.Meta)
	}
	if !reflect.DeepEqual(got.Sling, snap.Sling) {
		t.Fatal("sling payload did not round-trip")
	}
	if !reflect.DeepEqual(got.Reads, snap.Reads) {
		t.Fatal("reads payload did not round-trip")
	}
	if !reflect.DeepEqual(got.PRSim, snap.PRSim) {
		t.Fatal("prsim payload did not round-trip")
	}

	// The loaded indexes must answer exactly what the built ones answer:
	// same keys, bit-identical float64s.
	slLoaded, err := got.ImportSling(got.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rdLoaded, err := got.ImportReads(got.Graph)
	if err != nil {
		t.Fatal(err)
	}
	prLoaded, err := got.ImportPRSim(got.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if prLoaded.HubCount() != prIx.HubCount() {
		t.Fatalf("loaded prsim hub count %d, want %d", prLoaded.HubCount(), prIx.HubCount())
	}
	for u := 0; u < got.Graph.NumNodes(); u++ {
		want, err := slIx.SingleSource(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		have, err := slLoaded.SingleSource(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("sling SingleSource(%d) differs between built and loaded index", u)
		}
		want, err = rdIx.SingleSource(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		have, err = rdLoaded.SingleSource(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("reads SingleSource(%d) differs between built and loaded index", u)
		}
		want, err = prIx.SingleSource(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		have, err = prLoaded.SingleSource(graph.NodeID(u))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, have) {
			t.Fatalf("prsim SingleSource(%d) differs between built and loaded index", u)
		}
	}
}

func TestWriteLoadFile(t *testing.T) {
	snap, _, _, _ := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "test.snap")
	if err := Write(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.Version() != snap.Graph.Version() || got.Sling == nil || got.Reads == nil || got.PRSim == nil {
		t.Fatalf("loaded snapshot incomplete: version %#x, sling %v, reads %v, prsim %v",
			got.Graph.Version(), got.Sling != nil, got.Reads != nil, got.PRSim != nil)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatal("loading an absent file succeeded")
	}
}

// The corruption matrix: every way a snapshot's bytes can be unusable
// must fail with its designated sentinel and must never yield a
// snapshot object.
func TestCorruptionMatrix(t *testing.T) {
	snap, _, _, _ := testSnapshot(t)
	pristine := encodeOK(t, snap)

	check := func(t *testing.T, data []byte, want error) {
		t.Helper()
		got, err := Decode(data)
		if !errors.Is(err, want) {
			t.Fatalf("Decode error = %v, want %v", err, want)
		}
		if got != nil {
			t.Fatal("Decode returned a snapshot alongside the error")
		}
	}
	mutate := func(f func(data []byte) []byte) []byte {
		data := append([]byte(nil), pristine...)
		return f(data)
	}

	t.Run("bad magic", func(t *testing.T) {
		check(t, mutate(func(d []byte) []byte { d[0] = 'X'; return d }), ErrBadMagic)
	})
	t.Run("wrong format version", func(t *testing.T) {
		check(t, mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:12], FormatVersion+7)
			return d
		}), ErrFormatVersion)
	})
	t.Run("empty file", func(t *testing.T) {
		check(t, nil, ErrTruncated)
	})
	t.Run("truncated header", func(t *testing.T) {
		check(t, pristine[:headerSize-4], ErrTruncated)
	})
	t.Run("truncated section table", func(t *testing.T) {
		check(t, pristine[:headerSize+sectionHeaderSize/2], ErrTruncated)
	})
	t.Run("truncated payload", func(t *testing.T) {
		check(t, pristine[:len(pristine)-3], ErrTruncated)
	})
	for _, sec := range []string{SecGraph, SecMeta, SecSling, SecReads, SecPRSim} {
		t.Run("bit flip in "+sec, func(t *testing.T) {
			check(t, mutate(func(d []byte) []byte {
				_, off, length := sectionEntry(t, d, sec)
				d[off+length/2] ^= 0x10
				return d
			}), ErrChecksum)
		})
	}
	t.Run("index built for a different graph", func(t *testing.T) {
		// Forge a sling section recorded against another graph version,
		// with a valid CRC so only the version gate can catch it.
		check(t, mutate(func(d []byte) []byte {
			entry, off, length := sectionEntry(t, d, SecSling)
			d[off] ^= 0xFF
			binary.LittleEndian.PutUint32(d[entry+24:entry+28], crc32.ChecksumIEEE(d[off:off+length]))
			return d
		}), ErrVersionMismatch)
	})
	t.Run("forged graph identity", func(t *testing.T) {
		// A content-derived header version that the CSR bytes do not hash
		// to must be rejected even though every checksum passes.
		data := mutate(func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[12:20], snap.Graph.Version()^2)
			return d
		})
		if got, err := Decode(data); err == nil || got != nil {
			t.Fatalf("Decode accepted a forged graph version (err=%v)", err)
		}
	})
	t.Run("missing graph section", func(t *testing.T) {
		check(t, mutate(func(d []byte) []byte {
			entry, _, _ := sectionEntry(t, d, SecGraph)
			copy(d[entry:entry+8], "ignored\x00")
			return d
		}), ErrMissingSection)
	})
	t.Run("misaligned section offset", func(t *testing.T) {
		// A v2 section not on a 64-byte boundary would make the mapped
		// loader's typed casts undefined; both loaders refuse it.
		check(t, mutate(func(d []byte) []byte {
			entry, off, _ := sectionEntry(t, d, SecSling)
			binary.LittleEndian.PutUint64(d[entry+8:entry+16], uint64(off+4))
			return d
		}), ErrMisaligned)
	})
	t.Run("truncated padding", func(t *testing.T) {
		// v2 files must be exactly the 64-aligned span of their
		// sections; trailing garbage (or missing pad bytes — the
		// "truncated payload" row above) is refused.
		check(t, mutate(func(d []byte) []byte {
			return append(d, make([]byte, sectionAlign)...)
		}), ErrTruncated)
	})
}

func TestImportRefusesWrongGraph(t *testing.T) {
	snap, _, _, _ := testSnapshot(t)
	got, err := Decode(encodeOK(t, snap))
	if err != nil {
		t.Fatal(err)
	}
	other := graph.NewBuilder(24, true).AddEdge(3, 4).MustFreeze()
	if _, err := got.ImportSling(other); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("ImportSling(other graph) error = %v, want ErrVersionMismatch", err)
	}
	if _, err := got.ImportReads(other); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("ImportReads(other graph) error = %v, want ErrVersionMismatch", err)
	}
	if _, err := got.ImportPRSim(other); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("ImportPRSim(other graph) error = %v, want ErrVersionMismatch", err)
	}
}

func TestImportMissingSection(t *testing.T) {
	snap, _, _, _ := testSnapshot(t)
	snap.Sling, snap.Reads, snap.PRSim = nil, nil, nil
	got, err := Decode(encodeOK(t, snap))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.ImportSling(got.Graph); !errors.Is(err, ErrMissingSection) {
		t.Fatalf("ImportSling error = %v, want ErrMissingSection", err)
	}
	if _, err := got.ImportReads(got.Graph); !errors.Is(err, ErrMissingSection) {
		t.Fatalf("ImportReads error = %v, want ErrMissingSection", err)
	}
	if _, err := got.ImportPRSim(got.Graph); !errors.Is(err, ErrMissingSection) {
		t.Fatalf("ImportPRSim error = %v, want ErrMissingSection", err)
	}
}

func TestSnapshotPathDistinct(t *testing.T) {
	a := SnapshotPath("idx", "scale-free@1.0/42", "sling")
	b := SnapshotPath("idx", "scale-free@1.0_42", "sling")
	if a == b {
		t.Fatalf("distinct specs mapped to one path %q", a)
	}
	if filepath.Dir(a) != "idx" {
		t.Fatalf("path %q not under requested dir", a)
	}
}
