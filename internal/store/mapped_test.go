package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"crashsim/internal/graph"
)

// writeTestSnapshot writes the standard test snapshot to a temp file
// and returns its path plus the in-memory snapshot and built indexes.
func writeTestSnapshot(t *testing.T) (string, *Snapshot) {
	t.Helper()
	snap, _, _, _ := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "v2.snap")
	if err := Write(path, snap); err != nil {
		t.Fatal(err)
	}
	return path, snap
}

// TestMappedBitIdentical is the tentpole acceptance check at unit
// scale: every backend imported from the mapping must answer every
// source bit-for-bit like the copying loader's import.
func TestMappedBitIdentical(t *testing.T) {
	for _, verify := range []VerifyPolicy{VerifyOnLoadSection, VerifyEager, VerifyNone} {
		t.Run(verify.String(), func(t *testing.T) {
			path, snap := writeTestSnapshot(t)
			loaded, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			mp, err := OpenMapped(path, MapOptions{Verify: verify})
			if err != nil {
				t.Fatal(err)
			}
			defer mp.Close()
			if mp.GraphVersion() != snap.Graph.Version() {
				t.Fatalf("mapped graph version %#x, want %#x", mp.GraphVersion(), snap.Graph.Version())
			}
			if mp.Meta() != snap.Meta {
				t.Fatalf("mapped meta %+v, want %+v", mp.Meta(), snap.Meta)
			}
			if mp.MappedBytes() == 0 {
				t.Fatal("MappedBytes() = 0")
			}
			g := mp.Graph()
			if g.NumNodes() != snap.Graph.NumNodes() || g.NumEdges() != snap.Graph.NumEdges() {
				t.Fatalf("mapped graph shape %d/%d, want %d/%d",
					g.NumNodes(), g.NumEdges(), snap.Graph.NumNodes(), snap.Graph.NumEdges())
			}
			slC, err := loaded.ImportSling(loaded.Graph)
			if err != nil {
				t.Fatal(err)
			}
			rdC, err := loaded.ImportReads(loaded.Graph)
			if err != nil {
				t.Fatal(err)
			}
			prC, err := loaded.ImportPRSim(loaded.Graph)
			if err != nil {
				t.Fatal(err)
			}
			slM, err := mp.ImportSling(g)
			if err != nil {
				t.Fatal(err)
			}
			defer slM.Close()
			rdM, err := mp.ImportReads(g)
			if err != nil {
				t.Fatal(err)
			}
			defer rdM.Close()
			prM, err := mp.ImportPRSim(g)
			if err != nil {
				t.Fatal(err)
			}
			defer prM.Close()
			for u := 0; u < g.NumNodes(); u++ {
				for _, c := range []struct {
					name       string
					want, have func(graph.NodeID) (map[graph.NodeID]float64, error)
				}{
					{"sling", slC.SingleSource, slM.SingleSource},
					{"reads", rdC.SingleSource, rdM.SingleSource},
					{"prsim", prC.SingleSource, prM.SingleSource},
				} {
					want, err := c.want(graph.NodeID(u))
					if err != nil {
						t.Fatal(err)
					}
					have, err := c.have(graph.NodeID(u))
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, have) {
						t.Fatalf("%s SingleSource(%d) differs between copied and mapped index", c.name, u)
					}
				}
			}
		})
	}
}

// TestMappedLifecycleRace pins the refcount story under the race
// detector: queries keep running on a mapped index while another
// goroutine closes the store handle, and the pages are only released
// (mapped_bytes gauge back down) when the last index closes.
func TestMappedLifecycleRace(t *testing.T) {
	path, _ := writeTestSnapshot(t)
	before := statMappedBytes.Load()
	mp, err := OpenMapped(path, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := mp.Graph()
	sl, err := mp.ImportSling(g)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := 0; u < g.NumNodes(); u++ {
				if _, err := sl.SingleSource(graph.NodeID(u)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := mp.Close(); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	// The store handle is gone, the index's retained reference is not:
	// queries must still see valid pages.
	if _, err := sl.SingleSource(0); err != nil {
		t.Fatal(err)
	}
	if got := statMappedBytes.Load(); got == before {
		t.Fatal("mapped_bytes gauge did not rise while the index held the mapping")
	}
	if err := sl.Close(); err != nil {
		t.Fatal(err)
	}
	if got := statMappedBytes.Load(); got != before {
		t.Fatalf("mapped_bytes gauge = %d after the last close, want %d", got, before)
	}
}

// TestMappedVerifyPolicies pins what each policy hashes and when,
// via the crc_deferred/crc_verified counters and a corrupted section.
func TestMappedVerifyPolicies(t *testing.T) {
	path, _ := writeTestSnapshot(t)

	t.Run("lazy hashes once on first import", func(t *testing.T) {
		deferred0, verified0 := statCrcDeferred.Load(), statCrcVerified.Load()
		mp, err := OpenMapped(path, MapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer mp.Close()
		// Open defers every section but hashes graph and meta to decode
		// them (the graph is needed eagerly for imports).
		if d := statCrcDeferred.Load() - deferred0; d != 5 {
			t.Fatalf("crc_deferred rose by %d at open, want 5", d)
		}
		afterOpen := statCrcVerified.Load()
		if _, err := mp.ImportSling(mp.Graph()); err != nil {
			t.Fatal(err)
		}
		if d := statCrcVerified.Load() - afterOpen; d != 1 {
			t.Fatalf("crc_verified rose by %d on first sling import, want 1", d)
		}
		again := statCrcVerified.Load()
		if _, err := mp.ImportSling(mp.Graph()); err != nil {
			t.Fatal(err)
		}
		if statCrcVerified.Load() != again {
			t.Fatal("second import re-hashed an already verified section")
		}
		if statCrcVerified.Load() == verified0 {
			t.Fatal("lazy policy never hashed anything")
		}
	})

	t.Run("none never hashes", func(t *testing.T) {
		verified0 := statCrcVerified.Load()
		mp, err := OpenMapped(path, MapOptions{Verify: VerifyNone})
		if err != nil {
			t.Fatal(err)
		}
		defer mp.Close()
		if _, err := mp.ImportReads(mp.Graph()); err != nil {
			t.Fatal(err)
		}
		if statCrcVerified.Load() != verified0 {
			t.Fatal("VerifyNone hashed a section")
		}
	})

	t.Run("corrupt section", func(t *testing.T) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		_, off, length := sectionEntry(t, data, SecSling)
		data[off+length/2] ^= 0x10
		bad := filepath.Join(t.TempDir(), "bad.snap")
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Eager: refused at open.
		if _, err := OpenMapped(bad, MapOptions{Verify: VerifyEager}); !errors.Is(err, ErrChecksum) {
			t.Fatalf("eager open error = %v, want ErrChecksum", err)
		}
		// Lazy: open succeeds (graph section is intact), the corrupted
		// section is refused exactly when it is first needed.
		mp, err := OpenMapped(bad, MapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer mp.Close()
		if _, err := mp.ImportSling(mp.Graph()); !errors.Is(err, ErrChecksum) {
			t.Fatalf("lazy sling import error = %v, want ErrChecksum", err)
		}
		if _, err := mp.ImportReads(mp.Graph()); err != nil {
			t.Fatalf("intact reads section refused: %v", err)
		}
	})
}

// TestMappedRefusesWrongGraphAndMissing mirrors the copying loader's
// import gates.
func TestMappedRefusesWrongGraphAndMissing(t *testing.T) {
	path, _ := writeTestSnapshot(t)
	mp, err := OpenMapped(path, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	other := graph.NewBuilder(24, true).AddEdge(3, 4).MustFreeze()
	if _, err := mp.ImportSling(other); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("ImportSling(other graph) error = %v, want ErrVersionMismatch", err)
	}

	bare, _, _, _ := testSnapshot(t)
	bare.Sling, bare.Reads, bare.PRSim = nil, nil, nil
	barePath := filepath.Join(t.TempDir(), "bare.snap")
	if err := Write(barePath, bare); err != nil {
		t.Fatal(err)
	}
	bmp, err := OpenMapped(barePath, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer bmp.Close()
	if _, err := bmp.ImportSling(bmp.Graph()); !errors.Is(err, ErrMissingSection) {
		t.Fatalf("ImportSling on bare snapshot error = %v, want ErrMissingSection", err)
	}
	if bmp.Has(SecSling) || !bmp.Has(SecGraph) {
		t.Fatal("Has() disagrees with the written sections")
	}
}

// TestMappedNoExportedFields: the mapped view types must not expose
// any field a caller could mutate or alias around the refcount; the
// page protection is the backstop, this is the first line.
func TestMappedNoExportedFields(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(Mapped{}),
		reflect.TypeOf(mappedSection{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			if f := typ.Field(i); f.IsExported() {
				t.Errorf("%s exports field %s", typ.Name(), f.Name)
			}
		}
	}
}

// BenchmarkLoadCopying and BenchmarkOpenMapped pin the two restart
// paths side by side, allocations included: the copying loader decodes
// every array out of the read buffer (one copy — the PR 7 loader's
// double-buffering is gone, which this benchmark's allocs/op pins),
// while the mapped loader's cost is shape checks over aliased arrays.
func BenchmarkLoadCopying(b *testing.B) {
	path := benchSnapshotPath(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Load(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.ImportSling(s.Graph); err != nil {
			b.Fatal(err)
		}
		if _, err := s.ImportReads(s.Graph); err != nil {
			b.Fatal(err)
		}
		if _, err := s.ImportPRSim(s.Graph); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenMapped(b *testing.B) {
	path := benchSnapshotPath(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp, err := OpenMapped(path, MapOptions{Verify: VerifyNone})
		if err != nil {
			b.Fatal(err)
		}
		sl, err := mp.ImportSling(mp.Graph())
		if err != nil {
			b.Fatal(err)
		}
		rd, err := mp.ImportReads(mp.Graph())
		if err != nil {
			b.Fatal(err)
		}
		pr, err := mp.ImportPRSim(mp.Graph())
		if err != nil {
			b.Fatal(err)
		}
		sl.Close()
		rd.Close()
		pr.Close()
		mp.Close()
	}
}

func benchSnapshotPath(b *testing.B) string {
	b.Helper()
	snap, _, _, _ := testSnapshot(b)
	path := filepath.Join(b.TempDir(), "bench.snap")
	if err := Write(path, snap); err != nil {
		b.Fatal(err)
	}
	return path
}
