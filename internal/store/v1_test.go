package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"crashsim/internal/graph"
)

const v1FixturePath = "testdata/v1.snap"

// TestV1Fixture pins backward compatibility against a committed v1
// snapshot (the pre-mmap format): it must still decode with every CRC
// checked, import, upgrade cleanly through the v2 writer, and serve
// the same scores copied or mapped after the upgrade. The mapped
// loader must refuse the v1 file itself with ErrFormatVersion — that
// is the signal for callers to fall back to the copying path.
//
// Regenerate the fixture (only if the v1 encoder itself must change,
// which it should not) with:
//
//	STORE_WRITE_V1_FIXTURE=1 go test ./internal/store -run TestV1Fixture
func TestV1Fixture(t *testing.T) {
	if os.Getenv("STORE_WRITE_V1_FIXTURE") != "" {
		snap, _, _, _ := testSnapshot(t)
		data, err := encodeSnapshot(snap, formatV1)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(v1FixturePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(v1FixturePath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(v1FixturePath)
	if err != nil {
		t.Fatalf("committed v1 fixture missing (regenerate with STORE_WRITE_V1_FIXTURE=1): %v", err)
	}
	v1, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Sling == nil || v1.Reads == nil || v1.PRSim == nil {
		t.Fatal("v1 fixture is missing index sections")
	}
	slV1, err := v1.ImportSling(v1.Graph)
	if err != nil {
		t.Fatal(err)
	}
	rdV1, err := v1.ImportReads(v1.Graph)
	if err != nil {
		t.Fatal(err)
	}
	prV1, err := v1.ImportPRSim(v1.Graph)
	if err != nil {
		t.Fatal(err)
	}

	// The mapped loader refuses v1 — no alignment, no accel blobs.
	dir := t.TempDir()
	v1Path := filepath.Join(dir, "v1.snap")
	if err := os.WriteFile(v1Path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(v1Path, MapOptions{}); !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("OpenMapped(v1) error = %v, want ErrFormatVersion", err)
	}

	// Upgrading: re-writing the loaded snapshot produces a v2 file that
	// both loaders accept and that scores identically to the v1 import.
	v2Path := filepath.Join(dir, "v2.snap")
	if err := Write(v2Path, v1); err != nil {
		t.Fatal(err)
	}
	v2, err := Load(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v2.Sling, v1.Sling) || !reflect.DeepEqual(v2.Reads, v1.Reads) || !reflect.DeepEqual(v2.PRSim, v1.PRSim) {
		t.Fatal("payloads changed across the v1 -> v2 rewrite")
	}
	mp, err := OpenMapped(v2Path, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	slM, err := mp.ImportSling(mp.Graph())
	if err != nil {
		t.Fatal(err)
	}
	defer slM.Close()
	rdM, err := mp.ImportReads(mp.Graph())
	if err != nil {
		t.Fatal(err)
	}
	defer rdM.Close()
	prM, err := mp.ImportPRSim(mp.Graph())
	if err != nil {
		t.Fatal(err)
	}
	defer prM.Close()
	for u := 0; u < v1.Graph.NumNodes(); u++ {
		for _, c := range []struct {
			name       string
			want, have func(graph.NodeID) (map[graph.NodeID]float64, error)
		}{
			{"sling", slV1.SingleSource, slM.SingleSource},
			{"reads", rdV1.SingleSource, rdM.SingleSource},
			{"prsim", prV1.SingleSource, prM.SingleSource},
		} {
			want, err := c.want(graph.NodeID(u))
			if err != nil {
				t.Fatal(err)
			}
			have, err := c.have(graph.NodeID(u))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, have) {
				t.Fatalf("%s SingleSource(%d) differs between v1 import and upgraded mapped import", c.name, u)
			}
		}
	}
}
