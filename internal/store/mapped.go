package store

import (
	"fmt"
	"sync/atomic"

	"crashsim/internal/graph"
	"crashsim/internal/mmap"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

// VerifyPolicy selects how much of a mapped snapshot is checked before
// it is trusted. The structural frame (magic, format, section table,
// alignment, padded length) is always validated eagerly at OpenMapped
// — the policies only govern payload hashing and semantic validation,
// which are the parts that scale with file size and would defeat the
// point of an O(1) mapped open.
type VerifyPolicy int

const (
	// VerifyOnLoadSection (the default, zero value) hashes each
	// section's CRC once, lazily, the first time that section is
	// imported. A restart that serves only sling queries never pays for
	// hashing the reads section; a rotted section still cannot serve.
	VerifyOnLoadSection VerifyPolicy = iota
	// VerifyEager hashes every section at OpenMapped and runs the full
	// semantic validation (CSR invariants, content-version recompute,
	// per-entry range checks) on import — the policy behind
	// `crashsim -verify-index -mmap`.
	VerifyEager
	// VerifyNone skips payload hashing entirely: trusted warm restarts
	// on the machine that wrote the snapshot, where the bytes were
	// CRC'd on the way out and the filesystem is trusted.
	VerifyNone
)

func (p VerifyPolicy) String() string {
	switch p {
	case VerifyOnLoadSection:
		return "on-load-section"
	case VerifyEager:
		return "eager"
	case VerifyNone:
		return "none"
	default:
		return fmt.Sprintf("VerifyPolicy(%d)", int(p))
	}
}

// MapOptions configures OpenMapped.
type MapOptions struct {
	Verify VerifyPolicy
}

// mappedSection pairs a section's byte window in the mapping with its
// lazy CRC state.
type mappedSection struct {
	info     sectionInfo
	payload  []byte
	verified atomic.Bool
}

// Mapped is a snapshot served directly out of a read-only file
// mapping: the graph CSR, index payload columns, and the v2
// accelerator arrays all alias the mapping, so opening touches O(1)
// pages and the page cache — shared across every process mapping the
// same file — is the only copy of the data.
//
// Lifetime: each imported index retains the mapping and releases it on
// its Close, so Close-ing the Mapped handle while queries are in
// flight on an imported index is safe — the pages stay mapped until
// the last index releases them. All fields are unexported on purpose:
// the only mutable surface is Close.
type Mapped struct {
	m            *mmap.Mapping
	path         string
	graphVersion uint64
	verify       VerifyPolicy
	secs         map[string]*mappedSection
	graph        *graph.Graph
	meta         Meta
	closed       atomic.Bool
}

// OpenMapped maps the snapshot at path and validates its structural
// frame eagerly. Only format v2 files can be mapped; a v1 file fails
// with ErrFormatVersion so callers can fall back to the copying Load.
// On hardware where zero-copy casts are unavailable (big-endian) every
// open fails with ErrFormatVersion for the same reason.
func OpenMapped(path string, opts MapOptions) (*Mapped, error) {
	if !mmap.CastsSupported() {
		return nil, fmt.Errorf("%w: mapped loading needs little-endian hardware, use the copying loader", ErrFormatVersion)
	}
	m, err := mmap.Open(path)
	if err != nil {
		return nil, err
	}
	mapped, err := newMapped(m, path, opts)
	if err != nil {
		m.Close()
		return nil, err
	}
	statMmapOpens.Inc()
	mappedLen := int64(m.Len())
	statMappedBytes.Add(mappedLen)
	m.SetOnUnmap(func() { statMappedBytes.Add(-mappedLen) })
	return mapped, nil
}

func newMapped(m *mmap.Mapping, path string, opts MapOptions) (*Mapped, error) {
	data := m.Bytes()
	fi, err := parseHeader(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if fi.format < 2 {
		return nil, fmt.Errorf("%s: %w: v%d snapshots are not mapping-safe, use the copying loader",
			path, ErrFormatVersion, fi.format)
	}
	mp := &Mapped{
		m:            m,
		path:         path,
		graphVersion: fi.graphVersion,
		verify:       opts.Verify,
		secs:         make(map[string]*mappedSection, len(fi.sections)),
	}
	for _, sec := range fi.sections {
		mp.secs[sec.name] = &mappedSection{info: sec, payload: data[sec.off : sec.off+sec.length]}
	}
	if mp.verify == VerifyEager {
		for _, name := range []string{SecGraph, SecMeta, SecSling, SecReads, SecPRSim} {
			if ms := mp.secs[name]; ms != nil {
				if err := mp.checkCRC(ms); err != nil {
					return nil, fmt.Errorf("%s: %w", path, err)
				}
			}
		}
	} else {
		statCrcDeferred.Add(uint64(len(mp.secs)))
	}
	gp, err := mp.section(SecGraph)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Trusted opens adopt the CSR arrays with shape checks only; the
	// eager policy runs FromCSR's full validation and content-version
	// recompute, matching what the copying Decode always does.
	mp.graph, err = decodeGraph(gp, fi.graphVersion, true, true, mp.verify != VerifyEager)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if ms := mp.secs[SecMeta]; ms != nil {
		if _, err := mp.section(SecMeta); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if err := decodeMeta(ms.payload, &mp.meta); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	return mp, nil
}

func (mp *Mapped) checkCRC(ms *mappedSection) error {
	if err := verifySectionCRC(ms.info, ms.payload); err != nil {
		return err
	}
	ms.verified.Store(true)
	statCrcVerified.Inc()
	return nil
}

// section returns a section's payload window after applying the CRC
// policy: eager sections were hashed at open, lazy sections hash here
// exactly once, VerifyNone never hashes.
func (mp *Mapped) section(name string) ([]byte, error) {
	ms := mp.secs[name]
	if ms == nil {
		return nil, fmt.Errorf("%w: %s", ErrMissingSection, name)
	}
	if mp.verify != VerifyNone && !ms.verified.Load() {
		if err := mp.checkCRC(ms); err != nil {
			return nil, err
		}
	}
	return ms.payload, nil
}

// Graph returns the snapshot's graph, its CSR arrays aliasing the
// mapping. It stays valid while the Mapped handle or any index
// imported from it is open.
func (mp *Mapped) Graph() *graph.Graph { return mp.graph }

// Meta returns the snapshot's provenance record.
func (mp *Mapped) Meta() Meta { return mp.meta }

// GraphVersion returns the snapshotted graph's identity.
func (mp *Mapped) GraphVersion() uint64 { return mp.graphVersion }

// Has reports whether the snapshot carries the named section.
func (mp *Mapped) Has(name string) bool { return mp.secs[name] != nil }

// MappedBytes returns the size of the underlying mapping.
func (mp *Mapped) MappedBytes() int { return mp.m.Len() }

// Path returns the mapped file's path.
func (mp *Mapped) Path() string { return mp.path }

// retainFor pins the mapping for the lifetime of an imported index.
func (mp *Mapped) retainFor(setRelease func(func() error)) {
	r := mp.m.Retain()
	setRelease(r.Close)
}

// ImportSling binds the snapshot's SLING section to g as an index
// serving straight from the mapping: payload columns and the
// precompiled inverted index alias the file bytes, so the import cost
// is shape checks, not array builds. The returned index holds a
// mapping reference released by its Close.
func (mp *Mapped) ImportSling(g *graph.Graph) (*sling.Index, error) {
	if err := mp.checkGraph(g, SecSling); err != nil {
		return nil, err
	}
	payload, err := mp.section(SecSling)
	if err != nil {
		return nil, err
	}
	f, err := decodeSlingFlat(payload, mp.graphVersion)
	if err != nil {
		return nil, err
	}
	ix, err := sling.ImportFlat(g, *f, mp.verify == VerifyEager)
	if err != nil {
		return nil, err
	}
	mp.retainFor(ix.SetRelease)
	return ix, nil
}

// ImportReads binds the snapshot's READS section to g, walks and
// inverted runs aliasing the mapping. The first mutation applied to
// the returned index promotes it to heap form (copy-on-write); until
// then it is read-only.
func (mp *Mapped) ImportReads(g *graph.Graph) (*reads.Index, error) {
	if err := mp.checkGraph(g, SecReads); err != nil {
		return nil, err
	}
	payload, err := mp.section(SecReads)
	if err != nil {
		return nil, err
	}
	f, err := decodeReadsFlat(payload, mp.graphVersion)
	if err != nil {
		return nil, err
	}
	ix, err := reads.ImportFlat(g, *f, mp.verify == VerifyEager)
	if err != nil {
		return nil, err
	}
	mp.retainFor(ix.SetRelease)
	return ix, nil
}

// ImportPRSim binds the snapshot's PRSim section to g. The hub tables
// alias the mapping; lazily filled tail tables land on the heap beside
// them, exactly as in the copying import.
func (mp *Mapped) ImportPRSim(g *graph.Graph) (*prsim.Index, error) {
	if err := mp.checkGraph(g, SecPRSim); err != nil {
		return nil, err
	}
	payload, err := mp.section(SecPRSim)
	if err != nil {
		return nil, err
	}
	p, err := decodePRSim(payload, mp.graphVersion, true, true)
	if err != nil {
		return nil, err
	}
	var ix *prsim.Index
	if mp.verify == VerifyEager {
		ix, err = prsim.Import(g, *p)
	} else {
		ix, err = prsim.ImportBorrowed(g, *p)
	}
	if err != nil {
		return nil, err
	}
	mp.retainFor(ix.SetRelease)
	return ix, nil
}

func (mp *Mapped) checkGraph(g *graph.Graph, sec string) error {
	if mp.secs[sec] == nil {
		return fmt.Errorf("%w: %s", ErrMissingSection, sec)
	}
	if g.Version() != mp.graphVersion {
		return fmt.Errorf("%w: snapshot graph %#x, target graph %#x",
			ErrVersionMismatch, mp.graphVersion, g.Version())
	}
	return nil
}

// Close releases the handle's mapping reference. Idempotent. Indexes
// imported from this handle keep the pages mapped until their own
// Close; the Graph is valid as long as any of them is.
func (mp *Mapped) Close() error {
	if !mp.closed.CompareAndSwap(false, true) {
		return nil
	}
	return mp.m.Close()
}
