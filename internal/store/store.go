// Package store persists the expensive artifacts of a serving process —
// the frozen graph and the SLING/READS precomputed indexes — as a
// single versioned, checksummed binary snapshot, so a restart loads in
// I/O time instead of rebuild time.
//
// File layout (all integers little-endian):
//
//	magic            8 bytes  "CSIMSNAP"
//	format version   u32      currently 1
//	graph version    u64      identity of the snapshotted graph
//	section count    u32
//	section table    count × { name [8]byte NUL-padded,
//	                           offset u64, length u64, crc32 u32 }
//	section payloads byte ranges referenced by the table
//
// Offsets are absolute file offsets and the CRC (IEEE 802.3) covers the
// raw payload bytes of each section, so a loader can verify a section
// before decoding a single field of it. Sections:
//
//	"graph"  the CSR arrays of a frozen graph.Graph (required)
//	"meta"   JSON dataset metadata (required)
//	"sling"  a sling.Payload, prefixed by its graph version
//	"reads"  a reads.Payload, prefixed by its graph version
//	"prsim"  a prsim.Payload, prefixed by its graph version
//
// Invariants enforced by the loader:
//
//   - wrong magic, unknown format version, truncation, and checksum
//     mismatch each fail with a distinct sentinel error (errors.Is);
//   - a content-derived graph version is recomputed from the decoded
//     CSR arrays (graph.FromCSR) — a snapshot cannot claim an identity
//     its bytes do not hash to;
//   - an index section whose recorded graph version differs from the
//     graph it is imported against is refused with ErrVersionMismatch,
//     so a stale index can never serve scores for a changed graph.
package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"

	"crashsim/internal/graph"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

// Magic identifies a crashsim snapshot file.
const Magic = "CSIMSNAP"

// FormatVersion is the current snapshot format. Loaders refuse other
// versions outright: the format is versioned precisely so that a stale
// binary fails loudly instead of misdecoding.
const FormatVersion = 1

// Section names, as written into the section table.
const (
	SecGraph = "graph"
	SecMeta  = "meta"
	SecSling = "sling"
	SecReads = "reads"
	SecPRSim = "prsim"
)

// Typed loader failures. Every way a snapshot can be unusable maps to
// exactly one of these, so callers can log a precise reason and fall
// back to a rebuild.
var (
	// ErrBadMagic: the file is not a crashsim snapshot at all.
	ErrBadMagic = errors.New("store: bad magic (not a crashsim snapshot)")
	// ErrFormatVersion: the snapshot was written by an incompatible
	// format revision.
	ErrFormatVersion = errors.New("store: unsupported snapshot format version")
	// ErrTruncated: the file ends before the bytes the header or
	// section table promised.
	ErrTruncated = errors.New("store: snapshot truncated")
	// ErrChecksum: a section's payload does not hash to its recorded
	// CRC — the bytes rotted or were edited.
	ErrChecksum = errors.New("store: section checksum mismatch")
	// ErrMissingSection: a section the caller requires is absent.
	ErrMissingSection = errors.New("store: section missing")
	// ErrVersionMismatch: an index section records a different graph
	// version than the graph it is being attached to.
	ErrVersionMismatch = errors.New("store: graph version mismatch")
)

// Meta is the dataset provenance carried in every snapshot, so an
// operator can tell what a file on disk contains without loading it
// into a server.
type Meta struct {
	// Dataset is the spec the graph came from: an edge-list path or a
	// generator spec like "scale-free@1.0/42".
	Dataset string `json:"dataset,omitempty"`
	// Tool names the writer (e.g. "gendata", "simserver").
	Tool string `json:"tool,omitempty"`
	// CreatedUnix is the write time in Unix seconds.
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// Snapshot is the in-memory form of a snapshot file: the frozen graph,
// its provenance, and whichever index payloads were persisted. Index
// payloads stay in flat form until ImportSling/ImportReads binds them
// to a graph, so a caller can inspect a snapshot without paying for
// index reconstruction.
type Snapshot struct {
	Graph *graph.Graph
	Meta  Meta
	Sling *sling.Payload
	Reads *reads.Payload
	PRSim *prsim.Payload
}

// ImportSling reconstructs the snapshot's SLING index over g, refusing
// with ErrVersionMismatch if g is not the graph the index was built on.
// Pass s.Graph to bind the index to the snapshot's own graph.
func (s *Snapshot) ImportSling(g *graph.Graph) (*sling.Index, error) {
	if s.Sling == nil {
		return nil, fmt.Errorf("%w: %s", ErrMissingSection, SecSling)
	}
	if g.Version() != s.Graph.Version() {
		return nil, fmt.Errorf("%w: snapshot graph %#x, target graph %#x",
			ErrVersionMismatch, s.Graph.Version(), g.Version())
	}
	return sling.Import(g, *s.Sling)
}

// ImportReads reconstructs the snapshot's READS index over g, refusing
// with ErrVersionMismatch if g is not the graph the index was built on.
func (s *Snapshot) ImportReads(g *graph.Graph) (*reads.Index, error) {
	if s.Reads == nil {
		return nil, fmt.Errorf("%w: %s", ErrMissingSection, SecReads)
	}
	if g.Version() != s.Graph.Version() {
		return nil, fmt.Errorf("%w: snapshot graph %#x, target graph %#x",
			ErrVersionMismatch, s.Graph.Version(), g.Version())
	}
	return reads.Import(g, *s.Reads)
}

// ImportPRSim reconstructs the snapshot's PRSim hub index over g,
// refusing with ErrVersionMismatch if g is not the graph the index was
// built on. The loaded index carries every table the exporting process
// had published — eager hubs plus warm tail caches.
func (s *Snapshot) ImportPRSim(g *graph.Graph) (*prsim.Index, error) {
	if s.PRSim == nil {
		return nil, fmt.Errorf("%w: %s", ErrMissingSection, SecPRSim)
	}
	if g.Version() != s.Graph.Version() {
		return nil, fmt.Errorf("%w: snapshot graph %#x, target graph %#x",
			ErrVersionMismatch, s.Graph.Version(), g.Version())
	}
	return prsim.Import(g, *s.PRSim)
}

// SnapshotPath maps a dataset spec and index algorithm to a stable file
// name under dir: a sanitized spec prefix plus a short hash of the full
// spec (so distinct specs that sanitize alike cannot collide), e.g.
// "scale-free_1.0_42-a1b2c3d4e5f6a7b8.sling.snap".
func SnapshotPath(dir, spec, algo string) string {
	h := fnv.New64a()
	h.Write([]byte(spec))
	name := sanitize(spec)
	if len(name) > 40 {
		name = name[:40]
	}
	return filepath.Join(dir, fmt.Sprintf("%s-%016x.%s.snap", name, h.Sum64(), algo))
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-' || r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
