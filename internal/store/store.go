// Package store persists the expensive artifacts of a serving process —
// the frozen graph and the SLING/READS precomputed indexes — as a
// single versioned, checksummed binary snapshot, so a restart loads in
// I/O time instead of rebuild time.
//
// File layout (all integers little-endian):
//
//	magic            8 bytes  "CSIMSNAP"
//	format version   u32      currently 2 (v1 still loads)
//	graph version    u64      identity of the snapshotted graph
//	section count    u32
//	section table    count × { name [8]byte NUL-padded,
//	                           offset u64, length u64, crc32 u32 }
//	section payloads byte ranges referenced by the table
//
// Offsets are absolute file offsets and the CRC (IEEE 802.3) covers the
// raw payload bytes of each section, so a loader can verify a section
// before decoding a single field of it. Sections:
//
//	"graph"  the CSR arrays of a frozen graph.Graph (required)
//	"meta"   JSON dataset metadata (required)
//	"sling"  a sling.Payload, prefixed by its graph version
//	"reads"  a reads.Payload, prefixed by its graph version
//	"prsim"  a prsim.Payload, prefixed by its graph version
//
// Format v2 additionally lays sections out for zero-copy mapping
// (OpenMapped): every section starts at a 64-byte-aligned file offset
// with zero padding between sections, the file length is padded to a
// multiple of 64, and inside a section every array's u64 length prefix
// sits at an 8-aligned section offset (zero pad bytes inserted before
// it), so the element bytes that follow are aligned for direct
// []int32/[]float64 casts against the page-aligned mapping. The sling
// and reads sections end with an accelerator blob — the precompiled
// inverted-index arrays of sling.Flat / reads.Flat, framed as
// [align8][u64 byte length][arrays] — which the copying decoder skips
// by byte count and the mapped decoder serves queries from directly.
// v1 snapshots (no alignment, no accel blobs) still load and verify
// through the copying path; OpenMapped refuses them with
// ErrFormatVersion so callers can fall back.
//
// Invariants enforced by the loader:
//
//   - wrong magic, unknown format version, truncation, checksum
//     mismatch, and (v2) a misaligned section offset each fail with a
//     distinct sentinel error (errors.Is);
//   - a content-derived graph version is recomputed from the decoded
//     CSR arrays (graph.FromCSR) — a snapshot cannot claim an identity
//     its bytes do not hash to;
//   - an index section whose recorded graph version differs from the
//     graph it is imported against is refused with ErrVersionMismatch,
//     so a stale index can never serve scores for a changed graph.
package store

import (
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strings"

	"crashsim/internal/graph"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

// Magic identifies a crashsim snapshot file.
const Magic = "CSIMSNAP"

// FormatVersion is the current snapshot format, written by Encode.
// Loaders additionally accept formatV1 (the pre-mmap layout) and refuse
// everything else outright: the format is versioned precisely so that a
// stale binary fails loudly instead of misdecoding.
const FormatVersion = 2

// formatV1 is the original unaligned layout: contiguous sections, no
// padding, no accelerator blobs. Still read (and written by
// encodeSnapshot for fixtures), never produced by Encode.
const formatV1 = 1

// sectionAlign is the v2 section placement alignment. 64 covers every
// element width we cast to (8 for float64/uint64) with room to spare
// and keeps section starts cache-line-aligned.
const sectionAlign = 64

// Section names, as written into the section table.
const (
	SecGraph = "graph"
	SecMeta  = "meta"
	SecSling = "sling"
	SecReads = "reads"
	SecPRSim = "prsim"
)

// Typed loader failures. Every way a snapshot can be unusable maps to
// exactly one of these, so callers can log a precise reason and fall
// back to a rebuild.
var (
	// ErrBadMagic: the file is not a crashsim snapshot at all.
	ErrBadMagic = errors.New("store: bad magic (not a crashsim snapshot)")
	// ErrFormatVersion: the snapshot was written by an incompatible
	// format revision.
	ErrFormatVersion = errors.New("store: unsupported snapshot format version")
	// ErrTruncated: the file ends before the bytes the header or
	// section table promised.
	ErrTruncated = errors.New("store: snapshot truncated")
	// ErrChecksum: a section's payload does not hash to its recorded
	// CRC — the bytes rotted or were edited.
	ErrChecksum = errors.New("store: section checksum mismatch")
	// ErrMisaligned: a v2 section offset is not 64-byte aligned, so the
	// mapped loader's typed casts would be undefined. Such a file was
	// not produced by this writer.
	ErrMisaligned = errors.New("store: section offset misaligned")
	// ErrMissingSection: a section the caller requires is absent.
	ErrMissingSection = errors.New("store: section missing")
	// ErrVersionMismatch: an index section records a different graph
	// version than the graph it is being attached to.
	ErrVersionMismatch = errors.New("store: graph version mismatch")
)

// Meta is the dataset provenance carried in every snapshot, so an
// operator can tell what a file on disk contains without loading it
// into a server.
type Meta struct {
	// Dataset is the spec the graph came from: an edge-list path or a
	// generator spec like "scale-free@1.0/42".
	Dataset string `json:"dataset,omitempty"`
	// Tool names the writer (e.g. "gendata", "simserver").
	Tool string `json:"tool,omitempty"`
	// CreatedUnix is the write time in Unix seconds.
	CreatedUnix int64 `json:"created_unix,omitempty"`
}

// Snapshot is the in-memory form of a snapshot file: the frozen graph,
// its provenance, and whichever index payloads were persisted. Index
// payloads stay in flat form until ImportSling/ImportReads binds them
// to a graph, so a caller can inspect a snapshot without paying for
// index reconstruction.
type Snapshot struct {
	Graph *graph.Graph
	Meta  Meta
	Sling *sling.Payload
	Reads *reads.Payload
	PRSim *prsim.Payload
}

// ImportSling reconstructs the snapshot's SLING index over g, refusing
// with ErrVersionMismatch if g is not the graph the index was built on.
// Pass s.Graph to bind the index to the snapshot's own graph.
func (s *Snapshot) ImportSling(g *graph.Graph) (*sling.Index, error) {
	if s.Sling == nil {
		return nil, fmt.Errorf("%w: %s", ErrMissingSection, SecSling)
	}
	if g.Version() != s.Graph.Version() {
		return nil, fmt.Errorf("%w: snapshot graph %#x, target graph %#x",
			ErrVersionMismatch, s.Graph.Version(), g.Version())
	}
	return sling.Import(g, *s.Sling)
}

// ImportReads reconstructs the snapshot's READS index over g, refusing
// with ErrVersionMismatch if g is not the graph the index was built on.
func (s *Snapshot) ImportReads(g *graph.Graph) (*reads.Index, error) {
	if s.Reads == nil {
		return nil, fmt.Errorf("%w: %s", ErrMissingSection, SecReads)
	}
	if g.Version() != s.Graph.Version() {
		return nil, fmt.Errorf("%w: snapshot graph %#x, target graph %#x",
			ErrVersionMismatch, s.Graph.Version(), g.Version())
	}
	return reads.Import(g, *s.Reads)
}

// ImportPRSim reconstructs the snapshot's PRSim hub index over g,
// refusing with ErrVersionMismatch if g is not the graph the index was
// built on. The loaded index carries every table the exporting process
// had published — eager hubs plus warm tail caches.
func (s *Snapshot) ImportPRSim(g *graph.Graph) (*prsim.Index, error) {
	if s.PRSim == nil {
		return nil, fmt.Errorf("%w: %s", ErrMissingSection, SecPRSim)
	}
	if g.Version() != s.Graph.Version() {
		return nil, fmt.Errorf("%w: snapshot graph %#x, target graph %#x",
			ErrVersionMismatch, s.Graph.Version(), g.Version())
	}
	return prsim.Import(g, *s.PRSim)
}

// SnapshotPath maps a dataset spec and index algorithm to a stable file
// name under dir: a sanitized spec prefix plus a short hash of the full
// spec (so distinct specs that sanitize alike cannot collide), e.g.
// "scale-free_1.0_42-a1b2c3d4e5f6a7b8.sling.snap".
func SnapshotPath(dir, spec, algo string) string {
	h := fnv.New64a()
	h.Write([]byte(spec))
	name := sanitize(spec)
	if len(name) > 40 {
		name = name[:40]
	}
	return filepath.Join(dir, fmt.Sprintf("%s-%016x.%s.snap", name, h.Sum64(), algo))
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-' || r == '.':
			return r
		default:
			return '_'
		}
	}, s)
}
