package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/graph"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{
		Graph:  graph.PaperExample(),
		Params: core.Params{Iterations: 300, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("%s: bad JSON %q: %v", path, rec.Body.String(), err)
	}
	return rec, body
}

func TestHealth(t *testing.T) {
	rec, body := get(t, testServer(t), "/health")
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("health: %d %v", rec.Code, body)
	}
}

func TestStats(t *testing.T) {
	rec, body := get(t, testServer(t), "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	if body["nodes"].(float64) != 8 || body["edges"].(float64) != 15 {
		t.Errorf("stats body: %v", body)
	}
}

func TestSingleSource(t *testing.T) {
	rec, body := get(t, testServer(t), "/singlesource?u=0&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("singlesource: %d %v", rec.Code, body)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	prev := 2.0
	for _, r := range results {
		m := r.(map[string]any)
		score := m["score"].(float64)
		if score > prev {
			t.Error("results not sorted by score")
		}
		prev = score
		if m["node"].(float64) == 0 {
			t.Error("source included in results")
		}
	}
}

func TestPair(t *testing.T) {
	rec, body := get(t, testServer(t), "/pair?u=0&v=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("pair: %d %v", rec.Code, body)
	}
	score := body["score"].(float64)
	if score <= 0 || score > 1 {
		t.Errorf("pair score %g implausible", score)
	}
	// Identical pair scores 1.
	_, body = get(t, testServer(t), "/pair?u=2&v=2")
	if body["score"].(float64) != 1 {
		t.Errorf("self pair: %v", body)
	}
}

func TestTopK(t *testing.T) {
	rec, body := get(t, testServer(t), "/topk?u=0&k=2")
	if rec.Code != http.StatusOK {
		t.Fatalf("topk: %d %v", rec.Code, body)
	}
	if len(body["results"].([]any)) != 2 {
		t.Errorf("topk results: %v", body)
	}
}

func TestBadRequests(t *testing.T) {
	s := testServer(t)
	cases := []string{
		"/singlesource",          // missing u
		"/singlesource?u=99",     // out of range
		"/singlesource?u=x",      // not a number
		"/singlesource?u=0&k=-1", // bad k
		"/pair?u=0",              // missing v
		"/topk?u=-1",             // negative
	}
	for _, path := range cases {
		rec, body := get(t, s, path)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400 (%v)", path, rec.Code, body)
		}
		if body["error"] == "" {
			t.Errorf("%s: missing error message", path)
		}
	}
}

func TestKCapping(t *testing.T) {
	s, err := New(Config{
		Graph:  graph.PaperExample(),
		Params: core.Params{Iterations: 50, Seed: 1},
		MaxK:   2,
		// DefaultK left 0 -> defaults to 10 > MaxK -> must error.
	})
	if err == nil {
		_ = s
		t.Fatal("DefaultK above MaxK accepted")
	}
	s, err = New(Config{
		Graph:    graph.PaperExample(),
		Params:   core.Params{Iterations: 50, Seed: 1},
		DefaultK: 2,
		MaxK:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, body := get(t, s, "/singlesource?u=0&k=100")
	if got := len(body["results"].([]any)); got != 2 {
		t.Errorf("k not capped: %d results", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(Config{Graph: graph.PaperExample(), Params: core.Params{C: 9}}); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := New(Config{Graph: graph.PaperExample(), Algo: "nope"}); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestAllBackends serves every registered engine backend through the
// same handler and checks the three query endpoints answer.
func TestAllBackends(t *testing.T) {
	for _, algo := range []string{"crashsim", "probesim", "sling", "reads", "exact"} {
		s, err := New(Config{
			Graph:  graph.PaperExample(),
			Algo:   algo,
			Params: core.Params{Iterations: 100, Seed: 1},
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if s.Algo() != algo {
			t.Errorf("Algo() = %q, want %q", s.Algo(), algo)
		}
		rec, body := get(t, s, "/health")
		if rec.Code != http.StatusOK || body["algo"] != algo {
			t.Errorf("%s: health %d %v", algo, rec.Code, body)
		}
		for _, path := range []string{"/singlesource?u=0&k=3", "/pair?u=0&v=3", "/topk?u=0&k=2"} {
			rec, body := get(t, s, path)
			if rec.Code != http.StatusOK {
				t.Errorf("%s %s: %d %v", algo, path, rec.Code, body)
			}
		}
	}
}

// TestCanceledRequest: a client disconnect (canceled request context)
// aborts the estimate and returns 503.
func TestCanceledRequest(t *testing.T) {
	s := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/singlesource?u=0", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("canceled request: code %d, want 503 (%s)", rec.Code, rec.Body.String())
	}
}

// TestRequestTimeout: a server-side deadline shorter than the query
// aborts it and returns 503.
func TestRequestTimeout(t *testing.T) {
	s, err := New(Config{
		Graph:   graph.PaperExample(),
		Params:  core.Params{Iterations: 50_000_000, Seed: 1},
		Timeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, body := get(t, s, "/singlesource?u=0")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("timed-out request: code %d, want 503 (%v)", rec.Code, body)
	}
}
