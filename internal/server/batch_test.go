package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"crashsim/internal/core"
	"crashsim/internal/engine"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
)

func post(t *testing.T, s *Server, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s: bad JSON %q: %v", path, rec.Body.String(), err)
	}
	return rec, out
}

// TestBatchSingleSource: the batch endpoint returns per-item ranked
// results in request order, duplicates included, matching the scalar
// /singlesource endpoint, and an out-of-range source fails alone with
// its own error entry.
func TestBatchSingleSource(t *testing.T) {
	s := testServer(t)
	rec, body := post(t, s, "/batch/singlesource", `{"sources":[0,3,0,99],"k":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %v", rec.Code, body)
	}
	if body["k"].(float64) != 3 {
		t.Errorf("k = %v, want 3", body["k"])
	}
	items := body["items"].([]any)
	if len(items) != 4 {
		t.Fatalf("batch returned %d items, want 4", len(items))
	}
	bad := items[3].(map[string]any)
	if bad["source"].(float64) != 99 || bad["error"] == nil || bad["results"] != nil {
		t.Errorf("out-of-range item = %v, want a bare error entry for source 99", bad)
	}
	// Batched results must match the scalar endpoint (same estimator,
	// deterministic seed), and the duplicate source must match itself.
	_, scalar := get(t, s, "/singlesource?u=0&k=3")
	first := items[0].(map[string]any)
	dup := items[2].(map[string]any)
	want := scalar["results"].([]any)
	for name, got := range map[string][]any{"first": first["results"].([]any), "dup": dup["results"].([]any)} {
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
		}
		for i := range want {
			w, g := want[i].(map[string]any), got[i].(map[string]any)
			if w["node"] != g["node"] || w["score"] != g["score"] {
				t.Errorf("%s result %d: %v != scalar %v", name, i, g, w)
			}
		}
	}
}

func TestBatchValidation(t *testing.T) {
	s, err := New(Config{
		Graph:    graph.PaperExample(),
		Params:   core.Params{Iterations: 50, Seed: 1},
		MaxBatch: 2,
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, body := range map[string]string{
		"malformed": `{"sources":`,
		"empty":     `{"sources":[]}`,
		"oversized": `{"sources":[0,1,2]}`,
		"bad k":     `{"sources":[0],"k":-1}`,
	} {
		if rec, resp := post(t, s, "/batch/singlesource", body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: %d %v, want 400", name, rec.Code, resp)
		}
	}
}

// batchBlockingEstimator parks every query until release closes, with
// enough started-signal buffer for a whole batch's sequential fallback.
type batchBlockingEstimator struct {
	started chan struct{}
	release chan struct{}
}

func (b batchBlockingEstimator) Name() string { return "batchblock" }

func (b batchBlockingEstimator) SingleSource(ctx context.Context, u graph.NodeID, _ []graph.NodeID) (core.Scores, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
		return core.Scores{u: 1}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestBatchAdmissionWeighted: with the weighted in-flight budget held
// by a parked scalar query, a batch must be rejected with 429 +
// Retry-After (its weight cannot fit), while /health and /metrics
// bypass admission control entirely. Once the budget frees, the same
// batch is admitted — even though its weight exceeds the whole budget,
// an idle server runs it alone rather than never.
func TestBatchAdmissionWeighted(t *testing.T) {
	est := batchBlockingEstimator{started: make(chan struct{}, 8), release: make(chan struct{})}
	engine.Register("batchblock", func(context.Context, *graph.Graph, engine.Config) (engine.Estimator, error) {
		return est, nil
	})
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph:       graph.PaperExample(),
		Algo:        "batchblock",
		MaxInFlight: 1,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodGet, "/singlesource?u=0", nil)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-est.started // the whole weighted budget is now held

	rec, body := post(t, s, "/batch/singlesource", `{"sources":[0,1]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered batch with %d (%v), want 429", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if got := reg.Counter("server.rejected").Load(); got != 2 {
		t.Errorf("server.rejected = %d, want 2 (the rejected batch's weight)", got)
	}
	// Health and metrics stay outside the gate.
	if rec, _ := get(t, s, "/health"); rec.Code != http.StatusOK {
		t.Errorf("health behind admission gate: %d", rec.Code)
	}
	if rec, _ := get(t, s, "/metrics"); rec.Code != http.StatusOK {
		t.Errorf("metrics behind admission gate: %d", rec.Code)
	}

	close(est.release)
	wg.Wait()
	rec, body = post(t, s, "/batch/singlesource", `{"sources":[0,1]}`)
	if rec.Code != http.StatusOK {
		t.Errorf("freed server answered batch with %d (%v), want 200", rec.Code, body)
	}
	if got := reg.Gauge("server.inflight").Load(); got != 0 {
		t.Errorf("weighted inflight gauge = %d after drain, want 0", got)
	}
}

// TestBatchMetrics: server.queries accounts by admission weight — a
// 3-source batch counts 3, the same units the gate charges — and the
// engine ticks its per-source and per-batch counters.
func TestBatchMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph:   graph.PaperExample(),
		Params:  core.Params{Iterations: 50, Seed: 1},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec, body := post(t, s, "/batch/singlesource", `{"sources":[0,3,5]}`); rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %v", rec.Code, body)
	}
	if got := reg.Counter("server.queries").Load(); got != 3 {
		t.Errorf("server.queries = %d, want 3 (batch weight, matching admission)", got)
	}
	if got := reg.Counter("engine.crashsim.queries").Load(); got != 3 {
		t.Errorf("engine.crashsim.queries = %d, want 3 (one per batched source)", got)
	}
	if got := reg.Counter("engine.crashsim.queries.multisource").Load(); got != 1 {
		t.Errorf("engine.crashsim.queries.multisource = %d, want 1", got)
	}
}
