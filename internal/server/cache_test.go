package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
)

func cachedServer(t *testing.T) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph:      graph.PaperExample(),
		Params:     core.Params{Iterations: 300, Seed: 1},
		CacheBytes: 1 << 20,
		CacheTTL:   time.Minute,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

// TestCachedQueriesServedFromCache: the second identical query must be
// a cache hit and return byte-identical JSON.
func TestCachedQueriesServedFromCache(t *testing.T) {
	s, reg := cachedServer(t)
	paths := []string{"/singlesource?u=0&k=3", "/topk?u=1&k=2", "/pair?u=0&v=1"}
	for _, path := range paths {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec1 := httptest.NewRecorder()
		s.ServeHTTP(rec1, req)
		rec2 := httptest.NewRecorder()
		s.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, path, nil))
		if rec1.Code != http.StatusOK || rec2.Code != http.StatusOK {
			t.Fatalf("%s: %d / %d", path, rec1.Code, rec2.Code)
		}
		if rec1.Body.String() != rec2.Body.String() {
			t.Errorf("%s: repeated query diverged:\n%s\nvs\n%s", path, rec1.Body, rec2.Body)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["cache.hits"] < uint64(len(paths)) {
		t.Errorf("cache.hits = %d after %d repeated queries", snap.Counters["cache.hits"], len(paths))
	}
	if snap.Counters["cache.misses"] < uint64(len(paths)) {
		t.Errorf("cache.misses = %d, want >= %d cold queries", snap.Counters["cache.misses"], len(paths))
	}
}

// TestCachedMatchesUncached: a cached server must return exactly what
// an uncached server returns for the same configuration.
func TestCachedMatchesUncached(t *testing.T) {
	cached, _ := cachedServer(t)
	plain, err := New(Config{
		Graph:   graph.PaperExample(),
		Params:  core.Params{Iterations: 300, Seed: 1},
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/singlesource?u=2&k=5", "/topk?u=3&k=4", "/pair?u=1&v=4"} {
		recC := httptest.NewRecorder()
		cached.ServeHTTP(recC, httptest.NewRequest(http.MethodGet, path, nil))
		recP := httptest.NewRecorder()
		plain.ServeHTTP(recP, httptest.NewRequest(http.MethodGet, path, nil))
		if recC.Body.String() != recP.Body.String() {
			t.Errorf("%s: cached server diverges from uncached:\n%s\nvs\n%s", path, recC.Body, recP.Body)
		}
	}
}

func TestHealthReportsHitRatio(t *testing.T) {
	s, _ := cachedServer(t)
	// Generate one miss and one hit so the ratio is 0.5.
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/singlesource?u=0&k=3", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("query %d: %d", i, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("health: %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("health body %q: %v", rec.Body.String(), err)
	}
	if body["status"] != "ok" {
		t.Errorf("health status = %v", body["status"])
	}
	ratio, ok := body["cache_hit_ratio"].(float64)
	if !ok {
		t.Fatalf("cache_hit_ratio missing from %v", body)
	}
	if ratio != 0.5 {
		t.Errorf("cache_hit_ratio = %v, want 0.5", ratio)
	}
}

func TestHealthWithoutCacheOmitsRatio(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/health", nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("health body %q: %v", rec.Body.String(), err)
	}
	if _, present := body["cache_hit_ratio"]; present {
		t.Errorf("cache_hit_ratio present without a cache: %v", body)
	}
}

// TestHealthBodyAllocationFree enforces the condition for reporting
// the hit ratio on the health fast path at all: building the payload
// into a pre-sized buffer must not allocate.
func TestHealthBodyAllocationFree(t *testing.T) {
	s, _ := cachedServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/singlesource?u=0&k=3", nil))
	buf := make([]byte, 0, 128)
	allocs := testing.AllocsPerRun(200, func() {
		buf = s.healthBody(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("healthBody allocates %v times per call, want 0", allocs)
	}
}

func TestStatsIncludesCache(t *testing.T) {
	s, _ := cachedServer(t)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	cs, ok := body["cache"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing cache section: %v", body)
	}
	if cs["max_bytes"].(float64) != 1<<20 {
		t.Errorf("cache max_bytes = %v", cs["max_bytes"])
	}
	if _, ok := body["graphVersion"]; !ok {
		t.Errorf("stats missing graphVersion: %v", body)
	}
}

func TestMetricsIncludesCache(t *testing.T) {
	s, _ := cachedServer(t)
	// One miss + one hit so the counters are non-trivial.
	for i := 0; i < 2; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/pair?u=0&v=1", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("query: %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var body struct {
		Cache    *map[string]any   `json:"cache"`
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Cache == nil {
		t.Fatal("metrics missing cache object")
	}
	if body.Counters["cache.hits"] < 1 {
		t.Errorf("cache.hits = %d, want >= 1", body.Counters["cache.hits"])
	}
	if body.Counters["cache.misses"] < 1 {
		t.Errorf("cache.misses = %d, want >= 1", body.Counters["cache.misses"])
	}
}

func BenchmarkHealthBody(b *testing.B) {
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph:      graph.PaperExample(),
		Params:     core.Params{Iterations: 100, Seed: 1},
		CacheBytes: 1 << 20,
		Metrics:    reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.healthBody(buf[:0])
	}
}

func BenchmarkHealthHandler(b *testing.B) {
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph:      graph.PaperExample(),
		Params:     core.Params{Iterations: 100, Seed: 1},
		CacheBytes: 1 << 20,
		Metrics:    reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/health", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
	}
}
