package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"crashsim/internal/core"
	"crashsim/internal/engine"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
)

// TestMetricsEndpoint drives traffic through every query endpoint and
// checks /metrics reports per-backend query counts, the admission
// counters and latency histogram buckets.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph:   graph.PaperExample(),
		Params:  core.Params{Iterations: 100, Seed: 1},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		"/singlesource?u=0&k=3", "/singlesource?u=1", "/pair?u=0&v=3", "/topk?u=0&k=2",
	} {
		if rec, body := get(t, s, path); rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %v", path, rec.Code, body)
		}
	}

	rec, body := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if body["algo"] != "crashsim" {
		t.Errorf("algo = %v", body["algo"])
	}
	if body["uptime_seconds"].(float64) < 0 {
		t.Error("negative uptime")
	}
	counters := body["counters"].(map[string]any)
	if got := counters["engine.crashsim.queries"].(float64); got != 4 {
		t.Errorf("engine.crashsim.queries = %v, want 4", got)
	}
	if got := counters["engine.crashsim.queries.pair"].(float64); got != 1 {
		t.Errorf("pair count = %v, want 1", got)
	}
	if got := counters["server.queries"].(float64); got != 4 {
		t.Errorf("server.queries = %v, want 4", got)
	}
	hist := body["histograms"].(map[string]any)["engine.crashsim.latency"].(map[string]any)
	if hist["count"].(float64) != 4 {
		t.Errorf("latency histogram count = %v, want 4", hist["count"])
	}
	buckets := hist["buckets"].([]any)
	if len(buckets) == 0 {
		t.Fatal("latency histogram has no buckets")
	}
	var inBuckets float64
	for _, b := range buckets {
		inBuckets += b.(map[string]any)["count"].(float64)
	}
	if overflow, _ := hist["overflow"].(float64); inBuckets+overflow != 4 {
		t.Errorf("bucket counts sum to %v (+%v overflow), want 4", inBuckets, overflow)
	}
	if gauges := body["gauges"].(map[string]any); gauges["server.inflight"].(float64) != 0 {
		t.Errorf("inflight gauge = %v after traffic drained", gauges["server.inflight"])
	}
}

// TestMetricsExposesTemporalCounters checks that a server on the
// default registry surfaces internal/core's incremental temporal
// pipeline counters through /metrics — the names the doc comment on
// handleMetrics promises. Values are not asserted (other tests sharing
// obs.Default may tick them); presence is the contract.
func TestMetricsExposesTemporalCounters(t *testing.T) {
	s, err := New(Config{
		Graph:  graph.PaperExample(),
		Params: core.Params{Iterations: 50, Seed: 1},
		// Metrics nil → obs.Default, where core registers its counters.
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, body := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	counters := body["counters"].(map[string]any)
	for _, name := range []string{
		"core.temporal.tree_patched",
		"core.temporal.tree_rebuilt",
		"core.temporal.frozen_reused",
		"core.temporal.candtree_hits",
		"core.temporal.candtree_misses",
		"core.pool.patch_hits",
		"core.pool.patch_misses",
		"core.pool.temporal_hits",
		"core.pool.temporal_misses",
		"core.batch.batches",
		"core.batch.sources",
		"core.batch.dedup_hits",
		"core.batch.items",
		"core.pool.batch_hits",
		"core.pool.batch_misses",
	} {
		if _, ok := counters[name]; !ok {
			t.Errorf("counter %q missing from /metrics snapshot", name)
		}
	}
}

// blockingEstimator parks every query until release closes, so tests
// can hold a slot in the admission gate deterministically.
type blockingEstimator struct {
	started chan struct{}
	release chan struct{}
}

func (b blockingEstimator) Name() string { return "blocktest" }

func (b blockingEstimator) SingleSource(ctx context.Context, u graph.NodeID, _ []graph.NodeID) (core.Scores, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
		return core.Scores{u: 1}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestAdmissionControl saturates a MaxInFlight=1 server with a parked
// query and checks the next query is rejected with 429 + Retry-After,
// then that capacity returns once the slot frees.
func TestAdmissionControl(t *testing.T) {
	est := blockingEstimator{started: make(chan struct{}, 1), release: make(chan struct{})}
	engine.Register("blocktest", func(context.Context, *graph.Graph, engine.Config) (engine.Estimator, error) {
		return est, nil
	})
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph:       graph.PaperExample(),
		Algo:        "blocktest",
		MaxInFlight: 1,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodGet, "/singlesource?u=0", nil)
		s.ServeHTTP(httptest.NewRecorder(), req)
	}()
	<-est.started // the slot is now held

	rec, body := get(t, s, "/singlesource?u=0")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d (%v), want 429", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if body["error"] == "" {
		t.Error("429 without error body")
	}
	// Health stays outside the gate: a saturated server still reports.
	if rec, _ := get(t, s, "/health"); rec.Code != http.StatusOK {
		t.Errorf("health behind admission gate: %d", rec.Code)
	}

	close(est.release)
	wg.Wait()
	if rec, body := get(t, s, "/singlesource?u=0"); rec.Code != http.StatusOK {
		t.Errorf("freed server answered %d (%v), want 200", rec.Code, body)
	}
	if got := reg.Counter("server.rejected").Load(); got != 1 {
		t.Errorf("server.rejected = %d, want 1", got)
	}
}

// TestEffectiveKReported: a clamped k must be visible in the response,
// not silently applied.
func TestEffectiveKReported(t *testing.T) {
	s, err := New(Config{
		Graph:    graph.PaperExample(),
		Params:   core.Params{Iterations: 50, Seed: 1},
		DefaultK: 2,
		MaxK:     3,
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	_, body := get(t, s, "/singlesource?u=0&k=100")
	if got := body["k"].(float64); got != 3 {
		t.Errorf("clamped k reported as %v, want 3", got)
	}
	_, body = get(t, s, "/topk?u=0")
	if got := body["k"].(float64); got != 2 {
		t.Errorf("default k reported as %v, want 2", got)
	}
}

func TestPprofRegistration(t *testing.T) {
	withP, err := New(Config{
		Graph:       graph.PaperExample(),
		Params:      core.Params{Iterations: 50, Seed: 1},
		EnablePprof: true,
		Metrics:     obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	withP.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("pprof index: %d, want 200", rec.Code)
	}

	without := testServer(t)
	rec = httptest.NewRecorder()
	without.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof mounted without EnablePprof: %d", rec.Code)
	}
}
