// Package server exposes SimRank queries over HTTP with a small JSON
// API, turning the library into a queryable service:
//
//	GET  /health              -> {"status":"ok","algo":"crashsim","cache_hit_ratio":0.97}
//	GET  /stats               -> graph statistics
//	GET  /metrics             -> serving metrics (see handleMetrics)
//	GET  /singlesource?u=3&k=10
//	GET  /pair?u=3&v=17
//	GET  /topk?u=3&k=10
//	POST /batch/singlesource  {"sources":[3,17,3],"k":10}
//
// The server owns one immutable graph and one engine.Estimator built at
// construction (index-based backends pay their build exactly once);
// queries are read-only and safe to serve concurrently. All estimator
// parameters are fixed at construction so results are reproducible
// across requests. Every query runs under the request context plus a
// configurable per-request timeout; an aborted estimate returns 503.
//
// The batch endpoint answers many single-source queries in one request
// through engine.MultiSource, which on the crashsim backend runs the
// whole batch through one compile-once, fan-out-once pipeline.
// Responses carry per-item results and per-item errors: an out-of-range
// source fails alone without failing its batch-mates.
//
// Overload protection: the query endpoints run behind a weighted
// admission gate bounding concurrent in-flight work
// (Config.MaxInFlight): a scalar query holds one unit, a batch holds
// one unit per source — admitting a 64-source batch as if it were one
// query would let a single request oversubscribe the whole budget.
// When the budget is exhausted, further queries are rejected
// immediately with 429 and a Retry-After header rather than queued —
// Monte-Carlo estimates are CPU-bound, so queuing past the core count
// only grows latency for everyone. /health, /stats and /metrics stay
// outside the gate so load balancers and dashboards see a saturated
// server, not a dead one.
//
// Result caching: with Config.CacheBytes set, query results are served
// from a sharded LRU (internal/cache) keyed on backend, effective
// parameters and graph version, with singleflight coalescing so a
// thundering herd on one hot node costs a single backend computation.
// Estimates are deterministic for a fixed seed, so a cached result is
// exactly what recomputing would return. Cache occupancy and hit/miss/
// coalesced counters appear on /stats and /metrics, and /health gains
// an allocation-free cache_hit_ratio field.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"

	"crashsim/internal/cache"
	"crashsim/internal/core"
	"crashsim/internal/engine"
	"crashsim/internal/graph"
	"crashsim/internal/metrics"
	"crashsim/internal/obs"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

// DefaultTimeout is the per-request estimation budget when
// Config.Timeout is zero.
const DefaultTimeout = 30 * time.Second

// DefaultMaxInFlight bounds concurrent query estimates when
// Config.MaxInFlight is zero: twice the core count, enough to keep
// every core busy while one batch finishes encoding.
func DefaultMaxInFlight() int { return 2 * runtime.GOMAXPROCS(0) }

// Config fixes the served graph and estimator parameters.
type Config struct {
	Graph *graph.Graph
	// Algo selects the engine backend by name (see engine.Names).
	// Default "crashsim". Index-based backends build their index inside
	// New.
	Algo string
	// Params carries the estimator parameters shared by every backend
	// (c, ε, δ, iterations, workers, seed).
	Params core.Params
	// DefaultK bounds result lists when the request omits k. Default 10.
	DefaultK int
	// MaxK caps requested result lengths. Default 1000.
	MaxK int
	// Timeout bounds each query's estimation time. Zero means
	// DefaultTimeout; negative disables the per-request deadline (the
	// request context still cancels on client disconnect).
	Timeout time.Duration
	// MaxInFlight bounds concurrent in-flight query weight: a scalar
	// query weighs 1, a batch weighs its source count. Excess requests
	// get 429 with a Retry-After header. Zero means DefaultMaxInFlight;
	// negative disables admission control.
	MaxInFlight int
	// MaxBatch caps the source count of one POST /batch/singlesource
	// request; larger batches get 400. Default 128.
	MaxBatch int
	// CacheBytes bounds the query-result cache's accounted size; zero
	// or negative disables caching. Sizing guidance: a single-source
	// result costs ~48 bytes per non-zero-score node, so 64 MiB holds
	// full results for roughly 1400 hub sources on a 10^6-node graph —
	// usually far more than the hot query set.
	CacheBytes int64
	// CacheTTL bounds every cache entry's age; zero means entries live
	// until evicted or their graph version is superseded. Version-keyed
	// invalidation already prevents stale-graph results, so a TTL is
	// only needed when operators want a hard recency bound as well.
	CacheTTL time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ for live
	// CPU/heap/goroutine profiling. Off by default: profiles reveal
	// internals, so only enable on trusted ports.
	EnablePprof bool
	// Metrics receives the server's and its estimator's metrics. Nil
	// means obs.Default, which also carries internal/core's work
	// counters (walks, pool traffic, prune rates) so /metrics shows
	// the whole serving stack in one snapshot.
	Metrics *obs.Registry
	// SlingIndex / ReadsIndex / PRSimIndex optionally hand the matching
	// index-based backend a preloaded index (from an internal/store
	// snapshot) instead of paying the build in New; see engine.Config.
	// Ignored by other backends.
	SlingIndex *sling.Index
	ReadsIndex *reads.Index
	PRSimIndex *prsim.Index
	// HubFraction is the prsim backend's eagerly indexed node fraction
	// (0 = the backend default).
	HubFraction float64
}

// Server is an http.Handler answering SimRank queries.
type Server struct {
	cfg   Config
	est   engine.Estimator
	mux   *http.ServeMux
	start time.Time

	// Result cache (nil when disabled) and the preformatted static
	// part of the /health payload, so the health fast path is a few
	// appends into a pooled buffer rather than a JSON encode.
	qcache       *cache.Cache
	healthPrefix string

	// stats is the graph's statistics, computed exactly once in New —
	// the graph is immutable, so recomputing the O(n+m) sweep per
	// /stats request (as this handler once did) bought nothing and let
	// an un-gated endpoint burn CPU. statsComputed counts the sweeps
	// (it must read 1 forever; a regression test pins it).
	stats         graph.Stats
	statsComputed *obs.Counter

	// Admission gate (nil when disabled) plus its observability.
	gate     *gate
	reg      *obs.Registry
	inflight *obs.Gauge
	served   *obs.Counter
	rejected *obs.Counter
	latency  *obs.Histogram
	// qlatency is the log-bucketed percentile view of the same
	// end-to-end request latency that the fixed-bucket latency
	// histogram records: p50/p90/p99/p999 + exact max with ~3% relative
	// error, served live on /stats and /metrics.
	qlatency *obs.QuantileHistogram
	// now is the clock behind latency accounting; tests substitute a
	// fake to drive known durations through the histograms.
	now func() time.Time
}

// New validates the configuration, builds the selected estimator
// (paying any index construction up front) and returns the handler.
func New(cfg Config) (*Server, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("server: graph must not be nil")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Algo == "" {
		cfg.Algo = "crashsim"
	}
	if cfg.DefaultK == 0 {
		cfg.DefaultK = 10
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = 1000
	}
	if cfg.DefaultK < 1 || cfg.MaxK < cfg.DefaultK {
		return nil, fmt.Errorf("server: bad k bounds (default %d, max %d)", cfg.DefaultK, cfg.MaxK)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = DefaultMaxInFlight()
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 128
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("server: bad MaxBatch %d", cfg.MaxBatch)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default
	}
	ecfg := engine.Config{
		C: cfg.Params.C, Eps: cfg.Params.Eps, Delta: cfg.Params.Delta,
		Iterations: cfg.Params.Iterations, Workers: cfg.Params.Workers,
		Seed: cfg.Params.Seed, Metrics: cfg.Metrics,
		SlingIndex: cfg.SlingIndex, ReadsIndex: cfg.ReadsIndex,
		PRSimIndex: cfg.PRSimIndex, HubFraction: cfg.HubFraction,
	}
	est, err := engine.New(context.Background(), cfg.Algo, cfg.Graph, ecfg)
	if err != nil {
		return nil, err
	}
	var qc *cache.Cache
	if cfg.CacheBytes > 0 {
		qc, err = cache.New(cache.Config{
			MaxBytes: cfg.CacheBytes,
			TTL:      cfg.CacheTTL,
			Metrics:  cfg.Metrics,
		})
		if err != nil {
			return nil, err
		}
		est, err = engine.Cached(est, engine.CacheConfig{
			Cache:   qc,
			Version: cfg.Graph.Version,
			Scope:   ecfg.Fingerprint(),
		})
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg: cfg, est: est, mux: http.NewServeMux(), start: time.Now(),
		qcache:        qc,
		reg:           cfg.Metrics,
		inflight:      cfg.Metrics.Gauge("server.inflight"),
		served:        cfg.Metrics.Counter("server.queries"),
		rejected:      cfg.Metrics.Counter("server.rejected"),
		latency:       cfg.Metrics.Histogram("server.latency"),
		qlatency:      cfg.Metrics.Quantile("server.latency"),
		statsComputed: cfg.Metrics.Counter("server.stats_computed"),
		now:           time.Now,
	}
	s.stats = graph.ComputeStats(cfg.Graph)
	s.statsComputed.Inc()
	s.healthPrefix = `{"status":"ok","algo":"` + est.Name() + `"`
	if cfg.MaxInFlight > 0 {
		s.gate = &gate{max: cfg.MaxInFlight}
	}
	s.mux.HandleFunc("GET /health", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /singlesource", s.admit(s.handleSingleSource))
	s.mux.HandleFunc("GET /pair", s.admit(s.handlePair))
	s.mux.HandleFunc("GET /topk", s.admit(s.handleTopK))
	s.mux.HandleFunc("POST /batch/singlesource", s.handleBatch)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// gate is the weighted admission gate: every in-flight request holds
// weight units of the MaxInFlight budget (1 for the scalar query
// endpoints, the source count for a batch). A request is admitted when
// it fits the remaining budget — or when the server is idle, so one
// batch heavier than the entire budget still runs (alone) instead of
// being permanently unservable.
type gate struct {
	mu  sync.Mutex
	max int
	cur int
}

func (g *gate) tryAcquire(w int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cur > 0 && g.cur+w > g.max {
		return false
	}
	g.cur += w
	return true
}

func (g *gate) release(w int) {
	g.mu.Lock()
	g.cur -= w
	g.mu.Unlock()
}

// acquire reserves weight units of the admission budget, answering 429
// with a Retry-After header when the server is saturated. Served and
// rejected counters account by weight, matching what admission charges:
// a weight-N batch moves both the budget and the counters by N, so
// served + rejected is the total query volume whether clients batch or
// not (a weight-1-per-batch accounting would make the counters
// unreconcilable with the inflight gauge and undercount batched load).
// On success it also moves the weighted inflight gauge; callers must
// pair it with release.
func (s *Server) acquire(w http.ResponseWriter, weight int) bool {
	if s.gate != nil && !s.gate.tryAcquire(weight) {
		s.rejected.Add(uint64(weight))
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests,
			"server saturated: weighted in-flight budget %d exhausted; retry shortly", s.gate.max)
		return false
	}
	s.served.Add(uint64(weight))
	s.inflight.Add(int64(weight))
	return true
}

func (s *Server) release(weight int) {
	s.inflight.Add(-int64(weight))
	if s.gate != nil {
		s.gate.release(weight)
	}
}

// admit is the admission-control middleware around the scalar query
// endpoints: it reserves one in-flight unit (or rejects with 429 when
// the server is saturated) and records the end-to-end request latency
// — parsing, estimation and JSON encoding — in server.latency, the
// client's-eye complement of the engine's estimation-only histograms.
// The batch endpoint runs the same machinery with its own weight (see
// handleBatch).
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.acquire(w, 1) {
			return
		}
		defer s.release(1)
		start := s.now()
		h(w, r)
		s.observeLatency(s.now().Sub(start))
	}
}

// observeLatency records one end-to-end request latency into both
// views: the fixed-bucket histogram (bucket counts on /metrics) and
// the quantile histogram (live percentiles on /stats and /metrics).
func (s *Server) observeLatency(d time.Duration) {
	s.latency.Observe(d)
	s.qlatency.Observe(d)
}

// Algo returns the name of the backend serving queries.
func (s *Server) Algo() string { return s.est.Name() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// queryCtx derives the estimation context for one request: the request
// context (canceled on client disconnect) plus the configured deadline.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.Timeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.Timeout)
	}
	return r.Context(), func() {}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeQueryErr maps an estimation failure to a status: deadline or
// client cancellation is 503 (the query was aborted, not invalid),
// anything else is 500.
func writeQueryErr(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeErr(w, http.StatusServiceUnavailable, "query aborted: %v", err)
		return
	}
	writeErr(w, http.StatusInternalServerError, "%v", err)
}

// healthBufPool recycles /health payload buffers. Pointer-to-slice so
// Put does not allocate a new interface box per request.
var healthBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 128)
	return &b
}}

// healthBody appends the /health payload to buf: the preformatted
// status/algo prefix plus, when caching is enabled, the live cache hit
// ratio. The ratio is two atomic loads and the append path never grows
// a pooled buffer past its initial capacity, so this function is
// allocation-free — TestHealthBodyAllocationFree and
// BenchmarkHealthBody in this package enforce it, which is the
// condition for keeping the ratio on the health fast path at all.
func (s *Server) healthBody(buf []byte) []byte {
	buf = append(buf, s.healthPrefix...)
	if s.qcache != nil {
		buf = append(buf, `,"cache_hit_ratio":`...)
		buf = strconv.AppendFloat(buf, s.qcache.HitRatio(), 'f', 4, 64)
	}
	return append(buf, '}', '\n')
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	bp := healthBufPool.Get().(*[]byte)
	buf := s.healthBody((*bp)[:0])
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
	*bp = buf
	healthBufPool.Put(bp)
}

// handleStats serves the statistics computed once in New — the graph
// is immutable, so no request ever re-walks it. The cache and latency
// blocks are live: "latency" carries the log-bucketed percentile view
// of end-to-end request latency (count, mean, p50/p90/p99/p999 in
// seconds, exact max) accumulated since startup.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.stats
	lat := s.qlatency.Snapshot()
	body := map[string]any{
		"latency": map[string]any{
			"count":        lat.Count,
			"mean_seconds": lat.Mean(),
			"p50":          lat.P50,
			"p90":          lat.P90,
			"p99":          lat.P99,
			"p999":         lat.P999,
			"max":          lat.Max,
		},
		"nodes":        st.Nodes,
		"edges":        st.Edges,
		"directed":     st.Directed,
		"meanInDeg":    st.MeanInDeg,
		"maxInDeg":     st.MaxInDeg,
		"danglingIn":   st.DanglingIn,
		"danglingOut":  st.DanglingOut,
		"medianInDeg":  st.MedianInDeg,
		"algo":         s.est.Name(),
		"graphVersion": s.cfg.Graph.Version(),
	}
	if s.qcache != nil {
		body["cache"] = s.qcache.Stats()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics serves a JSON snapshot of the serving metrics:
//
//	{
//	  "algo": "crashsim",
//	  "uptime_seconds": 12.3,
//	  "max_inflight": 16,
//	  "counters":   {"server.queries": 42, "engine.crashsim.queries": 42, "core.walks": 1234567, ...},
//
// server.queries and server.rejected count admitted (resp. rejected)
// query weight, not HTTP requests: a scalar query adds 1, an N-source
// batch adds N — the same units the admission gate charges, so
// served + rejected reconciles with total query volume regardless of
// batching. server.stats_computed counts graph-statistics sweeps and
// stays at 1 for the server's lifetime (/stats serves a cached
// struct). An example continued:
//
//	  "gauges":     {"server.inflight": 1, ...},
//	  "histograms": {"engine.crashsim.latency": {"count": 42, "sum_seconds": 1.9,
//	                  "buckets": [{"le": 0.0001, "count": 0}, ...], "overflow": 0}, ...},
//	  "quantiles":  {"server.latency": {"count": 42, "sum_seconds": 1.9,
//	                  "p50": 0.012, "p90": 0.031, "p99": 0.084, "p999": 0.21, "max": 0.4}}
//	}
//
// "quantiles" is the log-bucketed percentile view of end-to-end
// request latency (seconds, ~3% relative error, exact max) — the same
// observations as the fixed-bucket server.latency histogram, shaped
// for SLO dashboards instead of bucket math. /stats carries the same
// summary under "latency".
//
// Bucket counts are per-bucket (not cumulative); "overflow" counts
// observations above the last bound. With the default registry the
// snapshot includes internal/core's process-wide work counters
// (core.walks, core.pool.* — including the frozen-tree and revReach
// accumulator pools, core.pool.frozen_* and core.pool.revacc_*, plus
// the incremental-pipeline scratch pools core.pool.patch_* and
// core.pool.temporal_* — core.frozen.compiled, core.prefilter_pruned,
// and the core.temporal.* family, which now covers the incremental
// temporal pipeline: core.temporal.tree_patched / tree_rebuilt track
// the source-tree patch-vs-rebuild decision, core.temporal.frozen_reused
// counts frozen-form carries across stable snapshots, and
// core.temporal.candtree_hits / candtree_misses account the
// candidate-tree cache). The batched multi-source pipeline reports as
// core.batch.batches / sources / dedup_hits / items plus its arena
// pool pair core.pool.batch_hits / batch_misses, and the engine layer
// adds engine.<backend>.queries.multisource per batch.
// With caching enabled the counters include cache.hits, cache.misses,
// cache.coalesced, cache.evictions and cache.expired, the gauges
// cache.bytes and cache.entries, and the top level carries a "cache"
// object with the same occupancy plus configuration.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.reg.Snapshot()
	var cs *cache.Stats
	if s.qcache != nil {
		st := s.qcache.Stats()
		cs = &st
	}
	writeJSON(w, http.StatusOK, struct {
		Algo          string       `json:"algo"`
		UptimeSeconds float64      `json:"uptime_seconds"`
		MaxInFlight   int          `json:"max_inflight"`
		Cache         *cache.Stats `json:"cache,omitempty"`
		obs.Snapshot
	}{
		Algo:          s.est.Name(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		MaxInFlight:   s.cfg.MaxInFlight,
		Cache:         cs,
		Snapshot:      snap,
	})
}

// nodeParam parses a node id query parameter and range-checks it.
func (s *Server) nodeParam(r *http.Request, name string) (graph.NodeID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad node id %q", raw)
	}
	if v < 0 || int(v) >= s.cfg.Graph.NumNodes() {
		return 0, fmt.Errorf("node %d out of range [0,%d)", v, s.cfg.Graph.NumNodes())
	}
	return graph.NodeID(v), nil
}

// kParam parses the optional k parameter with defaults and caps.
// Requests above MaxK are clamped rather than rejected — partial
// results beat a 400 for a pagination-style client — but never
// silently: list responses carry the effective "k" field, so a client
// asking for k=5000 and receiving k=1000 can tell the cap from a
// sparse graph.
func (s *Server) kParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("k")
	if raw == "" {
		return s.cfg.DefaultK, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k < 1 {
		return 0, fmt.Errorf("bad k %q", raw)
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	return k, nil
}

// scoredNode is one JSON result entry.
type scoredNode struct {
	Node  graph.NodeID `json:"node"`
	Score float64      `json:"score"`
}

func (s *Server) handleSingleSource(w http.ResponseWriter, r *http.Request) {
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := s.kParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	scores, err := s.est.SingleSource(ctx, u, nil)
	if err != nil {
		writeQueryErr(w, err)
		return
	}
	top := metrics.TopK(scores, u, k)
	out := make([]scoredNode, len(top))
	for i, v := range top {
		out[i] = scoredNode{Node: v, Score: scores[v]}
	}
	writeJSON(w, http.StatusOK, map[string]any{"source": u, "k": k, "results": out})
}

func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, err := s.nodeParam(r, "v")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	score, err := engine.Pair(ctx, s.est, u, v)
	if err != nil {
		writeQueryErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": v, "score": score})
}

// batchRequest is the POST /batch/singlesource body.
type batchRequest struct {
	Sources []int64 `json:"sources"`
	// K bounds each item's result list; 0 means DefaultK, larger than
	// MaxK clamps (the response reports the effective k).
	K int `json:"k"`
}

// batchItem is one per-source entry of the batch response: either a
// ranked result list or this source's own error, never both. Item
// order matches the request's sources order.
type batchItem struct {
	Source  int64        `json:"source"`
	Results []scoredNode `json:"results,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// maxBatchBody bounds the batch request body: generous headroom per
// allowed source (a 19-digit id plus JSON punctuation is under 24
// bytes) plus a fixed allowance for the envelope. Anything larger
// cannot be a valid batch, so it is rejected before the decoder
// buffers it.
func (s *Server) maxBatchBody() int64 {
	return int64(s.cfg.MaxBatch)*32 + 4096
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// Bound the body before decoding: MaxBatch alone cannot protect the
	// decoder, which would otherwise buffer an arbitrarily large body
	// just to count its sources.
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBatchBody())
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErr(w, http.StatusBadRequest,
				"batch body exceeds %d bytes; split the request", tooLarge.Limit)
			return
		}
		writeErr(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Sources) == 0 {
		writeErr(w, http.StatusBadRequest, "batch needs a non-empty sources list")
		return
	}
	if len(req.Sources) > s.cfg.MaxBatch {
		writeErr(w, http.StatusBadRequest,
			"batch of %d sources exceeds max %d; split the request", len(req.Sources), s.cfg.MaxBatch)
		return
	}
	k := s.cfg.DefaultK
	if req.K != 0 {
		if req.K < 1 {
			writeErr(w, http.StatusBadRequest, "bad k %d", req.K)
			return
		}
		k = min(req.K, s.cfg.MaxK)
	}

	// One admission reservation for the whole batch, weighted by its
	// source count: N batched sources cost the same budget as N scalar
	// queries, so batching is a latency optimization, not a way around
	// overload protection.
	weight := len(req.Sources)
	if !s.acquire(w, weight) {
		return
	}
	defer s.release(weight)
	start := s.now()
	defer func() { s.observeLatency(s.now().Sub(start)) }()

	// Per-item validation: an out-of-range source gets its own error
	// entry; the valid remainder still runs as one batch.
	n := s.cfg.Graph.NumNodes()
	items := make([]batchItem, len(req.Sources))
	valid := make([]graph.NodeID, 0, len(req.Sources))
	for i, raw := range req.Sources {
		items[i].Source = raw
		if raw < 0 || raw >= int64(n) {
			items[i].Error = fmt.Sprintf("node %d out of range [0,%d)", raw, n)
			continue
		}
		valid = append(valid, graph.NodeID(raw))
	}
	if len(valid) > 0 {
		ctx, cancel := s.queryCtx(r)
		defer cancel()
		scores, err := engine.MultiSource(ctx, s.est, valid)
		if err != nil {
			writeQueryErr(w, err)
			return
		}
		j := 0
		for i := range items {
			if items[i].Error != "" {
				continue
			}
			sc := scores[j]
			j++
			u := graph.NodeID(items[i].Source)
			top := metrics.TopK(sc, u, k)
			out := make([]scoredNode, len(top))
			for x, v := range top {
				out[x] = scoredNode{Node: v, Score: sc[v]}
			}
			items[i].Results = out
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"k": k, "items": items})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := s.kParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.queryCtx(r)
	defer cancel()
	ranked, err := engine.TopK(ctx, s.est, u, k)
	if err != nil {
		writeQueryErr(w, err)
		return
	}
	out := make([]scoredNode, len(ranked))
	for i, rn := range ranked {
		out[i] = scoredNode{Node: rn.Node, Score: rn.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"source": u, "k": k, "results": out})
}
