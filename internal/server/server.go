// Package server exposes SimRank queries over HTTP with a small JSON
// API, turning the library into a queryable service:
//
//	GET /health              -> {"status":"ok"}
//	GET /stats               -> graph statistics
//	GET /singlesource?u=3&k=10
//	GET /pair?u=3&v=17
//	GET /topk?u=3&k=10
//
// The server owns one immutable graph; queries are read-only and safe
// to serve concurrently. All estimator parameters are fixed at
// construction so results are reproducible across requests.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/metrics"
)

// Config fixes the served graph and estimator parameters.
type Config struct {
	Graph  *graph.Graph
	Params core.Params
	// DefaultK bounds result lists when the request omits k. Default 10.
	DefaultK int
	// MaxK caps requested result lengths. Default 1000.
	MaxK int
}

// Server is an http.Handler answering SimRank queries.
type Server struct {
	cfg Config
	mux *http.ServeMux
}

// New validates the configuration and builds the handler.
func New(cfg Config) (*Server, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("server: graph must not be nil")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.DefaultK == 0 {
		cfg.DefaultK = 10
	}
	if cfg.MaxK == 0 {
		cfg.MaxK = 1000
	}
	if cfg.DefaultK < 1 || cfg.MaxK < cfg.DefaultK {
		return nil, fmt.Errorf("server: bad k bounds (default %d, max %d)", cfg.DefaultK, cfg.MaxK)
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /health", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /singlesource", s.handleSingleSource)
	s.mux.HandleFunc("GET /pair", s.handlePair)
	s.mux.HandleFunc("GET /topk", s.handleTopK)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := graph.ComputeStats(s.cfg.Graph)
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":       st.Nodes,
		"edges":       st.Edges,
		"directed":    st.Directed,
		"meanInDeg":   st.MeanInDeg,
		"maxInDeg":    st.MaxInDeg,
		"danglingIn":  st.DanglingIn,
		"danglingOut": st.DanglingOut,
		"medianInDeg": st.MedianInDeg,
	})
}

// nodeParam parses a node id query parameter and range-checks it.
func (s *Server) nodeParam(r *http.Request, name string) (graph.NodeID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad node id %q", raw)
	}
	if v < 0 || int(v) >= s.cfg.Graph.NumNodes() {
		return 0, fmt.Errorf("node %d out of range [0,%d)", v, s.cfg.Graph.NumNodes())
	}
	return graph.NodeID(v), nil
}

// kParam parses the optional k parameter with defaults and caps.
func (s *Server) kParam(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("k")
	if raw == "" {
		return s.cfg.DefaultK, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k < 1 {
		return 0, fmt.Errorf("bad k %q", raw)
	}
	if k > s.cfg.MaxK {
		k = s.cfg.MaxK
	}
	return k, nil
}

// scoredNode is one JSON result entry.
type scoredNode struct {
	Node  graph.NodeID `json:"node"`
	Score float64      `json:"score"`
}

func (s *Server) handleSingleSource(w http.ResponseWriter, r *http.Request) {
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := s.kParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	scores, err := core.SingleSource(s.cfg.Graph, u, nil, s.cfg.Params)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	top := metrics.TopK(scores, u, k)
	out := make([]scoredNode, len(top))
	for i, v := range top {
		out[i] = scoredNode{Node: v, Score: scores[v]}
	}
	writeJSON(w, http.StatusOK, map[string]any{"source": u, "results": out})
}

func (s *Server) handlePair(w http.ResponseWriter, r *http.Request) {
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, err := s.nodeParam(r, "v")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	score, err := core.SinglePair(s.cfg.Graph, u, v, s.cfg.Params)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": v, "score": score})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	u, err := s.nodeParam(r, "u")
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := s.kParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	ranked, err := core.TopK(s.cfg.Graph, u, k, s.cfg.Params)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make([]scoredNode, len(ranked))
	for i, rn := range ranked {
		out[i] = scoredNode{Node: rn.Node, Score: rn.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"source": u, "results": out})
}
