package server

import (
	"context"
	"net/http"
	"path/filepath"
	"testing"

	"crashsim/internal/core"
	"crashsim/internal/engine"
	"crashsim/internal/graph"
	"crashsim/internal/store"
)

// TestMetricsExposesStoreCounters serves a sling index imported from a
// mapped snapshot and checks /metrics surfaces the store instrumentation
// (mmap opens, the mapped-bytes gauge, deferred/verified CRC counters).
// The store registers on obs.Default, so Metrics is left nil here like
// a production simserver. Counter values are only loosely asserted —
// other tests sharing obs.Default may tick them — but the mapped-bytes
// gauge must cover this test's live mapping.
func TestMetricsExposesStoreCounters(t *testing.T) {
	ctx := context.Background()
	g := graph.PaperExample()
	p := core.Params{Iterations: 100, Seed: 1}
	ecfg := engine.Config{
		C: p.C, Eps: p.Eps, Delta: p.Delta,
		Iterations: p.Iterations, Workers: p.Workers, Seed: p.Seed,
	}
	ix, err := engine.BuildSlingIndex(ctx, g, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	pay := ix.Export()
	path := filepath.Join(t.TempDir(), "sling.snap")
	if err := store.Write(path, &store.Snapshot{Graph: g, Sling: &pay}); err != nil {
		t.Fatal(err)
	}
	mp, err := store.OpenMapped(path, store.MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mp.Close()
	slM, err := mp.ImportSling(g)
	if err != nil {
		t.Fatal(err)
	}
	defer slM.Close()

	s, err := New(Config{Graph: g, Algo: "sling", Params: p, SlingIndex: slM})
	if err != nil {
		t.Fatal(err)
	}
	if rec, body := get(t, s, "/singlesource?u=0"); rec.Code != http.StatusOK {
		t.Fatalf("mapped-index query: %d %v", rec.Code, body)
	}

	rec, body := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	counters := body["counters"].(map[string]any)
	for _, name := range []string{"store.mmap_opens", "store.crc_deferred", "store.crc_verified"} {
		if _, ok := counters[name]; !ok {
			t.Errorf("counter %q missing from /metrics snapshot", name)
		}
	}
	if got := counters["store.mmap_opens"].(float64); got < 1 {
		t.Errorf("store.mmap_opens = %v, want >= 1", got)
	}
	gauges := body["gauges"].(map[string]any)
	bytes, ok := gauges["store.mapped_bytes"].(float64)
	if !ok {
		t.Fatal("gauge store.mapped_bytes missing from /metrics snapshot")
	}
	if bytes < float64(mp.MappedBytes()) {
		t.Errorf("store.mapped_bytes = %v with a %d-byte mapping live", bytes, mp.MappedBytes())
	}
}
