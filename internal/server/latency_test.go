package server

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
)

// fakeClock drives the server's latency accounting with known
// durations: admit calls now() exactly twice per request (start and
// end), so request i is reported as taking lats[i].
type fakeClock struct {
	base time.Time
	lats []time.Duration
	call int
}

func (c *fakeClock) now() time.Time {
	i := c.call / 2
	odd := c.call%2 == 1
	c.call++
	if !odd {
		return c.base
	}
	return c.base.Add(c.lats[i])
}

// TestStatsReportsDrivenP99 pushes 100 requests with known fake-clock
// latencies through the server — 99 fast, one 900ms straggler — and
// asserts /stats and /metrics report the straggler as the p99 within
// the quantile histogram's documented error bound.
func TestStatsReportsDrivenP99(t *testing.T) {
	s, err := New(Config{
		Graph:   graph.PaperExample(),
		Params:  core.Params{Iterations: 50, Seed: 1},
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	const slow = 900 * time.Millisecond
	clock := &fakeClock{base: time.Unix(1700000000, 0)}
	for i := 0; i < n; i++ {
		d := 2 * time.Millisecond
		if i == 37 {
			d = slow
		}
		clock.lats = append(clock.lats, d)
	}
	s.now = clock.now

	for i := 0; i < n; i++ {
		rec, _ := get(t, s, "/singlesource?u=0&k=3")
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	if clock.call != 2*n {
		t.Fatalf("clock consulted %d times, want %d", clock.call, 2*n)
	}

	rec, body := get(t, s, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats status %d", rec.Code)
	}
	lat, ok := body["latency"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no latency block: %v", body)
	}
	if got := lat["count"].(float64); got != n {
		t.Fatalf("latency count %v, want %d", got, n)
	}
	checkQuantile := func(name string, got, exact time.Duration) {
		t.Helper()
		if got < exact {
			t.Errorf("%s = %v undershoots %v", name, got, exact)
		}
		if float64(got) > float64(exact)*1.04+1 {
			t.Errorf("%s = %v exceeds error bound around %v", name, got, exact)
		}
	}
	secs := func(k string) time.Duration {
		v, ok := lat[k].(float64)
		if !ok {
			t.Fatalf("latency[%q] missing: %v", k, lat)
		}
		return time.Duration(v * float64(time.Second))
	}
	// Rank rule: p99 of 100 samples is the 99th order statistic — the
	// 900ms straggler; p50 and p90 are the 2ms mode; max is exact.
	checkQuantile("p99", secs("p99"), slow)
	checkQuantile("p999", secs("p999"), slow)
	checkQuantile("p50", secs("p50"), 2*time.Millisecond)
	checkQuantile("p90", secs("p90"), 2*time.Millisecond)
	if got := secs("max"); got != slow {
		t.Errorf("max = %v, want exact %v", got, slow)
	}
	wantMean := (99*(2*time.Millisecond) + slow) / n
	if got := secs("mean_seconds"); got < wantMean-time.Microsecond || got > wantMean+time.Microsecond {
		t.Errorf("mean = %v, want ~%v", got, wantMean)
	}

	// The same observations surface on /metrics under "quantiles".
	rec, body = get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	quants, ok := body["quantiles"].(map[string]any)
	if !ok {
		t.Fatalf("/metrics has no quantiles block: %v", body)
	}
	ql, ok := quants["server.latency"].(map[string]any)
	if !ok {
		t.Fatalf("quantiles missing server.latency: %v", quants)
	}
	if got := ql["count"].(float64); got != n {
		t.Errorf("metrics quantile count %v, want %d", got, n)
	}
	p99 := time.Duration(ql["p99"].(float64) * float64(time.Second))
	checkQuantile("metrics p99", p99, slow)
}

// TestBatchLatencyRecorded pins that the batch endpoint feeds the same
// quantile histogram as the scalar endpoints.
func TestBatchLatencyRecorded(t *testing.T) {
	s, err := New(Config{
		Graph:   graph.PaperExample(),
		Params:  core.Params{Iterations: 50, Seed: 1},
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{base: time.Unix(1700000000, 0), lats: []time.Duration{42 * time.Millisecond}}
	s.now = clock.now
	rec, _ := post(t, s, "/batch/singlesource", `{"sources":[0,1],"k":3}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}
	_, body := get(t, s, "/stats")
	lat := body["latency"].(map[string]any)
	if got := lat["count"].(float64); got != 1 {
		t.Fatalf("latency count %v after one batch, want 1", got)
	}
	if got := lat["max"].(float64); got != (42 * time.Millisecond).Seconds() {
		t.Fatalf("batch latency max %v, want 0.042", got)
	}
	if fmt.Sprint(lat["p50"]) == "0" {
		t.Fatalf("batch latency p50 missing: %v", lat)
	}
}
