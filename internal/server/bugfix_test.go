package server

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"crashsim/internal/core"
	"crashsim/internal/engine"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
)

// Regression: /stats used to recompute graph.ComputeStats — an O(n+m)
// sweep — on every request, on an endpoint outside the admission gate.
// The graph is immutable, so the sweep happens exactly once, in New;
// the server.stats_computed counter pins that.
func TestStatsComputedOnce(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph:   graph.PaperExample(),
		Params:  core.Params{Iterations: 50, Seed: 1},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("server.stats_computed").Load(); got != 1 {
		t.Fatalf("after New: server.stats_computed = %d, want 1", got)
	}
	for i := 0; i < 2; i++ {
		if rec, body := get(t, s, "/stats"); rec.Code != http.StatusOK || body["nodes"].(float64) != 8 {
			t.Fatalf("stats call %d: %d %v", i, rec.Code, body)
		}
	}
	if got := reg.Counter("server.stats_computed").Load(); got != 1 {
		t.Fatalf("after two /stats calls: server.stats_computed = %d, want 1 (handler re-walked the graph)", got)
	}
}

// Regression: handleBatch used to hand the decoder an unbounded body —
// MaxBatch only applied after the whole body was buffered. An oversized
// body is now a client error (400), not a decoder blowup.
func TestBatchBodyTooLarge(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph:    graph.PaperExample(),
		Params:   core.Params{Iterations: 50, Seed: 1},
		MaxBatch: 4,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A syntactically valid body well past maxBatchBody (4*32+4096).
	huge := `{"sources":[` + strings.Repeat("1234567890123456,", 4096) + `1]}`
	if int64(len(huge)) <= s.maxBatchBody() {
		t.Fatalf("test body of %d bytes does not exceed the %d-byte limit", len(huge), s.maxBatchBody())
	}
	rec, body := post(t, s, "/batch/singlesource", huge)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch body answered %d (%v), want 400", rec.Code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "exceeds") {
		t.Fatalf("oversized-body error %q does not name the limit", msg)
	}
	// A normal batch on the same server still works.
	if rec, body := post(t, s, "/batch/singlesource", `{"sources":[0,1]}`); rec.Code != http.StatusOK {
		t.Fatalf("small batch after oversized one: %d %v", rec.Code, body)
	}
}

// Regression: a weight-N batch used to tick server.queries once while
// admission charged N units, so served counts could not be reconciled
// with the gate or with rejected weight. Both counters now account in
// admission-weight units.
func TestServedAndRejectedCountWeight(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph:   graph.PaperExample(),
		Params:  core.Params{Iterations: 50, Seed: 1},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec, body := get(t, s, "/singlesource?u=0&k=2"); rec.Code != http.StatusOK {
		t.Fatalf("scalar query: %d %v", rec.Code, body)
	}
	if rec, body := post(t, s, "/batch/singlesource", `{"sources":[0,1,2,3]}`); rec.Code != http.StatusOK {
		t.Fatalf("batch query: %d %v", rec.Code, body)
	}
	if got := reg.Counter("server.queries").Load(); got != 5 {
		t.Fatalf("server.queries = %d, want 5 (1 scalar + 4-source batch)", got)
	}
	if got := reg.Counter("server.rejected").Load(); got != 0 {
		t.Fatalf("server.rejected = %d, want 0", got)
	}
}

// Config.SlingIndex reaches the engine: a compatible preloaded index is
// accepted (skipping the build), an incompatible one fails New instead
// of silently serving wrong-graph scores.
func TestConfigPreloadedIndexPassthrough(t *testing.T) {
	g := graph.PaperExample()
	ecfg := engine.Config{Seed: 1, SlingDSamples: 16}
	ix, err := engine.BuildSlingIndex(context.Background(), g, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph:      g,
		Algo:       "sling",
		Params:     core.Params{Seed: 1},
		Metrics:    obs.NewRegistry(),
		SlingIndex: ix,
	}
	// The server's engine config maps Params onto sling options; the
	// index above was built with matching seed but its own DSamples, so
	// force agreement by building exactly what the server would ask for.
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a preloaded index with mismatched options")
	}
	ix, err = engine.BuildSlingIndex(context.Background(), g, engine.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.SlingIndex = ix
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec, body := get(t, s, "/singlesource?u=0&k=3"); rec.Code != http.StatusOK {
		t.Fatalf("query through preloaded index: %d %v", rec.Code, body)
	}
}
