package rng

import (
	"math"
	"testing"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincide on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	// Streams split from the same seed must be deterministic per index
	// and differ across indices.
	a1, a2 := Split(7, 1), Split(7, 1)
	b := Split(7, 2)
	diff := 0
	for i := 0; i < 100; i++ {
		va := a1.Uint64()
		if va != a2.Uint64() {
			t.Fatal("same (seed, stream) produced different values")
		}
		if va != b.Uint64() {
			diff++
		}
	}
	if diff < 98 {
		t.Errorf("streams 1 and 2 coincide too often (%d/100 differ)", diff)
	}
}

// TestSplitUniformity is a coarse statistical check: the mean of many
// Float64 draws across split streams must be near 0.5 (catches a broken
// mix function that collapses streams).
func TestSplitUniformity(t *testing.T) {
	sum := 0.0
	const streams, draws = 100, 100
	for s := uint64(0); s < streams; s++ {
		r := Split(99, s)
		for i := 0; i < draws; i++ {
			sum += r.Float64()
		}
	}
	mean := sum / (streams * draws)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniform draws = %.4f, want ~0.5", mean)
	}
}

func TestSeedStringStable(t *testing.T) {
	// FNV-1a of known strings must be stable across runs and platforms.
	if SeedString("") != 14695981039346656037 {
		t.Error("empty-string seed changed")
	}
	if SeedString("a") == SeedString("b") {
		t.Error("distinct labels collide")
	}
	if SeedString("fig5/as-733") != SeedString("fig5/as-733") {
		t.Error("same label differs")
	}
}

// TestFastMatchesSplit locks the devirtualization contract: Fast must
// reproduce the Split stream variate for variate — same raw words, same
// Float64 bits, same IntN values (including the power-of-two shortcut
// and the rejection loop for skewed moduli) — with draws interleaved in
// arbitrary orders so word consumption is provably in lockstep.
func TestFastMatchesSplit(t *testing.T) {
	moduli := []int{1, 2, 3, 5, 7, 8, 64, 100, 1000, 1 << 20, (1 << 31) - 1}
	for _, tc := range []struct{ seed, stream uint64 }{{0, 0}, {1, 42}, {17, 5}, {^uint64(0), 1 << 40}} {
		want := Split(tc.seed, tc.stream)
		got := FastSplit(tc.seed, tc.stream)
		for i := 0; i < 2000; i++ {
			switch i % 3 {
			case 0:
				w, g := want.Uint64(), got.Uint64()
				if w != g {
					t.Fatalf("seed %d/%d draw %d: Uint64 %d (rand) vs %d (Fast)", tc.seed, tc.stream, i, w, g)
				}
			case 1:
				w, g := want.Float64(), got.Float64()
				if math.Float64bits(w) != math.Float64bits(g) {
					t.Fatalf("seed %d/%d draw %d: Float64 %v (rand) vs %v (Fast)", tc.seed, tc.stream, i, w, g)
				}
			default:
				n := moduli[i%len(moduli)]
				w, g := want.IntN(n), got.IntN(n)
				if w != g {
					t.Fatalf("seed %d/%d draw %d: IntN(%d) %d (rand) vs %d (Fast)", tc.seed, tc.stream, i, n, w, g)
				}
			}
		}
	}
}
