// Package rng provides deterministic, splittable pseudo-random number
// streams for the simulators and Monte-Carlo estimators in this module.
//
// Every randomized algorithm in the repository takes an explicit seed so
// that experiments are reproducible run-to-run; rng centralizes the
// construction of the underlying generators (PCG from math/rand/v2) and
// the derivation of independent sub-streams for parallel workers.
package rng

import "math/rand/v2"

// Source is the concrete generator used throughout the module.
type Source = rand.Rand

// New returns a deterministic generator for the given seed.
func New(seed uint64) *Source {
	return rand.New(rand.NewPCG(seed, mix(seed)))
}

// Split derives an independent sub-stream from a parent seed and a stream
// index. Two Split calls with different indices produce streams that are
// statistically independent for the purposes of Monte-Carlo estimation.
func Split(seed uint64, stream uint64) *Source {
	return rand.New(rand.NewPCG(mix(seed^0x9e3779b97f4a7c15), mix(stream+0x517cc1b727220a95)))
}

// SeedString maps an arbitrary label to a stable seed (FNV-1a), so
// experiments can be keyed by human-readable names such as
// "fig5/wiki-vote/crashsim/eps=0.025". The mapping is identical across
// processes and platforms.
func SeedString(label string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return h
}

// mix is a splitmix64 finalizer used to decorrelate related seeds.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
