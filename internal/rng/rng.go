// Package rng provides deterministic, splittable pseudo-random number
// streams for the simulators and Monte-Carlo estimators in this module.
//
// Every randomized algorithm in the repository takes an explicit seed so
// that experiments are reproducible run-to-run; rng centralizes the
// construction of the underlying generators (PCG from math/rand/v2) and
// the derivation of independent sub-streams for parallel workers.
package rng

import (
	"math"
	"math/bits"
	"math/rand/v2"
)

// Source is the concrete generator used throughout the module.
type Source = rand.Rand

// New returns a deterministic generator for the given seed.
func New(seed uint64) *Source {
	return rand.New(rand.NewPCG(seed, mix(seed)))
}

// Split derives an independent sub-stream from a parent seed and a stream
// index. Two Split calls with different indices produce streams that are
// statistically independent for the purposes of Monte-Carlo estimation.
func Split(seed uint64, stream uint64) *Source {
	return rand.New(rand.NewPCG(mix(seed^0x9e3779b97f4a7c15), mix(stream+0x517cc1b727220a95)))
}

// Fast is a devirtualized, fully inlinable replica of a Split stream:
// the same PCG-DXSM generator as math/rand/v2, with state held inline
// and Uint64/Float64/IntN replicated bit for bit. Monte-Carlo inner
// loops draw two variates per walk step, and on that path rand.Rand's
// Source-interface dispatch plus the non-inlinable method bodies are a
// measurable fraction of the step — Fast removes both (it also lives on
// the caller's stack, so a per-candidate stream costs no allocation).
//
// Equivalence with Split is a hard contract: estimators switch between
// rand.Rand and Fast freely and their results must stay byte-identical.
// TestFastMatchesSplit locks the replication, so a future stdlib change
// to the generator or the drawing algorithms would be caught there, not
// as silent score drift.
type Fast struct {
	hi, lo uint64 // 128-bit PCG state, exactly rand.PCG's
}

// FastSplit seeds a Fast generator with exactly the stream
// Split(seed, stream) produces.
func FastSplit(seed, stream uint64) Fast {
	return Fast{hi: mix(seed ^ 0x9e3779b97f4a7c15), lo: mix(stream + 0x517cc1b727220a95)}
}

// Uint64 advances the 128-bit LCG and scrambles with DXSM, identical to
// (*rand.PCG).Uint64 (the constants and operation order are that
// implementation's, restated here so the whole draw inlines).
func (f *Fast) Uint64() uint64 {
	const (
		mulHi    = 2549297995355413924
		mulLo    = 4865540595714422341
		incHi    = 6364136223846793005
		incLo    = 1442695040888963407
		cheapMul = 0xda942042e4dd58b5
	)
	hi, lo := bits.Mul64(f.lo, mulLo)
	hi += f.hi*mulLo + f.lo*mulHi
	lo, c := bits.Add64(lo, incLo, 0)
	hi, _ = bits.Add64(hi, incHi, c)
	f.lo, f.hi = lo, hi
	hi ^= hi >> 32
	hi *= cheapMul
	hi ^= hi >> 48
	hi *= lo | 1
	return hi
}

// Float64 returns a uniform variate in [0, 1), identical to
// (*rand.Rand).Float64 on the same stream.
func (f *Fast) Float64() float64 {
	return float64(f.Uint64()<<11>>11) / (1 << 53)
}

// Bits53 returns the 53 uniform bits behind Float64, consuming the same
// single word: Float64() == float64(Bits53()) / 2⁵³. Together with
// Threshold53 it lets a loop test Float64() >= p without the per-draw
// integer→float conversion and float compare.
func (f *Fast) Bits53() uint64 { return f.Uint64() << 11 >> 11 }

// Threshold53 returns the threshold t such that, for every 53-bit b,
// b >= t ⇔ float64(b)/2⁵³ >= p. The equivalence is exact: float64(b) is
// exact for b < 2⁵³, p·2⁵³ only shifts p's exponent (no mantissa bits
// are lost, so the product is the exact real value), and since b is an
// integer the real comparison b >= p·2⁵³ is b >= ⌈p·2⁵³⌉.
func Threshold53(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	return uint64(math.Ceil(p * (1 << 53)))
}

// IntN returns a uniform variate in [0, n), identical to
// (*rand.Rand).IntN on the same stream. n must be positive. (rand.Rand
// routes small n through a 32-bit path on 32-bit platforms; for
// 0 < n < 2³¹ that path consumes the same words and returns the same
// values as the 64-bit one implemented here, so the replication holds
// on every platform for the node-degree arguments the walks use.)
func (f *Fast) IntN(n int) int {
	return f.IntNWord(f.Uint64(), n)
}

// IntNWord maps an already-drawn word x onto [0, n) exactly as IntN
// does — IntN(n) ≡ IntNWord(Uint64(), n) — drawing again only on the
// rare Lemire rejection. Callers whose inner loop already inlines
// Uint64 use this to keep the whole draw inlined: IntN's body plus an
// inlined Uint64 exceeds the inlining budget, but the two halves fit
// separately.
func (f *Fast) IntNWord(x uint64, n int) int {
	u := uint64(n)
	if u&(u-1) == 0 { // power of two: mask the low bits
		return int(x & (u - 1))
	}
	hi, lo := bits.Mul64(x, u)
	if lo < u {
		return f.intNSlow(hi, lo, u)
	}
	return int(hi)
}

// intNSlow is IntN's rejection path (taken with probability < u/2⁶⁴),
// split out so IntN itself stays inlinable.
func (f *Fast) intNSlow(hi, lo, u uint64) int {
	thresh := -u % u
	for lo < thresh {
		hi, lo = bits.Mul64(f.Uint64(), u)
	}
	return int(hi)
}

// SeedString maps an arbitrary label to a stable seed (FNV-1a), so
// experiments can be keyed by human-readable names such as
// "fig5/wiki-vote/crashsim/eps=0.025". The mapping is identical across
// processes and platforms.
func SeedString(label string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return h
}

// mix is a splitmix64 finalizer used to decorrelate related seeds.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
