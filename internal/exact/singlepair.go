package exact

import (
	"fmt"

	"crashsim/internal/graph"
)

// SinglePairOptions configures the exact single-pair computation.
type SinglePairOptions struct {
	// C is the decay factor in (0,1). Default 0.6.
	C float64
	// Iterations bounds the fixed-point depth; the absolute error is at
	// most C^(Iterations+1). Default 55.
	Iterations int
	// MaxPairs guards against product-graph blowup: the computation
	// tracks one value per reachable node pair and aborts beyond the
	// limit (use PowerMethod instead). Default 4_000_000.
	MaxPairs int
}

func (o *SinglePairOptions) setDefaults() {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Iterations == 0 {
		o.Iterations = 55
	}
	if o.MaxPairs == 0 {
		o.MaxPairs = 4_000_000
	}
}

// pairKey packs an ordered node pair (a <= b) into one map key.
func pairKey(a, b graph.NodeID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// SinglePair computes sim(u, v) exactly (within C^(Iterations+1))
// without materializing the full n×n matrix: it iterates the SimRank
// recurrence over only the node pairs reachable from (u, v) by
// simultaneous reverse steps — the product-graph neighborhood — which is
// far smaller than n² on sparse graphs. Memory is O(reachable pairs).
func SinglePair(g *graph.Graph, u, v graph.NodeID, opt SinglePairOptions) (float64, error) {
	opt.setDefaults()
	if opt.C <= 0 || opt.C >= 1 {
		return 0, fmt.Errorf("exact: decay factor c=%g outside (0,1)", opt.C)
	}
	if opt.Iterations < 1 {
		return 0, fmt.Errorf("exact: iterations must be >= 1, got %d", opt.Iterations)
	}
	n := graph.NodeID(g.NumNodes())
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, fmt.Errorf("exact: nodes (%d,%d) out of range for n=%d", u, v, n)
	}
	if u == v {
		return 1, nil
	}

	// Discover the reachable pair set with a BFS over simultaneous
	// reverse steps, bounded by the iteration depth (pairs farther than
	// Iterations steps cannot influence the truncated fixed point).
	type pair struct{ a, b graph.NodeID }
	depthOf := map[uint64]int{pairKey(u, v): 0}
	pairs := []pair{{u, v}}
	frontier := []pair{{u, v}}
	for depth := 1; depth <= opt.Iterations && len(frontier) > 0; depth++ {
		var next []pair
		for _, p := range frontier {
			for _, x := range g.In(p.a) {
				for _, y := range g.In(p.b) {
					if x == y {
						continue // diagonal pairs are constant 1
					}
					k := pairKey(x, y)
					if _, seen := depthOf[k]; seen {
						continue
					}
					depthOf[k] = depth
					pairs = append(pairs, pair{x, y})
					next = append(next, pair{x, y})
					if len(pairs) > opt.MaxPairs {
						return 0, fmt.Errorf("exact: pair neighborhood exceeds %d pairs; use PowerMethod", opt.MaxPairs)
					}
				}
			}
		}
		frontier = next
	}

	// Iterate the recurrence over the discovered pairs.
	cur := make(map[uint64]float64, len(pairs))
	next := make(map[uint64]float64, len(pairs))
	for it := 0; it < opt.Iterations; it++ {
		for _, p := range pairs {
			ia, ib := g.In(p.a), g.In(p.b)
			if len(ia) == 0 || len(ib) == 0 {
				continue
			}
			sum := 0.0
			for _, x := range ia {
				for _, y := range ib {
					if x == y {
						sum += 1
					} else {
						sum += cur[pairKey(x, y)]
					}
				}
			}
			next[pairKey(p.a, p.b)] = opt.C * sum / float64(len(ia)*len(ib))
		}
		cur, next = next, cur
	}
	return cur[pairKey(u, v)], nil
}
