package exact

import (
	"math"
	"testing"
	"testing/quick"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func TestPowerMethodIdentityDiagonal(t *testing.T) {
	g := graph.PaperExample()
	r, err := PowerMethod(g, PowerOptions{C: 0.6, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if r.Sim(v, v) != 1 {
			t.Errorf("sim(%d,%d) = %g, want 1", v, v, r.Sim(v, v))
		}
	}
}

// TestPowerMethodFixedPoint verifies that the returned matrix satisfies
// the SimRank recurrence within the iteration tolerance c^(k+1).
func TestPowerMethodFixedPoint(t *testing.T) {
	g := graph.PaperExample()
	c := 0.6
	iters := 40
	r, err := PowerMethod(g, PowerOptions{C: c, Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	tol := math.Pow(c, float64(iters)) * 10
	n := graph.NodeID(g.NumNodes())
	for u := graph.NodeID(0); u < n; u++ {
		for v := graph.NodeID(0); v < n; v++ {
			if u == v {
				continue
			}
			iu, iv := g.In(u), g.In(v)
			want := 0.0
			if len(iu) > 0 && len(iv) > 0 {
				sum := 0.0
				for _, x := range iu {
					for _, y := range iv {
						sum += r.Sim(x, y)
					}
				}
				want = c * sum / float64(len(iu)*len(iv))
			}
			if math.Abs(r.Sim(u, v)-want) > tol {
				t.Errorf("recurrence violated at (%d,%d): have %.8f, recurrence gives %.8f",
					u, v, r.Sim(u, v), want)
			}
		}
	}
}

// TestPowerMethodProperties property-checks symmetry and range on random
// graphs: SimRank is symmetric and lies in [0, 1].
func TestPowerMethodProperties(t *testing.T) {
	f := func(seed uint64, directed bool) bool {
		edges, err := gen.ErdosRenyi(25, 50, directed, seed)
		if err != nil {
			return false
		}
		g, err := gen.BuildStatic(25, directed, edges)
		if err != nil {
			return false
		}
		r, err := PowerMethod(g, PowerOptions{C: 0.6, Iterations: 25})
		if err != nil {
			return false
		}
		n := graph.NodeID(g.NumNodes())
		for u := graph.NodeID(0); u < n; u++ {
			for v := u; v < n; v++ {
				s := r.Sim(u, v)
				if s < 0 || s > 1+1e-12 {
					return false
				}
				if math.Abs(s-r.Sim(v, u)) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPowerMethodDanglingNodes(t *testing.T) {
	// 0 and 1 both point at 2; 0 and 1 have no in-neighbors, so their
	// SimRank with anything (but themselves) is 0, while sim(2,2) = 1.
	g := graph.NewBuilder(3, true).AddEdge(0, 2).AddEdge(1, 2).MustFreeze()
	r, err := PowerMethod(g, PowerOptions{C: 0.6, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Sim(0, 1); got != 0 {
		t.Errorf("sim(0,1) = %g, want 0 for dangling nodes", got)
	}
	if got := r.Sim(0, 2); got != 0 {
		t.Errorf("sim(0,2) = %g, want 0", got)
	}
}

func TestPowerMethodConvergence(t *testing.T) {
	g := graph.PaperExample()
	a, err := PowerMethod(g, PowerOptions{C: 0.6, Iterations: 54})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerMethod(g, PowerOptions{C: 0.6, Iterations: 55})
	if err != nil {
		t.Fatal(err)
	}
	n := graph.NodeID(g.NumNodes())
	for u := graph.NodeID(0); u < n; u++ {
		for v := graph.NodeID(0); v < n; v++ {
			if math.Abs(a.Sim(u, v)-b.Sim(u, v)) > 1e-5 {
				t.Errorf("iterations 54 vs 55 differ by more than 1e-5 at (%d,%d)", u, v)
			}
		}
	}
}

// TestPowerMethodParallelDeterminism: the row-parallel products must be
// bit-identical to the sequential run.
func TestPowerMethodParallelDeterminism(t *testing.T) {
	edges, err := gen.ErdosRenyi(80, 240, true, 111)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(80, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := PowerMethod(g, PowerOptions{C: 0.6, Iterations: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := PowerMethod(g, PowerOptions{C: 0.6, Iterations: 20, Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			if seq.Sim(u, v) != parallel.Sim(u, v) {
				t.Fatalf("worker count changed result at (%d,%d)", u, v)
			}
		}
	}
}

func TestPowerMethodGuards(t *testing.T) {
	g := graph.PaperExample()
	if _, err := PowerMethod(g, PowerOptions{C: 1.5}); err == nil {
		t.Error("bad decay factor accepted")
	}
	if _, err := PowerMethod(g, PowerOptions{Iterations: -1}); err == nil {
		t.Error("negative iterations accepted")
	}
	if _, err := PowerMethod(g, PowerOptions{MaxNodes: 4}); err == nil {
		t.Error("MaxNodes guard did not trigger")
	}
	if _, err := PowerMethod(g, PowerOptions{MaxNodes: -1}); err != nil {
		t.Errorf("MaxNodes=-1 should disable the guard: %v", err)
	}
}

func TestSingleSourceView(t *testing.T) {
	g := graph.PaperExample()
	r, err := PowerMethod(g, PowerOptions{C: 0.6, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	row := r.SingleSource(2)
	if len(row) != g.NumNodes() {
		t.Fatalf("row length %d, want %d", len(row), g.NumNodes())
	}
	for v := range row {
		if row[v] != r.Sim(2, graph.NodeID(v)) {
			t.Errorf("row[%d] = %g != Sim = %g", v, row[v], r.Sim(2, graph.NodeID(v)))
		}
	}
	row[0] = 42 // must not alias internal storage
	if r.Sim(2, 0) == 42 {
		t.Error("SingleSource aliases internal storage")
	}
}

// TestPairMCAgainstPowerMethod cross-checks the coupled-walk E[c^τ]
// estimator against the fixed-point ground truth.
func TestPairMCAgainstPowerMethod(t *testing.T) {
	g := graph.PaperExample()
	gt, err := PowerMethod(g, PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]string{{"A", "B"}, {"A", "C"}, {"B", "D"}, {"F", "G"}, {"A", "H"}}
	for _, p := range pairs {
		u, v := graph.PaperNode(p[0]), graph.PaperNode(p[1])
		got, err := PairMC(g, u, v, PairMCOptions{C: 0.6, Trials: 40000, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		want := gt.Sim(u, v)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("PairMC(%s,%s) = %.4f, power method %.4f", p[0], p[1], got, want)
		}
	}
}

func TestMCSingleSource(t *testing.T) {
	g := graph.PaperExample()
	gt, err := PowerMethod(g, PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	s, err := MCSingleSource(g, 0, PairMCOptions{C: 0.6, Trials: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 {
		t.Errorf("self score = %g", s[0])
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if d := math.Abs(s[v] - gt.Sim(0, v)); d > 0.03 {
			t.Errorf("node %d off by %.4f", v, d)
		}
	}
	if _, err := MCSingleSource(g, 99, PairMCOptions{}); err == nil {
		t.Error("bad source accepted")
	}
}

func TestPairMCIdentityAndErrors(t *testing.T) {
	g := graph.PaperExample()
	if got, err := PairMC(g, 3, 3, PairMCOptions{}); err != nil || got != 1 {
		t.Errorf("PairMC(v,v) = %g, %v; want 1, nil", got, err)
	}
	if _, err := PairMC(g, 0, 99, PairMCOptions{}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := PairMC(g, 0, 1, PairMCOptions{C: 2}); err == nil {
		t.Error("bad decay factor accepted")
	}
}
