// Package exact provides reference SimRank computations used as ground
// truth throughout the repository: the Jeh–Widom Power Method (the
// paper's ground truth, run with 55 iterations) and a Fogaras-style
// pairwise Monte-Carlo estimator used to cross-check the other
// estimators' meeting-probability interpretation.
package exact

import (
	"context"
	"fmt"

	"crashsim/internal/graph"
	"crashsim/internal/par"
	"crashsim/internal/rng"
)

// PowerOptions configures the Power Method.
type PowerOptions struct {
	// C is the SimRank decay factor in (0,1). Default 0.6, the paper's
	// experimental setting.
	C float64
	// Iterations is the number of fixed-point iterations. Default 55,
	// matching the paper's ground-truth setup; the absolute error after
	// k iterations is at most C^(k+1).
	Iterations int
	// MaxNodes guards against accidentally requesting an all-pairs
	// computation that cannot fit in memory (the method stores two n×n
	// float64 matrices). Default 8192; set to -1 to disable the guard.
	MaxNodes int
	// Workers bounds the parallelism of the per-iteration matrix
	// products. Results are bit-identical for any value (rows are
	// computed independently). 0 or 1 is sequential.
	Workers int
}

func (o *PowerOptions) setDefaults() {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Iterations == 0 {
		o.Iterations = 55
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 8192
	}
}

// Validate checks option ranges.
func (o PowerOptions) Validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("exact: decay factor c=%g outside (0,1)", o.C)
	}
	if o.Iterations < 1 {
		return fmt.Errorf("exact: iterations must be >= 1, got %d", o.Iterations)
	}
	return nil
}

// Result holds the all-pairs SimRank matrix.
type Result struct {
	n int
	s []float64 // row-major n×n
}

// Sim returns sim(u, v).
func (r *Result) Sim(u, v graph.NodeID) float64 {
	return r.s[int(u)*r.n+int(v)]
}

// SingleSource returns the row sim(u, ·) as a fresh slice of length n.
func (r *Result) SingleSource(u graph.NodeID) []float64 {
	return append([]float64(nil), r.s[int(u)*r.n:(int(u)+1)*r.n]...)
}

// NumNodes returns n.
func (r *Result) NumNodes() int { return r.n }

// PowerMethod computes all-pairs SimRank by the Jeh–Widom fixed-point
// iteration S ← c·PᵀSP with the diagonal reset to 1 each round, where P
// is the in-neighbor averaging operator. Each iteration costs O(n·m).
func PowerMethod(g *graph.Graph, opt PowerOptions) (*Result, error) {
	return PowerMethodCtx(context.Background(), g, opt)
}

// PowerMethodCtx is PowerMethod with cancellation: the per-row fan-outs
// stop handing out rows once ctx is done and the call returns ctx.Err(),
// so an abandoned ground-truth computation does not burn the remaining
// O(iterations · n · m) work.
func PowerMethodCtx(ctx context.Context, g *graph.Graph, opt PowerOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt.setDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	if opt.MaxNodes > 0 && n > opt.MaxNodes {
		return nil, fmt.Errorf("exact: graph has %d nodes, above the all-pairs guard of %d (raise PowerOptions.MaxNodes)", n, opt.MaxNodes)
	}
	s := newIdentity(n)
	tmp := make([]float64, n*n)
	next := make([]float64, n*n)
	for it := 0; it < opt.Iterations; it++ {
		// tmp = S · P, i.e. tmp[x][v] = (1/|I(v)|) Σ_{y∈I(v)} S[x][y].
		// Rows of tmp are independent, so the loop fans out by row.
		err := par.ForEachCtx(ctx, n, opt.Workers, func(x int) {
			row := tmp[x*n : (x+1)*n]
			src := s[x*n : (x+1)*n]
			for v := 0; v < n; v++ {
				in := g.In(graph.NodeID(v))
				if len(in) == 0 {
					row[v] = 0
					continue
				}
				sum := 0.0
				for _, y := range in {
					sum += src[y]
				}
				row[v] = sum / float64(len(in))
			}
		})
		if err != nil {
			return nil, err
		}
		// next = c · Pᵀ · tmp, i.e. next[u][v] = (c/|I(u)|) Σ_{x∈I(u)} tmp[x][v].
		err = par.ForEachCtx(ctx, n, opt.Workers, func(u int) {
			row := next[u*n : (u+1)*n]
			clear(row)
			in := g.In(graph.NodeID(u))
			if len(in) == 0 {
				return
			}
			scale := opt.C / float64(len(in))
			for _, x := range in {
				src := tmp[int(x)*n : (int(x)+1)*n]
				for v := 0; v < n; v++ {
					row[v] += src[v] * scale
				}
			}
		})
		if err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			next[v*n+v] = 1
		}
		s, next = next, s
	}
	return &Result{n: n, s: s}, nil
}

func newIdentity(n int) []float64 {
	s := make([]float64, n*n)
	for v := 0; v < n; v++ {
		s[v*n+v] = 1
	}
	return s
}

// PairMCOptions configures the pairwise Monte-Carlo estimator.
type PairMCOptions struct {
	C        float64 // decay factor, default 0.6
	Trials   int     // number of coupled walk pairs, default 10000
	MaxSteps int     // cap on synchronized steps, default 256
	Seed     uint64
}

func (o *PairMCOptions) setDefaults() {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.Trials == 0 {
		o.Trials = 10000
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 256
	}
}

// MCSingleSource estimates sim(u, ·) with the classic Fogaras method:
// an independent coupled-walk estimate per candidate. It is the
// simplest correct single-source Monte-Carlo method and, at O(n·trials)
// walk pairs, the benchmark floor the indexed and tree-based methods
// are measured against. Each candidate uses its own random stream, so
// results are deterministic and independent of evaluation order.
func MCSingleSource(g *graph.Graph, u graph.NodeID, opt PairMCOptions) (map[graph.NodeID]float64, error) {
	opt.setDefaults()
	n := g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("exact: source %d out of range for n=%d", u, n)
	}
	scores := make(map[graph.NodeID]float64, n)
	for v := 0; v < n; v++ {
		po := opt
		po.Seed = rng.Split(opt.Seed, uint64(v)).Uint64()
		s, err := PairMC(g, u, graph.NodeID(v), po)
		if err != nil {
			return nil, err
		}
		if s != 0 {
			scores[graph.NodeID(v)] = s
		}
	}
	scores[u] = 1
	return scores, nil
}

// PairMC estimates sim(u, v) as E[c^τ], where τ is the first-meeting time
// of two reverse random walks from u and v stepping synchronously (the
// Fogaras interpretation, equivalent to the √c-walk meeting probability
// used by SLING/ProbeSim/CrashSim).
func PairMC(g *graph.Graph, u, v graph.NodeID, opt PairMCOptions) (float64, error) {
	opt.setDefaults()
	if opt.C <= 0 || opt.C >= 1 {
		return 0, fmt.Errorf("exact: decay factor c=%g outside (0,1)", opt.C)
	}
	n := graph.NodeID(g.NumNodes())
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, fmt.Errorf("exact: nodes (%d,%d) out of range for n=%d", u, v, n)
	}
	if u == v {
		return 1, nil
	}
	r := rng.New(opt.Seed)
	sum := 0.0
	for trial := 0; trial < opt.Trials; trial++ {
		a, b := u, v
		weight := 1.0
		for step := 1; step <= opt.MaxSteps; step++ {
			ia, ib := g.In(a), g.In(b)
			if len(ia) == 0 || len(ib) == 0 {
				break
			}
			a = ia[r.IntN(len(ia))]
			b = ib[r.IntN(len(ib))]
			weight *= opt.C
			if a == b {
				sum += weight
				break
			}
		}
	}
	return sum / float64(opt.Trials), nil
}
