package exact

import (
	"math"
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

// TestSinglePairMatchesPowerMethod: the product-graph iteration must
// agree with the all-pairs matrix on every pair of the example graph and
// of a random graph.
func TestSinglePairMatchesPowerMethod(t *testing.T) {
	graphs := []*graph.Graph{graph.PaperExample()}
	edges, err := gen.ErdosRenyi(30, 70, true, 71)
	if err != nil {
		t.Fatal(err)
	}
	rg, err := gen.BuildStatic(30, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, rg)

	for gi, g := range graphs {
		gt, err := PowerMethod(g, PowerOptions{C: 0.6, Iterations: 30})
		if err != nil {
			t.Fatal(err)
		}
		n := graph.NodeID(g.NumNodes())
		for u := graph.NodeID(0); u < n; u += 3 {
			for v := u; v < n; v += 5 {
				got, err := SinglePair(g, u, v, SinglePairOptions{C: 0.6, Iterations: 30})
				if err != nil {
					t.Fatalf("graph %d pair (%d,%d): %v", gi, u, v, err)
				}
				if d := math.Abs(got - gt.Sim(u, v)); d > 1e-9 {
					t.Errorf("graph %d pair (%d,%d): single-pair %.9f vs matrix %.9f", gi, u, v, got, gt.Sim(u, v))
				}
			}
		}
	}
}

func TestSinglePairGuards(t *testing.T) {
	g := graph.PaperExample()
	if got, err := SinglePair(g, 3, 3, SinglePairOptions{}); err != nil || got != 1 {
		t.Errorf("identity pair: %g, %v", got, err)
	}
	if _, err := SinglePair(g, 0, 99, SinglePairOptions{}); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := SinglePair(g, 0, 1, SinglePairOptions{C: 2}); err == nil {
		t.Error("bad c accepted")
	}
	if _, err := SinglePair(g, 0, 1, SinglePairOptions{Iterations: -1}); err == nil {
		t.Error("bad iterations accepted")
	}
	if _, err := SinglePair(g, 0, 1, SinglePairOptions{MaxPairs: 1}); err == nil {
		t.Error("MaxPairs guard did not trigger")
	}
}

func TestSinglePairDanglingNodes(t *testing.T) {
	g := graph.NewBuilder(3, true).AddEdge(0, 2).AddEdge(1, 2).MustFreeze()
	got, err := SinglePair(g, 0, 1, SinglePairOptions{})
	if err != nil || got != 0 {
		t.Errorf("dangling pair: %g, %v (want 0)", got, err)
	}
}
