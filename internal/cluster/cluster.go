// Package cluster implements SimRank-based graph clustering, one of the
// applications the paper's introduction motivates (citing LinkClus
// [23]): nodes are grouped so that every member of a cluster is
// SimRank-similar to the cluster's seed.
//
// The algorithm is greedy seed expansion built on CrashSim's partial
// computation: repeatedly take the unassigned node with the highest
// in-degree as a seed, estimate its SimRank against only the remaining
// unassigned nodes (the candidate-set mode), and absorb every node
// scoring at least Theta. Partial computation makes the total cost
// proportional to Σ |unassigned| per cluster rather than clusters × n.
package cluster

import (
	"fmt"
	"sort"

	"crashsim/internal/core"
	"crashsim/internal/graph"
)

// Options configures clustering.
type Options struct {
	// Theta is the similarity threshold for joining a seed's cluster.
	// Default 0.1.
	Theta float64
	// Params configures the underlying CrashSim estimator.
	Params core.Params
	// MinClusterSize discards clusters smaller than this (their members
	// are reported as singletons). Default 1 (keep everything).
	MinClusterSize int
}

func (o Options) withDefaults() Options {
	if o.Theta == 0 {
		o.Theta = 0.1
	}
	if o.MinClusterSize == 0 {
		o.MinClusterSize = 1
	}
	return o
}

// Validate checks option ranges after defaulting.
func (o Options) Validate() error {
	q := o.withDefaults()
	if q.Theta <= 0 || q.Theta >= 1 {
		return fmt.Errorf("cluster: theta=%g outside (0,1)", q.Theta)
	}
	if q.MinClusterSize < 1 {
		return fmt.Errorf("cluster: min cluster size must be >= 1, got %d", q.MinClusterSize)
	}
	return q.Params.Validate()
}

// Cluster is one discovered group; the seed is always the first member.
type Cluster struct {
	Seed    graph.NodeID
	Members []graph.NodeID // sorted, includes the seed
}

// Result is a full clustering.
type Result struct {
	Clusters []Cluster
	// Assignment maps every node to its cluster index in Clusters.
	Assignment []int
}

// Greedy clusters g by greedy SimRank seed expansion. Deterministic for
// a given seed order: seeds are chosen by decreasing in-degree, ties by
// node id.
func Greedy(g *graph.Graph, opt Options) (*Result, error) {
	o := opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	order := make([]graph.NodeID, n)
	for v := range order {
		order[v] = graph.NodeID(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.InDegree(order[i]), g.InDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})

	assignment := make([]int, n)
	for v := range assignment {
		assignment[v] = -1
	}
	var clusters []Cluster
	for _, seed := range order {
		if assignment[seed] != -1 {
			continue
		}
		var omega []graph.NodeID
		for v := graph.NodeID(0); int(v) < n; v++ {
			if assignment[v] == -1 && v != seed {
				omega = append(omega, v)
			}
		}
		members := []graph.NodeID{seed}
		if len(omega) > 0 {
			scores, err := core.SingleSource(g, seed, omega, o.Params)
			if err != nil {
				return nil, err
			}
			for _, v := range omega {
				if scores[v] >= o.Theta {
					members = append(members, v)
				}
			}
		}
		id := len(clusters)
		for _, v := range members {
			assignment[v] = id
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		clusters = append(clusters, Cluster{Seed: seed, Members: members})
	}

	if o.MinClusterSize > 1 {
		clusters, assignment = dissolveSmall(clusters, o.MinClusterSize, n)
	}
	return &Result{Clusters: clusters, Assignment: assignment}, nil
}

// dissolveSmall splits clusters below the size floor into singletons.
func dissolveSmall(clusters []Cluster, minSize, n int) ([]Cluster, []int) {
	var kept []Cluster
	for _, c := range clusters {
		if len(c.Members) >= minSize {
			kept = append(kept, c)
		} else {
			for _, v := range c.Members {
				kept = append(kept, Cluster{Seed: v, Members: []graph.NodeID{v}})
			}
		}
	}
	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = -1
	}
	for id, c := range kept {
		for _, v := range c.Members {
			assignment[v] = id
		}
	}
	return kept, assignment
}

// Coverage returns the fraction of edges whose endpoints share a
// cluster — a simple internal-quality measure: similar-structure
// grouping should capture more edges than random assignment.
func Coverage(g *graph.Graph, r *Result) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	inside := 0
	for _, e := range g.Edges() {
		if r.Assignment[e.X] == r.Assignment[e.Y] && r.Assignment[e.X] != -1 {
			inside++
		}
	}
	return float64(inside) / float64(g.NumEdges())
}

// SharedNeighborAffinity measures what SimRank clusters actually
// optimize: the fraction of intra-cluster member pairs that share at
// least one in-neighbor (the first-order source of SimRank similarity).
// Singleton clusters contribute nothing; the result is the pair
// fraction over all clusters of size >= 2, or 0 if there are none.
// Edge-based measures like Coverage are misleading for similarity
// clustering — in citation graphs, similar papers cite the same work
// but rarely cite each other.
func SharedNeighborAffinity(g *graph.Graph, r *Result) float64 {
	pairs, hits := 0, 0
	for _, c := range r.Clusters {
		for i := 0; i < len(c.Members); i++ {
			for j := i + 1; j < len(c.Members); j++ {
				pairs++
				if shareInNeighbor(g, c.Members[i], c.Members[j]) {
					hits++
				}
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(hits) / float64(pairs)
}

// shareInNeighbor reports whether two nodes have a common in-neighbor;
// both adjacency lists are sorted (CSR), so a merge scan suffices.
func shareInNeighbor(g *graph.Graph, a, b graph.NodeID) bool {
	ia, ib := g.In(a), g.In(b)
	i, j := 0, 0
	for i < len(ia) && j < len(ib) {
		switch {
		case ia[i] == ib[j]:
			return true
		case ia[i] < ib[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Sizes returns a histogram: sizes[k] = number of clusters with k
// members (index 0 unused).
func Sizes(r *Result) []int {
	maxSize := 0
	for _, c := range r.Clusters {
		if len(c.Members) > maxSize {
			maxSize = len(c.Members)
		}
	}
	sizes := make([]int, maxSize+1)
	for _, c := range r.Clusters {
		sizes[len(c.Members)]++
	}
	return sizes
}
