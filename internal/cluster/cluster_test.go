package cluster

import (
	"testing"

	"crashsim/internal/core"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

// twoCommunities builds a graph with two disconnected ring communities;
// cross-community SimRank is exactly zero, so any clustering with a
// positive threshold must separate them.
func twoCommunities(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(12, true)
	community := func(start int) {
		for i := 0; i < 6; i++ {
			b.AddEdge(graph.NodeID(start+i), graph.NodeID(start+(i+1)%6))
			b.AddEdge(graph.NodeID(start+i), graph.NodeID(start+(i+2)%6))
		}
	}
	community(0)
	community(6)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGreedySeparatesCommunities(t *testing.T) {
	g := twoCommunities(t)
	res, err := Greedy(g, Options{
		Theta:  0.15,
		Params: core.Params{Iterations: 800, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every node must be assigned.
	for v, id := range res.Assignment {
		if id < 0 || id >= len(res.Clusters) {
			t.Fatalf("node %d unassigned (%d)", v, id)
		}
	}
	// No cluster may span both communities.
	for _, c := range res.Clusters {
		low, high := false, false
		for _, v := range c.Members {
			if v < 6 {
				low = true
			} else {
				high = true
			}
		}
		if low && high {
			t.Errorf("cluster %v spans both communities", c.Members)
		}
	}
	// Clusters must be disjoint and cover all nodes.
	seen := map[graph.NodeID]bool{}
	total := 0
	for _, c := range res.Clusters {
		for _, v := range c.Members {
			if seen[v] {
				t.Fatalf("node %d in two clusters", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != g.NumNodes() {
		t.Errorf("clusters cover %d of %d nodes", total, g.NumNodes())
	}
}

func TestCoverageBeatsScatter(t *testing.T) {
	g := twoCommunities(t)
	res, err := Greedy(g, Options{Theta: 0.15, Params: core.Params{Iterations: 800, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	cov := Coverage(g, res)
	if cov <= 0.3 {
		t.Errorf("coverage %.2f too low for a two-community graph", cov)
	}
	// All-singleton clustering has coverage 0.
	single := &Result{Assignment: make([]int, g.NumNodes())}
	for v := range single.Assignment {
		single.Assignment[v] = v
		single.Clusters = append(single.Clusters, Cluster{Seed: graph.NodeID(v), Members: []graph.NodeID{graph.NodeID(v)}})
	}
	if got := Coverage(g, single); got != 0 {
		t.Errorf("singleton coverage = %g, want 0", got)
	}
}

func TestMinClusterSize(t *testing.T) {
	g := twoCommunities(t)
	res, err := Greedy(g, Options{
		Theta:          0.15,
		Params:         core.Params{Iterations: 400, Seed: 5},
		MinClusterSize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if len(c.Members) != 1 && len(c.Members) < 3 {
			t.Errorf("cluster of size %d below the floor survived", len(c.Members))
		}
	}
	for v, id := range res.Assignment {
		if id == -1 {
			t.Errorf("node %d lost its assignment after dissolution", v)
		}
	}
}

func TestSharedNeighborAffinity(t *testing.T) {
	// Nodes 1 and 2 share in-neighbor 0; node 3 is fed only by 4.
	g := graph.NewBuilder(5, true).
		AddEdge(0, 1).AddEdge(0, 2).AddEdge(4, 3).
		MustFreeze()
	good := &Result{Clusters: []Cluster{{Members: []graph.NodeID{1, 2}}}}
	if got := SharedNeighborAffinity(g, good); got != 1 {
		t.Errorf("affinity of sibling cluster = %g, want 1", got)
	}
	bad := &Result{Clusters: []Cluster{{Members: []graph.NodeID{1, 3}}}}
	if got := SharedNeighborAffinity(g, bad); got != 0 {
		t.Errorf("affinity of unrelated cluster = %g, want 0", got)
	}
	singles := &Result{Clusters: []Cluster{{Members: []graph.NodeID{1}}}}
	if got := SharedNeighborAffinity(g, singles); got != 0 {
		t.Errorf("affinity with only singletons = %g, want 0", got)
	}
}

func TestAffinityOnRealClustering(t *testing.T) {
	edges, err := gen.PreferentialAttachment(120, 3, true, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(120, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(g, Options{Theta: 0.1, Params: core.Params{Iterations: 400, Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	// SimRank clusters must have a substantially higher shared-neighbor
	// rate than grouping everything into one blob.
	blob := &Result{Clusters: []Cluster{{Members: allNodes(g)}}, Assignment: make([]int, g.NumNodes())}
	clustered := SharedNeighborAffinity(g, res)
	baseline := SharedNeighborAffinity(g, blob)
	if clustered <= baseline {
		t.Errorf("clustered affinity %.3f not above blob baseline %.3f", clustered, baseline)
	}
}

func allNodes(g *graph.Graph) []graph.NodeID {
	out := make([]graph.NodeID, g.NumNodes())
	for v := range out {
		out[v] = graph.NodeID(v)
	}
	return out
}

func TestSizes(t *testing.T) {
	r := &Result{Clusters: []Cluster{
		{Members: make([]graph.NodeID, 3)},
		{Members: make([]graph.NodeID, 1)},
		{Members: make([]graph.NodeID, 3)},
	}}
	s := Sizes(r)
	if s[3] != 2 || s[1] != 1 {
		t.Errorf("sizes = %v", s)
	}
}

func TestValidation(t *testing.T) {
	g := twoCommunities(t)
	if _, err := Greedy(g, Options{Theta: 2}); err == nil {
		t.Error("bad theta accepted")
	}
	if _, err := Greedy(g, Options{MinClusterSize: -1}); err == nil {
		t.Error("bad min size accepted")
	}
	if _, err := Greedy(g, Options{Params: core.Params{C: 9}}); err == nil {
		t.Error("bad params accepted")
	}
}

func TestGreedyOnGeneratedGraph(t *testing.T) {
	edges, err := gen.PreferentialAttachment(150, 3, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(150, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(g, Options{Theta: 0.08, Params: core.Params{Iterations: 300, Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 || len(res.Clusters) > g.NumNodes() {
		t.Errorf("implausible cluster count %d", len(res.Clusters))
	}
}
