package engine

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"crashsim/internal/core"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
	"crashsim/internal/probesim"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	edges, err := gen.ChungLu(300, 1800, 2.0, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(300, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testConfig() Config {
	return Config{Iterations: 120, Seed: 11, ReadsR: 20, ReadsRQ: 5, SlingDSamples: 30, ExactIterations: 20}
}

func TestNames(t *testing.T) {
	want := []string{"crashsim", "exact", "probesim", "prsim", "reads", "sling"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if _, err := New(context.Background(), "nope", graph.PaperExample(), Config{}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := New(context.Background(), "crashsim", nil, Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// TestCanceledContext: a SingleSource call with an already-canceled
// context must return promptly with ctx.Err() on every backend, and a
// canceled New must not build an index.
func TestCanceledContext(t *testing.T) {
	g := testGraph(t)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Names() {
		est, err := New(context.Background(), name, g, testConfig())
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		if _, err := est.SingleSource(canceled, 0, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: SingleSource with canceled ctx: err = %v, want context.Canceled", name, err)
		}
		if _, err := TopK(canceled, est, 0, 5); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: TopK with canceled ctx: err = %v, want context.Canceled", name, err)
		}
		if _, err := Pair(canceled, est, 0, 1); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Pair with canceled ctx: err = %v, want context.Canceled", name, err)
		}
		if _, err := New(canceled, name, g, testConfig()); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: New with canceled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestCancellationMidQuery: cancellation during a long-running estimate
// aborts it (rather than only being checked at entry).
func TestCancellationMidQuery(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig()
	cfg.Iterations = 2_000_000 // far more work than the deadline allows
	est, err := New(context.Background(), "crashsim", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	if _, err := est.SingleSource(ctx, 0, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestMatchesDirectCalls: engine adapters must return exactly what the
// underlying packages return for the same parameters.
func TestMatchesDirectCalls(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig()
	u := graph.NodeID(3)

	est, err := New(context.Background(), "crashsim", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := est.SingleSource(context.Background(), u, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.SingleSource(g, u, nil, core.Params{Iterations: cfg.Iterations, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("crashsim adapter diverges from core.SingleSource")
	}

	est, err = New(context.Background(), "probesim", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err = est.SingleSource(context.Background(), u, nil)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := probesim.SingleSource(g, u, probesim.Options{Iterations: cfg.Iterations, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, core.Scores(pw)) {
		t.Error("probesim adapter diverges from probesim.SingleSource")
	}
}

// TestOmegaRestriction: families without a native partial mode must
// still honor the candidate-set contract.
func TestOmegaRestriction(t *testing.T) {
	g := testGraph(t)
	omega := []graph.NodeID{0, 1, 2, 7}
	for _, name := range Names() {
		est, err := New(context.Background(), name, g, testConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := est.SingleSource(context.Background(), 0, omega)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s) != len(omega) {
			t.Errorf("%s: restricted result has %d entries, want %d", name, len(s), len(omega))
		}
		if s[0] != 1 {
			t.Errorf("%s: self score = %g, want 1", name, s[0])
		}
		if _, err := est.SingleSource(context.Background(), 0, []graph.NodeID{9999}); err == nil {
			t.Errorf("%s: out-of-range candidate accepted", name)
		}
		if _, err := est.SingleSource(context.Background(), 9999, nil); err == nil {
			t.Errorf("%s: out-of-range source accepted", name)
		}
	}
}

// TestAccuracyAgainstExact: every Monte-Carlo backend must land within
// a loose additive bound of the Power Method on the same graph — a
// sanity check that the adapters wire parameters through correctly.
func TestAccuracyAgainstExact(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig()
	cfg.Iterations = 800
	u := graph.NodeID(5)
	gt, err := New(context.Background(), "exact", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := gt.SingleSource(context.Background(), u, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"crashsim", "probesim", "sling", "reads", "prsim"} {
		est, err := New(context.Background(), name, g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := est.SingleSource(context.Background(), u, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		worst := 0.0
		for v, tv := range truth {
			if d := math.Abs(s[v] - tv); d > worst {
				worst = d
			}
		}
		if worst > 0.15 {
			t.Errorf("%s: max error vs power method = %.3f", name, worst)
		}
	}
}

// TestPoolingDeterminism: pooled vs non-pooled scratch and workers=1 vs
// workers=N must produce bit-identical Scores for fixed seeds. Repeated
// pooled runs exercise warm pool buffers.
func TestPoolingDeterminism(t *testing.T) {
	g := testGraph(t)
	u := graph.NodeID(2)
	base := core.Params{Iterations: 150, Seed: 9, DisablePooling: true, Workers: 1}
	want, err := core.SingleSource(g, u, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		p    core.Params
	}{
		{"pooled-w1", core.Params{Iterations: 150, Seed: 9, Workers: 1}},
		{"pooled-w4", core.Params{Iterations: 150, Seed: 9, Workers: 4}},
		{"nopool-w4", core.Params{Iterations: 150, Seed: 9, Workers: 4, DisablePooling: true}},
		{"pooled-w1-warm", core.Params{Iterations: 150, Seed: 9, Workers: 1}},
		{"pooled-w4-warm", core.Params{Iterations: 150, Seed: 9, Workers: 4}},
	}
	for _, v := range variants {
		got, err := core.SingleSource(g, u, nil, v.p)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d entries, want %d", v.name, len(got), len(want))
		}
		for node, s := range want {
			if got[node] != s { // exact float equality: bit-identical or bust
				t.Fatalf("%s: score(%d) = %v, want %v", v.name, node, got[node], s)
			}
		}
	}
}

// TestTopKFallback: the generic TopK must agree with ranking a full
// single-source pass, and crashsim's native path must stay consistent
// with its own full estimate.
func TestTopKFallback(t *testing.T) {
	g := testGraph(t)
	est, err := New(context.Background(), "sling", g, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopK(context.Background(), est, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("got %d results, want 5", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Error("top-k not sorted by score")
		}
	}
	for _, r := range top {
		if r.Node == 4 {
			t.Error("source in top-k result")
		}
	}
	p, err := Pair(context.Background(), est, 4, top[0].Node)
	if err != nil {
		t.Fatal(err)
	}
	if p != top[0].Score {
		t.Errorf("Pair = %g, top-1 score = %g", p, top[0].Score)
	}
}
