package engine

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"crashsim/internal/graph"
	"crashsim/internal/obs"
	"crashsim/internal/store"
)

func preloadGraph(t *testing.T) *graph.Graph {
	t.Helper()
	const n = 20
	b := graph.NewBuilder(n, true)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
		if j := (i*5 + 2) % n; j != i {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func preloadConfig() Config {
	return Config{Seed: 11, SlingDSamples: 16, ReadsR: 8, ReadsRQ: 2, Metrics: obs.NewRegistry()}
}

// TestPreloadedIndexBitIdentical is the end-to-end restart equivalence
// guarantee: for every index-persisting backend, an estimator over an
// index that went through the full snapshot round trip (export, encode,
// decode, import) answers every SingleSource query bit-identically to
// an estimator that just built the index.
func TestPreloadedIndexBitIdentical(t *testing.T) {
	ctx := context.Background()
	g := preloadGraph(t)
	cfg := preloadConfig()

	slIx, err := BuildSlingIndex(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rdIx, err := BuildReadsIndex(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prIx, err := BuildPRSimIndex(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm a few tail tables so the exported prsim payload carries lazy
	// entries too, not just the eager hubs.
	if _, err := prIx.SingleSource(0); err != nil {
		t.Fatal(err)
	}
	slP, rdP, prP := slIx.Export(), rdIx.Export(), prIx.Export()
	data, err := store.Encode(&store.Snapshot{Graph: g, Sling: &slP, Reads: &rdP, PRSim: &prP})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	preCfg := cfg
	if preCfg.SlingIndex, err = snap.ImportSling(g); err != nil {
		t.Fatal(err)
	}
	if preCfg.ReadsIndex, err = snap.ImportReads(g); err != nil {
		t.Fatal(err)
	}
	if preCfg.PRSimIndex, err = snap.ImportPRSim(g); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"sling", "reads", "prsim"} {
		built, err := New(ctx, name, g, cfg)
		if err != nil {
			t.Fatalf("%s: building fresh: %v", name, err)
		}
		loaded, err := New(ctx, name, g, preCfg)
		if err != nil {
			t.Fatalf("%s: constructing from preloaded index: %v", name, err)
		}
		for u := 0; u < g.NumNodes(); u++ {
			want, err := built.SingleSource(ctx, graph.NodeID(u), nil)
			if err != nil {
				t.Fatal(err)
			}
			have, err := loaded.SingleSource(ctx, graph.NodeID(u), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, have) {
				t.Fatalf("%s: SingleSource(%d) differs between built and loaded index", name, u)
			}
		}
	}
}

// TestPreloadedMappedIndexBitIdentical is the mmap flavour of the
// restart guarantee: estimators over indexes imported from a read-only
// file mapping (store.OpenMapped, arrays aliasing the page cache) must
// answer bit-identically to estimators that built the index in-process.
func TestPreloadedMappedIndexBitIdentical(t *testing.T) {
	ctx := context.Background()
	g := preloadGraph(t)
	cfg := preloadConfig()

	slIx, err := BuildSlingIndex(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rdIx, err := BuildReadsIndex(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prIx, err := BuildPRSimIndex(ctx, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prIx.SingleSource(0); err != nil {
		t.Fatal(err)
	}
	slP, rdP, prP := slIx.Export(), rdIx.Export(), prIx.Export()
	path := filepath.Join(t.TempDir(), "engine.snap")
	if err := store.Write(path, &store.Snapshot{Graph: g, Sling: &slP, Reads: &rdP, PRSim: &prP}); err != nil {
		t.Fatal(err)
	}
	for _, verify := range []store.VerifyPolicy{store.VerifyOnLoadSection, store.VerifyEager, store.VerifyNone} {
		t.Run(verify.String(), func(t *testing.T) {
			mp, err := store.OpenMapped(path, store.MapOptions{Verify: verify})
			if err != nil {
				t.Fatal(err)
			}
			defer mp.Close()
			preCfg := cfg
			if preCfg.SlingIndex, err = mp.ImportSling(g); err != nil {
				t.Fatal(err)
			}
			defer preCfg.SlingIndex.Close()
			if preCfg.ReadsIndex, err = mp.ImportReads(g); err != nil {
				t.Fatal(err)
			}
			defer preCfg.ReadsIndex.Close()
			if preCfg.PRSimIndex, err = mp.ImportPRSim(g); err != nil {
				t.Fatal(err)
			}
			defer preCfg.PRSimIndex.Close()
			for _, name := range []string{"sling", "reads", "prsim"} {
				built, err := New(ctx, name, g, cfg)
				if err != nil {
					t.Fatalf("%s: building fresh: %v", name, err)
				}
				mapped, err := New(ctx, name, g, preCfg)
				if err != nil {
					t.Fatalf("%s: constructing from mapped index: %v", name, err)
				}
				for u := 0; u < g.NumNodes(); u++ {
					want, err := built.SingleSource(ctx, graph.NodeID(u), nil)
					if err != nil {
						t.Fatal(err)
					}
					have, err := mapped.SingleSource(ctx, graph.NodeID(u), nil)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(want, have) {
						t.Fatalf("%s: SingleSource(%d) differs between built and mapped index", name, u)
					}
				}
			}
		})
	}
}

func TestPreloadRefusesWrongGraph(t *testing.T) {
	ctx := context.Background()
	g := preloadGraph(t)
	other := graph.NewBuilder(20, true).AddEdge(0, 1).AddEdge(1, 2).MustFreeze()
	cfg := preloadConfig()

	var err error
	if cfg.SlingIndex, err = BuildSlingIndex(ctx, other, cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.ReadsIndex, err = BuildReadsIndex(ctx, other, cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.PRSimIndex, err = BuildPRSimIndex(ctx, other, cfg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"sling", "reads", "prsim"} {
		if _, err := New(ctx, name, g, cfg); err == nil ||
			!strings.Contains(err.Error(), "serving graph") {
			t.Fatalf("%s: New accepted an index built on another graph (err=%v)", name, err)
		}
	}
}

func TestPreloadRefusesWrongOptions(t *testing.T) {
	ctx := context.Background()
	g := preloadGraph(t)
	cfg := preloadConfig()

	var err error
	if cfg.SlingIndex, err = BuildSlingIndex(ctx, g, cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.ReadsIndex, err = BuildReadsIndex(ctx, g, cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.PRSimIndex, err = BuildPRSimIndex(ctx, g, cfg); err != nil {
		t.Fatal(err)
	}
	mismatched := cfg
	mismatched.Seed = 999
	for _, name := range []string{"sling", "reads", "prsim"} {
		if _, err := New(ctx, name, g, mismatched); err == nil ||
			!strings.Contains(err.Error(), "config asks for") {
			t.Fatalf("%s: New accepted an index with mismatched options (err=%v)", name, err)
		}
	}
	// Workers is a runtime knob: changing it must NOT invalidate an index.
	workers := cfg
	workers.Workers = 7
	for _, name := range []string{"sling", "reads", "prsim"} {
		if _, err := New(ctx, name, g, workers); err != nil {
			t.Fatalf("%s: Workers change invalidated a preloaded index: %v", name, err)
		}
	}
}
