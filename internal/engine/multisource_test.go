package engine

import (
	"context"
	"errors"
	"testing"

	"crashsim/internal/cache"
	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
)

// TestMultiSourceAllBackends: the package-level MultiSource entry point
// must reproduce per-source SingleSource results exactly on every
// registered backend — natively batched on crashsim, via the
// sequential-loop fallback everywhere else. The batch includes a
// duplicate so the dedup path is covered on the native backend.
func TestMultiSourceAllBackends(t *testing.T) {
	g := testGraph(t)
	sources := []graph.NodeID{0, 3, 17, 3}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			est, err := New(context.Background(), name, g, testConfig())
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			batch, err := MultiSource(context.Background(), est, sources)
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) != len(sources) {
				t.Fatalf("batch has %d entries, want %d", len(batch), len(sources))
			}
			for i, u := range sources {
				want, err := est.SingleSource(context.Background(), u, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(batch[i]) != len(want) {
					t.Fatalf("source %d: %d vs %d entries", u, len(batch[i]), len(want))
				}
				for v, s := range want {
					if batch[i][v] != s {
						t.Errorf("source %d node %d: batch %g != single %g", u, v, batch[i][v], s)
					}
				}
			}
		})
	}
}

// TestMultiSourceCapability: the metering wrapper must preserve the
// native batch capability exactly where the backend has one.
func TestMultiSourceCapability(t *testing.T) {
	g := graph.PaperExample()
	cfg := Config{Iterations: 50, Seed: 1, Metrics: obs.NewRegistry()}
	cs, err := New(context.Background(), "crashsim", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cs.(MultiSourcer); !ok {
		t.Error("metered crashsim lost the MultiSourcer capability")
	}
	ps, err := New(context.Background(), "probesim", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ps.(MultiSourcer); ok {
		t.Error("metered probesim advertises MultiSourcer without a native batch mode")
	}
}

// cancelAfterEstimator fails its nth SingleSource call with the
// context's error after canceling it, simulating a client disconnect
// mid-batch.
type cancelAfterEstimator struct {
	after  int
	calls  int
	cancel context.CancelFunc
}

func (c *cancelAfterEstimator) Name() string { return "cancelafter" }

func (c *cancelAfterEstimator) SingleSource(ctx context.Context, u graph.NodeID, _ []graph.NodeID) (core.Scores, error) {
	c.calls++
	if c.calls > c.after {
		c.cancel()
		return nil, ctx.Err()
	}
	return core.Scores{u: 1}, nil
}

// TestMultiSourceFallbackPartial: when a mid-batch query fails with
// cancellation, the generic fallback returns the completed prefix
// together with ctx.Err(), so callers can keep what finished.
func TestMultiSourceFallbackPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	est := &cancelAfterEstimator{after: 2, cancel: cancel}
	batch, err := MultiSource(ctx, est, []graph.NodeID{0, 1, 2, 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(batch) != 2 {
		t.Fatalf("partial batch has %d entries, want the 2 completed before cancellation", len(batch))
	}
	for i, u := range []graph.NodeID{0, 1} {
		if batch[i][u] != 1 {
			t.Errorf("partial entry %d missing its score: %v", i, batch[i])
		}
	}
}

// TestMultiSourceCachedSharesKeys: batch and single-source queries must
// address the same cache entries — a batch warms the cache for single
// queries and vice versa — and a fully cached batch must not touch the
// backend.
func TestMultiSourceCachedSharesKeys(t *testing.T) {
	g := graph.PaperExample()
	reg := obs.NewRegistry()
	qc, err := cache.New(cache.Config{MaxBytes: 1 << 20, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Iterations: 60, Seed: 2, Metrics: obs.NewRegistry()}
	inner, err := New(context.Background(), "crashsim", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Cached(inner, CacheConfig{Cache: qc, Scope: cfg.Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	ms, ok := est.(MultiSourcer)
	if !ok {
		t.Fatal("cached wrapper lost the MultiSourcer capability")
	}
	ctx := context.Background()

	// Warm source 0 via a single query, then batch {0,1,0}: only source
	// 1 is a miss, and the duplicate 0 costs one probe, not two.
	single, err := est.SingleSource(ctx, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ms.MultiSource(ctx, []graph.NodeID{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for v, s := range single {
		if batch[0][v] != s || batch[2][v] != s {
			t.Fatalf("batch result for source 0 differs from the cached single query at node %d", v)
		}
	}
	// A repeat of the whole batch must be served entirely from cache.
	misses := reg.Counter("cache.misses").Load()
	if _, err := ms.MultiSource(ctx, []graph.NodeID{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("cache.misses").Load(); got != misses {
		t.Errorf("fully cached batch missed the cache (%d -> %d misses)", misses, got)
	}
	// And a single query for the batch-computed source 1 hits too.
	hits := reg.Counter("cache.hits").Load()
	if _, err := est.SingleSource(ctx, 1, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("cache.hits").Load(); got != hits+1 {
		t.Errorf("single query after batch: hits %d -> %d, want +1", hits, got)
	}
	// Batch results are clones: mutating one must not corrupt the cache.
	batch[1][0] = -5
	again, err := est.SingleSource(ctx, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] == -5 {
		t.Error("mutating a batch result corrupted the cached canonical copy")
	}
}

// TestRankDeterministicTies pins the TopK fallback's tie-breaking:
// equal scores order by ascending node id, never by map iteration
// order, so repeated queries return one stable ranking.
func TestRankDeterministicTies(t *testing.T) {
	s := core.Scores{9: 0.5, 3: 0.5, 7: 0.5, 1: 0.5, 4: 0.9, 2: 0.1}
	want := []core.TopKResult{
		{Node: 4, Score: 0.9},
		{Node: 1, Score: 0.5}, {Node: 3, Score: 0.5}, {Node: 7, Score: 0.5}, {Node: 9, Score: 0.5},
		{Node: 2, Score: 0.1},
	}
	for trial := 0; trial < 20; trial++ {
		got := rank(s, 0)
		if len(got) != len(want) {
			t.Fatalf("rank returned %d entries, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: rank[%d] = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}
