// Package engine is the unified query layer over every SimRank
// algorithm family in the repository. It exposes one Estimator
// interface — context-aware single-source queries, with top-k and
// single-pair where a family supports them natively — implemented by
// adapters for CrashSim, ProbeSim, SLING, READS and the Power Method,
// and a by-name registry so servers, CLIs and the benchmark harness
// dispatch uniformly instead of hand-rolling per-family switches.
//
// Construction cost is deliberately part of the contract: engine.New
// for an index-based family (sling, reads, exact) pays the whole index
// build, so one Estimator serves many queries — exactly the shape a
// service needs. Index-free families (crashsim, probesim) construct in
// O(1). All constructors and queries honor context cancellation.
package engine

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

// Estimator answers SimRank queries against one fixed graph with fixed
// parameters. Implementations are safe for concurrent queries.
type Estimator interface {
	// Name returns the registry name of the algorithm family.
	Name() string
	// SingleSource estimates sim(u, ·). A nil omega means all nodes;
	// a non-nil omega restricts the result to those candidates (every
	// candidate appears in the result, provably-zero ones with score 0).
	// A canceled or expired ctx aborts the estimate and returns
	// ctx.Err().
	SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error)
}

// TopKer is implemented by estimators with a native top-k schedule
// (CrashSim's coarse-then-refine partial mode). Use the package-level
// TopK for a uniform entry point with a generic fallback.
type TopKer interface {
	TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error)
}

// Pairer is implemented by estimators that can answer sim(u, v) cheaper
// than a full single-source pass. Use the package-level Pair for a
// uniform entry point with a generic fallback.
type Pairer interface {
	Pair(ctx context.Context, u, v graph.NodeID) (float64, error)
}

// MultiSourcer is implemented by estimators with a native batch mode
// (CrashSim's one-compile-per-source, one-fan-out pipeline). The result
// is parallel to sources and each entry is bit-identical to the
// corresponding SingleSource call; on error the whole batch fails and
// the result is nil. Use the package-level MultiSource for a uniform
// entry point with a sequential-loop fallback.
type MultiSourcer interface {
	MultiSource(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error)
}

// Config carries the parameters shared by all families plus the few
// family-specific knobs; zero values mean each family's documented
// defaults (c = 0.6, ε = 0.025, δ = 0.01, …).
type Config struct {
	// C is the SimRank decay factor in (0,1).
	C float64
	// Eps is the additive error bound ε.
	Eps float64
	// Delta is the per-query failure probability δ.
	Delta float64
	// Iterations overrides the theory-derived Monte-Carlo iteration
	// count where the family has one (crashsim, probesim).
	Iterations int
	// Workers bounds estimator and index-build parallelism. Results are
	// identical for any value.
	Workers int
	// Seed makes all randomness deterministic.
	Seed uint64

	// ReadsR is READS' stored-walks-per-node parameter r (default 100).
	ReadsR int
	// ReadsRQ is READS' query-time refinement walk count r_q.
	ReadsRQ int
	// SlingDSamples is SLING's per-node d(x) sample count (default 120).
	SlingDSamples int
	// HubFraction is PRSim's eagerly indexed fraction of nodes by
	// in-degree rank (default 0.05).
	HubFraction float64
	// PRSimDSamples is PRSim's per-node d(w) sample count (default 120).
	PRSimDSamples int
	// ExactIterations is the Power Method iteration count (default 55).
	ExactIterations int
	// ExactMaxNodes is the Power Method's all-pairs memory guard
	// (default 8192; -1 disables).
	ExactMaxNodes int

	// SlingIndex, if non-nil, is a prebuilt SLING index (typically
	// loaded from a snapshot, see internal/store) that the sling backend
	// uses instead of paying a build. New refuses the index unless it
	// was built on the serving graph (matched by graph version) with the
	// build options this Config implies — a preloaded index must be
	// indistinguishable from a freshly built one.
	SlingIndex *sling.Index
	// ReadsIndex is the READS equivalent of SlingIndex.
	ReadsIndex *reads.Index
	// PRSimIndex is the PRSim equivalent of SlingIndex. Because PRSim
	// caches tail tables lazily, a preloaded index may also carry warm
	// tail entries from a previous process — they never change results.
	PRSimIndex *prsim.Index

	// Metrics selects the registry receiving this estimator's
	// per-backend query counts, error/cancellation counts and latency
	// histograms (see internal/obs). Nil means obs.Default; tests and
	// multi-tenant servers pass private registries for isolation.
	Metrics *obs.Registry
}

// Builder constructs one family's Estimator over g. Index-based
// families do their whole build here and must honor ctx.
type Builder func(ctx context.Context, g *graph.Graph, cfg Config) (Estimator, error)

var registry = map[string]Builder{
	"crashsim": newCrashSim,
	"probesim": newProbeSim,
	"sling":    newSLING,
	"reads":    newREADS,
	"prsim":    newPRSim,
	"exact":    newExact,
}

// Register adds (or replaces) a named backend. It exists so downstream
// experiments can plug additional families into every engine consumer
// at once; the five paper families are pre-registered.
func Register(name string, b Builder) {
	registry[name] = b
}

// Names returns the registered backend names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds the named estimator over g. Index-based families pay their
// full index construction here (respecting ctx); the returned Estimator
// then serves concurrent queries.
func New(ctx context.Context, name string, g *graph.Graph, cfg Config) (Estimator, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown backend %q (have %v)", name, Names())
	}
	if g == nil {
		return nil, fmt.Errorf("engine: graph must not be nil")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	est, err := b(ctx, g, cfg)
	if err != nil {
		return nil, fmt.Errorf("engine: building %s: %w", name, err)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	return meter(est, newBackendMetrics(reg, name)), nil
}

// TopK answers the top-k query through est: natively when est
// implements TopKer, otherwise by ranking a full single-source pass.
// The source u is excluded from the result.
func TopK(ctx context.Context, est Estimator, u graph.NodeID, k int) ([]core.TopKResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("engine: top-k needs k >= 1, got %d", k)
	}
	if t, ok := est.(TopKer); ok {
		return t.TopK(ctx, u, k)
	}
	scores, err := est.SingleSource(ctx, u, nil)
	if err != nil {
		return nil, err
	}
	ranked := rank(scores, u)
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k], nil
}

// Pair answers sim(u, v) through est: natively when est implements
// Pairer, otherwise from a single-source pass restricted to v.
func Pair(ctx context.Context, est Estimator, u, v graph.NodeID) (float64, error) {
	if p, ok := est.(Pairer); ok {
		return p.Pair(ctx, u, v)
	}
	scores, err := est.SingleSource(ctx, u, []graph.NodeID{v})
	if err != nil {
		return 0, err
	}
	return scores[v], nil
}

// MultiSource answers a batch of single-source queries through est:
// natively when est implements MultiSourcer, otherwise by a sequential
// loop of SingleSource calls. Every entry of the result corresponds to
// the same position of sources. On a mid-batch failure the fallback
// returns the completed prefix together with the error (so a canceled
// batch's partial results carry ctx.Err()); the native path is
// all-or-nothing and returns nil results on error.
func MultiSource(ctx context.Context, est Estimator, sources []graph.NodeID) ([]core.Scores, error) {
	if m, ok := est.(MultiSourcer); ok {
		return m.MultiSource(ctx, sources)
	}
	out := make([]core.Scores, 0, len(sources))
	for _, u := range sources {
		s, err := est.SingleSource(ctx, u, nil)
		if err != nil {
			return out, err
		}
		out = append(out, s)
	}
	return out, nil
}

// rank sorts scores by descending score, excluding the source. Ties
// break by ascending node id — a total order, so the ranking is
// deterministic across runs even though the input map iterates in
// random order (TestRankDeterministicTies pins this).
func rank(s core.Scores, u graph.NodeID) []core.TopKResult {
	out := make([]core.TopKResult, 0, len(s))
	for v, score := range s {
		if v == u {
			continue
		}
		out = append(out, core.TopKResult{Node: v, Score: score})
	}
	slices.SortFunc(out, func(a, b core.TopKResult) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		default:
			return int(a.Node) - int(b.Node)
		}
	})
	return out
}

// restrict filters a full score map down to a candidate set, keeping
// the engine's "every requested candidate appears" contract for
// families without a native partial mode.
func restrict(full core.Scores, omega []graph.NodeID, n int) (core.Scores, error) {
	if omega == nil {
		return full, nil
	}
	out := make(core.Scores, len(omega))
	for _, v := range omega {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("engine: candidate %d out of range for n=%d", v, n)
		}
		out[v] = full[v]
	}
	return out, nil
}
