package engine

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crashsim/internal/cache"
	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
)

func testCache(t testing.TB) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{MaxBytes: 8 << 20, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fakeEstimator counts backend calls and can block to let concurrent
// requests pile up behind one in-flight computation.
type fakeEstimator struct {
	calls atomic.Int64
	gate  chan struct{} // when non-nil, SingleSource blocks on it
	score func() float64
}

func (f *fakeEstimator) Name() string { return "fake" }

func (f *fakeEstimator) SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error) {
	f.calls.Add(1)
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s := 1.0
	if f.score != nil {
		s = f.score()
	}
	return core.Scores{u: 1, u + 1: s}, nil
}

func TestCachedValidation(t *testing.T) {
	if _, err := Cached(&fakeEstimator{}, CacheConfig{}); err == nil {
		t.Fatal("Cached accepted a nil cache")
	}
}

// TestCachedCoalesces: N concurrent identical single-source queries
// through the cached wrapper must execute the backend exactly once.
// The backend blocks until every other request has joined the
// in-flight call, so the assertion cannot pass by lucky scheduling.
func TestCachedCoalesces(t *testing.T) {
	const n = 12
	c := testCache(t)
	fake := &fakeEstimator{gate: make(chan struct{})}
	est, err := Cached(fake, CacheConfig{Cache: c})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make([]core.Scores, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = est.SingleSource(context.Background(), 3, nil)
		}(i)
	}
	// Release the backend only once the leader is inside it and all
	// n-1 followers are coalesced behind it.
	for fake.calls.Load() < 1 || c.Stats().Coalesced < n-1 {
		time.Sleep(50 * time.Microsecond)
	}
	close(fake.gate)
	wg.Wait()

	if got := fake.calls.Load(); got != 1 {
		t.Fatalf("backend ran %d times for %d concurrent identical queries, want 1", got, n)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("query %d diverged: %v vs %v", i, results[i], results[0])
		}
	}
}

// TestCachedInvalidationOnVersionBump: bumping the graph version makes
// cached entries unaddressable, so the next query recomputes; queries
// at the old parameters never see results from the new state or vice
// versa.
func TestCachedInvalidationOnVersionBump(t *testing.T) {
	c := testCache(t)
	var version atomic.Uint64
	fake := &fakeEstimator{}
	fake.score = func() float64 { return float64(version.Load()) }
	est, err := Cached(fake, CacheConfig{
		Cache:   c,
		Version: version.Load,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	s0, err := est.SingleSource(ctx, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s0[1] != 0 {
		t.Fatalf("score at version 0 = %v, want 0", s0[1])
	}
	if _, err := est.SingleSource(ctx, 0, nil); err != nil {
		t.Fatal(err)
	}
	if got := fake.calls.Load(); got != 1 {
		t.Fatalf("repeat query at same version hit backend (%d calls)", got)
	}

	version.Add(1) // an edge update happened
	s1, err := est.SingleSource(ctx, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := fake.calls.Load(); got != 2 {
		t.Fatalf("query after version bump did not recompute (%d calls)", got)
	}
	if s1[1] != 1 {
		t.Fatalf("stale score served after version bump: got %v, want 1", s1[1])
	}
}

// TestCachedDeterminismAcrossBackends: for every registered backend,
// cached results — cold (miss) and warm (hit) — must equal the
// uncached estimator's results exactly, for single-source, top-k and
// pair queries.
func TestCachedDeterminismAcrossBackends(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig()
	c := testCache(t)
	ctx := context.Background()
	u := graph.NodeID(3)

	for _, name := range Names() {
		plain, err := New(ctx, name, g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cachedEst, err := Cached(plain, CacheConfig{
			Cache:   c,
			Version: g.Version,
			Scope:   cfg.Fingerprint(),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		want, err := plain.SingleSource(ctx, u, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cold, err := cachedEst.SingleSource(ctx, u, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		warm, err := cachedEst.SingleSource(ctx, u, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(cold, want) || !reflect.DeepEqual(warm, want) {
			t.Errorf("%s: cached single-source diverges from uncached", name)
		}

		wantTop, err := TopK(ctx, plain, u, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for pass := 0; pass < 2; pass++ { // miss then hit
			gotTop, err := TopK(ctx, cachedEst, u, 5)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !reflect.DeepEqual(gotTop, wantTop) {
				t.Errorf("%s: cached top-k pass %d diverges from uncached", name, pass)
			}
		}

		wantPair, err := Pair(ctx, plain, u, u+1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for pass := 0; pass < 2; pass++ {
			gotPair, err := Pair(ctx, cachedEst, u, u+1)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if gotPair != wantPair {
				t.Errorf("%s: cached pair pass %d = %v, want %v", name, pass, gotPair, wantPair)
			}
		}
	}
}

// TestCachedPreservesCapabilities: the cached wrapper must advertise
// TopKer/Pairer exactly when the wrapped estimator does, mirroring the
// metrics wrapper.
func TestCachedPreservesCapabilities(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig()
	ctx := context.Background()
	c := testCache(t)
	for _, name := range Names() {
		plain, err := New(ctx, name, g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wrapped, err := Cached(plain, CacheConfig{Cache: c, Scope: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, innerTopK := plain.(TopKer)
		_, innerPair := plain.(Pairer)
		_, outerTopK := wrapped.(TopKer)
		_, outerPair := wrapped.(Pairer)
		if innerTopK != outerTopK || innerPair != outerPair {
			t.Errorf("%s: capability mismatch: inner (topk=%t pair=%t) vs cached (topk=%t pair=%t)",
				name, innerTopK, innerPair, outerTopK, outerPair)
		}
		if wrapped.Name() != plain.Name() {
			t.Errorf("%s: cached wrapper renamed estimator to %q", name, wrapped.Name())
		}
	}
}

// TestCachedResultsAreIsolated: a caller mutating its returned map must
// not corrupt the cached canonical copy.
func TestCachedResultsAreIsolated(t *testing.T) {
	c := testCache(t)
	est, err := Cached(&fakeEstimator{}, CacheConfig{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := est.SingleSource(ctx, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	first[0] = -99
	first[500] = 1
	second, err := est.SingleSource(ctx, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second[0] != 1 || len(second) != 2 {
		t.Fatalf("caller mutation leaked into cache: %v", second)
	}
}

// TestCachedOmegaKeying: a nil omega (all nodes) and a non-nil omega
// must occupy distinct cache entries, and distinct omegas must not
// collide.
func TestCachedOmegaKeying(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig()
	ctx := context.Background()
	plain, err := New(ctx, "crashsim", g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Cached(plain, CacheConfig{Cache: testCache(t), Version: g.Version})
	if err != nil {
		t.Fatal(err)
	}
	full, err := est.SingleSource(ctx, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := est.SingleSource(ctx, 2, []graph.NodeID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(restricted) != 3 {
		t.Fatalf("restricted result has %d entries, want 3 (cache key collided with full query?)", len(restricted))
	}
	if len(full) == 3 {
		t.Fatal("full result suspiciously small; graph misconfigured")
	}
	for v, s := range restricted {
		if full[v] != s {
			t.Fatalf("restricted score(%d) = %v diverges from full %v", v, s, full[v])
		}
	}
}

// TestCachedTemporalNoStaleScores is the temporal staleness regression
// test: with one shared cache across an advancing snapshot sequence,
// a query after an edge update must reflect the new snapshot, never a
// cached score from the old one. The exact backend makes the score
// difference deterministic.
func TestCachedTemporalNoStaleScores(t *testing.T) {
	// Snapshot 0: I(1) = {0, 3}, I(2) = {0}, so sim(1,2) =
	// c/2 · sim(0,0) = 0.3. The delta removes 3->1, leaving
	// I(1) = I(2) = {0} and sim(1,2) = c · sim(0,0) = 0.6 — a
	// deterministic, visible score change from one edge update.
	d := graph.NewDiGraph(4, true)
	for _, e := range []graph.Edge{{X: 0, Y: 1}, {X: 0, Y: 2}, {X: 3, Y: 1}} {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			t.Fatal(err)
		}
	}
	snap0 := d.Freeze()
	if err := d.RemoveEdge(3, 1); err != nil {
		t.Fatal(err)
	}
	snap1 := d.Freeze()
	if snap0.Version() == snap1.Version() {
		t.Fatal("edge update did not change snapshot version")
	}

	cfg := Config{ExactIterations: 30}
	shared := testCache(t)
	ctx := context.Background()

	serve := func(g *graph.Graph) Estimator {
		plain, err := New(ctx, "exact", g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := Cached(plain, CacheConfig{Cache: shared, Version: g.Version, Scope: cfg.Fingerprint()})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	// Fill the cache with snapshot-0 results.
	est0 := serve(snap0)
	old, err := est0.SingleSource(ctx, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est0.SingleSource(ctx, 1, nil); err != nil { // warm hit
		t.Fatal(err)
	}

	// Advance: same shared cache, new snapshot.
	est1 := serve(snap1)
	got, err := est1.SingleSource(ctx, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain1, err := New(ctx, "exact", snap1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain1.SingleSource(ctx, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-update cached result diverges from fresh compute: got %v, want %v", got, want)
	}
	if got[2] == old[2] {
		t.Fatalf("sim(1,2) unchanged by the edge update (%v); test graph no longer exercises staleness", got[2])
	}
	// And the old snapshot's entries are still correct under its own
	// version — versions partition the key space, they don't clobber.
	back, err := est0.SingleSource(ctx, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, old) {
		t.Fatal("snapshot-0 entries corrupted by snapshot-1 traffic")
	}
}

// BenchmarkSingleSourceUncached / BenchmarkSingleSourceCached back the
// acceptance criterion that a repeated identical single-source query
// served from cache is at least an order of magnitude faster than the
// uncached path. Compare:
//
//	go test ./internal/engine -bench 'SingleSource(Un)?[Cc]ached' -benchtime 2s
func BenchmarkSingleSourceUncached(b *testing.B) {
	g := testGraph(b)
	cfg := testConfig()
	est, err := New(context.Background(), "crashsim", g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SingleSource(ctx, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleSourceCached(b *testing.B) {
	g := testGraph(b)
	cfg := testConfig()
	plain, err := New(context.Background(), "crashsim", g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cache.New(cache.Config{MaxBytes: 8 << 20, Metrics: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	est, err := Cached(plain, CacheConfig{Cache: c, Version: g.Version, Scope: cfg.Fingerprint()})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := est.SingleSource(ctx, 3, nil); err != nil { // warm the entry
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.SingleSource(ctx, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}
