package engine

import (
	"context"
	"fmt"
	"maps"
	"slices"
	"strconv"
	"strings"

	"crashsim/internal/cache"
	"crashsim/internal/core"
	"crashsim/internal/graph"
)

// Result caching. CrashSim's Monte-Carlo estimates are deterministic
// for a fixed seed and fixed parameters, so a computed result is
// bit-correct for every later identical request against the same graph
// state. Cached wraps an Estimator with a cache.Cache so repeated
// queries are served from memory and N concurrent identical queries
// trigger exactly one backend computation (singleflight coalescing in
// the cache layer).
//
// Cache keys fold together everything that determines a result:
//
//	scope | backend name | graph version | op | query arguments
//
// Scope carries the effective-parameter fingerprint (Config.Fingerprint)
// so one shared cache.Cache can serve estimators with different
// parameters, and the graph version (graph.Graph.Version, re-read on
// every request) invalidates entries the moment an edge update or
// temporal snapshot advance produces a new version — stale entries are
// never served, they just stop being addressable and age out of the
// LRU.
//
// Like the metrics wrapper, Cached preserves the inner estimator's
// capabilities: the returned Estimator advertises TopKer/Pairer/
// MultiSourcer exactly when the wrapped one does, so the package-level
// TopK/Pair/MultiSource fallbacks behave identically with and without
// caching.
//
// Multi-source batches probe per source key — the same "ss" keys
// single-source queries use, so a batch warms the cache for later
// single queries and vice versa — and only the missing sources are
// computed, as one inner batch. The fill goes through Do per missing
// key, so concurrent identical requests still coalesce to one
// computation per source.
//
// Values handed to callers are clones of the cached canonical copy
// (maps and slices are aliasable; a caller mutating its result must not
// corrupt the cache). Pair scores are values and need no cloning.

// CacheConfig wires an Estimator to a result cache.
type CacheConfig struct {
	// Cache is the backing store, required. It may be shared by several
	// wrapped estimators; Scope and the backend name keep their entries
	// apart.
	Cache *cache.Cache
	// Version reports the served graph's current version; it is re-read
	// on every request so bumps take effect immediately. Nil means the
	// graph never changes (version fixed at 0) — correct for
	// Builder-frozen graphs, wrong for anything mutable.
	Version func() uint64
	// Scope namespaces this estimator's entries, typically the
	// effective-parameter fingerprint (Config.Fingerprint). Estimators
	// sharing a Cache must not share a (Scope, backend name) pair unless
	// they are interchangeable.
	Scope string
}

// Fingerprint returns a canonical string of every configuration field
// that affects query results, for use as a cache key scope. Workers is
// excluded (results are identical for any worker count, so caching
// across worker settings is both safe and desirable), as is Metrics.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("c=%g,eps=%g,delta=%g,it=%d,seed=%d,rr=%d,rq=%d,ds=%d,hf=%g,pds=%d,xi=%d,xm=%d",
		c.C, c.Eps, c.Delta, c.Iterations, c.Seed,
		c.ReadsR, c.ReadsRQ, c.SlingDSamples, c.HubFraction, c.PRSimDSamples,
		c.ExactIterations, c.ExactMaxNodes)
}

// Cached wraps est so query results are cached in cc.Cache and
// concurrent identical queries are coalesced. It fails fast on a nil
// cache rather than silently serving uncached.
func Cached(est Estimator, cc CacheConfig) (Estimator, error) {
	if cc.Cache == nil {
		return nil, fmt.Errorf("engine: CacheConfig.Cache must not be nil")
	}
	if cc.Version == nil {
		cc.Version = func() uint64 { return 0 }
	}
	base := &cached{inner: est, cc: cc, prefix: cc.Scope + "|" + est.Name() + "|"}
	var mask int
	if _, ok := est.(TopKer); ok {
		mask |= 1
	}
	if _, ok := est.(Pairer); ok {
		mask |= 2
	}
	if _, ok := est.(MultiSourcer); ok {
		mask |= 4
	}
	switch mask {
	case 1:
		return cachedTopK{base}, nil
	case 2:
		return cachedPair{base}, nil
	case 3:
		return cachedTopKPair{base}, nil
	case 4:
		return cachedMulti{base}, nil
	case 5:
		return cachedTopKMulti{base}, nil
	case 6:
		return cachedPairMulti{base}, nil
	case 7:
		return cachedTopKPairMulti{base}, nil
	default:
		return base, nil
	}
}

type cached struct {
	inner  Estimator
	cc     CacheConfig
	prefix string // scope|backend| — shared by every key
}

func (e *cached) Name() string { return e.inner.Name() }

// key assembles scope|backend|version|op|args at the current graph
// version.
func (e *cached) key(op string, args ...int64) string {
	return e.keyAt(e.cc.Version(), op, args...)
}

// keyAt is key with a caller-pinned graph version, so a multi-source
// batch addresses one consistent version across all its probes.
func (e *cached) keyAt(version uint64, op string, args ...int64) string {
	var b strings.Builder
	b.Grow(len(e.prefix) + len(op) + 8 + 16*len(args))
	b.WriteString(e.prefix)
	b.WriteString(strconv.FormatUint(version, 10))
	b.WriteByte('|')
	b.WriteString(op)
	for _, a := range args {
		b.WriteByte('|')
		b.WriteString(strconv.FormatInt(a, 10))
	}
	return b.String()
}

// Accounted sizes are estimates of in-memory footprint, not exact
// byte counts: enough to keep the byte budget honest without weighing
// every map bucket.
const (
	scoresEntrySize = 48 // NodeID key + float64 value + bucket overhead
	scoresBaseSize  = 64
	topKEntrySize   = 16 // TopKResult{int32, float64} + padding
	topKBaseSize    = 64
	pairSize        = 16
)

func (e *cached) SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error) {
	args := make([]int64, 0, 1+len(omega))
	args = append(args, int64(u))
	for _, v := range omega {
		args = append(args, int64(v))
	}
	op := "ss"
	if omega != nil {
		op = "ssw" // distinguishes a nil omega from an empty one
	}
	v, _, err := e.cc.Cache.Do(ctx, e.key(op, args...), func(ctx context.Context) (any, int64, error) {
		s, err := e.inner.SingleSource(ctx, u, omega)
		if err != nil {
			return nil, 0, err
		}
		return s, scoresBaseSize + scoresEntrySize*int64(len(s)), nil
	})
	if err != nil {
		return nil, err
	}
	// Clone on every path: the canonical copy stays private to the
	// cache, so callers may mutate their result freely.
	return maps.Clone(v.(core.Scores)), nil
}

func (e *cached) topKThrough(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	v, _, err := e.cc.Cache.Do(ctx, e.key("topk", int64(u), int64(k)), func(ctx context.Context) (any, int64, error) {
		r, err := e.inner.(TopKer).TopK(ctx, u, k)
		if err != nil {
			return nil, 0, err
		}
		return r, topKBaseSize + topKEntrySize*int64(len(r)), nil
	})
	if err != nil {
		return nil, err
	}
	return slices.Clone(v.([]core.TopKResult)), nil
}

func (e *cached) pairThrough(ctx context.Context, u, v graph.NodeID) (float64, error) {
	r, _, err := e.cc.Cache.Do(ctx, e.key("pair", int64(u), int64(v)), func(ctx context.Context) (any, int64, error) {
		s, err := e.inner.(Pairer).Pair(ctx, u, v)
		if err != nil {
			return nil, 0, err
		}
		return s, pairSize, nil
	})
	if err != nil {
		return 0, err
	}
	return r.(float64), nil
}

// multiThrough serves a batch through the cache: probe each source's
// "ss" key (keys are assembled once up front, pinning one graph version
// for the whole batch), serve the hits from memory, and compute only
// the missing sources — deduplicated — as one inner batch. The inner
// call runs lazily inside the first missing key's Do fill, so a source
// another goroutine is already computing is waited on (singleflight)
// rather than recomputed, and a fully cached batch never touches the
// backend.
func (e *cached) multiThrough(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	out := make([]core.Scores, len(sources))
	var missUniq []graph.NodeID
	missKey := make(map[graph.NodeID]string)
	version := e.cc.Version()
	for i, u := range sources {
		if _, ok := missKey[u]; ok {
			continue // a batch-mate already probes (or fills) this source
		}
		key := e.keyAt(version, "ss", int64(u))
		if v, ok := e.cc.Cache.Get(key); ok {
			out[i] = v.(core.Scores)
			continue
		}
		missKey[u] = key
		missUniq = append(missUniq, u)
	}

	// One lazy inner batch shared by every missing key's fill closure:
	// whichever Do actually computes first triggers it; the rest read
	// their source's slice out of the finished batch.
	var batch map[graph.NodeID]core.Scores
	var batchErr error
	fill := func(ctx context.Context) error {
		if batch == nil && batchErr == nil {
			res, err := e.inner.(MultiSourcer).MultiSource(ctx, missUniq)
			if err != nil {
				batchErr = err
			} else {
				batch = make(map[graph.NodeID]core.Scores, len(missUniq))
				for j, u := range missUniq {
					batch[u] = res[j]
				}
			}
		}
		return batchErr
	}
	for _, u := range missUniq {
		v, _, err := e.cc.Cache.Do(ctx, missKey[u], func(ctx context.Context) (any, int64, error) {
			if err := fill(ctx); err != nil {
				return nil, 0, err
			}
			s := batch[u]
			return s, scoresBaseSize + scoresEntrySize*int64(len(s)), nil
		})
		if err != nil {
			return nil, err
		}
		canon := v.(core.Scores)
		for i, src := range sources {
			if src == u {
				out[i] = canon
			}
		}
	}
	// Clone on every path: the canonical copies stay private to the
	// cache, and duplicate sources must not alias each other.
	for i := range out {
		out[i] = maps.Clone(out[i])
	}
	return out, nil
}

type cachedTopK struct{ *cached }

func (e cachedTopK) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

type cachedPair struct{ *cached }

func (e cachedPair) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}

type cachedMulti struct{ *cached }

func (e cachedMulti) MultiSource(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	return e.multiThrough(ctx, sources)
}

type cachedTopKPair struct{ *cached }

func (e cachedTopKPair) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

func (e cachedTopKPair) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}

type cachedTopKMulti struct{ *cached }

func (e cachedTopKMulti) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

func (e cachedTopKMulti) MultiSource(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	return e.multiThrough(ctx, sources)
}

type cachedPairMulti struct{ *cached }

func (e cachedPairMulti) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}

func (e cachedPairMulti) MultiSource(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	return e.multiThrough(ctx, sources)
}

type cachedTopKPairMulti struct{ *cached }

func (e cachedTopKPairMulti) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

func (e cachedTopKPairMulti) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}

func (e cachedTopKPairMulti) MultiSource(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	return e.multiThrough(ctx, sources)
}
