package engine

import (
	"context"
	"fmt"
	"maps"
	"slices"
	"strconv"
	"strings"

	"crashsim/internal/cache"
	"crashsim/internal/core"
	"crashsim/internal/graph"
)

// Result caching. CrashSim's Monte-Carlo estimates are deterministic
// for a fixed seed and fixed parameters, so a computed result is
// bit-correct for every later identical request against the same graph
// state. Cached wraps an Estimator with a cache.Cache so repeated
// queries are served from memory and N concurrent identical queries
// trigger exactly one backend computation (singleflight coalescing in
// the cache layer).
//
// Cache keys fold together everything that determines a result:
//
//	scope | backend name | graph version | op | query arguments
//
// Scope carries the effective-parameter fingerprint (Config.Fingerprint)
// so one shared cache.Cache can serve estimators with different
// parameters, and the graph version (graph.Graph.Version, re-read on
// every request) invalidates entries the moment an edge update or
// temporal snapshot advance produces a new version — stale entries are
// never served, they just stop being addressable and age out of the
// LRU.
//
// Like the metrics wrapper, Cached preserves the inner estimator's
// capabilities: the returned Estimator advertises TopKer/Pairer exactly
// when the wrapped one does, so the package-level TopK/Pair fallbacks
// behave identically with and without caching.
//
// Values handed to callers are clones of the cached canonical copy
// (maps and slices are aliasable; a caller mutating its result must not
// corrupt the cache). Pair scores are values and need no cloning.

// CacheConfig wires an Estimator to a result cache.
type CacheConfig struct {
	// Cache is the backing store, required. It may be shared by several
	// wrapped estimators; Scope and the backend name keep their entries
	// apart.
	Cache *cache.Cache
	// Version reports the served graph's current version; it is re-read
	// on every request so bumps take effect immediately. Nil means the
	// graph never changes (version fixed at 0) — correct for
	// Builder-frozen graphs, wrong for anything mutable.
	Version func() uint64
	// Scope namespaces this estimator's entries, typically the
	// effective-parameter fingerprint (Config.Fingerprint). Estimators
	// sharing a Cache must not share a (Scope, backend name) pair unless
	// they are interchangeable.
	Scope string
}

// Fingerprint returns a canonical string of every configuration field
// that affects query results, for use as a cache key scope. Workers is
// excluded (results are identical for any worker count, so caching
// across worker settings is both safe and desirable), as is Metrics.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("c=%g,eps=%g,delta=%g,it=%d,seed=%d,rr=%d,rq=%d,ds=%d,xi=%d,xm=%d",
		c.C, c.Eps, c.Delta, c.Iterations, c.Seed,
		c.ReadsR, c.ReadsRQ, c.SlingDSamples, c.ExactIterations, c.ExactMaxNodes)
}

// Cached wraps est so query results are cached in cc.Cache and
// concurrent identical queries are coalesced. It fails fast on a nil
// cache rather than silently serving uncached.
func Cached(est Estimator, cc CacheConfig) (Estimator, error) {
	if cc.Cache == nil {
		return nil, fmt.Errorf("engine: CacheConfig.Cache must not be nil")
	}
	if cc.Version == nil {
		cc.Version = func() uint64 { return 0 }
	}
	base := &cached{inner: est, cc: cc, prefix: cc.Scope + "|" + est.Name() + "|"}
	_, hasTopK := est.(TopKer)
	_, hasPair := est.(Pairer)
	switch {
	case hasTopK && hasPair:
		return cachedTopKPair{base}, nil
	case hasTopK:
		return cachedTopK{base}, nil
	case hasPair:
		return cachedPair{base}, nil
	default:
		return base, nil
	}
}

type cached struct {
	inner  Estimator
	cc     CacheConfig
	prefix string // scope|backend| — shared by every key
}

func (e *cached) Name() string { return e.inner.Name() }

// key assembles scope|backend|version|op|args.
func (e *cached) key(op string, args ...int64) string {
	var b strings.Builder
	b.Grow(len(e.prefix) + len(op) + 8 + 16*len(args))
	b.WriteString(e.prefix)
	b.WriteString(strconv.FormatUint(e.cc.Version(), 10))
	b.WriteByte('|')
	b.WriteString(op)
	for _, a := range args {
		b.WriteByte('|')
		b.WriteString(strconv.FormatInt(a, 10))
	}
	return b.String()
}

// Accounted sizes are estimates of in-memory footprint, not exact
// byte counts: enough to keep the byte budget honest without weighing
// every map bucket.
const (
	scoresEntrySize = 48 // NodeID key + float64 value + bucket overhead
	scoresBaseSize  = 64
	topKEntrySize   = 16 // TopKResult{int32, float64} + padding
	topKBaseSize    = 64
	pairSize        = 16
)

func (e *cached) SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error) {
	args := make([]int64, 0, 1+len(omega))
	args = append(args, int64(u))
	for _, v := range omega {
		args = append(args, int64(v))
	}
	op := "ss"
	if omega != nil {
		op = "ssw" // distinguishes a nil omega from an empty one
	}
	v, _, err := e.cc.Cache.Do(ctx, e.key(op, args...), func(ctx context.Context) (any, int64, error) {
		s, err := e.inner.SingleSource(ctx, u, omega)
		if err != nil {
			return nil, 0, err
		}
		return s, scoresBaseSize + scoresEntrySize*int64(len(s)), nil
	})
	if err != nil {
		return nil, err
	}
	// Clone on every path: the canonical copy stays private to the
	// cache, so callers may mutate their result freely.
	return maps.Clone(v.(core.Scores)), nil
}

func (e *cached) topKThrough(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	v, _, err := e.cc.Cache.Do(ctx, e.key("topk", int64(u), int64(k)), func(ctx context.Context) (any, int64, error) {
		r, err := e.inner.(TopKer).TopK(ctx, u, k)
		if err != nil {
			return nil, 0, err
		}
		return r, topKBaseSize + topKEntrySize*int64(len(r)), nil
	})
	if err != nil {
		return nil, err
	}
	return slices.Clone(v.([]core.TopKResult)), nil
}

func (e *cached) pairThrough(ctx context.Context, u, v graph.NodeID) (float64, error) {
	r, _, err := e.cc.Cache.Do(ctx, e.key("pair", int64(u), int64(v)), func(ctx context.Context) (any, int64, error) {
		s, err := e.inner.(Pairer).Pair(ctx, u, v)
		if err != nil {
			return nil, 0, err
		}
		return s, pairSize, nil
	})
	if err != nil {
		return 0, err
	}
	return r.(float64), nil
}

type cachedTopK struct{ *cached }

func (e cachedTopK) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

type cachedPair struct{ *cached }

func (e cachedPair) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}

type cachedTopKPair struct{ *cached }

func (e cachedTopKPair) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

func (e cachedTopKPair) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}
