package engine

import (
	"context"
	"errors"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
)

// Per-backend serving metrics. engine.New wraps every Estimator it
// builds in a metering layer, so all consumers — the HTTP server, the
// CLIs, the bench harness — get query counts, error/cancellation
// counts and end-to-end latency histograms for free, named
//
//	engine.<backend>.queries             total queries (all ops; a batch counts one per source)
//	engine.<backend>.queries.<op>        per-op counts (singlesource, topk, pair, multisource)
//	engine.<backend>.errors              non-cancellation failures
//	engine.<backend>.canceled            context cancellations/deadlines
//	engine.<backend>.latency             latency histogram across all ops
//
// A multi-source batch adds its source count to queries (so the total
// stays "queries answered" whatever the transport), ticks
// queries.multisource once per batch, and records one latency
// observation for the whole batch.
//
// The wrapper preserves the inner estimator's capabilities: it only
// advertises TopKer/Pairer/MultiSourcer when the wrapped backend does,
// so the package-level TopK/Pair/MultiSource fallbacks behave exactly
// as before.
type backendMetrics struct {
	queries      *obs.Counter
	singleSource *obs.Counter
	topK         *obs.Counter
	pair         *obs.Counter
	multiSource  *obs.Counter
	errors       *obs.Counter
	canceled     *obs.Counter
	latency      *obs.Histogram
}

func newBackendMetrics(reg *obs.Registry, backend string) *backendMetrics {
	p := "engine." + backend + "."
	return &backendMetrics{
		queries:      reg.Counter(p + "queries"),
		singleSource: reg.Counter(p + "queries.singlesource"),
		topK:         reg.Counter(p + "queries.topk"),
		pair:         reg.Counter(p + "queries.pair"),
		multiSource:  reg.Counter(p + "queries.multisource"),
		errors:       reg.Counter(p + "errors"),
		canceled:     reg.Counter(p + "canceled"),
		latency:      reg.Histogram(p + "latency"),
	}
}

// done records one finished query: its latency always, plus an error
// or cancellation counter when it failed.
func (m *backendMetrics) done(start time.Time, err error) {
	m.latency.Since(start)
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		m.canceled.Inc()
	} else {
		m.errors.Inc()
	}
}

// metered wraps an Estimator with per-backend metrics.
type metered struct {
	inner Estimator
	m     *backendMetrics
}

func (e *metered) Name() string { return e.inner.Name() }

func (e *metered) SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error) {
	e.m.queries.Inc()
	e.m.singleSource.Inc()
	start := time.Now()
	s, err := e.inner.SingleSource(ctx, u, omega)
	e.m.done(start, err)
	return s, err
}

// topK/pairThrough are the native-capability passthroughs; they are
// only reachable from wrapper types that advertise the interface.
func (e *metered) topKThrough(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	e.m.queries.Inc()
	e.m.topK.Inc()
	start := time.Now()
	r, err := e.inner.(TopKer).TopK(ctx, u, k)
	e.m.done(start, err)
	return r, err
}

func (e *metered) pairThrough(ctx context.Context, u, v graph.NodeID) (float64, error) {
	e.m.queries.Inc()
	e.m.pair.Inc()
	start := time.Now()
	s, err := e.inner.(Pairer).Pair(ctx, u, v)
	e.m.done(start, err)
	return s, err
}

func (e *metered) multiSourceThrough(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	e.m.queries.Add(uint64(len(sources)))
	e.m.multiSource.Inc()
	start := time.Now()
	r, err := e.inner.(MultiSourcer).MultiSource(ctx, sources)
	e.m.done(start, err)
	return r, err
}

// The wrapper combos below cover every subset of the three optional
// interfaces, so the metered estimator advertises exactly what the
// wrapped backend implements. meter picks the variant by capability
// bitmask.

type meteredTopK struct{ *metered }

func (e meteredTopK) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

type meteredPair struct{ *metered }

func (e meteredPair) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}

type meteredMulti struct{ *metered }

func (e meteredMulti) MultiSource(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	return e.multiSourceThrough(ctx, sources)
}

type meteredTopKPair struct{ *metered }

func (e meteredTopKPair) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

func (e meteredTopKPair) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}

type meteredTopKMulti struct{ *metered }

func (e meteredTopKMulti) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

func (e meteredTopKMulti) MultiSource(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	return e.multiSourceThrough(ctx, sources)
}

type meteredPairMulti struct{ *metered }

func (e meteredPairMulti) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}

func (e meteredPairMulti) MultiSource(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	return e.multiSourceThrough(ctx, sources)
}

type meteredTopKPairMulti struct{ *metered }

func (e meteredTopKPairMulti) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

func (e meteredTopKPairMulti) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}

func (e meteredTopKPairMulti) MultiSource(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	return e.multiSourceThrough(ctx, sources)
}

// meter wraps inner with metrics, picking the wrapper variant that
// mirrors the inner estimator's optional interfaces.
func meter(inner Estimator, m *backendMetrics) Estimator {
	base := &metered{inner: inner, m: m}
	var mask int
	if _, ok := inner.(TopKer); ok {
		mask |= 1
	}
	if _, ok := inner.(Pairer); ok {
		mask |= 2
	}
	if _, ok := inner.(MultiSourcer); ok {
		mask |= 4
	}
	switch mask {
	case 1:
		return meteredTopK{base}
	case 2:
		return meteredPair{base}
	case 3:
		return meteredTopKPair{base}
	case 4:
		return meteredMulti{base}
	case 5:
		return meteredTopKMulti{base}
	case 6:
		return meteredPairMulti{base}
	case 7:
		return meteredTopKPairMulti{base}
	default:
		return base
	}
}
