package engine

import (
	"context"
	"errors"
	"time"

	"crashsim/internal/core"
	"crashsim/internal/graph"
	"crashsim/internal/obs"
)

// Per-backend serving metrics. engine.New wraps every Estimator it
// builds in a metering layer, so all consumers — the HTTP server, the
// CLIs, the bench harness — get query counts, error/cancellation
// counts and end-to-end latency histograms for free, named
//
//	engine.<backend>.queries             total queries (all ops)
//	engine.<backend>.queries.<op>        per-op counts (singlesource, topk, pair)
//	engine.<backend>.errors              non-cancellation failures
//	engine.<backend>.canceled            context cancellations/deadlines
//	engine.<backend>.latency             latency histogram across all ops
//
// The wrapper preserves the inner estimator's capabilities: it only
// advertises TopKer/Pairer when the wrapped backend does, so the
// package-level TopK/Pair fallbacks behave exactly as before.
type backendMetrics struct {
	queries      *obs.Counter
	singleSource *obs.Counter
	topK         *obs.Counter
	pair         *obs.Counter
	errors       *obs.Counter
	canceled     *obs.Counter
	latency      *obs.Histogram
}

func newBackendMetrics(reg *obs.Registry, backend string) *backendMetrics {
	p := "engine." + backend + "."
	return &backendMetrics{
		queries:      reg.Counter(p + "queries"),
		singleSource: reg.Counter(p + "queries.singlesource"),
		topK:         reg.Counter(p + "queries.topk"),
		pair:         reg.Counter(p + "queries.pair"),
		errors:       reg.Counter(p + "errors"),
		canceled:     reg.Counter(p + "canceled"),
		latency:      reg.Histogram(p + "latency"),
	}
}

// done records one finished query: its latency always, plus an error
// or cancellation counter when it failed.
func (m *backendMetrics) done(start time.Time, err error) {
	m.latency.Since(start)
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		m.canceled.Inc()
	} else {
		m.errors.Inc()
	}
}

// metered wraps an Estimator with per-backend metrics.
type metered struct {
	inner Estimator
	m     *backendMetrics
}

func (e *metered) Name() string { return e.inner.Name() }

func (e *metered) SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error) {
	e.m.queries.Inc()
	e.m.singleSource.Inc()
	start := time.Now()
	s, err := e.inner.SingleSource(ctx, u, omega)
	e.m.done(start, err)
	return s, err
}

// topK/pairThrough are the native-capability passthroughs; they are
// only reachable from wrapper types that advertise the interface.
func (e *metered) topKThrough(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	e.m.queries.Inc()
	e.m.topK.Inc()
	start := time.Now()
	r, err := e.inner.(TopKer).TopK(ctx, u, k)
	e.m.done(start, err)
	return r, err
}

func (e *metered) pairThrough(ctx context.Context, u, v graph.NodeID) (float64, error) {
	e.m.queries.Inc()
	e.m.pair.Inc()
	start := time.Now()
	s, err := e.inner.(Pairer).Pair(ctx, u, v)
	e.m.done(start, err)
	return s, err
}

type meteredTopK struct{ *metered }

func (e meteredTopK) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

type meteredPair struct{ *metered }

func (e meteredPair) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}

type meteredTopKPair struct{ *metered }

func (e meteredTopKPair) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return e.topKThrough(ctx, u, k)
}

func (e meteredTopKPair) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return e.pairThrough(ctx, u, v)
}

// meter wraps inner with metrics, picking the wrapper variant that
// mirrors the inner estimator's optional interfaces.
func meter(inner Estimator, m *backendMetrics) Estimator {
	base := &metered{inner: inner, m: m}
	_, hasTopK := inner.(TopKer)
	_, hasPair := inner.(Pairer)
	switch {
	case hasTopK && hasPair:
		return meteredTopKPair{base}
	case hasTopK:
		return meteredTopK{base}
	case hasPair:
		return meteredPair{base}
	default:
		return base
	}
}
