package engine

import (
	"context"
	"sync"
	"testing"

	"crashsim/internal/graph"
	"crashsim/internal/obs"
)

// TestMeteringCounts: every query through a built estimator shows up
// in the per-backend counters and the latency histogram.
func TestMeteringCounts(t *testing.T) {
	reg := obs.NewRegistry()
	g := graph.PaperExample()
	est, err := New(context.Background(), "crashsim", g, Config{Iterations: 50, Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.SingleSource(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := TopK(context.Background(), est, 0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := Pair(context.Background(), est, 0, 3); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("engine.crashsim.queries").Load(); got != 3 {
		t.Errorf("queries = %d, want 3", got)
	}
	for _, op := range []string{"singlesource", "topk", "pair"} {
		if got := reg.Counter("engine.crashsim.queries." + op).Load(); got != 1 {
			t.Errorf("queries.%s = %d, want 1", op, got)
		}
	}
	if got := reg.Histogram("engine.crashsim.latency").Snapshot().Count; got != 3 {
		t.Errorf("latency count = %d, want 3", got)
	}
	if got := reg.Counter("engine.crashsim.errors").Load(); got != 0 {
		t.Errorf("errors = %d, want 0", got)
	}
}

// TestMeteringCancellation: a canceled query lands in the canceled
// counter, not errors.
func TestMeteringCancellation(t *testing.T) {
	reg := obs.NewRegistry()
	est, err := New(context.Background(), "crashsim", graph.PaperExample(),
		Config{Iterations: 50, Seed: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := est.SingleSource(ctx, 0, nil); err == nil {
		t.Fatal("canceled query succeeded")
	}
	if got := reg.Counter("engine.crashsim.canceled").Load(); got != 1 {
		t.Errorf("canceled = %d, want 1", got)
	}
	if got := reg.Counter("engine.crashsim.errors").Load(); got != 0 {
		t.Errorf("errors = %d, want 0", got)
	}
}

// TestConcurrentQueries serves every backend's three query ops from
// many goroutines through one shared (metered) estimator; under -race
// this checks the whole serving path — estimator, metering wrapper,
// core scratch pools — for data races, and that concurrent results
// stay identical to sequential ones.
func TestConcurrentQueries(t *testing.T) {
	g := graph.PaperExample()
	for _, algo := range Names() {
		est, err := New(context.Background(), algo, g, Config{Iterations: 80, Seed: 7, Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		want, err := est.SingleSource(context.Background(), 0, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 6; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := est.SingleSource(context.Background(), 0, nil)
				if err != nil {
					t.Errorf("%s: concurrent single-source: %v", algo, err)
					return
				}
				for v, s := range want {
					if got[v] != s {
						t.Errorf("%s: concurrent score for %d = %g, want %g", algo, v, got[v], s)
						return
					}
				}
				if _, err := TopK(context.Background(), est, 0, 3); err != nil {
					t.Errorf("%s: concurrent top-k: %v", algo, err)
				}
				if _, err := Pair(context.Background(), est, 0, 3); err != nil {
					t.Errorf("%s: concurrent pair: %v", algo, err)
				}
			}()
		}
		wg.Wait()
	}
}

// TestMeteringPreservesCapabilities: the wrapper must advertise
// TopKer/Pairer exactly when the wrapped backend does, so the generic
// fallbacks keep working.
func TestMeteringPreservesCapabilities(t *testing.T) {
	g := graph.PaperExample()
	cases := []struct {
		algo       string
		topK, pair bool
	}{
		{"crashsim", true, true},
		{"probesim", false, false},
		{"exact", false, true},
	}
	for _, tc := range cases {
		est, err := New(context.Background(), tc.algo, g, Config{Iterations: 50, Seed: 1, Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("%s: %v", tc.algo, err)
		}
		if _, ok := est.(TopKer); ok != tc.topK {
			t.Errorf("%s: TopKer = %t, want %t", tc.algo, ok, tc.topK)
		}
		if _, ok := est.(Pairer); ok != tc.pair {
			t.Errorf("%s: Pairer = %t, want %t", tc.algo, ok, tc.pair)
		}
		if est.Name() != tc.algo {
			t.Errorf("Name() = %q through wrapper, want %q", est.Name(), tc.algo)
		}
	}
}
