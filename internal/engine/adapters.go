package engine

import (
	"context"
	"fmt"

	"crashsim/internal/core"
	"crashsim/internal/exact"
	"crashsim/internal/graph"
	"crashsim/internal/probesim"
	"crashsim/internal/prsim"
	"crashsim/internal/reads"
	"crashsim/internal/sling"
)

// crashSim adapts the paper's index-free estimator. It is the only
// family with a native partial mode, so omega goes straight through,
// and it implements TopKer and Pairer natively.
type crashSim struct {
	g *graph.Graph
	p core.Params
}

func newCrashSim(_ context.Context, g *graph.Graph, cfg Config) (Estimator, error) {
	p := core.Params{
		C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta,
		Iterations: cfg.Iterations, Workers: cfg.Workers, Seed: cfg.Seed,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &crashSim{g: g, p: p}, nil
}

func (e *crashSim) Name() string { return "crashsim" }

func (e *crashSim) SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error) {
	return core.SingleSourceCtx(ctx, e.g, u, omega, e.p)
}

func (e *crashSim) TopK(ctx context.Context, u graph.NodeID, k int) ([]core.TopKResult, error) {
	return core.TopKCtx(ctx, e.g, u, k, e.p)
}

func (e *crashSim) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	return core.SinglePairCtx(ctx, e.g, u, v, e.p)
}

func (e *crashSim) MultiSource(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	return core.MultiSource(ctx, e.g, sources, nil, e.p)
}

// probeSim adapts the index-free ProbeSim baseline.
type probeSim struct {
	g *graph.Graph
	o probesim.Options
}

func newProbeSim(_ context.Context, g *graph.Graph, cfg Config) (Estimator, error) {
	o := probesim.Options{
		C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta,
		Iterations: cfg.Iterations, Seed: cfg.Seed,
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &probeSim{g: g, o: o}, nil
}

func (e *probeSim) Name() string { return "probesim" }

func (e *probeSim) SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error) {
	s, err := probesim.SingleSourceCtx(ctx, e.g, u, e.o)
	if err != nil {
		return nil, err
	}
	return restrict(core.Scores(s), omega, e.g.NumNodes())
}

// SlingOptions maps a Config to the SLING build options the sling
// backend uses, so snapshot writers build exactly the index New would.
func (cfg Config) SlingOptions() sling.Options {
	return sling.Options{
		C: cfg.C, Eps: cfg.Eps, DSamples: cfg.SlingDSamples,
		Workers: cfg.Workers, Seed: cfg.Seed,
	}
}

// ReadsOptions maps a Config to the READS build options the reads
// backend uses.
func (cfg Config) ReadsOptions() reads.Options {
	return reads.Options{
		C: cfg.C, R: cfg.ReadsR, RQ: cfg.ReadsRQ,
		Workers: cfg.Workers, Seed: cfg.Seed,
	}
}

// BuildSlingIndex builds the SLING index the sling backend would build
// over g for cfg — the write-through path for snapshot persistence
// (internal/store) without duplicating the option mapping.
func BuildSlingIndex(ctx context.Context, g *graph.Graph, cfg Config) (*sling.Index, error) {
	return sling.BuildCtx(ctx, g, cfg.SlingOptions())
}

// BuildReadsIndex builds the READS index the reads backend would build
// over g for cfg.
func BuildReadsIndex(ctx context.Context, g *graph.Graph, cfg Config) (*reads.Index, error) {
	d := graph.NewDiGraph(g.NumNodes(), g.Directed())
	for _, e := range g.Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			return nil, fmt.Errorf("copying graph: %w", err)
		}
	}
	ix, err := reads.BuildCtx(ctx, d, cfg.ReadsOptions())
	if err != nil {
		return nil, err
	}
	ix.BindSourceVersion(g.Version())
	return ix, nil
}

// PRSimOptions maps a Config to the PRSim build options the prsim
// backend uses, so snapshot writers build exactly the index New would.
func (cfg Config) PRSimOptions() prsim.Options {
	return prsim.Options{
		C: cfg.C, Eps: cfg.Eps, Delta: cfg.Delta,
		HubFraction: cfg.HubFraction, Iterations: cfg.Iterations,
		DSamples: cfg.PRSimDSamples, Workers: cfg.Workers, Seed: cfg.Seed,
	}
}

// BuildPRSimIndex builds the PRSim hub index the prsim backend would
// build over g for cfg — the write-through path for snapshot
// persistence (internal/store).
func BuildPRSimIndex(ctx context.Context, g *graph.Graph, cfg Config) (*prsim.Index, error) {
	return prsim.BuildCtx(ctx, g, cfg.PRSimOptions())
}

// prsimEstimator adapts the PRSim hub index; New pays the eager hub
// build unless Config carries a compatible preloaded one. Tail tables
// keep filling lazily (and concurrently) behind the index's per-node
// singleflight.
type prsimEstimator struct {
	g  *graph.Graph
	ix *prsim.Index
}

func newPRSim(ctx context.Context, g *graph.Graph, cfg Config) (Estimator, error) {
	if ix := cfg.PRSimIndex; ix != nil {
		if v := ix.Graph().Version(); v != g.Version() {
			return nil, fmt.Errorf("preloaded prsim index built on graph %#x, serving graph is %#x", v, g.Version())
		}
		if want, have := cfg.PRSimOptions().WithDefaults(), ix.Options(); !prsimOptionsEqual(want, have) {
			return nil, fmt.Errorf("preloaded prsim index built with %+v, config asks for %+v", have, want)
		}
		return &prsimEstimator{g: g, ix: ix}, nil
	}
	ix, err := prsim.BuildCtx(ctx, g, cfg.PRSimOptions())
	if err != nil {
		return nil, err
	}
	return &prsimEstimator{g: g, ix: ix}, nil
}

// prsimOptionsEqual compares build-relevant options; Workers is a
// runtime knob with no effect on the built index.
func prsimOptionsEqual(a, b prsim.Options) bool {
	a.Workers, b.Workers = 0, 0
	return a == b
}

func (e *prsimEstimator) Name() string { return "prsim" }

func (e *prsimEstimator) SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error) {
	s, err := e.ix.SingleSourceCtx(ctx, u)
	if err != nil {
		return nil, err
	}
	return restrict(core.Scores(s), omega, e.g.NumNodes())
}

// MultiSource shares one lazy hub/tail table build per unique visited
// node across the whole batch; each entry is bit-identical to the
// corresponding SingleSource call.
func (e *prsimEstimator) MultiSource(ctx context.Context, sources []graph.NodeID) ([]core.Scores, error) {
	res, err := e.ix.MultiSource(ctx, sources)
	if err != nil {
		return nil, err
	}
	out := make([]core.Scores, len(res))
	for i, s := range res {
		out[i] = core.Scores(s)
	}
	return out, nil
}

// slingEstimator adapts the SLING index; New pays the full index build
// unless Config carries a compatible preloaded one.
type slingEstimator struct {
	g  *graph.Graph
	ix *sling.Index
}

func newSLING(ctx context.Context, g *graph.Graph, cfg Config) (Estimator, error) {
	if ix := cfg.SlingIndex; ix != nil {
		if v := ix.Graph().Version(); v != g.Version() {
			return nil, fmt.Errorf("preloaded sling index built on graph %#x, serving graph is %#x", v, g.Version())
		}
		if want, have := cfg.SlingOptions().WithDefaults(), ix.Options(); !slingOptionsEqual(want, have) {
			return nil, fmt.Errorf("preloaded sling index built with %+v, config asks for %+v", have, want)
		}
		return &slingEstimator{g: g, ix: ix}, nil
	}
	ix, err := sling.BuildCtx(ctx, g, cfg.SlingOptions())
	if err != nil {
		return nil, err
	}
	return &slingEstimator{g: g, ix: ix}, nil
}

// slingOptionsEqual compares build-relevant options; Workers is a
// runtime knob with no effect on the built index.
func slingOptionsEqual(a, b sling.Options) bool {
	a.Workers, b.Workers = 0, 0
	return a == b
}

func (e *slingEstimator) Name() string { return "sling" }

func (e *slingEstimator) SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error) {
	s, err := e.ix.SingleSourceCtx(ctx, u)
	if err != nil {
		return nil, err
	}
	return restrict(core.Scores(s), omega, e.g.NumNodes())
}

// readsEstimator adapts the READS index over a private mutable copy of
// the served graph; New pays the full index build unless Config carries
// a compatible preloaded one.
type readsEstimator struct {
	g  *graph.Graph
	ix *reads.Index
}

func newREADS(ctx context.Context, g *graph.Graph, cfg Config) (Estimator, error) {
	if ix := cfg.ReadsIndex; ix != nil {
		if v := ix.SourceVersion(); v != g.Version() {
			return nil, fmt.Errorf("preloaded reads index built on graph %#x, serving graph is %#x", v, g.Version())
		}
		if want, have := cfg.ReadsOptions().WithDefaults(), ix.Options(); !readsOptionsEqual(want, have) {
			return nil, fmt.Errorf("preloaded reads index built with %+v, config asks for %+v", have, want)
		}
		return &readsEstimator{g: g, ix: ix}, nil
	}
	ix, err := BuildReadsIndex(ctx, g, cfg)
	if err != nil {
		return nil, err
	}
	return &readsEstimator{g: g, ix: ix}, nil
}

// readsOptionsEqual compares build-relevant options; Workers is a
// runtime knob with no effect on the built index.
func readsOptionsEqual(a, b reads.Options) bool {
	a.Workers, b.Workers = 0, 0
	return a == b
}

func (e *readsEstimator) Name() string { return "reads" }

func (e *readsEstimator) SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error) {
	s, err := e.ix.SingleSourceCtx(ctx, u)
	if err != nil {
		return nil, err
	}
	return restrict(core.Scores(s), omega, e.g.NumNodes())
}

// exactEstimator adapts the Power Method ground truth; New pays the
// whole all-pairs fixed-point iteration (guarded by ExactMaxNodes), and
// queries are row reads.
type exactEstimator struct {
	g   *graph.Graph
	res *exact.Result
}

func newExact(ctx context.Context, g *graph.Graph, cfg Config) (Estimator, error) {
	res, err := exact.PowerMethodCtx(ctx, g, exact.PowerOptions{
		C: cfg.C, Iterations: cfg.ExactIterations,
		MaxNodes: cfg.ExactMaxNodes, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &exactEstimator{g: g, res: res}, nil
}

func (e *exactEstimator) Name() string { return "exact" }

func (e *exactEstimator) SingleSource(ctx context.Context, u graph.NodeID, omega []graph.NodeID) (core.Scores, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := e.g.NumNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("engine: source %d out of range for n=%d", u, n)
	}
	row := e.res.SingleSource(u)
	full := make(core.Scores, 64)
	for v, s := range row {
		if s != 0 {
			full[graph.NodeID(v)] = s
		}
	}
	return restrict(full, omega, n)
}

func (e *exactEstimator) Pair(ctx context.Context, u, v graph.NodeID) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	n := graph.NodeID(e.g.NumNodes())
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, fmt.Errorf("engine: pair (%d,%d) out of range for n=%d", u, v, n)
	}
	return e.res.Sim(u, v), nil
}
