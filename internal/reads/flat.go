package reads

import (
	"fmt"
	"math"
	"slices"

	"crashsim/internal/graph"
)

// Flat is the borrow-shaped view of an index: the stored walks plus
// the inverted occurrence index compiled into sorted per-(sample,
// step) runs, so a query can binary-search co-locations without any
// map. Snapshot format v2 persists these arrays verbatim; the mapped
// loader hands them to ImportFlat aliasing the mapping.
//
// Layout: the k-th stored walk of node v is
// Nodes[WalkOff[k·n+v]:WalkOff[k·n+v+1]]. The inverted index is
// run-addressed by r = k·MaxLen + step-1: the distinct nodes visited
// at that (sample, step) are InvNodes[RunOff[r]:RunOff[r+1]], sorted
// ascending; the origins whose walk visits node InvNodes[j] there are
// InvOrigins[ListOff[j]:ListOff[j+1]] (j a global index), ascending.
//
// Origin order within a list differs from the map path's append order
// only cosmetically: a query counts each origin at most once per
// sample with the same increment, so scores are bit-identical
// regardless of within-list order.
type Flat struct {
	Opt        Options
	WalkOff    []int32 // R·n+1 prefix over walk lengths
	Nodes      []graph.NodeID
	RunOff     []int32 // R·MaxLen+1 row offsets into InvNodes
	InvNodes   []graph.NodeID
	ListOff    []int32 // len(InvNodes)+1 offsets into InvOrigins
	InvOrigins []graph.NodeID
}

// Flatten compiles the payload's inverted occurrence index into the
// sorted-run form, sample by sample to bound transient memory.
func (p Payload) Flatten() Flat {
	o := p.Opt.withDefaults()
	n := len(p.WalkLens) / o.R
	f := Flat{Opt: o, Nodes: p.Nodes}
	f.WalkOff = make([]int32, len(p.WalkLens)+1)
	for i, l := range p.WalkLens {
		f.WalkOff[i+1] = f.WalkOff[i] + l
	}
	f.RunOff = make([]int32, o.R*o.MaxLen+1)
	indexed := len(p.Nodes) - o.R*n // every position except walk origins
	f.ListOff = make([]int32, 1, indexed+1)
	f.InvNodes = make([]graph.NodeID, 0, indexed)
	f.InvOrigins = make([]graph.NodeID, 0, indexed)
	runs := make([]map[graph.NodeID][]graph.NodeID, o.MaxLen)
	for k := 0; k < o.R; k++ {
		for s := range runs {
			runs[s] = make(map[graph.NodeID][]graph.NodeID)
		}
		for v := 0; v < n; v++ {
			w := p.Nodes[f.WalkOff[k*n+v]:f.WalkOff[k*n+v+1]]
			for step := 1; step < len(w); step++ {
				m := runs[step-1]
				m[w[step]] = append(m[w[step]], graph.NodeID(v))
			}
		}
		for s, m := range runs {
			keys := make([]graph.NodeID, 0, len(m))
			for node := range m {
				keys = append(keys, node)
			}
			slices.Sort(keys)
			for _, node := range keys {
				f.InvNodes = append(f.InvNodes, node)
				f.InvOrigins = append(f.InvOrigins, m[node]...)
				f.ListOff = append(f.ListOff, int32(len(f.InvOrigins)))
			}
			f.RunOff[k*o.MaxLen+s+1] = int32(len(f.InvNodes))
		}
	}
	return f
}

// ImportFlat binds a flat payload to the frozen graph g as a servable
// Index whose arrays are adopted, not copied — for a mapped snapshot
// they alias the read-only mapping. Fresh query-time walks sample
// g's CSR in-lists directly, which are elementwise identical to the
// DiGraph the copying Import reconstructs from g.Edges() (both are
// ascending per node), so RQ refinement stays bit-identical. The
// first mutation (ApplyEdge/ApplyDelta) or Graph() call materializes
// heap-side maps and a mutable graph; until then the index is
// read-only. Structural shape checks always run; validate adds the
// per-entry semantic checks (the store's VerifyEager policy).
func ImportFlat(g *graph.Graph, f Flat, validate bool) (*Index, error) {
	o := f.Opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("reads: import flat: %w", err)
	}
	n := g.NumNodes()
	if len(f.WalkOff) != o.R*n+1 {
		return nil, fmt.Errorf("reads: import flat: %d walk offsets, want r·n+1 = %d", len(f.WalkOff), o.R*n+1)
	}
	if f.WalkOff[0] != 0 || int(f.WalkOff[o.R*n]) != len(f.Nodes) {
		return nil, fmt.Errorf("reads: import flat: walk offsets span [%d,%d], nodes column has %d",
			f.WalkOff[0], f.WalkOff[o.R*n], len(f.Nodes))
	}
	rows := o.R * o.MaxLen
	if len(f.RunOff) != rows+1 || f.RunOff[0] != 0 || int(f.RunOff[rows]) != len(f.InvNodes) {
		return nil, fmt.Errorf("reads: import flat: run offsets have %d rows spanning %d, want %d spanning %d",
			len(f.RunOff)-1, sliceLast(f.RunOff), rows, len(f.InvNodes))
	}
	if len(f.ListOff) != len(f.InvNodes)+1 || f.ListOff[0] != 0 || int(f.ListOff[len(f.InvNodes)]) != len(f.InvOrigins) {
		return nil, fmt.Errorf("reads: import flat: list offsets have %d entries spanning %d, want %d spanning %d",
			len(f.ListOff)-1, sliceLast(f.ListOff), len(f.InvNodes), len(f.InvOrigins))
	}
	if got, want := len(f.InvOrigins), len(f.Nodes)-o.R*n; got != want {
		return nil, fmt.Errorf("reads: import flat: %d inverted origins for %d indexed positions", got, want)
	}
	for i := 0; i < o.R*n; i++ {
		if f.WalkOff[i] > f.WalkOff[i+1] {
			return nil, fmt.Errorf("reads: import flat: walk offsets not monotone at %d", i)
		}
	}
	for r := 0; r < rows; r++ {
		if f.RunOff[r] > f.RunOff[r+1] {
			return nil, fmt.Errorf("reads: import flat: run offsets not monotone at %d", r)
		}
	}
	for j := range f.InvNodes {
		if f.ListOff[j] > f.ListOff[j+1] {
			return nil, fmt.Errorf("reads: import flat: list offsets not monotone at %d", j)
		}
	}
	if validate {
		for k := 0; k < o.R; k++ {
			for v := 0; v < n; v++ {
				w := f.Nodes[f.WalkOff[k*n+v]:f.WalkOff[k*n+v+1]]
				if len(w) < 1 || len(w) > o.MaxLen+1 {
					return nil, fmt.Errorf("reads: import flat: walk (%d,%d) has length %d outside [1,%d]", k, v, len(w), o.MaxLen+1)
				}
				if w[0] != graph.NodeID(v) {
					return nil, fmt.Errorf("reads: import flat: walk (%d,%d) starts at %d, not its origin", k, v, w[0])
				}
				for _, x := range w {
					if x < 0 || int(x) >= n {
						return nil, fmt.Errorf("reads: import flat: walk (%d,%d) visits out-of-range node %d", k, v, x)
					}
				}
			}
		}
		for r := 0; r < rows; r++ {
			prev := graph.NodeID(-1)
			for _, node := range f.InvNodes[f.RunOff[r]:f.RunOff[r+1]] {
				if node <= prev || int(node) >= n {
					return nil, fmt.Errorf("reads: import flat: run %d inverted nodes not strictly ascending in range at %d", r, node)
				}
				prev = node
			}
		}
		for _, origin := range f.InvOrigins {
			if origin < 0 || int(origin) >= n {
				return nil, fmt.Errorf("reads: import flat: out-of-range inverted origin %d", origin)
			}
		}
	}
	return &Index{
		opt:        o,
		fg:         g,
		flat:       &f,
		sc:         math.Sqrt(o.C),
		srcVersion: g.Version(),
	}, nil
}

func sliceLast(s []int32) int32 {
	if len(s) == 0 {
		return -1
	}
	return s[len(s)-1]
}

// walkFlat returns the k-th stored walk of v from the flat columns.
func (ix *Index) walkFlat(k int, v graph.NodeID) []graph.NodeID {
	f := ix.flat
	n := ix.fg.NumNodes()
	i := k*n + int(v)
	return f.Nodes[f.WalkOff[i]:f.WalkOff[i+1]]
}

// accumulateFlat is accumulate over the flat runs: binary-search each
// visited (step, node) instead of a map lookup. Same met/scores logic,
// same increment — bit-identical scores (within-list order cannot
// matter: each origin adds inc at most once per sample).
func (ix *Index) accumulateFlat(k int, w []graph.NodeID, u graph.NodeID, inc float64,
	met map[graph.NodeID]struct{}, scores map[graph.NodeID]float64) {
	f := ix.flat
	clear(met)
	for step := 1; step < len(w); step++ {
		r := k*ix.opt.MaxLen + step - 1
		lo, hi := f.RunOff[r], f.RunOff[r+1]
		j, ok := slices.BinarySearch(f.InvNodes[lo:hi], w[step])
		if !ok {
			continue
		}
		gi := int(lo) + j
		for _, origin := range f.InvOrigins[f.ListOff[gi]:f.ListOff[gi+1]] {
			if origin == u {
				continue
			}
			if _, seen := met[origin]; seen {
				continue
			}
			met[origin] = struct{}{}
			scores[origin] += inc
		}
	}
}

// materialize promotes a borrowed index to the mutable heap form: a
// private DiGraph, per-sample walk tables (aliasing the flat node
// column — resampled walks replace whole slices, never write in
// place) and the map-based inverted index, rebuilt in the same
// (sample, node) order as BuildCtx. One-time, triggered by the first
// mutation; not safe concurrently with queries (the update path never
// was).
func (ix *Index) materialize() error {
	if ix.flat == nil {
		return nil
	}
	n := ix.fg.NumNodes()
	d := graph.NewDiGraph(n, ix.fg.Directed())
	for _, e := range ix.fg.Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			return fmt.Errorf("reads: materializing borrowed index: %w", err)
		}
	}
	f := ix.flat
	ix.g = d
	ix.walks = make([][][]graph.NodeID, ix.opt.R)
	ix.inv = make([]map[posKey][]graph.NodeID, ix.opt.R)
	for k := 0; k < ix.opt.R; k++ {
		ix.walks[k] = make([][]graph.NodeID, n)
		ix.inv[k] = make(map[posKey][]graph.NodeID, n)
		for v := 0; v < n; v++ {
			i := k*n + v
			ix.walks[k][v] = f.Nodes[f.WalkOff[i]:f.WalkOff[i+1]:f.WalkOff[i+1]]
		}
	}
	for k := 0; k < ix.opt.R; k++ {
		for v := 0; v < n; v++ {
			ix.indexWalk(k, graph.NodeID(v))
		}
	}
	ix.flat = nil
	return nil
}
