package reads

import (
	"reflect"
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func flatTestGraph(t *testing.T, directed bool) *graph.Graph {
	t.Helper()
	edges, err := gen.ErdosRenyi(44, 140, directed, 9)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(44, directed, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFlatBitIdentical is the flat-path oracle: a borrowed index
// (Flatten/ImportFlat over the frozen graph) must answer every source
// bit-for-bit like the copying Import, including the RQ fresh-walk
// refinement that samples the graph at query time.
func TestFlatBitIdentical(t *testing.T) {
	for _, directed := range []bool{true, false} {
		g := flatTestGraph(t, directed)
		built, err := Build(diGraphOf(t, g), Options{R: 16, MaxLen: 6, RQ: 4, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		p := built.Export()
		copied, err := Import(g, p)
		if err != nil {
			t.Fatal(err)
		}
		borrowed, err := ImportFlat(g, p.Flatten(), true)
		if err != nil {
			t.Fatal(err)
		}
		if borrowed.NumWalks() != copied.NumWalks() || borrowed.Positions() != copied.Positions() {
			t.Fatalf("size proxies differ: %d/%d vs %d/%d",
				borrowed.NumWalks(), borrowed.Positions(), copied.NumWalks(), copied.Positions())
		}
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			want, err := copied.SingleSource(u)
			if err != nil {
				t.Fatal(err)
			}
			got, err := borrowed.SingleSource(u)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("directed=%v: borrowed scores differ at source %d", directed, u)
			}
		}
	}
}

// TestFlatMaterializeOnMutate checks the copy-on-write story: a
// borrowed index hit with an edge update promotes itself to the heap
// form and from then on tracks the copying index exactly.
func TestFlatMaterializeOnMutate(t *testing.T) {
	g := flatTestGraph(t, true)
	built, err := Build(diGraphOf(t, g), Options{R: 12, MaxLen: 6, RQ: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := built.Export()
	copied, err := Import(g, p)
	if err != nil {
		t.Fatal(err)
	}
	borrowed, err := ImportFlat(g, p.Flatten(), true)
	if err != nil {
		t.Fatal(err)
	}
	e := graph.Edge{X: 1, Y: 40}
	if copied.Graph().HasEdge(e.X, e.Y) {
		e = graph.Edge{X: 2, Y: 41}
	}
	if err := copied.ApplyEdge(e, true); err != nil {
		t.Fatal(err)
	}
	if err := borrowed.ApplyEdge(e, true); err != nil {
		t.Fatal(err)
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		want, err := copied.SingleSource(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := borrowed.SingleSource(u)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("post-mutation scores differ at source %d", u)
		}
	}
	if borrowed.Graph().NumEdges() != copied.Graph().NumEdges() {
		t.Fatal("materialized graph out of sync")
	}
}

func TestImportFlatRejectsCorruptShape(t *testing.T) {
	g := flatTestGraph(t, true)
	built, err := Build(diGraphOf(t, g), Options{R: 8, MaxLen: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := built.Export().Flatten()
	mutate := map[string]func(f *Flat){
		"truncated walk offsets": func(f *Flat) { f.WalkOff = f.WalkOff[:len(f.WalkOff)-1] },
		"short run offsets":      func(f *Flat) { f.RunOff = f.RunOff[:len(f.RunOff)-1] },
		"short list offsets":     func(f *Flat) { f.ListOff = f.ListOff[:len(f.ListOff)-1] },
		"short origins":          func(f *Flat) { f.InvOrigins = f.InvOrigins[:len(f.InvOrigins)-1] },
	}
	for name, fn := range mutate {
		f := base
		fn(&f)
		if _, err := ImportFlat(g, f, false); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// A walk not starting at its origin passes shape checks but fails
	// validate mode.
	f := base
	f.Nodes = append([]graph.NodeID(nil), f.Nodes...)
	f.Nodes[f.WalkOff[1]] = 99
	if _, err := ImportFlat(g, f, true); err == nil {
		t.Error("corrupt walk accepted under validate")
	}
}

// TestImportAdoptsWalks pins the one-copy loader contract: Import
// slices walks out of the payload's node column instead of copying
// each walk, so a snapshot load materializes exactly one copy of the
// bytes (the decode).
func TestImportAdoptsWalks(t *testing.T) {
	g := flatTestGraph(t, true)
	built, err := Build(diGraphOf(t, g), Options{R: 4, MaxLen: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := built.Export()
	ix, err := Import(g, p)
	if err != nil {
		t.Fatal(err)
	}
	w := ix.walks[0][0]
	if len(w) == 0 || &w[0] != &p.Nodes[0] {
		t.Fatal("Import copied walk storage instead of slicing the payload column")
	}
}
