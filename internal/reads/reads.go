// Package reads implements the READS baseline (Jiang et al., PVLDB
// 2017): an index-based single-source SimRank method for dynamic graphs.
//
// The index stores r independent √c-walks from every node, organized in
// an inverted occurrence index mapping (sample, step, node) to the walk
// origins passing through — so a single-source query scans the source's
// r walks and collects, per sample, every origin that co-locates with it
// (first co-location per origin per sample), giving the meeting-
// probability estimate sim(u,v) ≈ (1/r)·#{samples whose walks meet}.
//
// On an edge update only the walks whose trajectory passes through the
// edge's head (whose in-neighbor list changed) are regenerated, which is
// READS' key property: incremental maintenance instead of a full
// rebuild. The original system's r_q query-time refinement is
// reproduced as well: RQ fresh walks are sampled from the source at
// query time and matched against the stored index, adding source-side
// randomness beyond the r stored walks.
package reads

import (
	"context"
	"fmt"
	"math"

	"crashsim/internal/graph"
	"crashsim/internal/par"
	"crashsim/internal/rng"
)

// Options configures the index. The paper's experiments use r = 100 and
// walk length cap t = 10.
type Options struct {
	// C is the SimRank decay factor in (0,1). Default 0.6.
	C float64
	// R is the number of stored walks per node. Default 100.
	R int
	// MaxLen caps the stored walk length. Default 10.
	MaxLen int
	// RQ is the number of fresh source walks sampled per query (the
	// paper's r_q, default 10 there). 0 disables the refinement and
	// queries use only the stored walks.
	RQ int
	// Seed makes walk generation deterministic.
	Seed uint64
	// Workers bounds index-construction parallelism (per-node walk
	// sampling fans out; every walk draws from its own (sample, origin)
	// seeded stream and the inverted index is assembled serially in node
	// order, so the built index is byte-identical for any value).
	// Default 1.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.6
	}
	if o.R == 0 {
		o.R = 100
	}
	if o.MaxLen == 0 {
		o.MaxLen = 10
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

// Validate checks option ranges after defaulting.
func (o Options) Validate() error {
	q := o.withDefaults()
	if q.C <= 0 || q.C >= 1 {
		return fmt.Errorf("reads: decay factor c=%g outside (0,1)", q.C)
	}
	if q.R < 1 {
		return fmt.Errorf("reads: walks per node must be >= 1, got %d", q.R)
	}
	if q.MaxLen < 1 {
		return fmt.Errorf("reads: max walk length must be >= 1, got %d", q.MaxLen)
	}
	if q.RQ < 0 {
		return fmt.Errorf("reads: query walks must be >= 0, got %d", q.RQ)
	}
	if q.Workers < 1 {
		return fmt.Errorf("reads: workers must be >= 1, got %d", q.Workers)
	}
	return nil
}

// posKey addresses one (step, node) slot within a sample's inverted
// index.
type posKey struct {
	step int32
	node graph.NodeID
}

// Index holds the stored walks over a mutable graph.
type Index struct {
	opt   Options
	g     *graph.DiGraph
	walks [][][]graph.NodeID          // walks[k][v] = k-th stored walk of v
	inv   []map[posKey][]graph.NodeID // per sample: (step,node) -> origins
	sc    float64
	// srcVersion is the frozen graph version an imported index was
	// bound to (see serde.go); 0 for directly built indexes.
	srcVersion uint64

	// flat/fg, when set, replace walks/inv/g with the compiled run form
	// over a frozen graph (see flat.go); the arrays may alias a
	// read-only snapshot mapping. The first mutation materializes the
	// heap form above and clears flat.
	flat *Flat
	fg   *graph.Graph
	// release gives borrowed memory back to its owner (drops the
	// mapping reference an imported-from-mmap index holds).
	release func() error
}

// Close releases any borrowed memory backing the index (a no-op for
// built or copied indexes). Idempotent; the index must not be queried
// afterwards.
func (ix *Index) Close() error {
	r := ix.release
	ix.release = nil
	if r == nil {
		return nil
	}
	return r()
}

// SetRelease attaches the borrowed-memory release hook; the store
// layer calls it when an index is imported aliasing a mapping.
func (ix *Index) SetRelease(f func() error) { ix.release = f }

// numNodes works for both the mutable and the borrowed representation.
func (ix *Index) numNodes() int {
	if ix.g != nil {
		return ix.g.NumNodes()
	}
	return ix.fg.NumNodes()
}

// Build generates the r walks per node on a private copy of g's current
// state.
func Build(g *graph.DiGraph, opt Options) (*Index, error) {
	return BuildCtx(context.Background(), g, opt)
}

// BuildCtx is Build with cancellation. The per-node walk sampling fans
// out across opt.Workers: every walk draws from its own (sample,
// origin) seeded stream, so parallel sampling produces the same walks
// as serial, and the inverted occurrence index is then assembled
// serially in (sample, node) order — the built index is byte-identical
// for any worker count (mirroring how sling.Build parallelizes its
// pushes).
func BuildCtx(ctx context.Context, g *graph.DiGraph, opt Options) (*Index, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		opt:   o,
		g:     g.Clone(),
		walks: make([][][]graph.NodeID, o.R),
		inv:   make([]map[posKey][]graph.NodeID, o.R),
		sc:    math.Sqrt(o.C),
	}
	n := ix.g.NumNodes()
	for k := 0; k < o.R; k++ {
		ix.walks[k] = make([][]graph.NodeID, n)
		ix.inv[k] = make(map[posKey][]graph.NodeID, n)
	}
	// One fan-out over origins, all samples per origin: walks[k][v]
	// slots are disjoint per v, so workers never share a write target.
	if err := par.ForEachCtx(ctx, n, o.Workers, func(v int) {
		for k := 0; k < o.R; k++ {
			ix.walks[k][v] = ix.sampleStored(k, graph.NodeID(v))
		}
	}); err != nil {
		return nil, err
	}
	for k := 0; k < o.R; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for v := 0; v < n; v++ {
			ix.indexWalk(k, graph.NodeID(v))
		}
	}
	return ix, nil
}

// sampleStored draws the k-th stored walk of origin v from its
// dedicated (sample, origin) stream.
func (ix *Index) sampleStored(k int, v graph.NodeID) []graph.NodeID {
	r := rng.Split(ix.opt.Seed^uint64(k)<<32, uint64(v))
	w := []graph.NodeID{v}
	cur := v
	for step := 0; step < ix.opt.MaxLen; step++ {
		if r.Float64() >= ix.sc {
			break
		}
		in := ix.g.In(cur)
		if len(in) == 0 {
			break
		}
		cur = in[r.IntN(len(in))]
		w = append(w, cur)
	}
	return w
}

// indexWalk adds the k-th stored walk of origin v to the inverted
// occurrence index.
func (ix *Index) indexWalk(k int, v graph.NodeID) {
	w := ix.walks[k][v]
	for step := 1; step < len(w); step++ {
		key := posKey{step: int32(step), node: w[step]}
		ix.inv[k][key] = append(ix.inv[k][key], v)
	}
}

// storeWalk samples and indexes the k-th walk of origin v (the update
// path's serial primitive).
func (ix *Index) storeWalk(k int, v graph.NodeID) {
	ix.walks[k][v] = ix.sampleStored(k, v)
	ix.indexWalk(k, v)
}

// dropWalk removes the k-th walk of origin v from the inverted index.
func (ix *Index) dropWalk(k int, v graph.NodeID) {
	w := ix.walks[k][v]
	for step := 1; step < len(w); step++ {
		key := posKey{step: int32(step), node: w[step]}
		list := ix.inv[k][key]
		for i, origin := range list {
			if origin == v {
				list[i] = list[len(list)-1]
				ix.inv[k][key] = list[:len(list)-1]
				break
			}
		}
		if len(ix.inv[k][key]) == 0 {
			delete(ix.inv[k], key)
		}
	}
}

// ApplyEdge updates the index for a single edge insertion (add = true)
// or deletion. The head node's in-neighbor list changes, so every stored
// walk visiting the head at any step before its last is resampled, plus
// all walks originating at the head.
func (ix *Index) ApplyEdge(e graph.Edge, add bool) error {
	if err := ix.materialize(); err != nil {
		return err
	}
	var err error
	if add {
		err = ix.g.AddEdge(e.X, e.Y)
	} else {
		err = ix.g.RemoveEdge(e.X, e.Y)
	}
	if err != nil {
		return fmt.Errorf("reads: applying edge update: %w", err)
	}
	heads := []graph.NodeID{e.Y}
	if !ix.g.Directed() {
		heads = append(heads, e.X)
	}
	for k := 0; k < ix.opt.R; k++ {
		affected := map[graph.NodeID]struct{}{}
		for _, h := range heads {
			affected[h] = struct{}{}
			for step := 1; step <= ix.opt.MaxLen; step++ {
				for _, origin := range ix.inv[k][posKey{step: int32(step), node: h}] {
					affected[origin] = struct{}{}
				}
			}
		}
		for v := range affected {
			ix.dropWalk(k, v)
			ix.storeWalk(k, v)
		}
	}
	return nil
}

// ApplyDelta applies a batch of deletions then insertions.
func (ix *Index) ApplyDelta(add, del []graph.Edge) error {
	for _, e := range del {
		if err := ix.ApplyEdge(e, false); err != nil {
			return err
		}
	}
	for _, e := range add {
		if err := ix.ApplyEdge(e, true); err != nil {
			return err
		}
	}
	return nil
}

// SingleSource estimates sim(u, ·): per sample, the origins co-locating
// with u's walk (first co-location per origin per sample) each
// contribute one count; counts are averaged over the r stored samples
// plus the RQ fresh source walks.
func (ix *Index) SingleSource(u graph.NodeID) (map[graph.NodeID]float64, error) {
	return ix.SingleSourceCtx(context.Background(), u)
}

// SingleSourceCtx is SingleSource with cancellation, checked between
// stored samples.
func (ix *Index) SingleSourceCtx(ctx context.Context, u graph.NodeID) (map[graph.NodeID]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := ix.numNodes()
	if u < 0 || int(u) >= n {
		return nil, fmt.Errorf("reads: source %d out of range for n=%d", u, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scores := make(map[graph.NodeID]float64, 64)
	met := make(map[graph.NodeID]struct{}, 64)
	samples := ix.opt.R + ix.opt.RQ
	inc := 1 / float64(samples)
	borrowed := ix.flat != nil
	for k := 0; k < ix.opt.R; k++ {
		if k&31 == 31 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if borrowed {
			ix.accumulateFlat(k, ix.walkFlat(k, u), u, inc, met, scores)
		} else {
			ix.accumulate(k, ix.walks[k][u], u, inc, met, scores)
		}
	}
	// r_q refinement: fresh source walks matched against stored index
	// samples round-robin.
	if ix.opt.RQ > 0 {
		r := rng.Split(ix.opt.Seed^0xdeadbeef, uint64(u))
		w := make([]graph.NodeID, 0, ix.opt.MaxLen+1)
		for f := 0; f < ix.opt.RQ; f++ {
			w = ix.sampleFresh(u, r, w)
			if borrowed {
				ix.accumulateFlat(f%ix.opt.R, w, u, inc, met, scores)
			} else {
				ix.accumulate(f%ix.opt.R, w, u, inc, met, scores)
			}
		}
	}
	scores[u] = 1
	return scores, nil
}

// accumulate adds one sample's first co-locations of walk w (from u)
// against stored sample k.
func (ix *Index) accumulate(k int, w []graph.NodeID, u graph.NodeID, inc float64,
	met map[graph.NodeID]struct{}, scores map[graph.NodeID]float64) {
	clear(met)
	for step := 1; step < len(w); step++ {
		for _, origin := range ix.inv[k][posKey{step: int32(step), node: w[step]}] {
			if origin == u {
				continue
			}
			if _, seen := met[origin]; seen {
				continue
			}
			met[origin] = struct{}{}
			scores[origin] += inc
		}
	}
}

// sampleFresh draws a query-time √c-walk from u on the current graph.
// A borrowed index samples the frozen CSR in-lists, which are
// elementwise identical to the DiGraph a copying Import builds from
// the same graph — the walks, and therefore the scores, match bit for
// bit.
func (ix *Index) sampleFresh(u graph.NodeID, r *rng.Source, buf []graph.NodeID) []graph.NodeID {
	buf = append(buf[:0], u)
	cur := u
	for step := 0; step < ix.opt.MaxLen; step++ {
		if r.Float64() >= ix.sc {
			break
		}
		var in []graph.NodeID
		if ix.g != nil {
			in = ix.g.In(cur)
		} else {
			in = ix.fg.In(cur)
		}
		if len(in) == 0 {
			break
		}
		cur = in[r.IntN(len(in))]
		buf = append(buf, cur)
	}
	return buf
}

// NumWalks returns the total number of stored walks (r · n).
func (ix *Index) NumWalks() int {
	if ix.flat != nil {
		return ix.opt.R * ix.numNodes()
	}
	total := 0
	for k := range ix.walks {
		total += len(ix.walks[k])
	}
	return total
}

// Positions returns the total number of stored walk positions across
// all samples, the index-memory proxy the benchmark reports use.
func (ix *Index) Positions() int {
	if ix.flat != nil {
		return len(ix.flat.Nodes)
	}
	total := 0
	for k := range ix.walks {
		for _, w := range ix.walks[k] {
			total += len(w)
		}
	}
	return total
}

// Graph returns the index's private graph copy (tests use it to verify
// the update path keeps it in sync). On a borrowed index this
// materializes the mutable form first; materialization from a valid
// frozen graph cannot fail.
func (ix *Index) Graph() *graph.DiGraph {
	if err := ix.materialize(); err != nil {
		panic(err)
	}
	return ix.g
}
