package reads

import (
	"math"
	"reflect"
	"testing"

	"crashsim/internal/exact"
	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func diGraphOf(t *testing.T, g *graph.Graph) *graph.DiGraph {
	t.Helper()
	d := graph.NewDiGraph(g.NumNodes(), g.Directed())
	for _, e := range g.Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestOptionsValidate(t *testing.T) {
	for _, o := range []Options{{C: 2}, {R: -1}, {MaxLen: -1}} {
		if err := o.Validate(); err == nil {
			t.Errorf("options %+v accepted", o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

func TestBuildAndQuery(t *testing.T) {
	d := diGraphOf(t, graph.PaperExample())
	ix, err := Build(d, Options{R: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumWalks() != 50*8 {
		t.Errorf("NumWalks = %d, want 400", ix.NumWalks())
	}
	s, err := ix.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 {
		t.Errorf("s(u,u) = %g, want 1", s[0])
	}
	for v, score := range s {
		if score < 0 || score > 1 {
			t.Errorf("score of %d = %g outside [0,1]", v, score)
		}
	}
	if _, err := ix.SingleSource(99); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := Build(d, Options{C: 3}); err == nil {
		t.Error("bad options accepted")
	}
}

func TestIndexIsIsolatedFromCaller(t *testing.T) {
	d := diGraphOf(t, graph.PaperExample())
	ix, err := Build(d, Options{R: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's graph must not affect the index's copy.
	if err := d.RemoveEdge(graph.PaperNode("B"), graph.PaperNode("A")); err != nil {
		t.Fatal(err)
	}
	if !ix.Graph().HasEdge(graph.PaperNode("B"), graph.PaperNode("A")) {
		t.Error("index shares graph storage with caller")
	}
}

// TestAccuracyAgainstPowerMethod: the stored-walk meeting estimator
// approximates SimRank (it has no formal guarantee — the paper's Fig 5
// shows READS with the worst ME — but it must be in the ballpark).
func TestAccuracyAgainstPowerMethod(t *testing.T) {
	g := graph.PaperExample()
	gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(diGraphOf(t, g), Options{C: 0.6, R: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ix.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		got := s[graph.NodeID(v)]
		want := gt.Sim(0, graph.NodeID(v))
		if d := math.Abs(got - want); d > 0.12 {
			t.Errorf("s(0,%d) = %.4f, power method %.4f (diff %.4f)", v, got, want, d)
		}
	}
}

// TestApplyEdgeMatchesRebuild is the key dynamic-index property: after
// any sequence of updates, the incrementally maintained index must give
// exactly the same scores as an index built from scratch on the final
// graph (walk streams are keyed by (sample, origin), so regenerated
// walks coincide).
func TestApplyEdgeMatchesRebuild(t *testing.T) {
	edges, err := gen.ErdosRenyi(40, 120, true, 3)
	if err != nil {
		t.Fatal(err)
	}
	gg, err := gen.BuildStatic(40, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	d := diGraphOf(t, gg)
	opt := Options{R: 40, Seed: 7}
	ix, err := Build(d, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Apply a mixed update batch.
	updates := []struct {
		e   graph.Edge
		add bool
	}{
		{edges[0], false},
		{edges[1], false},
		{graph.Edge{X: 0, Y: 39}, true},
		{graph.Edge{X: 39, Y: 1}, true},
	}
	for _, up := range updates {
		if up.add && d.HasEdge(up.e.X, up.e.Y) {
			continue
		}
		if err := ix.ApplyEdge(up.e, up.add); err != nil {
			t.Fatalf("ApplyEdge(%v, %t): %v", up.e, up.add, err)
		}
		if up.add {
			if err := d.AddEdge(up.e.X, up.e.Y); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := d.RemoveEdge(up.e.X, up.e.Y); err != nil {
				t.Fatal(err)
			}
		}
	}

	rebuilt, err := Build(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.NodeID(0); u < 40; u += 5 {
		a, err := ix.SingleSource(u)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rebuilt.SingleSource(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("source %d: result sizes differ (%d vs %d)", u, len(a), len(b))
		}
		for v := range a {
			if a[v] != b[v] {
				t.Errorf("source %d: incremental %g != rebuild %g at node %d", u, a[v], b[v], v)
			}
		}
	}
}

func TestRQRefinement(t *testing.T) {
	g := graph.PaperExample()
	gt, err := exact.PowerMethod(g, exact.PowerOptions{C: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	d := diGraphOf(t, g)
	// With refinement enabled, accuracy must remain in the same
	// ballpark (the fresh walks add valid samples).
	ix, err := Build(d, Options{C: 0.6, R: 1500, RQ: 1500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ix.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if diff := math.Abs(s[graph.NodeID(v)] - gt.Sim(0, graph.NodeID(v))); diff > 0.12 {
			t.Errorf("refined s(0,%d) off by %.4f", v, diff)
		}
	}
	// Determinism with RQ.
	s2, err := ix.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range s {
		if s[v] != s2[v] {
			t.Fatalf("refined query nondeterministic at %d", v)
		}
	}
	if _, err := Build(d, Options{RQ: -1}); err == nil {
		t.Error("negative RQ accepted")
	}
}

func TestApplyDeltaErrors(t *testing.T) {
	ix, err := Build(diGraphOf(t, graph.PaperExample()), Options{R: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.ApplyDelta(nil, []graph.Edge{{X: 0, Y: 7}}); err == nil {
		t.Error("deleting a missing edge accepted")
	}
	if err := ix.ApplyDelta([]graph.Edge{{X: 1, Y: 0}}, nil); err == nil {
		t.Error("adding an existing edge accepted")
	}
}

func TestUndirectedUpdates(t *testing.T) {
	d := graph.NewDiGraph(4, false)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}} {
		if err := d.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	opt := Options{R: 30, Seed: 2}
	ix, err := Build(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.ApplyEdge(graph.Edge{X: 3, Y: 0}, true); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(3, 0); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := Build(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ix.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rebuilt.SingleSource(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range b {
		if a[v] != b[v] {
			t.Errorf("undirected incremental %g != rebuild %g at node %d", a[v], b[v], v)
		}
	}
}

// TestBuildWorkersDeterminism: the parallel build must produce an index
// byte-identical to the serial one — same stored walks, same inverted
// occurrence lists in the same order — because every walk draws from a
// dedicated (sample, origin) stream and indexing runs serially in node
// order. Run under -race this also exercises the sampling fan-out.
func TestBuildWorkersDeterminism(t *testing.T) {
	edges, err := gen.ErdosRenyi(120, 480, true, 61)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildStatic(120, true, edges)
	if err != nil {
		t.Fatal(err)
	}
	d := diGraphOf(t, g)
	opt := Options{R: 24, MaxLen: 8, RQ: 4, Seed: 63}
	serial, err := Build(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		po := opt
		po.Workers = w
		parallel, err := Build(d, po)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(parallel.walks, serial.walks) {
			t.Fatalf("workers=%d: stored walks differ from serial build", w)
		}
		if !reflect.DeepEqual(parallel.inv, serial.inv) {
			t.Fatalf("workers=%d: inverted index differs from serial build", w)
		}
		want, err := serial.SingleSource(0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parallel.SingleSource(0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: single-source scores differ", w)
		}
	}
}
