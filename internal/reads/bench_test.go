package reads

import (
	"testing"

	"crashsim/internal/gen"
	"crashsim/internal/graph"
)

func benchDiGraph(b *testing.B, n, m int) *graph.DiGraph {
	b.Helper()
	edges, err := gen.ChungLu(n, m, 2.0, true, 1)
	if err != nil {
		b.Fatal(err)
	}
	d := graph.NewDiGraph(n, true)
	for _, e := range edges {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			b.Fatal(err)
		}
	}
	return d
}

// BenchmarkBuild measures generating and indexing r walks per node.
func BenchmarkBuild(b *testing.B) {
	d := benchDiGraph(b, 2000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(d, Options{R: 100, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery measures a single-source query against a built index.
func BenchmarkQuery(b *testing.B) {
	d := benchDiGraph(b, 2000, 20000)
	ix, err := Build(d, Options{R: 100, RQ: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.SingleSource(graph.NodeID(i % 2000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyEdge measures the incremental update path: toggling one
// edge back and forth, which regenerates only the walks through its
// head.
func BenchmarkApplyEdge(b *testing.B) {
	d := benchDiGraph(b, 2000, 20000)
	ix, err := Build(d, Options{R: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	e := graph.Edge{X: 0, Y: 1999}
	for ix.Graph().HasEdge(e.X, e.Y) {
		e.Y--
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.ApplyEdge(e, i%2 == 0); err != nil {
			b.Fatal(err)
		}
	}
}
