package reads

import (
	"fmt"
	"math"

	"crashsim/internal/graph"
)

// Serialization support for the persistent index store (internal/store).
//
// The index's persistable state is the r stored walks per node plus the
// build options; the inverted occurrence index is a deterministic
// function of the walks (BuildCtx assembles it in (sample, node) order),
// so Import rebuilds it with the same code path and a loaded index
// answers queries bit-identically to the index it was exported from.
// The index's private mutable graph is reconstructed from the immutable
// graph the caller passes, which the store layer has already matched to
// the index by graph version.

// Payload is the flat, serialization-shaped view of an Index: walk
// lengths in (sample, origin) order and the concatenated walk nodes,
// plus the build options.
type Payload struct {
	// Opt is the defaulted build configuration. Workers is a runtime
	// knob with no effect on the built index and is not preserved.
	Opt Options
	// WalkLens holds R·n lengths: WalkLens[k·n+v] is the length
	// (including the origin) of the k-th stored walk of node v.
	WalkLens []int32
	// Nodes concatenates every walk's positions in the same order.
	Nodes []graph.NodeID
}

// Export returns the index's persistable state. The returned slices are
// freshly allocated and do not alias the index.
func (ix *Index) Export() Payload {
	n := ix.g.NumNodes()
	p := Payload{
		Opt:      ix.opt,
		WalkLens: make([]int32, 0, ix.opt.R*n),
		Nodes:    make([]graph.NodeID, 0, ix.Positions()),
	}
	p.Opt.Workers = 0
	for k := 0; k < ix.opt.R; k++ {
		for v := 0; v < n; v++ {
			w := ix.walks[k][v]
			p.WalkLens = append(p.WalkLens, int32(len(w)))
			p.Nodes = append(p.Nodes, w...)
		}
	}
	return p
}

// Import reconstructs an Index over g from an exported payload. The
// payload is treated as untrusted: lengths and node ids are
// range-checked and every walk must start at its origin. The inverted
// occurrence index is rebuilt in the same deterministic (sample, node)
// order as BuildCtx, so queries against the imported index are
// bit-identical to the exported one. g must be the graph the index was
// built on; the store layer enforces that identity by graph version.
//
// The payload's Nodes column is adopted: each stored walk is a
// capacity-clamped subslice of it rather than a fresh copy (resampled
// walks replace whole slices, never write in place), so the loader
// performs exactly one copy of the snapshot bytes. Callers hand over
// ownership of the payload arrays.
func Import(g *graph.Graph, p Payload) (*Index, error) {
	o := p.Opt.withDefaults()
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("reads: import: %w", err)
	}
	n := g.NumNodes()
	if len(p.WalkLens) != o.R*n {
		return nil, fmt.Errorf("reads: import: %d walk lengths, want r·n = %d·%d", len(p.WalkLens), o.R, n)
	}
	d := graph.NewDiGraph(n, g.Directed())
	for _, e := range g.Edges() {
		if err := d.AddEdge(e.X, e.Y); err != nil {
			return nil, fmt.Errorf("reads: import: copying graph: %w", err)
		}
	}
	ix := &Index{
		opt:        o,
		g:          d,
		walks:      make([][][]graph.NodeID, o.R),
		inv:        make([]map[posKey][]graph.NodeID, o.R),
		sc:         math.Sqrt(o.C),
		srcVersion: g.Version(),
	}
	off := 0
	for k := 0; k < o.R; k++ {
		ix.walks[k] = make([][]graph.NodeID, n)
		ix.inv[k] = make(map[posKey][]graph.NodeID, n)
		for v := 0; v < n; v++ {
			l := int(p.WalkLens[k*n+v])
			if l < 1 || l > o.MaxLen+1 {
				return nil, fmt.Errorf("reads: import: walk (%d,%d) has length %d outside [1,%d]", k, v, l, o.MaxLen+1)
			}
			if off+l > len(p.Nodes) {
				return nil, fmt.Errorf("reads: import: walk nodes truncated at walk (%d,%d)", k, v)
			}
			w := p.Nodes[off : off+l : off+l]
			off += l
			if w[0] != graph.NodeID(v) {
				return nil, fmt.Errorf("reads: import: walk (%d,%d) starts at %d, not its origin", k, v, w[0])
			}
			for _, x := range w {
				if x < 0 || int(x) >= n {
					return nil, fmt.Errorf("reads: import: walk (%d,%d) visits out-of-range node %d", k, v, x)
				}
			}
			ix.walks[k][v] = w
		}
	}
	if off != len(p.Nodes) {
		return nil, fmt.Errorf("reads: import: %d trailing walk nodes", len(p.Nodes)-off)
	}
	// Rebuild the inverted index exactly as BuildCtx does: sample-major,
	// node order within a sample — occurrence lists come out identical.
	for k := 0; k < o.R; k++ {
		for v := 0; v < n; v++ {
			ix.indexWalk(k, graph.NodeID(v))
		}
	}
	return ix, nil
}

// Options returns the defaulted build configuration of the index, so a
// consumer holding a preloaded index can verify it matches the
// parameters it was about to build with.
func (ix *Index) Options() Options { return ix.opt }

// WithDefaults returns o with every zero field replaced by its
// documented default — the form Build actually uses and Options
// reports, so two configurations can be compared for build equivalence.
func (o Options) WithDefaults() Options { return o.withDefaults() }

// SourceVersion is the Version() of the frozen graph an imported index
// was bound to, or 0 for an index built directly on a DiGraph (which
// has no frozen identity). Consumers attaching a preloaded index to a
// frozen graph use it to refuse a graph the index was not built on.
func (ix *Index) SourceVersion() uint64 { return ix.srcVersion }

// BindSourceVersion records the frozen graph version ix derives from,
// for builders that construct the walk DiGraph from a frozen graph
// themselves (Import does this automatically).
func (ix *Index) BindSourceVersion(v uint64) { ix.srcVersion = v }
